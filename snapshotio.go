package farmer

import (
	"io"

	"repro/internal/store"
)

// WriteSnapshot persists a prepared snapshot in the repository's durable
// binary format (versioned, checksummed; see DESIGN.md §7). The same
// format backs farmerd's -store directory, so a snapshot written here can
// be shipped to and served by any node — and a future distributed
// coordinator reads the exact bytes the library writes.
//
// Materialized per-consequent views travel with the snapshot: call
// (*Snapshot).ForConsequent before writing to bake a view in, or skip it
// and let readers compile views lazily as usual.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	return store.Write(w, s)
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot, verifying its
// version and whole-file checksum and re-validating the embedded dataset,
// so the result is as safe to mine from as one compiled by Prepare. The
// decoded snapshot carries its own dataset: mine it with
// s.Dataset() and pass s through the options' Prepared field.
//
// Corrupt, truncated, or wrong-version input returns an error — never a
// panic — making the format safe to load from untrusted storage.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	return store.Read(r)
}
