package farmer

import (
	"io"

	"repro/internal/dataset"
	"repro/internal/discretize"
	"repro/internal/synth"
)

// ReadTransactions parses the transactional text format ("<class> : item
// item ..." per line; '#' comments and blank lines ignored). Item and class
// tokens are interned into dense ids in first-seen order.
func ReadTransactions(r io.Reader) (*Dataset, error) {
	return dataset.ReadTransactions(r)
}

// WriteTransactions writes d in the format ReadTransactions accepts.
func WriteTransactions(w io.Writer, d *Dataset) error {
	return dataset.WriteTransactions(w, d)
}

// ReadMatrixCSV parses a continuous expression matrix whose CSV header is
// "label,<gene>,..." with one sample per row.
func ReadMatrixCSV(r io.Reader) (*Matrix, error) {
	return dataset.ReadMatrixCSV(r)
}

// WriteMatrixCSV writes m in the format ReadMatrixCSV accepts.
func WriteMatrixCSV(w io.Writer, m *Matrix) error {
	return dataset.WriteMatrixCSV(w, m)
}

// Discretizer maps (column, value) pairs of a continuous matrix to dense
// item ids; fit one on training data and apply it to both splits.
type Discretizer = discretize.Discretizer

// EqualDepth fits equal-frequency cut points with the given bucket count
// per column — the discretization of the paper's efficiency study
// (10 buckets).
func EqualDepth(m *Matrix, buckets int) (*Discretizer, error) {
	return discretize.EqualDepth(m, buckets)
}

// EqualWidth fits equal-width cut points with the given bucket count.
func EqualWidth(m *Matrix, buckets int) (*Discretizer, error) {
	return discretize.EqualWidth(m, buckets)
}

// EntropyMDL fits Fayyad–Irani minimal-entropy cut points under the MDL
// stopping rule — the discretization of the paper's classifier study.
// Columns with no accepted cut are dropped (gene filtering).
func EntropyMDL(m *Matrix) (*Discretizer, error) {
	return discretize.EntropyMDL(m)
}

// SynthSpec describes a synthetic microarray dataset; see the field docs on
// synth.Spec. Presets mirroring the paper's Table 1 are available from
// PaperSpecs, BenchSpecs (scaled for fast sweeps) and Table2Specs
// (classification study).
type SynthSpec = synth.Spec

// PaperSpecs returns full-shape synthetic stand-ins for the paper's five
// clinical datasets (Table 1 row/column counts and class splits).
func PaperSpecs() []SynthSpec { return synth.PaperSpecs() }

// BenchSpecs returns scaled-down variants sized so the full figure sweeps
// finish in seconds.
func BenchSpecs() []SynthSpec { return synth.BenchSpecs() }

// Table2Specs returns the variants used for the classification study.
func Table2Specs() []SynthSpec { return synth.Table2Specs() }
