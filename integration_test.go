package farmer_test

// End-to-end integration tests over the checked-in fixture files in
// testdata/: file → loader → miner → classifier, crossing every module
// boundary the way a downstream user would.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	farmer "repro"
)

func openFixture(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestIntegrationTransactionsFileToIRGs(t *testing.T) {
	d, err := farmer.ReadTransactions(openFixture(t, "golub_mini.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 8 || d.NumClasses() != 2 {
		t.Fatalf("fixture shape: %d rows, %d classes", d.NumRows(), d.NumClasses())
	}

	for _, class := range []string{"ALL", "AML"} {
		res, err := farmer.RunFARMER(context.Background(), d, d.ClassIndex(class), farmer.MineOptions{
			MinSup: 3, MinConf: 0.9, ComputeLowerBounds: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) == 0 {
			t.Fatalf("no IRGs for %s in a cleanly separated fixture", class)
		}
		for _, g := range res.Groups {
			// The fixture phenotypes are marker-driven: every strong rule's
			// row set must be class-pure or nearly so.
			if g.Confidence < 0.9 {
				t.Fatalf("group %v below minconf", g.Antecedent)
			}
			if len(g.LowerBounds) == 0 {
				t.Fatalf("group %v missing lower bounds", g.Antecedent)
			}
		}
	}
}

func TestIntegrationMarkerGeneRecovered(t *testing.T) {
	d, err := farmer.ReadTransactions(openFixture(t, "golub_mini.txt"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := farmer.RunFARMER(context.Background(), d, d.ClassIndex("AML"), farmer.MineOptions{
		MinSup: 4, MinConf: 1.0, ComputeLowerBounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// cd33#hi marks every AML sample and no ALL sample: some group must
	// carry it with support 4 and confidence 1.
	found := false
	for _, g := range res.Groups {
		for _, it := range g.Antecedent {
			if d.ItemName(it) == "cd33#hi" && g.SupPos == 4 && g.Confidence == 1.0 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("marker item cd33#hi not recovered as a perfect rule")
	}
}

func TestIntegrationMatrixFileToClassifier(t *testing.T) {
	m, err := farmer.ReadMatrixCSV(openFixture(t, "expr_mini.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 8 || m.NumCols() != 4 {
		t.Fatalf("fixture shape: %dx%d", m.NumRows(), m.NumCols())
	}
	sp, err := farmer.StratifiedSplit(m.Labels, 2, 6)
	if err != nil {
		t.Fatal(err)
	}

	// Rule pipeline: g1 and g3 separate the classes; MDL must keep them.
	disc, err := farmer.EntropyMDL(m.SelectRows(sp.Train))
	if err != nil {
		t.Fatal(err)
	}
	if !disc.Kept(0) || !disc.Kept(2) {
		t.Fatal("separating genes dropped by MDL")
	}
	if disc.Kept(1) || disc.Kept(3) {
		t.Fatal("noise genes kept by MDL")
	}
	train, err := disc.Apply(m.SelectRows(sp.Train))
	if err != nil {
		t.Fatal(err)
	}
	test, err := disc.Apply(m.SelectRows(sp.Test))
	if err != nil {
		t.Fatal(err)
	}
	cls, err := farmer.TrainIRGClassifier(train, farmer.IRGClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range test.Rows {
		if got := cls.Predict(&test.Rows[i]); got != test.Rows[i].Class {
			t.Fatalf("test row %d predicted %d, want %d", i, got, test.Rows[i].Class)
		}
	}

	// SVM on the same fixture is also perfect.
	svm, err := farmer.TrainSVM(m.SelectRows(sp.Train), farmer.SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range sp.Test {
		if svm.Predict(m.Values[ri]) != m.Labels[ri] {
			t.Fatal("SVM misclassifies the separable fixture")
		}
	}
}

func TestIntegrationAllMinersAgreeOnFixture(t *testing.T) {
	d, err := farmer.ReadTransactions(openFixture(t, "golub_mini.txt"))
	if err != nil {
		t.Fatal(err)
	}
	charm, err := farmer.RunCHARM(context.Background(), d, farmer.CharmOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	closet, err := farmer.RunCLOSET(context.Background(), d, farmer.ClosetOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	carp, err := farmer.RunCARPENTER(context.Background(), d, farmer.CarpenterOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	cob, err := farmer.RunCOBBLER(context.Background(), d, farmer.CobblerOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := len(charm.Closed)
	if len(closet.Closed) != n || len(carp.Patterns) != n || len(cob.Patterns) != n {
		t.Fatalf("closed-set counts disagree: charm=%d closet=%d carpenter=%d cobbler=%d",
			n, len(closet.Closed), len(carp.Patterns), len(cob.Patterns))
	}
}
