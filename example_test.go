package farmer_test

import (
	"context"
	"fmt"
	"strings"

	farmer "repro"
)

// The paper's Figure 1 table, used by the examples below.
const exampleTable = `
C    : a b c l o s
C    : a d e h p l r
C    : a c e h o q t
notC : a e f h p r
notC : b d f g l q s t
`

func nameItems(d *farmer.Dataset, items []farmer.Item) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = d.ItemName(it)
	}
	return strings.Join(parts, "")
}

// Mining with a confidence constraint returns only groups at or above it.
func ExampleRunFARMER_withConfidence() {
	d, _ := farmer.ReadTransactions(strings.NewReader(exampleTable))
	res, _ := farmer.RunFARMER(context.Background(), d, d.ClassIndex("C"), farmer.MineOptions{
		MinSup:  2,
		MinConf: 0.95,
	})
	for _, g := range res.Groups {
		fmt.Printf("%s (sup=%d conf=%.2f)\n", nameItems(d, g.Antecedent), g.SupPos, g.Confidence)
	}
	// Output:
	// al (sup=2 conf=1.00)
	// aco (sup=2 conf=1.00)
}

// RunTopK ranks rule groups by a convex measure with branch-and-bound.
func ExampleRunTopK() {
	d, _ := farmer.ReadTransactions(strings.NewReader(exampleTable))
	top, _ := farmer.RunTopK(context.Background(), d, d.ClassIndex("C"),
		farmer.TopKOptions{K: 2, Measure: farmer.MeasureChi2, MinSup: 1})
	for _, g := range top.Groups {
		fmt.Printf("%s chi=%.2f\n", nameItems(d, g.Antecedent), g.Score)
	}
	// Output:
	// aco chi=2.22
	// al chi=2.22
}

// LowerBounds recovers the most general members of a rule group.
func ExampleLowerBounds() {
	d, _ := farmer.ReadTransactions(strings.NewReader(exampleTable))
	// The closure of item "e" (id 7 in first-seen order) is {a,e,h}.
	var e farmer.Item
	for i := 0; i < d.NumItems; i++ {
		if d.ItemName(farmer.Item(i)) == "e" {
			e = farmer.Item(i)
		}
	}
	upper := farmer.Closure(d, []farmer.Item{e})
	lbs, _ := farmer.LowerBounds(d, upper, 0)
	for _, lb := range lbs {
		fmt.Println(nameItems(d, lb))
	}
	// Output:
	// e
	// h
}

// Describe summarizes the quantities that determine mining difficulty.
func ExampleDescribe() {
	d, _ := farmer.ReadTransactions(strings.NewReader(exampleTable))
	s := farmer.Describe(d)
	fmt.Printf("rows=%d occurring items=%d max item support=%d\n",
		s.Rows, s.DistinctItems, s.MaxItemSup)
	// Output:
	// rows=5 occurring items=15 max item support=4
}

// The closure operators of §2.1 are exposed directly.
func ExampleClosure() {
	d, _ := farmer.ReadTransactions(strings.NewReader(exampleTable))
	var e farmer.Item
	for i := 0; i < d.NumItems; i++ {
		if d.ItemName(farmer.Item(i)) == "e" {
			e = farmer.Item(i)
		}
	}
	fmt.Println(nameItems(d, farmer.Closure(d, []farmer.Item{e})))
	fmt.Println(farmer.SupportSet(d, []farmer.Item{e}))
	// Output:
	// aeh
	// [1 2 3]
}
