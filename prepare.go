package farmer

import (
	"repro/internal/dataset"
)

// Snapshot is the immutable compiled form of a dataset: the transposed
// table, per-item row bitsets, the item frequency order, and (lazily, per
// consequent class) the ORD row permutation with its own transposed table.
// Build one with Prepare when the same dataset is mined repeatedly — every
// Run* entry point accepts it through the options' Prepared field and
// skips its per-run build phase. A snapshot is safe to share across
// concurrent runs of any miner.
type Snapshot = dataset.Snapshot

// Prepare validates d and compiles it into a reusable Snapshot. The
// snapshot is pinned to this exact *Dataset: pass the same pointer to the
// Run* calls that reuse it (a mismatch is an error), and do not mutate the
// dataset afterwards.
//
// Reuse is observable in the run statistics: Stats().PrepareReused is 1
// for a run that was handed a snapshot and Timings.Setup collapses to the
// residual per-run work. The mined groups and the deterministic counters
// are identical with and without a snapshot.
func Prepare(d *Dataset) (*Snapshot, error) {
	return dataset.NewSnapshot(d)
}

// ParallelFallbackRows is the input-size crossover of RunFARMER's auto
// parallel mode (Workers < 0): datasets with fewer rows run the sequential
// miner, larger ones the work-stealing scheduler with GOMAXPROCS workers.
// At bench scale (≈20 rows) the scheduler's per-task setup and result
// merge cost more than the enumeration itself on several datasets
// (BENCH_core.json: MineParallel loses to Mine on LC, PC and ALL), while
// the paper-scale datasets (62–181 rows) amortize it. An explicit positive
// Workers count always runs the scheduler.
const ParallelFallbackRows = 32
