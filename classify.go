package farmer

import (
	"repro/internal/classify"
)

// The Table-2 classifiers, re-exported.
type (
	// IRGClassifierOptions configures TrainIRGClassifier (per-class
	// minimum-support fraction, minimum confidence, match policy).
	IRGClassifierOptions = classify.IRGOptions
	// IRGClassifier predicts with ranked, coverage-pruned rule groups.
	IRGClassifier = classify.IRGClassifier

	// CBAOptions configures TrainCBA.
	CBAOptions = classify.CBAOptions
	// CBAClassifier is the CBA-CB (M1) rule-list classifier.
	CBAClassifier = classify.CBAClassifier

	// SVMOptions configures TrainSVM.
	SVMOptions = classify.SVMOptions
	// SVMClassifier is a binary linear SVM over expression vectors.
	SVMClassifier = classify.SVMClassifier
	// OVRSVMClassifier extends the SVM to k classes one-vs-rest.
	OVRSVMClassifier = classify.OVRSVMClassifier

	// Split is a train/test partition by row index.
	Split = classify.Split

	// CVResult summarizes a cross-validation run.
	CVResult = classify.CVResult
	// Confusion is a square confusion matrix (Counts[actual][predicted]).
	Confusion = classify.Confusion

	// MatchPolicy selects how a rule group matches a row.
	MatchPolicy = classify.MatchPolicy
)

// Match policies for the IRG classifier.
const (
	// MatchLowerBounds matches a row containing ANY lower bound (default).
	MatchLowerBounds = classify.MatchLowerBounds
	// MatchUpperBound matches only rows containing the full upper bound.
	MatchUpperBound = classify.MatchUpperBound
)

// TrainIRGClassifier mines interesting rule groups per class and builds the
// paper's IRG classifier (§4.2).
func TrainIRGClassifier(train *Dataset, opt IRGClassifierOptions) (*IRGClassifier, error) {
	return classify.TrainIRG(train, opt)
}

// TrainCBA builds a CBA-CB (M1) classifier from the rules expanded out of
// FARMER's upper and lower bounds — the workaround the paper used because
// CBA's own miner cannot finish on microarray data.
func TrainCBA(train *Dataset, opt CBAOptions) (*CBAClassifier, error) {
	return classify.TrainCBA(train, opt)
}

// TrainSVM fits a binary linear soft-margin SVM by dual coordinate descent
// on the standardized matrix (the SVM-light stand-in).
func TrainSVM(train *Matrix, opt SVMOptions) (*SVMClassifier, error) {
	return classify.TrainSVM(train, opt)
}

// TrainOVRSVM fits one linear SVM per class (one-vs-rest) for matrices
// with more than two classes.
func TrainOVRSVM(train *Matrix, opt SVMOptions) (*OVRSVMClassifier, error) {
	return classify.TrainOVRSVM(train, opt)
}

// StratifiedSplit deterministically partitions rows into nTrain training
// rows and the rest test, preserving class proportions.
func StratifiedSplit(labels []int, numClasses, nTrain int) (Split, error) {
	return classify.StratifiedSplit(labels, numClasses, nTrain)
}

// SelectRows returns the sub-dataset with the given rows, in order.
func SelectRows(d *Dataset, rows []int) *Dataset {
	return classify.SelectRows(d, rows)
}

// Accuracy returns the fraction of predictions matching labels.
func Accuracy(preds, labels []int) float64 {
	return classify.Accuracy(preds, labels)
}

// KFold partitions rows into k stratified folds, one Split per fold.
func KFold(labels []int, numClasses, k int, seed int64) ([]Split, error) {
	return classify.KFold(labels, numClasses, k, seed)
}

// CrossValidate evaluates a classifier protocol over k stratified folds;
// pass a closure over TrainIRGClassifier/TrainCBA/TrainSVM.
func CrossValidate(m *Matrix, k int, seed int64,
	evaluate func(*Matrix, Split) (float64, error)) (*CVResult, error) {
	return classify.CrossValidate(m, k, seed, evaluate)
}

// NewConfusion tallies predictions against labels into a confusion matrix.
func NewConfusion(preds, labels []int, classNames []string) (*Confusion, error) {
	return classify.NewConfusion(preds, labels, classNames)
}
