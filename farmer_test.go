package farmer_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	farmer "repro"
)

const paperExample = `
C : a b c l o s
C : a d e h p l r
C : a c e h o q t
N : a e f h p r
N : b d f g l q s t
`

func loadExample(t *testing.T) *farmer.Dataset {
	t.Helper()
	d, err := farmer.ReadTransactions(strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func itemNames(d *farmer.Dataset, items []farmer.Item) string {
	var names []string
	for _, it := range items {
		names = append(names, d.ItemName(it))
	}
	// Items are interned in first-seen order; sort names for comparison.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, "")
}

func TestMineEndToEnd(t *testing.T) {
	d := loadExample(t)
	res, err := farmer.RunFARMER(context.Background(), d, d.ClassIndex("C"), farmer.MineOptions{
		MinSup: 2, MinConf: 0.7, ComputeLowerBounds: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no rule groups")
	}
	// The group {a} → C (rows 1-4, conf 3/4) must be present.
	found := false
	for _, g := range res.Groups {
		if itemNames(d, g.Antecedent) == "a" {
			found = true
			if g.SupPos != 3 || g.SupNeg != 1 {
				t.Fatalf("group a support %d/%d, want 3/1", g.SupPos, g.SupNeg)
			}
			if !reflect.DeepEqual(g.Rows, []int{0, 1, 2, 3}) {
				t.Fatalf("group a rows %v", g.Rows)
			}
		}
		if g.Confidence < 0.7 || g.SupPos < 2 {
			t.Fatalf("group %v violates constraints", g.Antecedent)
		}
	}
	if !found {
		t.Fatal("group {a} missing")
	}
}

func TestClosureOperators(t *testing.T) {
	d := loadExample(t)
	var e farmer.Item = -1
	for i := 0; i < d.NumItems; i++ {
		if d.ItemName(farmer.Item(i)) == "e" {
			e = farmer.Item(i)
		}
	}
	if e < 0 {
		t.Fatal("item e missing")
	}
	rows := farmer.SupportSet(d, []farmer.Item{e})
	if !reflect.DeepEqual(rows, []int{1, 2, 3}) {
		t.Fatalf("R(e) = %v", rows)
	}
	if got := itemNames(d, farmer.Closure(d, []farmer.Item{e})); got != "aeh" {
		t.Fatalf("closure(e) = %q, want aeh", got)
	}
	if got := itemNames(d, farmer.CommonItems(d, rows)); got != "aeh" {
		t.Fatalf("I(R(e)) = %q, want aeh", got)
	}
	lbs, truncated := farmer.LowerBounds(d, farmer.Closure(d, []farmer.Item{e}), 0)
	if truncated || len(lbs) != 2 {
		t.Fatalf("lower bounds of aeh: %v (truncated=%v)", lbs, truncated)
	}
}

func TestBaselinesAgree(t *testing.T) {
	d := loadExample(t)
	ch, err := farmer.RunCHARM(context.Background(), d, farmer.CharmOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := farmer.RunCLOSET(context.Background(), d, farmer.ClosetOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := farmer.RunCARPENTER(context.Background(), d, farmer.CarpenterOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Closed) != len(fp.Closed) || len(ch.Closed) != len(cp.Patterns) {
		t.Fatalf("closed-set counts disagree: charm=%d closet=%d carpenter=%d",
			len(ch.Closed), len(fp.Closed), len(cp.Patterns))
	}

	ce, err := farmer.RunColumnE(context.Background(), d, 0, farmer.ColumnEOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ce.Rules) != len(fa.Groups) {
		t.Fatalf("ColumnE found %d groups, FARMER %d", len(ce.Rules), len(fa.Groups))
	}
}

func TestBudgetSentinels(t *testing.T) {
	d := loadExample(t)
	if _, err := farmer.RunCHARM(context.Background(), d, farmer.CharmOptions{MinSup: 1, MaxNodes: 1}); !errors.Is(err, farmer.ErrCharmBudget) {
		t.Fatalf("charm budget error = %v", err)
	}
	if _, err := farmer.RunCLOSET(context.Background(), d, farmer.ClosetOptions{MinSup: 1, MaxNodes: 1}); !errors.Is(err, farmer.ErrClosetBudget) {
		t.Fatalf("closet budget error = %v", err)
	}
	if _, err := farmer.RunColumnE(context.Background(), d, 0, farmer.ColumnEOptions{MinSup: 1, MaxNodes: 1}); !errors.Is(err, farmer.ErrColumnEBudget) {
		t.Fatalf("columne budget error = %v", err)
	}
}

func TestSyntheticPipeline(t *testing.T) {
	spec := farmer.SynthSpec{
		Name: "api", Rows: 24, Cols: 40, Class1Rows: 12,
		ClassNames:  [2]string{"tumor", "normal"},
		Informative: 8, Effect: 2.0, FlipProb: 0.1, Seed: 9,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	disc, err := farmer.EqualDepth(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	d, err := disc.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // group count depends on seed; reaching here exercises the path

	// Replication preserves per-group support scaling.
	r2 := farmer.Replicate(d, 2)
	if r2.NumRows() != 2*d.NumRows() {
		t.Fatal("Replicate wrong size")
	}
}

func TestClassifierPipeline(t *testing.T) {
	spec := farmer.SynthSpec{
		Name: "apiclf", Rows: 50, Cols: 80, Class1Rows: 25,
		ClassNames:  [2]string{"pos", "neg"},
		Informative: 16, Effect: 2.4, FlipProb: 0.05, Seed: 4,
	}
	m, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := farmer.StratifiedSplit(m.Labels, 2, 34)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := farmer.EntropyMDL(m.SelectRows(sp.Train))
	if err != nil {
		t.Fatal(err)
	}
	train, err := disc.Apply(m.SelectRows(sp.Train))
	if err != nil {
		t.Fatal(err)
	}
	test, err := disc.Apply(m.SelectRows(sp.Test))
	if err != nil {
		t.Fatal(err)
	}

	irg, err := farmer.TrainIRGClassifier(train, farmer.IRGClassifierOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cba, err := farmer.TrainCBA(train, farmer.CBAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	svm, err := farmer.TrainSVM(m.SelectRows(sp.Train), farmer.SVMOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var irgPred, cbaPred, svmPred, labels []int
	for i := range test.Rows {
		irgPred = append(irgPred, irg.Predict(&test.Rows[i]))
		cbaPred = append(cbaPred, cba.Predict(&test.Rows[i]))
		labels = append(labels, test.Rows[i].Class)
	}
	for _, ri := range sp.Test {
		svmPred = append(svmPred, svm.Predict(m.Values[ri]))
	}
	for name, acc := range map[string]float64{
		"IRG": farmer.Accuracy(irgPred, labels),
		"CBA": farmer.Accuracy(cbaPred, labels),
		"SVM": farmer.Accuracy(svmPred, labels),
	} {
		if acc < 0.6 {
			t.Errorf("%s accuracy %v on clean separable data", name, acc)
		}
	}
}

func TestTransactionsRoundTripAPI(t *testing.T) {
	d := loadExample(t)
	var buf bytes.Buffer
	if err := farmer.WriteTransactions(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := farmer.ReadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != d.NumRows() {
		t.Fatal("round trip lost rows")
	}
}

func TestMineParallelAPI(t *testing.T) {
	d := loadExample(t)
	seq, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 1, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Groups) != len(seq.Groups) {
		t.Fatalf("parallel %d groups, sequential %d", len(par.Groups), len(seq.Groups))
	}
}

func TestSpecPresets(t *testing.T) {
	if len(farmer.PaperSpecs()) != 5 || len(farmer.BenchSpecs()) != 5 || len(farmer.Table2Specs()) != 5 {
		t.Fatal("preset spec lists incomplete")
	}
}
