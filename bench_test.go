// Benchmarks regenerating the paper's tables and figures. One benchmark
// family per table/figure; cmd/experiments prints the full sweeps, these
// measure representative points under `go test -bench`.
//
// Naming: BenchmarkFig10_<dataset>_<algorithm>, BenchmarkFig11_<dataset>_...,
// BenchmarkTable2_<dataset>, BenchmarkScaleUp_..., BenchmarkAblation_...
package farmer_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	farmer "repro"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/synth"
)

// benchData caches discretized bench datasets across benchmarks.
var benchData = map[string]*farmer.Dataset{}

func benchDataset(b *testing.B, name string) *farmer.Dataset {
	b.Helper()
	if d, ok := benchData[name]; ok {
		return d
	}
	spec, ok := synth.BenchSpec(name)
	if !ok {
		b.Fatalf("no bench spec %s", name)
	}
	d, err := spec.GenerateDiscrete(10)
	if err != nil {
		b.Fatal(err)
	}
	benchData[name] = d
	return d
}

// midMinsup is the representative Figure-10 sweep point (between the
// paper's high and low ends).
func midMinsup(d *farmer.Dataset) int {
	m := d.ClassCount(0) / 3
	if m < 2 {
		m = 2
	}
	return m
}

// --- Table 1: dataset generation -----------------------------------------

func BenchmarkTable1_GenerateBenchDatasets(b *testing.B) {
	specs := farmer.BenchSpecs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := s.GenerateDiscrete(10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 10: runtime vs minsup per algorithm ---------------------------

func benchFig10FARMER(b *testing.B, name string) {
	d := benchDataset(b, name)
	opt := farmer.MineOptions{MinSup: midMinsup(d), ComputeLowerBounds: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunFARMER(context.Background(), d, 0, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig10ColumnE(b *testing.B, name string) {
	d := benchDataset(b, name)
	opt := farmer.ColumnEOptions{MinSup: midMinsup(d), MaxNodes: 5_000_000}
	b.ReportAllocs()
	dnf := 0
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunColumnE(context.Background(), d, 0, opt); err != nil {
			if errors.Is(err, farmer.ErrColumnEBudget) {
				dnf++
				continue
			}
			b.Fatal(err)
		}
	}
	if dnf > 0 {
		b.ReportMetric(float64(dnf)/float64(b.N), "DNF/op")
	}
}

func benchFig10CHARM(b *testing.B, name string) {
	d := benchDataset(b, name)
	opt := farmer.CharmOptions{MinSup: midMinsup(d), MaxNodes: 5_000_000}
	b.ReportAllocs()
	dnf := 0
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunCHARM(context.Background(), d, opt); err != nil {
			if errors.Is(err, farmer.ErrCharmBudget) {
				dnf++
				continue
			}
			b.Fatal(err)
		}
	}
	if dnf > 0 {
		b.ReportMetric(float64(dnf)/float64(b.N), "DNF/op")
	}
}

func BenchmarkFig10_LC_FARMER(b *testing.B)  { benchFig10FARMER(b, "LC") }
func BenchmarkFig10_LC_ColumnE(b *testing.B) { benchFig10ColumnE(b, "LC") }
func BenchmarkFig10_LC_CHARM(b *testing.B)   { benchFig10CHARM(b, "LC") }

func BenchmarkFig10_BC_FARMER(b *testing.B)  { benchFig10FARMER(b, "BC") }
func BenchmarkFig10_BC_ColumnE(b *testing.B) { benchFig10ColumnE(b, "BC") }
func BenchmarkFig10_BC_CHARM(b *testing.B)   { benchFig10CHARM(b, "BC") }

func BenchmarkFig10_PC_FARMER(b *testing.B)  { benchFig10FARMER(b, "PC") }
func BenchmarkFig10_PC_ColumnE(b *testing.B) { benchFig10ColumnE(b, "PC") }
func BenchmarkFig10_PC_CHARM(b *testing.B)   { benchFig10CHARM(b, "PC") }

func BenchmarkFig10_ALL_FARMER(b *testing.B)  { benchFig10FARMER(b, "ALL") }
func BenchmarkFig10_ALL_ColumnE(b *testing.B) { benchFig10ColumnE(b, "ALL") }
func BenchmarkFig10_ALL_CHARM(b *testing.B)   { benchFig10CHARM(b, "ALL") }

func BenchmarkFig10_CT_FARMER(b *testing.B)  { benchFig10FARMER(b, "CT") }
func BenchmarkFig10_CT_ColumnE(b *testing.B) { benchFig10ColumnE(b, "CT") }
func BenchmarkFig10_CT_CHARM(b *testing.B)   { benchFig10CHARM(b, "CT") }

// --- Figure 10(f): IRG counting ------------------------------------------

func BenchmarkFig10Counts_AllDatasets(b *testing.B) {
	names := []string{"BC", "LC", "CT", "PC", "ALL"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, n := range names {
			d := benchDataset(b, n)
			res, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: midMinsup(d)})
			if err != nil {
				b.Fatal(err)
			}
			total += len(res.Groups)
		}
		if total == 0 {
			b.Fatal("no IRGs found across datasets")
		}
	}
}

// --- Figure 11: runtime vs minconf at minsup=1, minchi ∈ {0, 10} ----------

func benchFig11(b *testing.B, name string, minchi float64) {
	d := benchDataset(b, name)
	opt := farmer.MineOptions{MinSup: 1, MinConf: 0.8, MinChi: minchi, ComputeLowerBounds: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunFARMER(context.Background(), d, 0, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_LC_Chi0(b *testing.B)   { benchFig11(b, "LC", 0) }
func BenchmarkFig11_LC_Chi10(b *testing.B)  { benchFig11(b, "LC", 10) }
func BenchmarkFig11_BC_Chi0(b *testing.B)   { benchFig11(b, "BC", 0) }
func BenchmarkFig11_BC_Chi10(b *testing.B)  { benchFig11(b, "BC", 10) }
func BenchmarkFig11_PC_Chi0(b *testing.B)   { benchFig11(b, "PC", 0) }
func BenchmarkFig11_PC_Chi10(b *testing.B)  { benchFig11(b, "PC", 10) }
func BenchmarkFig11_ALL_Chi0(b *testing.B)  { benchFig11(b, "ALL", 0) }
func BenchmarkFig11_ALL_Chi10(b *testing.B) { benchFig11(b, "ALL", 10) }
func BenchmarkFig11_CT_Chi0(b *testing.B)   { benchFig11(b, "CT", 0) }
func BenchmarkFig11_CT_Chi10(b *testing.B)  { benchFig11(b, "CT", 10) }

// --- Table 2: classifier training + prediction ----------------------------

func benchTable2(b *testing.B, name string) {
	var spec farmer.SynthSpec
	for _, s := range farmer.Table2Specs() {
		if s.Name == name {
			spec = s
		}
	}
	m, err := spec.Generate()
	if err != nil {
		b.Fatal(err)
	}
	nTrain := spec.Rows * 2 / 3
	sp, err := farmer.StratifiedSplit(m.Labels, 2, nTrain)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.EvaluateIRG(m, sp, classify.IRGOptions{}); err != nil {
			b.Fatal(err)
		}
		if _, err := classify.EvaluateCBA(m, sp, classify.CBAOptions{}); err != nil {
			b.Fatal(err)
		}
		if _, err := classify.EvaluateSVM(m, sp, classify.SVMOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_BC(b *testing.B)  { benchTable2(b, "BC") }
func BenchmarkTable2_LC(b *testing.B)  { benchTable2(b, "LC") }
func BenchmarkTable2_CT(b *testing.B)  { benchTable2(b, "CT") }
func BenchmarkTable2_PC(b *testing.B)  { benchTable2(b, "PC") }
func BenchmarkTable2_ALL(b *testing.B) { benchTable2(b, "ALL") }

// --- Scale-up (§4.1): replication ----------------------------------------

func benchScaleUp(b *testing.B, factor int) {
	d := farmer.Replicate(benchDataset(b, "CT"), factor)
	minsup := midMinsup(benchDataset(b, "CT")) * factor
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: minsup}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleUp_CT_x1(b *testing.B)  { benchScaleUp(b, 1) }
func BenchmarkScaleUp_CT_x2(b *testing.B)  { benchScaleUp(b, 2) }
func BenchmarkScaleUp_CT_x5(b *testing.B)  { benchScaleUp(b, 5) }
func BenchmarkScaleUp_CT_x10(b *testing.B) { benchScaleUp(b, 10) }

// --- Ablation: pruning strategies ------------------------------------------

func benchAblation(b *testing.B, mut func(*core.Options)) {
	d := benchDataset(b, "CT")
	opt := core.Options{MinSup: midMinsup(d), MinConf: 0.8}
	mut(&opt)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Mine(d, 0, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_FullPruning(b *testing.B) {
	benchAblation(b, func(o *core.Options) {})
}
func BenchmarkAblation_NoPruning1(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.DisablePruning1 = true })
}
func BenchmarkAblation_NoPruning2(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.DisablePruning2 = true })
}
func BenchmarkAblation_NoPruning3(b *testing.B) {
	benchAblation(b, func(o *core.Options) { o.DisablePruning3 = true })
}
func BenchmarkAblation_NoPruningAtAll(b *testing.B) {
	benchAblation(b, func(o *core.Options) {
		o.DisablePruning1, o.DisablePruning2, o.DisablePruning3 = true, true, true
	})
}

// --- CHARM vs CLOSET side comparison (§4.1 remark) ------------------------

func benchCloset(b *testing.B, name string, algo string) {
	d := benchDataset(b, name)
	minsup := midMinsup(d)
	b.ReportAllocs()
	dnf := 0
	for i := 0; i < b.N; i++ {
		var err error
		switch algo {
		case "charm":
			_, err = farmer.RunCHARM(context.Background(), d, farmer.CharmOptions{MinSup: minsup, MaxNodes: 5_000_000})
			if errors.Is(err, farmer.ErrCharmBudget) {
				dnf++
				err = nil
			}
		case "closet":
			_, err = farmer.RunCLOSET(context.Background(), d, farmer.ClosetOptions{MinSup: minsup, MaxNodes: 5_000_000})
			if errors.Is(err, farmer.ErrClosetBudget) {
				dnf++
				err = nil
			}
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	if dnf > 0 {
		b.ReportMetric(float64(dnf)/float64(b.N), "DNF/op")
	}
}

func BenchmarkClosetCmp_CT_CHARM(b *testing.B)  { benchCloset(b, "CT", "charm") }
func BenchmarkClosetCmp_CT_CLOSET(b *testing.B) { benchCloset(b, "CT", "closet") }

// --- COBBLER: dynamic vs forced enumeration (companion-talk material) -----

func benchCobbler(b *testing.B, mode string) {
	d := benchDataset(b, "CT")
	opt := farmer.CobblerOptions{MinSup: midMinsup(d), ForceMode: mode}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunCOBBLER(context.Background(), d, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCobbler_CT_Dynamic(b *testing.B)     { benchCobbler(b, "") }
func BenchmarkCobbler_CT_RowOnly(b *testing.B)     { benchCobbler(b, "row") }
func BenchmarkCobbler_CT_FeatureOnly(b *testing.B) { benchCobbler(b, "feature") }

// --- Parallel mining: speedup over the sequential miner --------------------
//
// NOTE: on a single-core host (such as some CI sandboxes) these benchmarks
// show only the scheduling overhead; the speedup needs real cores.

// parOpt returns opt with the Workers field set for the canonical API
// (≤ 0 means all cores, matching the benchmarks' worker sweep).
func parOpt(opt farmer.MineOptions, workers int) farmer.MineOptions {
	opt.Workers = workers
	if workers <= 0 {
		opt.Workers = -1
	}
	return opt
}

func benchParallel(b *testing.B, workers int) {
	d := benchDataset(b, "ALL")
	opt := farmer.MineOptions{MinSup: 2, ComputeLowerBounds: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunFARMER(context.Background(), d, 0, parOpt(opt, workers)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallel_ALL_Sequential(b *testing.B) {
	d := benchDataset(b, "ALL")
	opt := farmer.MineOptions{MinSup: 2, ComputeLowerBounds: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := farmer.RunFARMER(context.Background(), d, 0, opt); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkParallel_ALL_2Workers(b *testing.B) { benchParallel(b, 2) }
func BenchmarkParallel_ALL_4Workers(b *testing.B) { benchParallel(b, 4) }

// --- Micro: the FARMER inner machinery ------------------------------------

func BenchmarkMicro_MineLB(b *testing.B) {
	d := benchDataset(b, "CT")
	res, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 2})
	if err != nil {
		b.Fatal(err)
	}
	if len(res.Groups) == 0 {
		b.Skip("no groups to expand")
	}
	ant := res.Groups[len(res.Groups)/2].Antecedent
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		farmer.LowerBounds(d, ant, 0)
	}
}

func BenchmarkMicro_Closure(b *testing.B) {
	d := benchDataset(b, "BC")
	items := d.Rows[0].Items[:3]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		farmer.Closure(d, items)
	}
}

func ExampleMine() {
	d, _ := farmer.ReadTransactions(
		strings.NewReader("C : a b\nC : a\nN : b\n"))
	res, _ := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{MinSup: 2, MinConf: 0.9, ComputeLowerBounds: true})
	for _, g := range res.Groups {
		fmt.Println(g.Format(d, "C"))
	}
	// Output:
	// {a} -> C  (sup=2 conf=1.000 chi=3.00 rows=[0 1] lower=1)
}
