# Development targets. CI (.github/workflows/ci.yml) runs test, race and a
# fuzz smoke pass; `make fuzz FUZZTIME=5m` digs deeper locally.

GO       ?= go
FUZZTIME ?= 30s

FUZZ_TARGETS := FuzzMineEquivalence FuzzClosedSetEquivalence FuzzMineLB

.PHONY: all build vet test race fuzz bench

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each differential fuzz target runs for FUZZTIME; the committed corpus
# under internal/difftest/testdata/fuzz/ replays in plain `make test` too.
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "--- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/difftest || exit 1; \
	done

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...
