# Development targets. CI (.github/workflows/ci.yml) runs test, race and a
# fuzz smoke pass; `make fuzz FUZZTIME=5m` digs deeper locally.

GO       ?= go
FUZZTIME ?= 30s

FUZZ_TARGETS       := FuzzMineEquivalence FuzzClosedSetEquivalence FuzzMineLB
STORE_FUZZ_TARGETS := FuzzReadSnapshot

.PHONY: all build vet test race fuzz bench bench-json bench-compare bench-serve bench-serve-compare serve smoke smoke-cluster

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target runs for FUZZTIME; the committed corpora under
# internal/difftest/testdata/fuzz/ and internal/store/testdata/fuzz/
# replay in plain `make test` too.
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "--- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/difftest || exit 1; \
	done
	@for t in $(STORE_FUZZ_TARGETS); do \
		echo "--- fuzz $$t ($(FUZZTIME))"; \
		$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME) ./internal/store || exit 1; \
	done

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Run the mining service locally with the bundled mini datasets loaded.
SERVE_ADDR ?= :8077
serve:
	$(GO) run ./cmd/farmerd -addr $(SERVE_ADDR) -data testdata

# End-to-end service smoke: boots a real farmerd, mines FARMER and CHARM
# over HTTP, checks the streams against direct library calls, cancels a
# job mid-run and SIGTERMs the daemon. CI runs this with -race.
smoke:
	$(GO) test -count=1 -run TestFarmerdEndToEnd ./cmd/farmerd

# Machine-readable core benchmarks (ns/op, allocs/op, B/op for Prepare,
# SnapshotLoad, Mine, MineParallel and CHARM over the bench datasets, plus
# the widened bitset kernels in isolation); CI archives the file.
BENCH_JSON_DATASETS ?= BC,LC,CT,PC,ALL
bench-json:
	$(GO) run ./cmd/benchjson -datasets $(BENCH_JSON_DATASETS) -o BENCH_core.json

# Re-measure and diff against the committed baseline; exits non-zero when
# ns/op or allocs/op grew past BENCH_THRESHOLD on any benchmark.
BENCH_THRESHOLD ?= 0.30
bench-compare:
	$(GO) run ./cmd/benchjson -datasets $(BENCH_JSON_DATASETS) -o /tmp/bench_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) BENCH_core.json /tmp/bench_new.json

# Cold-vs-warm repeated-request throughput through the farmerd query path
# (one-round-trip POST /v1/query + NDJSON body): ServeCold mines every
# request, ServeWarm replays the primed result cache zero-copy. -cluster
# adds distributed rows: ClusterSingle (standalone service) vs Cluster2W
# (coordinator + two local cluster workers), same job, so the delta is the
# distribution overhead. CI archives the file.
BENCH_SERVE_DATASETS ?= BC,LC,CT,PC,ALL
bench-serve:
	$(GO) run ./cmd/benchjson -serve -cluster -datasets $(BENCH_SERVE_DATASETS) -o BENCH_serve.json

# Re-measure the request path and diff against the committed baseline;
# exits non-zero when allocs/op or bytes/op on a warm replay grew past
# BENCH_THRESHOLD (timing is reported but never gates locally).
bench-serve-compare:
	$(GO) run ./cmd/benchjson -serve -datasets $(BENCH_SERVE_DATASETS) -o /tmp/bench_serve_new.json
	$(GO) run ./cmd/benchjson -compare -metric allocs,bytes -match '^ServeWarm/' -threshold $(BENCH_THRESHOLD) BENCH_serve.json /tmp/bench_serve_new.json

# Anytime-tier quality harness: top-k recall/regret of best-first, leap
# and sample against the exhausted exact miner under node and wall-clock
# budgets, written as BENCH_quality.json. Fails unless best-first at the
# 10% budget keeps >= 0.9 mean recall (both budget dimensions locally; CI
# gates the deterministic node dimension and archives the file).
BENCH_QUALITY_DATASETS ?= BC,LC,CT,PC
BENCH_QUALITY_GATE ?= both
bench-quality:
	$(GO) run ./cmd/benchjson -quality -quality-gate $(BENCH_QUALITY_GATE) -datasets $(BENCH_QUALITY_DATASETS) -o BENCH_quality.json

# Cluster smoke: coordinator + two worker daemons as real processes over
# one shared store dir, FARMER and CHARM mined distributed and diffed
# byte-for-byte against a standalone daemon, one worker SIGKILLed mid-job.
smoke-cluster:
	$(GO) test -count=1 -run TestFarmerdClusterEndToEnd ./cmd/farmerd
