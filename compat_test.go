//lint:file-ignore SA1019 this file deliberately exercises the deprecated
// wrappers to guarantee they keep working and stay equivalent to the
// canonical Run* API.

package farmer_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	farmer "repro"
)

// The deprecated Mine*/MineContext/MineStream/MineParallel wrappers must
// return exactly what the canonical entry points return: same groups, same
// counters.
func TestDeprecatedWrappersMatchCanonicalAPI(t *testing.T) {
	d := loadExample(t)
	ctx := context.Background()
	opt := farmer.MineOptions{MinSup: 2, MinConf: 0.7, ComputeLowerBounds: true}

	want, err := farmer.RunFARMER(ctx, d, 0, opt)
	if err != nil {
		t.Fatal(err)
	}

	got, err := farmer.Mine(d, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) || got.Stats().Counters != want.Stats().Counters {
		t.Fatal("Mine disagrees with RunFARMER")
	}

	got, err = farmer.MineContext(ctx, d, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatal("MineContext disagrees with RunFARMER")
	}

	var streamed []farmer.RuleGroup
	sres, err := farmer.MineStream(ctx, d, 0, opt, func(g farmer.RuleGroup) error {
		streamed = append(streamed, g)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Groups != nil {
		t.Fatal("MineStream must not batch groups")
	}
	if !reflect.DeepEqual(streamed, want.Groups) {
		t.Fatal("MineStream disagrees with RunFARMER")
	}

	// The parallel scheduler reports groups in sorted antecedent order, not
	// the sequential discovery order; compare order-insensitively.
	wantSorted := sortedGroups(want.Groups)
	par, err := farmer.MineParallel(d, 0, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedGroups(par.Groups), wantSorted) {
		t.Fatal("MineParallel disagrees with RunFARMER")
	}
	pctx, err := farmer.MineParallelContext(ctx, d, 0, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedGroups(pctx.Groups), wantSorted) {
		t.Fatal("MineParallelContext disagrees with RunFARMER")
	}
}

// sortedGroups returns a copy of groups in lexicographic antecedent order.
func sortedGroups(groups []farmer.RuleGroup) []farmer.RuleGroup {
	out := append([]farmer.RuleGroup(nil), groups...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Antecedent, out[j].Antecedent
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func TestDeprecatedTopKMatchesRunTopK(t *testing.T) {
	d := loadExample(t)
	want, err := farmer.RunTopK(context.Background(), d, 0,
		farmer.TopKOptions{K: 3, Measure: farmer.MeasureChi2, MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := farmer.MineTopK(d, 0, 3, farmer.MeasureChi2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Groups) {
		t.Fatal("MineTopK disagrees with RunTopK")
	}
	if want.Count() != len(want.Groups) {
		t.Fatal("TopKResult.Count disagrees with len(Groups)")
	}
}

// The deprecated baseline wrappers (batch, Context and Stream forms) must
// match their canonical Run* counterparts.
func TestDeprecatedBaselineWrappersMatchCanonicalAPI(t *testing.T) {
	d := loadExample(t)
	ctx := context.Background()

	wantCh, err := farmer.RunCHARM(ctx, d, farmer.CharmOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotCh, err := farmer.MineClosedCHARM(d, farmer.CharmOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCh.Closed, wantCh.Closed) {
		t.Fatal("MineClosedCHARM disagrees with RunCHARM")
	}
	var streamed []farmer.ClosedSet
	sres, err := farmer.MineClosedCHARMStream(ctx, d, farmer.CharmOptions{MinSup: 2},
		func(c farmer.ClosedSet) error { streamed = append(streamed, c); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(wantCh.Closed) || sres.Count() != 0 {
		t.Fatalf("MineClosedCHARMStream emitted %d sets, want %d (batch count %d, want 0)",
			len(streamed), len(wantCh.Closed), sres.Count())
	}

	wantFP, err := farmer.RunCLOSET(ctx, d, farmer.ClosetOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotFP, err := farmer.MineClosedFPTree(d, farmer.ClosetOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotFP.Closed, wantFP.Closed) {
		t.Fatal("MineClosedFPTree disagrees with RunCLOSET")
	}

	wantCE, err := farmer.RunColumnE(ctx, d, 0, farmer.ColumnEOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotCE, err := farmer.MineColumnE(d, 0, farmer.ColumnEOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCE.Rules, wantCE.Rules) {
		t.Fatal("MineColumnE disagrees with RunColumnE")
	}

	wantCP, err := farmer.RunCARPENTER(ctx, d, farmer.CarpenterOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotCP, err := farmer.MineClosedCARPENTER(d, farmer.CarpenterOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCP.Patterns, wantCP.Patterns) {
		t.Fatal("MineClosedCARPENTER disagrees with RunCARPENTER")
	}

	wantCO, err := farmer.RunCOBBLER(ctx, d, farmer.CobblerOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	gotCO, err := farmer.MineClosedCOBBLER(d, farmer.CobblerOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotCO.Patterns, wantCO.Patterns) {
		t.Fatal("MineClosedCOBBLER disagrees with RunCOBBLER")
	}
}

// RunFARMER rejects the unsupported OnGroup+Workers combination instead of
// silently picking one mode.
func TestRunFARMERStreamingParallelConflict(t *testing.T) {
	d := loadExample(t)
	_, err := farmer.RunFARMER(context.Background(), d, 0, farmer.MineOptions{
		MinSup:  1,
		Workers: 2,
		OnGroup: func(farmer.RuleGroup) error { return nil },
	})
	if err == nil {
		t.Fatal("OnGroup with Workers != 0 must error")
	}
}

// Every result type is usable through the MinerResult interface.
func TestMinerResultInterface(t *testing.T) {
	d := loadExample(t)
	ctx := context.Background()

	farmerRes, err := farmer.RunFARMER(ctx, d, 0, farmer.MineOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	charmRes, err := farmer.RunCHARM(ctx, d, farmer.CharmOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		res  farmer.MinerResult
		want int
	}{
		{"farmer", farmerRes, len(farmerRes.Groups)},
		{"charm", charmRes, len(charmRes.Closed)},
	} {
		if tc.res.Count() != tc.want {
			t.Errorf("%s: Count() = %d, want %d", tc.name, tc.res.Count(), tc.want)
		}
		if tc.res.Stats().NodesVisited == 0 {
			t.Errorf("%s: Stats().NodesVisited = 0, want > 0", tc.name)
		}
	}
}
