package farmer

import (
	"context"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/cobbler"
	"repro/internal/columne"
)

// The baseline miners of the paper's evaluation, re-exported so downstream
// users can run the same comparisons. All are independent implementations:
// CHARM and the CLOSET-style miner enumerate the column space over tidsets
// and FP-trees respectively; ColumnE mines one interesting rule per rule
// group by column enumeration; CARPENTER is the row-enumeration closed-
// pattern predecessor of FARMER.
type (
	// CharmOptions configures MineClosedCHARM (MinSup, work budget).
	CharmOptions = charm.Options
	// CharmResult is MineClosedCHARM's outcome.
	CharmResult = charm.Result
	// ClosedSet is a closed itemset with support and tidset (CHARM).
	ClosedSet = charm.ClosedSet

	// ClosetOptions configures MineClosedFPTree.
	ClosetOptions = closet.Options
	// ClosetResult is MineClosedFPTree's outcome.
	ClosetResult = closet.Result
	// ClosetClosedSet is a closed itemset as reported by the CLOSET-style
	// miner (items and support; no tidset).
	ClosetClosedSet = closet.ClosedSet

	// ColumnEOptions configures MineColumnE.
	ColumnEOptions = columne.Options
	// ColumnEResult is MineColumnE's outcome.
	ColumnEResult = columne.Result
	// ColumnERule is one interesting rule found by column enumeration.
	ColumnERule = columne.Rule

	// CobblerOptions configures MineClosedCOBBLER (MinSup, ForceMode,
	// SwitchDepth).
	CobblerOptions = cobbler.Options
	// CobblerResult is MineClosedCOBBLER's outcome, including per-mode node
	// counts and the number of mode switches.
	CobblerResult = cobbler.Result
	// CobblerClosedPattern is a closed itemset with supporting rows as
	// reported by COBBLER.
	CobblerClosedPattern = cobbler.ClosedPattern

	// CarpenterOptions configures MineClosedCARPENTER.
	CarpenterOptions = carpenter.Options
	// CarpenterResult is MineClosedCARPENTER's outcome.
	CarpenterResult = carpenter.Result
	// ClosedPattern is a closed itemset with its supporting rows
	// (CARPENTER).
	ClosedPattern = carpenter.ClosedPattern
)

// ErrBudget sentinels: returned by the budgeted baselines when their work
// budget runs out ("did not finish").
var (
	ErrCharmBudget   = charm.ErrBudget
	ErrClosetBudget  = closet.ErrBudget
	ErrColumnEBudget = columne.ErrBudget
)

// MineClosedCHARM mines all closed itemsets of d with the CHARM algorithm
// (Zaki & Hsiao, SDM 2002).
func MineClosedCHARM(d *Dataset, opt CharmOptions) (*CharmResult, error) {
	return charm.Mine(d, opt)
}

// MineClosedCHARMContext is MineClosedCHARM under a context: cancellation
// stops the search within one node expansion and returns ctx.Err() with
// the closed sets found so far.
func MineClosedCHARMContext(ctx context.Context, d *Dataset, opt CharmOptions) (*CharmResult, error) {
	return charm.MineContext(ctx, d, opt)
}

// MineClosedCHARMStream is MineClosedCHARMContext with streaming emission:
// each closed set is delivered as soon as it survives subsumption, in
// discovery order (not the sorted batch order).
func MineClosedCHARMStream(ctx context.Context, d *Dataset, opt CharmOptions, onClosed func(ClosedSet) error) (*CharmResult, error) {
	return charm.MineStream(ctx, d, opt, onClosed)
}

// MineClosedFPTree mines all closed itemsets of d with a CLOSET-style
// FP-tree pattern-growth miner.
func MineClosedFPTree(d *Dataset, opt ClosetOptions) (*ClosetResult, error) {
	return closet.Mine(d, opt)
}

// MineClosedFPTreeContext is MineClosedFPTree under a context; see
// MineClosedCHARMContext for the cancellation contract.
func MineClosedFPTreeContext(ctx context.Context, d *Dataset, opt ClosetOptions) (*ClosetResult, error) {
	return closet.MineContext(ctx, d, opt)
}

// MineClosedFPTreeStream is MineClosedFPTreeContext with streaming
// emission, in discovery order.
func MineClosedFPTreeStream(ctx context.Context, d *Dataset, opt ClosetOptions, onClosed func(ClosetClosedSet) error) (*ClosetResult, error) {
	return closet.MineStream(ctx, d, opt, onClosed)
}

// MineColumnE mines one representative rule per interesting rule group by
// column enumeration (Bayardo & Agrawal, KDD 1999 style) — the paper's
// ColumnE baseline.
func MineColumnE(d *Dataset, consequent int, opt ColumnEOptions) (*ColumnEResult, error) {
	return columne.Mine(d, consequent, opt)
}

// MineColumnEContext is MineColumnE under a context; cancellation stops
// the search within one node expansion and returns ctx.Err().
func MineColumnEContext(ctx context.Context, d *Dataset, consequent int, opt ColumnEOptions) (*ColumnEResult, error) {
	return columne.MineContext(ctx, d, consequent, opt)
}

// MineColumnEStream is MineColumnEContext with streaming emission. Unlike
// the other miners, ColumnE decides interestingness by a global fixpoint
// over all candidates, so rules are delivered during the finish phase (in
// fixpoint order, not the sorted batch order) rather than as enumeration
// proceeds.
func MineColumnEStream(ctx context.Context, d *Dataset, consequent int, opt ColumnEOptions, onRule func(ColumnERule) error) (*ColumnEResult, error) {
	return columne.MineStream(ctx, d, consequent, opt, onRule)
}

// MineClosedCARPENTER mines all closed itemsets of d by row enumeration
// (Pan et al., KDD 2003) — FARMER's class-blind predecessor.
func MineClosedCARPENTER(d *Dataset, opt CarpenterOptions) (*CarpenterResult, error) {
	return carpenter.Mine(d, opt)
}

// MineClosedCARPENTERContext is MineClosedCARPENTER under a context; see
// MineClosedCHARMContext for the cancellation contract.
func MineClosedCARPENTERContext(ctx context.Context, d *Dataset, opt CarpenterOptions) (*CarpenterResult, error) {
	return carpenter.MineContext(ctx, d, opt)
}

// MineClosedCARPENTERStream is MineClosedCARPENTERContext with streaming
// emission, in discovery order.
func MineClosedCARPENTERStream(ctx context.Context, d *Dataset, opt CarpenterOptions, onClosed func(ClosedPattern) error) (*CarpenterResult, error) {
	return carpenter.MineStream(ctx, d, opt, onClosed)
}

// MineClosedCOBBLER mines all closed itemsets of d with COBBLER (Pan et
// al., SSDBM 2004), switching dynamically between row and feature
// enumeration per subtree — the authors' successor for tables large in
// both dimensions.
func MineClosedCOBBLER(d *Dataset, opt CobblerOptions) (*CobblerResult, error) {
	return cobbler.Mine(d, opt)
}

// MineClosedCOBBLERContext is MineClosedCOBBLER under a context; see
// MineClosedCHARMContext for the cancellation contract.
func MineClosedCOBBLERContext(ctx context.Context, d *Dataset, opt CobblerOptions) (*CobblerResult, error) {
	return cobbler.MineContext(ctx, d, opt)
}

// MineClosedCOBBLERStream is MineClosedCOBBLERContext with streaming
// emission, in discovery order.
func MineClosedCOBBLERStream(ctx context.Context, d *Dataset, opt CobblerOptions, onClosed func(CobblerClosedPattern) error) (*CobblerResult, error) {
	return cobbler.MineStream(ctx, d, opt, onClosed)
}
