package farmer

import (
	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/cobbler"
	"repro/internal/columne"
)

// The baseline miners of the paper's evaluation, re-exported so downstream
// users can run the same comparisons. All are independent implementations:
// CHARM and the CLOSET-style miner enumerate the column space over tidsets
// and FP-trees respectively; ColumnE mines one interesting rule per rule
// group by column enumeration; CARPENTER is the row-enumeration closed-
// pattern predecessor of FARMER.
type (
	// CharmOptions configures MineClosedCHARM (MinSup, work budget).
	CharmOptions = charm.Options
	// CharmResult is MineClosedCHARM's outcome.
	CharmResult = charm.Result
	// ClosedSet is a closed itemset with support and tidset (CHARM).
	ClosedSet = charm.ClosedSet

	// ClosetOptions configures MineClosedFPTree.
	ClosetOptions = closet.Options
	// ClosetResult is MineClosedFPTree's outcome.
	ClosetResult = closet.Result

	// ColumnEOptions configures MineColumnE.
	ColumnEOptions = columne.Options
	// ColumnEResult is MineColumnE's outcome.
	ColumnEResult = columne.Result
	// ColumnERule is one interesting rule found by column enumeration.
	ColumnERule = columne.Rule

	// CobblerOptions configures MineClosedCOBBLER (MinSup, ForceMode,
	// SwitchDepth).
	CobblerOptions = cobbler.Options
	// CobblerResult is MineClosedCOBBLER's outcome, including per-mode node
	// counts and the number of mode switches.
	CobblerResult = cobbler.Result

	// CarpenterOptions configures MineClosedCARPENTER.
	CarpenterOptions = carpenter.Options
	// CarpenterResult is MineClosedCARPENTER's outcome.
	CarpenterResult = carpenter.Result
	// ClosedPattern is a closed itemset with its supporting rows
	// (CARPENTER).
	ClosedPattern = carpenter.ClosedPattern
)

// ErrBudget sentinels: returned by the budgeted baselines when their work
// budget runs out ("did not finish").
var (
	ErrCharmBudget   = charm.ErrBudget
	ErrClosetBudget  = closet.ErrBudget
	ErrColumnEBudget = columne.ErrBudget
)

// MineClosedCHARM mines all closed itemsets of d with the CHARM algorithm
// (Zaki & Hsiao, SDM 2002).
func MineClosedCHARM(d *Dataset, opt CharmOptions) (*CharmResult, error) {
	return charm.Mine(d, opt)
}

// MineClosedFPTree mines all closed itemsets of d with a CLOSET-style
// FP-tree pattern-growth miner.
func MineClosedFPTree(d *Dataset, opt ClosetOptions) (*ClosetResult, error) {
	return closet.Mine(d, opt)
}

// MineColumnE mines one representative rule per interesting rule group by
// column enumeration (Bayardo & Agrawal, KDD 1999 style) — the paper's
// ColumnE baseline.
func MineColumnE(d *Dataset, consequent int, opt ColumnEOptions) (*ColumnEResult, error) {
	return columne.Mine(d, consequent, opt)
}

// MineClosedCARPENTER mines all closed itemsets of d by row enumeration
// (Pan et al., KDD 2003) — FARMER's class-blind predecessor.
func MineClosedCARPENTER(d *Dataset, opt CarpenterOptions) (*CarpenterResult, error) {
	return carpenter.Mine(d, opt)
}

// MineClosedCOBBLER mines all closed itemsets of d with COBBLER (Pan et
// al., SSDBM 2004), switching dynamically between row and feature
// enumeration per subtree — the authors' successor for tables large in
// both dimensions.
func MineClosedCOBBLER(d *Dataset, opt CobblerOptions) (*CobblerResult, error) {
	return cobbler.Mine(d, opt)
}
