package farmer

import (
	"context"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/cobbler"
	"repro/internal/columne"
)

// The baseline miners of the paper's evaluation, re-exported so downstream
// users can run the same comparisons. All are independent implementations:
// CHARM and the CLOSET-style miner enumerate the column space over tidsets
// and FP-trees respectively; ColumnE mines one interesting rule per rule
// group by column enumeration; CARPENTER is the row-enumeration closed-
// pattern predecessor of FARMER.
type (
	// CharmOptions configures MineClosedCHARM (MinSup, work budget).
	CharmOptions = charm.Options
	// CharmResult is MineClosedCHARM's outcome.
	CharmResult = charm.Result
	// ClosedSet is a closed itemset with support and tidset (CHARM).
	ClosedSet = charm.ClosedSet

	// ClosetOptions configures MineClosedFPTree.
	ClosetOptions = closet.Options
	// ClosetResult is MineClosedFPTree's outcome.
	ClosetResult = closet.Result
	// ClosetClosedSet is a closed itemset as reported by the CLOSET-style
	// miner (items and support; no tidset).
	ClosetClosedSet = closet.ClosedSet

	// ColumnEOptions configures MineColumnE.
	ColumnEOptions = columne.Options
	// ColumnEResult is MineColumnE's outcome.
	ColumnEResult = columne.Result
	// ColumnERule is one interesting rule found by column enumeration.
	ColumnERule = columne.Rule

	// CobblerOptions configures MineClosedCOBBLER (MinSup, ForceMode,
	// SwitchDepth).
	CobblerOptions = cobbler.Options
	// CobblerResult is MineClosedCOBBLER's outcome, including per-mode node
	// counts and the number of mode switches.
	CobblerResult = cobbler.Result
	// CobblerClosedPattern is a closed itemset with supporting rows as
	// reported by COBBLER.
	CobblerClosedPattern = cobbler.ClosedPattern

	// CarpenterOptions configures MineClosedCARPENTER.
	CarpenterOptions = carpenter.Options
	// CarpenterResult is MineClosedCARPENTER's outcome.
	CarpenterResult = carpenter.Result
	// ClosedPattern is a closed itemset with its supporting rows
	// (CARPENTER).
	ClosedPattern = carpenter.ClosedPattern
)

// ErrBudget sentinels: returned by the budgeted baselines when their work
// budget runs out ("did not finish").
var (
	ErrCharmBudget   = charm.ErrBudget
	ErrClosetBudget  = closet.ErrBudget
	ErrColumnEBudget = columne.ErrBudget
)

// MineClosedCHARM mines all closed itemsets of d with the CHARM algorithm
// (Zaki & Hsiao, SDM 2002).
// Deprecated: use RunCHARM, which adds context cancellation and folds the
// streaming variant into the options struct.
func MineClosedCHARM(d *Dataset, opt CharmOptions) (*CharmResult, error) {
	return RunCHARM(context.Background(), d, opt)
}

// MineClosedCHARMContext is MineClosedCHARM under a context: cancellation
// stops the search within one node expansion and returns ctx.Err() with
// the closed sets found so far.
// Deprecated: use RunCHARM, its canonical name.
func MineClosedCHARMContext(ctx context.Context, d *Dataset, opt CharmOptions) (*CharmResult, error) {
	return RunCHARM(ctx, d, opt)
}

// MineClosedCHARMStream is MineClosedCHARMContext with streaming emission:
// each closed set is delivered as soon as it survives subsumption, in
// discovery order (not the sorted batch order).
// Deprecated: use RunCHARM with the OnClosed options field.
func MineClosedCHARMStream(ctx context.Context, d *Dataset, opt CharmOptions, onClosed func(ClosedSet) error) (*CharmResult, error) {
	opt.OnClosed = onClosed
	return RunCHARM(ctx, d, opt)
}

// MineClosedFPTree mines all closed itemsets of d with a CLOSET-style
// FP-tree pattern-growth miner.
// Deprecated: use RunCLOSET, which adds context cancellation and folds the
// streaming variant into the options struct.
func MineClosedFPTree(d *Dataset, opt ClosetOptions) (*ClosetResult, error) {
	return RunCLOSET(context.Background(), d, opt)
}

// MineClosedFPTreeContext is MineClosedFPTree under a context; see
// MineClosedCHARMContext for the cancellation contract.
// Deprecated: use RunCLOSET, its canonical name.
func MineClosedFPTreeContext(ctx context.Context, d *Dataset, opt ClosetOptions) (*ClosetResult, error) {
	return RunCLOSET(ctx, d, opt)
}

// MineClosedFPTreeStream is MineClosedFPTreeContext with streaming
// emission, in discovery order.
// Deprecated: use RunCLOSET with the OnClosed options field.
func MineClosedFPTreeStream(ctx context.Context, d *Dataset, opt ClosetOptions, onClosed func(ClosetClosedSet) error) (*ClosetResult, error) {
	opt.OnClosed = onClosed
	return RunCLOSET(ctx, d, opt)
}

// MineColumnE mines one representative rule per interesting rule group by
// column enumeration (Bayardo & Agrawal, KDD 1999 style) — the paper's
// ColumnE baseline.
// Deprecated: use RunColumnE, which adds context cancellation and folds
// the streaming variant into the options struct.
func MineColumnE(d *Dataset, consequent int, opt ColumnEOptions) (*ColumnEResult, error) {
	return RunColumnE(context.Background(), d, consequent, opt)
}

// MineColumnEContext is MineColumnE under a context; cancellation stops
// the search within one node expansion and returns ctx.Err().
// Deprecated: use RunColumnE, its canonical name.
func MineColumnEContext(ctx context.Context, d *Dataset, consequent int, opt ColumnEOptions) (*ColumnEResult, error) {
	return RunColumnE(ctx, d, consequent, opt)
}

// MineColumnEStream is MineColumnEContext with streaming emission. Unlike
// the other miners, ColumnE decides interestingness by a global fixpoint
// over all candidates, so rules are delivered during the finish phase (in
// fixpoint order, not the sorted batch order) rather than as enumeration
// proceeds.
// Deprecated: use RunColumnE with the OnRule options field.
func MineColumnEStream(ctx context.Context, d *Dataset, consequent int, opt ColumnEOptions, onRule func(ColumnERule) error) (*ColumnEResult, error) {
	opt.OnRule = onRule
	return RunColumnE(ctx, d, consequent, opt)
}

// MineClosedCARPENTER mines all closed itemsets of d by row enumeration
// (Pan et al., KDD 2003) — FARMER's class-blind predecessor.
// Deprecated: use RunCARPENTER, which adds context cancellation and folds
// the streaming variant into the options struct.
func MineClosedCARPENTER(d *Dataset, opt CarpenterOptions) (*CarpenterResult, error) {
	return RunCARPENTER(context.Background(), d, opt)
}

// MineClosedCARPENTERContext is MineClosedCARPENTER under a context; see
// MineClosedCHARMContext for the cancellation contract.
// Deprecated: use RunCARPENTER, its canonical name.
func MineClosedCARPENTERContext(ctx context.Context, d *Dataset, opt CarpenterOptions) (*CarpenterResult, error) {
	return RunCARPENTER(ctx, d, opt)
}

// MineClosedCARPENTERStream is MineClosedCARPENTERContext with streaming
// emission, in discovery order.
// Deprecated: use RunCARPENTER with the OnClosed options field.
func MineClosedCARPENTERStream(ctx context.Context, d *Dataset, opt CarpenterOptions, onClosed func(ClosedPattern) error) (*CarpenterResult, error) {
	opt.OnClosed = onClosed
	return RunCARPENTER(ctx, d, opt)
}

// MineClosedCOBBLER mines all closed itemsets of d with COBBLER (Pan et
// al., SSDBM 2004), switching dynamically between row and feature
// enumeration per subtree — the authors' successor for tables large in
// both dimensions.
// Deprecated: use RunCOBBLER, which adds context cancellation and folds
// the streaming variant into the options struct.
func MineClosedCOBBLER(d *Dataset, opt CobblerOptions) (*CobblerResult, error) {
	return RunCOBBLER(context.Background(), d, opt)
}

// MineClosedCOBBLERContext is MineClosedCOBBLER under a context; see
// MineClosedCHARMContext for the cancellation contract.
// Deprecated: use RunCOBBLER, its canonical name.
func MineClosedCOBBLERContext(ctx context.Context, d *Dataset, opt CobblerOptions) (*CobblerResult, error) {
	return RunCOBBLER(ctx, d, opt)
}

// MineClosedCOBBLERStream is MineClosedCOBBLERContext with streaming
// emission, in discovery order.
// Deprecated: use RunCOBBLER with the OnClosed options field.
func MineClosedCOBBLERStream(ctx context.Context, d *Dataset, opt CobblerOptions, onClosed func(CobblerClosedPattern) error) (*CobblerResult, error) {
	opt.OnClosed = onClosed
	return RunCOBBLER(ctx, d, opt)
}
