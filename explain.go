package farmer

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Explanation is a human-readable account of one rule group in terms of the
// original genes and expression ranges — what a biologist reads instead of
// item ids (the interpretability argument of the paper's introduction).
type Explanation struct {
	// Conditions are the antecedent items translated to per-gene value
	// ranges, e.g. "g17 in (0.35, 1.20]".
	Conditions []string
	// Class is the consequent label.
	Class string
	// Summary is the one-line statistics header.
	Summary string
	// AlternativeConditions renders each lower bound the same way — the
	// minimal gene panels that already imply the rule.
	AlternativeConditions [][]string
}

// ExplainGroup translates a mined rule group back to gene-level conditions
// using the discretizer that produced the dataset. Items that do not belong
// to the discretizer (for example, hand-built datasets) fall back to their
// item names.
func ExplainGroup(d *Dataset, disc *Discretizer, g *RuleGroup, class string) *Explanation {
	e := &Explanation{
		Class: class,
		Summary: fmt.Sprintf("support=%d/%d confidence=%.1f%% chi=%.2f",
			g.SupPos, g.SupPos+g.SupNeg, 100*g.Confidence, g.Chi),
	}
	e.Conditions = explainItems(d, disc, g.Antecedent)
	for _, lb := range g.LowerBounds {
		e.AlternativeConditions = append(e.AlternativeConditions, explainItems(d, disc, lb))
	}
	return e
}

func explainItems(d *Dataset, disc *Discretizer, items []Item) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, explainItem(d, disc, it))
	}
	sort.Strings(out)
	return out
}

func explainItem(d *Dataset, disc *Discretizer, it Item) string {
	if disc != nil {
		if col := disc.ItemColumn(it); col >= 0 {
			base := disc.Columns()[col]
			bucket := int(it) - base
			lo, hi := disc.BucketRange(col, bucket)
			name := colName(d, disc, col, it)
			switch {
			case math.IsInf(lo, -1) && math.IsInf(hi, 1):
				return name
			case math.IsInf(lo, -1):
				return fmt.Sprintf("%s <= %.3g", name, hi)
			case math.IsInf(hi, 1):
				return fmt.Sprintf("%s > %.3g", name, lo)
			default:
				return fmt.Sprintf("%s in (%.3g, %.3g]", name, lo, hi)
			}
		}
	}
	return d.ItemName(it)
}

// colName strips the "#bucket" suffix the discretizer appends to item
// names, falling back to a positional name.
func colName(d *Dataset, disc *Discretizer, col int, it Item) string {
	n := d.ItemName(it)
	if i := strings.LastIndexByte(n, '#'); i > 0 {
		return n[:i]
	}
	return fmt.Sprintf("c%d", col)
}

// String renders the explanation as a small block.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "IF %s THEN %s   (%s)\n",
		strings.Join(e.Conditions, " AND "), e.Class, e.Summary)
	for _, alt := range e.AlternativeConditions {
		fmt.Fprintf(&b, "  already implied by: %s\n", strings.Join(alt, " AND "))
	}
	return b.String()
}
