package farmer

import (
	"repro/internal/core"
	"repro/internal/genenet"
)

// Gene-network construction from rule groups — the paper's second
// motivating application (§1): genes that co-occur in upper bounds are
// candidate associations.
type (
	// GeneGraph is a weighted undirected gene-association graph with
	// thresholding, connected components, and DOT export.
	GeneGraph = genenet.Graph
	// GeneEdge is one association between two source columns.
	GeneEdge = genenet.Edge
	// GeneNetOptions configures BuildGeneNetwork.
	GeneNetOptions = genenet.Options
)

// BuildGeneNetwork aggregates mined rule groups into a gene-association
// graph, mapping items back to genes through the discretizer.
func BuildGeneNetwork(m *Matrix, disc *Discretizer, results []*MineResult, opt GeneNetOptions) (*GeneGraph, error) {
	rs := make([]*core.Result, len(results))
	copy(rs, results)
	return genenet.Build(m, disc, rs, opt)
}
