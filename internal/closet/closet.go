// Package closet implements a CLOSET/CLOSET+-style closed-itemset miner:
// FP-tree pattern growth with item merging (closure extension) and a global
// subsumption check. It is the second column-enumeration baseline of the
// paper's efficiency study; the paper reports CHARM dominating it on
// microarray data, a shape our benchmarks reproduce.
package closet

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedSet is one closed itemset and its absolute row support.
type ClosedSet struct {
	Items   []dataset.Item
	Support int
}

// Options configures a run.
type Options struct {
	// MinSup is the minimum absolute row support, ≥ 1.
	MinSup int
	// MaxNodes, when > 0, bounds the WORK done: conditional trees explored
	// plus subsumption comparisons. Exceeding it aborts with ErrBudget.
	MaxNodes int64

	// OnClosed, when non-nil, switches the canonical entry point
	// (farmer.RunCLOSET) to streaming emission in discovery order; the
	// result accumulates no Closed sets. Ignored by the low-level Mine*
	// functions, which take their callback as an argument.
	OnClosed func(ClosedSet) error

	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset: the run takes the FP-tree header order from the snapshot's
	// global frequency order instead of recounting (the comparator is the
	// same, so the filtered order is identical). The initial tree still
	// builds per run — it depends on MinSup. The snapshot must have been
	// built from the exact *Dataset passed to the mining call.
	Prepared *dataset.Snapshot
}

// ErrBudget reports an exhausted node budget.
var ErrBudget = fmt.Errorf("closet: node budget exhausted")

// Result carries mined closed sets and effort statistics. Nodes keeps the
// legacy work-unit count (conditional trees plus subsumption comparisons —
// what MaxNodes bounds); Stats carries the engine's unified counters,
// where NodesVisited counts conditional trees only.
type Result struct {
	Closed []ClosedSet
	Nodes  int64

	stats engine.Stats
}

// Stats returns the engine's unified run statistics.
func (r *Result) Stats() engine.Stats { return r.stats }

// Count returns the number of closed sets in the batch result.
func (r *Result) Count() int { return len(r.Closed) }

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// conditional-tree expansion. On cancellation it returns ctx.Err() with a
// non-nil Result carrying the partial statistics and the closed sets
// already emitted. (Budget exhaustion keeps its legacy convention:
// ErrBudget with a nil Result.)
func MineContext(ctx context.Context, d *dataset.Dataset, opt Options) (*Result, error) {
	var out []ClosedSet
	res, err := MineStream(ctx, d, opt, func(c ClosedSet) error {
		out = append(out, c)
		return nil
	})
	if res != nil {
		sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Items, out[j].Items) })
		res.Closed = out
	}
	return res, err
}

// MineStream is the streaming form of Mine: each closed set is delivered
// to onClosed the moment its subsumption check passes — final immediately,
// since the bottom-up branch order guarantees a candidate's closed
// superset is discovered first — in discovery rather than Mine's sorted
// order. A callback error aborts the run and is returned verbatim; after
// cancellation no further sets are delivered.
func MineStream(ctx context.Context, d *dataset.Dataset, opt Options, onClosed func(ClosedSet) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("closet: MinSup must be >= 1, got %d", opt.MinSup)
	}
	snap := opt.Prepared
	if snap != nil && snap.Dataset() != d {
		return nil, fmt.Errorf("closet: Prepared snapshot was built from a different dataset")
	}
	if snap == nil {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	ex := engine.NewExec(ctx)
	m := &miner{opt: opt, ex: ex, emitFn: onClosed, bySupport: map[int][]int{}}

	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	// Global frequencies define the FP-tree item order (descending count).
	var frequent []dataset.Item
	if snap != nil {
		// The snapshot's frequency order uses the same comparator
		// (count desc, item asc), so filtering it by MinSup yields
		// exactly the order the recount below would produce.
		ex.Stats.PrepareReused++
		for _, it := range snap.FreqOrder() {
			if snap.ItemFreq(it) >= opt.MinSup {
				frequent = append(frequent, it)
			}
		}
	} else {
		freq := make(map[dataset.Item]int)
		for _, r := range d.Rows {
			for _, it := range r.Items {
				freq[it]++
			}
		}
		for it, c := range freq {
			if c >= opt.MinSup {
				frequent = append(frequent, it)
			}
		}
		sort.Slice(frequent, func(i, j int) bool {
			if freq[frequent[i]] != freq[frequent[j]] {
				return freq[frequent[i]] > freq[frequent[j]]
			}
			return frequent[i] < frequent[j]
		})
	}
	rank := make(map[dataset.Item]int, len(frequent))
	for i, it := range frequent {
		rank[it] = i
	}
	m.frequent = frequent
	m.nranks = len(frequent)

	// Build the initial tree over frequent items in rank order. The tree
	// works in rank space throughout: per-item chains and counts are
	// rank-indexed arrays, not maps.
	tr := m.newTree()
	buf := make([]int32, 0, 64)
	for _, r := range d.Rows {
		buf = buf[:0]
		for _, it := range r.Items {
			if rk, ok := rank[it]; ok {
				buf = append(buf, int32(rk))
			}
		}
		slices.Sort(buf)
		tr.insert(buf, 1)
	}
	setupDone()

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	err := m.mine(nil, len(d.Rows), tr)
	searchDone()
	if err == ErrBudget {
		return nil, err
	}
	ex.Stats.ArenaBytes = m.nodesSlab.SizeBytes() + m.headsSlab.SizeBytes() +
		m.intsSlab.SizeBytes() + m.rankSlab.SizeBytes() + m.itemsSlab.SizeBytes()
	return &Result{Nodes: m.nodes, stats: ex.Stats}, err
}

type miner struct {
	opt       Options
	ex        *engine.Exec
	emitFn    func(ClosedSet) error
	frequent  []dataset.Item // rank -> item (rank 0 = most frequent)
	nranks    int
	out       []ClosedSet
	bySupport map[int][]int // support -> indices into out, for subsumption
	nodes     int64

	// Slab arenas behind the conditional trees: node storage, the
	// rank-indexed head/count arrays, the path scratch, and the item-merge
	// buffer. Each child's conditional tree is built under a mark taken in
	// the parent's loop and released when its subtree returns, so tree
	// construction stops allocating once the slabs reach high water.
	nodesSlab engine.Slab[node]
	headsSlab engine.Slab[*node]
	intsSlab  engine.Slab[int]
	rankSlab  engine.Slab[int32]
	itemsSlab engine.Slab[dataset.Item]
}

// mine processes the conditional FP-tree of prefix (whose own support is
// prefixSup). It merges full-support items into the prefix, emits the
// resulting closed candidate, and recurses per remaining frequent item.
func (m *miner) mine(prefix []dataset.Item, prefixSup int, tr *tree) error {
	if err := m.ex.EnterNode(); err != nil {
		return err
	}
	m.nodes++
	if m.opt.MaxNodes > 0 && m.nodes > m.opt.MaxNodes {
		return ErrBudget
	}

	// Item merging: items occurring in every transaction of the base join
	// the closure directly.
	immark := m.itemsSlab.Mark()
	merged := m.itemsSlab.Alloc(m.nranks)[:0]
	for r := 0; r < m.nranks; r++ {
		if c := tr.counts[r]; c > 0 && c == prefixSup {
			merged = append(merged, m.frequent[r])
		}
	}
	if len(merged) > 0 {
		m.ex.Stats.RowsAbsorbed += int64(len(merged))
	}
	closedCand := mergeItems(prefix, merged)
	m.itemsSlab.Release(immark)
	if len(closedCand) > 0 && prefixSup >= m.opt.MinSup {
		if err := m.emit(closedCand, prefixSup); err != nil {
			return err
		}
	}

	// Recurse per remaining item in exact reverse of the tree's rank
	// order (bottom-up). This ordering is what makes the subsumption check
	// sound: a non-closed candidate's closed superset is always discovered
	// in an earlier branch.
	for r := m.nranks - 1; r >= 0; r-- {
		sup := tr.counts[r]
		if sup < m.opt.MinSup || sup == prefixSup {
			continue
		}
		if m.opt.MaxNodes > 0 && m.nodes > m.opt.MaxNodes {
			return ErrBudget
		}
		childPrefix := mergeItems(closedCand, []dataset.Item{m.frequent[r]})
		// Subsumption pruning: an existing closed superset with the same
		// support proves the whole branch is redundant.
		if m.subsumed(childPrefix, sup) {
			m.ex.Stats.PrunedBackScan++
			continue
		}
		nmark := m.nodesSlab.Mark()
		hmark := m.headsSlab.Mark()
		imark := m.intsSlab.Mark()
		rmark := m.rankSlab.Mark()
		child := tr.conditional(int32(r), m.opt.MinSup)
		err := m.mine(childPrefix, sup, child)
		m.rankSlab.Release(rmark)
		m.intsSlab.Release(imark)
		m.headsSlab.Release(hmark)
		m.nodesSlab.Release(nmark)
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *miner) emit(items []dataset.Item, sup int) error {
	if err := m.ex.Err(); err != nil {
		return err // no deliveries after cancellation
	}
	if m.subsumed(items, sup) {
		m.ex.Stats.GroupsNotInterest++
		return nil
	}
	m.bySupport[sup] = append(m.bySupport[sup], len(m.out))
	cs := ClosedSet{Items: items, Support: sup}
	m.out = append(m.out, cs)
	m.ex.Stats.GroupsEmitted++
	if m.emitFn != nil {
		return m.emitFn(cs)
	}
	return nil
}

func (m *miner) subsumed(items []dataset.Item, sup int) bool {
	for _, idx := range m.bySupport[sup] {
		m.nodes++ // comparisons count toward the work budget
		if containsAll(m.out[idx].Items, items) {
			return true
		}
	}
	return false
}

// tree is an FP-tree over item RANKS: prefix-shared transaction storage
// with per-rank node chains for conditional projection. All storage comes
// from the owning miner's slabs.
type tree struct {
	m      *miner
	root   *node
	heads  []*node // rank -> first node carrying that rank
	counts []int   // rank -> conditional support
}

type node struct {
	rank    int32
	count   int
	parent  *node
	child   *node // first child
	sibling *node // next sibling
	hlink   *node // next node with the same rank
}

func (m *miner) newTree() *tree {
	root := m.nodesSlab.One()
	root.rank = -1
	return &tree{m: m, root: root, heads: m.headsSlab.Alloc(m.nranks), counts: m.intsSlab.Alloc(m.nranks)}
}

// insert adds one transaction (ranks ascending) with the given count.
func (t *tree) insert(ranks []int32, count int) {
	cur := t.root
	for _, rk := range ranks {
		var ch *node
		for c := cur.child; c != nil; c = c.sibling {
			if c.rank == rk {
				ch = c
				break
			}
		}
		if ch == nil {
			ch = t.m.nodesSlab.One()
			ch.rank = rk
			ch.parent = cur
			ch.sibling = cur.child
			cur.child = ch
			ch.hlink = t.heads[rk]
			t.heads[rk] = ch
		}
		ch.count += count
		t.counts[rk] += count
		cur = ch
	}
}

// conditional builds the conditional FP-tree of rank rk: the prefix paths
// of every node carrying it, with infrequent items stripped.
func (t *tree) conditional(rk int32, minsup int) *tree {
	// First pass: conditional frequencies.
	condFreq := t.m.intsSlab.Alloc(t.m.nranks)
	for n := t.heads[rk]; n != nil; n = n.hlink {
		for p := n.parent; p != nil && p.rank >= 0; p = p.parent {
			condFreq[p.rank] += n.count
		}
	}
	out := t.m.newTree()
	path := t.m.rankSlab.Alloc(t.m.nranks)[:0]
	for n := t.heads[rk]; n != nil; n = n.hlink {
		path = path[:0]
		for p := n.parent; p != nil && p.rank >= 0; p = p.parent {
			if condFreq[p.rank] >= minsup {
				path = append(path, p.rank)
			}
		}
		// path is leaf-to-root; reverse to root-to-leaf insertion order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		out.insert(path, n.count)
	}
	return out
}

func mergeItems(a, b []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	slices.Sort(out)
	dst := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

func containsAll(a, b []dataset.Item) bool {
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			return false
		}
		i++
	}
	return true
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
