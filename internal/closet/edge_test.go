package closet_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/closet"
	"repro/internal/dataset"
	"repro/internal/difftest"
	"repro/internal/reference"
)

// CLOSET must reproduce the brute-force closed-set lattice on the shared
// edge-case fixtures, and each reported support must equal the actual
// support-set size (CLOSET carries no tidsets, so recompute them).
func TestEdgeFixturesAgainstOracle(t *testing.T) {
	for _, f := range difftest.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for minsup := 1; minsup <= 2; minsup++ {
				refItems, refSups := reference.ClosedSets(f.D, minsup)
				want := make([]string, len(refItems))
				for i := range refItems {
					want[i] = fmt.Sprintf("%v|%d", refItems[i], refSups[i])
				}
				sort.Strings(want)

				res, err := closet.Mine(f.D, closet.Options{MinSup: minsup})
				if err != nil {
					t.Fatalf("minsup=%d: %v", minsup, err)
				}
				got := make([]string, len(res.Closed))
				for i, cs := range res.Closed {
					got[i] = fmt.Sprintf("%v|%d", cs.Items, cs.Support)
					if sup := dataset.SupportSet(f.D, cs.Items).Count(); sup != cs.Support {
						t.Fatalf("minsup=%d: %v reports support %d, actual %d",
							minsup, cs.Items, cs.Support, sup)
					}
				}
				sort.Strings(got)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("minsup=%d: closed sets\n got %v\nwant %v", minsup, got, want)
				}
			}
		})
	}
}
