package closet

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
)

func closedKeys(cs []ClosedSet) []string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = fmt.Sprintf("%v|%d", c.Items, c.Support)
	}
	sort.Strings(keys)
	return keys
}

func refClosedKeys(items [][]dataset.Item, sups []int) []string {
	keys := make([]string, len(items))
	for i := range items {
		keys[i] = fmt.Sprintf("%v|%d", items[i], sups[i])
	}
	sort.Strings(keys)
	return keys
}

func TestPaperExampleClosedSets(t *testing.T) {
	d := dataset.PaperExample()
	for _, minsup := range []int{1, 2, 3, 4} {
		res, err := Mine(d, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		items, sups := reference.ClosedSets(d, minsup)
		if got, want := closedKeys(res.Closed), refClosedKeys(items, sups); !reflect.DeepEqual(got, want) {
			t.Fatalf("minsup=%d:\n got %v\nwant %v", minsup, got, want)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Mine(dataset.PaperExample(), Options{MinSup: 0}); err == nil {
		t.Fatal("MinSup 0 accepted")
	}
}

func TestBudgetAbort(t *testing.T) {
	d := dataset.PaperExample()
	_, err := Mine(d, Options{MinSup: 1, MaxNodes: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestEmptyDataset(t *testing.T) {
	d := &dataset.Dataset{ClassNames: []string{"x"}}
	res, err := Mine(d, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closed) != 0 {
		t.Fatal("closed sets from empty dataset")
	}
}

// An item shared by every row must appear inside every closed set.
func TestUniversalItemMerged(t *testing.T) {
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0, 1}, {0, 2}, {0, 1, 2}},
		[]int{0, 0, 0}, 3, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(d, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Closed {
		found := false
		for _, it := range c.Items {
			if it == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("closed set %v lacks the universal item", c.Items)
		}
	}
}

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 2 + rng.Intn(8)
	numItems := 3 + rng.Intn(8)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"only"})
	if err != nil {
		panic(err)
	}
	return d
}

// Property: the FP-tree miner equals the brute-force closed-set oracle.
func TestPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 250; iter++ {
		d := randomDataset(rng)
		minsup := 1 + rng.Intn(3)
		res, err := Mine(d, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		items, sups := reference.ClosedSets(d, minsup)
		if got, want := closedKeys(res.Closed), refClosedKeys(items, sups); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d minsup=%d:\n got %v\nwant %v\nrows %+v", iter, minsup, got, want, d.Rows)
		}
	}
}
