package stats

import (
	"math"
	"testing"
)

// Hand-checked 2×2 table: n=100, m=50, x=40, y=30.
// Observed: AC=30, A¬C=10, ¬AC=20, ¬A¬C=40. Expected: 20,20,30,30.
// chi = 100/20 + 100/20 + 100/30 + 100/30 = 16.666...
func TestChi2HandChecked(t *testing.T) {
	got := Chi2(40, 30, 100, 50)
	want := 100.0/20 + 100.0/20 + 100.0/30 + 100.0/30
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Chi2 = %v, want %v", got, want)
	}
}

func TestChi2IndependenceIsZero(t *testing.T) {
	// Perfect independence: x/n of rows match A regardless of class.
	if got := Chi2(50, 25, 100, 50); got != 0 {
		t.Fatalf("independent table chi = %v, want 0", got)
	}
	// chi(n, m) = 0 (the paper's degenerate vertex).
	if got := Chi2(100, 50, 100, 50); got != 0 {
		t.Fatalf("chi(n,m) = %v, want 0", got)
	}
}

func TestChi2PerfectAssociation(t *testing.T) {
	// A present exactly on the positive rows: chi = n.
	if got := Chi2(50, 50, 100, 50); math.Abs(got-100) > 1e-9 {
		t.Fatalf("perfect association chi = %v, want 100", got)
	}
}

func TestChi2SymmetricInClasses(t *testing.T) {
	// Swapping C and ¬C leaves chi unchanged: (x, y) -> (x, x-y), m -> n-m.
	a := Chi2(40, 30, 100, 40)
	b := Chi2(40, 10, 100, 60)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("class-swap asymmetry: %v vs %v", a, b)
	}
}

func TestChi2InvalidRegionIsZero(t *testing.T) {
	cases := [][4]int{
		{5, 6, 10, 6},  // y > x
		{11, 5, 10, 6}, // x > n
		{5, 5, 10, 4},  // y > m
		{9, 2, 10, 6},  // x-y > n-m
		{-1, 0, 10, 5}, // negative
		{0, 0, 0, 0},   // empty dataset
	}
	for _, c := range cases {
		if got := Chi2(c[0], c[1], c[2], c[3]); got != 0 {
			t.Errorf("Chi2(%v) = %v, want 0", c, got)
		}
	}
}

func TestChi2ZeroAntecedent(t *testing.T) {
	if got := Chi2(0, 0, 10, 5); got != 0 {
		t.Fatalf("chi with empty antecedent = %v, want 0", got)
	}
}

// The Lemma 3.9 bound must dominate chi of every rule reachable in the
// subtree: all (x', y') with x≤x'≤n, y≤y'≤m, y'≤x', x'-y'≥x-y.
func TestChi2UpperBoundDominatesRegion(t *testing.T) {
	n, m := 30, 12
	for x := 0; x <= n; x++ {
		for y := 0; y <= min(x, m); y++ {
			if x-y > n-m {
				continue
			}
			ub := Chi2UpperBound(x, y, n, m)
			for xp := x; xp <= n; xp++ {
				for yp := y; yp <= min(xp, m); yp++ {
					if xp-yp < x-y || xp-yp > n-m {
						continue
					}
					if v := Chi2(xp, yp, n, m); v > ub+1e-9 {
						t.Fatalf("bound violated: node (%d,%d) ub=%v but (%d,%d) has chi=%v",
							x, y, ub, xp, yp, v)
					}
				}
			}
		}
	}
}

func TestChi2UpperBoundAtLeastCurrent(t *testing.T) {
	if ub, c := Chi2UpperBound(7, 5, 20, 9), Chi2(7, 5, 20, 9); ub < c {
		t.Fatalf("upper bound %v below current %v", ub, c)
	}
}

func TestLift(t *testing.T) {
	// conf = 0.75, P(C) = 0.5 -> lift 1.5.
	if got := Lift(40, 30, 100, 50); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("Lift = %v, want 1.5", got)
	}
	if Lift(0, 0, 100, 50) != 0 || Lift(10, 5, 100, 0) != 0 {
		t.Fatal("degenerate lift should be 0")
	}
}

func TestConviction(t *testing.T) {
	// conf = 0.75, P(¬C) = 0.5 -> conviction 2.
	if got := Conviction(40, 30, 100, 50); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Conviction = %v, want 2", got)
	}
	if !math.IsInf(Conviction(10, 10, 100, 50), 1) {
		t.Fatal("exact rule should have +Inf conviction")
	}
	if Conviction(0, 0, 100, 50) != 0 {
		t.Fatal("empty antecedent conviction should be 0")
	}
}

func TestEntropyGain(t *testing.T) {
	// Perfect split halves: gain = H(0.5) = 1 bit.
	if got := EntropyGain(50, 50, 100, 50); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect split gain = %v, want 1", got)
	}
	// Useless split: gain 0.
	if got := EntropyGain(50, 25, 100, 50); math.Abs(got) > 1e-9 {
		t.Fatalf("independent split gain = %v, want 0", got)
	}
	if EntropyGain(0, 0, 0, 0) != 0 {
		t.Fatal("empty dataset gain should be 0")
	}
	// Gain is never negative.
	for x := 0; x <= 20; x++ {
		for y := 0; y <= min(x, 8); y++ {
			if x-y > 12 {
				continue
			}
			if g := EntropyGain(x, y, 20, 8); g < 0 {
				t.Fatalf("negative gain at (%d,%d): %v", x, y, g)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
