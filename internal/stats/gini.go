package stats

// GiniGain returns the Gini-impurity reduction of splitting the class
// distribution (m of n positive) on an antecedent with margins (x, y):
// gini(m/n) − [x/n·gini(y/x) + (n−x)/n·gini((m−y)/(n−x))], where
// gini(p) = 2p(1−p). Footnote 3 of the paper lists gini among the
// constraints FARMER can handle "similarly" to chi-square: like chi-square
// and entropy gain it is a convex impurity gain (Morishita & Sese, PODS
// 2000), so the same vertex bound applies.
func GiniGain(x, y, n, m int) float64 {
	if n == 0 || x < 0 || y < 0 || y > x || x > n || y > m || x-y > n-m {
		return 0
	}
	g := func(p float64) float64 { return 2 * p * (1 - p) }
	base := g(float64(m) / float64(n))
	cond := 0.0
	if x > 0 {
		cond += float64(x) / float64(n) * g(float64(y)/float64(x))
	}
	if n-x > 0 {
		cond += float64(n-x) / float64(n) * g(float64(m-y)/float64(n-x))
	}
	gain := base - cond
	if gain < 0 {
		return 0 // guard rounding
	}
	return gain
}

// GiniGainUpperBound bounds GiniGain over the Lemma 3.9 parallelogram of
// reachable (x', y') pairs below an enumeration node with margins (x, y):
// the maximum over the three non-trivial vertices (the fourth, (n, m), has
// zero gain).
func GiniGainUpperBound(x, y, n, m int) float64 {
	b := GiniGain(x, y, n, m)
	if v := GiniGain(x-y+m, m, n, m); v > b {
		b = v
	}
	if v := GiniGain(y+n-m, y, n, m); v > b {
		b = v
	}
	return b
}

// EntropyGainUpperBound bounds EntropyGain over the same parallelogram.
func EntropyGainUpperBound(x, y, n, m int) float64 {
	b := EntropyGain(x, y, n, m)
	if v := EntropyGain(x-y+m, m, n, m); v > b {
		b = v
	}
	if v := EntropyGain(y+n-m, y, n, m); v > b {
		b = v
	}
	return b
}
