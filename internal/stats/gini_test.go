package stats

import (
	"math"
	"testing"
)

func TestGiniGainPerfectSplit(t *testing.T) {
	// Perfect halves: gini(0.5) = 0.5 fully removed.
	if got := GiniGain(50, 50, 100, 50); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("perfect split gini gain = %v, want 0.5", got)
	}
}

func TestGiniGainIndependentSplit(t *testing.T) {
	if got := GiniGain(50, 25, 100, 50); math.Abs(got) > 1e-9 {
		t.Fatalf("independent split gini gain = %v, want 0", got)
	}
}

func TestGiniGainDegenerate(t *testing.T) {
	if GiniGain(0, 0, 0, 0) != 0 {
		t.Fatal("empty dataset gain should be 0")
	}
	if GiniGain(5, 6, 10, 6) != 0 { // y > x
		t.Fatal("invalid region should be 0")
	}
}

func TestGiniGainNonNegative(t *testing.T) {
	n, m := 24, 10
	for x := 0; x <= n; x++ {
		for y := 0; y <= min(x, m); y++ {
			if x-y > n-m {
				continue
			}
			if g := GiniGain(x, y, n, m); g < 0 {
				t.Fatalf("negative gini gain at (%d,%d): %v", x, y, g)
			}
		}
	}
}

// The vertex bounds must dominate every reachable point, exactly like the
// chi-square bound (all three are convex impurity gains).
func TestImpurityBoundsDominateRegion(t *testing.T) {
	n, m := 26, 11
	for x := 0; x <= n; x++ {
		for y := 0; y <= min(x, m); y++ {
			if x-y > n-m {
				continue
			}
			gubGini := GiniGainUpperBound(x, y, n, m)
			gubEnt := EntropyGainUpperBound(x, y, n, m)
			for xp := x; xp <= n; xp++ {
				for yp := y; yp <= min(xp, m); yp++ {
					if xp-yp < x-y || xp-yp > n-m {
						continue
					}
					if v := GiniGain(xp, yp, n, m); v > gubGini+1e-9 {
						t.Fatalf("gini bound violated: node (%d,%d) ub=%v but (%d,%d)=%v",
							x, y, gubGini, xp, yp, v)
					}
					if v := EntropyGain(xp, yp, n, m); v > gubEnt+1e-9 {
						t.Fatalf("entropy bound violated: node (%d,%d) ub=%v but (%d,%d)=%v",
							x, y, gubEnt, xp, yp, v)
					}
				}
			}
		}
	}
}

func TestBoundsAtLeastCurrent(t *testing.T) {
	cases := [][4]int{{7, 5, 20, 9}, {3, 2, 15, 6}, {10, 4, 20, 8}}
	for _, c := range cases {
		if GiniGainUpperBound(c[0], c[1], c[2], c[3]) < GiniGain(c[0], c[1], c[2], c[3]) {
			t.Fatalf("gini bound below current at %v", c)
		}
		if EntropyGainUpperBound(c[0], c[1], c[2], c[3]) < EntropyGain(c[0], c[1], c[2], c[3]) {
			t.Fatalf("entropy bound below current at %v", c)
		}
	}
}
