// Package stats implements the statistical measures used by FARMER: the 2×2
// chi-square statistic chi(x, y) of §3.2.3, its convexity-based upper bound
// over the reachable region of Lemma 3.9, and the extension measures the
// paper's footnote 3 mentions (lift, conviction, entropy gain).
package stats

import "math"

// Chi2 computes the chi-square statistic of the 2×2 contingency table
// determined by
//
//	x = |R(A)|       (rows matching the antecedent)
//	y = |R(A ∪ C)|   (rows matching antecedent and consequent)
//	n = |D|          (total rows)
//	m = |R(C)|       (rows with the consequent class)
//
// following the observed-vs-expected table of §3.2.3. Degenerate margins
// (x or m equal to 0 or their maximum) yield 0, matching chi(n, m) = 0.
func Chi2(x, y, n, m int) float64 {
	if x < 0 || y < 0 || n <= 0 || m < 0 || y > x || x > n || m > n || y > m || x-y > n-m {
		return 0 // outside the valid region; callers never ask for this
	}
	// Observed cells.
	oAC := float64(y)
	oAnC := float64(x - y)
	onAC := float64(m - y)
	onAnC := float64(n - m - (x - y))
	// Expected cells from the margins.
	fx, fm, fn := float64(x), float64(m), float64(n)
	eAC := fx * fm / fn
	eAnC := fx * (fn - fm) / fn
	enAC := (fn - fx) * fm / fn
	enAnC := (fn - fx) * (fn - fm) / fn
	chi := 0.0
	for _, cell := range [4][2]float64{{oAC, eAC}, {oAnC, eAnC}, {onAC, enAC}, {onAnC, enAnC}} {
		if cell[1] > 0 {
			d := cell[0] - cell[1]
			chi += d * d / cell[1]
		}
	}
	return chi
}

// Chi2UpperBound returns the Lemma 3.9 upper bound on the chi-square value
// of any rule discovered in the subtree rooted at a node whose current rule
// has margins (x, y): the maximum of chi over the three non-trivial vertices
// of the reachable parallelogram, {(x, y), (x−y+m, m), (y+n−m, y)}. The
// fourth vertex (n, m) always has chi = 0.
func Chi2UpperBound(x, y, n, m int) float64 {
	c := Chi2(x, y, n, m)
	if v := Chi2(x-y+m, m, n, m); v > c {
		c = v
	}
	if v := Chi2(y+n-m, y, n, m); v > c {
		c = v
	}
	return c
}

// Lift returns conf(A→C) / P(C) computed from the same margins as Chi2.
// It is one of the footnote-3 extension measures.
func Lift(x, y, n, m int) float64 {
	if x == 0 || m == 0 {
		return 0
	}
	conf := float64(y) / float64(x)
	return conf * float64(n) / float64(m)
}

// Conviction returns (1 − P(C)) / (1 − conf(A→C)); +Inf when the rule is
// exact (conf = 1).
func Conviction(x, y, n, m int) float64 {
	if x == 0 {
		return 0
	}
	conf := float64(y) / float64(x)
	if conf >= 1 {
		return math.Inf(1)
	}
	return (1 - float64(m)/float64(n)) / (1 - conf)
}

// EntropyGain returns the information gain of splitting the class
// distribution (m of n positive) on the antecedent with margins (x, y):
// H(m/n) − [x/n·H(y/x) + (n−x)/n·H((m−y)/(n−x))].
func EntropyGain(x, y, n, m int) float64 {
	if n == 0 {
		return 0
	}
	h := func(p float64) float64 {
		if p <= 0 || p >= 1 {
			return 0
		}
		return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	}
	base := h(float64(m) / float64(n))
	cond := 0.0
	if x > 0 {
		cond += float64(x) / float64(n) * h(float64(y)/float64(x))
	}
	if n-x > 0 {
		cond += float64(n-x) / float64(n) * h(float64(m-y)/float64(n-x))
	}
	g := base - cond
	if g < 0 {
		return 0 // guard tiny negative rounding
	}
	return g
}
