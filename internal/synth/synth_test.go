package synth

import (
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

func smallSpec() Spec {
	return Spec{
		Name: "small", Rows: 30, Cols: 60, Class1Rows: 14,
		ClassNames:  [2]string{"pos", "neg"},
		Informative: 10, Effect: 2.0, FlipProb: 0.1,
		Modules: 3, ModuleSize: 5, Seed: 42,
	}
}

func TestGenerateShape(t *testing.T) {
	m, err := smallSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 30 || m.NumCols() != 60 {
		t.Fatalf("shape = %dx%d", m.NumRows(), m.NumCols())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, l := range m.Labels {
		if l == 0 {
			pos++
		}
	}
	if pos != 14 {
		t.Fatalf("class1 rows = %d, want 14", pos)
	}
	if m.ClassNames[0] != "pos" || m.ClassNames[1] != "neg" {
		t.Fatalf("class names = %v", m.ClassNames)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := smallSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Fatal("same seed produced different matrices")
	}
	s2 := smallSpec()
	s2.Seed = 43
	c, err := s2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Values, c.Values) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestValidateRejections(t *testing.T) {
	base := smallSpec()
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero rows", func(s *Spec) { s.Rows = 0 }},
		{"zero cols", func(s *Spec) { s.Cols = 0 }},
		{"all one class", func(s *Spec) { s.Class1Rows = s.Rows }},
		{"no class1", func(s *Spec) { s.Class1Rows = 0 }},
		{"too many informative", func(s *Spec) { s.Informative = s.Cols + 1 }},
		{"modules overflow", func(s *Spec) { s.Modules = 100; s.ModuleSize = 100 }},
		{"bad flip", func(s *Spec) { s.FlipProb = 1 }},
		{"same class names", func(s *Spec) { s.ClassNames = [2]string{"x", "x"} }},
	}
	for _, c := range cases {
		s := base
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Informative genes must be recoverable: entropy-MDL should keep a good
// fraction of them and drop nearly all background genes.
func TestInformativeGenesRecoverable(t *testing.T) {
	s := smallSpec()
	s.Rows, s.Class1Rows, s.Cols, s.Informative = 60, 30, 200, 20
	s.FlipProb = 0.05
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for c := 0; c < m.NumCols(); c++ {
		if d.Kept(c) {
			kept++
		}
	}
	if kept < 10 {
		t.Fatalf("entropy discretization kept only %d columns; informative genes not recoverable", kept)
	}
	if kept > 80 {
		t.Fatalf("entropy discretization kept %d of 200 columns; background too informative", kept)
	}
}

func TestGenerateDiscreteShape(t *testing.T) {
	ds, err := smallSpec().GenerateDiscrete(10)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 30 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	// Equal-depth with 10 buckets on continuous data keeps every column:
	// each row has one item per column.
	for ri, r := range ds.Rows {
		if len(r.Items) != 60 {
			t.Fatalf("row %d has %d items, want 60", ri, len(r.Items))
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateEntropyDiscrete(t *testing.T) {
	ds, err := smallSpec().GenerateEntropyDiscrete()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 30 {
		t.Fatalf("rows = %d", ds.NumRows())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSpecsMatchTable1(t *testing.T) {
	want := []struct {
		name       string
		rows, cols int
		class1     int
		c1name     string
	}{
		{"BC", 97, 24481, 46, "relapse"},
		{"LC", 181, 12533, 31, "MPM"},
		{"CT", 62, 2000, 40, "negative"},
		{"PC", 136, 12600, 52, "tumor"},
		{"ALL", 72, 7129, 47, "ALL"},
	}
	specs := PaperSpecs()
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name || s.Rows != w.rows || s.Cols != w.cols ||
			s.Class1Rows != w.class1 || s.ClassNames[0] != w.c1name {
			t.Errorf("spec %s does not match Table 1: %+v", w.name, s)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", w.name, err)
		}
	}
}

func TestPaperSpecLookup(t *testing.T) {
	if _, ok := PaperSpec("CT"); !ok {
		t.Fatal("CT spec missing")
	}
	if _, ok := PaperSpec("nope"); ok {
		t.Fatal("unknown spec found")
	}
}

func TestBenchSpecsValidAndSmall(t *testing.T) {
	for _, s := range BenchSpecs() {
		if err := s.Validate(); err != nil {
			t.Errorf("bench spec %s invalid: %v", s.Name, err)
		}
		if s.Rows > 60 {
			t.Errorf("bench spec %s has %d rows; too large for CI sweeps", s.Name, s.Rows)
		}
		if s.Cols > 400 {
			t.Errorf("bench spec %s has %d cols; too large for baselines", s.Name, s.Cols)
		}
		full, ok := PaperSpec(s.Name)
		if !ok {
			t.Errorf("bench spec %s has no paper twin", s.Name)
			continue
		}
		// Class balance direction preserved.
		fullMinor := full.Class1Rows*2 < full.Rows
		benchMinor := s.Class1Rows*2 < s.Rows
		if fullMinor != benchMinor {
			t.Errorf("bench spec %s flipped the class balance", s.Name)
		}
	}
}

func TestScaledClamps(t *testing.T) {
	s := smallSpec().Scaled(0.01, 0.01)
	if err := s.Validate(); err != nil {
		t.Fatalf("scaled spec invalid: %v", err)
	}
	if s.Rows < 6 || s.Cols < 20 {
		t.Fatalf("clamps not applied: %d rows %d cols", s.Rows, s.Cols)
	}
}

func TestGenerateDiscreteValid(t *testing.T) {
	for _, s := range BenchSpecs() {
		ds, err := s.GenerateDiscrete(10)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if ds.ClassCount(0) != s.Class1Rows {
			t.Fatalf("%s: class1 count %d, want %d", s.Name, ds.ClassCount(0), s.Class1Rows)
		}
	}
}

var sinkDataset *dataset.Dataset

func BenchmarkGenerateDiscreteCT(b *testing.B) {
	s, _ := BenchSpec("CT")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, err := s.GenerateDiscrete(10)
		if err != nil {
			b.Fatal(err)
		}
		sinkDataset = ds
	}
}
