package synth

// The five clinical datasets of Table 1, reproduced as synthetic specs with
// the same row counts, column counts, class names, and class-1 sizes. The
// structural parameters (informative genes, modules) are our modelling
// choices, documented in DESIGN.md §2.
//
//	dataset  #row  #col   class1    class0      #class1
//	BC       97    24481  relapse   nonrelapse  46
//	LC       181   12533  MPM       ADCA        31
//	CT       62    2000   negative  positive    40
//	PC       136   12600  tumor     normal      52
//	ALL      72    7129   ALL       AML         47

// PaperSpecs returns full-shape specs matching Table 1.
func PaperSpecs() []Spec {
	return []Spec{
		{Name: "BC", Rows: 97, Cols: 24481, Class1Rows: 46,
			ClassNames:  [2]string{"relapse", "nonrelapse"},
			Informative: 160, Effect: 1.8, FlipProb: 0.15,
			Modules: 40, ModuleSize: 12, Quantize: 0.8, Seed: 97},
		{Name: "LC", Rows: 181, Cols: 12533, Class1Rows: 31,
			ClassNames:  [2]string{"MPM", "ADCA"},
			Informative: 140, Effect: 2.2, FlipProb: 0.10,
			Modules: 30, ModuleSize: 12, Quantize: 0.8, Seed: 181},
		{Name: "CT", Rows: 62, Cols: 2000, Class1Rows: 40,
			ClassNames:  [2]string{"negative", "positive"},
			Informative: 80, Effect: 1.6, FlipProb: 0.18,
			Modules: 16, ModuleSize: 10, Quantize: 0.8, Seed: 62},
		{Name: "PC", Rows: 136, Cols: 12600, Class1Rows: 52,
			ClassNames:  [2]string{"tumor", "normal"},
			Informative: 150, Effect: 1.7, FlipProb: 0.15,
			Modules: 30, ModuleSize: 12, Quantize: 0.8, Seed: 136},
		{Name: "ALL", Rows: 72, Cols: 7129, Class1Rows: 47,
			ClassNames:  [2]string{"ALL", "AML"},
			Informative: 120, Effect: 2.0, FlipProb: 0.12,
			Modules: 24, ModuleSize: 10, Quantize: 0.8, Seed: 72},
	}
}

// PaperSpec returns the full-shape spec with the given name, or false.
func PaperSpec(name string) (Spec, bool) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// BenchSpecs returns scaled-down variants of the paper specs sized so that
// the full figure sweeps — including the column-enumeration baselines, which
// are orders of magnitude slower — complete in seconds. Row counts land
// around 18–27 (row count is FARMER's hard dimension) and column counts
// around 60–120 (the baselines' hard dimension), preserving each dataset's
// relative shape: BC keeps the most columns, LC the most rows, CT the
// fewest columns.
func BenchSpecs() []Spec {
	fracs := map[string][2]float64{
		"BC":  {0.19, 0.0041},
		"LC":  {0.10, 0.0064},
		"CT":  {0.30, 0.0400},
		"PC":  {0.15, 0.0063},
		"ALL": {0.28, 0.0129},
	}
	out := make([]Spec, 0, 5)
	for _, s := range PaperSpecs() {
		f := fracs[s.Name]
		b := s.Scaled(f[0], f[1])
		b.Name = s.Name
		out = append(out, b)
	}
	return out
}

// BenchSpec returns the bench-scale spec with the given name, or false.
func BenchSpec(name string) (Spec, bool) {
	for _, s := range BenchSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Table2Specs returns the variants used for the classification study
// (Table 2): each dataset keeps its class balance and relative row count
// (halved), with columns reduced to 5% and per-dataset structure chosen to
// mirror how hard each clinical cohort is in the paper — BC carries a
// strong cohort drift (the breast-cancer study's train/test split is the
// one where SVM collapses), CT and PC moderate drift, LC and ALL are
// clean, strongly separable cohorts where SVM shines. Substitution
// rationale is documented in DESIGN.md §2.
func Table2Specs() []Spec {
	tune := map[string]struct {
		rowDiv      int // 1 keeps the paper's row count; CT is small enough
		informative int
		effect      float64
		flip        float64
		spurious    float64
	}{
		"BC":  {2, 16, 2.2, 0.15, 0.60},
		"LC":  {2, 30, 2.4, 0.05, 0.0},
		"CT":  {1, 12, 2.0, 0.10, 1.30},
		"PC":  {2, 22, 1.8, 0.12, 0.30},
		"ALL": {2, 28, 2.6, 0.02, 0.0},
	}
	out := make([]Spec, 0, 5)
	for _, s := range PaperSpecs() {
		tn := tune[s.Name]
		s.Rows /= tn.rowDiv
		s.Class1Rows /= tn.rowDiv
		s.Cols /= 20
		s.Informative = tn.informative
		s.Effect = tn.effect
		s.FlipProb = tn.flip
		s.SpuriousCorr = tn.spurious
		s.Signatures = 0
		s.Modules /= 4
		s.Quantize = 0
		if s.Informative+s.Modules*s.ModuleSize > s.Cols {
			s.Modules = 0
		}
		out = append(out, s)
	}
	return out
}
