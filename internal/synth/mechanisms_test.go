package synth

// Direct tests of the generator's cohort mechanisms: signatures, the
// distributed confounder, signal fade, drift, and quantization.

import (
	"math"
	"testing"
)

func mechSpec() Spec {
	return Spec{
		Name: "mech", Rows: 40, Cols: 60, Class1Rows: 20,
		ClassNames:  [2]string{"pos", "neg"},
		Informative: 12, Effect: 2.0, FlipProb: 0.1, Seed: 33,
	}
}

func TestQuantizeTiesValues(t *testing.T) {
	s := mechSpec()
	s.Quantize = 0.5
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.Values {
		for _, v := range row {
			q := v / 0.5
			if math.Abs(q-math.Round(q)) > 1e-9 {
				t.Fatalf("value %v not on the 0.5 grid", v)
			}
		}
	}
	// Quantization must create ties: far fewer distinct values than cells.
	distinct := map[float64]bool{}
	for _, row := range m.Values {
		for _, v := range row {
			distinct[v] = true
		}
	}
	if len(distinct) > 40*60/4 {
		t.Fatalf("%d distinct values; quantization produced too few ties", len(distinct))
	}
}

func TestSignaturesShareActivation(t *testing.T) {
	s := mechSpec()
	s.Signatures = 3
	s.FlipProb = 0.0 // deterministic activation per class
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// With no flips, class-marked rows shift on every gene of the marked
	// signatures: per class the informative columns must show a clear mean
	// separation for at least one signature's genes.
	sep := 0
	for c := 0; c < s.Cols; c++ {
		var mu0, mu1 float64
		for r := 0; r < s.Rows; r++ {
			if m.Labels[r] == 0 {
				mu0 += m.Values[r][c]
			} else {
				mu1 += m.Values[r][c]
			}
		}
		mu0 /= float64(s.Class1Rows)
		mu1 /= float64(s.Rows - s.Class1Rows)
		if math.Abs(mu0-mu1) > 1.2 {
			sep++
		}
	}
	if sep < s.Informative/2 {
		t.Fatalf("only %d separated columns; signatures not applied", sep)
	}
}

func TestSignaturesValidation(t *testing.T) {
	s := mechSpec()
	s.Signatures = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative Signatures accepted")
	}
}

func TestSpuriousConfounderFlipsAcrossCohort(t *testing.T) {
	s := mechSpec()
	s.Informative = 0
	s.SpuriousCorr = 1.0
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Class-1 rows (label 0): early rows shifted up, late rows shifted down
	// on background genes. Compare the mean of the first vs last class-1 row.
	first, last := -1, -1
	for r := 0; r < s.Rows; r++ {
		if m.Labels[r] == 0 {
			if first < 0 {
				first = r
			}
			last = r
		}
	}
	mean := func(r int) float64 {
		sum := 0.0
		for _, v := range m.Values[r] {
			sum += v
		}
		return sum / float64(len(m.Values[r]))
	}
	if mean(first)-mean(last) < 0.5 {
		t.Fatalf("confounder sign flip missing: first %.3f last %.3f", mean(first), mean(last))
	}
	// Class-0 rows are untouched by the confounder: their means stay small.
	for r := 0; r < s.Rows; r++ {
		if m.Labels[r] == 1 && math.Abs(mean(r)) > 0.8 {
			t.Fatalf("confounder leaked into the other class (row %d mean %.3f)", r, mean(r))
		}
	}
}

func TestSpuriousValidation(t *testing.T) {
	s := mechSpec()
	s.SpuriousCorr = -0.1
	if err := s.Validate(); err == nil {
		t.Fatal("negative SpuriousCorr accepted")
	}
}

func TestSignalFadeAttenuatesLateRows(t *testing.T) {
	s := mechSpec()
	s.FlipProb = 0
	s.SignalFade = 1.0
	s.Effect = 4.0
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s2 := s
	s2.SignalFade = 0
	m2, err := s2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: the faded matrix differs from the unfaded one, and total
	// absolute informative signal is smaller.
	var sum1, sum2 float64
	for r := range m.Values {
		for c := range m.Values[r] {
			sum1 += math.Abs(m.Values[r][c])
			sum2 += math.Abs(m2.Values[r][c])
		}
	}
	if sum1 >= sum2 {
		t.Fatalf("fade did not attenuate: |faded|=%.1f |full|=%.1f", sum1, sum2)
	}
}

func TestSignalFadeValidation(t *testing.T) {
	s := mechSpec()
	s.SignalFade = 1.5
	if err := s.Validate(); err == nil {
		t.Fatal("SignalFade > 1 accepted")
	}
}

func TestDriftValidationAndEffect(t *testing.T) {
	s := mechSpec()
	s.Drift = -1
	if err := s.Validate(); err == nil {
		t.Fatal("negative Drift accepted")
	}
	s = mechSpec()
	s.Drift = 3.0
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	s.Drift = 0
	m2, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for r := range m.Values {
		for c := range m.Values[r] {
			if m.Values[r][c] != m2.Values[r][c] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("drift had no effect")
	}
}

func TestTable2SpecsGenerate(t *testing.T) {
	for _, s := range Table2Specs() {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		m, err := s.Generate()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if m.NumRows() != s.Rows || m.NumCols() != s.Cols {
			t.Fatalf("%s: shape %dx%d, want %dx%d", s.Name, m.NumRows(), m.NumCols(), s.Rows, s.Cols)
		}
	}
}

func TestPaperSpecsGenerateSmallestFull(t *testing.T) {
	// CT is the smallest paper-shape spec (62×2000): generating it at full
	// size exercises the module and quantization paths at scale.
	s, ok := PaperSpec("CT")
	if !ok {
		t.Fatal("CT spec missing")
	}
	m, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 62 || m.NumCols() != 2000 {
		t.Fatalf("shape %dx%d", m.NumRows(), m.NumCols())
	}
}
