// Package synth generates synthetic gene-expression datasets standing in
// for the five clinical microarray datasets of the paper's evaluation (lung
// cancer, breast cancer, prostate cancer, ALL-AML leukemia, colon tumor),
// which were distributed from institute websites that no longer serve them.
//
// The generator reproduces the properties the FARMER evaluation depends on:
// few rows, many columns, a two-class label with a controlled split,
// class-informative genes (which after discretization become the long
// shared itemsets that blow up column enumeration), co-regulated background
// modules (class-blind shared structure), and Gaussian noise elsewhere.
// Everything is deterministic per seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/discretize"
)

// Spec describes a synthetic dataset. The zero value is not usable; start
// from one of the presets in specs.go or fill every field.
type Spec struct {
	Name string

	Rows int // number of samples
	Cols int // number of genes

	// Class1Rows rows get label ClassNames[0] (the paper's "class 1", used
	// as the consequent); the remaining rows get ClassNames[1].
	Class1Rows int
	ClassNames [2]string

	// Informative genes carry a mean shift of Effect standard deviations in
	// one of the classes (alternating), making them predictive. FlipProb is
	// the probability that the shift fails for a row (capping rule
	// confidence below 100%); rows of the other class spuriously activate
	// with half that probability.
	Informative int
	Effect      float64
	FlipProb    float64

	// Signatures, when > 0, groups the informative genes into that many
	// co-regulated blocks whose activation is decided per (row, signature)
	// rather than per (row, gene) — the "pathway" structure of real
	// expression data. Genes inside a block then share nearly identical
	// discretized row sets, which keeps the closed-set lattice biological
	// rather than combinatorial. 0 keeps every informative gene
	// independent.
	Signatures int

	// Modules class-blind co-regulated gene groups of ModuleSize genes each
	// share a per-row latent factor, creating closed patterns that are not
	// class-correlated (the background structure real microarrays have).
	Modules    int
	ModuleSize int

	// SpuriousCorr, when > 0, plants a weak, distributed confounder: every
	// background gene shifts class-1 rows by SpuriousCorr·(1 − 2·frac),
	// frac being the row's position within its class — positively
	// correlated with the class in the early (train) cohort and negatively
	// in the late (test) cohort. Per gene the shift is far too weak for
	// the MDL filter to keep, so rule classifiers never see it; a dense
	// linear model sums it over thousands of genes, learns the spurious
	// aggregate, and inverts on the test cohort. This is the batch-
	// confounding failure mode reported for the breast-cancer cohort
	// (where the paper's SVM scores 36.8%, below chance).
	SpuriousCorr float64

	// SignalFade, when > 0, attenuates the informative-gene effect across
	// each class's cohort: the r-th row of a class keeps only
	// (1 − SignalFade·frac) of the shift, frac being its position within
	// the class. Under the deterministic stratified split the test rows
	// are the late, faded ones — the train/test signal-strength mismatch
	// reported for the breast-cancer cohort, which is what breaks
	// margin-sensitive classifiers there while threshold rules survive.
	SignalFade float64

	// Drift, when > 0, adds a cohort/batch effect to the BACKGROUND genes:
	// row r receives a per-gene baseline offset scaled by Drift·(r/Rows)
	// within its class. Real clinical microarray cohorts (notably the
	// breast-cancer study) carry exactly this kind of processing drift;
	// classifiers that spread weight over thousands of background genes
	// (the linear SVM) absorb the drift into their decision values, while
	// the entropy-MDL + rule pipeline never sees those columns. Informative
	// genes are left untouched.
	Drift float64

	// Quantize, when > 0, rounds every expression value to the nearest
	// multiple of this step. Real microarray measurements are floor-
	// thresholded and heavily tied, which is what lets equal-depth
	// discretization form large buckets and long shared itemsets; without
	// ties every item's support collapses to rows/buckets.
	Quantize float64

	Seed int64
}

// Validate checks the spec is generatable.
func (s Spec) Validate() error {
	switch {
	case s.Rows <= 0 || s.Cols <= 0:
		return fmt.Errorf("synth: need positive Rows and Cols, got %d×%d", s.Rows, s.Cols)
	case s.Class1Rows <= 0 || s.Class1Rows >= s.Rows:
		return fmt.Errorf("synth: Class1Rows %d must be in (0,%d)", s.Class1Rows, s.Rows)
	case s.Informative < 0 || s.Informative > s.Cols:
		return fmt.Errorf("synth: Informative %d outside [0,%d]", s.Informative, s.Cols)
	case s.Modules < 0 || s.ModuleSize < 0:
		return fmt.Errorf("synth: negative module parameters")
	case s.Informative+s.Modules*s.ModuleSize > s.Cols:
		return fmt.Errorf("synth: %d informative + %d module genes exceed %d columns",
			s.Informative, s.Modules*s.ModuleSize, s.Cols)
	case s.FlipProb < 0 || s.FlipProb >= 1:
		return fmt.Errorf("synth: FlipProb %v outside [0,1)", s.FlipProb)
	case s.Signatures < 0:
		return fmt.Errorf("synth: negative Signatures")
	case s.Drift < 0:
		return fmt.Errorf("synth: negative Drift")
	case s.SignalFade < 0 || s.SignalFade > 1:
		return fmt.Errorf("synth: SignalFade %v outside [0,1]", s.SignalFade)
	case s.SpuriousCorr < 0:
		return fmt.Errorf("synth: negative SpuriousCorr")
	case s.ClassNames[0] == "" || s.ClassNames[1] == "" || s.ClassNames[0] == s.ClassNames[1]:
		return fmt.Errorf("synth: class names must be distinct and non-empty")
	}
	return nil
}

// Generate produces the continuous expression matrix for the spec.
func (s Spec) Generate() (*dataset.Matrix, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))

	m := &dataset.Matrix{
		ColNames:   make([]string, s.Cols),
		ClassNames: []string{s.ClassNames[0], s.ClassNames[1]},
		Labels:     make([]int, s.Rows),
		Values:     make([][]float64, s.Rows),
	}
	for c := range m.ColNames {
		m.ColNames[c] = fmt.Sprintf("g%d", c)
	}
	for r := range m.Labels {
		if r >= s.Class1Rows {
			m.Labels[r] = 1
		}
		m.Values[r] = make([]float64, s.Cols)
	}

	// Assign column roles from a seeded permutation so informative and
	// module genes are scattered across the matrix.
	perm := rng.Perm(s.Cols)
	informative := perm[:s.Informative]
	moduleGenes := perm[s.Informative : s.Informative+s.Modules*s.ModuleSize]

	// Background noise everywhere.
	for r := 0; r < s.Rows; r++ {
		for c := 0; c < s.Cols; c++ {
			m.Values[r][c] = rng.NormFloat64()
		}
	}

	// Per-row signal attenuation across the cohort (SignalFade).
	fade := make([]float64, s.Rows)
	{
		classPos := map[int]int{}
		classTotal := map[int]int{}
		for r := 0; r < s.Rows; r++ {
			classTotal[m.Labels[r]]++
		}
		for r := 0; r < s.Rows; r++ {
			l := m.Labels[r]
			frac := float64(classPos[l]) / float64(classTotal[l])
			classPos[l]++
			fade[r] = 1 - s.SignalFade*frac
		}
	}

	// Informative genes: alternate the marked class and the shift sign.
	if s.Signatures > 0 && s.Informative > 0 {
		// Per-(row, signature) activation shared by the block's genes.
		nsig := s.Signatures
		active := make([][]bool, nsig)
		for si := range active {
			marked := si % 2
			active[si] = make([]bool, s.Rows)
			for r := 0; r < s.Rows; r++ {
				if m.Labels[r] == marked {
					active[si][r] = !(s.FlipProb > 0 && rng.Float64() < s.FlipProb)
				} else {
					active[si][r] = s.FlipProb > 0 && rng.Float64() < s.FlipProb/2
				}
			}
		}
		for k, c := range informative {
			si := k % nsig
			dir := 1.0
			if si%4 >= 2 {
				dir = -1
			}
			for r := 0; r < s.Rows; r++ {
				if active[si][r] {
					m.Values[r][c] += dir * s.Effect * fade[r]
				}
			}
		}
	} else {
		for k, c := range informative {
			marked := k % 2
			dir := 1.0
			if k%4 >= 2 {
				dir = -1
			}
			for r := 0; r < s.Rows; r++ {
				if m.Labels[r] != marked {
					continue
				}
				if s.FlipProb > 0 && rng.Float64() < s.FlipProb {
					continue
				}
				m.Values[r][c] += dir * s.Effect * fade[r]
			}
		}
	}

	// Co-regulated modules: shared latent factor per row.
	for mod := 0; mod < s.Modules; mod++ {
		genes := moduleGenes[mod*s.ModuleSize : (mod+1)*s.ModuleSize]
		for r := 0; r < s.Rows; r++ {
			f := rng.NormFloat64()
			for _, c := range genes {
				m.Values[r][c] = 0.9*f + 0.45*m.Values[r][c]
			}
		}
	}

	// Weak distributed confounder on background genes (SpuriousCorr).
	if s.SpuriousCorr > 0 {
		isInformative := make([]bool, s.Cols)
		for _, c := range informative {
			isInformative[c] = true
		}
		classPos := map[int]int{}
		classTotal := map[int]int{}
		for r := 0; r < s.Rows; r++ {
			classTotal[m.Labels[r]]++
		}
		for r := 0; r < s.Rows; r++ {
			l := m.Labels[r]
			frac := float64(classPos[l]) / float64(classTotal[l])
			classPos[l]++
			if l != 0 {
				continue // confounder tracks class 1 (label index 0)
			}
			shift := s.SpuriousCorr * (1 - 2*frac)
			for c := 0; c < s.Cols; c++ {
				if !isInformative[c] {
					m.Values[r][c] += shift
				}
			}
		}
	}

	// Cohort drift on background genes: a fixed per-gene direction whose
	// magnitude grows with the row's position inside its class (later rows
	// — the test cohort under the deterministic stratified split — drift
	// further).
	if s.Drift > 0 {
		isInformative := make([]bool, s.Cols)
		for _, c := range informative {
			isInformative[c] = true
		}
		dirs := make([]float64, s.Cols)
		for c := range dirs {
			dirs[c] = rng.NormFloat64()
		}
		classPos := map[int]int{}
		classTotal := map[int]int{}
		for r := 0; r < s.Rows; r++ {
			classTotal[m.Labels[r]]++
		}
		for r := 0; r < s.Rows; r++ {
			l := m.Labels[r]
			frac := float64(classPos[l]) / float64(classTotal[l])
			classPos[l]++
			for c := 0; c < s.Cols; c++ {
				if !isInformative[c] {
					m.Values[r][c] += s.Drift * frac * dirs[c]
				}
			}
		}
	}

	// Measurement quantization (floor thresholding).
	if s.Quantize > 0 {
		for r := 0; r < s.Rows; r++ {
			for c := 0; c < s.Cols; c++ {
				m.Values[r][c] = math.Round(m.Values[r][c]/s.Quantize) * s.Quantize
			}
		}
	}
	return m, nil
}

// GenerateDiscrete generates the matrix and applies equal-depth
// discretization with the given bucket count — the pipeline the paper's
// efficiency experiments use (10 buckets).
func (s Spec) GenerateDiscrete(buckets int) (*dataset.Dataset, error) {
	m, err := s.Generate()
	if err != nil {
		return nil, err
	}
	disc, err := discretize.EqualDepth(m, buckets)
	if err != nil {
		return nil, err
	}
	return disc.Apply(m)
}

// GenerateEntropyDiscrete generates the matrix and applies entropy-MDL
// discretization — the pipeline the paper's classifier experiments use.
func (s Spec) GenerateEntropyDiscrete() (*dataset.Dataset, error) {
	m, err := s.Generate()
	if err != nil {
		return nil, err
	}
	disc, err := discretize.EntropyMDL(m)
	if err != nil {
		return nil, err
	}
	return disc.Apply(m)
}

// Scaled returns a copy of the spec with row and column counts (and the
// structure parameters tied to them) multiplied by the given fractions,
// clamped to usable minimums. Used to derive bench-scale variants of the
// paper-shaped specs.
func (s Spec) Scaled(rowFrac, colFrac float64) Spec {
	out := s
	out.Rows = clampMin(int(float64(s.Rows)*rowFrac), 6)
	out.Class1Rows = clampMin(int(float64(s.Class1Rows)*rowFrac), 3)
	if out.Class1Rows >= out.Rows {
		out.Class1Rows = out.Rows - 3
	}
	out.Cols = clampMin(int(float64(s.Cols)*colFrac), 20)
	out.Informative = clampMin(int(float64(s.Informative)*colFrac), 4)
	out.Modules = clampMin(int(float64(s.Modules)*colFrac), 1)
	if out.Informative+out.Modules*out.ModuleSize > out.Cols {
		out.Modules = 0
	}
	out.Name = s.Name + "-scaled"
	return out
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}
