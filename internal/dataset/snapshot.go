package dataset

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bitset"
)

// Snapshot is the immutable compiled form of a dataset: everything a miner
// derives from the raw rows before enumeration starts — the transposed
// table, per-item row bitsets, the global item frequency order, and (per
// consequent, compiled lazily) the ORD row permutation with its own
// transposed table and class mask. One snapshot can back any number of
// concurrent runs: every precomputed structure is treated as read-only by
// all miners (verified in the race-enabled service suite), so sharing is
// safe without copying.
//
// A snapshot is pinned to the exact *Dataset it was built from. Mutating
// that dataset after NewSnapshot is a caller bug; the service layer never
// does (re-registration swaps in a fresh dataset + snapshot pair).
type Snapshot struct {
	d  *Dataset
	tt *Transposed

	// itemRows[it] is the set of original row ids containing item it.
	// Shared across runs; miners must only read (And/AndCount/Clone).
	itemRows []*bitset.Set

	// freqOrder holds every item with nonzero support, sorted by
	// (frequency desc, item asc) — CLOSET's header order before the
	// minsup filter. Filtering a prefix-stable order by any minsup yields
	// exactly the per-run order CLOSET would have computed itself.
	freqOrder []Item

	mu    sync.Mutex
	views map[int]*ConsequentView
}

// ConsequentView is the per-consequent slice of a snapshot: the ORD-ordered
// dataset, the permutation back to original row ids, the transposed table
// of the ordered rows, and the consequent-class mask over original row ids.
// Like the snapshot itself it is immutable once built.
type ConsequentView struct {
	Ordered *Dataset
	Ord     *Ordering
	TT      *Transposed // transpose of Ordered
	PosMask *bitset.Set // original row ids with the consequent class
}

// NewSnapshot validates d and compiles its consequent-independent
// structures. The per-consequent views are compiled on first use by
// ForConsequent.
func NewSnapshot(d *Dataset) (*Snapshot, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	tt := Transpose(d)
	n := len(d.Rows)
	itemRows := make([]*bitset.Set, d.NumItems)
	var freqOrder []Item
	for it, list := range tt.Lists {
		s := bitset.New(n)
		for _, r := range list {
			s.Set(int(r))
		}
		itemRows[it] = s
		if len(list) > 0 {
			freqOrder = append(freqOrder, Item(it))
		}
	}
	sort.Slice(freqOrder, func(a, b int) bool {
		fa, fb := len(tt.Lists[freqOrder[a]]), len(tt.Lists[freqOrder[b]])
		if fa != fb {
			return fa > fb
		}
		return freqOrder[a] < freqOrder[b]
	})
	return &Snapshot{
		d:         d,
		tt:        tt,
		itemRows:  itemRows,
		freqOrder: freqOrder,
		views:     make(map[int]*ConsequentView),
	}, nil
}

// RestoreSnapshot assembles a snapshot from parts compiled earlier — the
// decode half of the durable snapshot format (internal/store). The caller
// guarantees the parts are mutually consistent and derived from d exactly
// as NewSnapshot would have computed them; the store's decoder establishes
// this with structural checks plus a whole-file checksum. views may be nil
// or hold any subset of materialized consequent views (missing ones are
// compiled lazily as usual).
func RestoreSnapshot(d *Dataset, tt *Transposed, itemRows []*bitset.Set, freqOrder []Item, views map[int]*ConsequentView) *Snapshot {
	if views == nil {
		views = make(map[int]*ConsequentView)
	}
	return &Snapshot{
		d:         d,
		tt:        tt,
		itemRows:  itemRows,
		freqOrder: freqOrder,
		views:     views,
	}
}

// MaterializedViews returns a copy of the per-consequent views compiled so
// far (keyed by consequent class). The encoder uses it to persist views a
// warm snapshot has already paid for; callers must not mutate the views.
func (s *Snapshot) MaterializedViews() map[int]*ConsequentView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int]*ConsequentView, len(s.views))
	for k, v := range s.views {
		out[k] = v
	}
	return out
}

// Dataset returns the dataset the snapshot was compiled from. Miners use
// pointer identity to check that a caller-supplied snapshot actually
// belongs to the dataset being mined.
func (s *Snapshot) Dataset() *Dataset { return s.d }

// Transposed returns the transposed table in original row order.
func (s *Snapshot) Transposed() *Transposed { return s.tt }

// ItemRows returns the per-item row bitsets (original row order). The
// returned sets are shared: callers must not mutate them.
func (s *Snapshot) ItemRows() []*bitset.Set { return s.itemRows }

// ItemFreq returns the number of rows containing item it.
func (s *Snapshot) ItemFreq(it Item) int { return len(s.tt.Lists[it]) }

// FreqOrder returns every item with nonzero support sorted by (frequency
// desc, item asc). The returned slice is shared: callers must not mutate
// it.
func (s *Snapshot) FreqOrder() []Item { return s.freqOrder }

// ForConsequent returns the compiled view for the given consequent class,
// building it on first use. Safe for concurrent callers; the view for each
// consequent is built at most once.
func (s *Snapshot) ForConsequent(consequent int) (*ConsequentView, error) {
	if consequent < 0 || consequent >= s.d.NumClasses() {
		return nil, fmt.Errorf("dataset: consequent class %d outside [0,%d)", consequent, s.d.NumClasses())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.views[consequent]; ok {
		return v, nil
	}
	ordered, ord := OrderForConsequent(s.d, consequent)
	pos := bitset.New(len(s.d.Rows))
	for i, r := range s.d.Rows {
		if r.Class == consequent {
			pos.Set(i)
		}
	}
	v := &ConsequentView{
		Ordered: ordered,
		Ord:     ord,
		TT:      Transpose(ordered),
		PosMask: pos,
	}
	s.views[consequent] = v
	return v, nil
}
