package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Matrix is a continuous gene-expression matrix: one row per sample, one
// column per gene, plus a class label per row. It is the input to the
// discretization pipeline.
type Matrix struct {
	ColNames   []string    // gene names, len = number of columns
	ClassNames []string    // label universe
	Labels     []int       // per-row class index, len = number of rows
	Values     [][]float64 // Values[row][col]
}

// NumRows returns the number of samples.
func (m *Matrix) NumRows() int { return len(m.Values) }

// NumCols returns the number of genes.
func (m *Matrix) NumCols() int { return len(m.ColNames) }

// ClassIndex returns the index of the named class, or -1.
func (m *Matrix) ClassIndex(name string) int {
	for i, c := range m.ClassNames {
		if c == name {
			return i
		}
	}
	return -1
}

// Validate checks the matrix is rectangular with labels in range.
func (m *Matrix) Validate() error {
	if len(m.Labels) != len(m.Values) {
		return fmt.Errorf("matrix: %d labels for %d rows", len(m.Labels), len(m.Values))
	}
	for i, row := range m.Values {
		if len(row) != len(m.ColNames) {
			return fmt.Errorf("matrix: row %d has %d values, want %d", i, len(row), len(m.ColNames))
		}
		if m.Labels[i] < 0 || m.Labels[i] >= len(m.ClassNames) {
			return fmt.Errorf("matrix: row %d label %d outside [0,%d)", i, m.Labels[i], len(m.ClassNames))
		}
	}
	return nil
}

// Column returns a copy of column c's values.
func (m *Matrix) Column(c int) []float64 {
	out := make([]float64, len(m.Values))
	for i, row := range m.Values {
		out[i] = row[c]
	}
	return out
}

// SelectRows returns a new matrix holding only the given rows (shared value
// slices; do not mutate values afterwards).
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := &Matrix{ColNames: m.ColNames, ClassNames: m.ClassNames}
	for _, ri := range rows {
		out.Values = append(out.Values, m.Values[ri])
		out.Labels = append(out.Labels, m.Labels[ri])
	}
	return out
}

// ReadMatrixCSV parses a CSV whose header is "label,<gene>,..." and whose
// rows are "<classname>,<float>,...". Class names are interned in first-seen
// order.
func ReadMatrixCSV(r io.Reader) (*Matrix, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("matrix: read header: %w", err)
	}
	if len(header) < 2 || header[0] != "label" {
		return nil, fmt.Errorf("matrix: header must start with \"label\" and have at least one gene column")
	}
	m := &Matrix{ColNames: append([]string(nil), header[1:]...)}
	classIDs := map[string]int{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("matrix: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("matrix: line %d: %d fields, want %d", line, len(rec), len(header))
		}
		cid, seen := classIDs[rec[0]]
		if !seen {
			cid = len(m.ClassNames)
			classIDs[rec[0]] = cid
			m.ClassNames = append(m.ClassNames, rec[0])
		}
		vals := make([]float64, len(rec)-1)
		for i, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: line %d col %d: %w", line, i+2, err)
			}
			vals[i] = v
		}
		m.Labels = append(m.Labels, cid)
		m.Values = append(m.Values, vals)
	}
	return m, m.Validate()
}

// WriteMatrixCSV writes m in the format ReadMatrixCSV accepts.
func WriteMatrixCSV(w io.Writer, m *Matrix) error {
	cw := csv.NewWriter(w)
	header := append([]string{"label"}, m.ColNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i, row := range m.Values {
		rec[0] = m.ClassNames[m.Labels[i]]
		for j, v := range row {
			rec[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
