package dataset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The transactional text format is one row per line:
//
//	<class-label> : <item> <item> ...
//
// Item and class tokens are arbitrary whitespace-free strings; they are
// interned into dense ids in first-seen order. Blank lines and lines
// starting with '#' are ignored.

// ReadTransactions parses the transactional format from r.
func ReadTransactions(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	itemIDs := map[string]Item{}
	classIDs := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		label, rest, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("dataset: line %d: missing ':' separator", lineNo)
		}
		label = strings.TrimSpace(label)
		if label == "" {
			return nil, fmt.Errorf("dataset: line %d: empty class label", lineNo)
		}
		cid, seen := classIDs[label]
		if !seen {
			cid = len(d.ClassNames)
			classIDs[label] = cid
			d.ClassNames = append(d.ClassNames, label)
		}
		var items []Item
		for _, tok := range strings.Fields(rest) {
			id, seen := itemIDs[tok]
			if !seen {
				id = Item(len(d.ItemNames))
				itemIDs[tok] = id
				d.ItemNames = append(d.ItemNames, tok)
			}
			items = append(items, id)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		items = dedupItems(items)
		d.Rows = append(d.Rows, Row{Items: items, Class: cid})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: read: %w", err)
	}
	d.NumItems = len(d.ItemNames)
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteTransactions writes d in the transactional format.
func WriteTransactions(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, r := range d.Rows {
		if _, err := fmt.Fprintf(bw, "%s :", d.ClassNames[r.Class]); err != nil {
			return err
		}
		for _, it := range r.Items {
			if _, err := fmt.Fprintf(bw, " %s", d.ItemName(it)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
