package dataset

import (
	"reflect"
	"testing"
)

func TestPaperExampleShape(t *testing.T) {
	d := PaperExample()
	if d.NumRows() != 5 {
		t.Fatalf("NumRows = %d, want 5", d.NumRows())
	}
	if d.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d, want 2", d.NumClasses())
	}
	if d.ClassCount(0) != 3 || d.ClassCount(1) != 2 {
		t.Fatalf("class counts = %d,%d want 3,2", d.ClassCount(0), d.ClassCount(1))
	}
	if got := StringFromItems(d.Rows[1].Items); got != "adehlpr" {
		t.Fatalf("row 2 items = %q, want adehlpr", got)
	}
}

func TestClassIndex(t *testing.T) {
	d := PaperExample()
	if d.ClassIndex("C") != 0 || d.ClassIndex("notC") != 1 {
		t.Fatal("ClassIndex wrong for known classes")
	}
	if d.ClassIndex("missing") != -1 {
		t.Fatal("ClassIndex should be -1 for unknown class")
	}
}

func TestItemNameFallback(t *testing.T) {
	d := &Dataset{NumItems: 3, ClassNames: []string{"x"}}
	if got := d.ItemName(2); got != "i2" {
		t.Fatalf("ItemName fallback = %q, want i2", got)
	}
}

func TestValidateRejectsBadRows(t *testing.T) {
	cases := []struct {
		name string
		d    *Dataset
	}{
		{"class out of range", &Dataset{NumItems: 2, ClassNames: []string{"a"},
			Rows: []Row{{Items: []Item{0}, Class: 1}}}},
		{"item out of range", &Dataset{NumItems: 2, ClassNames: []string{"a"},
			Rows: []Row{{Items: []Item{5}, Class: 0}}}},
		{"unsorted items", &Dataset{NumItems: 3, ClassNames: []string{"a"},
			Rows: []Row{{Items: []Item{2, 1}, Class: 0}}}},
		{"duplicate items", &Dataset{NumItems: 3, ClassNames: []string{"a"},
			Rows: []Row{{Items: []Item{1, 1}, Class: 0}}}},
		{"item name count mismatch", &Dataset{NumItems: 3, ItemNames: []string{"x"},
			ClassNames: []string{"a"}}},
	}
	for _, c := range cases {
		if err := c.d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid dataset", c.name)
		}
	}
}

func TestFromItemListsSortsAndDedups(t *testing.T) {
	d, err := FromItemLists([][]Item{{3, 1, 3, 0}}, []int{0}, 4, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Rows[0].Items; !reflect.DeepEqual(got, []Item{0, 1, 3}) {
		t.Fatalf("items = %v", got)
	}
}

func TestFromItemListsLengthMismatch(t *testing.T) {
	if _, err := FromItemLists([][]Item{{0}}, []int{0, 1}, 1, []string{"c"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestHasItem(t *testing.T) {
	r := Row{Items: []Item{1, 4, 9}}
	for _, it := range []Item{1, 4, 9} {
		if !r.HasItem(it) {
			t.Errorf("HasItem(%d) = false", it)
		}
	}
	for _, it := range []Item{0, 2, 10} {
		if r.HasItem(it) {
			t.Errorf("HasItem(%d) = true", it)
		}
	}
}

func TestClone(t *testing.T) {
	d := PaperExample()
	c := d.Clone()
	c.Rows[0].Items[0] = 19
	c.Rows[0].Class = 1
	if d.Rows[0].Items[0] == 19 || d.Rows[0].Class == 1 {
		t.Fatal("Clone shares storage with original")
	}
}

// Example 1 of the paper: R({a,e,h}) = {r2,r3,r4}, I({r2,r3}) = {a,e,h}.
func TestSupportOperatorsPaperExample1(t *testing.T) {
	d := PaperExample()
	rs := SupportSet(d, ItemsFromString("aeh"))
	if got := rs.Ints(); !reflect.DeepEqual(got, []int{1, 2, 3}) { // 0-based r2,r3,r4
		t.Fatalf("R(aeh) = %v, want [1 2 3]", got)
	}
	ci := CommonItems(d, []int{1, 2}) // r2, r3
	if got := StringFromItems(ci); got != "aeh" {
		t.Fatalf("I({r2,r3}) = %q, want aeh", got)
	}
}

// Example 2: R(e)=R(h)=R(ae)=...=R(aeh)={r2,r3,r4}; closure of {e} is aeh.
func TestClosurePaperExample2(t *testing.T) {
	d := PaperExample()
	for _, s := range []string{"e", "h", "ae", "ah", "eh", "aeh"} {
		rs := SupportSet(d, ItemsFromString(s))
		if got := rs.Ints(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
			t.Fatalf("R(%s) = %v, want [1 2 3]", s, got)
		}
		if got := StringFromItems(Closure(d, ItemsFromString(s))); got != "aeh" {
			t.Fatalf("closure(%s) = %q, want aeh", s, got)
		}
	}
}

func TestCommonItemsEmptyRowSet(t *testing.T) {
	d := PaperExample()
	if got := len(CommonItems(d, nil)); got != d.NumItems {
		t.Fatalf("I(∅) has %d items, want all %d", got, d.NumItems)
	}
}

// Node "134" of Figure 3 is labeled {a}; node "135" is labeled {}.
func TestCommonItemsFigure3Nodes(t *testing.T) {
	d := PaperExample()
	if got := StringFromItems(CommonItems(d, []int{0, 2, 3})); got != "a" {
		t.Fatalf("I({1,3,4}) = %q, want a", got)
	}
	if got := CommonItems(d, []int{0, 2, 4}); len(got) != 0 {
		t.Fatalf("I({1,3,5}) = %v, want empty", got)
	}
}

func TestSupportCounts(t *testing.T) {
	d := PaperExample()
	pos, neg := SupportCounts(d, ItemsFromString("aeh"), 0)
	if pos != 2 || neg != 1 {
		t.Fatalf("SupportCounts(aeh,C) = %d,%d want 2,1", pos, neg)
	}
	pos, neg = SupportCounts(d, ItemsFromString("a"), 0)
	if pos != 3 || neg != 1 {
		t.Fatalf("SupportCounts(a,C) = %d,%d want 3,1", pos, neg)
	}
}

func TestTransposePaperExample(t *testing.T) {
	d := PaperExample()
	tt := Transpose(d)
	// Figure 1(b): item a in rows 1,2,3,4; item d in rows 2,5; item t in 3,5.
	check := func(item string, want []int32) {
		got := tt.Lists[ItemsFromString(item)[0]]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tuple %s = %v, want %v", item, got, want)
		}
	}
	check("a", []int32{0, 1, 2, 3})
	check("d", []int32{1, 4})
	check("t", []int32{2, 4})
	check("g", []int32{4})
	if tt.NumRows != 5 {
		t.Fatalf("NumRows = %d", tt.NumRows)
	}
}

func TestTransposeItemsOfRowInverse(t *testing.T) {
	d := PaperExample()
	tt := Transpose(d)
	for ri, r := range d.Rows {
		if got := tt.ItemsOfRow(ri); !reflect.DeepEqual(got, r.Items) {
			t.Fatalf("ItemsOfRow(%d) = %v, want %v", ri, got, r.Items)
		}
	}
}

func TestOrderForConsequent(t *testing.T) {
	d := PaperExample()
	// Reorder with consequent notC: rows 4,5 first.
	od, ord := OrderForConsequent(d, 1)
	if ord.NumPositive != 2 {
		t.Fatalf("NumPositive = %d, want 2", ord.NumPositive)
	}
	if !reflect.DeepEqual(ord.ToOriginal, []int{3, 4, 0, 1, 2}) {
		t.Fatalf("ToOriginal = %v", ord.ToOriginal)
	}
	if od.Rows[0].Class != 1 || od.Rows[1].Class != 1 || od.Rows[2].Class != 0 {
		t.Fatal("rows not ordered positives-first")
	}
	if got := ord.MapRowsToOriginal([]int{0, 2}); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Fatalf("MapRowsToOriginal = %v", got)
	}
}

func TestOrderForConsequentAlreadyOrdered(t *testing.T) {
	d := PaperExample()
	od, ord := OrderForConsequent(d, 0)
	if !reflect.DeepEqual(ord.ToOriginal, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("ToOriginal = %v", ord.ToOriginal)
	}
	if ord.NumPositive != 3 {
		t.Fatalf("NumPositive = %d", ord.NumPositive)
	}
	for i := range d.Rows {
		if !reflect.DeepEqual(od.Rows[i].Items, d.Rows[i].Items) {
			t.Fatal("rows changed despite identity order")
		}
	}
}

func TestReplicate(t *testing.T) {
	d := PaperExample()
	r := Replicate(d, 3)
	if r.NumRows() != 15 {
		t.Fatalf("NumRows = %d, want 15", r.NumRows())
	}
	if !reflect.DeepEqual(r.Rows[5].Items, d.Rows[0].Items) {
		t.Fatal("second block does not repeat first row")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// Support scales linearly.
	if got := SupportSet(r, ItemsFromString("aeh")).Count(); got != 9 {
		t.Fatalf("support in replicated = %d, want 9", got)
	}
}

func TestReplicatePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replicate(0) did not panic")
		}
	}()
	Replicate(PaperExample(), 0)
}
