package dataset

import (
	"reflect"
	"sync"
	"testing"
)

func snapTestData(t *testing.T) *Dataset {
	t.Helper()
	d, err := FromItemLists(
		[][]Item{
			{0, 1, 2},
			{1, 2, 3},
			{0, 2},
			{3},
			{1, 2},
		},
		[]int{0, 1, 0, 1, 0},
		5, // item 4 never occurs
		[]string{"pos", "neg"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSnapshotCompiledStructures(t *testing.T) {
	d := snapTestData(t)
	snap, err := NewSnapshot(d)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dataset() != d {
		t.Fatal("Dataset() must return the exact source pointer")
	}

	want := Transpose(d)
	if !reflect.DeepEqual(snap.Transposed(), want) {
		t.Fatalf("transposed mismatch: got %+v want %+v", snap.Transposed(), want)
	}

	rows := snap.ItemRows()
	if len(rows) != d.NumItems {
		t.Fatalf("ItemRows length %d, want %d", len(rows), d.NumItems)
	}
	for it, list := range want.Lists {
		var got []int
		if rows[it] != nil {
			got = rows[it].Ints()
		}
		var exp []int
		for _, r := range list {
			exp = append(exp, int(r))
		}
		if !reflect.DeepEqual(got, exp) && !(len(got) == 0 && len(exp) == 0) {
			t.Fatalf("item %d rows = %v, want %v", it, got, exp)
		}
	}

	// freq: item2=4, item1=3, item0=2, item3=2, item4=0 (absent).
	if got, exp := snap.FreqOrder(), []Item{2, 1, 0, 3}; !reflect.DeepEqual(got, exp) {
		t.Fatalf("FreqOrder = %v, want %v", got, exp)
	}
	if snap.ItemFreq(2) != 4 || snap.ItemFreq(4) != 0 {
		t.Fatalf("ItemFreq wrong: %d, %d", snap.ItemFreq(2), snap.ItemFreq(4))
	}
}

func TestSnapshotConsequentView(t *testing.T) {
	d := snapTestData(t)
	snap, err := NewSnapshot(d)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < d.NumClasses(); c++ {
		v, err := snap.ForConsequent(c)
		if err != nil {
			t.Fatal(err)
		}
		ordered, ord := OrderForConsequent(d, c)
		if !reflect.DeepEqual(v.Ordered.Rows, ordered.Rows) {
			t.Fatalf("class %d: ordered rows differ", c)
		}
		if !reflect.DeepEqual(v.Ord, ord) {
			t.Fatalf("class %d: ordering differs", c)
		}
		if !reflect.DeepEqual(v.TT, Transpose(ordered)) {
			t.Fatalf("class %d: ordered transpose differs", c)
		}
		for i, r := range d.Rows {
			if v.PosMask.Test(i) != (r.Class == c) {
				t.Fatalf("class %d: PosMask wrong at row %d", c, i)
			}
		}
		// Cached: same pointer on the second call.
		v2, err := snap.ForConsequent(c)
		if err != nil {
			t.Fatal(err)
		}
		if v2 != v {
			t.Fatalf("class %d: view not cached", c)
		}
	}
	if _, err := snap.ForConsequent(-1); err == nil {
		t.Fatal("negative consequent must error")
	}
	if _, err := snap.ForConsequent(d.NumClasses()); err == nil {
		t.Fatal("out-of-range consequent must error")
	}
}

func TestSnapshotRejectsInvalidDataset(t *testing.T) {
	d := &Dataset{
		Rows:       []Row{{Items: []Item{3}, Class: 0}},
		NumItems:   2, // item 3 out of range
		ClassNames: []string{"a"},
	}
	if _, err := NewSnapshot(d); err == nil {
		t.Fatal("NewSnapshot must validate")
	}
}

func TestSnapshotConcurrentForConsequent(t *testing.T) {
	d := snapTestData(t)
	snap, err := NewSnapshot(d)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	views := make([]*ConsequentView, 16)
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := snap.ForConsequent(i % 2)
			if err != nil {
				t.Error(err)
				return
			}
			views[i] = v
		}(i)
	}
	wg.Wait()
	for i := range views {
		if views[i] == nil || views[i] != views[i%2] {
			t.Fatalf("view %d not shared with view %d", i, i%2)
		}
	}
}
