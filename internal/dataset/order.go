package dataset

// Ordering records the row permutation applied by OrderForConsequent so that
// results over the reordered dataset can be mapped back to the caller's
// original row ids.
type Ordering struct {
	// ToOriginal[newID] = original row id.
	ToOriginal []int
	// NumPositive is the number of rows with the consequent class; reordered
	// rows [0, NumPositive) are exactly those rows.
	NumPositive int
}

// OrderForConsequent returns a copy of d whose rows are permuted into the
// ORD order of §3.1: all rows with class `consequent` first (preserving
// their relative order), then all remaining rows. FARMER's confidence and
// support upper bounds (§3.2.3) rely on this ordering.
func OrderForConsequent(d *Dataset, consequent int) (*Dataset, *Ordering) {
	out := &Dataset{
		NumItems:   d.NumItems,
		ItemNames:  d.ItemNames,
		ClassNames: d.ClassNames,
		Rows:       make([]Row, 0, len(d.Rows)),
	}
	ord := &Ordering{ToOriginal: make([]int, 0, len(d.Rows))}
	for i, r := range d.Rows {
		if r.Class == consequent {
			out.Rows = append(out.Rows, r)
			ord.ToOriginal = append(ord.ToOriginal, i)
		}
	}
	ord.NumPositive = len(out.Rows)
	for i, r := range d.Rows {
		if r.Class != consequent {
			out.Rows = append(out.Rows, r)
			ord.ToOriginal = append(ord.ToOriginal, i)
		}
	}
	return out, ord
}

// MapRowsToOriginal translates reordered row ids back to original ids.
func (o *Ordering) MapRowsToOriginal(rows []int) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = o.ToOriginal[r]
	}
	return out
}
