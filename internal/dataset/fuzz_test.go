package dataset

// Robustness of the parsers: arbitrary input must yield a dataset or an
// error, never a panic, and whatever parses must validate. Implemented as
// native Go fuzz targets; `go test` runs the seed corpus, and
// `go test -fuzz=FuzzReadTransactions ./internal/dataset` explores further.

import (
	"strings"
	"testing"
)

func FuzzReadTransactions(f *testing.F) {
	seeds := []string{
		"",
		"C : a b c",
		"C : a a a\nN :\n",
		": missing label",
		"no separator at all",
		"# only a comment\n\n",
		"C : " + strings.Repeat("x ", 300),
		"\x00\x01\x02 : \xff\xfe",
		"C : a\nC : a\nC : a\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadTransactions(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := d.Validate(); vErr != nil {
			t.Fatalf("parsed dataset invalid: %v\ninput: %q", vErr, input)
		}
		// Round trip must stay parseable.
		var sb strings.Builder
		if wErr := WriteTransactions(&sb, d); wErr != nil {
			t.Fatalf("write-back failed: %v", wErr)
		}
		if _, rErr := ReadTransactions(strings.NewReader(sb.String())); rErr != nil {
			t.Fatalf("round trip failed: %v\nwritten: %q", rErr, sb.String())
		}
	})
}

func FuzzReadMatrixCSV(f *testing.F) {
	seeds := []string{
		"",
		"label,g1\nc,1\n",
		"label,g1,g2\nc,1\n",
		"label\nc\n",
		"label,g1\nc,notanumber\n",
		"label,g1\n\"unclosed,1\n",
		"label,g1\nc,1e309\n",
		"x,y\n1,2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrixCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if vErr := m.Validate(); vErr != nil {
			t.Fatalf("parsed matrix invalid: %v\ninput: %q", vErr, input)
		}
	})
}
