package dataset

import (
	"math"
	"strings"
	"testing"
)

func TestDescribePaperExample(t *testing.T) {
	s := Describe(PaperExample())
	if s.Rows != 5 || s.Items != 20 {
		t.Fatalf("shape %d/%d", s.Rows, s.Items)
	}
	if s.ClassCounts["C"] != 3 || s.ClassCounts["notC"] != 2 {
		t.Fatalf("class counts %v", s.ClassCounts)
	}
	// Row lengths: 6,7,7,6,8.
	if s.MinRowLen != 6 || s.MaxRowLen != 8 {
		t.Fatalf("row lengths %d..%d", s.MinRowLen, s.MaxRowLen)
	}
	if math.Abs(s.MeanRowLen-34.0/5) > 1e-12 {
		t.Fatalf("mean row length %v", s.MeanRowLen)
	}
	// 15 of 20 items occur; item a has the top support (4).
	if s.DistinctItems != 15 || s.MaxItemSup != 4 || s.MinItemSup != 1 {
		t.Fatalf("item stats %+v", s)
	}
	if math.Abs(s.Density-34.0/5/20) > 1e-12 {
		t.Fatalf("density %v", s.Density)
	}
	out := s.String()
	for _, frag := range []string{"rows=5", "class C", "item support"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("String missing %q:\n%s", frag, out)
		}
	}
}

func TestDescribeEmpty(t *testing.T) {
	s := Describe(&Dataset{ClassNames: []string{"x"}})
	if s.Rows != 0 || s.MinRowLen != 0 || s.DistinctItems != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	_ = s.String()
}

func TestDescribeSingleRow(t *testing.T) {
	d, err := FromItemLists([][]Item{{0, 1, 2}}, []int{0}, 3, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	s := Describe(d)
	if s.MinRowLen != 3 || s.MaxRowLen != 3 || s.MedianItemSup != 1 || s.MeanItemSup != 1 {
		t.Fatalf("summary %+v", s)
	}
}
