package dataset

// Transposed is the transposed table TT of Figure 1(b): for each item, the
// ascending list of row ids that contain it. Row-enumeration miners treat
// each item's row list as one "tuple" of TT.
type Transposed struct {
	NumRows int
	Lists   [][]int32 // Lists[item] = sorted row ids containing item
}

// Transpose builds the transposed table of d.
func Transpose(d *Dataset) *Transposed {
	t := &Transposed{NumRows: len(d.Rows), Lists: make([][]int32, d.NumItems)}
	counts := make([]int, d.NumItems)
	for _, r := range d.Rows {
		for _, it := range r.Items {
			counts[it]++
		}
	}
	for it, c := range counts {
		if c > 0 {
			t.Lists[it] = make([]int32, 0, c)
		}
	}
	for ri, r := range d.Rows {
		for _, it := range r.Items {
			t.Lists[it] = append(t.Lists[it], int32(ri))
		}
	}
	return t
}

// ItemsOfRow returns the items whose lists contain row ri. It is the inverse
// view used by tests; miners index Lists directly.
func (t *Transposed) ItemsOfRow(ri int) []Item {
	var out []Item
	for it, list := range t.Lists {
		for _, r := range list {
			if int(r) == ri {
				out = append(out, Item(it))
				break
			}
			if int(r) > ri {
				break
			}
		}
	}
	return out
}
