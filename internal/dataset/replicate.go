package dataset

// Replicate returns a dataset whose row set is d's repeated k times, in
// block order (all rows once, then again, ...). This reproduces the §4.1
// scale-up experiment, where each clinical dataset is replicated 5–10× to
// study how FARMER degrades as the number of rows grows. k must be ≥ 1.
func Replicate(d *Dataset, k int) *Dataset {
	if k < 1 {
		panic("dataset: Replicate factor must be >= 1")
	}
	out := &Dataset{
		NumItems:   d.NumItems,
		ItemNames:  d.ItemNames,
		ClassNames: d.ClassNames,
		Rows:       make([]Row, 0, k*len(d.Rows)),
	}
	for i := 0; i < k; i++ {
		out.Rows = append(out.Rows, d.Rows...)
	}
	return out
}
