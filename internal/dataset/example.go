package dataset

// PaperExample returns the running example of Figure 1(a): five rows over
// items a..t with class labels C (rows 1–3) and ¬C (rows 4–5). Item ids map
// a=0, b=1, ..., t=19; class C has index 0. Tests across the repository use
// it to assert the paper's worked examples (Examples 1–7, Figure 3).
func PaperExample() *Dataset {
	row := func(s string) []Item {
		items := make([]Item, 0, len(s))
		for _, ch := range s {
			items = append(items, Item(ch-'a'))
		}
		return items
	}
	names := make([]string, 20)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	d := &Dataset{
		NumItems:   20,
		ItemNames:  names,
		ClassNames: []string{"C", "notC"},
		Rows: []Row{
			{Items: row("abclos"), Class: 0},
			{Items: row("adehplr"), Class: 0},
			{Items: row("acehoqt"), Class: 0},
			{Items: row("aefhpr"), Class: 1},
			{Items: row("bdfglqst"), Class: 1},
		},
	}
	for i := range d.Rows {
		sortItems(d.Rows[i].Items)
	}
	if err := d.Validate(); err != nil {
		panic("dataset: paper example invalid: " + err.Error())
	}
	return d
}

func sortItems(items []Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j-1] > items[j]; j-- {
			items[j-1], items[j] = items[j], items[j-1]
		}
	}
}

// ItemsFromString converts a compact "aeh"-style string into item ids for
// the paper-example alphabet. Helper for tests.
func ItemsFromString(s string) []Item {
	items := make([]Item, 0, len(s))
	for _, ch := range s {
		items = append(items, Item(ch-'a'))
	}
	sortItems(items)
	return items
}

// StringFromItems renders item ids in the paper-example alphabet ("aeh").
// Helper for tests.
func StringFromItems(items []Item) string {
	b := make([]byte, len(items))
	for i, it := range items {
		b[i] = byte('a' + it)
	}
	return string(b)
}
