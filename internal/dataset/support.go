package dataset

import "repro/internal/bitset"

// SupportSet returns R(I'): the set of rows containing every item in items
// (§2.1). An empty itemset is supported by every row.
func SupportSet(d *Dataset, items []Item) *bitset.Set {
	rows := bitset.New(len(d.Rows))
	for ri := range d.Rows {
		r := &d.Rows[ri]
		ok := true
		for _, it := range items {
			if !r.HasItem(it) {
				ok = false
				break
			}
		}
		if ok {
			rows.Set(ri)
		}
	}
	return rows
}

// CommonItems returns I(R'): the largest itemset contained in every row of
// rows (§2.1). An empty row set yields every item.
func CommonItems(d *Dataset, rows []int) []Item {
	if len(rows) == 0 {
		out := make([]Item, d.NumItems)
		for i := range out {
			out[i] = Item(i)
		}
		return out
	}
	// Intersect sorted item lists pairwise, starting from the first row.
	common := append([]Item(nil), d.Rows[rows[0]].Items...)
	for _, ri := range rows[1:] {
		common = intersectSorted(common, d.Rows[ri].Items)
		if len(common) == 0 {
			break
		}
	}
	return common
}

// CommonItemsSet is CommonItems over a bitset of row ids.
func CommonItemsSet(d *Dataset, rows *bitset.Set) []Item {
	return CommonItems(d, rows.Ints())
}

// Closure returns the closed itemset of items in d: I(R(items)).
func Closure(d *Dataset, items []Item) []Item {
	return CommonItemsSet(d, SupportSet(d, items))
}

func intersectSorted(a, b []Item) []Item {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SupportCounts returns (|R(A ∪ C)|, |R(A ∪ ¬C)|) for antecedent A = items
// and consequent class c.
func SupportCounts(d *Dataset, items []Item, c int) (pos, neg int) {
	rows := SupportSet(d, items)
	rows.ForEach(func(ri int) {
		if d.Rows[ri].Class == c {
			pos++
		} else {
			neg++
		}
	})
	return pos, neg
}
