package dataset

import (
	"fmt"
	"sort"
	"strings"
)

// Summary holds descriptive statistics of a categorical dataset — the
// quantities that determine mining difficulty: row counts per class, row
// lengths, and the item-support distribution.
type Summary struct {
	Rows        int
	Items       int
	ClassCounts map[string]int

	// Row lengths (number of items per row).
	MinRowLen, MaxRowLen int
	MeanRowLen           float64

	// Item supports (number of rows per item, over items occurring ≥ once).
	DistinctItems  int
	MinItemSup     int
	MedianItemSup  int
	MaxItemSup     int
	MeanItemSup    float64
	SupportQuart75 int // 75th percentile of item support

	// Density = mean row length / number of items: the fraction of the
	// binary matrix that is set.
	Density float64
}

// Describe computes the summary of d.
func Describe(d *Dataset) *Summary {
	s := &Summary{
		Rows:        len(d.Rows),
		Items:       d.NumItems,
		ClassCounts: map[string]int{},
		MinRowLen:   int(^uint(0) >> 1),
	}
	for _, name := range d.ClassNames {
		s.ClassCounts[name] = 0
	}
	supports := make([]int, d.NumItems)
	totalLen := 0
	for _, r := range d.Rows {
		s.ClassCounts[d.ClassNames[r.Class]]++
		l := len(r.Items)
		totalLen += l
		if l < s.MinRowLen {
			s.MinRowLen = l
		}
		if l > s.MaxRowLen {
			s.MaxRowLen = l
		}
		for _, it := range r.Items {
			supports[it]++
		}
	}
	if s.Rows == 0 {
		s.MinRowLen = 0
		return s
	}
	s.MeanRowLen = float64(totalLen) / float64(s.Rows)
	if d.NumItems > 0 {
		s.Density = s.MeanRowLen / float64(d.NumItems)
	}

	var occurring []int
	totalSup := 0
	for _, sup := range supports {
		if sup > 0 {
			occurring = append(occurring, sup)
			totalSup += sup
		}
	}
	s.DistinctItems = len(occurring)
	if len(occurring) == 0 {
		return s
	}
	sort.Ints(occurring)
	s.MinItemSup = occurring[0]
	s.MaxItemSup = occurring[len(occurring)-1]
	s.MedianItemSup = occurring[len(occurring)/2]
	s.SupportQuart75 = occurring[len(occurring)*3/4]
	s.MeanItemSup = float64(totalSup) / float64(len(occurring))
	return s
}

// String renders the summary as a small report.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rows=%d items=%d (occurring %d) density=%.3f\n",
		s.Rows, s.Items, s.DistinctItems, s.Density)
	names := make([]string, 0, len(s.ClassCounts))
	for n := range s.ClassCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "class %-12s %d rows\n", n, s.ClassCounts[n])
	}
	fmt.Fprintf(&b, "row length: min=%d mean=%.1f max=%d\n", s.MinRowLen, s.MeanRowLen, s.MaxRowLen)
	fmt.Fprintf(&b, "item support: min=%d median=%d p75=%d max=%d mean=%.1f\n",
		s.MinItemSup, s.MedianItemSup, s.SupportQuart75, s.MaxItemSup, s.MeanItemSup)
	return b.String()
}
