package dataset

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestReadTransactionsBasic(t *testing.T) {
	in := `
# comment
C : a b c
notC : b d

C : a d
`
	d, err := ReadTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 || d.NumItems != 4 || d.NumClasses() != 2 {
		t.Fatalf("shape = %d rows, %d items, %d classes", d.NumRows(), d.NumItems, d.NumClasses())
	}
	if !reflect.DeepEqual(d.ClassNames, []string{"C", "notC"}) {
		t.Fatalf("ClassNames = %v", d.ClassNames)
	}
	if !reflect.DeepEqual(d.ItemNames, []string{"a", "b", "c", "d"}) {
		t.Fatalf("ItemNames = %v", d.ItemNames)
	}
	if !reflect.DeepEqual(d.Rows[2].Items, []Item{0, 3}) {
		t.Fatalf("row 3 items = %v", d.Rows[2].Items)
	}
}

func TestReadTransactionsDedupsItems(t *testing.T) {
	d, err := ReadTransactions(strings.NewReader("C : a a b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows[0].Items) != 2 {
		t.Fatalf("items = %v, want deduped", d.Rows[0].Items)
	}
}

func TestReadTransactionsErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"missing separator", "C a b"},
		{"empty label", " : a b"},
	}
	for _, c := range cases {
		if _, err := ReadTransactions(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTransactionsRoundTrip(t *testing.T) {
	d := PaperExample()
	var buf bytes.Buffer
	if err := WriteTransactions(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != d.NumRows() {
		t.Fatalf("round trip row count mismatch")
	}
	// The paper example reserves ids a..t but only 15 items occur in rows;
	// re-reading interns exactly the occurring items.
	if got.NumItems != 15 {
		t.Fatalf("round trip NumItems = %d, want 15", got.NumItems)
	}
	for i := range d.Rows {
		want := StringFromItems(d.Rows[i].Items)
		var names []string
		for _, it := range got.Rows[i].Items {
			names = append(names, got.ItemName(it))
		}
		sort.Strings(names) // interned ids follow first-seen order, not alphabet
		if strings.Join(names, "") != want {
			t.Fatalf("row %d = %v, want %s", i, names, want)
		}
		if got.ClassNames[got.Rows[i].Class] != d.ClassNames[d.Rows[i].Class] {
			t.Fatalf("row %d class mismatch", i)
		}
	}
}

func TestReadMatrixCSV(t *testing.T) {
	in := "label,g1,g2\ncancer,1.5,2\nnormal,-0.25,3e2\ncancer,0,1\n"
	m, err := ReadMatrixCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 3 || m.NumCols() != 2 {
		t.Fatalf("shape = %dx%d", m.NumRows(), m.NumCols())
	}
	if m.Values[1][1] != 300 {
		t.Fatalf("Values[1][1] = %v", m.Values[1][1])
	}
	if !reflect.DeepEqual(m.Labels, []int{0, 1, 0}) {
		t.Fatalf("Labels = %v", m.Labels)
	}
	if m.ClassIndex("normal") != 1 || m.ClassIndex("zz") != -1 {
		t.Fatal("ClassIndex wrong")
	}
	if got := m.Column(0); !reflect.DeepEqual(got, []float64{1.5, -0.25, 0}) {
		t.Fatalf("Column(0) = %v", got)
	}
}

func TestReadMatrixCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad header", "x,g1\nc,1\n"},
		{"no genes", "label\nc\n"},
		{"bad float", "label,g1\nc,abc\n"},
		{"ragged row", "label,g1,g2\nc,1\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMatrixCSVRoundTrip(t *testing.T) {
	m := &Matrix{
		ColNames:   []string{"g1", "g2", "g3"},
		ClassNames: []string{"a", "b"},
		Labels:     []int{0, 1},
		Values:     [][]float64{{1, 2.5, -3}, {0.125, 0, 9}},
	}
	var buf bytes.Buffer
	if err := WriteMatrixCSV(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, m.Values) || !reflect.DeepEqual(got.Labels, m.Labels) {
		t.Fatal("round trip mismatch")
	}
}

func TestMatrixValidate(t *testing.T) {
	m := &Matrix{ColNames: []string{"g"}, ClassNames: []string{"a"},
		Labels: []int{0}, Values: [][]float64{{1, 2}}}
	if err := m.Validate(); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	m2 := &Matrix{ColNames: []string{"g"}, ClassNames: []string{"a"},
		Labels: []int{5}, Values: [][]float64{{1}}}
	if err := m2.Validate(); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestMatrixSelectRows(t *testing.T) {
	m := &Matrix{
		ColNames:   []string{"g1"},
		ClassNames: []string{"a", "b"},
		Labels:     []int{0, 1, 0},
		Values:     [][]float64{{1}, {2}, {3}},
	}
	s := m.SelectRows([]int{2, 0})
	if s.NumRows() != 2 || s.Values[0][0] != 3 || s.Labels[1] != 0 {
		t.Fatalf("SelectRows wrong: %+v", s)
	}
}
