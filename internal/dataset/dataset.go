// Package dataset provides the categorical table substrate shared by all
// miners in this repository: rows are samples, items are discretized gene
// levels, and each row carries a class label.
//
// The package also implements the transposed-table view of the data
// (Figure 1(b) of the FARMER paper), the ORD row ordering that places
// consequent-class rows first, the R(I')/I(R') support operators of §2.1,
// dataset replication for the scale-up experiment, and simple text formats
// for transactional and continuous matrix data.
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
)

// Item identifies a column value (an "item" in rule-mining terms). Items are
// dense, starting at 0.
type Item = int32

// Row is a single sample: a sorted set of items plus a class label.
type Row struct {
	Items []Item // strictly ascending
	Class int    // index into Dataset.ClassNames
}

// Dataset is an in-memory categorical table.
type Dataset struct {
	Rows       []Row
	NumItems   int      // items are in [0, NumItems)
	ItemNames  []string // optional, len NumItems when present
	ClassNames []string // len = number of classes; Row.Class indexes this
}

// NumRows returns the number of rows.
func (d *Dataset) NumRows() int { return len(d.Rows) }

// NumClasses returns the number of class labels.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// ClassCount returns the number of rows labelled with class c.
func (d *Dataset) ClassCount(c int) int {
	n := 0
	for i := range d.Rows {
		if d.Rows[i].Class == c {
			n++
		}
	}
	return n
}

// ClassIndex returns the index of the named class, or -1.
func (d *Dataset) ClassIndex(name string) int {
	for i, c := range d.ClassNames {
		if c == name {
			return i
		}
	}
	return -1
}

// ItemName returns a printable name for item i.
func (d *Dataset) ItemName(i Item) string {
	if int(i) < len(d.ItemNames) {
		return d.ItemNames[i]
	}
	return fmt.Sprintf("i%d", i)
}

// Validate checks structural invariants: sorted unique items within range,
// class labels within range. Miners assume a validated dataset.
func (d *Dataset) Validate() error {
	if d.NumItems < 0 {
		return fmt.Errorf("dataset: negative NumItems %d", d.NumItems)
	}
	if len(d.ItemNames) != 0 && len(d.ItemNames) != d.NumItems {
		return fmt.Errorf("dataset: %d item names for %d items", len(d.ItemNames), d.NumItems)
	}
	for ri, r := range d.Rows {
		if r.Class < 0 || r.Class >= len(d.ClassNames) {
			return fmt.Errorf("dataset: row %d has class %d outside [0,%d)", ri, r.Class, len(d.ClassNames))
		}
		for k, it := range r.Items {
			if it < 0 || int(it) >= d.NumItems {
				return fmt.Errorf("dataset: row %d item %d outside [0,%d)", ri, it, d.NumItems)
			}
			if k > 0 && r.Items[k-1] >= it {
				return fmt.Errorf("dataset: row %d items not strictly ascending at position %d", ri, k)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		NumItems:   d.NumItems,
		ItemNames:  append([]string(nil), d.ItemNames...),
		ClassNames: append([]string(nil), d.ClassNames...),
		Rows:       make([]Row, len(d.Rows)),
	}
	for i, r := range d.Rows {
		out.Rows[i] = Row{Items: append([]Item(nil), r.Items...), Class: r.Class}
	}
	return out
}

// FromItemLists builds a dataset from raw item lists (sorted and deduplicated
// here) and class labels. classNames defines the label universe.
func FromItemLists(lists [][]Item, classes []int, numItems int, classNames []string) (*Dataset, error) {
	if len(lists) != len(classes) {
		return nil, fmt.Errorf("dataset: %d rows but %d labels", len(lists), len(classes))
	}
	d := &Dataset{NumItems: numItems, ClassNames: append([]string(nil), classNames...)}
	for i, l := range lists {
		items := append([]Item(nil), l...)
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		items = dedupItems(items)
		d.Rows = append(d.Rows, Row{Items: items, Class: classes[i]})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func dedupItems(items []Item) []Item {
	if len(items) < 2 {
		return items
	}
	out := items[:1]
	for _, it := range items[1:] {
		if it != out[len(out)-1] {
			out = append(out, it)
		}
	}
	return out
}

// HasItem reports whether row r contains item it (binary search).
func (r *Row) HasItem(it Item) bool {
	i := sort.Search(len(r.Items), func(k int) bool { return r.Items[k] >= it })
	return i < len(r.Items) && r.Items[i] == it
}

// ItemSet returns the row's items as a bitset of capacity numItems.
func (r *Row) ItemSet(numItems int) *bitset.Set {
	s := bitset.New(numItems)
	for _, it := range r.Items {
		s.Set(int(it))
	}
	return s
}
