package genenet

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
)

// fixture builds a matrix whose first three genes are perfectly co-active
// in class 1 (so they co-occur in rule groups) and a fourth independent
// gene.
func fixture(t *testing.T) (*dataset.Matrix, *discretize.Discretizer, *core.Result) {
	t.Helper()
	m := &dataset.Matrix{
		ColNames:   []string{"gA", "gB", "gC", "gD"},
		ClassNames: []string{"pos", "neg"},
	}
	for i := 0; i < 12; i++ {
		label := 0
		v := 2.0
		if i >= 6 {
			label = 1
			v = -2.0
		}
		noise := float64(i%3) * 0.1
		m.Labels = append(m.Labels, label)
		m.Values = append(m.Values, []float64{v + noise, v - noise, v, float64(i % 2)})
	}
	disc, err := discretize.EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := disc.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Mine(d, 0, core.Options{MinSup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("fixture mined no groups")
	}
	return m, disc, res
}

func TestBuildLinksCoActiveGenes(t *testing.T) {
	m, disc, res := fixture(t)
	g, err := Build(m, disc, []*core.Result{res}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// The co-active trio must be linked; gD (class-blind) must not appear.
	if g.Weight(0, 1) == 0 || g.Weight(0, 2) == 0 || g.Weight(1, 2) == 0 {
		t.Fatalf("co-active genes not fully linked: %v", g.Edges())
	}
	for _, e := range g.Edges() {
		if e.A == 3 || e.B == 3 {
			t.Fatalf("independent gene gD linked: %+v", e)
		}
	}
}

func TestBuildRequiresDiscretizer(t *testing.T) {
	if _, err := Build(&dataset.Matrix{}, nil, nil, Options{}); err == nil {
		t.Fatal("nil discretizer accepted")
	}
}

func TestSupportWeighting(t *testing.T) {
	m, disc, res := fixture(t)
	plain, err := Build(m, disc, []*core.Result{res}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Build(m, disc, []*core.Result{res}, Options{SupportWeighted: true})
	if err != nil {
		t.Fatal(err)
	}
	// Support weighting can only increase weights (support ≥ 1 per group).
	for _, e := range plain.Edges() {
		if weighted.Weight(e.A, e.B) < e.Weight {
			t.Fatalf("support weighting decreased edge (%d,%d)", e.A, e.B)
		}
	}
}

func TestMinWeightFilters(t *testing.T) {
	m, disc, res := fixture(t)
	g, err := Build(m, disc, []*core.Result{res}, Options{MinWeight: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatal("MinWeight did not filter")
	}
}

func TestEdgesSortedByWeight(t *testing.T) {
	m, disc, res := fixture(t)
	g, err := Build(m, disc, []*core.Result{res}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	for i := 1; i < len(edges); i++ {
		if edges[i].Weight > edges[i-1].Weight {
			t.Fatal("edges not sorted by weight")
		}
	}
}

func TestComponents(t *testing.T) {
	m, disc, res := fixture(t)
	g, err := Build(m, disc, []*core.Result{res}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	if len(comps) == 0 {
		t.Fatal("no components")
	}
	// The trio forms one component containing genes 0,1,2.
	found := false
	for _, c := range comps {
		if len(c) >= 3 && c[0] == 0 && c[1] == 1 && c[2] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("trio component missing: %v", comps)
	}
}

func TestDOT(t *testing.T) {
	m, disc, res := fixture(t)
	g, err := Build(m, disc, []*core.Result{res}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("net")
	if !strings.HasPrefix(dot, "graph \"net\" {") || !strings.Contains(dot, "\"gA\" -- \"gB\"") {
		t.Fatalf("DOT output wrong:\n%s", dot)
	}
	if !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatal("DOT not closed")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &Graph{Names: []string{"a"}, edges: map[[2]int]float64{}}
	if g.NumEdges() != 0 || len(g.Edges()) != 0 || len(g.Components()) != 0 {
		t.Fatal("empty graph not empty")
	}
	if g.Weight(0, 0) != 0 {
		t.Fatal("absent edge weight not 0")
	}
}
