// Package genenet builds gene-association networks from mined rule groups
// — the second application the paper's introduction motivates: "association
// rules can be used to build gene networks since they can capture the
// associations among genes" [7].
//
// Genes that repeatedly co-occur inside rule-group upper bounds are linked;
// edge weight counts the supporting groups (optionally weighted by group
// support). The resulting graph supports thresholding, connected-component
// extraction (candidate modules/pathways), and Graphviz DOT export.
package genenet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/discretize"
)

// Edge is an undirected association between two genes (source columns).
type Edge struct {
	A, B   int // column indices, A < B
	Weight float64
}

// Graph is a weighted undirected gene-association graph.
type Graph struct {
	// Names maps column indices to gene names.
	Names []string
	edges map[[2]int]float64
}

// Options configures Build.
type Options struct {
	// SupportWeighted weights each co-occurrence by the group's support
	// instead of counting groups.
	SupportWeighted bool
	// MinWeight drops edges below this weight after aggregation.
	MinWeight float64
}

// Build aggregates the rule groups of one or more mining results into a
// gene graph. The discretizer maps items back to their source columns;
// items outside the discretizer are ignored.
func Build(m *dataset.Matrix, disc *discretize.Discretizer, results []*core.Result, opt Options) (*Graph, error) {
	if disc == nil {
		return nil, fmt.Errorf("genenet: discretizer required to map items to genes")
	}
	g := &Graph{Names: append([]string(nil), m.ColNames...), edges: map[[2]int]float64{}}
	for _, res := range results {
		if res == nil {
			continue
		}
		for i := range res.Groups {
			grp := &res.Groups[i]
			genes := map[int]bool{}
			for _, it := range grp.Antecedent {
				if c := disc.ItemColumn(it); c >= 0 {
					genes[c] = true
				}
			}
			ids := make([]int, 0, len(genes))
			for c := range genes {
				ids = append(ids, c)
			}
			sort.Ints(ids)
			w := 1.0
			if opt.SupportWeighted {
				w = float64(grp.SupPos)
			}
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					g.edges[[2]int{ids[i], ids[j]}] += w
				}
			}
		}
	}
	if opt.MinWeight > 0 {
		for k, w := range g.edges {
			if w < opt.MinWeight {
				delete(g.edges, k)
			}
		}
	}
	return g, nil
}

// Edges returns the edges sorted by descending weight (ties by node ids).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edges))
	for k, w := range g.edges {
		out = append(out, Edge{A: k[0], B: k[1], Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Weight returns the weight of edge (a, b) in either order (0 if absent).
func (g *Graph) Weight(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	return g.edges[[2]int{a, b}]
}

// Components returns the connected components over genes that carry at
// least one edge, each sorted, largest first — candidate co-regulation
// modules.
func (g *Graph) Components() [][]int {
	parent := map[int]int{}
	var find func(x int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		if _, ok := parent[a]; !ok {
			parent[a] = a
		}
		if _, ok := parent[b]; !ok {
			parent[b] = b
		}
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for k := range g.edges {
		union(k[0], k[1])
	}
	groups := map[int][]int{}
	for x := range parent {
		r := find(x)
		groups[r] = append(groups[r], x)
	}
	out := make([][]int, 0, len(groups))
	for _, members := range groups {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// DOT renders the graph in Graphviz format, heaviest edges first.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -- %q [weight=%g, label=%g];\n",
			g.name(e.A), g.name(e.B), e.Weight, e.Weight)
	}
	b.WriteString("}\n")
	return b.String()
}

func (g *Graph) name(c int) string {
	if c < len(g.Names) {
		return g.Names[c]
	}
	return fmt.Sprintf("g%d", c)
}
