package discretize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func matrixFromFloats(vals []float64, cols int) *dataset.Matrix {
	if cols < 1 {
		cols = 1
	}
	rows := len(vals) / cols
	m := &dataset.Matrix{ClassNames: []string{"a", "b"}}
	for c := 0; c < cols; c++ {
		m.ColNames = append(m.ColNames, "g")
	}
	for r := 0; r < rows; r++ {
		m.Values = append(m.Values, vals[r*cols:(r+1)*cols])
		m.Labels = append(m.Labels, r%2)
	}
	return m
}

// Laws every discretizer must satisfy: buckets partition the real line
// (monotone bucket index in the value), item ids are dense and consistent
// with ItemFor/ItemColumn, and Apply emits exactly one item per kept column.
func TestQuickDiscretizerLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}
	f := func(raw []float64, colsRaw uint8, buckets uint8) bool {
		cols := 1 + int(colsRaw)%4
		nb := 2 + int(buckets)%8
		if len(raw) < 2*cols || len(raw) > 60*cols {
			return true
		}
		for _, v := range raw {
			if v != v || v > 1e300 || v < -1e300 {
				return true // skip NaN/Inf-ish quick inputs
			}
		}
		m := matrixFromFloats(raw, cols)
		for _, fit := range []func() (*Discretizer, error){
			func() (*Discretizer, error) { return EqualDepth(m, nb) },
			func() (*Discretizer, error) { return EqualWidth(m, nb) },
			func() (*Discretizer, error) { return EntropyMDL(m) },
		} {
			d, err := fit()
			if err != nil {
				return false
			}
			// Monotone bucket index over sampled value pairs.
			for c := 0; c < cols; c++ {
				if !d.Kept(c) {
					continue
				}
				for r := 1; r < m.NumRows(); r++ {
					a, b := m.Values[r-1][c], m.Values[r][c]
					ba, bb := d.Bucket(c, a), d.Bucket(c, b)
					if (a < b && ba > bb) || (a > b && ba < bb) {
						return false
					}
					if a == b && ba != bb {
						return false
					}
				}
				// ItemFor/ItemColumn round trip.
				for r := 0; r < m.NumRows(); r++ {
					it := d.ItemFor(c, m.Values[r][c])
					if it < 0 || d.ItemColumn(it) != c {
						return false
					}
				}
			}
			// Apply: one item per kept column, valid dataset.
			ds, err := d.Apply(m)
			if err != nil {
				return false
			}
			kept := 0
			for c := 0; c < cols; c++ {
				if d.Kept(c) {
					kept++
				}
			}
			for _, row := range ds.Rows {
				if len(row.Items) != kept {
					return false
				}
			}
			if ds.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Equal-depth bucket sizes differ by at most the tie mass: with all-distinct
// values the largest and smallest bucket differ by at most ceil(n/buckets).
func TestQuickEqualDepthBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 60; iter++ {
		n := 10 + rng.Intn(90)
		nb := 2 + rng.Intn(9)
		vals := make([]float64, n)
		seen := map[float64]bool{}
		for i := range vals {
			v := rng.NormFloat64()
			for seen[v] {
				v = rng.NormFloat64()
			}
			seen[v] = true
			vals[i] = v
		}
		m := matrixFromFloats(vals, 1)
		d, err := EqualDepth(m, nb)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, d.Buckets(0))
		for _, row := range m.Values {
			counts[d.Bucket(0, row[0])]++
		}
		lo, hi := n, 0
		for _, c := range counts {
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > n/nb+1 {
			t.Fatalf("imbalanced buckets with distinct values: %v (n=%d nb=%d)", counts, n, nb)
		}
	}
}
