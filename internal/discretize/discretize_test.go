package discretize

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

func matrixOf(cols []string, classes []string, labels []int, rows ...[]float64) *dataset.Matrix {
	return &dataset.Matrix{ColNames: cols, ClassNames: classes, Labels: labels, Values: rows}
}

func TestEqualDepthBasic(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"a"}, []int{0, 0, 0, 0},
		[]float64{1}, []float64{2}, []float64{3}, []float64{4})
	d, err := EqualDepth(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cuts[0]; len(got) != 1 || got[0] != 2.5 {
		t.Fatalf("cuts = %v, want [2.5]", got)
	}
	if d.Buckets(0) != 2 || d.NumItems() != 2 {
		t.Fatalf("buckets=%d items=%d", d.Buckets(0), d.NumItems())
	}
	if d.Bucket(0, 2.5) != 0 || d.Bucket(0, 2.6) != 1 {
		t.Fatal("bucket boundary should be right-inclusive")
	}
}

func TestEqualDepthBalancedCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([][]float64, 100)
	labels := make([]int, 100)
	for i := range vals {
		vals[i] = []float64{rng.NormFloat64()}
	}
	m := matrixOf([]string{"g"}, []string{"a"}, labels, vals...)
	d, err := EqualDepth(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Buckets(0) != 10 {
		t.Fatalf("buckets = %d, want 10", d.Buckets(0))
	}
	counts := make([]int, 10)
	for _, row := range m.Values {
		counts[d.Bucket(0, row[0])]++
	}
	for b, c := range counts {
		if c != 10 {
			t.Fatalf("bucket %d holds %d values, want 10 (counts=%v)", b, c, counts)
		}
	}
}

func TestEqualDepthConstantColumnDropped(t *testing.T) {
	m := matrixOf([]string{"g1", "g2"}, []string{"a"}, []int{0, 0},
		[]float64{5, 1}, []float64{5, 2})
	d, err := EqualDepth(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kept(0) {
		t.Fatal("constant column kept")
	}
	if !d.Kept(1) || d.NumItems() != 2 {
		t.Fatalf("variable column items = %d, want 2", d.NumItems())
	}
	if d.ItemFor(0, 5) != -1 {
		t.Fatal("dropped column should yield item -1")
	}
}

func TestEqualDepthDuplicateHeavyColumn(t *testing.T) {
	// 9 copies of 1 and one 2: the only legal cut is between 1 and 2.
	rows := make([][]float64, 10)
	labels := make([]int, 10)
	for i := range rows {
		rows[i] = []float64{1}
	}
	rows[9][0] = 2
	m := matrixOf([]string{"g"}, []string{"a"}, labels, rows...)
	d, err := EqualDepth(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cuts[0]; !reflect.DeepEqual(got, []float64{1.5}) {
		t.Fatalf("cuts = %v, want [1.5]", got)
	}
}

func TestEqualDepthRejectsFewBuckets(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"a"}, []int{0}, []float64{1})
	if _, err := EqualDepth(m, 1); err == nil {
		t.Fatal("1 bucket accepted")
	}
}

func TestEqualWidth(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"a"}, []int{0, 0, 0},
		[]float64{0}, []float64{5}, []float64{10})
	d, err := EqualWidth(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Cuts[0]; !reflect.DeepEqual(got, []float64{5.0}) {
		t.Fatalf("cuts = %v, want [5]", got)
	}
	if d.Bucket(0, 5) != 0 || d.Bucket(0, 5.01) != 1 {
		t.Fatal("equal-width boundary wrong")
	}
}

func TestEqualWidthConstantDropped(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"a"}, []int{0, 0}, []float64{3}, []float64{3})
	d, err := EqualWidth(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumItems() != 0 {
		t.Fatalf("NumItems = %d, want 0", d.NumItems())
	}
}

func TestApplyProducesValidDataset(t *testing.T) {
	m := matrixOf([]string{"g1", "g2"}, []string{"pos", "neg"}, []int{0, 1, 0, 1},
		[]float64{1, 10}, []float64{2, 20}, []float64{3, 30}, []float64{4, 40})
	d, err := EqualDepth(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := d.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 4 || ds.NumItems != 4 {
		t.Fatalf("shape = %d rows %d items", ds.NumRows(), ds.NumItems)
	}
	// Every row has one item per kept column.
	for ri, r := range ds.Rows {
		if len(r.Items) != 2 {
			t.Fatalf("row %d has %d items, want 2", ri, len(r.Items))
		}
	}
	if ds.Rows[0].Class != 0 || ds.Rows[1].Class != 1 {
		t.Fatal("labels not carried over")
	}
	// Row 0: g1=1 -> bucket 0 (item 0); g2=10 -> bucket 0 (item 2).
	if !reflect.DeepEqual(ds.Rows[0].Items, []dataset.Item{0, 2}) {
		t.Fatalf("row 0 items = %v", ds.Rows[0].Items)
	}
	if ds.ItemNames[0] != "g1#0" || ds.ItemNames[3] != "g2#1" {
		t.Fatalf("item names = %v", ds.ItemNames)
	}
}

func TestApplyColumnCountMismatch(t *testing.T) {
	m := matrixOf([]string{"g1"}, []string{"a"}, []int{0}, []float64{1})
	d, err := EqualWidth(matrixOf([]string{"g1", "g2"}, []string{"a"}, []int{0}, []float64{1, 2}), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Apply(m); err == nil {
		t.Fatal("column mismatch accepted")
	}
}

func TestItemColumnAndBucketRange(t *testing.T) {
	m := matrixOf([]string{"g1", "g2"}, []string{"a"}, []int{0, 0, 0},
		[]float64{1, 1}, []float64{2, 2}, []float64{3, 3})
	d, err := EqualWidth(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.ItemColumn(0) != 0 || d.ItemColumn(1) != 0 || d.ItemColumn(2) != 1 || d.ItemColumn(3) != 1 {
		t.Fatal("ItemColumn mapping wrong")
	}
	if d.ItemColumn(99) != -1 {
		t.Fatal("out-of-range item should map to -1")
	}
	lo, hi := d.BucketRange(0, 0)
	if !math.IsInf(lo, -1) || hi != 2 {
		t.Fatalf("BucketRange(0,0) = (%v,%v)", lo, hi)
	}
	lo, hi = d.BucketRange(0, 1)
	if lo != 2 || !math.IsInf(hi, 1) {
		t.Fatalf("BucketRange(0,1) = (%v,%v)", lo, hi)
	}
}

// EntropyMDL must find the obvious cut in a perfectly separable column and
// refuse to cut noise.
func TestEntropyMDLSeparableVsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 60
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		sep := float64(labels[i])*10 + rng.Float64() // class 0: [0,1); class 1: [10,11)
		noise := rng.NormFloat64()
		rows[i] = []float64{sep, noise}
	}
	m := matrixOf([]string{"sep", "noise"}, []string{"neg", "pos"}, labels, rows...)
	d, err := EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Kept(0) {
		t.Fatal("separable column dropped")
	}
	if len(d.Cuts[0]) < 1 || d.Cuts[0][0] < 1 || d.Cuts[0][0] > 10 {
		t.Fatalf("separable cut = %v, want within (1,10)", d.Cuts[0])
	}
	if d.Kept(1) {
		t.Fatalf("noise column kept with cuts %v", d.Cuts[1])
	}
	// The separable column classifies perfectly through its buckets.
	for i := 0; i < n; i++ {
		b := d.Bucket(0, rows[i][0])
		want := 0
		if rows[i][0] > d.Cuts[0][len(d.Cuts[0])-1] {
			want = len(d.Cuts[0])
		}
		_ = want
		if (labels[i] == 0) != (b == 0) {
			t.Fatalf("row %d: bucket %d does not separate classes", i, b)
		}
	}
}

func TestEntropyMDLPureColumnNoCut(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"only"}, []int{0, 0, 0},
		[]float64{1}, []float64{2}, []float64{3})
	d, err := EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kept(0) {
		t.Fatal("single-class column should have no accepted cut")
	}
}

func TestEntropyMDLConstantColumn(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"a", "b"}, []int{0, 1},
		[]float64{7}, []float64{7})
	d, err := EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kept(0) {
		t.Fatal("constant column kept")
	}
}

func TestEntropyMDLTinyInput(t *testing.T) {
	m := matrixOf([]string{"g"}, []string{"a", "b"}, []int{0}, []float64{1})
	if _, err := EntropyMDL(m); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyMDLCutsSorted(t *testing.T) {
	// Three separated clusters alternating classes force recursive cuts.
	var rows [][]float64
	var labels []int
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{float64(i % 2 * 100)})
		labels = append(labels, i%2)
	}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{50})
		labels = append(labels, 0)
	}
	m := matrixOf([]string{"g"}, []string{"a", "b"}, labels, rows...)
	d, err := EntropyMDL(m)
	if err != nil {
		t.Fatal(err)
	}
	cuts := d.Cuts[0]
	for i := 1; i < len(cuts); i++ {
		if cuts[i-1] >= cuts[i] {
			t.Fatalf("cuts not sorted: %v", cuts)
		}
	}
}
