// Package discretize converts continuous gene-expression matrices into the
// categorical item space mined by FARMER.
//
// The paper uses two schemes (§4): equal-depth partitioning with 10 buckets
// for the efficiency study, and entropy-minimized (Fayyad–Irani MDL)
// partitioning for the classifier study. Both are implemented here, plus
// equal-width for completeness. A fitted Discretizer maps (column, value)
// pairs to dense item ids; columns whose fit produced no cut point (constant
// or uninformative columns) are dropped from the item space.
package discretize

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
)

// Discretizer holds per-column cut points and the item-id layout derived
// from them. Obtain one from EqualDepth, EqualWidth, or EntropyMDL and apply
// it with Apply; applying the discretizer fitted on training data to test
// data keeps the item vocabularies aligned.
type Discretizer struct {
	// Cuts[c] holds the ascending cut points of column c. A value v falls in
	// bucket b = number of cuts < v... specifically the first bucket whose
	// cut is ≥ v (right-inclusive intervals). Columns with no cuts are
	// dropped from the item space.
	Cuts [][]float64

	colNames []string
	offsets  []int32 // offsets[c] = first item id of column c; -1 if dropped
	numItems int
}

// NumItems returns the size of the produced item space.
func (d *Discretizer) NumItems() int { return d.numItems }

// Buckets returns the number of buckets of column c (0 if dropped).
func (d *Discretizer) Buckets(c int) int {
	if d.offsets[c] < 0 {
		return 0
	}
	return len(d.Cuts[c]) + 1
}

// Kept reports whether column c contributes items.
func (d *Discretizer) Kept(c int) bool { return d.offsets[c] >= 0 }

// Columns returns, per source column, the first item id it produced
// (-1 for dropped columns). Item ids of column c's buckets are contiguous
// from that base.
func (d *Discretizer) Columns() []int {
	out := make([]int, len(d.offsets))
	for i, off := range d.offsets {
		out[i] = int(off)
	}
	return out
}

// Bucket returns the bucket index of value v in column c.
func (d *Discretizer) Bucket(c int, v float64) int {
	cuts := d.Cuts[c]
	return sort.Search(len(cuts), func(i int) bool { return cuts[i] >= v })
}

// ItemFor returns the item id of value v in column c, or -1 if the column
// was dropped.
func (d *Discretizer) ItemFor(c int, v float64) dataset.Item {
	if d.offsets[c] < 0 {
		return -1
	}
	return d.offsets[c] + dataset.Item(d.Bucket(c, v))
}

// ItemColumn returns the source column of item it, or -1 if it is not a
// valid item of this discretizer.
func (d *Discretizer) ItemColumn(it dataset.Item) int {
	for c, off := range d.offsets {
		if off >= 0 && off <= it && int(it-off) <= len(d.Cuts[c]) {
			return c
		}
	}
	return -1
}

// BucketRange returns the half-open value range (lo, hi] of bucket b in
// column c, using ±Inf at the extremes.
func (d *Discretizer) BucketRange(c, b int) (lo, hi float64) {
	cuts := d.Cuts[c]
	lo, hi = math.Inf(-1), math.Inf(1)
	if b > 0 {
		lo = cuts[b-1]
	}
	if b < len(cuts) {
		hi = cuts[b]
	}
	return lo, hi
}

// Apply discretizes m into a categorical dataset. Every kept column emits
// exactly one item per row.
func (d *Discretizer) Apply(m *dataset.Matrix) (*dataset.Dataset, error) {
	if len(m.ColNames) != len(d.Cuts) {
		return nil, fmt.Errorf("discretize: matrix has %d columns, discretizer fitted on %d", len(m.ColNames), len(d.Cuts))
	}
	out := &dataset.Dataset{
		NumItems:   d.numItems,
		ItemNames:  d.itemNames(),
		ClassNames: append([]string(nil), m.ClassNames...),
	}
	for ri, vals := range m.Values {
		items := make([]dataset.Item, 0, d.numItems/4+1)
		for c, v := range vals {
			if it := d.ItemFor(c, v); it >= 0 {
				items = append(items, it)
			}
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		out.Rows = append(out.Rows, dataset.Row{Items: items, Class: m.Labels[ri]})
	}
	return out, out.Validate()
}

func (d *Discretizer) itemNames() []string {
	names := make([]string, d.numItems)
	for c, off := range d.offsets {
		if off < 0 {
			continue
		}
		for b := 0; b <= len(d.Cuts[c]); b++ {
			names[int(off)+b] = fmt.Sprintf("%s#%d", d.colName(c), b)
		}
	}
	return names
}

func (d *Discretizer) colName(c int) string {
	if c < len(d.colNames) && d.colNames[c] != "" {
		return d.colNames[c]
	}
	return fmt.Sprintf("c%d", c)
}

// finish computes the item layout once Cuts is populated.
func (d *Discretizer) finish() {
	d.offsets = make([]int32, len(d.Cuts))
	n := 0
	for c, cuts := range d.Cuts {
		if len(cuts) == 0 {
			d.offsets[c] = -1
			continue
		}
		d.offsets[c] = int32(n)
		n += len(cuts) + 1
	}
	d.numItems = n
}

// EqualDepth fits cut points so each column splits into up to `buckets`
// intervals holding roughly equal numbers of rows. Cut points are midpoints
// between distinct neighbouring values, so duplicated values never straddle
// a cut; columns with fewer distinct values than buckets get fewer buckets.
func EqualDepth(m *dataset.Matrix, buckets int) (*Discretizer, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 buckets, got %d", buckets)
	}
	d := &Discretizer{Cuts: make([][]float64, m.NumCols()), colNames: m.ColNames}
	n := m.NumRows()
	for c := 0; c < m.NumCols(); c++ {
		col := m.Column(c)
		sort.Float64s(col)
		var cuts []float64
		for k := 1; k < buckets; k++ {
			r := k * n / buckets
			if r <= 0 || r >= n {
				continue
			}
			lo, hi := col[r-1], col[r]
			if lo == hi {
				continue // cannot cut inside a run of equal values
			}
			cut := lo + (hi-lo)/2
			if len(cuts) == 0 || cut > cuts[len(cuts)-1] {
				cuts = append(cuts, cut)
			}
		}
		d.Cuts[c] = cuts
	}
	d.finish()
	return d, nil
}

// EqualWidth fits `buckets` equal-width intervals spanning each column's
// observed range.
func EqualWidth(m *dataset.Matrix, buckets int) (*Discretizer, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("discretize: need at least 2 buckets, got %d", buckets)
	}
	d := &Discretizer{Cuts: make([][]float64, m.NumCols()), colNames: m.ColNames}
	for c := 0; c < m.NumCols(); c++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range m.Values {
			v := row[c]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if !(hi > lo) {
			continue // constant column -> dropped
		}
		w := (hi - lo) / float64(buckets)
		cuts := make([]float64, 0, buckets-1)
		for k := 1; k < buckets; k++ {
			cuts = append(cuts, lo+float64(k)*w)
		}
		d.Cuts[c] = cuts
	}
	d.finish()
	return d, nil
}
