package discretize

import (
	"math"
	"sort"

	"repro/internal/dataset"
)

// EntropyMDL fits per-column cut points with the Fayyad–Irani recursive
// minimal-entropy partitioning under the MDL stopping criterion — the
// "entropy-minimized partition" the paper uses for the classifier study
// (MLC++ implements the same algorithm). Columns where no cut passes the
// MDL test are dropped, which is exactly the gene-filtering effect the
// paper relies on: entropy discretization keeps only class-informative
// genes.
func EntropyMDL(m *dataset.Matrix) (*Discretizer, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	d := &Discretizer{Cuts: make([][]float64, m.NumCols()), colNames: m.ColNames}
	k := len(m.ClassNames)
	for c := 0; c < m.NumCols(); c++ {
		vl := make([]valueLabel, m.NumRows())
		for ri, row := range m.Values {
			vl[ri] = valueLabel{row[c], m.Labels[ri]}
		}
		sort.Slice(vl, func(a, b int) bool { return vl[a].v < vl[b].v })
		var cuts []float64
		mdlSplit(vl, k, &cuts)
		sort.Float64s(cuts)
		d.Cuts[c] = cuts
	}
	d.finish()
	return d, nil
}

type valueLabel struct {
	v float64
	l int
}

// mdlSplit recursively splits the sorted run vl, appending accepted cut
// values to *cuts.
func mdlSplit(vl []valueLabel, numClasses int, cuts *[]float64) {
	n := len(vl)
	if n < 2 {
		return
	}
	total := classCounts(vl, numClasses)
	baseEnt, baseK := entropyAndClasses(total, n)
	if baseK < 2 {
		return // pure segment: nothing to gain
	}

	// Scan boundary candidates: positions between distinct values. Running
	// left-side counts make the scan O(n · numClasses).
	left := make([]int, numClasses)
	bestGain, bestPos := -1.0, -1
	var bestLeftEnt, bestRightEnt float64
	var bestLeftK, bestRightK int
	right := append([]int(nil), total...)
	for i := 0; i < n-1; i++ {
		left[vl[i].l]++
		right[vl[i].l]--
		if vl[i].v == vl[i+1].v {
			continue // cannot cut inside equal values
		}
		le, lk := entropyAndClasses(left, i+1)
		re, rk := entropyAndClasses(right, n-i-1)
		cond := (float64(i+1)*le + float64(n-i-1)*re) / float64(n)
		gain := baseEnt - cond
		if gain > bestGain {
			bestGain, bestPos = gain, i
			bestLeftEnt, bestRightEnt = le, re
			bestLeftK, bestRightK = lk, rk
		}
	}
	if bestPos < 0 {
		return // all values equal
	}

	// Fayyad–Irani MDL acceptance:
	//   gain > [log2(n−1) + log2(3^k − 2) − k·E + k1·E1 + k2·E2] / n
	delta := math.Log2(math.Pow(3, float64(baseK))-2) -
		(float64(baseK)*baseEnt - float64(bestLeftK)*bestLeftEnt - float64(bestRightK)*bestRightEnt)
	threshold := (math.Log2(float64(n-1)) + delta) / float64(n)
	if bestGain <= threshold {
		return
	}
	cut := vl[bestPos].v + (vl[bestPos+1].v-vl[bestPos].v)/2
	*cuts = append(*cuts, cut)
	mdlSplit(vl[:bestPos+1], numClasses, cuts)
	mdlSplit(vl[bestPos+1:], numClasses, cuts)
}

func classCounts(vl []valueLabel, numClasses int) []int {
	counts := make([]int, numClasses)
	for _, x := range vl {
		counts[x.l]++
	}
	return counts
}

// entropyAndClasses returns the class entropy of the counts and the number
// of classes present.
func entropyAndClasses(counts []int, n int) (float64, int) {
	ent, k := 0.0, 0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		k++
		p := float64(c) / float64(n)
		ent -= p * math.Log2(p)
	}
	return ent, k
}
