// Package cluster shards mining across farmerd nodes. A coordinator sits
// inside one daemon's job manager (via serve.Manager.SetRunnerBuilder) and
// turns submitted jobs into leases over slices of the enumeration-task
// universe (plan.Partition); workers — other farmerd processes started
// with -worker-of — poll for leases, fetch the compiled dataset by
// store-format snapshot digest (or load it from their own store), mine
// their slice, and stream the partial back. The coordinator merges
// partials with core.MergePartials, so the distributed result — rule
// groups, NDJSON bytes, and engine.Stats counters — is identical to the
// single-node run; plan.Coverage is the ledger that proves every subtask
// was executed exactly once before the merge is allowed to happen.
//
// The protocol is pull-based HTTP/JSON under /cluster/v1 on the
// coordinator's own listener:
//
//	POST /cluster/v1/poll                     worker asks for a lease
//	GET  /cluster/v1/snapshots/{digest}       encoded snapshot bytes
//	POST /cluster/v1/leases/{id}/renew        heartbeat; 404 = abandon run
//	POST /cluster/v1/leases/{id}/results      NDJSON frames, terminal "end"
//
// Leases carry deadlines. A worker that dies (or stalls) simply stops
// renewing; the reaper re-queues the expired lease — split in two, so a
// straggler's slice spreads over the survivors — with retry backoff.
// Results commit atomically on the terminal frame: a half-streamed result
// from a dying worker is discarded wholesale, and a zombie worker
// reporting after its lease expired gets ErrLeaseGone and discards
// locally.
package cluster

import (
	"encoding/json"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/serve"
)

// LeaseKind says how a worker executes a lease.
type LeaseKind string

const (
	// KindPartition mines one plan.Partition of a FARMER job with
	// core.MinePartitions and reports a single partial frame.
	KindPartition LeaseKind = "partition"
	// KindWhole runs the entire job through the standard in-process
	// runner (serve.BuildRunner) and reports each NDJSON record — how
	// non-FARMER miners, whose enumeration is not row-partitionable,
	// are placed on a worker.
	KindWhole LeaseKind = "whole"
)

// Lease is one unit of claimed work, as returned by POST /cluster/v1/poll.
type Lease struct {
	ID  string `json:"id"`
	Job string `json:"job"`
	// Spec is the submitted job spec; workers derive mining options from
	// it exactly as a standalone daemon would.
	Spec serve.JobSpec `json:"spec"`
	Kind LeaseKind     `json:"kind"`
	// Partition is the leased universe slice for KindPartition.
	Partition plan.Partition `json:"partition,omitempty"`
	// SnapshotName and Digest identify the compiled dataset: workers
	// fetch-or-load by digest and may cache it under the name.
	SnapshotName string `json:"snapshot_name"`
	Digest       string `json:"digest"`
	// TTLMS is the lease deadline budget; workers renew at TTLMS/3 pace.
	TTLMS int64 `json:"ttl_ms"`
}

// PollRequest is the body of POST /cluster/v1/poll.
type PollRequest struct {
	Worker string `json:"worker"`
}

// PollResponse carries at most one lease; an absent lease means no work
// is currently assignable and the worker should poll again shortly.
type PollResponse struct {
	Lease *Lease `json:"lease,omitempty"`
}

// Frame is one NDJSON line of POST /cluster/v1/leases/{id}/results.
// Exactly one field is set. A result body is: zero or more partial/record
// frames, then one end frame; the coordinator commits nothing until the
// end frame arrives intact.
type Frame struct {
	// Partial is a serialized core.Partial (KindPartition leases). Kept
	// as raw JSON here so the coordinator controls when it is decoded.
	Partial json.RawMessage `json:"partial,omitempty"`
	// Record is one NDJSON result record (KindWhole leases), exactly the
	// bytes the worker's in-process runner emitted.
	Record json.RawMessage `json:"record,omitempty"`
	// End terminates the stream.
	End *EndFrame `json:"end,omitempty"`
}

// EndFrame closes a lease's result stream.
type EndFrame struct {
	// Error is the worker-side failure, empty on success. Cancellation
	// errors requeue the lease; anything else fails the job.
	Error string `json:"error,omitempty"`
	// Stats carries the whole-job run's statistics (KindWhole only;
	// partition leases carry their counters inside the partial).
	Stats    *engine.Stats `json:"stats,omitempty"`
	HasStats bool          `json:"has_stats,omitempty"`
}
