package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/dataset"
	"repro/internal/serve"
	"repro/internal/store"
)

func testDataset(t *testing.T) *farmer.Dataset {
	t.Helper()
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0, 1}, {0}, {1, 2}, {0, 2}, {0, 1, 2}},
		[]int{0, 0, 1, 1, 0}, 3, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// coordService stands up a manager with an installed coordinator and the
// full HTTP surface (mining API + cluster routes, JSON-error envelope).
func coordService(t *testing.T, opt Options) (*httptest.Server, *serve.Manager, *Coordinator) {
	t.Helper()
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, 2, 16, serve.DefaultCacheBytes)
	coord := NewCoordinator(mgr, opt)
	srv := serve.NewServer(mgr)
	coord.RegisterRoutes(srv)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		coord.Close()
		ts.Close()
	})
	return ts, mgr, coord
}

// TestCoordinatorEndpointErrors pins the protocol's failure answers: they
// must be structured JSON with the right statuses, because workers parse
// every non-2xx body as {"error": ...}.
func TestCoordinatorEndpointErrors(t *testing.T) {
	ts, _, _ := coordService(t, Options{})

	for _, tc := range []struct {
		name, method, path, body string
		want                     int
	}{
		{"poll without worker id", http.MethodPost, "/cluster/v1/poll", `{}`, http.StatusBadRequest},
		{"poll bad json", http.MethodPost, "/cluster/v1/poll", `{nope`, http.StatusBadRequest},
		{"renew unknown lease", http.MethodPost, "/cluster/v1/leases/lease-404/renew", "", http.StatusNotFound},
		{"snapshot unknown digest", http.MethodGet, "/cluster/v1/snapshots/sha256:ffff", "", http.StatusNotFound},
		{"results missing end frame", http.MethodPost, "/cluster/v1/leases/lease-404/results", "", http.StatusBadRequest},
		{"results for gone lease", http.MethodPost, "/cluster/v1/leases/lease-404/results", `{"end":{}}` + "\n", http.StatusGone},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, raw)
		}
		var msg struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &msg); err != nil || msg.Error == "" {
			t.Errorf("%s: body %q is not an error envelope", tc.name, raw)
		}
	}
}

// TestNoWorkersRunsLocally: a daemon started with -coordinator but no
// joined workers must behave exactly like a standalone one — jobs run
// in-process through the fallback.
func TestNoWorkersRunsLocally(t *testing.T) {
	_, mgr, coord := coordService(t, Options{})
	if n := coord.ActiveWorkers(); n != 0 {
		t.Fatalf("ActiveWorkers = %d before any poll", n)
	}
	if err := mgr.Registry().Put("d", testDataset(t)); err != nil {
		t.Fatal(err)
	}
	job, err := mgr.Submit(serve.JobSpec{Miner: "farmer", Dataset: "d", Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job did not finish")
	}
	st := job.Status()
	if st.State != serve.StateDone {
		t.Fatalf("job state %q: %s", st.State, st.Error)
	}
	if st.Emitted == 0 {
		t.Fatalf("local fallback emitted no records")
	}
}

// TestWorkerSnapshotResolution covers the fetch-or-load chain: HTTP fetch
// with digest verification and store write-through, then a second worker
// resolving the same digest purely from the shared store while the
// coordinator answers 500 — proving no network round trip is needed.
func TestWorkerSnapshotResolution(t *testing.T) {
	d := testDataset(t)
	snap, err := farmer.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := store.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	digest := store.DigestBytes(buf)

	fetches := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/cluster/v1/snapshots/") {
			http.NotFound(w, r)
			return
		}
		fetches++
		w.Write(buf)
	}))
	defer ts.Close()

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	lease := &Lease{ID: "lease-1", SnapshotName: "d", Digest: digest, TTLMS: 60_000}
	w1 := NewWorker(ts.URL, WorkerOptions{ID: "w1", Store: st})
	got, err := w1.snapshot(context.Background(), lease)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset().NumRows() != d.NumRows() {
		t.Fatalf("fetched snapshot has %d rows, want %d", got.Dataset().NumRows(), d.NumRows())
	}
	if fetches != 1 {
		t.Fatalf("fetches = %d, want 1", fetches)
	}
	// The fetch must have been written through to the store under the
	// coordinator's digest.
	if _, ok := st.FindByDigest(digest); !ok {
		t.Fatalf("digest %s not in store after write-through", digest)
	}

	// Second worker, same store, coordinator now failing: the snapshot
	// must resolve from disk alone.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts2.Close()
	w2 := NewWorker(ts2.URL, WorkerOptions{ID: "w2", Store: st})
	if _, err := w2.snapshot(context.Background(), lease); err != nil {
		t.Fatalf("store-backed resolution failed: %v", err)
	}

	// A corrupted body must be rejected by digest verification.
	ts3 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(append([]byte{0xFF}, buf...))
	}))
	defer ts3.Close()
	w3 := NewWorker(ts3.URL, WorkerOptions{ID: "w3"})
	if _, err := w3.snapshot(context.Background(), lease); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("corrupt fetch err = %v, want digest mismatch", err)
	}
}

// TestLeaseExpiryRequeuesSplit drives the reaper directly: an assigned,
// never-renewed partition lease must come back as two pending halves with
// a bumped attempt count.
func TestLeaseExpiryRequeuesSplit(t *testing.T) {
	ts, mgr, coord := coordService(t, Options{LeaseTTL: 80 * time.Millisecond, Chunks: 1})
	if err := mgr.Registry().Put("d", testDataset(t)); err != nil {
		t.Fatal(err)
	}

	// One fake worker poll so the runner takes the distributed path.
	poll := func() *Lease {
		t.Helper()
		resp, err := http.Post(ts.URL+"/cluster/v1/poll", "application/json",
			strings.NewReader(`{"worker":"ghost"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var pr PollResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr.Lease
	}
	poll()
	if coord.ActiveWorkers() != 1 {
		t.Fatalf("ActiveWorkers = %d after poll", coord.ActiveWorkers())
	}

	job, err := mgr.Submit(serve.JobSpec{Miner: "farmer", Dataset: "d", Workers: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Claim the single whole-universe partition lease and never renew it.
	var first *Lease
	deadline := time.Now().Add(5 * time.Second)
	for first == nil && time.Now().Before(deadline) {
		first = poll()
		if first == nil {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if first == nil {
		t.Fatal("no lease offered")
	}
	if first.Kind != KindPartition {
		t.Fatalf("lease kind %q, want partition", first.Kind)
	}

	// After expiry the reaper must requeue the slice split in two.
	var halves []*Lease
	deadline = time.Now().Add(5 * time.Second)
	for len(halves) < 2 && time.Now().Before(deadline) {
		if l := poll(); l != nil {
			halves = append(halves, l)
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if len(halves) != 2 {
		t.Fatalf("got %d requeued leases, want 2", len(halves))
	}
	total := halves[0].Partition.Len() + halves[1].Partition.Len()
	if total != first.Partition.Len() {
		t.Fatalf("halves cover %d subtasks, original %d", total, first.Partition.Len())
	}

	// The zombie's late report must get 410 Gone.
	resp, err := http.Post(ts.URL+"/cluster/v1/leases/"+first.ID+"/results",
		"application/x-ndjson", strings.NewReader(`{"end":{}}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("zombie report status %d, want 410", resp.StatusCode)
	}

	// Let the job finish: cancel it (workers are fake), which drops leases.
	if err := mgr.Cancel(job.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not finish")
	}
}
