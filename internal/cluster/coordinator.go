package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	farmer "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/serve"
	"repro/internal/store"
)

// Errors surfaced by the coordinator's HTTP handlers.
var (
	// ErrLeaseGone reports a lease that is no longer outstanding — it
	// expired and was re-queued, its job finished or was cancelled. A
	// worker receiving it discards its local work for the lease.
	ErrLeaseGone = errors.New("cluster: lease is no longer outstanding")
)

// Options tunes a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker holds a lease between renewals
	// before the reaper re-queues it. <= 0 selects 15s.
	LeaseTTL time.Duration
	// Chunks is how many partition leases a FARMER job is initially cut
	// into. <= 0 selects 8. Expired leases re-split further, so this is
	// a starting granularity, not a limit.
	Chunks int
	// MaxAttempts bounds how often one lease may be re-queued before its
	// job fails. <= 0 selects 5.
	MaxAttempts int
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.Chunks <= 0 {
		o.Chunks = 8
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	return o
}

// lease is the coordinator-side state of one unit of work.
type lease struct {
	id        string
	job       *cjob
	kind      LeaseKind
	part      plan.Partition
	attempts  int
	notBefore time.Time // earliest next assignment (retry backoff)
	deadline  time.Time // renewal deadline while outstanding
	worker    string
}

// cjob is the coordinator-side state of one distributed job run.
type cjob struct {
	id     string
	spec   serve.JobSpec
	digest string
	name   string

	// FARMER partition jobs.
	d          *farmer.Dataset
	consequent int
	opt        farmer.MineOptions
	cov        *plan.Coverage
	partials   []*core.Partial

	// Whole-universe jobs.
	records  []json.RawMessage
	stats    engine.Stats
	hasStats bool

	err  error
	done chan struct{} // closed exactly once: complete, failed, or cancelled
}

func (j *cjob) finish(err error) {
	select {
	case <-j.done:
	default:
		j.err = err
		close(j.done)
	}
}

type snapEntry struct {
	buf  []byte
	refs int
}

// Coordinator turns jobs submitted to a farmerd manager into leases over
// the enumeration-task universe and merges what workers report back. It
// plugs into the manager through SetRunnerBuilder, so queueing,
// singleflight, result caching, NDJSON streaming and cancellation are the
// ordinary serve machinery — only the runner's insides change.
type Coordinator struct {
	mgr *serve.Manager
	opt Options

	mu      sync.Mutex
	seq     int64
	pending []*lease
	leases  map[string]*lease // outstanding, keyed by lease id
	jobs    map[string]*cjob
	workers map[string]time.Time // worker id → last poll
	snaps   map[string]*snapEntry

	closeCh chan struct{}
	doneCh  chan struct{}
}

// NewCoordinator builds a coordinator over mgr and installs its runner
// builder. Call Close on shutdown to stop the lease reaper.
func NewCoordinator(mgr *serve.Manager, opt Options) *Coordinator {
	c := &Coordinator{
		mgr:     mgr,
		opt:     opt.withDefaults(),
		leases:  map[string]*lease{},
		jobs:    map[string]*cjob{},
		workers: map[string]time.Time{},
		snaps:   map[string]*snapEntry{},
		closeCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	mgr.SetRunnerBuilder(c.buildRunner)
	go c.reaper()
	return c
}

// Close stops the reaper. In-flight jobs are not cancelled — the manager
// owns job lifecycle; Close is for process shutdown after mgr.Shutdown.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	select {
	case <-c.closeCh:
	default:
		close(c.closeCh)
	}
	c.mu.Unlock()
	<-c.doneCh
	return nil
}

// RouteRegistrar is the slice of serve.Server (or http.ServeMux) the
// coordinator mounts its endpoints on.
type RouteRegistrar interface {
	Handle(pattern string, h http.Handler)
}

// RegisterMetrics contributes the coordinator's lease-economy gauges to a
// serve metrics registry: they render on every GET /metrics scrape after
// the daemon's own series.
func (c *Coordinator) RegisterMetrics(m *serve.Metrics) {
	m.Register(func(w io.Writer) {
		c.mu.Lock()
		st := Stats{
			ActiveWorkers: c.activeWorkersLocked(),
			PendingLeases: len(c.pending),
			Outstanding:   len(c.leases),
			Jobs:          len(c.jobs),
		}
		c.mu.Unlock()
		fmt.Fprintf(w, "# HELP farmerd_cluster_active_workers Workers that polled within three lease TTLs.\n")
		fmt.Fprintf(w, "# TYPE farmerd_cluster_active_workers gauge\n")
		fmt.Fprintf(w, "farmerd_cluster_active_workers %d\n", st.ActiveWorkers)
		fmt.Fprintf(w, "# HELP farmerd_cluster_pending_leases Leases queued for assignment.\n")
		fmt.Fprintf(w, "# TYPE farmerd_cluster_pending_leases gauge\n")
		fmt.Fprintf(w, "farmerd_cluster_pending_leases %d\n", st.PendingLeases)
		fmt.Fprintf(w, "# HELP farmerd_cluster_outstanding_leases Leases held by workers.\n")
		fmt.Fprintf(w, "# TYPE farmerd_cluster_outstanding_leases gauge\n")
		fmt.Fprintf(w, "farmerd_cluster_outstanding_leases %d\n", st.Outstanding)
		fmt.Fprintf(w, "# HELP farmerd_cluster_jobs Distributed jobs in flight.\n")
		fmt.Fprintf(w, "# TYPE farmerd_cluster_jobs gauge\n")
		fmt.Fprintf(w, "farmerd_cluster_jobs %d\n", st.Jobs)
	})
}

// RegisterRoutes mounts the cluster protocol endpoints.
func (c *Coordinator) RegisterRoutes(mux RouteRegistrar) {
	mux.Handle("POST /cluster/v1/poll", http.HandlerFunc(c.handlePoll))
	mux.Handle("GET /cluster/v1/snapshots/{digest}", http.HandlerFunc(c.handleSnapshot))
	mux.Handle("POST /cluster/v1/leases/{id}/renew", http.HandlerFunc(c.handleRenew))
	mux.Handle("POST /cluster/v1/leases/{id}/results", http.HandlerFunc(c.handleResults))
	mux.Handle("GET /cluster/v1/stats", http.HandlerFunc(c.handleStats))
}

// Stats is the wire form of GET /cluster/v1/stats: a point-in-time view
// of the coordinator for operators and smoke tests (e.g. waiting until
// every worker has joined before submitting).
type Stats struct {
	ActiveWorkers int `json:"active_workers"`
	PendingLeases int `json:"pending_leases"`
	Outstanding   int `json:"outstanding_leases"`
	Jobs          int `json:"jobs"`
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	st := Stats{
		ActiveWorkers: c.activeWorkersLocked(),
		PendingLeases: len(c.pending),
		Outstanding:   len(c.leases),
		Jobs:          len(c.jobs),
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// ActiveWorkers reports how many workers polled recently enough to be
// considered alive (within three lease TTLs).
func (c *Coordinator) ActiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.activeWorkersLocked()
}

func (c *Coordinator) activeWorkersLocked() int {
	cutoff := time.Now().Add(-3 * c.opt.LeaseTTL)
	n := 0
	for _, t := range c.workers {
		if t.After(cutoff) {
			n++
		}
	}
	return n
}

// buildRunner is the coordinator's serve.RunnerBuilder: it validates the
// spec through the standard in-process builder, then wraps execution so
// that — when workers are available at run time — the job is leased out
// instead of mined locally. With no live workers the job runs in-process,
// so a daemon started with -coordinator behaves exactly like a standalone
// one until workers join.
func (c *Coordinator) buildRunner(d *farmer.Dataset, snap *farmer.Snapshot, spec serve.JobSpec) (serve.RunnerFunc, error) {
	local, err := serve.BuildRunner(d, snap, spec)
	if err != nil {
		return nil, err
	}
	var consequent int
	var opt farmer.MineOptions
	if spec.Miner == "farmer" {
		if consequent, opt, err = serve.FarmerJobOptions(d, snap, spec); err != nil {
			return nil, err
		}
	}
	return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
		if c.ActiveWorkers() == 0 {
			return local(ctx, emit)
		}
		if spec.Miner == "farmer" {
			return c.runFarmer(ctx, d, snap, spec, consequent, opt, emit)
		}
		return c.runWhole(ctx, snap, spec, emit)
	}, nil
}

// newJobLocked allocates a cluster job and pins the encoded snapshot for
// workers to fetch by digest. Callers hold c.mu.
func (c *Coordinator) newJobLocked(spec serve.JobSpec, snap *farmer.Snapshot) (*cjob, error) {
	buf, err := store.Encode(snap)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode snapshot: %w", err)
	}
	digest := store.DigestBytes(buf)
	if e, ok := c.snaps[digest]; ok {
		e.refs++
	} else {
		c.snaps[digest] = &snapEntry{buf: buf, refs: 1}
	}
	c.seq++
	j := &cjob{
		id:     fmt.Sprintf("cjob-%d", c.seq),
		spec:   spec,
		digest: digest,
		name:   spec.Dataset,
		done:   make(chan struct{}),
	}
	c.jobs[j.id] = j
	return j, nil
}

// releaseJob drops the job and its pending/outstanding leases and unpins
// its snapshot. Outstanding leases simply vanish: the next renew or
// results POST gets ErrLeaseGone and the worker abandons the run.
func (c *Coordinator) releaseJob(j *cjob) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, j.id)
	kept := c.pending[:0]
	for _, l := range c.pending {
		if l.job != j {
			kept = append(kept, l)
		}
	}
	c.pending = kept
	for id, l := range c.leases {
		if l.job == j {
			delete(c.leases, id)
		}
	}
	if e, ok := c.snaps[j.digest]; ok {
		if e.refs--; e.refs <= 0 {
			delete(c.snaps, j.digest)
		}
	}
}

// enqueueLocked adds a lease to the assignable queue. Callers hold c.mu.
func (c *Coordinator) enqueueLocked(l *lease) {
	c.pending = append(c.pending, l)
}

func (c *Coordinator) newLeaseLocked(j *cjob, kind LeaseKind, part plan.Partition) *lease {
	c.seq++
	return &lease{
		id:   fmt.Sprintf("lease-%d", c.seq),
		job:  j,
		kind: kind,
		part: part,
	}
}

// runFarmer distributes one FARMER job: cut the universe into partition
// leases, wait for coverage, merge, emit the records the single-node
// parallel runner would emit.
func (c *Coordinator) runFarmer(ctx context.Context, d *farmer.Dataset, snap *farmer.Snapshot, spec serve.JobSpec, consequent int, opt farmer.MineOptions, emit func(v any) error) (farmer.MinerResult, error) {
	// The universe is over the consequent view's rows, which equal the
	// dataset's row count; resolve it cheaply via the snapshot-backed
	// prepared path when merging. Here only n is needed.
	n := d.NumRows()

	c.mu.Lock()
	j, err := c.newJobLocked(spec, snap)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	j.d, j.consequent, j.opt = d, consequent, opt
	j.cov = plan.NewCoverage(n)
	parts := plan.Universe(n).SplitN(c.opt.Chunks)
	for _, p := range parts {
		c.enqueueLocked(c.newLeaseLocked(j, KindPartition, p))
	}
	if len(parts) == 0 {
		j.finish(nil) // empty universe: nothing to lease
	}
	c.mu.Unlock()
	defer c.releaseJob(j)

	if err := c.wait(ctx, j); err != nil {
		return nil, err
	}

	c.mu.Lock()
	partials := j.partials
	c.mu.Unlock()
	res, err := core.MergePartials(ctx, d, consequent, opt, partials)
	if err != nil {
		return nil, err
	}
	for _, g := range res.Groups {
		if emitErr := emit(serve.MakeGroupRecord(d, g)); emitErr != nil {
			return res, emitErr
		}
	}
	return res, nil
}

// runWhole places the entire job on one worker and replays its records.
func (c *Coordinator) runWhole(ctx context.Context, snap *farmer.Snapshot, spec serve.JobSpec, emit func(v any) error) (farmer.MinerResult, error) {
	c.mu.Lock()
	j, err := c.newJobLocked(spec, snap)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.enqueueLocked(c.newLeaseLocked(j, KindWhole, plan.Partition{}))
	c.mu.Unlock()
	defer c.releaseJob(j)

	if err := c.wait(ctx, j); err != nil {
		return nil, err
	}

	c.mu.Lock()
	records, stats, hasStats := j.records, j.stats, j.hasStats
	c.mu.Unlock()
	for _, rec := range records {
		if err := emit(rec); err != nil {
			return nil, err
		}
	}
	if !hasStats {
		return nil, nil
	}
	return clusterResult{stats: stats, count: len(records)}, nil
}

// wait blocks until the job completes, reclaiming work locally if every
// worker disappears mid-job so a run never hangs on an empty cluster.
func (c *Coordinator) wait(ctx context.Context, j *cjob) error {
	tick := time.NewTicker(c.opt.LeaseTTL)
	defer tick.Stop()
	for {
		select {
		case <-j.done:
			return j.err
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			c.reclaimLocal(ctx, j)
		}
	}
}

// reclaimLocal executes the job's still-pending partition leases on the
// coordinator itself when no workers are alive — the straggler handler of
// last resort. Outstanding leases are left alone; if their workers died
// too, the reaper expires them back into pending and the next tick picks
// them up here.
func (c *Coordinator) reclaimLocal(ctx context.Context, j *cjob) {
	c.mu.Lock()
	if c.activeWorkersLocked() > 0 || j.d == nil {
		c.mu.Unlock()
		return
	}
	var mine []*lease
	kept := c.pending[:0]
	for _, l := range c.pending {
		if l.job == j && l.kind == KindPartition {
			mine = append(mine, l)
		} else {
			kept = append(kept, l)
		}
	}
	c.pending = kept
	// Mark them outstanding under far deadlines so expiry cannot race the
	// local run.
	for _, l := range mine {
		l.deadline = time.Now().Add(24 * time.Hour)
		l.worker = "coordinator-local"
		c.leases[l.id] = l
	}
	c.mu.Unlock()

	for _, l := range mine {
		partial, err := core.MinePartitions(ctx, j.d, j.consequent, j.opt, l.part, j.spec.Workers)
		if err != nil {
			c.failLease(l, err)
			continue
		}
		c.commitPartition(l, partial)
	}
}

// handlePoll assigns the oldest eligible pending lease to the polling
// worker.
func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: poll needs a worker id"))
		return
	}
	now := time.Now()
	c.mu.Lock()
	c.workers[req.Worker] = now
	var assigned *lease
	for i, l := range c.pending {
		if l.notBefore.After(now) {
			continue
		}
		assigned = l
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		break
	}
	var resp PollResponse
	if assigned != nil {
		assigned.worker = req.Worker
		assigned.deadline = now.Add(c.opt.LeaseTTL)
		c.leases[assigned.id] = assigned
		resp.Lease = &Lease{
			ID:           assigned.id,
			Job:          assigned.job.id,
			Spec:         assigned.job.spec,
			Kind:         assigned.kind,
			Partition:    assigned.part,
			SnapshotName: assigned.job.name,
			Digest:       assigned.job.digest,
			TTLMS:        c.opt.LeaseTTL.Milliseconds(),
		}
	}
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	c.mu.Lock()
	e, ok := c.snaps[digest]
	c.mu.Unlock()
	if !ok {
		writeJSONError(w, http.StatusNotFound, fmt.Errorf("cluster: no pinned snapshot %s", digest))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(e.buf)
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	l, ok := c.leases[id]
	if ok {
		l.deadline = time.Now().Add(c.opt.LeaseTTL)
	}
	c.mu.Unlock()
	if !ok {
		writeJSONError(w, http.StatusNotFound, ErrLeaseGone)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleResults consumes a lease's NDJSON frame stream. Nothing commits
// until the end frame has been read intact — a worker dying mid-stream
// leaves no trace, its lease simply expires and re-queues.
func (c *Coordinator) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var (
		partial *core.Partial
		records []json.RawMessage
		end     *EndFrame
	)
	dec := json.NewDecoder(r.Body)
	for end == nil {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad result frame: %v", err))
			return
		}
		switch {
		case f.End != nil:
			end = f.End
		case f.Partial != nil:
			p := new(core.Partial)
			if err := json.Unmarshal(f.Partial, p); err != nil {
				writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad partial: %v", err))
				return
			}
			partial = p
		case f.Record != nil:
			records = append(records, f.Record)
		}
	}

	c.mu.Lock()
	l, ok := c.leases[id]
	c.mu.Unlock()
	if !ok {
		writeJSONError(w, http.StatusGone, ErrLeaseGone)
		return
	}
	if end.Error != "" {
		// Worker-side failure (fetch error, local cancellation): requeue
		// with backoff rather than failing the job — the work itself is
		// deterministic and another node can do it.
		c.failLease(l, errors.New(end.Error))
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
		return
	}
	switch l.kind {
	case KindPartition:
		if partial == nil {
			c.failLease(l, errors.New("cluster: partition lease reported no partial"))
			writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
			return
		}
		c.commitPartition(l, partial)
	case KindWhole:
		c.commitWhole(l, records, end)
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// commitPartition records a completed partition lease: coverage first (the
// exactly-once oracle), then the partial. Closing the job's done channel
// when the universe is fully covered hands control back to the runner.
func (c *Coordinator) commitPartition(l *lease, partial *core.Partial) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.leases[l.id]; !ok || cur != l {
		return // expired/cancelled while mining; the requeued copy owns the slice now
	}
	delete(c.leases, l.id)
	j := l.job
	if err := j.cov.Add(l.part); err != nil {
		// Double execution would corrupt counters; this cannot happen
		// while commit-or-requeue is exclusive, so treat it as fatal.
		j.finish(fmt.Errorf("cluster: coverage violation: %w", err))
		return
	}
	j.partials = append(j.partials, partial)
	if j.cov.Done() {
		j.finish(nil)
	}
}

// commitWhole records a completed whole-universe lease and finishes the
// job.
func (c *Coordinator) commitWhole(l *lease, records []json.RawMessage, end *EndFrame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.leases[l.id]; !ok || cur != l {
		return
	}
	delete(c.leases, l.id)
	j := l.job
	j.records = records
	if end.Stats != nil {
		j.stats, j.hasStats = *end.Stats, true
	}
	j.finish(nil)
}

// failLease handles a lease whose attempt failed (worker error or
// expiry): requeue with backoff — splitting partition leases so a
// straggler's slice spreads across workers — or fail the job once the
// attempt budget is exhausted.
func (c *Coordinator) failLease(l *lease, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLeaseLocked(l, cause)
}

func (c *Coordinator) failLeaseLocked(l *lease, cause error) {
	if cur, ok := c.leases[l.id]; ok && cur == l {
		delete(c.leases, l.id)
	}
	j := l.job
	select {
	case <-j.done:
		return
	default:
	}
	if l.attempts+1 >= c.opt.MaxAttempts {
		j.finish(fmt.Errorf("cluster: lease %s failed after %d attempts: %w", l.id, l.attempts+1, cause))
		return
	}
	backoff := time.Duration(l.attempts+1) * c.opt.LeaseTTL / 8
	notBefore := time.Now().Add(backoff)
	if l.kind == KindPartition && l.part.Len() > 1 {
		lo, hi := l.part.Split()
		for _, p := range []plan.Partition{lo, hi} {
			nl := c.newLeaseLocked(j, KindPartition, p)
			nl.attempts = l.attempts + 1
			nl.notBefore = notBefore
			c.enqueueLocked(nl)
		}
		return
	}
	nl := c.newLeaseLocked(j, l.kind, l.part)
	nl.attempts = l.attempts + 1
	nl.notBefore = notBefore
	c.enqueueLocked(nl)
}

// reaper expires outstanding leases whose workers stopped renewing.
func (c *Coordinator) reaper() {
	defer close(c.doneCh)
	interval := c.opt.LeaseTTL / 4
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.closeCh:
			return
		case <-tick.C:
			now := time.Now()
			c.mu.Lock()
			var expired []*lease
			for _, l := range c.leases {
				if now.After(l.deadline) {
					expired = append(expired, l)
				}
			}
			for _, l := range expired {
				c.failLeaseLocked(l, fmt.Errorf("lease deadline passed (worker %s lost)", l.worker))
			}
			c.mu.Unlock()
		}
	}
}

// clusterResult adapts a whole-lease worker's reported stats to the
// MinerResult the job machinery expects.
type clusterResult struct {
	stats engine.Stats
	count int
}

func (r clusterResult) Stats() engine.Stats { return r.stats }
func (r clusterResult) Count() int          { return r.count }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
