package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	farmer "repro"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

// WorkerOptions tunes a Worker.
type WorkerOptions struct {
	// ID names the worker in poll requests; must be unique per cluster.
	ID string
	// Store, when non-nil, is consulted before fetching snapshot bytes
	// over HTTP, and fetched snapshots are written through to it so a
	// restarted worker warm-starts from disk.
	Store *store.Store
	// Workers is the in-process mining parallelism per lease; <= 0 lets
	// the core pick GOMAXPROCS.
	Workers int
	// PollInterval paces empty polls. <= 0 selects 250ms.
	PollInterval time.Duration
	// Client overrides the HTTP client (tests). Nil uses a default with
	// no global timeout — result uploads of large partials may be slow.
	Client *http.Client
	// APIKey authenticates the worker against a coordinator running with
	// a keys file; sent as a bearer token on every request. Empty means
	// the coordinator is open.
	APIKey string

	// AbandonLeases makes the worker take — and then silently drop — the
	// first N leases it is assigned, without reporting results or
	// renewing. It simulates a worker crash mid-lease for failover tests
	// and is never set in production.
	AbandonLeases int
}

// Worker polls a coordinator for leases, resolves the compiled dataset by
// snapshot digest (memory → own store → HTTP fetch with digest
// verification), executes the lease, and reports results as NDJSON frames
// with a terminal end frame.
type Worker struct {
	base string
	opt  WorkerOptions
	hc   *http.Client

	mu        sync.Mutex
	snaps     map[string]*farmer.Snapshot // digest → decoded snapshot
	abandoned int
}

// NewWorker builds a worker against the coordinator's base URL (e.g.
// "http://127.0.0.1:7077").
func NewWorker(coordinatorURL string, opt WorkerOptions) *Worker {
	if opt.ID == "" {
		opt.ID = "worker"
	}
	if opt.PollInterval <= 0 {
		opt.PollInterval = 250 * time.Millisecond
	}
	hc := opt.Client
	if hc == nil {
		hc = &http.Client{}
	}
	return &Worker{
		base:  coordinatorURL,
		opt:   opt,
		hc:    hc,
		snaps: map[string]*farmer.Snapshot{},
	}
}

// Run polls until ctx is cancelled. Poll failures (coordinator down or
// restarting) back off at the poll interval rather than aborting, so a
// worker can outlive its coordinator.
func (w *Worker) Run(ctx context.Context) error {
	for {
		lease, err := w.poll(ctx)
		if err == nil && lease != nil {
			w.execute(ctx, lease)
			continue // immediately ask for more work
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.opt.PollInterval):
		}
	}
}

// newRequest builds a coordinator request with the worker's API key (when
// configured) attached — every call site goes through it so an
// authenticated cluster never leaks an anonymous request.
func (w *Worker) newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if w.opt.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+w.opt.APIKey)
	}
	return req, nil
}

func (w *Worker) poll(ctx context.Context) (*Lease, error) {
	body, err := json.Marshal(PollRequest{Worker: w.opt.ID})
	if err != nil {
		return nil, err
	}
	req, err := w.newRequest(ctx, http.MethodPost, w.base+"/cluster/v1/poll", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: poll status %d", resp.StatusCode)
	}
	var pr PollResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, err
	}
	return pr.Lease, nil
}

// execute runs one lease end to end. Errors are reported to the
// coordinator inside the end frame so it can requeue; only transport
// failures go unreported (the lease then expires on its own).
func (w *Worker) execute(ctx context.Context, l *Lease) {
	if w.takeAbandonSlot() {
		return // simulated crash: hold the lease silently until it expires
	}

	// Renewals run for the whole lease; a 404 on renew means the
	// coordinator re-queued the slice (or the job died) and local work
	// must stop.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		w.renewLoop(runCtx, cancel, l)
	}()
	defer func() { cancel(); <-renewDone }()

	snap, err := w.snapshot(runCtx, l)
	if err != nil {
		w.report(ctx, l, nil, nil, &EndFrame{Error: err.Error()})
		return
	}
	d := snap.Dataset()

	switch l.Kind {
	case KindPartition:
		consequent, opt, err := serve.FarmerJobOptions(d, snap, l.Spec)
		if err != nil {
			w.report(ctx, l, nil, nil, &EndFrame{Error: err.Error()})
			return
		}
		partial, err := core.MinePartitions(runCtx, d, consequent, opt, l.Partition, w.opt.Workers)
		if err != nil {
			w.report(ctx, l, nil, nil, &EndFrame{Error: err.Error()})
			return
		}
		w.report(ctx, l, partial, nil, &EndFrame{})
	case KindWhole:
		runner, err := serve.BuildRunner(d, snap, l.Spec)
		if err != nil {
			w.report(ctx, l, nil, nil, &EndFrame{Error: err.Error()})
			return
		}
		var records []json.RawMessage
		emit := func(v any) error {
			raw, err := json.Marshal(v)
			if err != nil {
				return err
			}
			records = append(records, raw)
			return nil
		}
		res, err := runner(runCtx, emit)
		if err != nil {
			w.report(ctx, l, nil, nil, &EndFrame{Error: err.Error()})
			return
		}
		end := &EndFrame{}
		if res != nil {
			stats := res.Stats()
			end.Stats, end.HasStats = &stats, true
		}
		w.report(ctx, l, nil, records, end)
	default:
		w.report(ctx, l, nil, nil, &EndFrame{Error: fmt.Sprintf("cluster: unknown lease kind %q", l.Kind)})
	}
}

func (w *Worker) takeAbandonSlot() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.abandoned < w.opt.AbandonLeases {
		w.abandoned++
		return true
	}
	return false
}

// renewLoop heartbeats the lease at a third of its TTL and cancels the
// local run when the coordinator no longer recognises the lease.
func (w *Worker) renewLoop(ctx context.Context, cancel context.CancelFunc, l *Lease) {
	ttl := time.Duration(l.TTLMS) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	tick := time.NewTicker(ttl / 3)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		req, err := w.newRequest(ctx, http.MethodPost,
			w.base+"/cluster/v1/leases/"+l.ID+"/renew", nil)
		if err != nil {
			return
		}
		resp, err := w.hc.Do(req)
		if err != nil {
			continue // transient; the lease may still be alive
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			cancel() // lease re-queued elsewhere: abandon local work
			return
		}
	}
}

// snapshot resolves the lease's compiled dataset: in-memory digest cache,
// then the worker's own store, then an HTTP fetch from the coordinator —
// verified against the digest and written through to the store.
func (w *Worker) snapshot(ctx context.Context, l *Lease) (*farmer.Snapshot, error) {
	w.mu.Lock()
	snap, ok := w.snaps[l.Digest]
	w.mu.Unlock()
	if ok {
		return snap, nil
	}

	if st := w.opt.Store; st != nil {
		if meta, ok := st.FindByDigest(l.Digest); ok {
			if snap, _, err := st.Load(meta.Name); err == nil {
				w.cache(l.Digest, snap)
				return snap, nil
			}
		}
	}

	buf, err := w.fetch(ctx, l.Digest)
	if err != nil {
		return nil, err
	}
	if got := store.DigestBytes(buf); got != l.Digest {
		return nil, fmt.Errorf("cluster: snapshot digest mismatch: want %s, got %s", l.Digest, got)
	}
	snap, err = store.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("cluster: decode fetched snapshot: %w", err)
	}
	if st := w.opt.Store; st != nil && l.SnapshotName != "" {
		// Best-effort warm cache for restarts; mining proceeds either way.
		_ = st.Put(l.SnapshotName, snap, st.Generation()+1)
	}
	w.cache(l.Digest, snap)
	return snap, nil
}

func (w *Worker) cache(digest string, snap *farmer.Snapshot) {
	w.mu.Lock()
	w.snaps[digest] = snap
	w.mu.Unlock()
}

func (w *Worker) fetch(ctx context.Context, digest string) ([]byte, error) {
	req, err := w.newRequest(ctx, http.MethodGet,
		w.base+"/cluster/v1/snapshots/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot fetch status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// report uploads the lease's result frames in one POST: optional partial,
// the whole-job records, then the terminal end frame. The body is built
// in memory — commit on the coordinator is atomic on the end frame, so
// streaming incrementally would buy nothing.
func (w *Worker) report(ctx context.Context, l *Lease, partial *core.Partial, records []json.RawMessage, end *EndFrame) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	if partial != nil {
		raw, err := json.Marshal(partial)
		if err != nil {
			end = &EndFrame{Error: fmt.Sprintf("cluster: encode partial: %v", err)}
		} else if err := enc.Encode(Frame{Partial: raw}); err != nil {
			return
		}
	}
	for _, rec := range records {
		if err := enc.Encode(Frame{Record: rec}); err != nil {
			return
		}
	}
	if err := enc.Encode(Frame{End: end}); err != nil {
		return
	}

	// Reporting must survive local-run cancellation caused by a renew 404
	// (the error frame is how the coordinator learns quickly); use the
	// outer context, falling back to a short independent deadline when
	// the worker itself is shutting down.
	rctx := ctx
	if ctx.Err() != nil {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
	}
	req, err := w.newRequest(rctx, http.MethodPost,
		w.base+"/cluster/v1/leases/"+l.ID+"/results", &body)
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := w.hc.Do(req)
	if err != nil {
		return // lease will expire and requeue
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
