package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTestStore(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStorePutLoadAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	d := randomDataset(t, rng)
	want := mustSnapshot(t, d, 0)

	st := openTestStore(t, dir, Options{})
	if err := st.Put("mini", want, 3); err != nil {
		t.Fatal(err)
	}
	if got := st.Generation(); got != 3 {
		t.Fatalf("generation = %d, want 3", got)
	}
	st.Close()

	st2 := openTestStore(t, dir, Options{})
	if got := st2.Generation(); got != 3 {
		t.Fatalf("reopened generation = %d, want 3", got)
	}
	entries := st2.Entries()
	if len(entries) != 1 || entries[0].Name != "mini" || entries[0].Generation != 3 {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[0].Rows != d.NumRows() || entries[0].Items != d.NumItems {
		t.Fatalf("manifest shape %d×%d, want %d×%d", entries[0].Rows, entries[0].Items, d.NumRows(), d.NumItems)
	}
	got, gen, err := st2.Load("mini")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("loaded generation = %d, want 3", gen)
	}
	assertSnapshotsEqual(t, want, got)

	// Second load must be an LRU hit returning the identical decoded value.
	again, _, err := st2.Load("mini")
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("LRU hit returned a different snapshot pointer")
	}
}

func TestStoreReplaceBumpsGenerationAndDropsOldFile(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	st := openTestStore(t, dir, Options{})
	first := mustSnapshot(t, randomDataset(t, rng), 0)
	second := mustSnapshot(t, randomDataset(t, rng))
	if err := st.Put("ds", first, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("ds", second, 2); err != nil {
		t.Fatal(err)
	}
	got, gen, err := st.Load("ds")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	assertSnapshotsEqual(t, second, got)
	files, err := os.ReadDir(filepath.Join(dir, snapshotDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = f.Name()
		}
		t.Fatalf("want 1 snapshot file after replace, got %v", names)
	}
}

// A failing writer must leave no trace: no manifest change, no generation
// change, no snapshot file, no cache entry — and the store keeps working
// once the writer recovers.
func TestStorePutFailureLeavesNoPartialState(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	snapA := mustSnapshot(t, randomDataset(t, rng), 0)
	snapB := mustSnapshot(t, randomDataset(t, rng))

	bomb := errors.New("disk on fire")
	failing := true
	var wrote []string
	st := openTestStore(t, dir, Options{WriteFile: func(path string, data []byte) error {
		if failing {
			// Worst case: the writer dirties the target before failing.
			os.WriteFile(path, data[:len(data)/2], 0o644)
			return bomb
		}
		wrote = append(wrote, filepath.Base(path))
		return atomicWriteFile(path, data)
	}})

	if err := st.Put("good", snapA, 1); !errors.Is(err, bomb) {
		t.Fatalf("Put with failing writer: %v, want %v", err, bomb)
	}
	if gen := st.Generation(); gen != 0 {
		t.Fatalf("generation advanced to %d after failed Put", gen)
	}
	if entries := st.Entries(); len(entries) != 0 {
		t.Fatalf("failed Put left entries: %+v", entries)
	}
	if n, b := st.CacheStats(); n != 0 || b != 0 {
		t.Fatalf("failed Put left cache state: %d entries, %d bytes", n, b)
	}
	if _, _, err := st.Load("good"); err == nil {
		t.Fatal("Load succeeded for a dataset whose Put failed")
	}
	files, _ := os.ReadDir(filepath.Join(dir, snapshotDir))
	if len(files) != 0 {
		t.Fatalf("failed Put left %d snapshot file(s)", len(files))
	}

	// Manifest-commit failure (snapshot write succeeds, manifest doesn't)
	// must roll the snapshot file back too.
	failing = false
	manifestBomb := func(path string, data []byte) error {
		if filepath.Base(path) == manifestName {
			return bomb
		}
		return atomicWriteFile(path, data)
	}
	st2 := openTestStore(t, dir, Options{WriteFile: manifestBomb})
	if err := st2.Put("good", snapA, 1); !errors.Is(err, bomb) {
		t.Fatalf("Put with failing manifest writer: %v, want %v", err, bomb)
	}
	files, _ = os.ReadDir(filepath.Join(dir, snapshotDir))
	if len(files) != 0 {
		t.Fatalf("failed manifest commit left %d snapshot file(s)", len(files))
	}

	// And the same directory keeps working with a healthy writer.
	st3 := openTestStore(t, dir, Options{})
	if err := st3.Put("good", snapB, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st3.Load("good"); err != nil {
		t.Fatal(err)
	}
	_ = wrote
}

// Orphaned snapshot files — a crash after the snapshot write but before
// the manifest commit — are collected by the next Open.
func TestStoreOpenCollectsOrphans(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	st := openTestStore(t, dir, Options{})
	if err := st.Put("keep", mustSnapshot(t, randomDataset(t, rng)), 1); err != nil {
		t.Fatal(err)
	}
	st.Close()

	orphan := filepath.Join(dir, snapshotDir, "orphan.9.snap")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir, Options{})
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan still present after Open: %v", err)
	}
	if _, _, err := st2.Load("keep"); err != nil {
		t.Fatalf("committed dataset lost: %v", err)
	}
}

// The evictor must keep the decoded working set under the byte budget
// while every Load still succeeds (evicted snapshots re-decode from disk).
func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	// Budget ≈ one encoded snapshot: inserting a second must evict the
	// least recently used.
	probe, err := Encode(mustSnapshot(t, randomDataset(t, rng)))
	if err != nil {
		t.Fatal(err)
	}
	st := openTestStore(t, dir, Options{CacheBytes: int64(len(probe)) * 3 / 2})

	var gens []uint64
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("ds%d", i)
		if err := st.Put(name, mustSnapshot(t, randomDataset(t, rng)), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		gens = append(gens, uint64(i+1))
	}
	waitBudget := func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, b := st.CacheStats(); b <= st.cacheBytes {
				return
			}
			if time.Now().After(deadline) {
				_, b := st.CacheStats()
				t.Fatalf("evictor never trimmed cache to %d bytes (at %d)", st.cacheBytes, b)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitBudget()
	if n, _ := st.CacheStats(); n >= 4 {
		t.Fatalf("no eviction happened: %d entries resident", n)
	}
	// Every dataset still loads — including evicted ones — at its
	// registered generation.
	for i := 0; i < 4; i++ {
		_, gen, err := st.Load(fmt.Sprintf("ds%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if gen != gens[i] {
			t.Fatalf("ds%d generation = %d, want %d", i, gen, gens[i])
		}
		waitBudget()
	}
}

// CacheBytes 0 is the degenerate budget: nothing stays decoded, loads
// always hit the disk, and the store still serves correctly.
func TestStoreZeroBudget(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	want := mustSnapshot(t, randomDataset(t, rng), 0)
	st := openTestStore(t, dir, Options{CacheBytes: 0})
	if err := st.Put("ds", want, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, _, err := st.Load("ds")
		if err != nil {
			t.Fatal(err)
		}
		assertSnapshotsEqual(t, want, got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, b := st.CacheStats(); n == 0 && b == 0 {
			break
		}
		if time.Now().After(deadline) {
			n, b := st.CacheStats()
			t.Fatalf("zero-budget store retained %d entries, %d bytes", n, b)
		}
		time.Sleep(time.Millisecond)
	}
}

// Names that need escaping on disk must round-trip through the store.
func TestStoreEscapedNames(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	st := openTestStore(t, dir, Options{})
	names := []string{"with space", "slash/y", "dots..", "ünïcode", strings.Repeat("x", 60)}
	for i, name := range names {
		if err := st.Put(name, mustSnapshot(t, randomDataset(t, rng)), uint64(i+1)); err != nil {
			t.Fatalf("Put %q: %v", name, err)
		}
	}
	st.Close()
	st2 := openTestStore(t, dir, Options{})
	for _, name := range names {
		if _, _, err := st2.Load(name); err != nil {
			t.Fatalf("Load %q after reopen: %v", name, err)
		}
	}
}

// A corrupted snapshot file surfaces as a load error, not a panic, and
// does not take the rest of the store down.
func TestStoreCorruptFileLoadError(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	st := openTestStore(t, dir, Options{CacheBytes: 0}) // keep nothing decoded
	if err := st.Put("a", mustSnapshot(t, randomDataset(t, rng)), 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("b", mustSnapshot(t, randomDataset(t, rng)), 2); err != nil {
		t.Fatal(err)
	}
	// Wait for the zero-budget evictor to drop the Put-time cache entry so
	// the corruption is actually read back.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n, _ := st.CacheStats(); n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evictor never drained the cache")
		}
		time.Sleep(time.Millisecond)
	}
	meta := st.Entries()
	var aFile string
	for _, m := range meta {
		if m.Name == "a" {
			aFile = m.File
		}
	}
	path := filepath.Join(dir, snapshotDir, aFile)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xFF
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load("a"); !errors.Is(err, ErrFormat) {
		t.Fatalf("Load of corrupted file: %v, want ErrFormat", err)
	}
	if _, _, err := st.Load("b"); err != nil {
		t.Fatalf("healthy sibling failed too: %v", err)
	}
}
