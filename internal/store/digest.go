package store

import (
	"crypto/sha256"
	"encoding/hex"
)

// DigestBytes returns the content address of an encoded snapshot:
// "sha256:" plus the hex SHA-256 of its bytes. The encoded form is
// deterministic for a given compiled dataset, so equal digests mean equal
// snapshots — the property the cluster's fetch-or-load path depends on
// (workers verify fetched bytes against the digest before decoding).
func DigestBytes(buf []byte) string {
	sum := sha256.Sum256(buf)
	return "sha256:" + hex.EncodeToString(sum[:])
}
