package store

import (
	"bytes"
	"errors"
	"flag"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_v1.snap from testdata/golden_v1.txt")

// mustSnapshot compiles d and materializes the views for the given
// consequents so the encoding exercises the view sections.
func mustSnapshot(t testing.TB, d *dataset.Dataset, consequents ...int) *dataset.Snapshot {
	t.Helper()
	s, err := dataset.NewSnapshot(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range consequents {
		if _, err := s.ForConsequent(c); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// assertSnapshotsEqual compares two snapshots structure by structure —
// reflect.DeepEqual on the whole Snapshot would drag in the internal
// mutex, and bitsets compare by content, not representation.
func assertSnapshotsEqual(t *testing.T, want, got *dataset.Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(want.Dataset(), got.Dataset()) {
		t.Errorf("dataset differs:\nwant %+v\ngot  %+v", want.Dataset(), got.Dataset())
	}
	if !reflect.DeepEqual(want.Transposed(), got.Transposed()) {
		t.Errorf("transposed table differs")
	}
	wr, gr := want.ItemRows(), got.ItemRows()
	if len(wr) != len(gr) {
		t.Fatalf("item row sets: %d vs %d", len(wr), len(gr))
	}
	for i := range wr {
		if !wr[i].Equal(gr[i]) {
			t.Errorf("item %d row set differs: want %v got %v", i, wr[i], gr[i])
		}
	}
	if !reflect.DeepEqual(want.FreqOrder(), got.FreqOrder()) {
		t.Errorf("frequency order differs: want %v got %v", want.FreqOrder(), got.FreqOrder())
	}
	wv, gv := want.MaterializedViews(), got.MaterializedViews()
	if len(wv) != len(gv) {
		t.Fatalf("materialized views: %d vs %d", len(wv), len(gv))
	}
	for c, w := range wv {
		g, ok := gv[c]
		if !ok {
			t.Errorf("view for consequent %d missing", c)
			continue
		}
		if !reflect.DeepEqual(w.Ordered, g.Ordered) {
			t.Errorf("view %d: ordered dataset differs", c)
		}
		if !reflect.DeepEqual(w.Ord, g.Ord) {
			t.Errorf("view %d: ordering differs: want %+v got %+v", c, w.Ord, g.Ord)
		}
		if !reflect.DeepEqual(w.TT, g.TT) {
			t.Errorf("view %d: ordered transposed table differs", c)
		}
		if !w.PosMask.Equal(g.PosMask) {
			t.Errorf("view %d: class mask differs", c)
		}
	}
}

// randomDataset draws a small dataset with occasional empty rows and an
// unused (zero-support) item so the encoder sees nil transposed lists.
func randomDataset(t testing.TB, rng *rand.Rand) *dataset.Dataset {
	t.Helper()
	n := 1 + rng.Intn(12)
	numItems := 2 + rng.Intn(10)
	numClasses := 2 + rng.Intn(2)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems-1; it++ { // last item stays unused
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
		classes[i] = rng.Intn(numClasses)
	}
	names := []string{"C", "N", "X"}[:numClasses]
	d, err := dataset.FromItemLists(lists, classes, numItems, names)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 50; iter++ {
		d := randomDataset(t, rng)
		var views []int
		for c := 0; c < d.NumClasses(); c++ {
			if rng.Intn(2) == 0 {
				views = append(views, c)
			}
		}
		want := mustSnapshot(t, d, views...)
		buf, err := Encode(want)
		if err != nil {
			t.Fatalf("iter %d: Encode: %v", iter, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("iter %d: Decode: %v", iter, err)
		}
		assertSnapshotsEqual(t, want, got)
	}
}

func TestRoundTripEmptyAndEdgeDatasets(t *testing.T) {
	cases := []struct {
		name string
		d    func(t *testing.T) *dataset.Dataset
	}{
		{"no-rows", func(t *testing.T) *dataset.Dataset {
			d, err := dataset.FromItemLists(nil, nil, 3, []string{"C", "N"})
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"empty-rows", func(t *testing.T) *dataset.Dataset {
			d, err := dataset.FromItemLists([][]dataset.Item{nil, {0}, nil}, []int{0, 1, 0}, 2, []string{"C", "N"})
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"item-names", func(t *testing.T) *dataset.Dataset {
			d, err := dataset.ReadTransactions(bytes.NewReader([]byte("C : a b\nN : b c\n")))
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
		{"64-rows-word-boundary", func(t *testing.T) *dataset.Dataset {
			lists := make([][]dataset.Item, 64)
			classes := make([]int, 64)
			for i := range lists {
				lists[i] = []dataset.Item{dataset.Item(i % 3)}
				classes[i] = i % 2
			}
			d, err := dataset.FromItemLists(lists, classes, 3, []string{"C", "N"})
			if err != nil {
				t.Fatal(err)
			}
			return d
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.d(t)
			var views []int
			if d.NumRows() > 0 {
				views = append(views, 0)
			}
			want := mustSnapshot(t, d, views...)
			buf, err := Encode(want)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			assertSnapshotsEqual(t, want, got)
		})
	}
}

// The encoding must be deterministic — the golden test, content-addressed
// distribution, and byte-level diffing all rely on it. Views are the only
// map involved; encode with both materialized repeatedly.
func TestEncodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randomDataset(t, rng)
	var first []byte
	for i := 0; i < 10; i++ {
		s := mustSnapshot(t, d, 0, 1)
		buf, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf
		} else if !bytes.Equal(first, buf) {
			t.Fatalf("encoding %d differs from the first", i)
		}
	}
}

// Every truncation and every flipped bit must yield ErrFormat — never a
// panic, never a silent success.
func TestDecodeRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randomDataset(t, rng)
	buf, err := Encode(mustSnapshot(t, d, 0))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Decode(buf[:cut]); !errors.Is(err, ErrFormat) {
				t.Fatalf("truncation at %d: got %v, want ErrFormat", cut, err)
			}
		}
	})
	t.Run("bit-flipped", func(t *testing.T) {
		for off := 0; off < len(buf); off++ {
			mut := append([]byte(nil), buf...)
			mut[off] ^= 1 << uint(off%8)
			if _, err := Decode(mut); !errors.Is(err, ErrFormat) {
				t.Fatalf("flip at %d: got %v, want ErrFormat", off, err)
			}
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		mut := append([]byte(nil), buf...)
		mut[8] = 99 // version field, little-endian low byte
		if _, err := Decode(mut); !errors.Is(err, ErrFormat) {
			t.Fatalf("got %v, want ErrFormat", err)
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), buf...), 0xAB)); !errors.Is(err, ErrFormat) {
			t.Fatalf("got %v, want ErrFormat", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrFormat) {
			t.Fatalf("got %v, want ErrFormat", err)
		}
	})
}

// goldenSnapshot compiles the committed golden source dataset exactly as
// the golden binary was produced: both consequent views materialized.
func goldenSnapshot(t *testing.T) *dataset.Snapshot {
	t.Helper()
	f, err := os.Open("testdata/golden_v1.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadTransactions(f)
	if err != nil {
		t.Fatal(err)
	}
	return mustSnapshot(t, d, 0, 1)
}

// TestGoldenV1 locks the version-1 encoding against silent drift: the
// committed binary must keep decoding to a snapshot deep-equal to one
// freshly compiled from the committed source. An intentional format change
// bumps Version and regenerates with `go test ./internal/store -update`.
func TestGoldenV1(t *testing.T) {
	const golden = "testdata/golden_v1.snap"
	want := goldenSnapshot(t)
	if *update {
		buf, err := Encode(want)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(buf))
		return
	}
	buf, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v — run `go test ./internal/store -update` after an intentional format change", err)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode committed golden: %v", err)
	}
	assertSnapshotsEqual(t, want, got)

	// The current encoder must also still produce the committed bytes —
	// byte-for-byte — or readers of old files and writers have diverged.
	reenc, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, buf) {
		t.Fatalf("re-encoding the golden source differs from the committed binary (len %d vs %d)", len(reenc), len(buf))
	}
}

func TestWriteRead(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	want := mustSnapshot(t, randomDataset(t, rng), 0)
	var buf bytes.Buffer
	if err := Write(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, want, got)
}
