package store

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPutRecordsDigestAndFindByDigest(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	d := randomDataset(t, rng)
	snap := mustSnapshot(t, d, 0)

	st := openTestStore(t, dir, Options{})
	if err := st.Put("mini", snap, 1); err != nil {
		t.Fatal(err)
	}
	meta := st.Entries()[0]
	if !strings.HasPrefix(meta.Digest, "sha256:") || len(meta.Digest) != len("sha256:")+64 {
		t.Fatalf("digest = %q", meta.Digest)
	}
	buf, meta2, err := st.ReadEncoded("mini")
	if err != nil {
		t.Fatal(err)
	}
	if DigestBytes(buf) != meta.Digest || meta2.Digest != meta.Digest {
		t.Fatalf("encoded bytes hash to %q, manifest says %q", DigestBytes(buf), meta.Digest)
	}
	if m, ok := st.FindByDigest(meta.Digest); !ok || m.Name != "mini" {
		t.Fatalf("FindByDigest = %+v, %v", m, ok)
	}
	if _, ok := st.FindByDigest("sha256:" + strings.Repeat("0", 64)); ok {
		t.Fatal("found nonexistent digest")
	}
	if _, ok := st.FindByDigest(""); ok {
		t.Fatal("empty digest matched")
	}
	if _, _, err := st.ReadEncoded("missing"); err == nil {
		t.Fatal("ReadEncoded of missing dataset succeeded")
	}
}

// Manifests written before digests existed must gain digests on Open.
func TestOpenBackfillsLegacyDigests(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(12))
	d := randomDataset(t, rng)
	snap := mustSnapshot(t, d, 0)

	st := openTestStore(t, dir, Options{})
	if err := st.Put("mini", snap, 1); err != nil {
		t.Fatal(err)
	}
	want := st.Entries()[0].Digest
	st.Close()

	// Strip the digest from the on-disk manifest, as an old binary would
	// have written it.
	manPath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		t.Fatal(err)
	}
	m := man.Datasets["mini"]
	m.Digest = ""
	man.Datasets["mini"] = m
	stripped, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manPath, stripped, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, Options{})
	if got := st2.Entries()[0].Digest; got != want {
		t.Fatalf("backfilled digest = %q, want %q", got, want)
	}
	if _, ok := st2.FindByDigest(want); !ok {
		t.Fatal("backfilled digest not findable")
	}
}
