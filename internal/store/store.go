package store

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/dataset"
)

// DefaultCacheBytes bounds the decoded-snapshot LRU when Options.CacheBytes
// is negative (and backs farmerd's -store-bytes default).
const DefaultCacheBytes int64 = 256 << 20

// manifestName is the store's commit record. A dataset exists iff the
// manifest references its snapshot file, so the atomic manifest rename is
// the single commit point for every Put.
const manifestName = "MANIFEST.json"

// snapshotDir holds the encoded snapshot files, one per dataset, named
// <escaped-name>.<generation>.snap so a replacement never overwrites the
// committed file before the manifest points at it.
const snapshotDir = "snapshots"

// Meta describes one stored dataset without decoding its snapshot: the
// listing endpoints and lazy registration run entirely off the manifest.
type Meta struct {
	Name       string   `json:"name"`
	File       string   `json:"file"` // relative to the snapshots directory
	Generation uint64   `json:"generation"`
	Rows       int      `json:"rows"`
	Items      int      `json:"items"`
	Classes    []string `json:"classes"`
	// Digest is the content address of the encoded snapshot file
	// (DigestBytes of its bytes). Cluster workers fetch-or-load datasets
	// by digest, so two stores that hold the same compiled dataset agree
	// on its identity regardless of name or generation.
	Digest string `json:"digest,omitempty"`
}

// manifest is the JSON document persisted as MANIFEST.json.
type manifest struct {
	Version    int             `json:"version"`
	Generation uint64          `json:"generation"` // registry-wide counter, survives restarts
	Datasets   map[string]Meta `json:"datasets"`
}

// Options tunes Open.
type Options struct {
	// CacheBytes bounds the decoded-snapshot LRU: negative selects
	// DefaultCacheBytes, zero keeps nothing decoded (every load re-reads
	// the file — a valid low-memory mode since loads are cheap).
	CacheBytes int64
	// WriteFile overrides the atomic file writer — a test seam for
	// injecting persistence failures. nil selects the real writer
	// (write temp file in the same directory, sync, rename).
	WriteFile func(path string, data []byte) error
}

// Store is a directory of durably encoded snapshots plus a byte-budgeted
// LRU of decoded ones. All methods are safe for concurrent use. Writes are
// crash-safe: a snapshot lands under a fresh file name, then the manifest
// — the only commit point — is swapped in atomically; a crash between the
// two leaves an orphan file the next Open removes.
type Store struct {
	dir        string
	cacheBytes int64
	writeFile  func(path string, data []byte) error

	mu     sync.Mutex
	man    manifest
	lru    *list.List // front = most recently used; values are *lruEntry
	byName map[string]*list.Element
	cur    int64

	evictCh chan struct{} // signals the evictor after inserts
	closeCh chan struct{} // closed by Close
	doneCh  chan struct{} // closed when the evictor exits

	loadMu sync.Mutex // serializes cache-miss decodes (one per name at a time is enough at this layer)
}

type lruEntry struct {
	name  string
	gen   uint64
	snap  *dataset.Snapshot
	bytes int64 // encoded size: a close, cheap proxy for the decoded footprint
}

// Open attaches to dir, creating it (and its manifest) when empty, and
// removes any orphaned snapshot files a crash may have left behind. The
// returned store owns an evictor goroutine; Close releases it.
func Open(dir string, opt Options) (*Store, error) {
	if opt.CacheBytes < 0 {
		opt.CacheBytes = DefaultCacheBytes
	}
	if err := os.MkdirAll(filepath.Join(dir, snapshotDir), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:        dir,
		cacheBytes: opt.CacheBytes,
		writeFile:  opt.WriteFile,
		man:        manifest{Version: 1, Datasets: map[string]Meta{}},
		lru:        list.New(),
		byName:     map[string]*list.Element{},
		evictCh:    make(chan struct{}, 1),
		closeCh:    make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	if s.writeFile == nil {
		s.writeFile = atomicWriteFile
	}
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Fresh store; leave the empty manifest unwritten until first Put.
	case err != nil:
		return nil, fmt.Errorf("store: read manifest: %w", err)
	default:
		if err := json.Unmarshal(buf, &s.man); err != nil {
			return nil, fmt.Errorf("store: parse manifest: %w", err)
		}
		if s.man.Version != 1 {
			return nil, fmt.Errorf("store: unsupported manifest version %d", s.man.Version)
		}
		if s.man.Datasets == nil {
			s.man.Datasets = map[string]Meta{}
		}
	}
	s.removeOrphans()
	s.backfillDigests()
	go s.evictor()
	return s, nil
}

// backfillDigests computes missing Meta.Digest values for manifests
// written before digests existed. The updated manifest is kept in memory
// only; the next Put persists it. Unreadable files keep an empty digest —
// Load will surface the real error when the dataset is used.
func (s *Store) backfillDigests() {
	for name, m := range s.man.Datasets {
		if m.Digest != "" {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(s.dir, snapshotDir, m.File))
		if err != nil {
			continue
		}
		m.Digest = DigestBytes(buf)
		s.man.Datasets[name] = m
	}
}

// removeOrphans deletes snapshot files the manifest does not reference —
// leftovers of crashes between the snapshot write and the manifest commit,
// or of replaced registrations.
func (s *Store) removeOrphans() {
	live := make(map[string]bool, len(s.man.Datasets))
	for _, m := range s.man.Datasets {
		live[m.File] = true
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, snapshotDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && !live[e.Name()] {
			os.Remove(filepath.Join(s.dir, snapshotDir, e.Name()))
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Generation returns the persisted registry-wide generation counter: the
// highest generation any Put has committed.
func (s *Store) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Generation
}

// Entries lists the stored datasets from the manifest, without touching
// any snapshot file.
func (s *Store) Entries() []Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Meta, 0, len(s.man.Datasets))
	for _, m := range s.man.Datasets {
		out = append(out, m)
	}
	return out
}

// Put persists snap under name at the given generation. The write is
// all-or-nothing: the snapshot is encoded into a brand-new file, and only
// a successful atomic manifest swap makes it (and the generation) visible
// — any failure leaves the store, on disk and in memory, exactly as it
// was, with at worst an orphaned temp file that the next Open collects.
func (s *Store) Put(name string, snap *dataset.Snapshot, gen uint64) error {
	buf, err := Encode(snap)
	if err != nil {
		return err
	}
	d := snap.Dataset()
	file := fmt.Sprintf("%s.%d.snap", url.PathEscape(name), gen)

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writeFile(filepath.Join(s.dir, snapshotDir, file), buf); err != nil {
		os.Remove(filepath.Join(s.dir, snapshotDir, file))
		return fmt.Errorf("store: persist snapshot %s: %w", name, err)
	}
	next := s.man
	next.Datasets = make(map[string]Meta, len(s.man.Datasets)+1)
	for k, v := range s.man.Datasets {
		next.Datasets[k] = v
	}
	prev, replaced := next.Datasets[name]
	next.Datasets[name] = Meta{
		Name:       name,
		File:       file,
		Generation: gen,
		Rows:       d.NumRows(),
		Items:      d.NumItems,
		Classes:    append([]string(nil), d.ClassNames...),
		Digest:     DigestBytes(buf),
	}
	if gen > next.Generation {
		next.Generation = gen
	}
	if err := s.writeManifest(next); err != nil {
		os.Remove(filepath.Join(s.dir, snapshotDir, file))
		return fmt.Errorf("store: commit manifest for %s: %w", name, err)
	}
	s.man = next
	if replaced && prev.File != file {
		os.Remove(filepath.Join(s.dir, snapshotDir, prev.File))
	}
	s.insertLocked(name, gen, snap, int64(len(buf)))
	return nil
}

func (s *Store) writeManifest(m manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return s.writeFile(filepath.Join(s.dir, manifestName), append(buf, '\n'))
}

// Load returns the decoded snapshot and generation for name, reading and
// decoding the file only on an LRU miss.
func (s *Store) Load(name string) (*dataset.Snapshot, uint64, error) {
	s.mu.Lock()
	meta, ok := s.man.Datasets[name]
	if !ok {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("store: no stored dataset %q", name)
	}
	if el, hit := s.byName[name]; hit {
		e := el.Value.(*lruEntry)
		if e.gen == meta.Generation {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			return e.snap, e.gen, nil
		}
	}
	s.mu.Unlock()

	// Decode outside s.mu so loads never block Puts of other datasets;
	// loadMu keeps concurrent misses from decoding the same file twice.
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	s.mu.Lock()
	meta, ok = s.man.Datasets[name]
	if !ok {
		s.mu.Unlock()
		return nil, 0, fmt.Errorf("store: no stored dataset %q", name)
	}
	if el, hit := s.byName[name]; hit { // raced with another loader or a Put
		e := el.Value.(*lruEntry)
		if e.gen == meta.Generation {
			s.lru.MoveToFront(el)
			s.mu.Unlock()
			return e.snap, e.gen, nil
		}
	}
	s.mu.Unlock()
	buf, err := os.ReadFile(filepath.Join(s.dir, snapshotDir, meta.File))
	if err != nil {
		return nil, 0, fmt.Errorf("store: load %s: %w", name, err)
	}
	snap, err := Decode(buf)
	if err != nil {
		return nil, 0, fmt.Errorf("store: load %s: %w", name, err)
	}
	s.mu.Lock()
	s.insertLocked(name, meta.Generation, snap, int64(len(buf)))
	s.mu.Unlock()
	return snap, meta.Generation, nil
}

// insertLocked installs (or refreshes) the decoded snapshot in the LRU and
// nudges the evictor. Callers hold s.mu.
func (s *Store) insertLocked(name string, gen uint64, snap *dataset.Snapshot, bytes int64) {
	if el, ok := s.byName[name]; ok {
		e := el.Value.(*lruEntry)
		s.cur += bytes - e.bytes
		e.gen, e.snap, e.bytes = gen, snap, bytes
		s.lru.MoveToFront(el)
	} else {
		s.byName[name] = s.lru.PushFront(&lruEntry{name: name, gen: gen, snap: snap, bytes: bytes})
		s.cur += bytes
	}
	select {
	case s.evictCh <- struct{}{}:
	default: // a trim is already pending
	}
}

// evictor trims the decoded-snapshot LRU back under the byte budget after
// every insert. Running it on its own goroutine keeps eviction off the
// job-serving path; the budget can be exceeded only for the instant
// between an insert and the trim it signals.
func (s *Store) evictor() {
	defer close(s.doneCh)
	for {
		select {
		case <-s.evictCh:
			s.mu.Lock()
			for s.cur > s.cacheBytes {
				el := s.lru.Back()
				if el == nil {
					break
				}
				e := s.lru.Remove(el).(*lruEntry)
				delete(s.byName, e.name)
				s.cur -= e.bytes
			}
			s.mu.Unlock()
		case <-s.closeCh:
			return
		}
	}
}

// FindByDigest returns the manifest entry whose encoded snapshot has the
// given content digest, if any.
func (s *Store) FindByDigest(digest string) (Meta, bool) {
	if digest == "" {
		return Meta{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.man.Datasets {
		if m.Digest == digest {
			return m, true
		}
	}
	return Meta{}, false
}

// ReadEncoded returns the raw encoded snapshot bytes for name, straight
// from disk — what a coordinator serves to workers fetching a dataset by
// digest.
func (s *Store) ReadEncoded(name string) ([]byte, Meta, error) {
	s.mu.Lock()
	meta, ok := s.man.Datasets[name]
	s.mu.Unlock()
	if !ok {
		return nil, Meta{}, fmt.Errorf("store: no stored dataset %q", name)
	}
	buf, err := os.ReadFile(filepath.Join(s.dir, snapshotDir, meta.File))
	if err != nil {
		return nil, Meta{}, fmt.Errorf("store: read %s: %w", name, err)
	}
	return buf, meta, nil
}

// CacheStats reports the decoded-snapshot LRU's entry count and byte size.
func (s *Store) CacheStats() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byName), s.cur
}

// Close stops the evictor and waits for it. The directory stays valid: a
// later Open resumes from the manifest.
func (s *Store) Close() error {
	s.mu.Lock()
	select {
	case <-s.closeCh:
	default:
		close(s.closeCh)
	}
	s.mu.Unlock()
	<-s.doneCh
	return nil
}

// atomicWriteFile is the real persistence primitive: write a temp file
// next to the target, sync it to stable storage, then rename over the
// target so readers only ever observe the old or the complete new bytes.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
