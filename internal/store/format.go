// Package store gives dataset snapshots a life beyond one process: a
// versioned binary encoding of dataset.Snapshot (the compiled form every
// miner runs from) and a directory-backed store that persists encoded
// snapshots atomically, reloads them lazily, and bounds the decoded
// working set with byte-budgeted LRU eviction.
//
// The format (version 1) is a sequence of flat, length-prefixed sections —
// transposed table, per-item row bitsets, frequency order, materialized
// ORD views — laid out so a decoder can carve each structure out of the
// raw file bytes with a handful of bulk copies instead of recompiling it
// from the rows (see BENCH_core.json: SnapshotLoad vs Prepare). A CRC-32C
// trailer covers the whole file; every length field is checked against the
// remaining input before any allocation, so truncated or corrupted files
// fail with an error rather than a panic or an absurd allocation.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// Magic opens every snapshot file, followed by the format version.
const Magic = "FARMSNAP"

// Version is the current format version. Decoders reject other versions:
// the format changes by bumping this number, never silently.
const Version = 1

const (
	flagItemNames = 1 << 0

	headerSize  = 8 + 4 + 4 + 4 + 4 + 4 + 4 // magic, version, flags, rows, items, classes, views
	trailerSize = 8                         // CRC-32C, zero-extended to u64
)

// ErrFormat tags every decode failure: corrupt, truncated, or
// wrong-version input. Use errors.Is to detect it.
var ErrFormat = errors.New("store: invalid snapshot encoding")

// crcTable selects CRC-32C (Castagnoli): hardware-accelerated on amd64 and
// arm64, so the whole-file integrity check costs microseconds even for
// multi-megabyte snapshots.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum is the trailer value: the body's CRC-32C, zero-extended to 64
// bits so the trailer keeps the format's 4-byte field alignment with room
// for a wider checksum in a future version.
func checksum(body []byte) uint64 {
	return uint64(crc32.Checksum(body, crcTable))
}

// Layout of one encoded snapshot (all integers little-endian):
//
//	magic      [8]byte  "FARMSNAP"
//	version    uint32
//	flags      uint32   bit 0: item names present
//	numRows    uint32
//	numItems   uint32
//	numClasses uint32
//	numViews   uint32
//	classNames numClasses × (uint32 len + bytes)
//	itemNames  numItems × (uint32 len + bytes)        [flag bit 0]
//	classes    numRows × uint32                       row class labels
//	rowOffs    (numRows+1) × uint32                   offsets into flatItems
//	flatItems  rowOffs[numRows] × int32               all rows' items, concatenated
//	ttOffs     (numItems+1) × uint32                  offsets into ttRows
//	ttRows     ttOffs[numItems] × int32               transposed table, concatenated
//	itemBits   numItems × W × uint64                  per-item row bitsets, W = ceil(numRows/64)
//	freqLen    uint32
//	freqOrder  freqLen × int32
//	views      numViews × view                        ascending consequent
//	crc        uint64                                 CRC-32C of everything above, zero-extended
//
// view:
//
//	consequent  uint32
//	numPositive uint32
//	toOriginal  numRows × uint32                      ORD permutation (new → original id)
//	ordTTOffs   (numItems+1) × uint32
//	ordTTRows   ordTTOffs[numItems] × int32           transposed table of the ordered rows
//	posMask     W × uint64                            consequent-class mask, original row ids

// appender accumulates the encoding. Methods append little-endian.
type appender struct{ b []byte }

func (a *appender) u32(v uint32)  { a.b = binary.LittleEndian.AppendUint32(a.b, v) }
func (a *appender) u64(v uint64)  { a.b = binary.LittleEndian.AppendUint64(a.b, v) }
func (a *appender) raw(p []byte)  { a.b = append(a.b, p...) }
func (a *appender) str(s string)  { a.u32(uint32(len(s))); a.b = append(a.b, s...) }
func (a *appender) i32s(v []int32) {
	for _, x := range v {
		a.u32(uint32(x))
	}
}
func (a *appender) u64s(v []uint64) {
	for _, x := range v {
		a.u64(x)
	}
}

// Encode renders s in the durable format, trailing checksum included. The
// encoding is deterministic: the same snapshot (same materialized views)
// always yields the same bytes.
func Encode(s *dataset.Snapshot) ([]byte, error) {
	d := s.Dataset()
	tt := s.Transposed()
	views := s.MaterializedViews()
	if len(d.Rows) > math.MaxUint32-1 || d.NumItems > math.MaxUint32-1 {
		return nil, fmt.Errorf("store: dataset too large to encode (%d rows, %d items)", len(d.Rows), d.NumItems)
	}

	a := &appender{b: make([]byte, 0, encodedSizeHint(d, tt, len(views)))}
	a.raw([]byte(Magic))
	a.u32(Version)
	var flags uint32
	if len(d.ItemNames) != 0 {
		flags |= flagItemNames
	}
	a.u32(flags)
	a.u32(uint32(len(d.Rows)))
	a.u32(uint32(d.NumItems))
	a.u32(uint32(len(d.ClassNames)))
	a.u32(uint32(len(views)))

	for _, name := range d.ClassNames {
		a.str(name)
	}
	if flags&flagItemNames != 0 {
		for _, name := range d.ItemNames {
			a.str(name)
		}
	}

	// Rows: classes, then items flattened behind an offset table.
	for i := range d.Rows {
		a.u32(uint32(d.Rows[i].Class))
	}
	off := uint32(0)
	a.u32(off)
	for i := range d.Rows {
		off += uint32(len(d.Rows[i].Items))
		a.u32(off)
	}
	for i := range d.Rows {
		a.i32s(d.Rows[i].Items)
	}

	encodeTT(a, tt)

	for _, set := range s.ItemRows() {
		a.u64s(set.Words())
	}

	a.u32(uint32(len(s.FreqOrder())))
	a.i32s(s.FreqOrder())

	for _, consequent := range sortedKeys(views) {
		v := views[consequent]
		a.u32(uint32(consequent))
		a.u32(uint32(v.Ord.NumPositive))
		for _, orig := range v.Ord.ToOriginal {
			a.u32(uint32(orig))
		}
		encodeTT(a, v.TT)
		a.u64s(v.PosMask.Words())
	}

	a.u64(checksum(a.b))
	return a.b, nil
}

func encodeTT(a *appender, tt *dataset.Transposed) {
	off := uint32(0)
	a.u32(off)
	for _, list := range tt.Lists {
		off += uint32(len(list))
		a.u32(off)
	}
	for _, list := range tt.Lists {
		a.i32s(list)
	}
}

func sortedKeys(m map[int]*dataset.ConsequentView) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // tiny n: insertion sort
		for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	return keys
}

// encodedSizeHint estimates the final encoding size so Encode allocates
// once. Views dominate through their TT + permutation + mask.
func encodedSizeHint(d *dataset.Dataset, tt *dataset.Transposed, views int) int {
	items := 0
	for i := range d.Rows {
		items += len(d.Rows[i].Items)
	}
	words := (len(d.Rows) + 63) / 64
	base := headerSize + trailerSize +
		16*len(d.ClassNames) + 16*len(d.ItemNames) +
		8*len(d.Rows) + 8*items + 8 + 4*d.NumItems +
		8*words*d.NumItems + 4 + 4*d.NumItems
	return base + views*(8+4*len(d.Rows)+4*items+4*d.NumItems+8*words)
}

// cursor walks the encoded bytes, bounds-checking every read so no length
// field can trigger an out-of-range slice or an allocation larger than the
// input itself.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) fail(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrFormat, what, c.off)
}

func (c *cursor) need(n uint64) error {
	if n > uint64(len(c.b)-c.off) {
		return c.fail(fmt.Sprintf("need %d bytes, %d left", n, len(c.b)-c.off))
	}
	return nil
}

func (c *cursor) u32() (uint32, error) {
	if err := c.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v, nil
}

// u32s decodes count uint32s into a fresh slice. The conversion loops here
// and below run over an exact-length sub-slice so the compiler hoists the
// bounds checks — these three calls move most of the file's bytes.
func (c *cursor) u32s(count uint32) ([]uint32, error) {
	if err := c.need(4 * uint64(count)); err != nil {
		return nil, err
	}
	src := c.b[c.off : c.off+4*int(count)]
	out := make([]uint32, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(src[4*i:])
	}
	c.off += 4 * int(count)
	return out, nil
}

// i32s decodes count int32s into a fresh slice.
func (c *cursor) i32s(count uint32) ([]int32, error) {
	if err := c.need(4 * uint64(count)); err != nil {
		return nil, err
	}
	src := c.b[c.off : c.off+4*int(count)]
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
	}
	c.off += 4 * int(count)
	return out, nil
}

// u64s decodes count uint64s into a fresh slice.
func (c *cursor) u64s(count uint64) ([]uint64, error) {
	if err := c.need(8 * count); err != nil {
		return nil, err
	}
	src := c.b[c.off : c.off+8*int(count)]
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(src[8*i:])
	}
	c.off += 8 * int(count)
	return out, nil
}

// strs decodes count length-prefixed strings. All of them sub-slice one
// string conversion of the spanned bytes (a single copy of the input, so
// the decoded strings never pin the caller's buffer): decoding thousands
// of item names costs three allocations, not thousands.
func (c *cursor) strs(count uint32) ([]string, error) {
	start := c.off
	// Every string costs ≥4 bytes (its length prefix), so count is bounded
	// by the remaining input before the output slice is sized.
	if err := c.need(4 * uint64(count)); err != nil {
		return nil, err
	}
	type span struct{ off, n int }
	spans := make([]span, count)
	b, off := c.b, c.off
	for i := range spans {
		if len(b)-off < 4 {
			c.off = off
			return nil, c.fail("truncated string length")
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if len(b)-off < n {
			c.off = off
			return nil, c.fail(fmt.Sprintf("need %d bytes, %d left", n, len(b)-off))
		}
		spans[i] = span{off, n}
		off += n
	}
	c.off = off
	blob := string(c.b[start:c.off])
	out := make([]string, count)
	for i, sp := range spans {
		out[i] = blob[sp.off-start : sp.off-start+sp.n]
	}
	return out, nil
}

// offsets decodes an (n+1)-entry offset table and validates it: starts at
// zero, never decreases, and its final value (the flat element count) has
// its data present in the input.
func (c *cursor) offsets(n uint32, elemSize uint64) ([]uint32, error) {
	offs, err := c.u32s(n + 1)
	if err != nil {
		return nil, err
	}
	if offs[0] != 0 {
		return nil, c.fail("offset table does not start at 0")
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] < offs[i-1] {
			return nil, c.fail("offset table decreases")
		}
	}
	if err := c.need(elemSize * uint64(offs[n])); err != nil {
		return nil, err
	}
	return offs, nil
}

// Decode parses one encoded snapshot. It verifies the magic, version and
// whole-file checksum, then rebuilds the snapshot with structural
// validation (dataset invariants, in-range ids, permutation views) so a
// decoded snapshot is as safe to mine from as a freshly compiled one.
// Decode never panics on hostile input and never allocates more than a
// small multiple of len(data).
func Decode(data []byte) (*dataset.Snapshot, error) {
	c := &cursor{b: data}
	if len(data) < headerSize+trailerSize {
		return nil, c.fail("file shorter than header")
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, data[:8])
	}
	c.off = 8
	version, _ := c.u32()
	if version != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (this build reads %d)", ErrFormat, version, Version)
	}
	body, tail := data[:len(data)-trailerSize], data[len(data)-trailerSize:]
	if got, want := checksum(body), binary.LittleEndian.Uint64(tail); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (file %016x, computed %016x)", ErrFormat, want, got)
	}
	c.b = body // every later read stays inside the checksummed region

	flags, _ := c.u32()
	numRows, _ := c.u32()
	numItems, _ := c.u32()
	numClasses, _ := c.u32()
	numViews, err := c.u32()
	if err != nil {
		return nil, err
	}
	if flags&^uint32(flagItemNames) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrFormat, flags)
	}
	// Every row costs ≥4 bytes (its class) and every item ≥4 bytes (its
	// offset-table slot), so bound both against the input up front — this
	// also keeps the (n+1)-sized offset tables from overflowing uint32.
	if uint64(numRows)*4 > uint64(len(c.b)) || uint64(numItems)*4 > uint64(len(c.b)) {
		return nil, fmt.Errorf("%w: declared shape %d×%d impossible in %d bytes", ErrFormat, numRows, numItems, len(c.b))
	}

	d := &dataset.Dataset{NumItems: int(numItems)}
	if numClasses > 0 {
		if d.ClassNames, err = c.strs(numClasses); err != nil {
			return nil, err
		}
	}
	if flags&flagItemNames != 0 {
		if d.ItemNames, err = c.strs(numItems); err != nil {
			return nil, err
		}
	}

	classes, err := c.u32s(numRows)
	if err != nil {
		return nil, err
	}
	rowOffs, err := c.offsets(numRows, 4)
	if err != nil {
		return nil, err
	}
	flatItems, err := c.i32s(rowOffs[numRows])
	if err != nil {
		return nil, err
	}
	if numRows > 0 {
		d.Rows = make([]dataset.Row, numRows)
		for i := range d.Rows {
			lo, hi := rowOffs[i], rowOffs[i+1]
			if lo < hi { // empty rows keep nil Items, as the text readers produce
				d.Rows[i].Items = flatItems[lo:hi:hi]
			}
			d.Rows[i].Class = int(classes[i])
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}

	tt, err := decodeTT(c, numItems, numRows)
	if err != nil {
		return nil, err
	}

	words := (uint64(numRows) + 63) / 64
	flatWords, err := c.u64s(words * uint64(numItems))
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < uint64(numItems); i++ {
		if err := checkTailBits(flatWords[i*words:(i+1)*words], int(numRows)); err != nil {
			return nil, fmt.Errorf("%w: item %d row set: %v", ErrFormat, i, err)
		}
	}
	itemRows := bitset.Carve(int(numRows), int(numItems), flatWords)

	freqLen, err := c.u32()
	if err != nil {
		return nil, err
	}
	freqOrder, err := c.i32s(freqLen)
	if err != nil {
		return nil, err
	}
	if len(freqOrder) == 0 {
		freqOrder = nil
	}
	seen := bitset.New(int(numItems))
	for _, it := range freqOrder {
		if it < 0 || it >= int32(numItems) {
			return nil, fmt.Errorf("%w: frequency-order item %d outside [0,%d)", ErrFormat, it, numItems)
		}
		if seen.Test(int(it)) {
			return nil, fmt.Errorf("%w: duplicate frequency-order item %d", ErrFormat, it)
		}
		seen.Set(int(it))
	}

	views := make(map[int]*dataset.ConsequentView, min(int(numViews), int(numClasses)))
	for i := uint32(0); i < numViews; i++ {
		consequent, v, err := decodeView(c, d, numRows, numItems, words)
		if err != nil {
			return nil, err
		}
		if _, dup := views[consequent]; dup {
			return nil, fmt.Errorf("%w: duplicate view for consequent %d", ErrFormat, consequent)
		}
		views[consequent] = v
	}

	if c.off != len(c.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFormat, len(c.b)-c.off)
	}
	return dataset.RestoreSnapshot(d, tt, itemRows, freqOrder, views), nil
}

// decodeTT rebuilds a transposed table, checking every row id is in range
// and each item's list is strictly ascending.
func decodeTT(c *cursor, numItems, numRows uint32) (*dataset.Transposed, error) {
	offs, err := c.offsets(numItems, 4)
	if err != nil {
		return nil, err
	}
	flat, err := c.i32s(offs[numItems])
	if err != nil {
		return nil, err
	}
	tt := &dataset.Transposed{NumRows: int(numRows), Lists: make([][]int32, numItems)}
	for it := range tt.Lists {
		lo, hi := offs[it], offs[it+1]
		if lo == hi {
			continue // empty lists stay nil, as Transpose leaves them
		}
		list := flat[lo:hi:hi]
		for k, r := range list {
			if r < 0 || r >= int32(numRows) {
				return nil, fmt.Errorf("%w: transposed row id %d outside [0,%d)", ErrFormat, r, numRows)
			}
			if k > 0 && list[k-1] >= r {
				return nil, fmt.Errorf("%w: transposed list for item %d not ascending", ErrFormat, it)
			}
		}
		tt.Lists[it] = list
	}
	return tt, nil
}

// decodeView rebuilds one ORD view. The ordered dataset is reconstructed
// by permuting d's rows through the stored permutation (sharing the item
// slices, exactly as OrderForConsequent does), after verifying the
// permutation is a bijection that puts the consequent class first.
func decodeView(c *cursor, d *dataset.Dataset, numRows, numItems uint32, words uint64) (int, *dataset.ConsequentView, error) {
	consequent, err := c.u32()
	if err != nil {
		return 0, nil, err
	}
	if consequent >= uint32(len(d.ClassNames)) {
		return 0, nil, fmt.Errorf("%w: view consequent %d outside [0,%d)", ErrFormat, consequent, len(d.ClassNames))
	}
	numPositive, err := c.u32()
	if err != nil {
		return 0, nil, err
	}
	toOrig, err := c.u32s(numRows)
	if err != nil {
		return 0, nil, err
	}
	if numPositive > numRows {
		return 0, nil, fmt.Errorf("%w: view positives %d > rows %d", ErrFormat, numPositive, numRows)
	}
	hit := bitset.New(int(numRows))
	ordered := &dataset.Dataset{
		NumItems:   d.NumItems,
		ItemNames:  d.ItemNames,
		ClassNames: d.ClassNames,
		Rows:       make([]dataset.Row, 0, numRows),
	}
	ord := &dataset.Ordering{ToOriginal: make([]int, 0, numRows), NumPositive: int(numPositive)}
	for i, orig := range toOrig {
		if orig >= numRows {
			return 0, nil, fmt.Errorf("%w: view permutation id %d outside [0,%d)", ErrFormat, orig, numRows)
		}
		if hit.Test(int(orig)) {
			return 0, nil, fmt.Errorf("%w: view permutation repeats row %d", ErrFormat, orig)
		}
		hit.Set(int(orig))
		row := d.Rows[orig]
		if positive := uint32(i) < numPositive; positive != (row.Class == int(consequent)) {
			return 0, nil, fmt.Errorf("%w: view row order violates ORD (row %d)", ErrFormat, i)
		}
		ordered.Rows = append(ordered.Rows, row)
		ord.ToOriginal = append(ord.ToOriginal, int(orig))
	}
	ordTT, err := decodeTT(c, numItems, numRows)
	if err != nil {
		return 0, nil, err
	}
	maskWords, err := c.u64s(words)
	if err != nil {
		return 0, nil, err
	}
	if err := checkTailBits(maskWords, int(numRows)); err != nil {
		return 0, nil, fmt.Errorf("%w: view %d class mask: %v", ErrFormat, consequent, err)
	}
	return int(consequent), &dataset.ConsequentView{
		Ordered: ordered,
		Ord:     ord,
		TT:      ordTT,
		PosMask: bitset.FromWords(int(numRows), maskWords),
	}, nil
}

// checkTailBits rejects set bits beyond capacity n — they would corrupt
// popcounts in every miner touching the set.
func checkTailBits(words []uint64, n int) error {
	if n%64 == 0 || len(words) == 0 {
		return nil
	}
	if words[len(words)-1]&^(uint64(1)<<uint(n%64)-1) != 0 {
		return errors.New("bits set beyond capacity")
	}
	return nil
}

// Write encodes s and writes the full encoding to w.
func Write(w io.Writer, s *dataset.Snapshot) error {
	buf, err := Encode(s)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read consumes r to EOF and decodes one snapshot.
func Read(r io.Reader) (*dataset.Snapshot, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}
