package store

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// fixCRC recomputes the trailing checksum over a mutated body so the
// fuzzer's structural mutations reach the section parsers instead of
// dying at the checksum gate. Inputs too short to carry a trailer pass
// through unchanged.
func fixCRC(data []byte) []byte {
	if len(data) < headerSize+trailerSize {
		return data
	}
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(out[len(out)-trailerSize:], checksum(out[:len(out)-trailerSize]))
	return out
}

// fuzzSeeds builds the deterministic seed inputs: valid encodings of
// several snapshot shapes plus systematic corruptions of one of them —
// truncations, bit flips (checksum-fixed and not), a wrong version, and
// absurd declared dimensions.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(20260808))
	var seeds [][]byte

	valid := func(views bool) []byte {
		d := randomDataset(tb, rng)
		var vs []int
		if views {
			for c := 0; c < d.NumClasses(); c++ {
				vs = append(vs, c)
			}
		}
		snap := mustSnapshot(tb, d, vs...)
		buf, err := Encode(snap)
		if err != nil {
			tb.Fatal(err)
		}
		return buf
	}

	base := valid(true)
	seeds = append(seeds,
		base,
		valid(false),
		valid(true),
		valid(false),
		valid(true),
	)

	// Truncations at structurally interesting depths.
	for _, cut := range []int{0, 4, 8, headerSize - 1, headerSize,
		headerSize + trailerSize, len(base) / 4, len(base) / 2, len(base) - trailerSize, len(base) - 1} {
		if cut <= len(base) {
			seeds = append(seeds, base[:cut])
		}
	}

	// Bit flips — raw (checksum catches) and checksum-fixed (parsers catch).
	for _, off := range []int{9, 13, 17, 21, 25, len(base) / 3, 2 * len(base) / 3} {
		mut := append([]byte(nil), base...)
		mut[off%len(mut)] ^= 0x40
		seeds = append(seeds, mut, fixCRC(mut))
	}

	// Wrong version, wrong magic, unknown flags.
	v := append([]byte(nil), base...)
	v[8] = 2
	seeds = append(seeds, fixCRC(v))
	m := append([]byte(nil), base...)
	m[0] = 'X'
	seeds = append(seeds, m)
	fl := append([]byte(nil), base...)
	fl[12] |= 0x80
	seeds = append(seeds, fixCRC(fl))

	// Absurd declared dimensions: a header claiming 2^31 rows/items over a
	// tiny file must be rejected before any allocation matches the claim.
	huge := append([]byte(nil), base[:headerSize]...)
	binary.LittleEndian.PutUint32(huge[16:], 1<<31)
	binary.LittleEndian.PutUint32(huge[20:], 1<<31)
	huge = append(huge, make([]byte, 64)...)
	seeds = append(seeds, fixCRC(huge))
	maxed := append([]byte(nil), base[:headerSize]...)
	for off := 16; off < headerSize; off += 4 {
		binary.LittleEndian.PutUint32(maxed[off:], ^uint32(0))
	}
	maxed = append(maxed, make([]byte, 64)...)
	seeds = append(seeds, fixCRC(maxed))

	seeds = append(seeds, nil, []byte(Magic))
	return seeds
}

// FuzzReadSnapshot drives Decode with arbitrary bytes: it must return a
// snapshot or an error — never panic, and never allocate beyond a small
// multiple of the input (length fields are validated against the file
// size first). Inputs are additionally replayed with a corrected
// checksum so mutations explore the section parsers, and any input that
// decodes must survive an encode/decode round trip.
func FuzzReadSnapshot(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, in := range [][]byte{data, fixCRC(data)} {
			snap, err := Decode(in)
			if err != nil {
				continue
			}
			// Whatever Decode accepts must be internally consistent
			// enough to re-encode, and the re-encoding must decode.
			buf, err := Encode(snap)
			if err != nil {
				t.Fatalf("decoded snapshot does not re-encode: %v", err)
			}
			if _, err := Decode(buf); err != nil {
				t.Fatalf("re-encoded snapshot does not decode: %v", err)
			}
		}
	})
}

// TestWriteFuzzCorpus materializes the seed corpus under
// testdata/fuzz/FuzzReadSnapshot so the seeds are committed, replayed by
// plain `go test`, and shared with CI's -fuzz smoke run. Regenerate with
// `go test ./internal/store -update`.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*update {
		// Assert the committed corpus is at least as large as the
		// generator's output, so seeds cannot silently go missing.
		entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzReadSnapshot"))
		if err != nil {
			t.Fatalf("%v — run `go test ./internal/store -update` to generate the fuzz corpus", err)
		}
		if want := len(fuzzSeeds(t)); len(entries) < want {
			t.Fatalf("committed fuzz corpus has %d seeds, generator produces %d — rerun with -update", len(entries), want)
		}
		return
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReadSnapshot")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d fuzz seeds to %s", len(fuzzSeeds(t)), dir)
}
