package bitset

import (
	"math/bits"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetClearTest(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Test(-1) },
		func() { s.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromInts(t *testing.T) {
	s := FromInts(70, 2, 3, 69)
	if got := s.Ints(); !reflect.DeepEqual(got, []int{2, 3, 69}) {
		t.Fatalf("Ints = %v", got)
	}
}

func TestSetOps(t *testing.T) {
	a := FromInts(128, 1, 2, 3, 64, 127)
	b := FromInts(128, 2, 3, 4, 64)

	and := a.Clone()
	and.And(b)
	if got := and.Ints(); !reflect.DeepEqual(got, []int{2, 3, 64}) {
		t.Fatalf("And = %v", got)
	}

	or := a.Clone()
	or.Or(b)
	if got := or.Ints(); !reflect.DeepEqual(got, []int{1, 2, 3, 4, 64, 127}) {
		t.Fatalf("Or = %v", got)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Ints(); !reflect.DeepEqual(got, []int{1, 127}) {
		t.Fatalf("AndNot = %v", got)
	}

	if a.AndCount(b) != 3 {
		t.Fatalf("AndCount = %d, want 3", a.AndCount(b))
	}
	if a.AndNotCount(b) != 2 {
		t.Fatalf("AndNotCount = %d, want 2", a.AndNotCount(b))
	}
}

func TestOrCount(t *testing.T) {
	a := FromInts(128, 1, 2, 3, 64, 127)
	b := FromInts(128, 2, 3, 4, 64)
	if got := a.OrCount(b); got != 6 {
		t.Fatalf("OrCount = %d, want 6", got)
	}
	or := a.Clone()
	or.Or(b)
	if got := a.OrCount(b); got != or.Count() {
		t.Fatalf("OrCount %d disagrees with Or+Count %d", got, or.Count())
	}
	if got := a.OrCount(New(128)); got != a.Count() {
		t.Fatalf("OrCount with empty = %d, want %d", got, a.Count())
	}
}

func TestAndTo(t *testing.T) {
	a := FromInts(128, 1, 2, 3, 64, 127)
	b := FromInts(128, 2, 3, 4, 64)
	dst := FromInts(128, 99) // stale contents must be overwritten
	AndTo(dst, a, b)
	if got := dst.Ints(); !reflect.DeepEqual(got, []int{2, 3, 64}) {
		t.Fatalf("AndTo = %v", got)
	}
	// Must agree with Clone+And, and leave the operands untouched.
	want := a.Clone()
	want.And(b)
	if !dst.Equal(want) {
		t.Fatal("AndTo disagrees with Clone+And")
	}
	if !reflect.DeepEqual(a.Ints(), []int{1, 2, 3, 64, 127}) || !reflect.DeepEqual(b.Ints(), []int{2, 3, 4, 64}) {
		t.Fatal("AndTo mutated an operand")
	}
	// dst aliasing an operand.
	alias := a.Clone()
	AndTo(alias, alias, b)
	if !alias.Equal(want) {
		t.Fatal("AndTo with aliased dst wrong")
	}
}

func TestAndNotTo(t *testing.T) {
	a := FromInts(128, 1, 2, 3, 64, 127)
	b := FromInts(128, 2, 3, 4, 64)
	dst := FromInts(128, 99)
	AndNotTo(dst, a, b)
	if got := dst.Ints(); !reflect.DeepEqual(got, []int{1, 127}) {
		t.Fatalf("AndNotTo = %v", got)
	}
	want := a.Clone()
	want.AndNot(b)
	if !dst.Equal(want) {
		t.Fatal("AndNotTo disagrees with Clone+AndNot")
	}
	if dst.Count() != a.AndNotCount(b) {
		t.Fatal("AndNotTo disagrees with AndNotCount")
	}
	alias := a.Clone()
	AndNotTo(alias, alias, b)
	if !alias.Equal(want) {
		t.Fatal("AndNotTo with aliased dst wrong")
	}
}

func TestToVariantsCompatPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { AndTo(New(10), New(10), New(20)) },
		func() { AndTo(New(20), New(10), New(10)) },
		func() { AndNotTo(New(10), New(20), New(10)) },
		func() { _ = New(10).OrCount(New(20)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("capacity mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestSubsetSuperset(t *testing.T) {
	a := FromInts(64, 1, 2)
	b := FromInts(64, 1, 2, 3)
	if !a.SubsetOf(b) || a.SupersetOf(b) {
		t.Fatal("subset relation wrong")
	}
	if !b.SupersetOf(a) || !b.ProperSupersetOf(a) {
		t.Fatal("superset relation wrong")
	}
	if b.ProperSupersetOf(b.Clone()) {
		t.Fatal("set is proper superset of its copy")
	}
	if !a.SubsetOf(a) {
		t.Fatal("set not subset of itself")
	}
}

func TestIntersects(t *testing.T) {
	a := FromInts(200, 150)
	b := FromInts(200, 151)
	if a.Intersects(b) {
		t.Fatal("disjoint sets reported intersecting")
	}
	b.Set(150)
	if !a.Intersects(b) {
		t.Fatal("intersecting sets reported disjoint")
	}
}

func TestEqualDifferentCapacity(t *testing.T) {
	if New(10).Equal(New(11)) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestCompatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched capacities did not panic")
		}
	}()
	New(10).And(New(20))
}

func TestNextSet(t *testing.T) {
	s := FromInts(200, 0, 63, 64, 130, 199)
	cases := []struct{ from, want int }{
		{-5, 0}, {0, 0}, {1, 63}, {63, 63}, {64, 64}, {65, 130},
		{131, 199}, {199, 199}, {200, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if New(64).NextSet(0) != -1 {
		t.Error("NextSet on empty set should be -1")
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromInts(300, 5, 70, 64, 299, 0)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !sort.IntsAreSorted(got) {
		t.Fatalf("ForEach out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ForEach visited %d bits, want 5", len(got))
	}
}

func TestCopyFromReset(t *testing.T) {
	a := FromInts(64, 1, 2, 3)
	b := New(64)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom did not copy")
	}
	b.Reset()
	if !b.Empty() {
		t.Fatal("Reset left bits set")
	}
	if a.Empty() {
		t.Fatal("Reset affected source")
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := FromInts(128, 1)
	b := FromInts(128, 2)
	if a.Hash() == b.Hash() {
		t.Fatal("hash collision on trivially different sets")
	}
	if a.Hash() != a.Clone().Hash() {
		t.Fatal("hash not deterministic")
	}
}

func TestString(t *testing.T) {
	if got := FromInts(10, 1, 4, 7).String(); got != "{1, 4, 7}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(10).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: set ops agree with a map-based model.
func TestQuickAgainstModel(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 1 << 16
		a, b := New(n), New(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for _, x := range xs {
			a.Set(int(x))
			ma[int(x)] = true
		}
		for _, y := range ys {
			b.Set(int(y))
			mb[int(y)] = true
		}
		inter := 0
		for k := range ma {
			if mb[k] {
				inter++
			}
		}
		if a.AndCount(b) != inter {
			return false
		}
		union := len(mb)
		for k := range ma {
			if !mb[k] {
				union++
			}
		}
		u := a.Clone()
		u.Or(b)
		if u.Count() != union || a.OrCount(b) != union {
			return false
		}
		and := New(n)
		AndTo(and, a, b)
		if and.Count() != inter {
			return false
		}
		diff := New(n)
		AndNotTo(diff, a, b)
		return diff.Count() == len(ma)-inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Ints/FromInts round-trip.
func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(500)
		want := map[int]bool{}
		var xs []int
		for i := 0; i < rng.Intn(50); i++ {
			x := rng.Intn(n)
			xs = append(xs, x)
			want[x] = true
		}
		s := FromInts(n, xs...)
		got := s.Ints()
		if len(got) != len(want) {
			t.Fatalf("round trip size mismatch: %d vs %d", len(got), len(want))
		}
		for _, x := range got {
			if !want[x] {
				t.Fatalf("unexpected bit %d", x)
			}
		}
	}
}

// The combining kernels process four words per iteration with a scalar
// tail; every capacity class around the 4-word boundary must agree with a
// naive word-at-a-time reference, or the tail handling is wrong.
func TestWideKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, bits64 := range []int{0, 1, 3, 63, 64, 65, 127, 128, 129, 191, 192, 193, 255, 256, 257, 320, 500, 1024, 1031} {
		a, b := New(bits64), New(bits64)
		for i := 0; i < bits64/2; i++ {
			a.Set(rng.Intn(bits64))
			b.Set(rng.Intn(bits64))
		}
		refAnd, refOr, refAndNot := New(bits64), New(bits64), New(bits64)
		count, andC, orC, andNotC := 0, 0, 0, 0
		for i := range refAnd.words {
			refAnd.words[i] = a.words[i] & b.words[i]
			refOr.words[i] = a.words[i] | b.words[i]
			refAndNot.words[i] = a.words[i] &^ b.words[i]
			count += bits.OnesCount64(a.words[i])
			andC += bits.OnesCount64(a.words[i] & b.words[i])
			orC += bits.OnesCount64(a.words[i] | b.words[i])
			andNotC += bits.OnesCount64(a.words[i] &^ b.words[i])
		}
		if got := a.Count(); got != count {
			t.Fatalf("n=%d Count = %d, want %d", bits64, got, count)
		}
		if got := a.AndCount(b); got != andC {
			t.Fatalf("n=%d AndCount = %d, want %d", bits64, got, andC)
		}
		if got := a.OrCount(b); got != orC {
			t.Fatalf("n=%d OrCount = %d, want %d", bits64, got, orC)
		}
		if got := a.AndNotCount(b); got != andNotC {
			t.Fatalf("n=%d AndNotCount = %d, want %d", bits64, got, andNotC)
		}
		for _, op := range []struct {
			name string
			got  func() *Set
			want *Set
		}{
			{"And", func() *Set { s := a.Clone(); s.And(b); return s }, refAnd},
			{"Or", func() *Set { s := a.Clone(); s.Or(b); return s }, refOr},
			{"AndNot", func() *Set { s := a.Clone(); s.AndNot(b); return s }, refAndNot},
			{"AndTo", func() *Set { s := New(bits64); AndTo(s, a, b); return s }, refAnd},
			{"AndNotTo", func() *Set { s := New(bits64); AndNotTo(s, a, b); return s }, refAndNot},
		} {
			if got := op.got(); !got.Equal(op.want) {
				t.Fatalf("n=%d %s disagrees with reference", bits64, op.name)
			}
		}
	}
}

var benchSink int

func benchPair(n int) (*Set, *Set) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(n), New(n)
	for i := 0; i < n/2; i++ {
		x.Set(rng.Intn(n))
		y.Set(rng.Intn(n))
	}
	return x, y
}

func BenchmarkAndCount(b *testing.B) {
	x, y := benchPair(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = x.AndCount(y)
	}
}

func BenchmarkAndCount8192(b *testing.B) {
	x, y := benchPair(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = x.AndCount(y)
	}
}

func BenchmarkAnd8192(b *testing.B) {
	x, y := benchPair(8192)
	dst := New(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndTo(dst, x, y)
	}
}

func BenchmarkAndNot8192(b *testing.B) {
	x, y := benchPair(8192)
	dst := New(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndNotTo(dst, x, y)
	}
}

func BenchmarkCount8192(b *testing.B) {
	x, _ := benchPair(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = x.Count()
	}
}
