package bitset

import "testing"

func TestArenaNewAndRelease(t *testing.T) {
	var a Arena
	m := a.Mark()
	s := a.New(130) // three words
	if s.Len() != 130 || !s.Empty() {
		t.Fatalf("arena New: len=%d empty=%v", s.Len(), s.Empty())
	}
	s.Set(0)
	s.Set(129)
	u := a.New(130)
	if !u.Empty() {
		t.Fatal("second arena set shares storage with first")
	}
	if s.Count() != 2 {
		t.Fatalf("first arena set corrupted: count=%d", s.Count())
	}
	a.Release(m)
	// Reused storage must come back cleared.
	v := a.New(130)
	if !v.Empty() {
		t.Fatalf("reused arena set not cleared: %v", v)
	}
}

func TestArenaAndCopy(t *testing.T) {
	var a Arena
	x := FromInts(70, 1, 3, 64, 69)
	y := FromInts(70, 3, 64, 68)
	m := a.Mark()
	got := a.And(x, y)
	if want := FromInts(70, 3, 64); !got.Equal(want) {
		t.Fatalf("arena And = %v, want %v", got, want)
	}
	cp := a.Copy(x)
	if !cp.Equal(x) {
		t.Fatalf("arena Copy = %v, want %v", cp, x)
	}
	cp.Clear(1)
	if !x.Test(1) {
		t.Fatal("arena Copy aliases its source")
	}
	a.Release(m)
}

func TestArenaGrowthKeepsOuterSetsValid(t *testing.T) {
	var a Arena
	outer := a.New(64)
	outer.Set(7)
	m := a.Mark()
	for i := 0; i < 200; i++ { // force words/sets slab growth
		_ = a.New(64)
	}
	if !outer.Test(7) || outer.Count() != 1 {
		t.Fatalf("outer set corrupted by growth: %v", outer)
	}
	a.Release(m)
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	var a Arena
	x := FromInts(256, 0, 100, 255)
	y := FromInts(256, 100, 200)
	cycle := func() {
		m := a.Mark()
		s := a.And(x, y)
		_ = a.Copy(s)
		_ = a.New(256)
		a.Release(m)
	}
	cycle() // warm
	if n := testing.AllocsPerRun(50, cycle); n != 0 {
		t.Fatalf("arena steady-state cycle allocates %v times, want 0", n)
	}
}

func TestDedupAddAndContains(t *testing.T) {
	d := NewDedup()
	a := FromInts(50, 1, 2, 3)
	b := FromInts(50, 1, 2, 3)
	c := FromInts(50, 4)
	if !d.Add(a) {
		t.Fatal("first Add reported duplicate")
	}
	if d.Add(b) {
		t.Fatal("equal set reported as new")
	}
	if !d.Contains(b) || d.Contains(c) {
		t.Fatal("Contains wrong")
	}
	if !d.Add(c) {
		t.Fatal("distinct set reported duplicate")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

// Equal-hash-different-content sets must still be distinguished: force the
// fallback by inserting into the same bucket via a handcrafted collision
// check against sets that happen to share a hash. (We cannot cheaply forge
// an FNV collision, so instead verify the bucket scan compares content by
// exercising many near-identical sets — any hash-only implementation would
// collapse distinct sets with equal hashes; the Equal fallback is also
// covered directly by the duplicate checks above.)
func TestDedupManyDistinctSets(t *testing.T) {
	d := NewDedup()
	for i := 0; i < 300; i++ {
		if !d.Add(FromInts(512, i, i+100)) {
			t.Fatalf("set %d reported duplicate", i)
		}
	}
	if d.Len() != 300 {
		t.Fatalf("Len = %d, want 300", d.Len())
	}
	for i := 0; i < 300; i++ {
		if d.Add(FromInts(512, i, i+100)) {
			t.Fatalf("re-adding set %d reported new", i)
		}
	}
	if d.Len() != 300 {
		t.Fatalf("Len after re-adds = %d, want 300", d.Len())
	}
}
