// Package bitset provides a dense, fixed-capacity bit set used throughout
// the miners for row sets (tidsets) and item masks.
//
// Row sets in microarray data are small (tens to a few thousand bits), so a
// dense word-array representation beats sorted slices for the superset and
// intersection tests that dominate rule-group bookkeeping.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to allocate capacity. Methods that combine two sets
// require equal word lengths, which New guarantees for sets of the same
// capacity.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set able to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromWords wraps words as a set of capacity n. The set takes ownership of
// the slice: the caller must not reuse it. len(words) must be exactly the
// word count New(n) would allocate — this lets a decoder carve many sets
// out of one flat allocation (each set's region is disjoint, so the usual
// mutation rules are unchanged).
func FromWords(n int, words []uint64) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	if want := (n + wordBits - 1) / wordBits; len(words) != want {
		panic(fmt.Sprintf("bitset: %d words for capacity %d, want %d", len(words), n, want))
	}
	return &Set{words: words, n: n}
}

// Words returns the set's backing words, least-significant bit first.
// The slice is the live backing store: callers must treat it as read-only.
func (s *Set) Words() []uint64 { return s.words }

// setHeaderBytes sizes a Set header for arena accounting: a slice header
// (three words) plus the capacity int.
const setHeaderBytes = 4 * 8

// Bytes reports the set's backing storage for resource accounting.
func (s *Set) Bytes() int64 { return int64(cap(s.words)) * 8 }

// Carve partitions words into count consecutive sets of capacity n each,
// in two allocations total — the bulk form of FromWords for decoders that
// read many sets as one flat array. The sets take ownership of the slice;
// their word regions are disjoint, so per-set mutation rules are unchanged.
func Carve(n, count int, words []uint64) []*Set {
	if n < 0 || count < 0 {
		panic("bitset: negative capacity or count")
	}
	per := (n + wordBits - 1) / wordBits
	if len(words) != per*count {
		panic(fmt.Sprintf("bitset: %d words for %d sets of capacity %d, want %d", len(words), count, n, per*count))
	}
	backing := make([]Set, count)
	out := make([]*Set, count)
	for i := range backing {
		backing[i] = Set{words: words[i*per : (i+1)*per : (i+1)*per], n: n}
		out[i] = &backing[i]
	}
	return out
}

// FromInts returns a set of capacity n with the given bits set.
func FromInts(n int, xs ...int) *Set {
	s := New(n)
	for _, x := range xs {
		s.Set(x)
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// The combining kernels below (AND/ANDNOT/popcount and friends) process
// four words per iteration. Equal-capacity sets always have equal word
// lengths (New, FromWords and Carve all derive the word count from n), so
// after compat the second operand can be resliced to the first's length —
// that, plus the constant-length four-word windows, lets the compiler
// hoist every bounds check out of the loop body. Same pattern that made
// store.Decode 10-14x.

// Count returns the number of set bits.
func (s *Set) Count() int {
	a := s.words
	n := len(a) &^ 3
	c := 0
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		c += bits.OnesCount64(x[0]) + bits.OnesCount64(x[1]) +
			bits.OnesCount64(x[2]) + bits.OnesCount64(x[3])
	}
	for i := n; i < len(a); i++ {
		c += bits.OnesCount64(a[i])
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Set{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of t (equal capacity required).
func (s *Set) CopyFrom(t *Set) {
	s.compat(t)
	copy(s.words, t.words)
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

func (s *Set) compat(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// And sets s = s ∩ t.
func (s *Set) And(t *Set) {
	s.compat(t)
	a, b := s.words, t.words[:len(s.words)]
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		x[0] &= y[0]
		x[1] &= y[1]
		x[2] &= y[2]
		x[3] &= y[3]
	}
	for i := n; i < len(a); i++ {
		a[i] &= b[i]
	}
}

// Or sets s = s ∪ t.
func (s *Set) Or(t *Set) {
	s.compat(t)
	a, b := s.words, t.words[:len(s.words)]
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		x[0] |= y[0]
		x[1] |= y[1]
		x[2] |= y[2]
		x[3] |= y[3]
	}
	for i := n; i < len(a); i++ {
		a[i] |= b[i]
	}
}

// AndNot sets s = s − t.
func (s *Set) AndNot(t *Set) {
	s.compat(t)
	a, b := s.words, t.words[:len(s.words)]
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		x[0] &^= y[0]
		x[1] &^= y[1]
		x[2] &^= y[2]
		x[3] &^= y[3]
	}
	for i := n; i < len(a); i++ {
		a[i] &^= b[i]
	}
}

// Equal reports whether s and t hold exactly the same bits.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is set in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.compat(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// SupersetOf reports whether every bit of t is set in s.
func (s *Set) SupersetOf(t *Set) bool { return t.SubsetOf(s) }

// ProperSupersetOf reports whether s ⊋ t.
func (s *Set) ProperSupersetOf(t *Set) bool {
	return t.SubsetOf(s) && !s.Equal(t)
}

// Intersects reports whether s ∩ t is non-empty.
func (s *Set) Intersects(t *Set) bool {
	s.compat(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// AndCount returns |s ∩ t| without allocating.
func (s *Set) AndCount(t *Set) int {
	s.compat(t)
	a, b := s.words, t.words[:len(s.words)]
	n := len(a) &^ 3
	c := 0
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		c += bits.OnesCount64(x[0]&y[0]) + bits.OnesCount64(x[1]&y[1]) +
			bits.OnesCount64(x[2]&y[2]) + bits.OnesCount64(x[3]&y[3])
	}
	for i := n; i < len(a); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// OrCount returns |s ∪ t| without allocating.
func (s *Set) OrCount(t *Set) int {
	s.compat(t)
	a, b := s.words, t.words[:len(s.words)]
	n := len(a) &^ 3
	c := 0
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		c += bits.OnesCount64(x[0]|y[0]) + bits.OnesCount64(x[1]|y[1]) +
			bits.OnesCount64(x[2]|y[2]) + bits.OnesCount64(x[3]|y[3])
	}
	for i := n; i < len(a); i++ {
		c += bits.OnesCount64(a[i] | b[i])
	}
	return c
}

// AndTo sets dst = a ∩ b without allocating. All three sets must share one
// capacity; dst may alias a or b.
func AndTo(dst, a, b *Set) {
	dst.compat(a)
	dst.compat(b)
	d, x, y := dst.words, a.words[:len(dst.words)], b.words[:len(dst.words)]
	n := len(d) &^ 3
	for i := 0; i < n; i += 4 {
		dd := d[i : i+4 : i+4]
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		dd[0] = xx[0] & yy[0]
		dd[1] = xx[1] & yy[1]
		dd[2] = xx[2] & yy[2]
		dd[3] = xx[3] & yy[3]
	}
	for i := n; i < len(d); i++ {
		d[i] = x[i] & y[i]
	}
}

// AndNotTo sets dst = a − b without allocating. All three sets must share
// one capacity; dst may alias a or b.
func AndNotTo(dst, a, b *Set) {
	dst.compat(a)
	dst.compat(b)
	d, x, y := dst.words, a.words[:len(dst.words)], b.words[:len(dst.words)]
	n := len(d) &^ 3
	for i := 0; i < n; i += 4 {
		dd := d[i : i+4 : i+4]
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		dd[0] = xx[0] &^ yy[0]
		dd[1] = xx[1] &^ yy[1]
		dd[2] = xx[2] &^ yy[2]
		dd[3] = xx[3] &^ yy[3]
	}
	for i := n; i < len(d); i++ {
		d[i] = x[i] &^ y[i]
	}
}

// AndNotCount returns |s − t| without allocating.
func (s *Set) AndNotCount(t *Set) int {
	s.compat(t)
	a, b := s.words, t.words[:len(s.words)]
	n := len(a) &^ 3
	c := 0
	for i := 0; i < n; i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		c += bits.OnesCount64(x[0]&^y[0]) + bits.OnesCount64(x[1]&^y[1]) +
			bits.OnesCount64(x[2]&^y[2]) + bits.OnesCount64(x[3]&^y[3])
	}
	for i := n; i < len(a); i++ {
		c += bits.OnesCount64(a[i] &^ b[i])
	}
	return c
}

// NextSet returns the index of the first set bit ≥ i, or -1 if none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Ints returns the set bits in ascending order.
func (s *Set) Ints() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// Hash returns an FNV-1a hash of the set contents, suitable for bucketing
// equal-capacity sets.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range s.words {
		for b := 0; b < 8; b++ {
			h ^= (w >> uint(8*b)) & 0xff
			h *= prime
		}
	}
	return h
}

// String renders the set as "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
