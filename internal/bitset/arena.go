package bitset

// Arena allocates Sets whose storage comes from reusable slabs with stack
// (mark/release) discipline. The column enumerators create one tidset per
// surviving child node and drop it on recursion unwind; routing those
// through an arena makes the intersection step allocation-free once the
// slabs reach their high-water size.
//
// Arena-backed sets must not outlive the mark they were allocated under:
// Release recycles their storage. Sets that escape the recursion (emitted
// results, dedup stores) must be Cloned onto the heap first.
type Arena struct {
	words []uint64
	sets  []Set
}

// ArenaMark captures the arena depth at one recursion level.
type ArenaMark struct {
	words, sets int
}

// Mark records the arena state; pass it to Release on unwind.
func (a *Arena) Mark() ArenaMark { return ArenaMark{len(a.words), len(a.sets)} }

// Release recycles every set allocated since m.
func (a *Arena) Release(m ArenaMark) {
	a.words = a.words[:m.words]
	a.sets = a.sets[:m.sets]
}

// Bytes reports the arena's retained backing storage (word slab plus set
// headers) at its high-water size.
func (a *Arena) Bytes() int64 {
	return int64(cap(a.words))*8 + int64(cap(a.sets))*int64(setHeaderBytes)
}

// alloc reserves nw words and one Set header, without zeroing the words.
func (a *Arena) alloc(n, nw int) (*Set, []uint64) {
	lw := len(a.words)
	if lw+nw > cap(a.words) {
		c := 2 * cap(a.words)
		if c < lw+nw {
			c = lw + nw
		}
		if c < 64 {
			c = 64
		}
		nb := make([]uint64, lw, c)
		copy(nb, a.words)
		a.words = nb
	}
	a.words = a.words[:lw+nw]
	w := a.words[lw : lw+nw : lw+nw]

	ls := len(a.sets)
	if ls+1 > cap(a.sets) {
		c := 2 * cap(a.sets)
		if c < ls+1 {
			c = ls + 1
		}
		if c < 16 {
			c = 16
		}
		nb := make([]Set, ls, c)
		copy(nb, a.sets)
		a.sets = nb
	}
	a.sets = a.sets[:ls+1]
	s := &a.sets[ls]
	*s = Set{words: w, n: n}
	return s, w
}

// New returns an empty arena-backed set of capacity n bits.
func (a *Arena) New(n int) *Set {
	s, w := a.alloc(n, (n+wordBits-1)/wordBits)
	clear(w)
	return s
}

// And returns x ∩ y as a new arena-backed set (equal capacities required).
func (a *Arena) And(x, y *Set) *Set {
	x.compat(y)
	s, w := a.alloc(x.n, len(x.words))
	for i := range w {
		w[i] = x.words[i] & y.words[i]
	}
	return s
}

// Copy returns an arena-backed copy of t.
func (a *Arena) Copy(t *Set) *Set {
	s, w := a.alloc(t.n, len(t.words))
	copy(w, t.words)
	return s
}

// Dedup is an insert-only set of Sets, keyed by the FNV word hash with an
// Equal scan as collision fallback. It replaces the String()-keyed maps
// the miners used for row-set deduplication: the hash costs one pass over
// the words instead of a decimal rendering per lookup.
//
// The first set per hash lives inline in the map value (one map entry, no
// per-bucket slice); genuine hash collisions between different sets are
// vanishingly rare and spill to a linearly scanned overflow list.
//
// Dedup retains the Sets passed to Add; callers hand it heap-owned sets
// (or Clone arena-backed ones first).
type Dedup struct {
	m        map[uint64]*Set
	overflow []*Set
	n        int
}

// NewDedup returns an empty Dedup.
func NewDedup() *Dedup { return &Dedup{m: make(map[uint64]*Set)} }

// Add inserts s and reports whether it was not already present.
func (d *Dedup) Add(s *Set) bool {
	h := s.Hash()
	prev, ok := d.m[h]
	if !ok {
		d.m[h] = s
		d.n++
		return true
	}
	if prev.Equal(s) {
		return false
	}
	for _, o := range d.overflow {
		if o.Equal(s) {
			return false
		}
	}
	d.overflow = append(d.overflow, s)
	d.n++
	return true
}

// Contains reports whether an equal set was added before.
func (d *Dedup) Contains(s *Set) bool {
	if prev, ok := d.m[s.Hash()]; ok {
		if prev.Equal(s) {
			return true
		}
		for _, o := range d.overflow {
			if o.Equal(s) {
				return true
			}
		}
	}
	return false
}

// Len returns the number of distinct sets added.
func (d *Dedup) Len() int { return d.n }
