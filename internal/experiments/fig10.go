package experiments

import (
	"fmt"
	"strings"

	"repro/internal/charm"
	"repro/internal/columne"
	"repro/internal/core"
	"repro/internal/synth"
)

// Fig10Row is one minimum-support sweep point of Figure 10: the runtimes of
// the three algorithms (a–e) and FARMER's IRG count (f).
type Fig10Row struct {
	MinSup  int
	FARMER  AlgoResult
	ColumnE AlgoResult
	CHARM   AlgoResult
}

// Fig10Result is one dataset's panel of Figure 10.
type Fig10Result struct {
	Dataset string
	NumPos  int
	Rows    []Fig10Row
}

// Figure10 reproduces one panel of Figure 10 for the given dataset spec:
// runtime vs minimum support with minconf = minchi = 0, plus the IRG counts
// of panel (f).
func Figure10(spec synth.Spec, cfg Config) (*Fig10Result, error) {
	cfg.setDefaults()
	d, err := benchDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	numPos := d.ClassCount(0)
	out := &Fig10Result{Dataset: spec.Name, NumPos: numPos}
	for _, minsup := range minsupSweep(numPos, cfg.Quick) {
		row := Fig10Row{MinSup: minsup}
		if row.FARMER, _, err = runFARMER(d, core.Options{MinSup: minsup}); err != nil {
			return nil, err
		}
		if row.ColumnE, err = runColumnE(d, columne.Options{MinSup: minsup, MaxNodes: cfg.BaselineBudget}); err != nil {
			return nil, err
		}
		if row.CHARM, err = runCHARM(d, charm.Options{MinSup: minsup, MaxNodes: cfg.BaselineBudget}); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the panel as a text table (the paper plots these series on
// a log-scale y axis; who-is-above-whom is the reproduced content).
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — %s: runtime vs minsup (minconf=minchi=0); |C| = %d\n", r.Dataset, r.NumPos)
	fmt.Fprintf(&b, "%8s  %22s  %22s  %22s  %8s\n", "minsup", "FARMER", "ColumnE", "CHARM", "#IRGs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %22s  %22s  %22s  %8d\n",
			row.MinSup, row.FARMER, row.ColumnE, row.CHARM, row.FARMER.Count)
	}
	return b.String()
}
