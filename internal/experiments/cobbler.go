package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cobbler"
	"repro/internal/synth"
)

// CobblerRow is one minsup point of the COBBLER mode comparison.
type CobblerRow struct {
	MinSup   int
	Dynamic  time.Duration
	RowOnly  time.Duration
	FeatOnly time.Duration
	Patterns int
	Switches int64
}

// CobblerResult measures what COBBLER's dynamic row/feature switching buys
// over either enumeration mode alone — the design the FARMER companion talk
// presents as the follow-up system.
type CobblerResult struct {
	Dataset string
	Rows    []CobblerRow
}

// Cobbler runs the three enumeration policies over the minsup sweep.
func Cobbler(spec synth.Spec, cfg Config) (*CobblerResult, error) {
	cfg.setDefaults()
	d, err := benchDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	numPos := d.ClassCount(0)
	out := &CobblerResult{Dataset: spec.Name}
	for _, minsup := range minsupSweep(numPos, true /* always the short sweep */) {
		row := CobblerRow{MinSup: minsup}
		start := time.Now()
		dyn, err := cobbler.Mine(d, cobbler.Options{MinSup: minsup})
		if err != nil {
			return nil, err
		}
		row.Dynamic = time.Since(start)
		row.Patterns = len(dyn.Patterns)
		row.Switches = dyn.Switches

		start = time.Now()
		if _, err := cobbler.Mine(d, cobbler.Options{MinSup: minsup, ForceMode: "row"}); err != nil {
			return nil, err
		}
		row.RowOnly = time.Since(start)

		start = time.Now()
		if _, err := cobbler.Mine(d, cobbler.Options{MinSup: minsup, ForceMode: "feature"}); err != nil {
			return nil, err
		}
		row.FeatOnly = time.Since(start)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (r *CobblerResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "COBBLER — %s: dynamic switching vs forced enumeration modes\n", r.Dataset)
	fmt.Fprintf(&b, "%8s  %14s  %14s  %14s  %10s  %9s\n",
		"minsup", "dynamic", "row only", "feature only", "#patterns", "switches")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %14v  %14v  %14v  %10d  %9d\n",
			row.MinSup, row.Dynamic.Round(10*time.Microsecond),
			row.RowOnly.Round(10*time.Microsecond),
			row.FeatOnly.Round(10*time.Microsecond), row.Patterns, row.Switches)
	}
	return b.String()
}
