package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// The CSV renderers emit plot-ready series (one row per sweep point, one
// column per algorithm, durations in milliseconds, DNF as empty cells) so
// the figures can be regenerated with any plotting tool.

// CSV renders Figure 10's panel as a CSV series.
func (r *Fig10Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset,minsup,farmer_ms,columne_ms,charm_ms,irgs\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%s,%s,%s,%d\n", r.Dataset, row.MinSup,
			csvMillis(row.FARMER), csvMillis(row.ColumnE), csvMillis(row.CHARM),
			row.FARMER.Count)
	}
	return b.String()
}

// CSV renders Figure 11's panel as a CSV series.
func (r *Fig11Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset,minconf,chi0_ms,chi10_ms,irgs_chi0,irgs_chi10\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%.2f,%s,%s,%d,%d\n", r.Dataset, row.MinConf,
			csvMillis(row.Chi0), csvMillis(row.Chi10), row.Chi0.Count, row.Chi10.Count)
	}
	return b.String()
}

// CSV renders Table 2 as CSV.
func (t *Table2Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset,train,test,irg,cba,svm\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.4f,%.4f,%.4f\n",
			r.Dataset, r.NumTrain, r.NumTest, r.IRG, r.CBA, r.SVM)
	}
	return b.String()
}

// CSV renders the scale-up series as CSV.
func (r *ScaleResult) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset,factor,rows,farmer_ms,charm_ms\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%s,%s\n", r.Dataset, row.Factor, row.Rows,
			csvMillis(row.FARMER), csvMillis(row.CHARM))
	}
	return b.String()
}

func csvMillis(a AlgoResult) string {
	if a.DNF {
		return "" // empty cell = did not finish
	}
	return fmt.Sprintf("%.3f", float64(a.Runtime)/float64(time.Millisecond))
}

// Plot renders Figure 10's panel as an ASCII chart with a log-scale y axis
// — the visual shape of the paper's figures in a terminal. DNF points are
// drawn at the top margin with a '^'.
func (r *Fig10Result) Plot() string {
	series := []plotSeries{
		{name: "FARMER", mark: 'F'},
		{name: "ColumnE", mark: 'C'},
		{name: "CHARM", mark: 'H'},
	}
	var xs []string
	var points [][]plotPoint
	for _, row := range r.Rows {
		xs = append(xs, fmt.Sprintf("%d", row.MinSup))
		points = append(points, []plotPoint{
			algoPoint(row.FARMER), algoPoint(row.ColumnE), algoPoint(row.CHARM),
		})
	}
	return renderLogPlot(fmt.Sprintf("Figure 10 — %s (runtime vs minsup, log scale)", r.Dataset),
		"minsup", xs, series, points)
}

// Plot renders Figure 11's panel as an ASCII chart.
func (r *Fig11Result) Plot() string {
	series := []plotSeries{
		{name: "minchi=0", mark: '0'},
		{name: "minchi=10", mark: 'X'},
	}
	var xs []string
	var points [][]plotPoint
	for _, row := range r.Rows {
		xs = append(xs, fmt.Sprintf("%.2f", row.MinConf))
		points = append(points, []plotPoint{algoPoint(row.Chi0), algoPoint(row.Chi10)})
	}
	return renderLogPlot(fmt.Sprintf("Figure 11 — %s (runtime vs minconf, log scale)", r.Dataset),
		"minconf", xs, series, points)
}

type plotSeries struct {
	name string
	mark byte
}

type plotPoint struct {
	millis float64
	dnf    bool
}

func algoPoint(a AlgoResult) plotPoint {
	return plotPoint{millis: float64(a.Runtime) / float64(time.Millisecond), dnf: a.DNF}
}

// renderLogPlot draws a small fixed-height chart: y = log10(ms), one column
// block per x value.
func renderLogPlot(title, xlabel string, xs []string, series []plotSeries, points [][]plotPoint) string {
	const height = 12
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ps := range points {
		for _, p := range ps {
			if p.dnf || p.millis <= 0 {
				continue
			}
			v := math.Log10(p.millis)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) { // nothing finished
		lo, hi = 0, 1
	}
	if hi-lo < 1e-9 {
		hi = lo + 1
	}
	colWidth := 0
	for _, x := range xs {
		if len(x) > colWidth {
			colWidth = len(x)
		}
	}
	colWidth += 2

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(xs)*colWidth))
	}
	put := func(col, row int, mark byte) {
		pos := col*colWidth + colWidth/2
		if grid[row][pos] == ' ' {
			grid[row][pos] = mark
		} else {
			grid[row][pos] = '*' // overlapping series
		}
	}
	for ci, ps := range points {
		for si, p := range ps {
			if p.dnf {
				put(ci, 0, '^')
				continue
			}
			if p.millis <= 0 {
				continue
			}
			frac := (math.Log10(p.millis) - lo) / (hi - lo)
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			put(ci, row, series[si].mark)
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	for i, line := range grid {
		v := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%8.1fms |%s\n", math.Pow(10, v), string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", len(xs)*colWidth))
	fmt.Fprintf(&b, "%10s  ", "")
	for _, x := range xs {
		fmt.Fprintf(&b, "%*s", colWidth, x)
	}
	b.WriteString("   <- " + xlabel + "\n")
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", s.mark, s.name)
	}
	b.WriteString("            " + strings.Join(legend, "  ") + "  ^=DNF  *=overlap\n")
	return b.String()
}
