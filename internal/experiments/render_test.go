package experiments

import (
	"strings"
	"testing"
	"time"
)

func fakeFig10() *Fig10Result {
	return &Fig10Result{
		Dataset: "CT",
		NumPos:  12,
		Rows: []Fig10Row{
			{MinSup: 10,
				FARMER:  AlgoResult{Runtime: 2 * time.Millisecond, Count: 30},
				ColumnE: AlgoResult{Runtime: 300 * time.Microsecond, Count: 30},
				CHARM:   AlgoResult{Runtime: 7 * time.Millisecond, Count: 400}},
			{MinSup: 2,
				FARMER:  AlgoResult{Runtime: 90 * time.Millisecond, Count: 270},
				ColumnE: AlgoResult{Runtime: 600 * time.Millisecond, DNF: true},
				CHARM:   AlgoResult{Runtime: 900 * time.Millisecond, Count: 28000}},
		},
	}
}

func TestFig10CSV(t *testing.T) {
	csv := fakeFig10().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "dataset,minsup,farmer_ms,columne_ms,charm_ms,irgs" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "CT,10,2.000,0.300,7.000,30") {
		t.Fatalf("row = %q", lines[1])
	}
	// DNF renders as an empty cell.
	if !strings.Contains(lines[2], ",90.000,,900.000,") {
		t.Fatalf("DNF row = %q", lines[2])
	}
}

func TestFig11CSVAndPlot(t *testing.T) {
	r := &Fig11Result{
		Dataset: "BC",
		Rows: []Fig11Row{
			{MinConf: 0, Chi0: AlgoResult{Runtime: 73 * time.Millisecond, Count: 745},
				Chi10: AlgoResult{Runtime: 42 * time.Millisecond, Count: 4}},
			{MinConf: 0.9, Chi0: AlgoResult{Runtime: 4 * time.Millisecond, Count: 20},
				Chi10: AlgoResult{Runtime: 3 * time.Millisecond, Count: 3}},
		},
	}
	csv := r.CSV()
	if !strings.Contains(csv, "BC,0.00,73.000,42.000,745,4") {
		t.Fatalf("CSV = %q", csv)
	}
	plot := r.Plot()
	if !strings.Contains(plot, "Figure 11 — BC") || !strings.Contains(plot, "minchi=10") {
		t.Fatalf("plot missing pieces:\n%s", plot)
	}
}

func TestFig10Plot(t *testing.T) {
	plot := fakeFig10().Plot()
	for _, frag := range []string{"Figure 10 — CT", "F=FARMER", "^=DNF", "minsup"} {
		if !strings.Contains(plot, frag) {
			t.Fatalf("plot missing %q:\n%s", frag, plot)
		}
	}
	// The DNF marker must appear (ColumnE at minsup=2).
	if !strings.Contains(plot, "^") {
		t.Fatalf("DNF marker missing:\n%s", plot)
	}
	// Log axis: top label larger than bottom label.
	lines := strings.Split(plot, "\n")
	if !strings.Contains(lines[1], "ms |") {
		t.Fatalf("axis missing:\n%s", plot)
	}
}

func TestTable2CSV(t *testing.T) {
	r := &Table2Result{Rows: []Table2Row{
		{Dataset: "CT", NumTrain: 47, NumTest: 15, IRG: 0.8667, CBA: 0.8667, SVM: 0.9333},
	}}
	csv := r.CSV()
	if !strings.Contains(csv, "CT,47,15,0.8667,0.8667,0.9333") {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestScaleCSV(t *testing.T) {
	r := &ScaleResult{Dataset: "CT", MinSup: 6, Rows: []ScaleRow{
		{Factor: 2, Rows: 36,
			FARMER: AlgoResult{Runtime: 178 * time.Millisecond, Count: 226},
			CHARM:  AlgoResult{Runtime: 95 * time.Millisecond, Count: 20617}},
	}}
	if !strings.Contains(r.CSV(), "CT,2,36,178.000,95.000") {
		t.Fatalf("CSV = %q", r.CSV())
	}
}

func TestPlotAllDNF(t *testing.T) {
	r := &Fig10Result{Dataset: "X", Rows: []Fig10Row{
		{MinSup: 1,
			FARMER:  AlgoResult{DNF: true},
			ColumnE: AlgoResult{DNF: true},
			CHARM:   AlgoResult{DNF: true}},
	}}
	plot := r.Plot() // must not panic on an all-DNF panel
	if !strings.Contains(plot, "^") {
		t.Fatalf("plot = %s", plot)
	}
}
