package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/synth"
)

// AblationRow is FARMER's effort with one pruning configuration. The three
// counter columns attribute the work saved to each strategy: rows folded in
// by pruning 1, subtrees cut by pruning 2's back scan, and subtrees cut by
// pruning 3's support/confidence/chi bounds.
type AblationRow struct {
	Variant  string
	Runtime  time.Duration
	Nodes    int64
	Absorbed int64
	BackScan int64
	Bounds   int64
	Groups   int
}

// AblationResult measures the contribution of each pruning strategy —
// the design choices §3.2 argues are "essential for the efficiency".
type AblationResult struct {
	Dataset string
	MinSup  int
	MinConf float64
	Rows    []AblationRow
}

// Ablation runs FARMER with each pruning strategy disabled in turn (and all
// disabled) at a representative constraint setting. Disabling never changes
// the mined groups — only the work.
func Ablation(spec synth.Spec, cfg Config) (*AblationResult, error) {
	cfg.setDefaults()
	d, err := benchDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	numPos := d.ClassCount(0)
	minsup := numPos / 3
	if minsup < 1 {
		minsup = 1
	}
	const minconf = 0.8
	out := &AblationResult{Dataset: spec.Name, MinSup: minsup, MinConf: minconf}
	variants := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"full pruning", func(o *core.Options) {}},
		{"no pruning 1 (Y absorption)", func(o *core.Options) { o.DisablePruning1 = true }},
		{"no pruning 2 (back scan)", func(o *core.Options) { o.DisablePruning2 = true }},
		{"no pruning 3 (bounds)", func(o *core.Options) { o.DisablePruning3 = true }},
		{"no pruning at all", func(o *core.Options) {
			o.DisablePruning1, o.DisablePruning2, o.DisablePruning3 = true, true, true
		}},
	}
	for _, v := range variants {
		opt := core.Options{MinSup: minsup, MinConf: minconf}
		v.mut(&opt)
		start := time.Now()
		res, err := core.Mine(d, 0, opt)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{
			Variant:  v.name,
			Runtime:  time.Since(start),
			Nodes:    res.Stats().NodesVisited,
			Absorbed: res.Stats().RowsAbsorbed,
			BackScan: res.Stats().PrunedBackScan,
			Bounds: res.Stats().PrunedLooseBound + res.Stats().PrunedTightBound +
				res.Stats().PrunedChiBound + res.Stats().PrunedGainBound,
			Groups: len(res.Groups),
		})
	}
	return out, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s: pruning strategies at minsup=%d minconf=%.2f\n",
		r.Dataset, r.MinSup, r.MinConf)
	fmt.Fprintf(&b, "%-30s  %14s  %12s  %10s  %10s  %10s  %8s\n",
		"variant", "runtime", "nodes", "absorbed", "backscan", "bounds", "groups")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-30s  %14v  %12d  %10d  %10d  %10d  %8d\n",
			row.Variant, row.Runtime.Round(10*time.Microsecond),
			row.Nodes, row.Absorbed, row.BackScan, row.Bounds, row.Groups)
	}
	return b.String()
}
