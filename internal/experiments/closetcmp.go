package experiments

import (
	"fmt"
	"strings"

	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/synth"
)

// ClosetRow is one minsup point of the CHARM vs CLOSET+ side comparison.
type ClosetRow struct {
	MinSup int
	CHARM  AlgoResult
	CLOSET AlgoResult
}

// ClosetResult backs the paper's §4.1 remark that "CHARM is always orders
// of magnitude faster than CLOSET+ on the microarray datasets and thus we
// do not report the CLOSET+ results".
type ClosetResult struct {
	Dataset string
	Rows    []ClosetRow
}

// ClosetComparison runs the two closed-set miners over the minsup sweep.
func ClosetComparison(spec synth.Spec, cfg Config) (*ClosetResult, error) {
	cfg.setDefaults()
	d, err := benchDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	numPos := d.ClassCount(0)
	out := &ClosetResult{Dataset: spec.Name}
	for _, minsup := range minsupSweep(numPos, cfg.Quick) {
		row := ClosetRow{MinSup: minsup}
		if row.CHARM, err = runCHARM(d, charm.Options{MinSup: minsup, MaxNodes: cfg.BaselineBudget}); err != nil {
			return nil, err
		}
		if row.CLOSET, err = runCLOSET(d, closet.Options{MinSup: minsup, MaxNodes: cfg.BaselineBudget}); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the comparison.
func (r *ClosetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CHARM vs CLOSET+ — %s (the paper's unreported baseline)\n", r.Dataset)
	fmt.Fprintf(&b, "%8s  %22s  %22s\n", "minsup", "CHARM", "CLOSET+")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %22s  %22s\n", row.MinSup, row.CHARM, row.CLOSET)
	}
	return b.String()
}
