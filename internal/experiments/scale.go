package experiments

import (
	"fmt"
	"strings"

	"repro/internal/charm"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/synth"
)

// ScaleRow is one replication factor's outcome.
type ScaleRow struct {
	Factor int
	Rows   int
	FARMER AlgoResult
	CHARM  AlgoResult
}

// ScaleResult is the §4.1 scale-up experiment for one dataset.
type ScaleResult struct {
	Dataset string
	MinSup  int
	Rows    []ScaleRow
}

// ScaleUp reproduces the row-replication experiment referenced in §4.1
// (details in the authors' technical report [6]): each dataset is
// replicated k times and FARMER is compared against CHARM at a minimum
// support that scales with the replication (so the relative threshold is
// constant). The paper's observation — FARMER still wins at 5–10× — is the
// reproduced shape.
func ScaleUp(spec synth.Spec, factors []int, cfg Config) (*ScaleResult, error) {
	cfg.setDefaults()
	base, err := benchDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	numPos := base.ClassCount(0)
	baseMinsup := numPos / 2
	if baseMinsup < 2 {
		baseMinsup = 2
	}
	out := &ScaleResult{Dataset: spec.Name, MinSup: baseMinsup}
	for _, k := range factors {
		if k < 1 {
			return nil, fmt.Errorf("experiments: replication factor %d", k)
		}
		d := dataset.Replicate(base, k)
		row := ScaleRow{Factor: k, Rows: d.NumRows()}
		if row.FARMER, _, err = runFARMER(d, core.Options{MinSup: baseMinsup * k}); err != nil {
			return nil, err
		}
		if row.CHARM, err = runCHARM(d, charm.Options{MinSup: baseMinsup * k, MaxNodes: cfg.BaselineBudget}); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the scale-up series.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale-up — %s: replication factor vs runtime (minsup scales with factor, base %d)\n",
		r.Dataset, r.MinSup)
	fmt.Fprintf(&b, "%8s  %8s  %22s  %22s\n", "factor", "rows", "FARMER", "CHARM")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %8d  %22s  %22s\n", row.Factor, row.Rows, row.FARMER, row.CHARM)
	}
	return b.String()
}
