package experiments

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func quickCfg() Config {
	return Config{Quick: true, BaselineBudget: 500_000}
}

func ctSpec(t *testing.T) synth.Spec {
	t.Helper()
	s, ok := synth.BenchSpec("CT")
	if !ok {
		t.Fatal("CT bench spec missing")
	}
	return s
}

func TestMinsupSweep(t *testing.T) {
	sweep := minsupSweep(20, false)
	if len(sweep) == 0 {
		t.Fatal("empty sweep")
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i-1] <= sweep[i] {
			t.Fatalf("sweep not descending: %v", sweep)
		}
	}
	if sweep[0] != 18 {
		t.Fatalf("sweep[0] = %d, want 18", sweep[0])
	}
	// Tiny class sizes collapse but never go below 1.
	for _, v := range minsupSweep(2, false) {
		if v < 1 {
			t.Fatalf("sweep has %d", v)
		}
	}
}

func TestFigure10Quick(t *testing.T) {
	res, err := Figure10(ctSpec(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no sweep rows")
	}
	for _, row := range res.Rows {
		if row.FARMER.DNF {
			t.Fatalf("FARMER DNF at minsup %d", row.MinSup)
		}
		// ColumnE and FARMER count the same rule groups when both finish.
		if !row.ColumnE.DNF && row.ColumnE.Count != row.FARMER.Count {
			t.Fatalf("minsup %d: ColumnE %d groups, FARMER %d",
				row.MinSup, row.ColumnE.Count, row.FARMER.Count)
		}
	}
	// IRG count is non-increasing in minsup (sweep is descending minsup,
	// so counts must be non-decreasing down the rows).
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].FARMER.Count < res.Rows[i-1].FARMER.Count {
			t.Fatalf("IRG count decreased when minsup dropped: %+v", res.Rows)
		}
	}
	if !strings.Contains(res.Render(), "Figure 10") {
		t.Fatal("render missing header")
	}
}

func TestFigure11Quick(t *testing.T) {
	res, err := Figure11(ctSpec(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3 (quick sweep)", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The chi-square constraint can only shrink the result set.
		if row.Chi10.Count > row.Chi0.Count {
			t.Fatalf("minchi=10 grew the IRG set at minconf %v", row.MinConf)
		}
	}
	// #IRGs non-increasing in minconf.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Chi0.Count > res.Rows[i-1].Chi0.Count {
			t.Fatalf("IRG count grew with minconf: %+v", res.Rows)
		}
	}
	if !strings.Contains(res.Render(), "minchi=10") {
		t.Fatal("render missing series")
	}
}

func TestTable1Render(t *testing.T) {
	s := Table1(synth.PaperSpecs())
	for _, name := range []string{"BC", "LC", "CT", "PC", "ALL", "24481", "relapse"} {
		if !strings.Contains(s, name) {
			t.Fatalf("Table 1 missing %q:\n%s", name, s)
		}
	}
}

func TestTable2OnBenchScale(t *testing.T) {
	// Bench-scale specs keep the test fast; the full-size run happens in
	// cmd/experiments and the benchmarks.
	res, err := Table2([]synth.Spec{ctSpec(t)}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	r := res.Rows[0]
	if r.NumTrain+r.NumTest != ctSpec(t).Rows {
		t.Fatalf("split sizes %d+%d != %d", r.NumTrain, r.NumTest, ctSpec(t).Rows)
	}
	for _, acc := range []float64{r.IRG, r.CBA, r.SVM} {
		if acc < 0 || acc > 1 {
			t.Fatalf("accuracy %v outside [0,1]", acc)
		}
	}
	irg, cba, svm := res.Averages()
	if irg != r.IRG || cba != r.CBA || svm != r.SVM {
		t.Fatal("single-row averages wrong")
	}
	if !strings.Contains(res.Render(), "Average") {
		t.Fatal("render missing average row")
	}
}

func TestTrainSizeMapping(t *testing.T) {
	// Paper-size CT: exact split 47/15.
	full, _ := synth.PaperSpec("CT")
	if got := trainSize(full); got != 47 {
		t.Fatalf("full CT train size = %d, want 47", got)
	}
	// Scaled CT: proportional.
	bench, _ := synth.BenchSpec("CT")
	got := trainSize(bench)
	if got < 2 || got >= bench.Rows-1 {
		t.Fatalf("bench CT train size %d outside sane range", got)
	}
	// Unknown dataset: 2/3 heuristic.
	if got := trainSize(synth.Spec{Name: "zz", Rows: 30}); got != 20 {
		t.Fatalf("unknown spec train size = %d, want 20", got)
	}
}

func TestScaleUpQuick(t *testing.T) {
	res, err := ScaleUp(ctSpec(t), []int{1, 2}, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	if res.Rows[1].Rows != 2*res.Rows[0].Rows {
		t.Fatal("replication row counts wrong")
	}
	if _, err := ScaleUp(ctSpec(t), []int{0}, quickCfg()); err == nil {
		t.Fatal("factor 0 accepted")
	}
	if !strings.Contains(res.Render(), "Scale-up") {
		t.Fatal("render missing header")
	}
}

func TestAblationQuick(t *testing.T) {
	res, err := Ablation(ctSpec(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d variants, want 5", len(res.Rows))
	}
	full := res.Rows[0]
	for _, row := range res.Rows[1:] {
		if row.Groups != full.Groups {
			t.Fatalf("ablation changed results: %s found %d groups, full %d",
				row.Variant, row.Groups, full.Groups)
		}
		if row.Nodes < full.Nodes {
			t.Fatalf("disabling pruning reduced nodes: %s %d < %d",
				row.Variant, row.Nodes, full.Nodes)
		}
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Fatal("render missing header")
	}
}

func TestClosetComparisonQuick(t *testing.T) {
	res, err := ClosetComparison(ctSpec(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if !row.CHARM.DNF && !row.CLOSET.DNF && row.CHARM.Count != row.CLOSET.Count {
			t.Fatalf("closed-set counts disagree at minsup %d: %d vs %d",
				row.MinSup, row.CHARM.Count, row.CLOSET.Count)
		}
	}
	if !strings.Contains(res.Render(), "CLOSET") {
		t.Fatal("render missing header")
	}
}

func TestCobblerQuick(t *testing.T) {
	res, err := Cobbler(ctSpec(t), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.Patterns <= 0 && row.MinSup <= 4 {
			t.Fatalf("no patterns at minsup %d", row.MinSup)
		}
	}
	if !strings.Contains(res.Render(), "COBBLER") {
		t.Fatal("render missing header")
	}
}

func TestAlgoResultString(t *testing.T) {
	if s := (AlgoResult{DNF: true}).String(); !strings.Contains(s, "DNF") {
		t.Fatalf("DNF render = %q", s)
	}
	if s := (AlgoResult{Count: 7}).String(); !strings.Contains(s, "(7)") {
		t.Fatalf("count render = %q", s)
	}
}
