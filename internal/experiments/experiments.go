// Package experiments regenerates every table and figure of the FARMER
// paper's evaluation (§4) on the synthetic stand-ins for the five clinical
// microarray datasets:
//
//	Table 1     dataset characteristics
//	Figure 10   runtime vs minimum support (FARMER / ColumnE / CHARM) and
//	            number of IRGs vs minimum support
//	Figure 11   runtime and #IRGs vs minimum confidence at minsup = 1, with
//	            and without the chi-square constraint (minchi = 10)
//	Table 2     classification accuracy (IRG classifier / CBA / SVM)
//	Scale-up    runtime as datasets are replicated 2–10× (§4.1, ref [6])
//	Ablation    effect of pruning strategies 1–3 (DESIGN.md design-choice
//	            benches; not a paper figure)
//
// Absolute times differ from the paper's 2004 hardware; the reproduced
// claims are the runtime ORDERINGS and TRENDS. Baselines run under a work
// budget and report DNF ("did not finish"), mirroring how the paper's plots
// cut off CHARM (out of memory) and ColumnE (>1 day).
package experiments

import (
	"fmt"
	"time"

	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/columne"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/synth"
)

// Config tunes an experiment run.
type Config struct {
	// Buckets is the equal-depth bucket count for the efficiency
	// experiments. Default 10 (the paper's setting).
	Buckets int

	// BaselineBudget is the work budget handed to ColumnE, CHARM and the
	// CLOSET-style miner; a run that exhausts it is reported DNF.
	// Default 5,000,000 (a few seconds per run).
	BaselineBudget int64

	// Quick shrinks the sweeps (used by tests and -short benchmarks).
	Quick bool
}

func (c *Config) setDefaults() {
	if c.Buckets == 0 {
		c.Buckets = 10
	}
	if c.BaselineBudget == 0 {
		c.BaselineBudget = 5_000_000
	}
}

// AlgoResult is one algorithm's outcome at one sweep point.
type AlgoResult struct {
	Runtime time.Duration
	Count   int  // IRGs (FARMER/ColumnE) or closed sets (CHARM/CLOSET)
	DNF     bool // work budget exhausted before completion
}

func (a AlgoResult) String() string {
	if a.DNF {
		return fmt.Sprintf("DNF(>%v)", a.Runtime.Round(time.Millisecond))
	}
	return fmt.Sprintf("%v (%d)", a.Runtime.Round(10*time.Microsecond), a.Count)
}

// benchDataset generates the equal-depth-discretized dataset for a spec.
func benchDataset(spec synth.Spec, cfg Config) (*dataset.Dataset, error) {
	return spec.GenerateDiscrete(cfg.Buckets)
}

// runFARMER times one FARMER invocation (including lower bounds, as the
// paper's reported runtimes do).
func runFARMER(d *dataset.Dataset, opt core.Options) (AlgoResult, *core.Result, error) {
	opt.ComputeLowerBounds = true
	start := time.Now()
	res, err := core.Mine(d, 0, opt)
	if err != nil {
		return AlgoResult{}, nil, err
	}
	return AlgoResult{Runtime: time.Since(start), Count: len(res.Groups)}, res, nil
}

// runColumnE times one ColumnE invocation under the work budget.
func runColumnE(d *dataset.Dataset, opt columne.Options) (AlgoResult, error) {
	start := time.Now()
	res, err := columne.Mine(d, 0, opt)
	elapsed := time.Since(start)
	if err == columne.ErrBudget {
		return AlgoResult{Runtime: elapsed, DNF: true}, nil
	}
	if err != nil {
		return AlgoResult{}, err
	}
	return AlgoResult{Runtime: elapsed, Count: len(res.Rules)}, nil
}

// runCHARM times one CHARM invocation under the work budget.
func runCHARM(d *dataset.Dataset, opt charm.Options) (AlgoResult, error) {
	start := time.Now()
	res, err := charm.Mine(d, opt)
	elapsed := time.Since(start)
	if err == charm.ErrBudget {
		return AlgoResult{Runtime: elapsed, DNF: true}, nil
	}
	if err != nil {
		return AlgoResult{}, err
	}
	return AlgoResult{Runtime: elapsed, Count: len(res.Closed)}, nil
}

// runCLOSET times one CLOSET-style invocation under the work budget.
func runCLOSET(d *dataset.Dataset, opt closet.Options) (AlgoResult, error) {
	start := time.Now()
	res, err := closet.Mine(d, opt)
	elapsed := time.Since(start)
	if err == closet.ErrBudget {
		return AlgoResult{Runtime: elapsed, DNF: true}, nil
	}
	if err != nil {
		return AlgoResult{}, err
	}
	return AlgoResult{Runtime: elapsed, Count: len(res.Closed)}, nil
}

// minsupSweep derives the absolute minimum-support sweep for a dataset from
// its consequent-class size, highest first (the paper sweeps right to left).
func minsupSweep(numPos int, quick bool) []int {
	fracs := []float64{0.9, 0.7, 0.5, 0.35, 0.25, 0.15}
	if quick {
		fracs = []float64{0.9, 0.5, 0.25}
	}
	var out []int
	seen := map[int]bool{}
	for _, f := range fracs {
		v := int(f * float64(numPos))
		if v < 1 {
			v = 1
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// minconfSweep is the Figure 11 x-axis.
func minconfSweep(quick bool) []float64 {
	if quick {
		return []float64{0, 0.8, 0.99}
	}
	return []float64{0, 0.5, 0.7, 0.8, 0.85, 0.9, 0.99}
}
