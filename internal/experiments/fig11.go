package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/synth"
)

// Fig11ChiThreshold is the chi-square constraint of Figure 11's second line
// (the paper's minchi = 10 setting).
const Fig11ChiThreshold = 10.0

// Fig11Row is one minimum-confidence sweep point of Figure 11, at minsup=1,
// with and without the chi-square constraint.
type Fig11Row struct {
	MinConf float64
	Chi0    AlgoResult // minchi = 0
	Chi10   AlgoResult // minchi = Fig11ChiThreshold
}

// Fig11Result is one dataset's panel of Figure 11.
type Fig11Result struct {
	Dataset string
	Rows    []Fig11Row
}

// Figure11 reproduces one panel of Figure 11: FARMER runtime vs minimum
// confidence at minsup = 1, one series per chi-square setting, plus the
// IRG counts of panel (f).
func Figure11(spec synth.Spec, cfg Config) (*Fig11Result, error) {
	cfg.setDefaults()
	d, err := benchDataset(spec, cfg)
	if err != nil {
		return nil, err
	}
	out := &Fig11Result{Dataset: spec.Name}
	for _, minconf := range minconfSweep(cfg.Quick) {
		row := Fig11Row{MinConf: minconf}
		if row.Chi0, _, err = runFARMER(d, core.Options{MinSup: 1, MinConf: minconf}); err != nil {
			return nil, err
		}
		if row.Chi10, _, err = runFARMER(d, core.Options{MinSup: 1, MinConf: minconf, MinChi: Fig11ChiThreshold}); err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the panel as a text table.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — %s: FARMER runtime vs minconf (minsup=1)\n", r.Dataset)
	fmt.Fprintf(&b, "%8s  %22s  %22s  %10s  %10s\n",
		"minconf", "minchi=0", "minchi=10", "#IRGs(0)", "#IRGs(10)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f  %22s  %22s  %10d  %10d\n",
			row.MinConf, row.Chi0, row.Chi10, row.Chi0.Count, row.Chi10.Count)
	}
	return b.String()
}
