package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/classify"
	"repro/internal/synth"
)

// Table1 renders the dataset-characteristics table for the given specs in
// the paper's layout.
func Table1(specs []synth.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Microarray datasets\n")
	fmt.Fprintf(&b, "%-8s %7s %7s %-12s %-12s %14s\n",
		"dataset", "#row", "#col", "class 1", "class 0", "#row of class1")
	for _, s := range specs {
		fmt.Fprintf(&b, "%-8s %7d %7d %-12s %-12s %14d\n",
			s.Name, s.Rows, s.Cols, s.ClassNames[0], s.ClassNames[1], s.Class1Rows)
	}
	return b.String()
}

// Table2Splits holds the paper's fixed train/test sizes per dataset
// (Table 2: #training / #test).
var Table2Splits = map[string][2]int{
	"BC":  {78, 19},
	"LC":  {32, 149},
	"CT":  {47, 15},
	"PC":  {102, 34},
	"ALL": {38, 34},
}

// Table2Row is one dataset's classifier comparison.
type Table2Row struct {
	Dataset       string
	NumTrain      int
	NumTest       int
	IRG, CBA, SVM float64
	TrainTime     time.Duration // total wall time for the three classifiers
}

// Table2Result is the classification study.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 reproduces the classification experiment: per dataset, train the
// IRG classifier and CBA on the entropy-discretized training rows, the SVM
// on the standardized continuous rows, and report test accuracy. Splits
// follow the paper's absolute sizes, scaled proportionally if the spec's
// row count differs from the paper's.
func Table2(specs []synth.Spec, cfg Config) (*Table2Result, error) {
	cfg.setDefaults()
	out := &Table2Result{}
	for _, spec := range specs {
		m, err := spec.Generate()
		if err != nil {
			return nil, err
		}
		nTrain := trainSize(spec)
		sp, err := classify.StratifiedSplit(m.Labels, 2, nTrain)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Dataset: spec.Name, NumTrain: len(sp.Train), NumTest: len(sp.Test)}
		start := time.Now()
		if row.IRG, err = classify.EvaluateIRG(m, sp, classify.IRGOptions{}); err != nil {
			return nil, err
		}
		if row.CBA, err = classify.EvaluateCBA(m, sp, classify.CBAOptions{}); err != nil {
			return nil, err
		}
		if row.SVM, err = classify.EvaluateSVM(m, sp, classify.SVMOptions{}); err != nil {
			return nil, err
		}
		row.TrainTime = time.Since(start)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// trainSize maps the paper's absolute split onto the spec's row count.
func trainSize(spec synth.Spec) int {
	split, ok := Table2Splits[spec.Name]
	if !ok {
		return spec.Rows * 2 / 3
	}
	paperRows := split[0] + split[1]
	if spec.Rows == paperRows {
		return split[0]
	}
	n := spec.Rows * split[0] / paperRows
	if n < 2 {
		n = 2
	}
	if n >= spec.Rows-1 {
		n = spec.Rows - 2
	}
	return n
}

// Averages returns the mean accuracy of each classifier across rows.
func (t *Table2Result) Averages() (irg, cba, svm float64) {
	if len(t.Rows) == 0 {
		return 0, 0, 0
	}
	for _, r := range t.Rows {
		irg += r.IRG
		cba += r.CBA
		svm += r.SVM
	}
	n := float64(len(t.Rows))
	return irg / n, cba / n, svm / n
}

// Render prints the table in the paper's layout.
func (t *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Classification results\n")
	fmt.Fprintf(&b, "%-8s %9s %7s %14s %8s %8s\n",
		"dataset", "#training", "#test", "IRG classifier", "CBA", "SVM")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-8s %9d %7d %13.2f%% %7.2f%% %7.2f%%\n",
			r.Dataset, r.NumTrain, r.NumTest, 100*r.IRG, 100*r.CBA, 100*r.SVM)
	}
	irg, cba, svm := t.Averages()
	fmt.Fprintf(&b, "%-8s %9s %7s %13.2f%% %7.2f%% %7.2f%%\n",
		"Average", "", "", 100*irg, 100*cba, 100*svm)
	return b.String()
}
