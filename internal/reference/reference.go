// Package reference provides brute-force implementations of rule-group,
// closed-itemset and lower-bound mining by exhaustive row-subset and
// item-subset enumeration. They are exponential and intended purely as
// correctness oracles for property tests over tiny datasets (≤ ~16 rows).
package reference

import (
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// RuleGroup mirrors core.RuleGroup with just the fields the oracles check.
type RuleGroup struct {
	Antecedent []dataset.Item
	Rows       []int // R(Antecedent), ascending
	SupPos     int
	SupNeg     int
	Confidence float64
	Chi        float64
}

// AllRuleGroups enumerates every rule group with the given consequent by
// exhausting row subsets: each nonempty subset X yields the group with
// upper bound I(X) and antecedent support set R(I(X)). Groups are deduped
// by their row support set and returned sorted by ascending antecedent.
func AllRuleGroups(d *dataset.Dataset, consequent int) []RuleGroup {
	n := len(d.Rows)
	if n > 22 {
		panic("reference: dataset too large for brute force")
	}
	seen := map[uint64][]*bitset.Set{}
	var out []RuleGroup
	for mask := 1; mask < 1<<n; mask++ {
		var rows []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				rows = append(rows, i)
			}
		}
		a := dataset.CommonItems(d, rows)
		if len(a) == 0 {
			continue
		}
		sup := dataset.SupportSet(d, a)
		h := sup.Hash()
		dup := false
		for _, prev := range seen[h] {
			if prev.Equal(sup) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], sup)
		out = append(out, makeGroup(d, consequent, a, sup))
	}
	sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Antecedent, out[j].Antecedent) })
	return out
}

func makeGroup(d *dataset.Dataset, consequent int, a []dataset.Item, sup *bitset.Set) RuleGroup {
	g := RuleGroup{Antecedent: append([]dataset.Item(nil), a...), Rows: sup.Ints()}
	for _, ri := range g.Rows {
		if d.Rows[ri].Class == consequent {
			g.SupPos++
		} else {
			g.SupNeg++
		}
	}
	tot := g.SupPos + g.SupNeg
	if tot > 0 {
		g.Confidence = float64(g.SupPos) / float64(tot)
	}
	g.Chi = stats.Chi2(tot, g.SupPos, len(d.Rows), d.ClassCount(consequent))
	return g
}

// Constraints mirrors core.Options' measure thresholds for the oracle.
// Zero values disable each constraint (MinSup defaults to 1).
type Constraints struct {
	MinSup         int
	MinConf        float64
	MinChi         float64
	MinLift        float64
	MinConviction  float64
	MinEntropyGain float64
	MinGiniGain    float64
}

// IRGs selects, from all rule groups, the interesting ones under FARMER's
// step-7 semantics: process groups in ascending antecedent-size order; keep
// a constraint-satisfying group iff every kept group with a strictly more
// general antecedent has strictly lower confidence.
func IRGs(d *dataset.Dataset, consequent, minsup int, minconf, minchi float64) []RuleGroup {
	return IRGsConstrained(d, consequent, Constraints{MinSup: minsup, MinConf: minconf, MinChi: minchi})
}

// IRGsConstrained is IRGs with the full constraint set of footnote 3.
func IRGsConstrained(d *dataset.Dataset, consequent int, c Constraints) []RuleGroup {
	if c.MinSup < 1 {
		c.MinSup = 1
	}
	n := len(d.Rows)
	m := d.ClassCount(consequent)
	all := AllRuleGroups(d, consequent)
	sort.SliceStable(all, func(i, j int) bool {
		return len(all[i].Antecedent) < len(all[j].Antecedent)
	})
	var kept []RuleGroup
	for _, g := range all {
		x, y := g.SupPos+g.SupNeg, g.SupPos
		switch {
		case g.SupPos < c.MinSup,
			g.Confidence < c.MinConf,
			c.MinChi > 0 && g.Chi < c.MinChi,
			c.MinLift > 0 && stats.Lift(x, y, n, m) < c.MinLift,
			c.MinConviction > 0 && stats.Conviction(x, y, n, m) < c.MinConviction,
			c.MinEntropyGain > 0 && stats.EntropyGain(x, y, n, m) < c.MinEntropyGain,
			c.MinGiniGain > 0 && stats.GiniGain(x, y, n, m) < c.MinGiniGain:
			continue
		}
		interesting := true
		for _, p := range kept {
			if properSubsetItems(p.Antecedent, g.Antecedent) && p.Confidence >= g.Confidence {
				interesting = false
				break
			}
		}
		if interesting {
			kept = append(kept, g)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return lessItems(kept[i].Antecedent, kept[j].Antecedent) })
	return kept
}

// ClosedSets enumerates every closed itemset with support ≥ minsup
// (class-blind), sorted ascending; the second slice holds the supports.
func ClosedSets(d *dataset.Dataset, minsup int) ([][]dataset.Item, []int) {
	n := len(d.Rows)
	if n > 22 {
		panic("reference: dataset too large for brute force")
	}
	type entry struct {
		items []dataset.Item
		sup   int
	}
	seen := map[uint64][]entry{}
	var out []entry
	for mask := 1; mask < 1<<n; mask++ {
		var rows []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				rows = append(rows, i)
			}
		}
		a := dataset.CommonItems(d, rows)
		if len(a) == 0 {
			continue
		}
		sup := dataset.SupportSet(d, a).Count()
		if sup < minsup {
			continue
		}
		h := hashItems(a)
		dup := false
		for _, prev := range seen[h] {
			if equalItems(prev.items, a) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		e := entry{items: append([]dataset.Item(nil), a...), sup: sup}
		seen[h] = append(seen[h], e)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return lessItems(out[i].items, out[j].items) })
	items := make([][]dataset.Item, len(out))
	sups := make([]int, len(out))
	for i, e := range out {
		items[i] = e.items
		sups[i] = e.sup
	}
	return items, sups
}

// LowerBounds returns the minimal generators of antecedent a: the minimal
// subsets L ⊆ a with R(L) = R(a), by subset exhaustion (|a| ≤ 20).
func LowerBounds(d *dataset.Dataset, a []dataset.Item) [][]dataset.Item {
	k := len(a)
	if k > 20 {
		panic("reference: antecedent too large for brute force")
	}
	target := dataset.SupportSet(d, a)
	// Masks ordered by popcount so minimality reduces to a kept-subset test.
	masks := make([]int, 0, 1<<k)
	for mask := 1; mask < 1<<k; mask++ {
		masks = append(masks, mask)
	}
	sort.Slice(masks, func(i, j int) bool {
		return popcount(masks[i]) < popcount(masks[j])
	})
	var keptMasks []int
	var out [][]dataset.Item
	for _, mask := range masks {
		minimal := true
		for _, km := range keptMasks {
			if km&mask == km {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		items := make([]dataset.Item, 0, popcount(mask))
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				items = append(items, a[i])
			}
		}
		if dataset.SupportSet(d, items).Equal(target) {
			keptMasks = append(keptMasks, mask)
			out = append(out, items)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessItems(out[i], out[j]) })
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func hashItems(items []dataset.Item) uint64 {
	h := uint64(14695981039346656037)
	for _, it := range items {
		h ^= uint64(uint32(it))
		h *= 1099511628211
	}
	return h
}

func equalItems(a, b []dataset.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// properSubsetItems reports a ⊊ b for sorted item slices.
func properSubsetItems(a, b []dataset.Item) bool {
	if len(a) >= len(b) {
		return false
	}
	i := 0
	for _, x := range b {
		if i < len(a) && a[i] == x {
			i++
		}
	}
	return i == len(a)
}
