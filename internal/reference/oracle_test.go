package reference

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// MineLB pairs every rule group with minimal generators that reproduce the
// group's row set.
func TestMineLBOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 30; iter++ {
		d := randomDataset(rng)
		groups := AllRuleGroups(d, 0)
		withLB := MineLB(d, 0, 0)
		if len(withLB) != len(groups) {
			t.Fatalf("MineLB covers %d groups, universe has %d", len(withLB), len(groups))
		}
		for _, gl := range withLB {
			target := dataset.SupportSet(d, gl.Group.Antecedent)
			if len(gl.LowerBounds) == 0 {
				t.Fatalf("group %v has no lower bounds", gl.Group.Antecedent)
			}
			for _, lb := range gl.LowerBounds {
				if !dataset.SupportSet(d, lb).Equal(target) {
					t.Fatalf("lower bound %v of %v has different support", lb, gl.Group.Antecedent)
				}
			}
		}
	}
}

func TestMineLBAntecedentCap(t *testing.T) {
	d := dataset.PaperExample()
	capped := MineLB(d, 0, 2)
	for _, gl := range capped {
		if len(gl.Group.Antecedent) > 2 {
			t.Fatalf("cap 2 kept antecedent %v", gl.Group.Antecedent)
		}
	}
	if len(capped) >= len(AllRuleGroups(d, 0)) {
		t.Fatal("cap removed nothing on the paper example")
	}
}

// TopK scores descend and match a direct rescan of the rule-group universe.
func TestTopKOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 30; iter++ {
		d := randomDataset(rng)
		k := 1 + rng.Intn(4)
		got := TopK(d, 0, k, stats.Chi2, 1)
		if len(got) > k {
			t.Fatalf("returned %d > k=%d", len(got), k)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				t.Fatalf("scores not descending at %d", i)
			}
		}
		n, m := len(d.Rows), d.ClassCount(0)
		// No excluded group may beat the kept threshold.
		if len(got) == k {
			worst := got[len(got)-1].Score
			kept := map[string]bool{}
			for _, s := range got {
				kept[dataset.StringFromItems(s.Group.Antecedent)] = true
			}
			for _, g := range AllRuleGroups(d, 0) {
				if g.SupPos < 1 { // same minsup filter TopK was called with
					continue
				}
				if kept[dataset.StringFromItems(g.Antecedent)] {
					continue
				}
				if sc := stats.Chi2(g.SupPos+g.SupNeg, g.SupPos, n, m); sc > worst {
					t.Fatalf("excluded group %v scores %v > kept threshold %v", g.Antecedent, sc, worst)
				}
			}
		}
	}
}

func TestTopKMinsupFilters(t *testing.T) {
	d := dataset.PaperExample()
	all := TopK(d, 0, 100, stats.Chi2, 1)
	filtered := TopK(d, 0, 100, stats.Chi2, 3)
	if len(filtered) >= len(all) {
		t.Fatal("minsup=3 filtered nothing")
	}
	for _, s := range filtered {
		if s.Group.SupPos < 3 {
			t.Fatalf("group %v below minsup", s.Group.Antecedent)
		}
	}
	var found bool
	for _, s := range all {
		if reflect.DeepEqual(s.Group.Antecedent, dataset.ItemsFromString("a")) {
			found = true
		}
	}
	if !found {
		t.Fatal("group {a} missing from unfiltered top-k")
	}
}
