package reference

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 2 + rng.Intn(6)
	numItems := 3 + rng.Intn(6)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
		classes[i] = rng.Intn(2)
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"C", "N"})
	if err != nil {
		panic(err)
	}
	return d
}

// Every closed set reported must actually be closed: equal to its closure.
func TestClosedSetsAreClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 60; iter++ {
		d := randomDataset(rng)
		items, sups := ClosedSets(d, 1)
		for i, a := range items {
			if got := dataset.Closure(d, a); !reflect.DeepEqual(got, a) {
				t.Fatalf("set %v not closed (closure %v)", a, got)
			}
			if got := dataset.SupportSet(d, a).Count(); got != sups[i] {
				t.Fatalf("set %v support %d, reported %d", a, got, sups[i])
			}
		}
	}
}

// Closed sets are exactly the images of the closure operator: every
// itemset's closure appears in the list.
func TestClosedSetsComplete(t *testing.T) {
	d := dataset.PaperExample()
	items, _ := ClosedSets(d, 1)
	index := map[string]bool{}
	for _, a := range items {
		index[dataset.StringFromItems(a)] = true
	}
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		var probe []dataset.Item
		for it := 0; it < d.NumItems; it++ {
			if rng.Float64() < 0.2 {
				probe = append(probe, dataset.Item(it))
			}
		}
		cl := dataset.Closure(d, probe)
		if len(cl) == 0 || dataset.SupportSet(d, cl).Count() == 0 {
			continue
		}
		if !index[dataset.StringFromItems(cl)] {
			t.Fatalf("closure %v of %v missing from ClosedSets", cl, probe)
		}
	}
}

// Rule groups biject with closed antecedents: distinct row sets, closed
// antecedents, consistent stats.
func TestAllRuleGroupsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		d := randomDataset(rng)
		groups := AllRuleGroups(d, 0)
		seenRows := map[string]bool{}
		for _, g := range groups {
			if got := dataset.Closure(d, g.Antecedent); !reflect.DeepEqual(got, g.Antecedent) {
				t.Fatalf("antecedent %v not closed", g.Antecedent)
			}
			key := ""
			for _, r := range g.Rows {
				key += string(rune('0' + r))
			}
			if seenRows[key] {
				t.Fatalf("duplicate row set %v", g.Rows)
			}
			seenRows[key] = true
			if g.SupPos+g.SupNeg != len(g.Rows) {
				t.Fatalf("support split %d+%d != %d rows", g.SupPos, g.SupNeg, len(g.Rows))
			}
		}
	}
}

// IRGs are a subset of all rule groups and respect the definition: no kept
// group has a kept proper-subset antecedent with conf ≥ its own.
func TestIRGsSelfConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 60; iter++ {
		d := randomDataset(rng)
		irgs := IRGs(d, 0, 1, 0, 0)
		for i, g := range irgs {
			for j, h := range irgs {
				if i == j {
					continue
				}
				if properSubsetItems(h.Antecedent, g.Antecedent) && h.Confidence >= g.Confidence {
					t.Fatalf("IRG %v dominated by kept subset %v", g.Antecedent, h.Antecedent)
				}
			}
		}
	}
}

// Lower bounds are minimal generators: same support as the antecedent, and
// no proper subset of a lower bound generates the same rows.
func TestLowerBoundsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		d := randomDataset(rng)
		groups := AllRuleGroups(d, 0)
		for _, g := range groups {
			if len(g.Antecedent) > 8 {
				continue // keep the subset exhaustion cheap
			}
			target := dataset.SupportSet(d, g.Antecedent)
			for _, lb := range LowerBounds(d, g.Antecedent) {
				if !dataset.SupportSet(d, lb).Equal(target) {
					t.Fatalf("lower bound %v of %v has different support", lb, g.Antecedent)
				}
				// Dropping any single item must change the support.
				for drop := range lb {
					sub := append(append([]dataset.Item{}, lb[:drop]...), lb[drop+1:]...)
					if len(sub) == 0 {
						continue
					}
					if dataset.SupportSet(d, sub).Equal(target) {
						t.Fatalf("lower bound %v of %v not minimal", lb, g.Antecedent)
					}
				}
			}
		}
	}
}

func TestPanicsOnHugeInput(t *testing.T) {
	big := &dataset.Dataset{ClassNames: []string{"a"}, Rows: make([]dataset.Row, 30)}
	for _, fn := range []func(){
		func() { AllRuleGroups(big, 0) },
		func() { ClosedSets(big, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("brute force accepted a 30-row dataset")
				}
			}()
			fn()
		}()
	}
}

func TestProperSubsetItems(t *testing.T) {
	a := []dataset.Item{1, 3}
	b := []dataset.Item{1, 2, 3}
	if !properSubsetItems(a, b) || properSubsetItems(b, a) || properSubsetItems(a, a) {
		t.Fatal("properSubsetItems wrong")
	}
}
