package reference

import (
	"sort"

	"repro/internal/dataset"
)

// GroupWithLB pairs one rule group with its brute-force lower bounds
// (minimal generators). It is the whole-dataset MineLB oracle: everything
// core.Mine with ComputeLowerBounds reports must match one entry here.
type GroupWithLB struct {
	Group       RuleGroup
	LowerBounds [][]dataset.Item
}

// MineLB enumerates every rule group of d (see AllRuleGroups) together with
// its lower bounds by subset exhaustion. Groups whose antecedent exceeds
// maxAnt items are skipped (their exhaustion is exponential in |A|); pass
// maxAnt ≤ 0 for the LowerBounds default cap of 20.
func MineLB(d *dataset.Dataset, consequent, maxAnt int) []GroupWithLB {
	if maxAnt <= 0 || maxAnt > 20 {
		maxAnt = 20
	}
	var out []GroupWithLB
	for _, g := range AllRuleGroups(d, consequent) {
		if len(g.Antecedent) > maxAnt {
			continue
		}
		out = append(out, GroupWithLB{Group: g, LowerBounds: LowerBounds(d, g.Antecedent)})
	}
	return out
}

// Scored is one rule group with its objective value under a top-k measure.
type Scored struct {
	Group RuleGroup
	Score float64
}

// TopK is the brute-force oracle for core.MineTopK: it scores EVERY rule
// group with support ≥ minsup using the measure (the same (x, y, n, m)
// contingency signature as internal/stats) and returns the k best, ordered
// like MineTopK: descending score, then descending rule support, then
// lexicographic antecedent.
func TopK(d *dataset.Dataset, consequent, k int, measure func(x, y, n, m int) float64, minsup int) []Scored {
	n := len(d.Rows)
	m := d.ClassCount(consequent)
	var scored []Scored
	for _, g := range AllRuleGroups(d, consequent) {
		if g.SupPos < minsup {
			continue
		}
		scored = append(scored, Scored{Group: g, Score: measure(g.SupPos+g.SupNeg, g.SupPos, n, m)})
	}
	sort.SliceStable(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		if scored[i].Group.SupPos != scored[j].Group.SupPos {
			return scored[i].Group.SupPos > scored[j].Group.SupPos
		}
		return lessItems(scored[i].Group.Antecedent, scored[j].Group.Antecedent)
	})
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored
}
