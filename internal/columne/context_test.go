package columne

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// A pre-cancelled context stops within one node expansion with no
// deliveries and partial stats.
func TestMineContextCancelled(t *testing.T) {
	d := randomDataset(rand.New(rand.NewSource(61)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	delivered := 0
	res, err := MineStream(ctx, d, 0, Options{MinSup: 1}, func(Rule) error {
		delivered++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered != 0 {
		t.Fatalf("%d rules delivered after cancellation", delivered)
	}
	if res == nil || res.Stats().NodesVisited > 1 {
		t.Fatalf("cancelled run: res=%v, want partial stats with <= 1 node", res)
	}
}

// Streaming delivery (finish-phase, fixpoint order), once sorted, is
// byte-identical to batch Mine.
func TestMineStreamEquivalentToBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for iter := 0; iter < 50; iter++ {
		d := randomDataset(rng)
		opt := Options{MinSup: 1 + rng.Intn(2), MinConf: 0.5}
		batch, err := Mine(d, 0, opt)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []Rule
		res, err := MineStream(context.Background(), d, 0, opt, func(r Rule) error {
			streamed = append(streamed, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(streamed, func(i, j int) bool { return lessItems(streamed[i].Antecedent, streamed[j].Antecedent) })
		if !reflect.DeepEqual(streamed, batch.Rules) {
			t.Fatalf("iter %d: streamed %d rules != batch %d", iter, len(streamed), len(batch.Rules))
		}
		if res.Stats().Counters != batch.Stats().Counters {
			t.Fatalf("iter %d: counters differ:\n %+v\n %+v", iter, res.Stats().Counters, batch.Stats().Counters)
		}
	}
}

// A callback error aborts the finish phase and surfaces verbatim.
func TestMineStreamCallbackError(t *testing.T) {
	d := randomDataset(rand.New(rand.NewSource(63)))
	boom := errors.New("boom")
	calls := 0
	_, err := MineStream(context.Background(), d, 0, Options{MinSup: 1}, func(Rule) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback error", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring", calls)
	}
}
