// Package columne implements the ColumnE baseline of the paper's
// experiments: a Bayardo/Agrawal-style interesting-rule miner (SIGKDD 1999)
// that enumerates the COLUMN (itemset) space depth-first over tidsets,
// prunes on the anti-monotone rule-support constraint, and keeps one
// representative rule per interesting rule group.
//
// Its search space is the power set of the frequent items, which is why it
// collapses on microarray data where rows carry thousands of items — the
// contrast FARMER's row enumeration is designed to exploit. A node budget
// lets the benchmark harness report "did not finish" runs the way the
// paper's plots cut off the slow baselines.
package columne

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Rule is one interesting rule (a representative of its rule group).
type Rule struct {
	Antecedent []dataset.Item
	Rows       *bitset.Set // R(Antecedent)
	SupPos     int
	SupNeg     int
	Confidence float64
	Chi        float64
}

// Options configures a ColumnE run.
type Options struct {
	// MinSup is the minimum rule support |R(A ∪ C)|, ≥ 1.
	MinSup int
	// MinConf is the minimum confidence in [0,1].
	MinConf float64
	// MinChi is the minimum chi-square value; 0 disables.
	MinChi float64
	// MaxNodes, when > 0, aborts enumeration with ErrBudget after that many
	// nodes.
	MaxNodes int64
}

// ErrBudget reports that the node budget was exhausted before completion.
var ErrBudget = fmt.Errorf("columne: node budget exhausted")

// Result carries the mined rules and search statistics.
type Result struct {
	Rules []Rule
	Nodes int64
}

// Mine enumerates column combinations and returns one rule per interesting
// rule group with the given consequent.
func Mine(d *dataset.Dataset, consequent int, opt Options) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("columne: MinSup must be >= 1, got %d", opt.MinSup)
	}
	if opt.MinConf < 0 || opt.MinConf > 1 {
		return nil, fmt.Errorf("columne: MinConf %v outside [0,1]", opt.MinConf)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if consequent < 0 || consequent >= d.NumClasses() {
		return nil, fmt.Errorf("columne: consequent %d outside [0,%d)", consequent, d.NumClasses())
	}

	n := len(d.Rows)
	posMask := bitset.New(n)
	for ri := range d.Rows {
		if d.Rows[ri].Class == consequent {
			posMask.Set(ri)
		}
	}
	m := &miner{
		d:       d,
		opt:     opt,
		n:       n,
		numPos:  posMask.Count(),
		posMask: posMask,
		byHash:  map[uint64][]int{},
	}

	// Frequent single items by positive support, ascending-support order.
	tt := dataset.Transpose(d)
	var singles []extension
	for it, list := range tt.Lists {
		tid := bitset.New(n)
		for _, r := range list {
			tid.Set(int(r))
		}
		pos := tid.AndCount(posMask)
		if pos < opt.MinSup {
			continue
		}
		singles = append(singles, extension{item: dataset.Item(it), tids: tid})
	}
	sort.Slice(singles, func(i, j int) bool {
		si, sj := singles[i].tids.Count(), singles[j].tids.Count()
		if si != sj {
			return si < sj
		}
		return singles[i].item < singles[j].item
	})
	if err := m.expand(nil, nil, singles); err != nil {
		return nil, err
	}
	m.finish()
	return &Result{Rules: m.kept, Nodes: m.nodes}, nil
}

type extension struct {
	item dataset.Item
	tids *bitset.Set
}

type candidate struct {
	items  []dataset.Item
	rows   *bitset.Set
	supPos int
	tot    int
}

type miner struct {
	d       *dataset.Dataset
	opt     Options
	n       int
	numPos  int
	posMask *bitset.Set
	nodes   int64

	// One candidate per distinct row set (rule group); interestingness is
	// resolved after enumeration.
	cands  []candidate
	byHash map[uint64][]int
	kept   []Rule
}

// expand grows the current antecedent by each viable extension in turn.
func (m *miner) expand(items []dataset.Item, tids *bitset.Set, exts []extension) error {
	for i, e := range exts {
		m.nodes++
		if m.opt.MaxNodes > 0 && m.nodes > m.opt.MaxNodes {
			return ErrBudget
		}
		var cur *bitset.Set
		if tids == nil {
			cur = e.tids
		} else {
			cur = tids.Clone()
			cur.And(e.tids)
		}
		pos := cur.AndCount(m.posMask)
		if pos < m.opt.MinSup {
			continue // anti-monotone: no superset can recover support
		}
		cand := append(append([]dataset.Item(nil), items...), e.item)
		m.record(cand, cur, pos)
		// Children reuse the later extensions (set-enumeration tree).
		if err := m.expand(cand, cur, exts[i+1:]); err != nil {
			return err
		}
	}
	return nil
}

// record keeps one candidate per rule group (distinct row set), preferring
// the first antecedent encountered.
func (m *miner) record(items []dataset.Item, rows *bitset.Set, pos int) {
	tot := rows.Count()
	conf := float64(pos) / float64(tot)
	if conf < m.opt.MinConf {
		return
	}
	if m.opt.MinChi > 0 && stats.Chi2(tot, pos, m.n, m.numPos) < m.opt.MinChi {
		return
	}
	h := rows.Hash()
	for _, idx := range m.byHash[h] {
		if m.cands[idx].rows.Equal(rows) {
			return // group already represented
		}
	}
	m.byHash[h] = append(m.byHash[h], len(m.cands))
	sorted := append([]dataset.Item(nil), items...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	m.cands = append(m.cands, candidate{items: sorted, rows: rows.Clone(), supPos: pos, tot: tot})
}

// finish applies the interestingness filter: a rule survives iff no rule of
// a strictly more general group (proper superset row set) has confidence ≥
// its own. Candidates are processed most-general-first so the kept set is
// exactly the interesting groups.
func (m *miner) finish() {
	order := make([]int, len(m.cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return m.cands[order[a]].rows.Count() > m.cands[order[b]].rows.Count()
	})
	var keptIdx []int
	for _, ci := range order {
		c := &m.cands[ci]
		interesting := true
		for _, ki := range keptIdx {
			k := &m.cands[ki]
			if k.rows.ProperSupersetOf(c.rows) &&
				int64(k.supPos)*int64(c.tot) >= int64(c.supPos)*int64(k.tot) {
				interesting = false
				break
			}
		}
		if interesting {
			keptIdx = append(keptIdx, ci)
		}
	}
	sort.Slice(keptIdx, func(a, b int) bool {
		return lessItems(m.cands[keptIdx[a]].items, m.cands[keptIdx[b]].items)
	})
	for _, ci := range keptIdx {
		c := &m.cands[ci]
		m.kept = append(m.kept, Rule{
			Antecedent: c.items,
			Rows:       c.rows,
			SupPos:     c.supPos,
			SupNeg:     c.tot - c.supPos,
			Confidence: float64(c.supPos) / float64(c.tot),
			Chi:        stats.Chi2(c.tot, c.supPos, m.n, m.numPos),
		})
	}
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
