// Package columne implements the ColumnE baseline of the paper's
// experiments: a Bayardo/Agrawal-style interesting-rule miner (SIGKDD 1999)
// that enumerates the COLUMN (itemset) space depth-first over tidsets,
// prunes on the anti-monotone rule-support constraint, and keeps one
// representative rule per interesting rule group.
//
// Its search space is the power set of the frequent items, which is why it
// collapses on microarray data where rows carry thousands of items — the
// contrast FARMER's row enumeration is designed to exploit. A node budget
// lets the benchmark harness report "did not finish" runs the way the
// paper's plots cut off the slow baselines.
package columne

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Rule is one interesting rule (a representative of its rule group).
type Rule struct {
	Antecedent []dataset.Item
	Rows       *bitset.Set // R(Antecedent)
	SupPos     int
	SupNeg     int
	Confidence float64
	Chi        float64
}

// Options configures a ColumnE run.
type Options struct {
	// MinSup is the minimum rule support |R(A ∪ C)|, ≥ 1.
	MinSup int
	// MinConf is the minimum confidence in [0,1].
	MinConf float64
	// MinChi is the minimum chi-square value; 0 disables.
	MinChi float64
	// MaxNodes, when > 0, aborts enumeration with ErrBudget after that many
	// nodes.
	MaxNodes int64

	// OnRule, when non-nil, switches the canonical entry point
	// (farmer.RunColumnE) to streaming emission: rules are delivered
	// during the finish-phase fixpoint (ColumnE's interestingness is a
	// global fixpoint), and the result accumulates no Rules. Ignored by
	// the low-level Mine* functions, which take their callback as an
	// argument.
	OnRule func(Rule) error

	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset: the run takes its singleton tidsets and consequent mask
	// from the snapshot's shared structures instead of rebuilding them.
	// The snapshot must have been built from the exact *Dataset passed to
	// the mining call.
	Prepared *dataset.Snapshot
}

// ErrBudget reports that the node budget was exhausted before completion.
var ErrBudget = fmt.Errorf("columne: node budget exhausted")

// Result carries the mined rules and search statistics. Nodes keeps the
// legacy enumeration-node count (what MaxNodes bounds); Stats carries the
// engine's unified counters.
type Result struct {
	Rules []Rule
	Nodes int64

	stats engine.Stats
}

// Stats returns the engine's unified run statistics.
func (r *Result) Stats() engine.Stats { return r.stats }

// Count returns the number of rules in the batch result.
func (r *Result) Count() int { return len(r.Rules) }

// Mine enumerates column combinations and returns one rule per interesting
// rule group with the given consequent.
func Mine(d *dataset.Dataset, consequent int, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, consequent, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// node expansion and at every candidate of the finish-phase fixpoint. On
// cancellation it returns ctx.Err() with a non-nil Result carrying partial
// statistics and no rules. (Budget exhaustion keeps its legacy
// convention: ErrBudget with a nil Result.)
func MineContext(ctx context.Context, d *dataset.Dataset, consequent int, opt Options) (*Result, error) {
	var rules []Rule
	res, err := MineStream(ctx, d, consequent, opt, func(r Rule) error {
		rules = append(rules, r)
		return nil
	})
	if res != nil {
		sort.Slice(rules, func(i, j int) bool { return lessItems(rules[i].Antecedent, rules[j].Antecedent) })
		res.Rules = rules
	}
	return res, err
}

// MineStream is Mine with per-rule delivery. Unlike the row enumerators,
// ColumnE CANNOT stream during enumeration: whether a rule group is
// interesting depends on a global fixpoint over every candidate, so
// deliveries happen during the finish phase, after enumeration completes
// (each rule is delivered the moment the fixpoint keeps it, in
// most-general-first fixpoint order rather than Mine's sorted order). A
// callback error aborts the run and is returned verbatim.
func MineStream(ctx context.Context, d *dataset.Dataset, consequent int, opt Options, onRule func(Rule) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("columne: MinSup must be >= 1, got %d", opt.MinSup)
	}
	if opt.MinConf < 0 || opt.MinConf > 1 {
		return nil, fmt.Errorf("columne: MinConf %v outside [0,1]", opt.MinConf)
	}
	snap := opt.Prepared
	if snap != nil && snap.Dataset() != d {
		return nil, fmt.Errorf("columne: Prepared snapshot was built from a different dataset")
	}
	if snap == nil {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if consequent < 0 || consequent >= d.NumClasses() {
		return nil, fmt.Errorf("columne: consequent %d outside [0,%d)", consequent, d.NumClasses())
	}

	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	n := len(d.Rows)
	var posMask *bitset.Set
	if snap != nil {
		view, err := snap.ForConsequent(consequent)
		if err != nil {
			return nil, err
		}
		posMask = view.PosMask
	} else {
		posMask = bitset.New(n)
		for ri := range d.Rows {
			if d.Rows[ri].Class == consequent {
				posMask.Set(ri)
			}
		}
	}
	m := &miner{
		d:       d,
		opt:     opt,
		n:       n,
		numPos:  posMask.Count(),
		posMask: posMask,
		ex:      ex,
		sc:      engine.NewScratch(n),
		emit:    onRule,
		byHash:  map[uint64][]int{},
	}

	// Frequent single items by positive support, ascending-support order.
	var singles []extension
	if snap != nil {
		// Singleton tidsets are the snapshot's shared per-item bitsets;
		// the enumeration only intersects into scratch and clones on
		// record, so sharing across concurrent runs is safe.
		ex.Stats.PrepareReused++
		for it, rows := range snap.ItemRows() {
			if rows == nil || rows.AndCount(posMask) < opt.MinSup {
				continue
			}
			singles = append(singles, extension{item: dataset.Item(it), tids: rows})
		}
	} else {
		tt := dataset.Transpose(d)
		for it, list := range tt.Lists {
			tid := bitset.New(n)
			for _, r := range list {
				tid.Set(int(r))
			}
			pos := tid.AndCount(posMask)
			if pos < opt.MinSup {
				continue
			}
			singles = append(singles, extension{item: dataset.Item(it), tids: tid})
		}
	}
	sort.Slice(singles, func(i, j int) bool {
		si, sj := singles[i].tids.Count(), singles[j].tids.Count()
		if si != sj {
			return si < sj
		}
		return singles[i].item < singles[j].item
	})
	setupDone()

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	err := m.expand(nil, nil, singles)
	searchDone()
	if err == ErrBudget {
		return nil, err
	}
	if err == nil {
		finishDone := engine.Phase(&ex.Stats.Timings.Finish)
		err = m.finish()
		finishDone()
	}
	ex.Stats.ArenaBytes = m.sc.Bytes() + m.ar.Bytes() + m.items.SizeBytes()
	return &Result{Nodes: m.nodes, stats: ex.Stats}, err
}

type extension struct {
	item dataset.Item
	tids *bitset.Set
}

type candidate struct {
	items  []dataset.Item
	rows   *bitset.Set
	supPos int
	tot    int
}

type miner struct {
	d       *dataset.Dataset
	opt     Options
	n       int
	numPos  int
	posMask *bitset.Set
	nodes   int64

	// ex carries the unified counters and the cancellation token; sc.Tmp is
	// the scratch tidset for intersection prechecks (a candidate tidset is
	// only cloned once it survives the support test).
	ex   *engine.Exec
	sc   *engine.Scratch
	emit func(Rule) error

	// One candidate per distinct row set (rule group); interestingness is
	// resolved after enumeration.
	cands  []candidate
	byHash map[uint64][]int

	// ar and items back the enumeration path: the current tidset and the
	// growing antecedent live on arenas marked per extension and released
	// when its subtree returns. record clones whatever escapes into the
	// candidate store.
	ar    bitset.Arena
	items engine.Slab[dataset.Item]
}

// expand grows the current antecedent by each viable extension in turn.
func (m *miner) expand(items []dataset.Item, tids *bitset.Set, exts []extension) error {
	for i, e := range exts {
		if err := m.ex.EnterNode(); err != nil {
			return err
		}
		m.nodes++
		if m.opt.MaxNodes > 0 && m.nodes > m.opt.MaxNodes {
			return ErrBudget
		}
		// Intersect into scratch first; the tidset is copied onto the
		// arena only after the anti-monotone support check passes.
		var cur *bitset.Set
		if tids == nil {
			cur = e.tids
		} else {
			bitset.AndTo(m.sc.Tmp, tids, e.tids)
			cur = m.sc.Tmp
		}
		pos := cur.AndCount(m.posMask)
		if pos < m.opt.MinSup {
			m.ex.Stats.PrunedTightBound++
			continue // anti-monotone: no superset can recover support
		}
		amark := m.ar.Mark()
		imark := m.items.Mark()
		if cur == m.sc.Tmp {
			cur = m.ar.Copy(m.sc.Tmp)
		}
		cand := m.items.Alloc(len(items) + 1)
		copy(cand, items)
		cand[len(items)] = e.item
		m.record(cand, cur, pos)
		// Children reuse the later extensions (set-enumeration tree).
		err := m.expand(cand, cur, exts[i+1:])
		m.items.Release(imark)
		m.ar.Release(amark)
		if err != nil {
			return err
		}
	}
	return nil
}

// record keeps one candidate per rule group (distinct row set), preferring
// the first antecedent encountered.
func (m *miner) record(items []dataset.Item, rows *bitset.Set, pos int) {
	tot := rows.Count()
	conf := float64(pos) / float64(tot)
	if conf < m.opt.MinConf {
		return
	}
	if m.opt.MinChi > 0 && stats.Chi2(tot, pos, m.n, m.numPos) < m.opt.MinChi {
		return
	}
	h := rows.Hash()
	for _, idx := range m.byHash[h] {
		if m.cands[idx].rows.Equal(rows) {
			return // group already represented
		}
	}
	m.byHash[h] = append(m.byHash[h], len(m.cands))
	sorted := append([]dataset.Item(nil), items...)
	slices.Sort(sorted)
	m.cands = append(m.cands, candidate{items: sorted, rows: rows.Clone(), supPos: pos, tot: tot})
}

// finish applies the interestingness filter: a rule survives iff no rule of
// a strictly more general group (proper superset row set) has confidence ≥
// its own. Candidates are processed most-general-first so the kept set is
// exactly the interesting groups; each kept rule is delivered immediately
// (its decision is final: later candidates are more specific or
// incomparable).
func (m *miner) finish() error {
	order := make([]int, len(m.cands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return m.cands[order[a]].rows.Count() > m.cands[order[b]].rows.Count()
	})
	var keptIdx []int
	for _, ci := range order {
		if err := m.ex.Err(); err != nil {
			return err
		}
		c := &m.cands[ci]
		interesting := true
		for _, ki := range keptIdx {
			k := &m.cands[ki]
			if k.rows.ProperSupersetOf(c.rows) &&
				int64(k.supPos)*int64(c.tot) >= int64(c.supPos)*int64(k.tot) {
				interesting = false
				break
			}
		}
		if !interesting {
			m.ex.Stats.GroupsNotInterest++
			continue
		}
		keptIdx = append(keptIdx, ci)
		m.ex.Stats.GroupsEmitted++
		if m.emit != nil {
			if err := m.emit(Rule{
				Antecedent: c.items,
				Rows:       c.rows,
				SupPos:     c.supPos,
				SupNeg:     c.tot - c.supPos,
				Confidence: float64(c.supPos) / float64(c.tot),
				Chi:        stats.Chi2(c.tot, c.supPos, m.n, m.numPos),
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
