package columne_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/columne"
	"repro/internal/difftest"
	"repro/internal/reference"
)

// ColumnE emits one representative rule per interesting rule group, so on
// the shared edge-case fixtures its rule SET must match the brute-force IRG
// oracle on (row set, positive support, negative support) — antecedents may
// legitimately differ within a group.
func TestEdgeFixturesAgainstOracle(t *testing.T) {
	for _, f := range difftest.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			ref := reference.IRGs(f.D, f.Consequent, 1, 0, 0)
			want := make([]string, len(ref))
			for i, g := range ref {
				want[i] = fmt.Sprintf("%v|%d|%d", g.Rows, g.SupPos, g.SupNeg)
			}
			sort.Strings(want)

			res, err := columne.Mine(f.D, f.Consequent, columne.Options{MinSup: 1})
			if err != nil {
				t.Fatal(err)
			}
			got := make([]string, len(res.Rules))
			for i, r := range res.Rules {
				got[i] = fmt.Sprintf("%v|%d|%d", r.Rows.Ints(), r.SupPos, r.SupNeg)
			}
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("rule groups\n got %v\nwant %v", got, want)
			}
		})
	}
}
