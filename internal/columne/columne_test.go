package columne

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ruleKeys renders rules as (rowset, supPos, supNeg) — the group identity —
// since ColumnE picks an arbitrary member antecedent per group.
func ruleKeys(rules []Rule) []string {
	out := make([]string, len(rules))
	for i, r := range rules {
		out[i] = fmt.Sprintf("%v|%d|%d", r.Rows.Ints(), r.SupPos, r.SupNeg)
	}
	sort.Strings(out)
	return out
}

func farmerKeys(res *core.Result) []string {
	out := make([]string, len(res.Groups))
	for i, g := range res.Groups {
		out[i] = fmt.Sprintf("%v|%d|%d", g.Rows, g.SupPos, g.SupNeg)
	}
	sort.Strings(out)
	return out
}

// ColumnE must find exactly the same rule groups as FARMER (one
// representative each) on the paper example across constraint settings.
func TestAgreesWithFARMEROnPaperExample(t *testing.T) {
	d := dataset.PaperExample()
	cases := []struct {
		minsup  int
		minconf float64
		minchi  float64
	}{
		{1, 0, 0}, {2, 0, 0}, {1, 0.7, 0}, {1, 0.9, 0}, {2, 0.5, 1.0},
	}
	for _, c := range cases {
		got, err := Mine(d, 0, Options{MinSup: c.minsup, MinConf: c.minconf, MinChi: c.minchi})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Mine(d, 0, core.Options{MinSup: c.minsup, MinConf: c.minconf, MinChi: c.minchi})
		if err != nil {
			t.Fatal(err)
		}
		if g, w := ruleKeys(got.Rules), farmerKeys(want); !reflect.DeepEqual(g, w) {
			t.Fatalf("case %+v:\ncolumne %v\nfarmer  %v", c, g, w)
		}
	}
}

// Every reported rule's antecedent must actually select the reported rows.
func TestRuleAntecedentsConsistent(t *testing.T) {
	d := dataset.PaperExample()
	res, err := Mine(d, 0, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if !dataset.SupportSet(d, r.Antecedent).Equal(r.Rows) {
			t.Fatalf("rule %v rows mismatch", r.Antecedent)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	d := dataset.PaperExample()
	if _, err := Mine(d, 0, Options{MinSup: 0}); err == nil {
		t.Fatal("MinSup 0 accepted")
	}
	if _, err := Mine(d, 0, Options{MinSup: 1, MinConf: 2}); err == nil {
		t.Fatal("MinConf 2 accepted")
	}
	if _, err := Mine(d, 9, Options{MinSup: 1}); err == nil {
		t.Fatal("bad consequent accepted")
	}
}

func TestBudgetAbort(t *testing.T) {
	d := dataset.PaperExample()
	_, err := Mine(d, 0, Options{MinSup: 1, MaxNodes: 3})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 3 + rng.Intn(6)
	numItems := 4 + rng.Intn(6)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
		classes[i] = rng.Intn(2)
	}
	classes[0] = 0
	if n > 1 {
		classes[1] = 1
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"C", "N"})
	if err != nil {
		panic(err)
	}
	return d
}

// Property: ColumnE and FARMER agree on the set of interesting rule groups
// across random datasets and constraints.
func TestPropertyAgreesWithFARMER(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 200; iter++ {
		d := randomDataset(rng)
		minsup := 1 + rng.Intn(2)
		minconf := []float64{0, 0.4, 0.8}[rng.Intn(3)]
		minchi := []float64{0, 0.5}[rng.Intn(2)]
		got, err := Mine(d, 0, Options{MinSup: minsup, MinConf: minconf, MinChi: minchi})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Mine(d, 0, core.Options{MinSup: minsup, MinConf: minconf, MinChi: minchi})
		if err != nil {
			t.Fatal(err)
		}
		if g, w := ruleKeys(got.Rules), farmerKeys(want); !reflect.DeepEqual(g, w) {
			t.Fatalf("iter %d (minsup=%d minconf=%v minchi=%v):\ncolumne %v\nfarmer  %v\nrows %+v",
				iter, minsup, minconf, minchi, g, w, d.Rows)
		}
	}
}
