package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	farmer "repro"
	"repro/internal/serve"
)

// query posts spec to /v1/query with optional extra headers and returns
// the full response (body drained and closed).
func query(t *testing.T, baseURL string, spec serve.JobSpec, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/query", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestQueryWarmReplayBytesAndHeaders is the warm-path golden check: a
// repeat query must return byte-identical NDJSON to both the live first
// run and the jobs-path stream, with the zero-copy replay headers —
// explicit Content-Length (no chunked transfer), X-Cache: HIT, and a
// strong ETag.
func TestQueryWarmReplayBytesAndHeaders(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2, LowerBounds: true}

	want := expectedFarmerLines(t, loadExample(t), 0, farmer.MineOptions{
		MinSup:             spec.MinSup,
		ComputeLowerBounds: spec.LowerBounds,
	})
	wantBody := strings.Join(want, "\n") + "\n" + endFrameLine(len(want)) + "\n"

	cold, coldBody := query(t, ts.URL, spec, nil)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold query: status %d", cold.StatusCode)
	}
	if got := cold.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("cold query X-Cache = %q, want MISS", got)
	}
	if string(coldBody) != wantBody {
		t.Fatalf("cold query body mismatch:\n got %q\nwant %q", coldBody, wantBody)
	}

	warm, warmBody := query(t, ts.URL, spec, nil)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm query: status %d", warm.StatusCode)
	}
	if string(warmBody) != wantBody {
		t.Fatalf("warm query body differs from the live stream:\n got %q\nwant %q", warmBody, wantBody)
	}
	if got := warm.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("warm query X-Cache = %q, want HIT", got)
	}
	if ct := warm.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("warm query content-type %q", ct)
	}
	if cl := warm.Header.Get("Content-Length"); cl != strconv.Itoa(len(wantBody)) {
		t.Fatalf("warm query Content-Length = %q, want %d", cl, len(wantBody))
	}
	if len(warm.TransferEncoding) != 0 {
		t.Fatalf("warm query used transfer encoding %v; replay must not chunk", warm.TransferEncoding)
	}
	etag := warm.Header.Get("ETag")
	if len(etag) != 66 || etag[0] != '"' {
		t.Fatalf("warm query ETag = %q, want a quoted 64-hex strong validator", etag)
	}

	// The jobs path serves the same bytes for a cached submission, with the
	// same replay headers and the cached flag on its status.
	st := submit(t, ts.URL, spec)
	if !st.Cached {
		t.Fatal("repeat submission not served from the result cache")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	jobBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(jobBody) != wantBody {
		t.Fatalf("jobs-path cached replay differs from query body:\n got %q\nwant %q", jobBody, wantBody)
	}
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("cached job results X-Cache = %q, want HIT", got)
	}
	if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(wantBody)) {
		t.Fatalf("cached job results Content-Length = %q, want %d", cl, len(wantBody))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("jobs-path ETag %q differs from query ETag %q", got, etag)
	}
}

func TestQueryETagStableAcrossHitsRotatesOnPut(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}

	// The cold miss streams live and carries no validator; every replay of
	// the completed result must present the same strong ETag.
	query(t, ts.URL, spec, nil)
	first, _ := query(t, ts.URL, spec, nil)
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("warm replay carries no ETag")
	}
	for i := 0; i < 3; i++ {
		resp, _ := query(t, ts.URL, spec, nil)
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("hit %d: ETag %q, want stable %q", i, got, etag)
		}
	}

	// Re-registering the dataset bumps the generation: the same spec is a
	// new request identity, so the validator must rotate and the response
	// must be a fresh mine, not a stale replay.
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	resp, body := query(t, ts.URL, spec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-Put query: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("post-Put query X-Cache = %q, want MISS", got)
	}
	if len(body) == 0 {
		t.Fatal("post-Put query returned no body")
	}
	if got := resp.Header.Get("ETag"); got == etag && got != "" {
		t.Fatalf("ETag %q did not rotate after dataset re-registration", got)
	}
}

func TestQueryConditionalRequests(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}

	warm, fullBody := query(t, ts.URL, spec, nil) // prime the cache
	warm, fullBody = query(t, ts.URL, spec, nil)
	etag := warm.Header.Get("ETag")
	if etag == "" || len(fullBody) == 0 {
		t.Fatalf("warm query: etag %q, %d body bytes", etag, len(fullBody))
	}

	// A matching validator answers 304 with no body.
	resp, body := query(t, ts.URL, spec, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match match: status %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}

	// So do a list and a star.
	for _, inm := range []string{`"nope", ` + etag, "*", "W/" + etag} {
		resp, body := query(t, ts.URL, spec, map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
			t.Fatalf("If-None-Match %q: status %d, %d bytes; want bare 304", inm, resp.StatusCode, len(body))
		}
	}

	// A stale validator gets the full current body.
	resp, body = query(t, ts.URL, spec, map[string]string{"If-None-Match": `"0000"`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale If-None-Match: status %d, want 200", resp.StatusCode)
	}
	if !bytes.Equal(body, fullBody) {
		t.Fatal("stale If-None-Match did not return the full body")
	}
}

// TestQueryConcurrentWarmHits hammers the warm path from many goroutines
// across distinct specs, interleaving conditional requests — under -race
// this is the proof that pooled buffers and the shared pre-encoded bodies
// never bleed across requests.
func TestQueryConcurrentWarmHits(t *testing.T) {
	ts, _ := service(t, 2, 16)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	specs := []serve.JobSpec{
		{Miner: "farmer", Dataset: "paper", MinSup: 1},
		{Miner: "farmer", Dataset: "paper", MinSup: 2},
		{Miner: "farmer", Dataset: "paper", MinSup: 2, LowerBounds: true},
		{Miner: "charm", Dataset: "paper", MinSup: 2},
	}
	bodies := make([][]byte, len(specs))
	etags := make([]string, len(specs))
	for i, spec := range specs {
		query(t, ts.URL, spec, nil) // prime
		resp, body := query(t, ts.URL, spec, nil)
		if resp.Header.Get("X-Cache") != "HIT" {
			t.Fatalf("spec %d not warmed", i)
		}
		bodies[i], etags[i] = body, resp.Header.Get("ETag")
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				i := (g + iter) % len(specs)
				if iter%5 == 4 {
					resp, body := query(t, ts.URL, specs[i], map[string]string{"If-None-Match": etags[i]})
					if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
						errs <- fmt.Errorf("goroutine %d: conditional hit spec %d: status %d, %d bytes", g, i, resp.StatusCode, len(body))
						return
					}
					continue
				}
				resp, body := query(t, ts.URL, specs[i], nil)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: spec %d: status %d", g, i, resp.StatusCode)
					return
				}
				if !bytes.Equal(body, bodies[i]) {
					errs <- fmt.Errorf("goroutine %d: spec %d: body corrupted across requests", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// nullResponseWriter is the cheapest possible sink for measuring the
// handler's own allocations: a reusable header map and discarded writes.
type nullResponseWriter struct {
	h http.Header
}

func (w *nullResponseWriter) Header() http.Header        { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)            {}

// TestQueryWarmHandlerAllocs bounds the warm handler's allocations,
// measured through the full middleware + mux + handler stack with the
// net/http transport taken out of the picture. The acceptance bar for the
// end-to-end request is 100 allocs/op; the handler itself must stay well
// under that.
func TestQueryWarmHandlerAllocs(t *testing.T) {
	ts, mgr := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	if resp, _ := query(t, ts.URL, spec, nil); resp.StatusCode != http.StatusOK {
		t.Fatal("priming query failed")
	}

	srv := serve.NewServer(mgr)
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(nil)
	req, err := http.NewRequest(http.MethodPost, "/v1/query", io.NopCloser(rd))
	if err != nil {
		t.Fatal(err)
	}
	w := &nullResponseWriter{h: make(http.Header)}

	// One warm-up run populates lazy state (pools, mux fast paths), then
	// the measured runs must be flat.
	rd.Reset(body)
	srv.ServeHTTP(w, req)
	if got := w.h.Get("X-Cache"); got != "HIT" {
		t.Fatalf("measured request was not a cache hit (X-Cache=%q)", got)
	}

	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		srv.ServeHTTP(w, req)
	})
	t.Logf("warm handler: %.1f allocs/op", allocs)
	if allocs > 50 {
		t.Fatalf("warm handler allocates %.1f/op, want <= 50", allocs)
	}
}
