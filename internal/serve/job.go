package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	farmer "repro"
	"repro/internal/engine"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// RunnerFunc executes one mining job: it emits result records as they
// become available and returns the miner's result (for its statistics).
// On cancellation it returns ctx.Err() together with partial statistics.
// Exported so a cluster coordinator can substitute distributed runners
// through Manager.SetRunnerBuilder while reusing the job machinery
// (queueing, streaming, caching, cancellation) unchanged.
type RunnerFunc func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error)

// Job is one submitted mining run. All mutable fields are guarded by mu;
// results only ever grows, and stops growing once the state is terminal.
type Job struct {
	ID   string
	Spec JobSpec

	runner RunnerFunc
	// tenant is the principal the job was admitted for; its quota slot is
	// released (and its accounting credited) when the job turns terminal.
	// Nil for cached replay jobs and for direct library submissions.
	tenant *Tenant
	// key is the canonical request hash the job is registered under in the
	// manager's singleflight table and result cache; hasKey is false for
	// cached replay jobs (they were never inflight and are never
	// re-cached).
	key    reqKey
	hasKey bool
	// cached marks a job whose records were replayed from the result cache
	// instead of mined; it is set at construction and never changes.
	cached bool

	mu      sync.Mutex
	state   State
	results []json.RawMessage
	emitted int
	// body is the complete pre-encoded NDJSON stream (every record plus
	// its newline, one contiguous buffer) of a cleanly completed run; etag
	// is its strong validator. Both are immutable once set, so replaying
	// them is a single header write and a single body write.
	body      []byte
	etag      string
	wake      chan struct{} // closed and replaced on every append / state change
	done      chan struct{} // closed once, when the state turns terminal
	cancel    context.CancelFunc
	errMsg    string
	stats     engine.Stats
	hasStats  bool
	createdAt time.Time
	startedAt time.Time
	endedAt   time.Time
	// The anytime verdict: partial marks a result that may be missing
	// groups (budget stop, deadline, cancellation); gap is the certified
	// optimality gap when hasGap; nodes is the anytime search's expansion
	// count; stopReason says what ended the run early ("budget",
	// "deadline" or "cancel"). All set before the terminal transition.
	partial    bool
	gap        float64
	hasGap     bool
	nodes      int64
	stopReason string
	// endFrame memoizes the rendered NDJSON end frame (without the
	// trailing newline) once the job is terminal.
	endFrame []byte
}

func newJob(id string, spec JobSpec, run RunnerFunc) *Job {
	return &Job{
		ID:        id,
		Spec:      spec,
		runner:    run,
		state:     StateQueued,
		wake:      make(chan struct{}),
		done:      make(chan struct{}),
		createdAt: time.Now(),
	}
}

// closedChan is shared by every born-terminal job: such a job never wakes
// a waiter and is done from birth, so it needs no channels of its own.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// newCachedJob builds a job that is born terminal: its body is the cached
// pre-encoded NDJSON of an identical completed request (shared with the
// cache entry, never copied), so streaming it replays the original run
// byte for byte without touching a worker.
func newCachedJob(id string, spec JobSpec, res cachedResult) *Job {
	now := time.Now()
	return &Job{
		ID:        id,
		Spec:      spec,
		cached:    true,
		state:     StateDone,
		emitted:   res.count,
		body:      res.body,
		etag:      res.etag,
		stats:     res.stats,
		hasStats:  res.hasStats,
		wake:      closedChan,
		done:      closedChan,
		createdAt: now,
		startedAt: now,
		endedAt:   now,
	}
}

// wakeLocked signals every waiter and re-arms the broadcast channel.
// Callers must hold mu.
func (j *Job) wakeLocked() {
	close(j.wake)
	j.wake = make(chan struct{})
}

// emit appends one result record. It is only called from the worker
// goroutine running the job, before the state turns terminal.
func (j *Job) emit(v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.results = append(j.results, raw)
	j.emitted++
	j.wakeLocked()
	j.mu.Unlock()
	return nil
}

// setReplay attaches the pre-encoded NDJSON body (and its ETag) of a
// cleanly completed run, making the job replayable through the zero-copy
// path. Called once, by the worker, after the terminal transition.
func (j *Job) setReplay(body []byte, etag string) {
	j.mu.Lock()
	j.body = body
	j.etag = etag
	j.mu.Unlock()
}

// replay returns the pre-encoded NDJSON body and ETag when the job
// completed cleanly and its body has been materialized. Callers serve the
// returned buffer as-is: it is immutable and may be shared with the
// result cache and with other in-flight responses.
func (j *Job) replay() (body []byte, etag string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.body == nil {
		return nil, "", false
	}
	return j.body, j.etag, true
}

// finish moves the job to a terminal state exactly once and records the
// final statistics (partial on cancellation).
func (j *Job) finish(state State, stats engine.Stats, hasStats bool, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.stats = stats
	j.hasStats = hasStats
	j.errMsg = errMsg
	j.endedAt = time.Now()
	close(j.done)
	j.wakeLocked()
}

// setOutcome records the anytime verdict before the terminal transition:
// the partial flag, the certified gap (when hasGap), the anytime node
// count, and what stopped the run early.
func (j *Job) setOutcome(partial bool, gap float64, hasGap bool, nodes int64, stopReason string) {
	j.mu.Lock()
	j.partial = partial
	j.gap = gap
	j.hasGap = hasGap
	j.nodes = nodes
	j.stopReason = stopReason
	j.mu.Unlock()
}

// EndFrame is the NDJSON trailer every streamed job ends with: one final
// object (distinguished from result records by its "end":true member)
// carrying the terminal state, the record count, and — for budgeted or
// interrupted runs — the partial flag, the certified optimality gap, the
// anytime node count and the stop reason. Clients read it to tell a
// complete answer from a truncated one without a second request.
type EndFrame struct {
	End     bool  `json:"end"`
	State   State `json:"state"`
	Emitted int   `json:"emitted"`
	// Partial marks a result that may be missing groups: a budget stop, a
	// deadline, or a cancellation mid-run.
	Partial bool `json:"partial,omitempty"`
	// Gap is present when the anytime search certified an optimality gap:
	// no unreported group's score exceeds the k-th kept score by more
	// than this.
	Gap *float64 `json:"gap,omitempty"`
	// NodesExpanded counts the anytime search's node expansions.
	NodesExpanded int64  `json:"nodes_expanded,omitempty"`
	StopReason    string `json:"stop_reason,omitempty"`
	Error         string `json:"error,omitempty"`
}

// endBytes renders (and memoizes) the job's end frame. It returns nil
// until the job is terminal; the returned buffer excludes the trailing
// newline and is immutable.
func (j *Job) endBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.Terminal() {
		return nil
	}
	if j.endFrame == nil {
		f := EndFrame{
			End:           true,
			State:         j.state,
			Emitted:       j.emitted,
			Partial:       j.partial,
			NodesExpanded: j.nodes,
			StopReason:    j.stopReason,
			Error:         j.errMsg,
		}
		if j.hasGap && j.partial {
			gap := j.gap
			f.Gap = &gap
		}
		raw, err := json.Marshal(f)
		if err != nil { // impossible: fixed field types
			raw = []byte(`{"end":true}`)
		}
		j.endFrame = raw
	}
	return j.endFrame
}

// next returns the result records from index from onward, whether the job
// is finished, and — when it is not — a channel that is closed on the
// next append or state change. The channel is captured under the same
// lock as the batch, so no update can be missed.
func (j *Job) next(from int) (batch []json.RawMessage, terminal bool, wake <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.results) {
		batch = j.results[from:]
	}
	return batch, j.state.Terminal(), j.wake
}

// JobStatus is the wire form of GET /v1/jobs/{id}.
type JobStatus struct {
	ID      string `json:"id"`
	Miner   string `json:"miner"`
	Dataset string `json:"dataset"`
	// Tenant is the principal the job was admitted for ("anonymous" on
	// open deployments).
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// QueueMS is the time the job spent (or, while still queued, has so
	// far spent) waiting for a worker; RunMS is its execution time so far
	// or final. Both are reported separately so a slow queue is never
	// mistaken for a slow run.
	QueueMS int64 `json:"queue_ms"`
	RunMS   int64 `json:"run_ms"`
	// Emitted is the number of result records available so far; it grows
	// while the job runs.
	Emitted int    `json:"emitted"`
	Error   string `json:"error,omitempty"`
	// Cached reports that the job replayed a cached result of an identical
	// earlier request instead of mining. Its stats are the original run's.
	Cached bool `json:"cached,omitempty"`
	// Partial, Gap, NodesExpanded and StopReason mirror the NDJSON end
	// frame: set for budgeted anytime runs that hit their budget and for
	// runs interrupted by a deadline or cancellation.
	Partial       bool     `json:"partial,omitempty"`
	Gap           *float64 `json:"gap,omitempty"`
	NodesExpanded int64    `json:"nodes_expanded,omitempty"`
	StopReason    string   `json:"stop_reason,omitempty"`
	// Stats is present once the job is terminal; for cancelled jobs it
	// holds the partial statistics up to the cancellation point.
	Stats      *engine.Stats `json:"stats,omitempty"`
	CreatedAt  string        `json:"created_at"`
	StartedAt  string        `json:"started_at,omitempty"`
	FinishedAt string        `json:"finished_at,omitempty"`
}

// Status snapshots the job for the status endpoint.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Miner:     j.Spec.Miner,
		Dataset:   j.Spec.Dataset,
		Tenant:    tenantName(j.tenant),
		State:     j.state,
		Emitted:   j.emitted,
		Error:     j.errMsg,
		Cached:    j.cached,
		CreatedAt: j.createdAt.Format(time.RFC3339Nano),
	}
	switch {
	case !j.startedAt.IsZero():
		st.QueueMS = j.startedAt.Sub(j.createdAt).Milliseconds()
	case !j.endedAt.IsZero(): // cancelled while queued: never ran
		st.QueueMS = j.endedAt.Sub(j.createdAt).Milliseconds()
	default: // still waiting
		st.QueueMS = time.Since(j.createdAt).Milliseconds()
	}
	if !j.startedAt.IsZero() {
		if !j.endedAt.IsZero() {
			st.RunMS = j.endedAt.Sub(j.startedAt).Milliseconds()
		} else {
			st.RunMS = time.Since(j.startedAt).Milliseconds()
		}
	}
	if j.hasStats {
		stats := j.stats
		st.Stats = &stats
	}
	st.Partial = j.partial
	st.NodesExpanded = j.nodes
	st.StopReason = j.stopReason
	if j.hasGap && j.partial {
		gap := j.gap
		st.Gap = &gap
	}
	if !j.startedAt.IsZero() {
		st.StartedAt = j.startedAt.Format(time.RFC3339Nano)
	}
	if !j.endedAt.IsZero() {
		st.FinishedAt = j.endedAt.Format(time.RFC3339Nano)
	}
	return st
}

// Done exposes the terminal-state channel (closed when the job finishes).
func (j *Job) Done() <-chan struct{} { return j.done }
