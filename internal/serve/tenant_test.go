package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/serve"
)

// keyedService boots a service enforcing the given keys file, with an
// optional fake runner builder (nil keeps real mining).
func keyedService(t *testing.T, cfg serve.KeysFile, workers, depth int, builder serve.RunnerBuilder) (*httptest.Server, *serve.Manager) {
	t.Helper()
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, workers, depth, 0)
	tenants, err := serve.NewTenantsFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr.SetTenants(tenants)
	if builder != nil {
		mgr.SetRunnerBuilder(builder)
	}
	ts := httptest.NewServer(serve.NewServer(mgr))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
		ts.Close()
	})
	return ts, mgr
}

// doKeyed performs one request with an optional API key and returns the
// response (caller closes the body).
func doKeyed(t *testing.T, method, url, key, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// statusKeyed fetches a job status under an API key.
func statusKeyed(t *testing.T, baseURL, key, id string) serve.JobStatus {
	t.Helper()
	resp := doKeyed(t, http.MethodGet, baseURL+"/v1/jobs/"+id, key, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitStateKeyed polls a job status under an API key until pred accepts it.
func waitStateKeyed(t *testing.T, baseURL, key, id string, pred func(serve.JobStatus) bool) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := statusKeyed(t, baseURL, key, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s: timed out, last %+v", id, statusKeyed(t, baseURL, key, id))
	return serve.JobStatus{}
}

// errBody is the structured error envelope every refusal must carry.
type errBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// submitKeyed posts a job spec under key and returns the HTTP status, the
// decoded error envelope (zero on success) and the job status (zero on
// refusal).
func submitKeyed(t *testing.T, baseURL, key string, spec serve.QuerySpec) (int, errBody, serve.JobStatus) {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp := doKeyed(t, http.MethodPost, baseURL+"/v1/jobs", key, string(buf))
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusAccepted {
		var st serve.JobStatus
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("job status: %v: %s", err, raw)
		}
		return resp.StatusCode, errBody{}, st
	}
	var eb errBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Code == "" {
		t.Fatalf("refusal without structured code: status %d, body %s", resp.StatusCode, raw)
	}
	if resp.StatusCode == http.StatusTooManyRequests ||
		(resp.StatusCode == http.StatusServiceUnavailable && eb.Code == "queue_full") {
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%d %s refusal without Retry-After", resp.StatusCode, eb.Code)
		}
	}
	return resp.StatusCode, eb, serve.JobStatus{}
}

// instantBuilder returns a RunnerBuilder whose runners finish immediately,
// reporting each run's spec MinSup on order (the WRR pick sequence), except
// specs with MinSup == plugSup, which block until gate closes.
const plugSup = 999

func instantBuilder(order chan int, gate chan struct{}) serve.RunnerBuilder {
	return func(d *farmer.Dataset, snap *farmer.Snapshot, spec serve.JobSpec) (serve.RunnerFunc, error) {
		ms := spec.MinSup
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			if ms == plugSup {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return nil, nil
			}
			if order != nil {
				order <- ms
			}
			return nil, nil
		}, nil
	}
}

// TestHTTPSurfaceGolden pins the service's wire contract: the route table
// and the error-code vocabulary. A diff here is an API change and must be
// deliberate (update this test and the README together).
func TestHTTPSurfaceGolden(t *testing.T) {
	wantRoutes := []string{
		"GET /healthz",
		"GET /version",
		"GET /metrics",
		"GET /v1/datasets",
		"PUT /v1/datasets/{name}",
		"POST /v1/query",
		"POST /v1/jobs",
		"GET /v1/jobs",
		"GET /v1/jobs/{id}",
		"GET /v1/jobs/{id}/results",
		"DELETE /v1/jobs/{id}",
	}
	gotRoutes := serve.Routes()
	if len(gotRoutes) != len(wantRoutes) {
		t.Fatalf("route table: got %d routes %v, want %d", len(gotRoutes), gotRoutes, len(wantRoutes))
	}
	for i := range wantRoutes {
		if gotRoutes[i] != wantRoutes[i] {
			t.Errorf("route %d: got %q, want %q", i, gotRoutes[i], wantRoutes[i])
		}
	}

	wantCodes := []string{
		"admission_rejected",
		"bad_request",
		"dataset_not_found",
		"draining",
		"internal_error",
		"job_not_found",
		"method_not_allowed",
		"not_found",
		"queue_full",
		"quota_exceeded",
		"rate_limited",
		"unauthorized",
	}
	gotCodes := serve.ErrorCodes()
	if len(gotCodes) != len(wantCodes) {
		t.Fatalf("error codes: got %v, want %v", gotCodes, wantCodes)
	}
	for i := range wantCodes {
		if gotCodes[i] != wantCodes[i] {
			t.Errorf("code %d: got %q, want %q", i, gotCodes[i], wantCodes[i])
		}
	}
}

// TestAuthMatrix covers the authentication decisions: missing key, bad
// key, valid key, exempt paths, rate limiting, and a key rotation while a
// job is in flight (the tenant's identity and accounting must survive).
func TestAuthMatrix(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "alice", Key: "ka-v1"},
		{Name: "ratty", Key: "kr", RatePerSec: 0.0001, Burst: 1},
	}}
	ts, mgr := keyedService(t, cfg, 1, 16, instantBuilder(nil, gate))
	defer release()

	// Exempt paths need no key.
	for _, path := range []string{"/healthz", "/version", "/metrics"} {
		resp := doKeyed(t, http.MethodGet, ts.URL+path, "", "")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s without key: %d", path, resp.StatusCode)
		}
	}

	// Missing and unrecognized keys are 401 unauthorized with the
	// structured envelope.
	for _, key := range []string{"", "wrong"} {
		resp := doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", key, "")
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
		var eb errBody
		if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != "unauthorized" {
			t.Fatalf("key %q: body %s, want code unauthorized", key, raw)
		}
	}

	// Valid key: dataset registration and a blocked in-flight submission.
	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "ka-v1", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT with valid key: %d", resp.StatusCode)
	}
	code, _, st := submitKeyed(t, ts.URL, "ka-v1", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: plugSup})
	if code != http.StatusAccepted {
		t.Fatalf("submit with valid key: %d", code)
	}
	if st.Tenant != "alice" {
		t.Fatalf("job tenant %q, want alice", st.Tenant)
	}

	// The X-API-Key header is an accepted alternative to Bearer.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	req.Header.Set("X-API-Key", "ka-v1")
	xresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	xresp.Body.Close()
	if xresp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key request: %d", xresp.StatusCode)
	}

	// Rate limit: burst 1 admits one request, the next is 429 rate_limited
	// with Retry-After.
	resp = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "kr", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ratty request: %d", resp.StatusCode)
	}
	resp = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "kr", "")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ratty request: %d, want 429", resp.StatusCode)
	}
	var eb errBody
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Code != "rate_limited" {
		t.Fatalf("rate limit body %s, want code rate_limited", raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("rate limit response without Retry-After")
	}

	// Rotate alice's key while her job is still running: the old key stops
	// resolving, the new one works, and the job (and its accounting) stays
	// hers.
	if err := mgr.Tenants().Reload(serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "alice", Key: "ka-v2"},
		{Name: "ratty", Key: "kr", RatePerSec: 0.0001, Burst: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	resp = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "ka-v1", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("old key after rotation: %d, want 401", resp.StatusCode)
	}
	resp = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID, "ka-v2", "")
	var mid serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&mid); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mid.Tenant != "alice" {
		t.Fatalf("status via rotated key: %d, tenant %q", resp.StatusCode, mid.Tenant)
	}

	// Release the plug; alice's accounting must credit the run to the
	// same tenant identity that survived the rotation.
	release()
	deadline := time.Now().Add(10 * time.Second)
	aliceT, ok := mgr.Tenants().ByName("alice")
	if !ok {
		t.Fatal("alice missing after rotation")
	}
	for aliceT.Acct.Jobs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("alice's job never credited after rotation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQuotaAndAdmission covers the two submission-time refusals: the
// in-flight quota (429 quota_exceeded, retryable) and the predicted-cost
// budget (403 admission_rejected, not retryable).
func TestQuotaAndAdmission(t *testing.T) {
	gate := make(chan struct{})
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "bob", Key: "kb", MaxInflight: 1},
		{Name: "carol", Key: "kc", MaxCost: 10},
	}}
	ts, _ := keyedService(t, cfg, 1, 16, instantBuilder(nil, gate))

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "kb", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}

	// Quota: bob's single slot is taken by a blocked job; the second
	// distinct submission is refused, and a slot frees on completion.
	code, _, st := submitKeyed(t, ts.URL, "kb", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: plugSup})
	if code != http.StatusAccepted {
		t.Fatalf("bob's first job: %d", code)
	}
	code, eb, _ := submitKeyed(t, ts.URL, "kb", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 7})
	if code != http.StatusTooManyRequests || eb.Code != "quota_exceeded" {
		t.Fatalf("over-quota: status %d code %q, want 429 quota_exceeded", code, eb.Code)
	}
	close(gate)
	waitStateKeyed(t, ts.URL, "kb", st.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	code, _, _ = submitKeyed(t, ts.URL, "kb", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 7})
	if code != http.StatusAccepted {
		t.Fatalf("bob after slot freed: %d", code)
	}

	// Admission: the paper dataset has 5 rows, so a farmer run at
	// minsup=1 predicts 2^5 = 32 nodes — over carol's budget of 10 —
	// while minsup=4 predicts 2^2 = 4 and is admitted.
	code, eb, _ = submitKeyed(t, ts.URL, "kc", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 1})
	if code != http.StatusForbidden || eb.Code != "admission_rejected" {
		t.Fatalf("over-budget: status %d code %q, want 403 admission_rejected", code, eb.Code)
	}
	code, _, _ = submitKeyed(t, ts.URL, "kc", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 4})
	if code != http.StatusAccepted {
		t.Fatalf("under-budget: %d", code)
	}
}

// waitOrder drains n picks from order or fails after a deadline.
func waitOrder(t *testing.T, order chan int, n int) []int {
	t.Helper()
	picks := make([]int, 0, n)
	deadline := time.After(15 * time.Second)
	for len(picks) < n {
		select {
		case ms := <-order:
			picks = append(picks, ms)
		case <-deadline:
			t.Fatalf("scheduler stalled: %d of %d picks, order %v", len(picks), n, picks)
		}
	}
	return picks
}

// TestFairSchedulingAlternates is the fairness stress: one tenant floods
// the queue, a second tenant submits afterwards, and the weighted
// round-robin must interleave them one-for-one (equal weights) instead of
// draining the flood first. Runs under -race in CI.
func TestFairSchedulingAlternates(t *testing.T) {
	order := make(chan int, 64)
	gate := make(chan struct{})
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "greedy", Key: "kg"},
		{Name: "polite", Key: "kp"},
	}}
	ts, _ := keyedService(t, cfg, 1, 64, instantBuilder(order, gate))

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "kg", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}

	// Plug the single worker so every later submission queues behind it.
	_, _, plug := submitKeyed(t, ts.URL, "kg", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: plugSup})

	var ids []string
	for i := 0; i < 10; i++ { // greedy floods first
		code, _, st := submitKeyed(t, ts.URL, "kg", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 100 + i})
		if code != http.StatusAccepted {
			t.Fatalf("greedy job %d: %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < 5; i++ { // polite arrives second
		code, _, st := submitKeyed(t, ts.URL, "kp", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 200 + i})
		if code != http.StatusAccepted {
			t.Fatalf("polite job %d: %d", i, code)
		}
		ids = append(ids, st.ID)
	}

	// With the plug still holding the only worker, every submission above
	// is waiting — the status split must show queue time and no run time.
	time.Sleep(20 * time.Millisecond)
	queuedSt := statusKeyed(t, ts.URL, "kg", ids[len(ids)-1])
	if queuedSt.State != serve.StateQueued || queuedSt.QueueMS < 10 {
		t.Errorf("queued job wait split: %+v", queuedSt)
	}
	close(gate)

	picks := waitOrder(t, order, 15)
	// While both queues hold work the scheduler must alternate; greedy's
	// tail drains after polite empties. Greedy submitted first, so each
	// round starts with greedy on the tie-break.
	want := []int{100, 200, 101, 201, 102, 202, 103, 203, 104, 204, 105, 106, 107, 108, 109}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("pick order %v, want %v (diverges at %d)", picks, want, i)
		}
	}

	// Every job terminates, and the status wire form separates queue wait
	// from run time: queued-behind-the-plug jobs carry a queue wait, and
	// the plug itself carries its (gated) run time.
	for _, id := range ids {
		st := waitStateKeyed(t, ts.URL, "kg", id, func(s serve.JobStatus) bool { return s.State.Terminal() })
		if st.State != serve.StateDone {
			t.Fatalf("job %s: state %s", id, st.State)
		}
	}
	last := waitStateKeyed(t, ts.URL, "kg", ids[len(ids)-1], func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	if last.QueueMS < 10 {
		t.Errorf("finished job lost its queue wait: %+v", last)
	}
	// The plug spent its life running (gated), not queued: its run time
	// covers the 20ms the gate stayed shut.
	plugFinal := waitStateKeyed(t, ts.URL, "kg", plug.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	if plugFinal.RunMS < 10 || plugFinal.StartedAt == "" || plugFinal.FinishedAt == "" {
		t.Errorf("plug job run accounting incomplete: %+v", plugFinal)
	}
}

// TestFairSchedulingWeights checks proportional interleaving: weight 3 vs
// weight 1 gives the heavy tenant three of every four picks, spread out
// (never a burst of four).
func TestFairSchedulingWeights(t *testing.T) {
	order := make(chan int, 64)
	gate := make(chan struct{})
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "heavy", Key: "kh", Weight: 3},
		{Name: "light", Key: "kl", Weight: 1},
	}}
	ts, _ := keyedService(t, cfg, 1, 64, instantBuilder(order, gate))

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "kh", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}

	_, _, _ = submitKeyed(t, ts.URL, "kh", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: plugSup})
	for i := 0; i < 9; i++ {
		if code, _, _ := submitKeyed(t, ts.URL, "kh", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 100 + i}); code != http.StatusAccepted {
			t.Fatalf("heavy job %d: %d", i, code)
		}
	}
	for i := 0; i < 3; i++ {
		if code, _, _ := submitKeyed(t, ts.URL, "kl", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 200 + i}); code != http.StatusAccepted {
			t.Fatalf("light job %d: %d", i, code)
		}
	}
	close(gate)

	picks := waitOrder(t, order, 12)
	// Smooth WRR at 3:1 yields h,h,l,h per round while both have work.
	lightAt := []int{}
	for i, ms := range picks {
		if ms >= 200 {
			lightAt = append(lightAt, i)
		}
	}
	if len(lightAt) != 3 {
		t.Fatalf("light picks %v in %v", lightAt, picks)
	}
	// One light pick per full round of four, never two adjacent rounds
	// skipped: positions 2, 6, 10 exactly.
	want := []int{2, 6, 10}
	for i := range want {
		if lightAt[i] != want[i] {
			t.Fatalf("light picks at %v, want %v (order %v)", lightAt, want, picks)
		}
	}
}

// TestJobsListFilters covers the GET /v1/jobs query surface: bounded
// newest-first pages, ?state= and ?tenant= filters, and rejection of
// malformed parameters.
func TestJobsListFilters(t *testing.T) {
	order := make(chan int, 64)
	gate := make(chan struct{})
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "alice", Key: "ka"},
		{Name: "bob", Key: "kb"},
	}}
	ts, _ := keyedService(t, cfg, 1, 64, instantBuilder(order, gate))
	close(gate)

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "ka", paperExample)
	resp.Body.Close()

	var last string
	for i := 0; i < 4; i++ {
		_, _, st := submitKeyed(t, ts.URL, "ka", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 100 + i})
		last = st.ID
	}
	_, _, bobJob := submitKeyed(t, ts.URL, "kb", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 300})
	waitStateKeyed(t, ts.URL, "kb", bobJob.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	waitStateKeyed(t, ts.URL, "ka", last, func(s serve.JobStatus) bool { return s.State.Terminal() })

	list := func(query string) ([]serve.JobStatus, int) {
		resp := doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs"+query, "ka", "")
		defer resp.Body.Close()
		var out []serve.JobStatus
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		return out, resp.StatusCode
	}

	all, code := list("")
	if code != http.StatusOK || len(all) != 5 {
		t.Fatalf("unfiltered list: status %d, %d jobs", code, len(all))
	}
	seq := func(id string) int {
		n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
		if err != nil {
			t.Fatalf("job id %q", id)
		}
		return n
	}
	for i := 1; i < len(all); i++ { // newest first
		if seq(all[i-1].ID) < seq(all[i].ID) {
			t.Fatalf("list not newest-first: %s before %s", all[i-1].ID, all[i].ID)
		}
	}

	page, _ := list("?limit=2")
	if len(page) != 2 {
		t.Fatalf("limit=2 returned %d jobs", len(page))
	}
	if page[0].ID != bobJob.ID {
		t.Fatalf("newest job %s, want %s", page[0].ID, bobJob.ID)
	}

	bobs, _ := list("?tenant=bob")
	if len(bobs) != 1 || bobs[0].Tenant != "bob" {
		t.Fatalf("tenant filter: %+v", bobs)
	}
	none, _ := list("?tenant=nobody")
	if len(none) != 0 {
		t.Fatalf("unknown tenant matched %d jobs", len(none))
	}
	done, _ := list("?state=done")
	if len(done) != 5 {
		t.Fatalf("state=done: %d jobs", len(done))
	}
	queued, _ := list("?state=queued")
	if len(queued) != 0 {
		t.Fatalf("state=queued: %d jobs", len(queued))
	}

	if _, code := list("?state=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus state: %d", code)
	}
	if _, code := list("?limit=0"); code != http.StatusBadRequest {
		t.Fatalf("limit=0: %d", code)
	}
	if _, code := list("?limit=x"); code != http.StatusBadRequest {
		t.Fatalf("limit=x: %d", code)
	}
}
