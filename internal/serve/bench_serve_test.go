package serve_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// benchManager builds a registry + manager over the paper example with the
// given cache budget and tears both down when the benchmark ends.
func benchManager(b *testing.B, cacheBytes int64) *serve.Manager {
	b.Helper()
	reg := serve.NewRegistry()
	if _, err := reg.Load("paper", "transactions", 0, strings.NewReader(paperExample)); err != nil {
		b.Fatal(err)
	}
	mgr := serve.NewManager(reg, 0, 64, cacheBytes)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return mgr
}

func submitWait(b *testing.B, mgr *serve.Manager, spec serve.JobSpec) {
	b.Helper()
	job, err := mgr.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	<-job.Done()
	if st := job.Status(); st.State != serve.StateDone {
		b.Fatalf("job state %q: %s", st.State, st.Error)
	}
}

// BenchmarkJobCold measures a repeated identical request with caching
// disabled: every submission mines from scratch (snapshot reuse still
// applies — that is the registry's job, not the cache's).
func BenchmarkJobCold(b *testing.B) {
	mgr := benchManager(b, 0)
	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	submitWait(b, mgr, spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, mgr, spec)
	}
}

// BenchmarkJobWarm measures the same request against a primed result
// cache: every submission replays stored records without touching a
// worker.
func BenchmarkJobWarm(b *testing.B) {
	mgr := benchManager(b, serve.DefaultCacheBytes)
	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	submitWait(b, mgr, spec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submitWait(b, mgr, spec)
	}
}
