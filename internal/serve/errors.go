package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Stable machine-readable error codes. Every error response leaving the
// service carries exactly one of these in its "code" field; clients branch
// on the code, never on the human-readable message. The vocabulary is
// append-only — codes are part of the v1 wire contract (see README).
const (
	// CodeBadRequest: malformed body, unknown field, invalid option.
	CodeBadRequest = "bad_request"
	// CodeUnauthorized: missing or unrecognized API key (401).
	CodeUnauthorized = "unauthorized"
	// CodeRateLimited: the tenant's token bucket is empty (429,
	// Retry-After set).
	CodeRateLimited = "rate_limited"
	// CodeQuotaExceeded: the tenant is at its in-flight job quota (429,
	// Retry-After set).
	CodeQuotaExceeded = "quota_exceeded"
	// CodeAdmissionRejected: the job's predicted cost exceeds the
	// tenant's budget (403) — retrying without changing the request is
	// pointless.
	CodeAdmissionRejected = "admission_rejected"
	// CodeQueueFull: the global job queue is at capacity (503,
	// Retry-After set).
	CodeQueueFull = "queue_full"
	// CodeDraining: the service is shutting down (503).
	CodeDraining = "draining"
	// CodeDatasetNotFound: the spec names an unregistered dataset (404).
	CodeDatasetNotFound = "dataset_not_found"
	// CodeJobNotFound: unknown job id (404).
	CodeJobNotFound = "job_not_found"
	// CodeNotFound: no route matched the path (404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the path exists but not for this method (405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeInternal: an unexpected server-side failure (5xx).
	CodeInternal = "internal_error"
)

// ErrorCodes returns the complete error-code vocabulary, sorted — pinned
// by the HTTP-surface golden test the way api_surface_test.go pins the Go
// surface.
func ErrorCodes() []string {
	return []string{
		CodeAdmissionRejected,
		CodeBadRequest,
		CodeDatasetNotFound,
		CodeDraining,
		CodeInternal,
		CodeJobNotFound,
		CodeMethodNotAllowed,
		CodeNotFound,
		CodeQueueFull,
		CodeQuotaExceeded,
		CodeRateLimited,
		CodeUnauthorized,
	}
}

// errorBody is the one error envelope of the v1 API.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError emits the structured error envelope.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), Code: code})
}

// writeErrorRetry is writeError plus a Retry-After header (rounded up to a
// whole second, minimum 1) — the 429/503 shape of the backpressure and
// rate-limit rejections.
func writeErrorRetry(w http.ResponseWriter, status int, code string, err error, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeError(w, status, code, err)
}

// QuotaError rejects a submission because the tenant already has its
// maximum number of jobs queued or running. RetryAfter hints when a slot
// is plausibly free.
type QuotaError struct {
	Tenant   string
	Inflight int
	Limit    int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("serve: tenant %q is at its in-flight job quota (%d of %d)", e.Tenant, e.Inflight, e.Limit)
}

// AdmissionError rejects a submission whose predicted enumeration cost
// exceeds the tenant's budget. Predicted is the COBBLER-style node
// estimate for the (dataset shape, options) pair; Budget is the tenant's
// configured ceiling.
type AdmissionError struct {
	Tenant    string
	Predicted float64
	Budget    float64
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: predicted cost %.3g exceeds tenant %q budget %.3g (raise minsup or narrow the query)", e.Predicted, e.Tenant, e.Budget)
}

// RateLimitError rejects a request whose tenant token bucket is empty.
type RateLimitError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("serve: tenant %q is rate limited", e.Tenant)
}
