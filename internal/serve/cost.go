package serve

import (
	"sort"

	farmer "repro"
)

// CostModel predicts a job's enumeration cost from the dataset's shape,
// seeded from COBBLER's mode-selection estimator (the same arithmetic that
// picks row vs feature enumeration per subtree, applied once at admission
// time over the whole dataset): the row-enumeration tree is bounded by
// 2^(rows−minsup+1) — the combination depth before the support cut fires —
// and the feature-enumeration tree by summing 2^level over start positions
// in descending item-support order, where level is the deepest k with
// S(f1)·…·S(fk)·rows ≥ minsup. The model is computed once per dataset
// registration (one frequency pass) and cached on the registry entry.
type CostModel struct {
	// Rows is the dataset's row count.
	Rows int
	// counts holds per-item support counts, descending.
	counts []int
}

// newCostModel builds the model with one pass over the rows.
func newCostModel(d *farmer.Dataset) *CostModel {
	freq := make([]int, d.NumItems)
	for _, r := range d.Rows {
		for _, it := range r.Items {
			freq[it]++
		}
	}
	counts := make([]int, 0, len(freq))
	for _, c := range freq {
		if c > 0 {
			counts = append(counts, c)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return &CostModel{Rows: len(d.Rows), counts: counts}
}

// estimateCap is the saturation value of both estimators: once an estimate
// exceeds any plausible budget there is no point refining it.
const estimateCap = 1e18

func costPow2(k int) float64 {
	if k > 60 {
		return estimateCap
	}
	return float64(int64(1) << uint(k))
}

// rowEstimate bounds the row-enumeration tree by 2^(rows−minsup+1).
func (c *CostModel) rowEstimate(minsup int) float64 {
	depth := c.Rows - minsup + 1
	if depth < 0 {
		depth = 0
	}
	return costPow2(depth)
}

// featureEstimate mirrors COBBLER's estimator over the frequent items.
func (c *CostModel) featureEstimate(minsup int) float64 {
	fr := float64(c.Rows)
	if fr == 0 {
		return 0
	}
	fracs := make([]float64, 0, len(c.counts))
	for _, n := range c.counts { // counts are descending, so fracs are too
		if n < minsup {
			break
		}
		fracs = append(fracs, float64(n)/fr)
	}
	total := 0.0
	for start := range fracs {
		expected := fr
		level := 0
		for k := start; k < len(fracs); k++ {
			expected *= fracs[k]
			if expected < float64(minsup) {
				break
			}
			level++
		}
		total += costPow2(level)
		if total > 1e12 {
			return estimateCap
		}
	}
	return total
}

// Estimate predicts the enumeration cost of spec against this dataset:
// the row bound for the row enumerators, the feature bound for the column
// enumerators, and — like COBBLER's own mode pick — the cheaper of the two
// for miners that switch. The figure is dimensionless (estimated node
// expansions); tenant budgets (TenantConfig.MaxCost) are calibrated
// against it.
func (c *CostModel) Estimate(spec QuerySpec) float64 {
	minsup := spec.MinSup
	if minsup < 1 {
		minsup = 1
	}
	switch spec.Miner {
	case "farmer", "topk", "carpenter":
		return c.rowEstimate(minsup)
	case "charm", "closet", "columne":
		return c.featureEstimate(minsup)
	default: // cobbler and anything future: assume the cheaper mode
		row, feat := c.rowEstimate(minsup), c.featureEstimate(minsup)
		if row < feat {
			return row
		}
		return feat
	}
}
