package serve

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CheckPromText validates a Prometheus text-exposition (version 0.0.4)
// payload: every line must be a well-formed HELP/TYPE comment or a sample
// whose metric name, label set and value parse, TYPE declarations must
// name a known metric type, and no (name, labels) series may repeat. It
// returns the number of sample lines seen so callers can also assert the
// scrape was non-trivial.
//
// This is the CI gate behind the farmerd smoke test's /metrics scrape —
// a dependency-free subset of what a real Prometheus server enforces at
// ingestion, strict enough to catch the realistic failure modes of a
// hand-rolled renderer (unescaped label values, missing values, duplicate
// series, malformed histogram lines).
func CheckPromText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	seen := map[string]bool{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		series, err := checkSample(line)
		if err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if seen[series] {
			return samples, fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// checkComment validates a "# HELP name ..." or "# TYPE name kind" line.
// Other comments are allowed by the format and pass through.
func checkComment(line string) error {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimLeft(rest, " ")
	switch {
	case strings.HasPrefix(rest, "HELP "):
		fields := strings.SplitN(rest[len("HELP "):], " ", 2)
		if fields[0] == "" || !validMetricName(fields[0]) {
			return fmt.Errorf("HELP names invalid metric %q", fields[0])
		}
	case strings.HasPrefix(rest, "TYPE "):
		fields := strings.Fields(rest[len("TYPE "):])
		if len(fields) != 2 {
			return fmt.Errorf("TYPE wants \"name kind\": %q", line)
		}
		if !validMetricName(fields[0]) {
			return fmt.Errorf("TYPE names invalid metric %q", fields[0])
		}
		switch fields[1] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s: unknown kind %q", fields[0], fields[1])
		}
	}
	return nil
}

// checkSample validates one sample line and returns its series identity
// (name plus raw label block) for duplicate detection.
func checkSample(line string) (string, error) {
	nameEnd := 0
	for nameEnd < len(line) && isNameChar(line[nameEnd], nameEnd == 0) {
		nameEnd++
	}
	if nameEnd == 0 {
		return "", fmt.Errorf("no metric name: %q", line)
	}
	name := line[:nameEnd]
	rest := line[nameEnd:]

	series := name
	if strings.HasPrefix(rest, "{") {
		end, err := checkLabels(name, rest)
		if err != nil {
			return "", err
		}
		series = name + rest[:end]
		rest = rest[end:]
	}

	rest = strings.TrimLeft(rest, " \t")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", fmt.Errorf("%s: want \"value [timestamp]\", got %q", series, rest)
	}
	if _, err := parsePromValue(fields[0]); err != nil {
		return "", fmt.Errorf("%s: bad value %q", series, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", fmt.Errorf("%s: bad timestamp %q", series, fields[1])
		}
	}
	return series, nil
}

// checkLabels validates the {label="value",...} block opening rest and
// returns the index just past its closing brace.
func checkLabels(metric, rest string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return 0, fmt.Errorf("%s: unterminated label block", metric)
		}
		if rest[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(rest) && isNameChar(rest[i], i == start) {
			i++
		}
		if i == start {
			return 0, fmt.Errorf("%s: empty label name at %q", metric, rest[i:])
		}
		if i >= len(rest) || rest[i] != '=' {
			return 0, fmt.Errorf("%s: label %q missing '='", metric, rest[start:i])
		}
		i++
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("%s: label %q value not quoted", metric, rest[start:i-1])
		}
		i++
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' {
				// Escapes: \\ \" \n are the format's complete set.
				if i+1 >= len(rest) {
					return 0, fmt.Errorf("%s: dangling escape", metric)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("%s: bad escape \\%c", metric, rest[i+1])
				}
				i++
			} else if rest[i] == '\n' {
				return 0, fmt.Errorf("%s: unescaped newline in label value", metric)
			}
			i++
		}
		if i >= len(rest) {
			return 0, fmt.Errorf("%s: unterminated label value", metric)
		}
		i++ // closing quote
		if i < len(rest) && rest[i] == ',' {
			i++
		}
	}
}

// parsePromValue accepts any float plus the format's special values.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return true
}

// isNameChar reports whether c may appear in a metric/label name; digits
// are excluded at the first position.
func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
