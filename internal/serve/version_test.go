package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
)

func TestHealthzAndVersion(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/mini", paperExample)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health map[string]bool
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health["ok"] {
		t.Fatalf("healthz = %v", health)
	}

	vresp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("version status %d", vresp.StatusCode)
	}
	var v serve.VersionInfo
	if err := json.NewDecoder(vresp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Service != "farmerd" || !strings.HasPrefix(v.GoVersion, "go") {
		t.Fatalf("version = %+v", v)
	}
	// One dataset registered above: the generation counter must show it.
	if v.Generation != 1 {
		t.Fatalf("generation = %d, want 1", v.Generation)
	}
}

// Every error response must be structured JSON — including the ones the
// ServeMux itself produces for unmatched routes and methods, which a
// cluster client would otherwise fail to parse.
func TestAllErrorResponsesAreJSON(t *testing.T) {
	ts, _ := service(t, 1, 4)

	for _, tc := range []struct {
		method, path, body string
		wantStatus         int
	}{
		{http.MethodGet, "/no/such/route", "", http.StatusNotFound},
		{http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/v1/datasets/mini", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/jobs/job-999", "", http.StatusNotFound},
		{http.MethodPost, "/v1/jobs", "{not json", http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{"miner":"nope","dataset":"x"}`, http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s %s: content type %q, body %q", tc.method, tc.path, ct, raw)
			continue
		}
		var msg struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &msg); err != nil || msg.Error == "" {
			t.Errorf("%s %s: body %q is not {\"error\": ...}: %v", tc.method, tc.path, raw, err)
		}
	}
}
