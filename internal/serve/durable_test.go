package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/serve"
	"repro/internal/store"
)

// durableService boots a store-backed service over dir and returns it with
// a shutdown function that drains the manager, closes the HTTP server and
// the store, and waits for the store's evictor goroutine to exit.
func durableService(t *testing.T, dir string) (*httptest.Server, *serve.Registry, func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistryWithStore(st)
	mgr := serve.NewManager(reg, 2, 8, serve.DefaultCacheBytes)
	ts := httptest.NewServer(serve.NewServer(mgr))
	var once bool
	shutdown := func() {
		if once {
			return
		}
		once = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
		ts.Close()
		if err := st.Close(); err != nil {
			t.Errorf("store close: %v", err)
		}
	}
	t.Cleanup(shutdown)
	return ts, reg, shutdown
}

func listDatasets(t *testing.T, baseURL string) map[string]serve.DatasetInfo {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []serve.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]serve.DatasetInfo, len(infos))
	for _, i := range infos {
		out[i.Name] = i
	}
	return out
}

// TestRestartServesStoredDatasets is the service-level durability contract:
// a server restarted over the same store directory serves every dataset
// without re-upload, with identical mining results, and with the
// generation counter continuing from its persisted value so the result
// cache can never confuse pre- and post-restart registrations.
func TestRestartServesStoredDatasets(t *testing.T) {
	dir := t.TempDir()
	base := runtime.NumGoroutine()

	// First life: upload both dataset formats, mine one, remember results.
	ts, reg, shutdown := durableService(t, dir)
	put(t, ts.URL+"/v1/datasets/paper?format=transactions", paperExample)
	matrix := "label,g1,g2,g3\nA,0.1,5.0,2.2\nA,0.2,4.8,2.4\nB,0.9,1.0,0.3\nB,0.8,1.2,0.2\n"
	put(t, ts.URL+"/v1/datasets/expr?format=matrix&buckets=2", matrix)

	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", Class: "C", MinSup: 2, MinConf: 0.7, LowerBounds: true}
	st1 := submit(t, ts.URL, spec)
	waitState(t, ts.URL, st1.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	want := streamLines(t, ts.URL, st1.ID)
	gen := reg.Generation()
	if gen != 2 {
		t.Fatalf("generation after two uploads = %d, want 2", gen)
	}
	shutdown()

	// The evictor goroutine must die with the store: no leak across lives.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutine leak across restart: %d before, %d after shutdown", base, n)
	}

	// Second life over the same directory: no uploads.
	ts2, reg2, shutdown2 := durableService(t, dir)
	if got := reg2.Generation(); got != gen {
		t.Fatalf("generation after restart = %d, want %d", got, gen)
	}
	infos := listDatasets(t, ts2.URL)
	if len(infos) != 2 {
		t.Fatalf("restarted server lists %d datasets, want 2: %+v", len(infos), infos)
	}
	d := loadExample(t)
	if got := infos["paper"]; got.Rows != d.NumRows() || got.Items != d.NumItems || len(got.Classes) != 2 {
		t.Fatalf("restored paper info = %+v", got)
	}
	if got := infos["expr"]; got.Rows != 4 {
		t.Fatalf("restored expr info = %+v", got)
	}

	// Mining the restored dataset reproduces the pre-restart stream exactly,
	// and matches the library run (the snapshot was decoded from disk).
	st2 := submit(t, ts2.URL, spec)
	waitState(t, ts2.URL, st2.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	got := streamLines(t, ts2.URL, st2.ID)
	equalLines(t, "post-restart farmer stream", got, want)
	lib := expectedFarmerLines(t, d, d.ClassIndex("C"),
		farmer.MineOptions{MinSup: 2, MinConf: 0.7, ComputeLowerBounds: true})
	equalLines(t, "post-restart vs library", got, lib)

	// The restored expr dataset mines without re-upload too.
	me := submit(t, ts2.URL, serve.JobSpec{Miner: "farmer", Dataset: "expr", Class: "A", MinSup: 1})
	final := waitState(t, ts2.URL, me.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateDone || final.Emitted == 0 {
		t.Fatalf("restored expr mine: state %q, emitted %d, error %q", final.State, final.Emitted, final.Error)
	}

	// Re-registering after the restart moves to a never-seen generation.
	put(t, ts2.URL+"/v1/datasets/paper?format=transactions", paperExample)
	if got := reg2.Generation(); got != gen+1 {
		t.Fatalf("generation after post-restart re-upload = %d, want %d", got, gen+1)
	}
	shutdown2()
}

// TestRegistryPutFailureLeavesNoPartialState injects a writer that fails —
// after corrupting its target, the worst case — and asserts a failed
// registration is invisible everywhere: no entry, no burned generation, no
// snapshot file, and the same name registers cleanly once persistence
// recovers.
func TestRegistryPutFailureLeavesNoPartialState(t *testing.T) {
	dir := t.TempDir()
	failing := true
	st, err := store.Open(dir, store.Options{
		WriteFile: func(path string, data []byte) error {
			if failing {
				os.WriteFile(path, data[:len(data)/2], 0o644) // half-written target
				return errors.New("injected disk failure")
			}
			return os.WriteFile(path, data, 0o644)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	reg := serve.NewRegistryWithStore(st)
	d := loadExample(t)

	if err := reg.Put("paper", d); err == nil {
		t.Fatal("Put with failing writer succeeded")
	}
	if got := reg.Generation(); got != 0 {
		t.Fatalf("failed Put burned generation: %d", got)
	}
	if names := reg.Names(); len(names) != 0 {
		t.Fatalf("failed Put left registry entries: %v", names)
	}
	if _, ok := reg.Get("paper"); ok {
		t.Fatal("failed Put left a loadable dataset")
	}
	snaps, err := os.ReadDir(filepath.Join(dir, "snapshots"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("failed Put left %d files in the snapshot directory", len(snaps))
	}

	// Persistence recovers; the same name registers with the next generation.
	failing = false
	if err := reg.Put("paper", d); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if got := reg.Generation(); got != 1 {
		t.Fatalf("generation after recovery = %d, want 1", got)
	}
	d2, snap, gen, err := reg.Entry("paper")
	if err != nil || d2 == nil || snap == nil || gen != 1 {
		t.Fatalf("Entry after recovery: d=%v snap=%v gen=%d err=%v", d2 != nil, snap != nil, gen, err)
	}
}
