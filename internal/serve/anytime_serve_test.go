package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// lastFrame splits an NDJSON body into its record lines and the decoded
// end frame, requiring the trailer to be present and last.
func lastFrame(t *testing.T, body []byte) ([]string, serve.EndFrame) {
	t.Helper()
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, `{"end":true`) {
		t.Fatalf("body does not end with an end frame, last line %q", last)
	}
	var frame serve.EndFrame
	if err := json.Unmarshal([]byte(last), &frame); err != nil {
		t.Fatalf("bad end frame %q: %v", last, err)
	}
	records := lines[:len(lines)-1]
	if len(records) == 1 && records[0] == "" {
		records = nil
	}
	return records, frame
}

// Invalid anytime option combinations are rejected at submission time with
// 400, never queued.
func TestAnytimeSpecValidation(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	for _, tc := range []struct {
		name string
		spec serve.QuerySpec
	}{
		{"budget on non-topk", serve.QuerySpec{Miner: "charm", Dataset: "paper", MinSup: 2, MaxMillis: 5}},
		{"quality on non-topk", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 2, Quality: "best_first"}},
		{"negative max_millis", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 2, MaxMillis: -1}},
		{"negative max_nodes", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 2, MaxNodes: -1}},
		{"negative delta", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 2, Quality: "leap", Delta: -0.5, MaxNodes: 10}},
		{"delta without leap", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 2, Delta: 0.5, MaxNodes: 10}},
		{"sample without budget", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 2, Quality: "sample"}},
		{"unknown quality", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 2, Quality: "psychic"}},
	} {
		resp, body := query(t, ts.URL, tc.spec, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", tc.name, resp.StatusCode, body)
		}
	}
}

// The acceptance check for budget adherence: a tight max_millis query over
// a dataset whose exhaustive mine takes on the order of a second returns
// within the budget plus one node expansion's slack, flagged partial with
// stop_reason "budget", a certified gap and a node count — and is never
// cached, so re-asking mines again.
func TestBudgetedQueryDeadlineAdherenceAndNoCache(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())
	spec := serve.QuerySpec{Miner: "topk", Dataset: "slow", K: 10, MinSup: 1, MaxMillis: 150}

	start := time.Now()
	resp, body := query(t, ts.URL, spec, nil)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted query: status %d (%s)", resp.StatusCode, body)
	}
	// 150ms budget, generous scheduling slack: an unbudgeted run of this
	// dataset takes far longer than 3s at minsup=1.
	if elapsed > 3*time.Second {
		t.Fatalf("budgeted query took %v, budget was 150ms", elapsed)
	}
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("budgeted query X-Cache = %q, want MISS", got)
	}
	records, frame := lastFrame(t, body)
	if !frame.Partial || frame.State != serve.StateDone {
		t.Fatalf("end frame %+v: want partial done", frame)
	}
	if frame.StopReason != "budget" {
		t.Fatalf("stop_reason %q, want budget", frame.StopReason)
	}
	if frame.NodesExpanded <= 0 {
		t.Fatalf("nodes_expanded %d, want > 0", frame.NodesExpanded)
	}
	if frame.Gap == nil || *frame.Gap < 0 {
		t.Fatalf("gap %v, want certified >= 0", frame.Gap)
	}
	if frame.Emitted != len(records) {
		t.Fatalf("end frame says %d emitted, stream carries %d records", frame.Emitted, len(records))
	}
	if len(records) == 0 {
		t.Fatal("budgeted run returned no groups at all")
	}

	// Partial answers are never cached: the identical re-ask is a fresh
	// mine (MISS), because re-mining may find a better answer.
	resp2, body2 := query(t, ts.URL, spec, nil)
	if got := resp2.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("repeat budgeted query X-Cache = %q, want MISS", got)
	}
	if _, frame2 := lastFrame(t, body2); !frame2.Partial {
		t.Fatalf("repeat budgeted run not partial: %+v", frame2)
	}
}

// A budgeted run whose search exhausts inside the budget is a clean
// complete answer: not partial, gap omitted — and cacheable, so the repeat
// replays.
func TestBudgetedQueryCompleteRunIsCached(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	spec := serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 3, MinSup: 1, MaxMillis: 60_000}

	resp, body := query(t, ts.URL, spec, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	records, frame := lastFrame(t, body)
	if frame.Partial || frame.Gap != nil || frame.StopReason != "" {
		t.Fatalf("complete budgeted run's end frame %+v: want clean done", frame)
	}
	if len(records) != 3 {
		t.Fatalf("%d records, want 3", len(records))
	}

	warm, warmBody := query(t, ts.URL, spec, nil)
	if got := warm.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat complete budgeted query X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(warmBody, body) {
		t.Fatalf("cached replay differs from live stream:\n got %q\nwant %q", warmBody, body)
	}
}

// Node budgets are deterministic: the same max_nodes query through the
// jobs API reports the anytime verdict on its status too.
func TestNodeBudgetJobStatusCarriesVerdict(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())

	st := submit(t, ts.URL, serve.QuerySpec{Miner: "topk", Dataset: "slow", K: 10, MinSup: 1, MaxNodes: 50})
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateDone {
		t.Fatalf("state %q (error %q), want done", final.State, final.Error)
	}
	if !final.Partial || final.StopReason != "budget" {
		t.Fatalf("status partial=%v stop_reason=%q, want partial budget stop", final.Partial, final.StopReason)
	}
	if final.NodesExpanded <= 0 {
		t.Fatalf("status nodes_expanded %d, want > 0", final.NodesExpanded)
	}
	if final.Gap == nil || *final.Gap < 0 {
		t.Fatalf("status gap %v, want certified >= 0", final.Gap)
	}
}

// A TimeoutMS deadline on an exact (unbudgeted) job ends it cancelled with
// stop_reason "deadline", and its stream closes with a partial end frame —
// distinct from an explicit DELETE, which reports "cancel".
func TestDeadlineVersusCancelStopReason(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())

	// Deadline: the server-side timeout fires mid-run.
	st := submit(t, ts.URL, serve.QuerySpec{Miner: "farmer", Dataset: "slow", MinSup: 1, TimeoutMS: 100})
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateCancelled {
		t.Fatalf("deadline job state %q, want cancelled", final.State)
	}
	if !final.Partial || final.StopReason != "deadline" {
		t.Fatalf("deadline job partial=%v stop_reason=%q, want partial deadline", final.Partial, final.StopReason)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	_, frame := lastFrame(t, body)
	if !frame.Partial || frame.State != serve.StateCancelled || frame.StopReason != "deadline" {
		t.Fatalf("deadline end frame %+v, want partial cancelled deadline", frame)
	}

	// Explicit cancel: DELETE mid-run reports "cancel".
	st2 := submit(t, ts.URL, serve.QuerySpec{Miner: "farmer", Dataset: "slow", MinSup: 1})
	waitState(t, ts.URL, st2.ID, func(s serve.JobStatus) bool {
		return s.State == serve.StateRunning && s.Emitted > 0
	})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	final2 := waitState(t, ts.URL, st2.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final2.StopReason != "cancel" || !final2.Partial {
		t.Fatalf("cancelled job partial=%v stop_reason=%q, want partial cancel", final2.Partial, final2.StopReason)
	}
}

// After a partial run, the scrape carries the partial-jobs counter and the
// budget-utilization histogram, and stays valid exposition text.
func TestAnytimeMetricsSeries(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())

	resp, _ := query(t, ts.URL, serve.QuerySpec{Miner: "topk", Dataset: "slow", K: 5, MinSup: 1, MaxMillis: 100}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted query: status %d", resp.StatusCode)
	}

	// The counters land just after the stream closes; poll the scrape
	// briefly instead of racing the worker's bookkeeping.
	var body []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		mresp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = readAll(mresp)
		if mresp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics: %d", mresp.StatusCode)
		}
		if bytes.Contains(body, []byte("farmerd_jobs_partial_total 1")) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := serve.CheckPromText(bytes.NewReader(body)); err != nil {
		t.Fatalf("malformed exposition: %v", err)
	}
	text := string(body)
	if !strings.Contains(text, "farmerd_jobs_partial_total 1") {
		t.Errorf("scrape missing farmerd_jobs_partial_total 1")
	}
	for _, want := range []string{
		`farmerd_budget_utilization_ratio_bucket{le="+Inf"} 1`,
		"farmerd_budget_utilization_ratio_count 1",
		"farmerd_budget_utilization_ratio_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %s", want)
		}
	}
}

// Budgeted jobs bypass cost admission — the budget caps their cost — so a
// tenant over its MaxCost for the exact mine can still run the same query
// interactively.
func TestBudgetedJobsBypassCostAdmission(t *testing.T) {
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{
		{Name: "carol", Key: "kc", MaxCost: 10},
	}}
	ts, _ := keyedService(t, cfg, 1, 8, nil)

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "kc", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}

	// Exact topk at minsup=1 predicts 2^5 = 32 nodes, over carol's budget
	// of 10: refused.
	code, eb, _ := submitKeyed(t, ts.URL, "kc", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 3, MinSup: 1})
	if code != http.StatusForbidden || eb.Code != "admission_rejected" {
		t.Fatalf("exact over-budget topk: status %d code %q, want 403 admission_rejected", code, eb.Code)
	}

	// The same query with a budget rides the interactive lane past
	// admission and completes.
	code, _, st := submitKeyed(t, ts.URL, "kc", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 3, MinSup: 1, MaxMillis: 5_000})
	if code != http.StatusAccepted {
		t.Fatalf("budgeted topk: status %d, want 202", code)
	}
	final := waitStateKeyed(t, ts.URL, "kc", st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateDone {
		t.Fatalf("budgeted topk state %q (error %q), want done", final.State, final.Error)
	}
}

// The interactive lane has strict priority: with one worker plugged and a
// backlog of batch jobs queued first, a later budgeted job is the next
// pick once the worker frees.
func TestInteractiveLaneSchedulesBeforeBatch(t *testing.T) {
	order := make(chan int, 16)
	gate := make(chan struct{})
	cfg := serve.KeysFile{Tenants: []serve.TenantConfig{{Name: "ann", Key: "ka"}}}
	ts, _ := keyedService(t, cfg, 1, 16, instantBuilder(order, gate))

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "ka", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}

	// Plug the single worker, then queue three batch jobs and one budgeted
	// job, in that order.
	_, _, plug := submitKeyed(t, ts.URL, "ka", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: plugSup})
	waitStateKeyed(t, ts.URL, "ka", plug.ID, func(s serve.JobStatus) bool { return s.State == serve.StateRunning })
	for _, ms := range []int{1, 2, 3} {
		if code, _, _ := submitKeyed(t, ts.URL, "ka", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: ms}); code != http.StatusAccepted {
			t.Fatalf("batch job minsup=%d: status %d", ms, code)
		}
	}
	if code, _, _ := submitKeyed(t, ts.URL, "ka", serve.QuerySpec{Miner: "topk", Dataset: "paper", K: 1, MinSup: 42, MaxNodes: 10}); code != http.StatusAccepted {
		t.Fatalf("budgeted job: status %d", code)
	}

	close(gate)
	picks := waitOrder(t, order, 4)
	if picks[0] != 42 {
		t.Fatalf("pick order %v: budgeted job (42) must run before the batch backlog", picks)
	}
}

// readAll drains and closes a response body.
func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
