package serve

import (
	"context"
	"fmt"

	farmer "repro"
)

// GroupRecord is the NDJSON wire form of a rule group (FARMER, TopK) or a
// single rule (ColumnE). Items are reported by name so clients need no
// item-id table.
type GroupRecord struct {
	Antecedent  []string   `json:"antecedent"`
	LowerBounds [][]string `json:"lower_bounds,omitempty"`
	SupPos      int        `json:"sup_pos"`
	SupNeg      int        `json:"sup_neg"`
	Confidence  float64    `json:"confidence"`
	Chi         float64    `json:"chi"`
	// Score is the objective value for TopK jobs; absent otherwise.
	Score *float64 `json:"score,omitempty"`
}

// ClosedRecord is the NDJSON wire form of a closed itemset / pattern
// (CHARM, CLOSET, CARPENTER, COBBLER).
type ClosedRecord struct {
	Items   []string `json:"items"`
	Support int      `json:"support"`
}

// anytimeOutcome decorates a finished TopKResult so the job manager can
// read the anytime verdict (partial flag, certified gap, nodes expanded)
// without widening the frozen RunnerFunc result signature: the embedded
// result still satisfies farmer.MinerResult, and run() type-asserts for
// the extra fields.
type anytimeOutcome struct {
	*farmer.TopKResult
}

func itemNames(d *farmer.Dataset, items []farmer.Item) []string {
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = d.ItemName(it)
	}
	return names
}

func groupRecord(d *farmer.Dataset, g farmer.RuleGroup) GroupRecord {
	rec := GroupRecord{
		Antecedent: itemNames(d, g.Antecedent),
		SupPos:     g.SupPos,
		SupNeg:     g.SupNeg,
		Confidence: g.Confidence,
		Chi:        g.Chi,
	}
	for _, lb := range g.LowerBounds {
		rec.LowerBounds = append(rec.LowerBounds, itemNames(d, lb))
	}
	return rec
}

// MakeGroupRecord converts a rule group to its NDJSON wire form exactly
// as the in-process FARMER runner does — the cluster coordinator uses it
// so merged distributed results stream byte-identically.
func MakeGroupRecord(d *farmer.Dataset, g farmer.RuleGroup) GroupRecord {
	return groupRecord(d, g)
}

// FarmerJobOptions resolves a "farmer" job spec into the consequent index
// and canonical mining options the in-process runner would use — shared
// with the cluster so a distributed run and a single-node run of the same
// spec mine under identical options.
func FarmerJobOptions(d *farmer.Dataset, snap *farmer.Snapshot, spec JobSpec) (consequent int, opt farmer.MineOptions, err error) {
	consequent, err = resolveClass(d, spec.Class)
	if err != nil {
		return 0, farmer.MineOptions{}, err
	}
	minsup := spec.MinSup
	if minsup < 1 {
		minsup = 1
	}
	opt = farmer.MineOptions{
		MinSup:             minsup,
		MinConf:            spec.MinConf,
		MinChi:             spec.MinChi,
		ComputeLowerBounds: spec.LowerBounds,
		Workers:            spec.Workers,
		Prepared:           snap,
	}
	return consequent, opt, nil
}

// resolveClass maps the spec's class name to a consequent index. The
// empty name selects class 0, matching the cmd/farmer default.
func resolveClass(d *farmer.Dataset, class string) (int, error) {
	if class == "" {
		return 0, nil
	}
	c := d.ClassIndex(class)
	if c < 0 {
		return 0, fmt.Errorf("unknown class %q", class)
	}
	return c, nil
}

// BuildRunner is the default, in-process runner builder — exported so a
// cluster worker can execute whole-job leases through exactly the same
// compilation path a standalone daemon uses (same validation, same wire
// records), and so a coordinator's RunnerBuilder can fall back to it for
// miners it does not distribute.
func BuildRunner(d *farmer.Dataset, snap *farmer.Snapshot, spec JobSpec) (RunnerFunc, error) {
	return buildRunner(d, snap, spec)
}

// buildRunner validates spec against the resolved dataset and compiles it
// into a RunnerFunc. All validation errors surface here, at submission
// time, so a queued job can only fail from the mining run itself. The
// runner captures d and snap — a job keeps mining the dataset it was
// submitted against even if the name is re-registered mid-run — and every
// invocation copies its options before attaching callbacks, so a runner
// is safe to invoke more than once.
func buildRunner(d *farmer.Dataset, snap *farmer.Snapshot, spec JobSpec) (RunnerFunc, error) {
	minsup := spec.MinSup
	if minsup < 1 {
		minsup = 1
	}
	if spec.Miner != "topk" {
		if spec.MaxMillis != 0 || spec.MaxNodes != 0 || spec.Quality != "" || spec.Delta != 0 {
			return nil, fmt.Errorf("anytime options (max_millis, max_nodes, quality, delta) need the topk miner, got %q", spec.Miner)
		}
	}

	switch spec.Miner {
	case "farmer":
		consequent, opt, err := FarmerJobOptions(d, snap, spec)
		if err != nil {
			return nil, err
		}
		if opt.Workers != 0 {
			// Parallel runs are batch-only: the interestingness fixpoint is
			// not sound on a partial candidate set, so groups are emitted
			// after the run completes.
			return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
				res, err := farmer.RunFARMER(ctx, d, consequent, opt)
				if res == nil {
					return nil, err
				}
				for _, g := range res.Groups {
					if emitErr := emit(groupRecord(d, g)); emitErr != nil {
						return res, emitErr
					}
				}
				return res, err
			}, nil
		}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			o := opt
			o.OnGroup = func(g farmer.RuleGroup) error { return emit(groupRecord(d, g)) }
			res, err := farmer.RunFARMER(ctx, d, consequent, o)
			if res == nil {
				return nil, err
			}
			return res, err
		}, nil

	case "topk":
		consequent, err := resolveClass(d, spec.Class)
		if err != nil {
			return nil, err
		}
		measure, err := farmer.ParseMeasure(spec.Measure)
		if err != nil {
			return nil, err
		}
		k := spec.K
		if k < 1 {
			k = 1
		}
		strat, err := farmer.ParseStrategy(spec.Quality)
		if err != nil {
			return nil, err
		}
		switch {
		case spec.MaxMillis < 0:
			return nil, fmt.Errorf("max_millis must be >= 0, got %d", spec.MaxMillis)
		case spec.MaxNodes < 0:
			return nil, fmt.Errorf("max_nodes must be >= 0, got %d", spec.MaxNodes)
		case spec.Delta < 0:
			return nil, fmt.Errorf("delta must be >= 0, got %v", spec.Delta)
		case spec.Delta > 0 && strat != farmer.StrategyLeap:
			return nil, fmt.Errorf("delta needs quality \"leap\", got %q", strat)
		case strat == farmer.StrategySample && !spec.Budgeted():
			return nil, fmt.Errorf("quality \"sample\" needs a max_millis or max_nodes budget")
		}
		opt := farmer.TopKOptions{
			K: k, Measure: measure, MinSup: minsup, Prepared: snap,
			Strategy: strat, MaxMillis: spec.MaxMillis, MaxNodes: spec.MaxNodes,
			Delta: spec.Delta, Workers: spec.Workers,
		}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			// Best-first search only knows the final ranking at the end, so
			// TopK is batch-only; on cancellation or budget exhaustion the
			// best groups so far are still emitted.
			res, err := farmer.RunTopK(ctx, d, consequent, opt)
			if res == nil {
				return nil, err
			}
			for _, sg := range res.Groups {
				rec := groupRecord(d, sg.RuleGroup)
				score := sg.Score
				rec.Score = &score
				if emitErr := emit(rec); emitErr != nil {
					return res, emitErr
				}
			}
			return anytimeOutcome{res}, err
		}, nil

	case "charm":
		opt := farmer.CharmOptions{MinSup: minsup, Prepared: snap}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			o := opt
			o.OnClosed = func(c farmer.ClosedSet) error {
				return emit(ClosedRecord{Items: itemNames(d, c.Items), Support: c.Support})
			}
			res, err := farmer.RunCHARM(ctx, d, o)
			if res == nil {
				return nil, err
			}
			return res, err
		}, nil

	case "closet":
		opt := farmer.ClosetOptions{MinSup: minsup, Prepared: snap}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			o := opt
			o.OnClosed = func(c farmer.ClosetClosedSet) error {
				return emit(ClosedRecord{Items: itemNames(d, c.Items), Support: c.Support})
			}
			res, err := farmer.RunCLOSET(ctx, d, o)
			if res == nil {
				return nil, err
			}
			return res, err
		}, nil

	case "columne":
		consequent, err := resolveClass(d, spec.Class)
		if err != nil {
			return nil, err
		}
		opt := farmer.ColumnEOptions{MinSup: minsup, MinConf: spec.MinConf, MinChi: spec.MinChi, Prepared: snap}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			o := opt
			o.OnRule = func(r farmer.ColumnERule) error {
				return emit(GroupRecord{
					Antecedent: itemNames(d, r.Antecedent),
					SupPos:     r.SupPos,
					SupNeg:     r.SupNeg,
					Confidence: r.Confidence,
					Chi:        r.Chi,
				})
			}
			res, err := farmer.RunColumnE(ctx, d, consequent, o)
			if res == nil {
				return nil, err
			}
			return res, err
		}, nil

	case "carpenter":
		opt := farmer.CarpenterOptions{MinSup: minsup, Prepared: snap}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			o := opt
			o.OnClosed = func(p farmer.ClosedPattern) error {
				return emit(ClosedRecord{Items: itemNames(d, p.Items), Support: p.Support})
			}
			res, err := farmer.RunCARPENTER(ctx, d, o)
			if res == nil {
				return nil, err
			}
			return res, err
		}, nil

	case "cobbler":
		opt := farmer.CobblerOptions{MinSup: minsup, Prepared: snap}
		return func(ctx context.Context, emit func(v any) error) (farmer.MinerResult, error) {
			o := opt
			o.OnClosed = func(p farmer.CobblerClosedPattern) error {
				return emit(ClosedRecord{Items: itemNames(d, p.Items), Support: p.Support})
			}
			res, err := farmer.RunCOBBLER(ctx, d, o)
			if res == nil {
				return nil, err
			}
			return res, err
		}, nil

	default:
		return nil, fmt.Errorf("unknown miner %q (want farmer, topk, charm, closet, columne, carpenter or cobbler)", spec.Miner)
	}
}
