package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// reqKey is the canonical request hash a result is cached and coalesced
// under, in its binary form. Using the raw [32]byte as the map key keeps
// warm-path lookups allocation-free; the hex rendering clients see (the
// ETag) is materialized once per cache entry, not once per request.
type reqKey [32]byte

// keyBufPool recycles the scratch buffer requestKey renders the spec
// fields into before hashing, so steady-state warm traffic computes its
// request hash without a single heap allocation.
var keyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 256)
	return &b
}}

// requestKey is the canonical request hash a result is cached and
// coalesced under: the miner, the dataset's registration generation, and
// every result-affecting option, hashed over an unambiguous field-per-line
// rendering. The generation — not the dataset name — keys the data, so
// re-registering a name invalidates all of its cached results implicitly:
// their keys can simply never be asked for again, and the entries age out
// of the LRU. TimeoutMS participates because it changes what a run may
// produce (a timed-out job is never cached, but two live submissions with
// different deadlines must not coalesce into one run with the wrong one).
func requestKey(spec JobSpec, gen uint64) reqKey {
	bp := keyBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, "miner="...)
	b = append(b, spec.Miner...)
	b = append(b, "\ngen="...)
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, "\nclass="...)
	b = append(b, spec.Class...)
	b = append(b, "\nminsup="...)
	b = strconv.AppendInt(b, int64(spec.MinSup), 10)
	b = append(b, "\nminconf="...)
	b = strconv.AppendFloat(b, spec.MinConf, 'g', -1, 64)
	b = append(b, "\nminchi="...)
	b = strconv.AppendFloat(b, spec.MinChi, 'g', -1, 64)
	b = append(b, "\nlb="...)
	b = strconv.AppendBool(b, spec.LowerBounds)
	b = append(b, "\nk="...)
	b = strconv.AppendInt(b, int64(spec.K), 10)
	b = append(b, "\nmeasure="...)
	b = append(b, spec.Measure...)
	b = append(b, "\nworkers="...)
	b = strconv.AppendInt(b, int64(spec.Workers), 10)
	b = append(b, "\ntimeout="...)
	b = strconv.AppendInt(b, spec.TimeoutMS, 10)
	b = append(b, "\nmaxms="...)
	b = strconv.AppendInt(b, spec.MaxMillis, 10)
	b = append(b, "\nmaxnodes="...)
	b = strconv.AppendInt(b, spec.MaxNodes, 10)
	b = append(b, "\nquality="...)
	b = append(b, spec.Quality...)
	b = append(b, "\ndelta="...)
	b = strconv.AppendFloat(b, spec.Delta, 'g', -1, 64)
	b = append(b, '\n')
	sum := sha256.Sum256(b)
	*bp = b
	keyBufPool.Put(bp)
	return sum
}

// etagFor renders the strong ETag for a request key. The key already
// folds in the registry generation, so a re-registration rotates the ETag
// of every request against that dataset automatically.
func etagFor(key reqKey) string {
	return `"` + hex.EncodeToString(key[:]) + `"`
}

// canonicalSpec normalizes the fields buildRunner would normalize anyway
// (MinSup and K floors, the default measure name), so equivalent requests
// share one key.
func canonicalSpec(spec JobSpec) JobSpec {
	if spec.MinSup < 1 {
		spec.MinSup = 1
	}
	if spec.Miner == "topk" {
		if spec.K < 1 {
			spec.K = 1
		}
		if spec.Measure == "" {
			spec.Measure = "chi2"
		}
		// "exact" is the parse default of the empty string; fold the two
		// spellings into one key so they coalesce.
		if spec.Quality == "exact" {
			spec.Quality = ""
		}
	}
	return spec
}

// cachedResult is one finished job's replayable outcome: the complete
// NDJSON body exactly as the live stream wrote it — every record followed
// by '\n', pre-encoded into a single contiguous buffer so a warm replay is
// one header write and one body write — plus the record count, the final
// statistics, and the pre-rendered ETag.
type cachedResult struct {
	body     []byte
	count    int
	stats    engine.Stats
	hasStats bool
	etag     string
}

// encodeBody flattens the records of a completed run into the cached
// NDJSON body. The result is byte-identical to what the live stream wrote:
// each record followed by a newline. It is non-nil even for zero records,
// because a non-nil body is what marks a job replayable.
func encodeBody(records []json.RawMessage) []byte {
	total := 0
	for _, rec := range records {
		total += len(rec) + 1
	}
	body := make([]byte, 0, total)
	for _, rec := range records {
		body = append(body, rec...)
		body = append(body, '\n')
	}
	return body
}

// cacheEntryOverhead approximates the per-entry bookkeeping (list element,
// map entry, key, ETag, headers) counted against the byte bound, so a
// flood of tiny results cannot blow past the configured memory budget on
// overhead alone.
const cacheEntryOverhead = 256

func (r cachedResult) size() int64 {
	return int64(cacheEntryOverhead) + int64(len(r.body)) + int64(len(r.etag))
}

// resultCache is a byte-bounded LRU over cachedResults keyed by request
// key. A nil *resultCache is a valid, always-missing cache (caching
// disabled).
type resultCache struct {
	// hits and misses are lifetime lookup totals for /metrics; atomics so
	// the scrape never takes the cache lock.
	hits   atomic.Int64
	misses atomic.Int64

	mu    sync.Mutex
	max   int64
	cur   int64
	order *list.List // front = most recently used; values are *cacheItem
	byKey map[reqKey]*list.Element
}

type cacheItem struct {
	key   reqKey
	res   cachedResult
	bytes int64
}

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		return nil
	}
	return &resultCache{max: maxBytes, order: list.New(), byKey: make(map[reqKey]*list.Element)}
}

// get returns the cached result for key, marking it most recently used.
func (c *resultCache) get(key reqKey) (cachedResult, bool) {
	if c == nil {
		return cachedResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Add(1)
		return cachedResult{}, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// counters reports lifetime hit/miss totals (zeros when disabled).
func (c *resultCache) counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// put inserts (or refreshes) key, evicting least-recently-used entries
// until the byte bound holds again. Results larger than the whole bound
// are not cached at all.
func (c *resultCache) put(key reqKey, res cachedResult) {
	if c == nil {
		return
	}
	n := res.size()
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		item := el.Value.(*cacheItem)
		c.cur += n - item.bytes
		item.res, item.bytes = res, n
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&cacheItem{key: key, res: res, bytes: n})
		c.cur += n
	}
	for c.cur > c.max {
		el := c.order.Back()
		if el == nil {
			break
		}
		item := c.order.Remove(el).(*cacheItem)
		delete(c.byKey, item.key)
		c.cur -= item.bytes
	}
}

// bytes reports the current cached size (for tests and introspection).
func (c *resultCache) bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}
