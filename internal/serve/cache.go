package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/engine"
)

// requestKey is the canonical request hash a result is cached and
// coalesced under: the miner, the dataset's registration generation, and
// every result-affecting option, hashed over an unambiguous field-per-line
// rendering. The generation — not the dataset name — keys the data, so
// re-registering a name invalidates all of its cached results implicitly:
// their keys can simply never be asked for again, and the entries age out
// of the LRU. TimeoutMS participates because it changes what a run may
// produce (a timed-out job is never cached, but two live submissions with
// different deadlines must not coalesce into one run with the wrong one).
func requestKey(spec JobSpec, gen uint64) string {
	h := sha256.Sum256([]byte(fmt.Sprintf(
		"miner=%s\ngen=%d\nclass=%s\nminsup=%d\nminconf=%g\nminchi=%g\nlb=%t\nk=%d\nmeasure=%s\nworkers=%d\ntimeout=%d\n",
		spec.Miner, gen, spec.Class, spec.MinSup, spec.MinConf, spec.MinChi,
		spec.LowerBounds, spec.K, spec.Measure, spec.Workers, spec.TimeoutMS,
	)))
	return hex.EncodeToString(h[:])
}

// canonicalSpec normalizes the fields buildRunner would normalize anyway
// (MinSup and K floors, the default measure name), so equivalent requests
// share one key.
func canonicalSpec(spec JobSpec) JobSpec {
	if spec.MinSup < 1 {
		spec.MinSup = 1
	}
	if spec.Miner == "topk" {
		if spec.K < 1 {
			spec.K = 1
		}
		if spec.Measure == "" {
			spec.Measure = "chi2"
		}
	}
	return spec
}

// cachedResult is one finished job's replayable outcome: the raw NDJSON
// records exactly as the live job marshaled them (so a replay is
// byte-identical to the original stream) plus the final statistics.
type cachedResult struct {
	records  []json.RawMessage
	stats    engine.Stats
	hasStats bool
}

// cacheEntryOverhead approximates the per-record and per-entry bookkeeping
// (slice headers, list element, map entry, key) counted against the byte
// bound, so a flood of tiny results cannot blow past the configured memory
// budget on overhead alone.
const cacheEntryOverhead = 256

func (r cachedResult) size() int64 {
	n := int64(cacheEntryOverhead)
	for _, rec := range r.records {
		n += int64(len(rec)) + 48
	}
	return n
}

// resultCache is a byte-bounded LRU over cachedResults keyed by request
// key. A nil *resultCache is a valid, always-missing cache (caching
// disabled).
type resultCache struct {
	mu    sync.Mutex
	max   int64
	cur   int64
	order *list.List // front = most recently used; values are *cacheItem
	byKey map[string]*list.Element
}

type cacheItem struct {
	key   string
	res   cachedResult
	bytes int64
}

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		return nil
	}
	return &resultCache{max: maxBytes, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached result for key, marking it most recently used.
func (c *resultCache) get(key string) (cachedResult, bool) {
	if c == nil {
		return cachedResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return cachedResult{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// put inserts (or refreshes) key, evicting least-recently-used entries
// until the byte bound holds again. Results larger than the whole bound
// are not cached at all.
func (c *resultCache) put(key string, res cachedResult) {
	if c == nil {
		return
	}
	n := res.size()
	if n > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		item := el.Value.(*cacheItem)
		c.cur += n - item.bytes
		item.res, item.bytes = res, n
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&cacheItem{key: key, res: res, bytes: n})
		c.cur += n
	}
	for c.cur > c.max {
		el := c.order.Back()
		if el == nil {
			break
		}
		item := c.order.Remove(el).(*cacheItem)
		delete(c.byKey, item.key)
		c.cur -= item.bytes
	}
}

// bytes reports the current cached size (for tests and introspection).
func (c *resultCache) bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}
