package serve

import (
	"encoding/json"
	"fmt"
	"testing"
)

func rawRecords(sizes ...int) []json.RawMessage {
	out := make([]json.RawMessage, len(sizes))
	for i, n := range sizes {
		out[i] = make(json.RawMessage, n)
	}
	return out
}

func TestRequestKeyDiscriminates(t *testing.T) {
	base := JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	seen := map[string]string{}
	add := func(label string, spec JobSpec, gen uint64) {
		t.Helper()
		key := requestKey(spec, gen)
		if prev, dup := seen[key]; dup {
			t.Fatalf("key collision between %s and %s", prev, label)
		}
		seen[key] = label
	}
	add("base", base, 1)
	add("gen", base, 2)
	for label, mutate := range map[string]func(*JobSpec){
		"miner":   func(s *JobSpec) { s.Miner = "charm" },
		"class":   func(s *JobSpec) { s.Class = "N" },
		"minsup":  func(s *JobSpec) { s.MinSup = 3 },
		"minconf": func(s *JobSpec) { s.MinConf = 0.9 },
		"minchi":  func(s *JobSpec) { s.MinChi = 3.84 },
		"lb":      func(s *JobSpec) { s.LowerBounds = true },
		"k":       func(s *JobSpec) { s.K = 5 },
		"measure": func(s *JobSpec) { s.Measure = "conf" },
		"workers": func(s *JobSpec) { s.Workers = 2 },
		"timeout": func(s *JobSpec) { s.TimeoutMS = 100 },
	} {
		spec := base
		mutate(&spec)
		add(label, spec, 1)
	}
	// The key ignores the dataset name on purpose: the generation is the
	// data's identity, and generations are registry-wide unique.
	renamed := base
	renamed.Dataset = "other"
	if requestKey(renamed, 1) != requestKey(base, 1) {
		t.Fatal("key depends on dataset name; generation should be the data identity")
	}
}

func TestCanonicalSpecNormalizes(t *testing.T) {
	a := canonicalSpec(JobSpec{Miner: "topk", Dataset: "d"})
	b := canonicalSpec(JobSpec{Miner: "topk", Dataset: "d", MinSup: 1, K: 1, Measure: "chi2"})
	if requestKey(a, 7) != requestKey(b, 7) {
		t.Fatalf("equivalent topk specs got different keys:\n%+v\n%+v", a, b)
	}
	c := canonicalSpec(JobSpec{Miner: "charm", Dataset: "d", MinSup: -3})
	if c.MinSup != 1 {
		t.Fatalf("MinSup floor: got %d, want 1", c.MinSup)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	entry := func(recBytes int) cachedResult { return cachedResult{records: rawRecords(recBytes)} }
	one := entry(1000).size()
	c := newResultCache(3 * one)

	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), entry(1000))
	}
	if c.len() != 3 || c.bytes() != 3*one {
		t.Fatalf("after 3 puts: len=%d bytes=%d, want 3/%d", c.len(), c.bytes(), 3*one)
	}

	// Touch k0 so k1 is the eviction victim.
	if _, ok := c.get("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put("k3", entry(1000))
	if _, ok := c.get("k1"); ok {
		t.Fatal("k1 survived; LRU should have evicted it")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted; want it retained", k)
		}
	}
	if c.bytes() != 3*one {
		t.Fatalf("bytes=%d after eviction, want %d", c.bytes(), 3*one)
	}

	// An entry larger than the whole budget is refused outright.
	c.put("huge", entry(int(4*one)))
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry was cached")
	}

	// Refreshing a key in place adjusts accounting instead of duplicating.
	c.put("k3", entry(500))
	if got, want := c.bytes(), 2*one+entry(500).size(); got != want || c.len() != 3 {
		t.Fatalf("after refresh: len=%d bytes=%d, want 3/%d", c.len(), got, want)
	}

	// A nil cache (caching disabled) accepts every call and stays empty.
	var nilCache *resultCache
	nilCache.put("x", entry(10))
	if _, ok := nilCache.get("x"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if nilCache.len() != 0 || nilCache.bytes() != 0 {
		t.Fatal("nil cache reports non-zero stats")
	}
	if newResultCache(0) != nil {
		t.Fatal("newResultCache(0) should disable caching")
	}
}
