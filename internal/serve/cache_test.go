package serve

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRequestKeyDiscriminates(t *testing.T) {
	base := JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	seen := map[reqKey]string{}
	add := func(label string, spec JobSpec, gen uint64) {
		t.Helper()
		key := requestKey(spec, gen)
		if prev, dup := seen[key]; dup {
			t.Fatalf("key collision between %s and %s", prev, label)
		}
		seen[key] = label
	}
	add("base", base, 1)
	add("gen", base, 2)
	for label, mutate := range map[string]func(*JobSpec){
		"miner":   func(s *JobSpec) { s.Miner = "charm" },
		"class":   func(s *JobSpec) { s.Class = "N" },
		"minsup":  func(s *JobSpec) { s.MinSup = 3 },
		"minconf": func(s *JobSpec) { s.MinConf = 0.9 },
		"minchi":  func(s *JobSpec) { s.MinChi = 3.84 },
		"lb":      func(s *JobSpec) { s.LowerBounds = true },
		"k":       func(s *JobSpec) { s.K = 5 },
		"measure": func(s *JobSpec) { s.Measure = "conf" },
		"workers": func(s *JobSpec) { s.Workers = 2 },
		"timeout": func(s *JobSpec) { s.TimeoutMS = 100 },
	} {
		spec := base
		mutate(&spec)
		add(label, spec, 1)
	}
	// The key ignores the dataset name on purpose: the generation is the
	// data's identity, and generations are registry-wide unique.
	renamed := base
	renamed.Dataset = "other"
	if requestKey(renamed, 1) != requestKey(base, 1) {
		t.Fatal("key depends on dataset name; generation should be the data identity")
	}
}

// The pooled scratch buffer must not leak state between renderings: a key
// computed after an unrelated (longer) one is identical to a key computed
// on a fresh pool.
func TestRequestKeyPoolReuseStable(t *testing.T) {
	long := JobSpec{Miner: "carpenter", Dataset: "d", Class: strings.Repeat("x", 150), MinSup: 7}
	base := JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	want := requestKey(base, 3)
	for i := 0; i < 100; i++ {
		requestKey(long, uint64(i))
		if got := requestKey(base, 3); got != want {
			t.Fatalf("key changed after pooled-buffer reuse (iteration %d)", i)
		}
	}
}

func TestEtagForRotatesWithGeneration(t *testing.T) {
	spec := JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	a := etagFor(requestKey(spec, 1))
	b := etagFor(requestKey(spec, 2))
	if a == b {
		t.Fatal("etag did not rotate with the generation")
	}
	if a != etagFor(requestKey(spec, 1)) {
		t.Fatal("etag not stable for identical request+generation")
	}
	for _, e := range []string{a, b} {
		if len(e) != 66 || e[0] != '"' || e[len(e)-1] != '"' {
			t.Fatalf("etag %q is not a quoted 64-hex strong validator", e)
		}
	}
}

func TestCanonicalSpecNormalizes(t *testing.T) {
	a := canonicalSpec(JobSpec{Miner: "topk", Dataset: "d"})
	b := canonicalSpec(JobSpec{Miner: "topk", Dataset: "d", MinSup: 1, K: 1, Measure: "chi2"})
	if requestKey(a, 7) != requestKey(b, 7) {
		t.Fatalf("equivalent topk specs got different keys:\n%+v\n%+v", a, b)
	}
	c := canonicalSpec(JobSpec{Miner: "charm", Dataset: "d", MinSup: -3})
	if c.MinSup != 1 {
		t.Fatalf("MinSup floor: got %d, want 1", c.MinSup)
	}
}

// encodeBody must reproduce exactly what the live stream writes: each raw
// record followed by one newline, and a non-nil buffer even for zero
// records (a non-nil body is what marks a job replayable).
func TestEncodeBody(t *testing.T) {
	records := []json.RawMessage{
		json.RawMessage(`{"a":1}`),
		json.RawMessage(`{"b":2}`),
	}
	if got, want := string(encodeBody(records)), "{\"a\":1}\n{\"b\":2}\n"; got != want {
		t.Fatalf("encodeBody = %q, want %q", got, want)
	}
	if encodeBody(nil) == nil {
		t.Fatal("encodeBody(nil) returned a nil body")
	}
	if len(encodeBody(nil)) != 0 {
		t.Fatal("encodeBody(nil) returned a non-empty body")
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	key := func(i byte) reqKey {
		var k reqKey
		k[0] = i
		return k
	}
	entry := func(bodyBytes int) cachedResult { return cachedResult{body: make([]byte, bodyBytes)} }
	one := entry(1000).size()
	c := newResultCache(3 * one)

	for i := byte(0); i < 3; i++ {
		c.put(key(i), entry(1000))
	}
	if c.len() != 3 || c.bytes() != 3*one {
		t.Fatalf("after 3 puts: len=%d bytes=%d, want 3/%d", c.len(), c.bytes(), 3*one)
	}

	// Touch k0 so k1 is the eviction victim.
	if _, ok := c.get(key(0)); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.put(key(3), entry(1000))
	if _, ok := c.get(key(1)); ok {
		t.Fatal("k1 survived; LRU should have evicted it")
	}
	for _, k := range []byte{0, 2, 3} {
		if _, ok := c.get(key(k)); !ok {
			t.Fatalf("k%d evicted; want it retained", k)
		}
	}
	if c.bytes() != 3*one {
		t.Fatalf("bytes=%d after eviction, want %d", c.bytes(), 3*one)
	}

	// An entry larger than the whole budget is refused outright.
	c.put(key(4), entry(int(4*one)))
	if _, ok := c.get(key(4)); ok {
		t.Fatal("oversized entry was cached")
	}

	// Refreshing a key in place adjusts accounting instead of duplicating.
	c.put(key(3), entry(500))
	if got, want := c.bytes(), 2*one+entry(500).size(); got != want || c.len() != 3 {
		t.Fatalf("after refresh: len=%d bytes=%d, want 3/%d", c.len(), got, want)
	}

	// A nil cache (caching disabled) accepts every call and stays empty.
	var nilCache *resultCache
	nilCache.put(key(9), entry(10))
	if _, ok := nilCache.get(key(9)); ok {
		t.Fatal("nil cache returned a hit")
	}
	if nilCache.len() != 0 || nilCache.bytes() != 0 {
		t.Fatal("nil cache reports non-zero stats")
	}
	if newResultCache(0) != nil {
		t.Fatal("newResultCache(0) should disable caching")
	}
}

func TestEtagMatches(t *testing.T) {
	const etag = `"abc123"`
	for header, want := range map[string]bool{
		etag:                         true,
		"*":                          true,
		`W/"abc123"`:                 true,
		`"zzz", "abc123"`:            true,
		`"zzz",W/"abc123"`:           true,
		`  "abc123"  `:               true,
		`"zzz"`:                      false,
		`"abc12"`:                    false,
		"":                           false,
		`"zzz", "yyy"`:               false,
		`W/"zzz"`:                    false,
	} {
		if got := etagMatches(header, etag); got != want {
			t.Errorf("etagMatches(%q) = %v, want %v", header, got, want)
		}
	}
}
