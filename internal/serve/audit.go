package serve

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AuditEvent is one structured audit record: who did (or was refused)
// what. Events are line-JSON, one object per line, append-only.
type AuditEvent struct {
	// TS is stamped by the logger at write time (RFC3339Nano).
	TS string `json:"ts"`
	// Event is the record type: auth_failure, rate_limited,
	// quota_exceeded, admission_rejected, job_submitted, job_finished,
	// keys_reloaded.
	Event string `json:"event"`
	// Tenant is the acting principal (empty for pre-auth failures).
	Tenant string `json:"tenant,omitempty"`
	// Job is the affected job id, when one exists.
	Job string `json:"job,omitempty"`
	// Detail is the human-readable specifics (error text, spec summary).
	Detail string `json:"detail,omitempty"`
}

// AuditLogger writes audit events as newline-delimited JSON to one
// writer. A nil *AuditLogger is valid and drops everything, so callers
// log unconditionally. Writes are serialized: concurrent events never
// interleave within a line.
type AuditLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewAuditLogger returns a logger writing to w (nil w returns a nil
// logger, which discards).
func NewAuditLogger(w io.Writer) *AuditLogger {
	if w == nil {
		return nil
	}
	return &AuditLogger{w: w}
}

// Log stamps and writes one event. Nil-safe; marshal or write failures
// are dropped (auditing must never take the service down).
func (l *AuditLogger) Log(ev AuditEvent) {
	if l == nil {
		return
	}
	ev.TS = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}
