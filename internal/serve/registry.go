// Package serve is the farmerd mining service: a dataset registry, a job
// manager running miners on a bounded worker pool, and an HTTP/JSON API
// over both. Datasets are registered once (uploaded or preloaded from
// disk) and referenced by name; jobs run any of the repository's miners
// through the canonical farmer.Run* entry points with per-job
// cancellation and live NDJSON result streaming.
package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	farmer "repro"
)

// Registry is the named-dataset store shared by all jobs. Each entry is an
// immutable (dataset, snapshot, generation) triple: the snapshot is the
// prepared compiled form every job of that dataset reuses, the generation
// is a registry-wide monotonic counter bumped on every registration, so
// request keys derived from it can never confuse results across re-uploads
// of the same name. Re-registering a name installs a fresh triple for
// future jobs without disturbing running ones (they hold their own
// pointers).
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*regEntry
	gen      uint64
}

type regEntry struct {
	d    *farmer.Dataset
	snap *farmer.Snapshot
	gen  uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*regEntry)}
}

// Put registers d under name, replacing any previous dataset of that name.
// The dataset is validated and compiled into its prepared snapshot here,
// once, so every job submitted against it skips the per-run build phase.
func (r *Registry) Put(name string, d *farmer.Dataset) error {
	snap, err := farmer.Prepare(d)
	if err != nil {
		return fmt.Errorf("register dataset %s: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	r.datasets[name] = &regEntry{d: d, snap: snap, gen: r.gen}
	return nil
}

// Get returns the dataset registered under name.
func (r *Registry) Get(name string) (*farmer.Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[name]
	if !ok {
		return nil, false
	}
	return e.d, true
}

// Entry returns the full registration triple for name: the dataset, its
// prepared snapshot, and the registration generation.
func (r *Registry) Entry(name string) (d *farmer.Dataset, snap *farmer.Snapshot, gen uint64, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[name]
	if !ok {
		return nil, nil, 0, false
	}
	return e.d, e.snap, e.gen, true
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.datasets))
	for n := range r.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load parses src in the given format and registers the result under name.
// Format "transactions" is the repository's "<class> : item item ..."
// text format; "matrix" is a labeled expression CSV, discretized with
// equal-depth buckets (default 10 when buckets <= 0).
func (r *Registry) Load(name, format string, buckets int, src io.Reader) (*farmer.Dataset, error) {
	var (
		d   *farmer.Dataset
		err error
	)
	switch format {
	case "", "transactions":
		d, err = farmer.ReadTransactions(src)
	case "matrix":
		if buckets <= 0 {
			buckets = 10
		}
		var m *farmer.Matrix
		if m, err = farmer.ReadMatrixCSV(src); err != nil {
			break
		}
		var disc *farmer.Discretizer
		if disc, err = farmer.EqualDepth(m, buckets); err != nil {
			break
		}
		d, err = disc.Apply(m)
	default:
		return nil, fmt.Errorf("unknown dataset format %q (want transactions or matrix)", format)
	}
	if err != nil {
		return nil, fmt.Errorf("load dataset %s: %w", name, err)
	}
	if err := r.Put(name, d); err != nil {
		return nil, err
	}
	return d, nil
}
