// Package serve is the farmerd mining service: a dataset registry, a job
// manager running miners on a bounded worker pool, and an HTTP/JSON API
// over both. Datasets are registered once (uploaded or preloaded from
// disk) and referenced by name; jobs run any of the repository's miners
// through the canonical farmer.Run* entry points with per-job
// cancellation and live NDJSON result streaming.
package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	farmer "repro"
	"repro/internal/store"
)

// ErrUnknownDataset reports a spec naming a dataset that was never
// registered. The HTTP layer maps it to 404 dataset_not_found (every
// other validation failure stays 400 bad_request).
var ErrUnknownDataset = errors.New("unknown dataset")

// SnapshotStore is the persistence layer a registry can sit on —
// implemented by *store.Store, abstracted here so tests can inject
// failing writers and assert the registry's atomicity guarantees.
type SnapshotStore interface {
	// Put persists snap under name at the given generation, atomically:
	// an error means nothing changed on disk.
	Put(name string, snap *farmer.Snapshot, gen uint64) error
	// Load returns the decoded snapshot and its generation.
	Load(name string) (*farmer.Snapshot, uint64, error)
	// Entries lists the stored datasets without decoding snapshots.
	Entries() []store.Meta
	// Generation returns the persisted registry-wide generation counter.
	Generation() uint64
}

// Registry is the named-dataset store shared by all jobs. Each entry is an
// immutable (dataset, snapshot, generation) triple: the snapshot is the
// prepared compiled form every job of that dataset reuses, the generation
// is a registry-wide monotonic counter bumped on every registration, so
// request keys derived from it can never confuse results across re-uploads
// of the same name. Re-registering a name installs a fresh triple for
// future jobs without disturbing running ones (they hold their own
// pointers).
//
// With a SnapshotStore attached (NewRegistryWithStore), the registry is
// durable: every Put writes through to disk before it is visible, entries
// found in the store at startup are registered lazily (decoded on first
// use, retained subject to the store's LRU budget), and the generation
// counter continues from its persisted value — so the result-cache
// invalidation contract (a re-Put always moves to a never-seen generation)
// holds across restarts.
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*regEntry
	gen      uint64
	store    SnapshotStore // nil = memory-only
}

// regEntry is one registration. Memory-only registries pin d and snap;
// store-backed ones keep just the metadata and fetch the snapshot from the
// store (whose LRU decides what stays decoded).
type regEntry struct {
	gen  uint64
	info DatasetInfo
	d    *farmer.Dataset  // nil when store-backed
	snap *farmer.Snapshot // nil when store-backed
	// cost is the admission-control model: computed eagerly at Put for
	// memory-resident entries, lazily on first Entry load for store-backed
	// ones (guarded by the registry mutex).
	cost *CostModel
}

// NewRegistry returns an empty, memory-only registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*regEntry)}
}

// NewRegistryWithStore returns a registry persisted through st: datasets
// already in the store are registered immediately (without decoding — the
// first job against each one triggers the load) and the generation counter
// resumes from its persisted value.
func NewRegistryWithStore(st SnapshotStore) *Registry {
	r := &Registry{datasets: make(map[string]*regEntry), store: st, gen: st.Generation()}
	for _, m := range st.Entries() {
		r.datasets[m.Name] = &regEntry{
			gen: m.Generation,
			info: DatasetInfo{
				Name:    m.Name,
				Rows:    m.Rows,
				Items:   m.Items,
				Classes: m.Classes,
			},
		}
	}
	return r
}

// Put registers d under name, replacing any previous dataset of that name.
// The dataset is validated and compiled into its prepared snapshot here,
// once, so every job submitted against it skips the per-run build phase.
//
// With a store attached the registration is durable and all-or-nothing:
// the snapshot is persisted (and the bumped generation committed) before
// the entry becomes visible, and a persistence failure leaves both the
// registry and the store exactly as they were — no half-written file, no
// registered-but-unloadable name, no burned generation.
func (r *Registry) Put(name string, d *farmer.Dataset) error {
	snap, err := farmer.Prepare(d)
	if err != nil {
		return fmt.Errorf("register dataset %s: %w", name, err)
	}
	info := DatasetInfo{Name: name, Rows: d.NumRows(), Items: d.NumItems, Classes: d.ClassNames}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.gen + 1
	cost := newCostModel(d)
	if r.store != nil {
		if err := r.store.Put(name, snap, next); err != nil {
			return fmt.Errorf("register dataset %s: %w", name, err)
		}
		r.gen = next
		r.datasets[name] = &regEntry{gen: next, info: info, cost: cost}
		return nil
	}
	r.gen = next
	r.datasets[name] = &regEntry{gen: next, info: info, d: d, snap: snap, cost: cost}
	return nil
}

// Get returns the dataset registered under name, loading it from the
// store first when necessary.
func (r *Registry) Get(name string) (*farmer.Dataset, bool) {
	d, _, _, err := r.Entry(name)
	return d, err == nil
}

// Entry returns the full registration triple for name: the dataset, its
// prepared snapshot, and the registration generation. Store-backed entries
// are decoded on first use (and whenever the store's LRU has let them go
// since); the returned snapshot stays valid for the caller's lifetime
// regardless of later eviction or re-registration.
func (r *Registry) Entry(name string) (d *farmer.Dataset, snap *farmer.Snapshot, gen uint64, err error) {
	r.mu.RLock()
	e, ok := r.datasets[name]
	r.mu.RUnlock()
	if !ok {
		return nil, nil, 0, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	if e.d != nil {
		return e.d, e.snap, e.gen, nil
	}
	snap, gen, err = r.store.Load(name)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("dataset %q: %w", name, err)
	}
	return snap.Dataset(), snap, gen, nil
}

// CostModelFor returns the admission-control cost model for name,
// computing and memoizing it from d (the dataset Entry just returned) when
// the entry was registered cold from the store. A concurrent double
// computation is benign: the models are identical and one wins.
func (r *Registry) CostModelFor(name string, d *farmer.Dataset) *CostModel {
	r.mu.RLock()
	e, ok := r.datasets[name]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	if e.cost != nil {
		return e.cost
	}
	cost := newCostModel(d)
	r.mu.Lock()
	if cur, ok := r.datasets[name]; ok && cur == e && cur.cost == nil {
		cur.cost = cost
	}
	r.mu.Unlock()
	return cost
}

// Info returns the registered dataset's shape without forcing a snapshot
// load — listing endpoints stay cheap even when thousands of stored
// datasets are registered but cold.
func (r *Registry) Info(name string) (DatasetInfo, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[name]
	if !ok {
		return DatasetInfo{}, false
	}
	return e.info, true
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.datasets))
	for n := range r.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GenerationOf returns the registration generation for name without
// touching the snapshot store: the warm query path resolves its request
// hash from this alone, so a cache hit never forces a stored snapshot to
// decode (or even a disk read).
func (r *Registry) GenerationOf(name string) (uint64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.datasets[name]
	if !ok {
		return 0, false
	}
	return e.gen, true
}

// Generation returns the current registry-wide generation counter.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Load parses src in the given format and registers the result under name.
// Format "transactions" is the repository's "<class> : item item ..."
// text format; "matrix" is a labeled expression CSV, discretized with
// equal-depth buckets (default 10 when buckets <= 0).
func (r *Registry) Load(name, format string, buckets int, src io.Reader) (*farmer.Dataset, error) {
	var (
		d   *farmer.Dataset
		err error
	)
	switch format {
	case "", "transactions":
		d, err = farmer.ReadTransactions(src)
	case "matrix":
		if buckets <= 0 {
			buckets = 10
		}
		var m *farmer.Matrix
		if m, err = farmer.ReadMatrixCSV(src); err != nil {
			break
		}
		var disc *farmer.Discretizer
		if disc, err = farmer.EqualDepth(m, buckets); err != nil {
			break
		}
		d, err = disc.Apply(m)
	default:
		return nil, fmt.Errorf("unknown dataset format %q (want transactions or matrix)", format)
	}
	if err != nil {
		return nil, fmt.Errorf("load dataset %s: %w", name, err)
	}
	if err := r.Put(name, d); err != nil {
		return nil, err
	}
	return d, nil
}
