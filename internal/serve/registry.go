// Package serve is the farmerd mining service: a dataset registry, a job
// manager running miners on a bounded worker pool, and an HTTP/JSON API
// over both. Datasets are registered once (uploaded or preloaded from
// disk) and referenced by name; jobs run any of the repository's miners
// through the canonical farmer.Run* entry points with per-job
// cancellation and live NDJSON result streaming.
package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"

	farmer "repro"
)

// Registry is the named-dataset store shared by all jobs. Datasets are
// immutable once registered; re-registering a name replaces it for future
// jobs without disturbing running ones (they hold their own pointer).
type Registry struct {
	mu       sync.RWMutex
	datasets map[string]*farmer.Dataset
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{datasets: make(map[string]*farmer.Dataset)}
}

// Put registers d under name, replacing any previous dataset of that name.
func (r *Registry) Put(name string, d *farmer.Dataset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.datasets[name] = d
}

// Get returns the dataset registered under name.
func (r *Registry) Get(name string) (*farmer.Dataset, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.datasets[name]
	return d, ok
}

// Names returns the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.datasets))
	for n := range r.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load parses src in the given format and registers the result under name.
// Format "transactions" is the repository's "<class> : item item ..."
// text format; "matrix" is a labeled expression CSV, discretized with
// equal-depth buckets (default 10 when buckets <= 0).
func (r *Registry) Load(name, format string, buckets int, src io.Reader) (*farmer.Dataset, error) {
	var (
		d   *farmer.Dataset
		err error
	)
	switch format {
	case "", "transactions":
		d, err = farmer.ReadTransactions(src)
	case "matrix":
		if buckets <= 0 {
			buckets = 10
		}
		var m *farmer.Matrix
		if m, err = farmer.ReadMatrixCSV(src); err != nil {
			break
		}
		var disc *farmer.Discretizer
		if disc, err = farmer.EqualDepth(m, buckets); err != nil {
			break
		}
		d, err = disc.Apply(m)
	default:
		return nil, fmt.Errorf("unknown dataset format %q (want transactions or matrix)", format)
	}
	if err != nil {
		return nil, fmt.Errorf("load dataset %s: %w", name, err)
	}
	r.Put(name, d)
	return d, nil
}
