package serve

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the service's dependency-free Prometheus instrumentation:
// fixed-cardinality atomic counters and histograms, rendered in the text
// exposition format by GET /metrics. Every series is pre-declared — route
// labels come from a closed route classification, never from raw request
// paths — so a scrape's cardinality cannot be driven by traffic.
//
// Increment paths are single atomic adds (no locks, no allocations): the
// warm query path pays two time.Now calls and three atomic adds per
// request, which keeps it inside the ServeWarm allocation gate.
type Metrics struct {
	requests [nRoutes][nStatusClasses]atomic.Int64
	latency  [nRoutes]histogram

	queueWait histogram
	runTime   histogram

	jobsSubmitted atomic.Int64
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	jobsPartial   atomic.Int64

	// budgetUtil observes, for each max_millis-budgeted job, the fraction
	// of its budget the run consumed: a population near 1.0 means budgets
	// bind (anytime stops doing the cutting), near 0 means the exact
	// answer fits well inside the budget.
	budgetUtil ratioHistogram

	authFailures      atomic.Int64
	rateLimited       atomic.Int64
	quotaRejected     atomic.Int64
	admissionRejected atomic.Int64
	queueRejected     atomic.Int64

	mu         sync.Mutex
	collectors []func(io.Writer)
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Route classification for request metrics: a closed set so label
// cardinality is fixed no matter what paths clients probe.
const (
	routeHealthz = iota
	routeVersion
	routeMetrics
	routeDatasets
	routeQuery
	routeJobs
	routeCluster
	routeOther
	nRoutes
)

var routeNames = [nRoutes]string{
	"/healthz", "/version", "/metrics", "/v1/datasets", "/v1/query",
	"/v1/jobs", "/cluster", "other",
}

// routeIndex classifies a request path without allocating.
func routeIndex(path string) int {
	switch {
	case path == "/healthz":
		return routeHealthz
	case path == "/version":
		return routeVersion
	case path == "/metrics":
		return routeMetrics
	case hasPrefix(path, "/v1/datasets"):
		return routeDatasets
	case path == "/v1/query":
		return routeQuery
	case hasPrefix(path, "/v1/jobs"):
		return routeJobs
	case hasPrefix(path, "/cluster/"):
		return routeCluster
	default:
		return routeOther
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

const nStatusClasses = 5 // 1xx..5xx

var statusClassNames = [nStatusClasses]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// ObserveRequest records one completed HTTP request. Nil-safe.
func (m *Metrics) ObserveRequest(route, status int, d time.Duration) {
	if m == nil {
		return
	}
	if route < 0 || route >= nRoutes {
		route = routeOther
	}
	class := status/100 - 1
	if class < 0 || class >= nStatusClasses {
		class = nStatusClasses - 1
	}
	m.requests[route][class].Add(1)
	m.latency[route].observe(d)
}

// ObserveQueueWait records a job's queue wait (submission to worker
// pickup). Nil-safe.
func (m *Metrics) ObserveQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.observe(d)
}

// ObserveRun records a job's execution time. Nil-safe.
func (m *Metrics) ObserveRun(d time.Duration) {
	if m == nil {
		return
	}
	m.runTime.observe(d)
}

// JobSubmitted counts one admitted job. Nil-safe.
func (m *Metrics) JobSubmitted() {
	if m == nil {
		return
	}
	m.jobsSubmitted.Add(1)
}

// JobFinished counts one terminal transition. Nil-safe.
func (m *Metrics) JobFinished(state State) {
	if m == nil {
		return
	}
	switch state {
	case StateDone:
		m.jobsDone.Add(1)
	case StateFailed:
		m.jobsFailed.Add(1)
	case StateCancelled:
		m.jobsCancelled.Add(1)
	}
}

// JobPartial counts one job that ended with a partial result: a budget
// stop, a deadline, or a cancellation mid-run. Nil-safe.
func (m *Metrics) JobPartial() {
	if m == nil {
		return
	}
	m.jobsPartial.Add(1)
}

// ObserveBudgetUtilization records the fraction of its max_millis budget
// a budgeted job consumed. Nil-safe.
func (m *Metrics) ObserveBudgetUtilization(frac float64) {
	if m == nil {
		return
	}
	m.budgetUtil.observe(frac)
}

// AuthFailure / RateLimited / QuotaRejected / AdmissionRejected /
// QueueRejected count refused requests by refusal layer. All nil-safe.
func (m *Metrics) AuthFailure() {
	if m == nil {
		return
	}
	m.authFailures.Add(1)
}

func (m *Metrics) RateLimited() {
	if m == nil {
		return
	}
	m.rateLimited.Add(1)
}

func (m *Metrics) QuotaRejected() {
	if m == nil {
		return
	}
	m.quotaRejected.Add(1)
}

func (m *Metrics) AdmissionRejected() {
	if m == nil {
		return
	}
	m.admissionRejected.Add(1)
}

func (m *Metrics) QueueRejected() {
	if m == nil {
		return
	}
	m.queueRejected.Add(1)
}

// Register adds a collector invoked at every scrape, after the built-in
// series — how the cluster coordinator contributes its lease metrics
// without serve importing cluster.
func (m *Metrics) Register(collect func(io.Writer)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.collectors = append(m.collectors, collect)
	m.mu.Unlock()
}

// histogram is a fixed-bucket latency histogram: cumulative rendering
// happens at scrape, so observation is one bucket add plus a sum add.
type histogram struct {
	counts [len(bucketBounds) + 1]atomic.Int64 // +1 = +Inf
	sumNS  atomic.Int64
}

// bucketBounds are the histogram's upper bounds in seconds, chosen to
// resolve both sub-millisecond warm replays and multi-minute mining runs.
var bucketBounds = [...]float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10, 30, 60}

// bucketLabels are the pre-rendered `le` label values (bounds + "+Inf").
var bucketLabels = func() [len(bucketBounds) + 1]string {
	var out [len(bucketBounds) + 1]string
	for i, b := range bucketBounds {
		out[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	out[len(bucketBounds)] = "+Inf"
	return out
}()

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	idx := len(bucketBounds)
	for i, b := range bucketBounds {
		if secs <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sumNS.Add(int64(d))
}

// ratioHistogram is a fixed-bucket histogram over dimensionless fractions
// (budget utilization): same cumulative-at-scrape design as histogram,
// different bounds.
type ratioHistogram struct {
	counts [len(ratioBounds) + 1]atomic.Int64 // +1 = +Inf
	sumMu  sync.Mutex
	sum    float64
}

// ratioBounds resolve where in its budget a run landed; >1 (the +Inf
// bucket beyond 1.25) means the stop overshot the budget.
var ratioBounds = [...]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.25}

var ratioLabels = func() [len(ratioBounds) + 1]string {
	var out [len(ratioBounds) + 1]string
	for i, b := range ratioBounds {
		out[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	out[len(ratioBounds)] = "+Inf"
	return out
}()

func (h *ratioHistogram) observe(frac float64) {
	idx := len(ratioBounds)
	for i, b := range ratioBounds {
		if frac <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sumMu.Lock()
	h.sum += frac
	h.sumMu.Unlock()
}

// promWriter accumulates exposition text; all writes go through it so the
// final handler response is one buffer.
type promWriter struct {
	w io.Writer
	b []byte
}

func (p *promWriter) line(s string) {
	p.b = append(p.b, s...)
	p.b = append(p.b, '\n')
}

func (p *promWriter) sample(name, labels string, value float64) {
	p.b = append(p.b, name...)
	if labels != "" {
		p.b = append(p.b, '{')
		p.b = append(p.b, labels...)
		p.b = append(p.b, '}')
	}
	p.b = append(p.b, ' ')
	p.b = strconv.AppendFloat(p.b, value, 'g', -1, 64)
	p.b = append(p.b, '\n')
}

func (p *promWriter) counter(name, labels string, value int64) {
	p.sample(name, labels, float64(value))
}

func (p *promWriter) flush() error {
	_, err := p.w.Write(p.b)
	return err
}

// writeHistogram renders a histogram in the conventional _bucket/_sum/
// _count triplet with cumulative buckets.
func (p *promWriter) writeHistogram(name, extraLabels string, h *histogram) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		labels := `le="` + bucketLabels[i] + `"`
		if extraLabels != "" {
			labels = extraLabels + "," + labels
		}
		p.counter(name+"_bucket", labels, cum)
	}
	p.sample(name+"_sum", extraLabels, float64(h.sumNS.Load())/1e9)
	p.counter(name+"_count", extraLabels, cum)
}

// writeRatioHistogram renders a ratioHistogram in the conventional
// _bucket/_sum/_count triplet with cumulative buckets.
func (p *promWriter) writeRatioHistogram(name string, h *ratioHistogram) {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		p.counter(name+"_bucket", `le="`+ratioLabels[i]+`"`, cum)
	}
	h.sumMu.Lock()
	sum := h.sum
	h.sumMu.Unlock()
	p.sample(name+"_sum", "", sum)
	p.counter(name+"_count", "", cum)
}

// render writes the registry's own series (requests, latency, job
// lifecycle, refusals) followed by the registered collectors.
func (m *Metrics) render(w io.Writer) error {
	p := &promWriter{w: w, b: make([]byte, 0, 8192)}

	p.line("# HELP farmerd_requests_total HTTP requests by route class and status class.")
	p.line("# TYPE farmerd_requests_total counter")
	for r := 0; r < nRoutes; r++ {
		for c := 0; c < nStatusClasses; c++ {
			if v := m.requests[r][c].Load(); v > 0 {
				p.counter("farmerd_requests_total", `route="`+routeNames[r]+`",status="`+statusClassNames[c]+`"`, v)
			}
		}
	}

	p.line("# HELP farmerd_request_seconds HTTP request latency by route class.")
	p.line("# TYPE farmerd_request_seconds histogram")
	for r := 0; r < nRoutes; r++ {
		if m.latency[r].countTotal() == 0 {
			continue
		}
		p.writeHistogram("farmerd_request_seconds", `route="`+routeNames[r]+`"`, &m.latency[r])
	}

	p.line("# HELP farmerd_job_queue_wait_seconds Time jobs spent queued before a worker picked them up.")
	p.line("# TYPE farmerd_job_queue_wait_seconds histogram")
	p.writeHistogram("farmerd_job_queue_wait_seconds", "", &m.queueWait)

	p.line("# HELP farmerd_job_run_seconds Job execution time on a worker.")
	p.line("# TYPE farmerd_job_run_seconds histogram")
	p.writeHistogram("farmerd_job_run_seconds", "", &m.runTime)

	p.line("# HELP farmerd_jobs_submitted_total Jobs admitted to the queue.")
	p.line("# TYPE farmerd_jobs_submitted_total counter")
	p.counter("farmerd_jobs_submitted_total", "", m.jobsSubmitted.Load())

	p.line("# HELP farmerd_jobs_finished_total Jobs reaching a terminal state.")
	p.line("# TYPE farmerd_jobs_finished_total counter")
	p.counter("farmerd_jobs_finished_total", `state="done"`, m.jobsDone.Load())
	p.counter("farmerd_jobs_finished_total", `state="failed"`, m.jobsFailed.Load())
	p.counter("farmerd_jobs_finished_total", `state="cancelled"`, m.jobsCancelled.Load())

	p.line("# HELP farmerd_jobs_partial_total Jobs that ended with a partial result (budget stop, deadline or cancellation).")
	p.line("# TYPE farmerd_jobs_partial_total counter")
	p.counter("farmerd_jobs_partial_total", "", m.jobsPartial.Load())

	p.line("# HELP farmerd_budget_utilization_ratio Fraction of its max_millis budget each budgeted job consumed.")
	p.line("# TYPE farmerd_budget_utilization_ratio histogram")
	p.writeRatioHistogram("farmerd_budget_utilization_ratio", &m.budgetUtil)

	p.line("# HELP farmerd_rejected_total Requests refused before reaching a worker, by layer.")
	p.line("# TYPE farmerd_rejected_total counter")
	p.counter("farmerd_rejected_total", `reason="auth"`, m.authFailures.Load())
	p.counter("farmerd_rejected_total", `reason="rate_limited"`, m.rateLimited.Load())
	p.counter("farmerd_rejected_total", `reason="quota"`, m.quotaRejected.Load())
	p.counter("farmerd_rejected_total", `reason="admission"`, m.admissionRejected.Load())
	p.counter("farmerd_rejected_total", `reason="queue_full"`, m.queueRejected.Load())

	if err := p.flush(); err != nil {
		return err
	}

	m.mu.Lock()
	collectors := m.collectors
	m.mu.Unlock()
	for _, c := range collectors {
		c(w)
	}
	return nil
}

func (h *histogram) countTotal() int64 {
	total := int64(0)
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}
