package serve_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/serve"
)

// TestCachedReplayByteIdentical is the acceptance check for the result
// cache: resubmitting a completed request returns a job that is already
// done, flagged cached, carries the original run's statistics, and whose
// NDJSON stream is byte-identical to the fresh run's.
func TestCachedReplayByteIdentical(t *testing.T) {
	ts, mgr := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2, LowerBounds: true}
	first := submit(t, ts.URL, spec)
	if first.Cached {
		t.Fatal("first submission flagged cached")
	}
	waitState(t, ts.URL, first.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	fresh := streamLines(t, ts.URL, first.ID)
	if len(fresh) == 0 {
		t.Fatal("fresh run emitted nothing; test needs records to compare")
	}

	if entries, bytes := mgr.CacheStats(); entries != 1 || bytes <= 0 {
		t.Fatalf("cache stats after first run: entries=%d bytes=%d, want 1 entry with positive size", entries, bytes)
	}

	second := submit(t, ts.URL, spec)
	if second.ID == first.ID {
		t.Fatal("cached replay reused the original job id")
	}
	if !second.Cached {
		t.Fatalf("second submission not flagged cached: %+v", second)
	}
	if second.State != serve.StateDone {
		t.Fatalf("cached job state %q at submission, want done", second.State)
	}
	replay := streamLines(t, ts.URL, second.ID)
	equalLines(t, "cached replay", replay, fresh)

	freshStatus := status(t, ts.URL, first.ID)
	cachedStatus := status(t, ts.URL, second.ID)
	if freshStatus.Stats == nil || cachedStatus.Stats == nil {
		t.Fatal("missing stats on terminal jobs")
	}
	if !reflect.DeepEqual(*freshStatus.Stats, *cachedStatus.Stats) {
		t.Fatalf("cached stats differ from the original run's:\nfresh  %+v\ncached %+v", *freshStatus.Stats, *cachedStatus.Stats)
	}
	if freshStatus.Stats.PrepareReused != 1 {
		t.Fatalf("PrepareReused=%d on a registry-served run, want 1", freshStatus.Stats.PrepareReused)
	}
}

// Closed-set miners replay through the cache too, and their runs reuse
// the registry snapshot.
func TestCachedReplayClosedSetMiners(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	for _, miner := range []string{"charm", "closet", "columne", "carpenter", "cobbler", "topk"} {
		spec := serve.JobSpec{Miner: miner, Dataset: "paper", MinSup: 2}
		first := submit(t, ts.URL, spec)
		waitState(t, ts.URL, first.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
		fresh := streamLines(t, ts.URL, first.ID)

		second := submit(t, ts.URL, spec)
		if !second.Cached {
			t.Fatalf("%s: repeat submission not cached", miner)
		}
		equalLines(t, miner+" replay", streamLines(t, ts.URL, second.ID), fresh)

		st := status(t, ts.URL, first.ID)
		if st.Stats == nil || st.Stats.PrepareReused != 1 {
			t.Fatalf("%s: PrepareReused=%v, want 1", miner, st.Stats)
		}
	}
}

// Re-registering a dataset name bumps its generation, so an identical
// request after the re-Put misses the cache and mines the new data.
func TestCacheMissOnReregistration(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	first := submit(t, ts.URL, spec)
	waitState(t, ts.URL, first.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })

	// Same bytes, new registration: the data is identical but the cache
	// must not serve results across registrations.
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	second := submit(t, ts.URL, spec)
	if second.Cached {
		t.Fatal("submission after re-registration served from cache")
	}
	waitState(t, ts.URL, second.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	equalLines(t, "post-reregistration run",
		streamLines(t, ts.URL, second.ID), streamLines(t, ts.URL, first.ID))
}

// Identical submissions while a matching job is still live coalesce onto
// that job instead of enqueueing a duplicate run.
func TestSingleflightCoalescesIdenticalSubmissions(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())

	spec := serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1}
	first := submit(t, ts.URL, spec)
	waitState(t, ts.URL, first.ID, func(s serve.JobStatus) bool { return s.State == serve.StateRunning })

	second := submit(t, ts.URL, spec)
	if second.ID != first.ID {
		t.Fatalf("identical live submission got job %s, want coalescing onto %s", second.ID, first.ID)
	}
	if second.Cached {
		t.Fatal("coalesced live job flagged cached")
	}

	// A different request must not coalesce.
	other := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 2})
	if other.ID == first.ID {
		t.Fatal("different spec coalesced onto the live job")
	}

	// The runs themselves are deliberately long; cancel instead of waiting.
	for _, id := range []string{first.ID, other.ID} {
		cancelJob(t, ts.URL, id)
		waitState(t, ts.URL, id, func(s serve.JobStatus) bool { return s.State.Terminal() })
	}
}

func cancelJob(t *testing.T, baseURL, id string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, baseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// mediumExample is a transactions text big enough that a minsup=1 FARMER
// run stays observably live for a moment, yet cheap enough to run to
// completion (twice) under the race detector.
func mediumExample() string {
	const rows, items = 36, 48
	rng := rand.New(rand.NewSource(777))
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if i%2 == 0 {
			b.WriteString("C :")
		} else {
			b.WriteString("N :")
		}
		for it := 0; it < items; it++ {
			p := 0.35
			if i%2 == 0 && it < 3 {
				p = 0.9
			}
			if rng.Float64() < p {
				fmt.Fprintf(&b, " g%d", it)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Re-Putting a dataset name under a live job must not disturb that job:
// it keeps mining the dataset (and snapshot) it was submitted against,
// and its results match a library run over the original data.
func TestRePutUnderLiveJobKeepsSnapshot(t *testing.T) {
	ts, _ := service(t, 1, 4)
	medium := mediumExample()
	put(t, ts.URL+"/v1/datasets/d", medium)

	spec := serve.JobSpec{Miner: "farmer", Dataset: "d", MinSup: 1}
	first := submit(t, ts.URL, spec)
	waitState(t, ts.URL, first.ID, func(s serve.JobStatus) bool {
		return s.State == serve.StateRunning || s.State.Terminal()
	})

	// Swap the name to a completely different dataset mid-run.
	put(t, ts.URL+"/v1/datasets/d", paperExample)

	got := streamLines(t, ts.URL, first.ID)
	if st := status(t, ts.URL, first.ID); st.State != serve.StateDone {
		t.Fatalf("live job state %q after re-Put, want done", st.State)
	}

	d, err := farmer.ReadTransactions(strings.NewReader(medium))
	if err != nil {
		t.Fatal(err)
	}
	want := expectedFarmerLines(t, d, 0, farmer.MineOptions{MinSup: 1})
	equalLines(t, "live job across re-Put", got, want)

	// New submissions resolve the new registration.
	second := submit(t, ts.URL, spec)
	if second.Cached || second.ID == first.ID {
		t.Fatalf("post-re-Put submission should be a fresh job: %+v", second)
	}
	waitState(t, ts.URL, second.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	pd := loadExample(t)
	equalLines(t, "post-re-Put run",
		streamLines(t, ts.URL, second.ID), expectedFarmerLines(t, pd, 0, farmer.MineOptions{MinSup: 1}))
}

// A zero cache budget disables replay: repeats mine again, but still
// produce identical bytes.
func TestCacheDisabled(t *testing.T) {
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, 1, 4, 0)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	if _, err := reg.Load("paper", "transactions", 0, strings.NewReader(paperExample)); err != nil {
		t.Fatal(err)
	}

	spec := serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}
	first, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-first.Done()
	if entries, bytes := mgr.CacheStats(); entries != 0 || bytes != 0 {
		t.Fatalf("disabled cache reports entries=%d bytes=%d", entries, bytes)
	}
	second, err := mgr.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-second.Done()
	if st := second.Status(); st.Cached {
		t.Fatal("replay served with caching disabled")
	}
}
