package serve_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestMetricsEndpoint drives real traffic (including refusals) through a
// keyed service and checks that the /metrics scrape is well-formed
// Prometheus text carrying the expected series.
func TestMetricsEndpoint(t *testing.T) {
	cfg := serve.KeysFile{
		Tenants:   []serve.TenantConfig{{Name: "alice", Key: "ka"}},
		Anonymous: &serve.TenantConfig{Name: "anonymous"},
	}
	ts, _ := keyedService(t, cfg, 2, 16, nil)

	resp := doKeyed(t, http.MethodPut, ts.URL+"/v1/datasets/paper", "ka", paperExample)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT dataset: %d", resp.StatusCode)
	}

	// A real mining run (2xx + finished job), a 404, and an auth refusal:
	// each must land in its own series.
	code, _, st := submitKeyed(t, ts.URL, "ka", serve.QuerySpec{Miner: "farmer", Dataset: "paper", MinSup: 2})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStateKeyed(t, ts.URL, "ka", st.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	resp = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs/job-999999", "ka", "")
	resp.Body.Close()
	resp = doKeyed(t, http.MethodGet, ts.URL+"/v1/jobs", "bogus-key", "")
	resp.Body.Close()

	resp = doKeyed(t, http.MethodGet, ts.URL+"/metrics", "", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	samples, err := serve.CheckPromText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("scrape not valid Prometheus text: %v\n%s", err, body)
	}
	if samples < 20 {
		t.Fatalf("suspiciously small scrape: %d samples", samples)
	}

	for _, want := range []string{
		`farmerd_requests_total{route="/v1/jobs",status="2xx"}`,
		`farmerd_requests_total{route="/v1/jobs",status="4xx"}`,
		"farmerd_request_seconds_bucket",
		"farmerd_jobs_submitted_total 1",
		`farmerd_jobs_finished_total{state="done"} 1`,
		"farmerd_job_queue_wait_seconds_count 1",
		"farmerd_job_run_seconds_count 1",
		`farmerd_rejected_total{reason="auth"} 1`,
		"farmerd_queue_depth 0",
		"farmerd_jobs_running 0",
		"farmerd_cache_entries",
		`farmerd_tenant_jobs_total{tenant="alice"} 1`,
		`farmerd_tenant_rows_expanded_total{tenant="alice"}`,
		`farmerd_tenant_run_seconds_total{tenant="alice"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestCheckPromTextAccepts pins the validator's positive cases, including
// the special values and escapes the text format allows.
func TestCheckPromTextAccepts(t *testing.T) {
	const good = `# HELP foo_total A counter.
# TYPE foo_total counter
foo_total 17
# TYPE lat histogram
lat_bucket{le="0.1"} 3
lat_bucket{le="+Inf"} 4
lat_sum 0.42
lat_count 4
weird{l="a\"b\\c\nd"} NaN
stamped{x="y"} 1.5e3 1712345678901
`
	samples, err := serve.CheckPromText(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if samples != 7 {
		t.Fatalf("counted %d samples, want 7", samples)
	}
}

// TestCheckPromTextRejects pins the validator's negative cases — the
// realistic ways a hand-rolled renderer goes wrong. CI runs this same
// checker against the live daemon's scrape, so the smoke test only means
// something if these all fail.
func TestCheckPromTextRejects(t *testing.T) {
	cases := map[string]string{
		"missing value":       "foo_total\n",
		"bare label block":    "foo{bar} 1\n",
		"unquoted value":      "foo{bar=baz} 1\n",
		"digit-leading name":  "1foo 2\n",
		"bad escape":          "foo{l=\"a\\qb\"} 1\n",
		"unterminated labels": "foo{l=\"x\" 1\n",
		"non-numeric value":   "foo{l=\"x\"} fast\n",
		"extra fields":        "foo 1 2 3\n",
		"bad timestamp":       "foo 1 soon\n",
		"unknown TYPE kind":   "# TYPE foo banana\nfoo 1\n",
		"malformed TYPE":      "# TYPE foo\nfoo 1\n",
		"duplicate series":    "foo{a=\"1\"} 1\nfoo{a=\"1\"} 2\n",
	}
	for name, payload := range cases {
		if _, err := serve.CheckPromText(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted %q", name, payload)
		}
	}
	// Same name with different labels is NOT a duplicate.
	if _, err := serve.CheckPromText(strings.NewReader("foo{a=\"1\"} 1\nfoo{a=\"2\"} 2\n")); err != nil {
		t.Errorf("distinct label sets rejected: %v", err)
	}
}
