package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Server is the HTTP face of the mining service.
//
//	GET    /healthz                 liveness probe
//	GET    /v1/datasets             registered dataset names + shapes
//	PUT    /v1/datasets/{name}      register a dataset (body = data;
//	                                ?format=transactions|matrix&buckets=N)
//	POST   /v1/jobs                 submit a JobSpec, returns the job status
//	GET    /v1/jobs                 all job statuses
//	GET    /v1/jobs/{id}            job status + live progress
//	GET    /v1/jobs/{id}/results    NDJSON result stream, follows a live job
//	DELETE /v1/jobs/{id}            cancel (queued or running)
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	build   VersionInfo
	handler http.Handler
}

// NewServer wires the routes of the service around mgr. Every error
// response — including the mux's own 404/405 — leaves as structured JSON
// (see jsonErrors), so machine clients such as cluster workers parse one
// shape uniformly.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), build: versionInfo()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /version", s.version)
	s.mux.HandleFunc("GET /v1/datasets", s.listDatasets)
	s.mux.HandleFunc("PUT /v1/datasets/{name}", s.putDataset)
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.jobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.jobResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.handler = jsonErrors(s.mux)
	return s
}

// Handle registers an extra route on the server's mux — how cmd/farmerd
// mounts the cluster coordinator and worker endpoints under the same
// listener (and the same JSON-error envelope) as the mining API.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Items   int      `json:"items"`
	Classes []string `json:"classes"`
}

func (s *Server) listDatasets(w http.ResponseWriter, _ *http.Request) {
	reg := s.mgr.Registry()
	infos := []DatasetInfo{}
	for _, name := range reg.Names() {
		// Info reads registration metadata only: listing never forces a
		// cold store-backed snapshot to decode.
		if info, ok := reg.Info(name); ok {
			infos = append(infos, info)
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) putDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	buckets := 0
	if b := r.URL.Query().Get("buckets"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad buckets %q: %w", b, err))
			return
		}
		buckets = n
	}
	d, err := s.mgr.Registry().Load(name, r.URL.Query().Get("format"), buckets, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, DatasetInfo{
		Name:    name,
		Rows:    d.NumRows(),
		Items:   d.NumItems,
		Classes: d.ClassNames,
	})
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	job, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	statuses := []JobStatus{}
	for _, j := range s.mgr.Jobs() {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	job, _ := s.mgr.Get(id)
	writeJSON(w, http.StatusOK, job.Status())
}

// jobResults streams the job's result records as NDJSON, following a
// live job until it finishes or the client goes away. Records already
// emitted are replayed first, so the stream is identical no matter when
// the client connects.
func (s *Server) jobResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first (possibly slow) record
	}
	from := 0
	for {
		batch, terminal, wake := job.next(from)
		for _, raw := range batch {
			if _, err := w.Write(raw); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		from += len(batch)
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
