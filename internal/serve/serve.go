package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

const ndjsonContentType = "application/x-ndjson"

// Server is the HTTP face of the mining service.
//
//	GET    /healthz                 liveness probe
//	GET    /v1/datasets             registered dataset names + shapes
//	PUT    /v1/datasets/{name}      register a dataset (body = data;
//	                                ?format=transactions|matrix&buckets=N)
//	POST   /v1/query                submit a JobSpec and stream its NDJSON
//	                                results in one round trip; warm repeats
//	                                replay the result cache zero-copy and
//	                                honour If-None-Match with 304
//	POST   /v1/jobs                 submit a JobSpec, returns the job status
//	GET    /v1/jobs                 all job statuses
//	GET    /v1/jobs/{id}            job status + live progress
//	GET    /v1/jobs/{id}/results    NDJSON result stream, follows a live job
//	DELETE /v1/jobs/{id}            cancel (queued or running)
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	build   VersionInfo
	handler http.Handler
}

// NewServer wires the routes of the service around mgr. Every error
// response — including the mux's own 404/405 — leaves as structured JSON
// (see jsonErrors), so machine clients such as cluster workers parse one
// shape uniformly.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), build: versionInfo()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /version", s.version)
	s.mux.HandleFunc("GET /v1/datasets", s.listDatasets)
	s.mux.HandleFunc("PUT /v1/datasets/{name}", s.putDataset)
	s.mux.HandleFunc("POST /v1/query", s.query)
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.jobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.jobResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.handler = jsonErrors(s.mux)
	return s
}

// Handle registers an extra route on the server's mux — how cmd/farmerd
// mounts the cluster coordinator and worker endpoints under the same
// listener (and the same JSON-error envelope) as the mining API.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// responseBufPool recycles the encode buffers behind every JSON response,
// so status and submit traffic does not allocate a fresh buffer (or take
// chunked encoding) per request.
var responseBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := responseBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	responseBufPool.Put(buf)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Items   int      `json:"items"`
	Classes []string `json:"classes"`
}

func (s *Server) listDatasets(w http.ResponseWriter, _ *http.Request) {
	reg := s.mgr.Registry()
	infos := []DatasetInfo{}
	for _, name := range reg.Names() {
		// Info reads registration metadata only: listing never forces a
		// cold store-backed snapshot to decode.
		if info, ok := reg.Info(name); ok {
			infos = append(infos, info)
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) putDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	buckets := 0
	if b := r.URL.Query().Get("buckets"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad buckets %q: %w", b, err))
			return
		}
		buckets = n
	}
	d, err := s.mgr.Registry().Load(name, r.URL.Query().Get("format"), buckets, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, DatasetInfo{
		Name:    name,
		Rows:    d.NumRows(),
		Items:   d.NumItems,
		Classes: d.ClassNames,
	})
}

func decodeSpec(r *http.Request, spec *JobSpec) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("bad job spec: %w", err)
	}
	return nil
}

// query is the one-round-trip request path tuned for repeat traffic: the
// spec is submitted and its NDJSON results stream back on the same
// response. A request whose canonical hash matches a cached completed run
// replays the pre-encoded body without touching the job manager — one
// header write plus one body write of an immutable shared buffer, with
// Content-Length set (no chunked encoding) and a strong ETag; a matching
// If-None-Match returns 304 without reading the body at all. Cache misses
// fall back to a normal submission (singleflight, queueing, backpressure
// and cancellation all apply) whose results are streamed live.
func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if res, ok := s.mgr.cachedFor(spec); ok {
		serveReplay(w, r, res.body, res.etag, true)
		return
	}
	job, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Submit may still have resolved a replay (cache filled between the
	// lookup and the submission, or coalesced onto a finished job).
	if body, etag, ok := job.replay(); ok {
		serveReplay(w, r, body, etag, job.cached)
		return
	}
	w.Header().Set("X-Cache", "MISS")
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	streamFollow(w, r, job)
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *Server) listJobs(w http.ResponseWriter, _ *http.Request) {
	statuses := []JobStatus{}
	for _, j := range s.mgr.Jobs() {
		statuses = append(statuses, j.Status())
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	job, _ := s.mgr.Get(id)
	writeJSON(w, http.StatusOK, job.Status())
}

// etagMatches reports whether the If-None-Match header value matches the
// given strong ETag. The comparison accepts "*", a single ETag, or a
// comma-separated list, tolerating a W/ weakness prefix (weak comparison
// is permitted for GET/HEAD conditionals) — all without allocating.
func etagMatches(header, etag string) bool {
	if header == "*" {
		return true
	}
	for {
		header = strings.TrimLeft(header, " \t,")
		if header == "" {
			return false
		}
		candidate := header
		if strings.HasPrefix(candidate, "W/") {
			candidate = candidate[2:]
		}
		// The ETag ends with '"', so a prefix match cannot stop short of a
		// token boundary.
		if strings.HasPrefix(candidate, etag) {
			return true
		}
		i := strings.IndexByte(header, ',')
		if i < 0 {
			return false
		}
		header = header[i+1:]
	}
}

// serveReplay writes a fully-known NDJSON body in one shot: strong ETag,
// explicit Content-Length (the stack skips chunked transfer encoding),
// and a single Write of the shared immutable buffer. An If-None-Match hit
// answers 304 before the body is ever touched. cacheHit marks responses
// served from the result cache (X-Cache: HIT) as the cached flag does on
// job statuses.
func serveReplay(w http.ResponseWriter, r *http.Request, body []byte, etag string, cacheHit bool) {
	h := w.Header()
	h.Set("ETag", etag)
	if cacheHit {
		h.Set("X-Cache", "HIT")
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", ndjsonContentType)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// streamFollow replays the records already emitted and follows the live
// job until it finishes or the client goes away. Headers must be written
// before the call.
func streamFollow(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first (possibly slow) record
	}
	from := 0
	for {
		batch, terminal, wake := job.next(from)
		for _, raw := range batch {
			if _, err := w.Write(raw); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		from += len(batch)
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// jobResults streams the job's result records as NDJSON. A cleanly
// completed job — cached replay or original run — is served through the
// zero-copy path (one write of the pre-encoded body, Content-Length and
// ETag set, If-None-Match honoured); anything still live or terminated
// early is replayed record by record, following the job until it finishes
// or the client goes away.
func (s *Server) jobResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	if body, etag, ok := job.replay(); ok {
		serveReplay(w, r, body, etag, job.cached)
		return
	}
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	streamFollow(w, r, job)
}
