package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const ndjsonContentType = "application/x-ndjson"

// Server is the HTTP face of the mining service.
//
//	GET    /healthz                 liveness probe
//	GET    /version                 build identity
//	GET    /metrics                 Prometheus text exposition
//	GET    /v1/datasets             registered dataset names + shapes
//	PUT    /v1/datasets/{name}      register a dataset (body = data;
//	                                ?format=transactions|matrix&buckets=N)
//	POST   /v1/query                submit a QuerySpec and stream its NDJSON
//	                                results in one round trip; warm repeats
//	                                replay the result cache zero-copy and
//	                                honour If-None-Match with 304
//	POST   /v1/jobs                 submit a QuerySpec, returns the job status
//	GET    /v1/jobs                 job statuses (?state= ?tenant= ?limit=)
//	GET    /v1/jobs/{id}            job status + live progress
//	GET    /v1/jobs/{id}/results    NDJSON result stream, follows a live job
//	DELETE /v1/jobs/{id}            cancel (queued or running)
//
// When the manager carries a keyed tenant registry, every request outside
// /healthz, /version and /metrics must present an API key; the tenant's
// token bucket, quotas and admission budget apply before any work is done.
type Server struct {
	mgr     *Manager
	mux     *http.ServeMux
	build   VersionInfo
	metrics *Metrics // nil when disabled via WithoutMetrics
	handler http.Handler
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithoutMetrics disables both the /metrics endpoint and the request
// instrumentation (the -metrics=false deployment).
func WithoutMetrics() ServerOption {
	return func(s *Server) { s.metrics = nil }
}

// WithMetrics installs a caller-owned metrics registry (for sharing one
// registry across servers, or pre-registering collectors).
func WithMetrics(m *Metrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// serverRoutes is the complete v1 route table — the single source the mux
// registration and the HTTP-surface golden test both read.
var serverRoutes = []string{
	"GET /healthz",
	"GET /version",
	"GET /metrics",
	"GET /v1/datasets",
	"PUT /v1/datasets/{name}",
	"POST /v1/query",
	"POST /v1/jobs",
	"GET /v1/jobs",
	"GET /v1/jobs/{id}",
	"GET /v1/jobs/{id}/results",
	"DELETE /v1/jobs/{id}",
}

// Routes returns the registered route patterns (a copy), for surface
// pinning.
func Routes() []string {
	out := make([]string, len(serverRoutes))
	copy(out, serverRoutes)
	return out
}

// NewServer wires the routes of the service around mgr. Every error
// response — including the mux's own 404/405 — leaves as structured JSON
// with a stable machine-readable code (see jsonErrors), so machine clients
// such as cluster workers parse one shape uniformly. Metrics are on by
// default: the manager reports job lifecycle events into the server's
// registry and GET /metrics renders it.
func NewServer(mgr *Manager, opts ...ServerOption) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), build: versionInfo(), metrics: NewMetrics()}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("GET /version", s.version)
	if s.metrics != nil {
		s.mux.HandleFunc("GET /metrics", s.metricsEndpoint)
		mgr.SetMetrics(s.metrics)
	}
	s.mux.HandleFunc("GET /v1/datasets", s.listDatasets)
	s.mux.HandleFunc("PUT /v1/datasets/{name}", s.putDataset)
	s.mux.HandleFunc("POST /v1/query", s.query)
	s.mux.HandleFunc("POST /v1/jobs", s.submitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.listJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.jobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/results", s.jobResults)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	s.handler = jsonErrors(s.withAuth(s.mux), s.metrics)
	return s
}

// Metrics returns the server's metrics registry (nil when disabled) so
// callers can register extra collectors — how cmd/farmerd hooks the
// cluster coordinator's gauges into the scrape.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Handle registers an extra route on the server's mux — how cmd/farmerd
// mounts the cluster coordinator and worker endpoints under the same
// listener (and the same JSON-error envelope) as the mining API.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// responseBufPool recycles the encode buffers behind every JSON response,
// so status and submit traffic does not allocate a fresh buffer (or take
// chunked encoding) per request.
var responseBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := responseBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	responseBufPool.Put(buf)
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// metricsEndpoint renders the Prometheus text exposition: the server's
// request metrics, the manager's live gauges and per-tenant accounting,
// then any registered collectors (the cluster coordinator).
func (s *Server) metricsEndpoint(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	buf := responseBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = s.metrics.render(buf)
	s.renderManagerMetrics(buf)
	h := w.Header()
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
	responseBufPool.Put(buf)
}

// renderManagerMetrics writes the gauges and per-tenant series that live
// on the manager rather than in the Metrics registry: queue occupancy,
// cache state, and each tenant's resource roll-up.
func (s *Server) renderManagerMetrics(w io.Writer) {
	p := &promWriter{w: w, b: make([]byte, 0, 2048)}
	queued, running := s.mgr.QueueStats()
	p.line("# HELP farmerd_queue_depth Jobs currently queued across all tenants.")
	p.line("# TYPE farmerd_queue_depth gauge")
	p.counter("farmerd_queue_depth", "", int64(queued))
	p.line("# HELP farmerd_jobs_running Jobs currently executing on workers.")
	p.line("# TYPE farmerd_jobs_running gauge")
	p.counter("farmerd_jobs_running", "", int64(running))

	entries, bytes := s.mgr.CacheStats()
	hits, misses := s.mgr.CacheCounters()
	p.line("# HELP farmerd_cache_entries Result-cache entries resident.")
	p.line("# TYPE farmerd_cache_entries gauge")
	p.counter("farmerd_cache_entries", "", int64(entries))
	p.line("# HELP farmerd_cache_bytes Result-cache bytes resident.")
	p.line("# TYPE farmerd_cache_bytes gauge")
	p.counter("farmerd_cache_bytes", "", bytes)
	p.line("# HELP farmerd_cache_hits_total Result-cache lookup hits.")
	p.line("# TYPE farmerd_cache_hits_total counter")
	p.counter("farmerd_cache_hits_total", "", hits)
	p.line("# HELP farmerd_cache_misses_total Result-cache lookup misses.")
	p.line("# TYPE farmerd_cache_misses_total counter")
	p.counter("farmerd_cache_misses_total", "", misses)

	tenants := s.mgr.Tenants().All()
	names := make([]string, 0, len(tenants))
	byName := make(map[string]*Tenant, len(tenants))
	for _, t := range tenants {
		n := t.Name()
		names = append(names, n)
		byName[n] = t
	}
	sort.Strings(names)
	p.line("# HELP farmerd_tenant_jobs_total Jobs finished per tenant.")
	p.line("# TYPE farmerd_tenant_jobs_total counter")
	for _, n := range names {
		p.counter("farmerd_tenant_jobs_total", `tenant="`+n+`"`, byName[n].Acct.Jobs.Load())
	}
	p.line("# HELP farmerd_tenant_rows_expanded_total Enumeration nodes expanded per tenant.")
	p.line("# TYPE farmerd_tenant_rows_expanded_total counter")
	for _, n := range names {
		p.counter("farmerd_tenant_rows_expanded_total", `tenant="`+n+`"`, byName[n].Acct.RowsExpanded.Load())
	}
	p.line("# HELP farmerd_tenant_arena_bytes_total Arena bytes retained by runs, per tenant.")
	p.line("# TYPE farmerd_tenant_arena_bytes_total counter")
	for _, n := range names {
		p.counter("farmerd_tenant_arena_bytes_total", `tenant="`+n+`"`, byName[n].Acct.ArenaBytes.Load())
	}
	p.line("# HELP farmerd_tenant_run_seconds_total Worker seconds consumed per tenant.")
	p.line("# TYPE farmerd_tenant_run_seconds_total counter")
	for _, n := range names {
		p.sample("farmerd_tenant_run_seconds_total", `tenant="`+n+`"`, float64(byName[n].Acct.RunNS.Load())/1e9)
	}
	p.line("# HELP farmerd_tenant_queue_seconds_total Queue-wait seconds accumulated per tenant.")
	p.line("# TYPE farmerd_tenant_queue_seconds_total counter")
	for _, n := range names {
		p.sample("farmerd_tenant_queue_seconds_total", `tenant="`+n+`"`, float64(byName[n].Acct.QueueNS.Load())/1e9)
	}
	p.line("# HELP farmerd_tenant_rejected_total Requests refused per tenant by layer.")
	p.line("# TYPE farmerd_tenant_rejected_total counter")
	for _, n := range names {
		a := &byName[n].Acct
		p.counter("farmerd_tenant_rejected_total", `tenant="`+n+`",reason="rate_limited"`, a.RateLimited.Load())
		p.counter("farmerd_tenant_rejected_total", `tenant="`+n+`",reason="quota"`, a.QuotaRejected.Load())
		p.counter("farmerd_tenant_rejected_total", `tenant="`+n+`",reason="admission"`, a.AdmissionRejected.Load())
	}
	_ = p.flush()
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name    string   `json:"name"`
	Rows    int      `json:"rows"`
	Items   int      `json:"items"`
	Classes []string `json:"classes"`
}

func (s *Server) listDatasets(w http.ResponseWriter, _ *http.Request) {
	reg := s.mgr.Registry()
	infos := []DatasetInfo{}
	for _, name := range reg.Names() {
		// Info reads registration metadata only: listing never forces a
		// cold store-backed snapshot to decode.
		if info, ok := reg.Info(name); ok {
			infos = append(infos, info)
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) putDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	buckets := 0
	if b := r.URL.Query().Get("buckets"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad buckets %q: %w", b, err))
			return
		}
		buckets = n
	}
	d, err := s.mgr.Registry().Load(name, r.URL.Query().Get("format"), buckets, r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, DatasetInfo{
		Name:    name,
		Rows:    d.NumRows(),
		Items:   d.NumItems,
		Classes: d.ClassNames,
	})
}

// query is the one-round-trip request path tuned for repeat traffic: the
// spec is submitted and its NDJSON results stream back on the same
// response. A request whose canonical hash matches a cached completed run
// replays the pre-encoded body without touching the job manager — one
// header write plus one body write of an immutable shared buffer, with
// Content-Length set (no chunked encoding) and a strong ETag; a matching
// If-None-Match returns 304 without reading the body at all. Cache misses
// fall back to a normal submission (singleflight, queueing, backpressure
// and cancellation all apply) whose results are streamed live.
func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	if res, ok := s.mgr.cachedFor(spec); ok {
		serveReplay(w, r, res.body, res.etag, true)
		return
	}
	job, err := s.mgr.SubmitAs(s.tenantOf(r), spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	// Submit may still have resolved a replay (cache filled between the
	// lookup and the submission, or coalesced onto a finished job).
	if body, etag, ok := job.replay(); ok {
		serveReplay(w, r, body, etag, job.cached)
		return
	}
	w.Header().Set("X-Cache", "MISS")
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	streamFollow(w, r, job)
}

// writeSubmitError maps a Manager submission failure to its HTTP shape:
// status, stable code, and Retry-After where retrying can help.
func writeSubmitError(w http.ResponseWriter, err error) {
	var quota *QuotaError
	var admission *AdmissionError
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err)
	case errors.Is(err, ErrQueueFull):
		writeErrorRetry(w, http.StatusServiceUnavailable, CodeQueueFull, err, time.Second)
	case errors.Is(err, ErrUnknownDataset):
		writeError(w, http.StatusNotFound, CodeDatasetNotFound, err)
	case errors.As(err, &quota):
		writeErrorRetry(w, http.StatusTooManyRequests, CodeQuotaExceeded, err, time.Second)
	case errors.As(err, &admission):
		writeError(w, http.StatusForbidden, CodeAdmissionRejected, err)
	default:
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
	}
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec QuerySpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err)
		return
	}
	job, err := s.mgr.SubmitAs(s.tenantOf(r), spec)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// defaultJobsPageSize bounds GET /v1/jobs when no ?limit= is given: the
// newest jobs are what operators want, and an unbounded dump of a
// long-lived daemon's history is never it.
const defaultJobsPageSize = 100

// listJobs returns job statuses newest-first, filtered by ?state= and
// ?tenant= when given, bounded by ?limit= (default 100; limit=0 is
// rejected rather than meaning unlimited).
func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultJobsPageSize
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad limit %q", l))
			return
		}
		limit = n
	}
	stateFilter := q.Get("state")
	if stateFilter != "" && !validState(stateFilter) {
		writeError(w, http.StatusBadRequest, CodeBadRequest, fmt.Errorf("bad state %q", stateFilter))
		return
	}
	tenantFilter := q.Get("tenant")

	jobs := s.mgr.Jobs()
	// Newest first: job ids are dense sequence numbers, so creation time
	// sorts identically but ties (same-nanosecond submissions) stay
	// deterministic by sequence.
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].seqNum() > jobs[j].seqNum() })
	statuses := []JobStatus{}
	for _, j := range jobs {
		if len(statuses) >= limit {
			break
		}
		st := j.Status()
		if stateFilter != "" && string(st.State) != stateFilter {
			continue
		}
		if tenantFilter != "" && st.Tenant != tenantFilter {
			continue
		}
		statuses = append(statuses, st)
	}
	writeJSON(w, http.StatusOK, statuses)
}

// validState reports whether s names a job lifecycle state.
func validState(s string) bool {
	switch State(s) {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeJobNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, CodeJobNotFound, err)
		return
	}
	job, _ := s.mgr.Get(id)
	writeJSON(w, http.StatusOK, job.Status())
}

// etagMatches reports whether the If-None-Match header value matches the
// given strong ETag. The comparison accepts "*", a single ETag, or a
// comma-separated list, tolerating a W/ weakness prefix (weak comparison
// is permitted for GET/HEAD conditionals) — all without allocating.
func etagMatches(header, etag string) bool {
	if header == "*" {
		return true
	}
	for {
		header = strings.TrimLeft(header, " \t,")
		if header == "" {
			return false
		}
		candidate := header
		if strings.HasPrefix(candidate, "W/") {
			candidate = candidate[2:]
		}
		// The ETag ends with '"', so a prefix match cannot stop short of a
		// token boundary.
		if strings.HasPrefix(candidate, etag) {
			return true
		}
		i := strings.IndexByte(header, ',')
		if i < 0 {
			return false
		}
		header = header[i+1:]
	}
}

// serveReplay writes a fully-known NDJSON body in one shot: strong ETag,
// explicit Content-Length (the stack skips chunked transfer encoding),
// and a single Write of the shared immutable buffer. An If-None-Match hit
// answers 304 before the body is ever touched. cacheHit marks responses
// served from the result cache (X-Cache: HIT) as the cached flag does on
// job statuses.
func serveReplay(w http.ResponseWriter, r *http.Request, body []byte, etag string, cacheHit bool) {
	h := w.Header()
	h.Set("ETag", etag)
	if cacheHit {
		h.Set("X-Cache", "HIT")
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", ndjsonContentType)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// streamFollow replays the records already emitted and follows the live
// job until it finishes or the client goes away, closing the stream with
// the job's end frame — the trailer that tells the client whether the
// answer is complete or partial. Headers must be written before the call.
// The bytes written here for a clean completion are identical to the
// pre-encoded replay body, so warm replays and live streams compare equal.
func streamFollow(w http.ResponseWriter, r *http.Request, job *Job) {
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit headers before the first (possibly slow) record
	}
	from := 0
	for {
		batch, terminal, wake := job.next(from)
		for _, raw := range batch {
			if _, err := w.Write(raw); err != nil {
				return
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return
			}
		}
		from += len(batch)
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if terminal {
			if frame := job.endBytes(); frame != nil {
				if _, err := w.Write(frame); err != nil {
					return
				}
				_, _ = w.Write([]byte{'\n'})
			}
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

// jobResults streams the job's result records as NDJSON. A cleanly
// completed job — cached replay or original run — is served through the
// zero-copy path (one write of the pre-encoded body, Content-Length and
// ETag set, If-None-Match honoured); anything still live or terminated
// early is replayed record by record, following the job until it finishes
// or the client goes away.
func (s *Server) jobResults(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeJobNotFound, ErrNotFound)
		return
	}
	if body, etag, ok := job.replay(); ok {
		serveReplay(w, r, body, etag, job.cached)
		return
	}
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	streamFollow(w, r, job)
}
