package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"time"
)

// errorWriterPool recycles the per-request wrapper jsonErrors installs, so
// the envelope costs steady-state traffic no allocations. Requests are
// served synchronously — no handler retains its ResponseWriter — so a
// wrapper can be reset and reused the moment its request returns.
var errorWriterPool = sync.Pool{New: func() any { return new(jsonErrorWriter) }}

// jsonErrors wraps a handler so that every error response leaving the
// service is structured JSON. The service's own handlers already emit
// {"error": ..., "code": ...} bodies, but http.ServeMux itself answers
// unmatched paths and methods with text/plain ("404 page not found", "405
// method not allowed") — a cluster client, which parses every non-2xx body
// as JSON, must never see those. Any response with status >= 400 whose
// handler did not declare a JSON content type is buffered and re-emitted
// as {"error": <body text>, "code": <mapped code>}.
//
// The wrapper is also where request metrics are observed: it is the one
// place that sees both the final status (even for rewritten errors) and
// the full handler duration. A nil m skips the clock reads entirely.
func jsonErrors(next http.Handler, m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var start time.Time
		if m != nil {
			start = time.Now()
		}
		jw := errorWriterPool.Get().(*jsonErrorWriter)
		jw.reset(w)
		next.ServeHTTP(jw, r)
		jw.finish()
		status := jw.finalStatus
		jw.reset(nil)
		errorWriterPool.Put(jw)
		if m != nil {
			m.ObserveRequest(routeIndex(r.URL.Path), status, time.Since(start))
		}
	})
}

// jsonErrorWriter passes 2xx/3xx and JSON responses straight through and
// buffers non-JSON error responses for rewriting. Flusher is forwarded so
// NDJSON streaming keeps its incremental delivery. finalStatus records the
// status actually sent, for request metrics.
type jsonErrorWriter struct {
	rw          http.ResponseWriter
	status      int
	finalStatus int
	committed   bool // headers sent to the client
	intercept   bool
	buf         bytes.Buffer
}

// reset re-arms the wrapper for a new request (or clears it for pooling).
func (w *jsonErrorWriter) reset(rw http.ResponseWriter) {
	w.rw = rw
	w.status = 0
	w.finalStatus = http.StatusOK
	w.committed = false
	w.intercept = false
	w.buf.Reset()
}

func (w *jsonErrorWriter) Header() http.Header { return w.rw.Header() }

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.committed || w.intercept {
		return
	}
	w.finalStatus = status
	ct := w.rw.Header().Get("Content-Type")
	if status >= 400 && !strings.HasPrefix(ct, "application/json") {
		w.status = status
		w.intercept = true
		return
	}
	w.committed = true
	w.rw.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.intercept {
		return w.buf.Write(b)
	}
	if !w.committed {
		w.WriteHeader(http.StatusOK)
	}
	return w.rw.Write(b)
}

// Flush forwards streaming flushes; intercepted error bodies are tiny and
// flushed once at finish.
func (w *jsonErrorWriter) Flush() {
	if w.committed {
		if f, ok := w.rw.(http.Flusher); ok {
			f.Flush()
		}
	}
}

// codeForStatus maps an intercepted non-JSON error to its stable code.
func codeForStatus(status int) string {
	switch {
	case status == http.StatusNotFound:
		return CodeNotFound
	case status == http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case status >= 500:
		return CodeInternal
	default:
		return CodeBadRequest
	}
}

// finish rewrites an intercepted error as structured JSON.
func (w *jsonErrorWriter) finish() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	body, err := json.Marshal(errorBody{Error: msg, Code: codeForStatus(w.status)})
	if err != nil {
		body = []byte(`{"error":"internal error","code":"internal_error"}`)
	}
	h := w.rw.Header()
	h.Set("Content-Type", "application/json")
	h.Del("Content-Length") // the rewritten body has a different length
	h.Del("X-Content-Type-Options")
	w.rw.WriteHeader(w.status)
	_, _ = w.rw.Write(append(body, '\n'))
}

// tenantCtxKey carries the authenticated *Tenant through the request
// context. Only used when a keys file is configured: the open deployment
// skips the context attachment (and its two allocations) entirely, which
// is what keeps the warm replay path inside its allocation gate.
type tenantCtxKey struct{}

// errMissingKey / errBadKey distinguish the two 401 shapes in audit logs.
var (
	errMissingKey = errors.New("serve: missing API key")
	errBadKey     = errors.New("serve: unrecognized API key")
)

// authExempt reports paths served without authentication: liveness,
// build identity, and the metrics scrape (operators curl these; scrapers
// rarely support per-target secrets).
func authExempt(path string) bool {
	return path == "/healthz" || path == "/version" || path == "/metrics"
}

// withAuth resolves the request's tenant and applies its token-bucket
// rate limit before the mux runs. On an open registry (no keys file) the
// request passes through untouched — no header parsing, no context
// values, no per-request allocations.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tn := s.mgr.Tenants()
		if tn.Open() || authExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		t := tn.Authenticate(r)
		if t == nil {
			s.metrics.AuthFailure()
			err := errBadKey
			if apiKey(r) == "" {
				err = errMissingKey
			}
			s.mgr.auditLog().Log(AuditEvent{Event: "auth_failure", Detail: err.Error() + " " + r.Method + " " + r.URL.Path})
			writeError(w, http.StatusUnauthorized, CodeUnauthorized, err)
			return
		}
		if ok, retry := t.Allow(time.Now()); !ok {
			t.Acct.RateLimited.Add(1)
			s.metrics.RateLimited()
			rlErr := &RateLimitError{Tenant: t.Name(), RetryAfter: retry}
			s.mgr.auditLog().Log(AuditEvent{Event: "rate_limited", Tenant: t.Name(), Detail: r.Method + " " + r.URL.Path})
			writeErrorRetry(w, http.StatusTooManyRequests, CodeRateLimited, rlErr, retry)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	})
}

// tenantOf returns the request's authenticated tenant, falling back to
// the anonymous tenant (open deployments never attach a context value).
func (s *Server) tenantOf(r *http.Request) *Tenant {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*Tenant); ok {
		return t
	}
	return s.mgr.Tenants().Anonymous()
}
