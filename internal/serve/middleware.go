package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
)

// errorWriterPool recycles the per-request wrapper jsonErrors installs, so
// the envelope costs steady-state traffic no allocations. Requests are
// served synchronously — no handler retains its ResponseWriter — so a
// wrapper can be reset and reused the moment its request returns.
var errorWriterPool = sync.Pool{New: func() any { return new(jsonErrorWriter) }}

// jsonErrors wraps a handler so that every error response leaving the
// service is structured JSON. The service's own handlers already emit
// {"error": ...} bodies, but http.ServeMux itself answers unmatched paths
// and methods with text/plain ("404 page not found", "405 method not
// allowed") — a cluster client, which parses every non-2xx body as JSON,
// must never see those. Any response with status >= 400 whose handler did
// not declare a JSON content type is buffered and re-emitted as
// {"error": <body text>}.
func jsonErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		jw := errorWriterPool.Get().(*jsonErrorWriter)
		jw.reset(w)
		next.ServeHTTP(jw, r)
		jw.finish()
		jw.reset(nil)
		errorWriterPool.Put(jw)
	})
}

// jsonErrorWriter passes 2xx/3xx and JSON responses straight through and
// buffers non-JSON error responses for rewriting. Flusher is forwarded so
// NDJSON streaming keeps its incremental delivery.
type jsonErrorWriter struct {
	rw        http.ResponseWriter
	status    int
	committed bool // headers sent to the client
	intercept bool
	buf       bytes.Buffer
}

// reset re-arms the wrapper for a new request (or clears it for pooling).
func (w *jsonErrorWriter) reset(rw http.ResponseWriter) {
	w.rw = rw
	w.status = 0
	w.committed = false
	w.intercept = false
	w.buf.Reset()
}

func (w *jsonErrorWriter) Header() http.Header { return w.rw.Header() }

func (w *jsonErrorWriter) WriteHeader(status int) {
	if w.committed || w.intercept {
		return
	}
	ct := w.rw.Header().Get("Content-Type")
	if status >= 400 && !strings.HasPrefix(ct, "application/json") {
		w.status = status
		w.intercept = true
		return
	}
	w.committed = true
	w.rw.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(b []byte) (int, error) {
	if w.intercept {
		return w.buf.Write(b)
	}
	if !w.committed {
		w.WriteHeader(http.StatusOK)
	}
	return w.rw.Write(b)
}

// Flush forwards streaming flushes; intercepted error bodies are tiny and
// flushed once at finish.
func (w *jsonErrorWriter) Flush() {
	if w.committed {
		if f, ok := w.rw.(http.Flusher); ok {
			f.Flush()
		}
	}
}

// finish rewrites an intercepted error as structured JSON.
func (w *jsonErrorWriter) finish() {
	if !w.intercept {
		return
	}
	msg := strings.TrimSpace(w.buf.String())
	if msg == "" {
		msg = http.StatusText(w.status)
	}
	body, err := json.Marshal(map[string]string{"error": msg})
	if err != nil {
		body = []byte(`{"error":"internal error"}`)
	}
	h := w.rw.Header()
	h.Set("Content-Type", "application/json")
	h.Del("Content-Length") // the rewritten body has a different length
	h.Del("X-Content-Type-Options")
	w.rw.WriteHeader(w.status)
	_, _ = w.rw.Write(append(body, '\n'))
}
