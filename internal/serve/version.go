package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
)

// VersionInfo is the wire form of GET /version: enough for a cluster
// coordinator (or an operator's probe) to identify what build is serving
// and which registry generation its datasets are at.
type VersionInfo struct {
	Service   string `json:"service"`
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from, when the
	// build recorded one; Dirty marks uncommitted local changes.
	Revision string `json:"revision,omitempty"`
	Dirty    bool   `json:"dirty,omitempty"`
	// Generation is the registry-wide dataset generation counter —
	// store-backed daemons persist it across restarts, so two probes
	// returning the same generation saw the same registered datasets.
	Generation uint64 `json:"generation"`
}

// versionInfo gathers the build identity once; the generation is filled
// per request.
func versionInfo() VersionInfo {
	v := VersionInfo{Service: "farmerd", GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.Revision = s.Value
			case "vcs.modified":
				v.Dirty = s.Value == "true"
			}
		}
	}
	return v
}

func (s *Server) version(w http.ResponseWriter, _ *http.Request) {
	v := s.build
	v.Generation = s.mgr.Registry().Generation()
	writeJSON(w, http.StatusOK, v)
}
