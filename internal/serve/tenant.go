package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TenantConfig is one tenant's entry in the keys file: its identity, API
// key, scheduling weight, and limits. Zero-valued limits mean unlimited —
// an open deployment is just an anonymous tenant with everything zero.
type TenantConfig struct {
	// Name identifies the tenant in job statuses, metrics and audit logs.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <key>" (or
	// "X-API-Key: <key>"). Empty only for the anonymous tenant.
	Key string `json:"key,omitempty"`
	// Weight is the tenant's share in the fair scheduler's weighted
	// round-robin (default 1).
	Weight int `json:"weight,omitempty"`
	// RatePerSec and Burst parameterize the request token bucket;
	// RatePerSec 0 disables rate limiting for this tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
	// MaxInflight caps the tenant's queued+running jobs; 0 = unlimited.
	MaxInflight int `json:"max_inflight,omitempty"`
	// MaxCost is the admission-control budget: a job whose predicted
	// enumeration cost (see CostModel) exceeds it is rejected with 403
	// admission_rejected. 0 = unlimited.
	MaxCost float64 `json:"max_cost,omitempty"`
}

// KeysFile is the on-disk tenant configuration (-keys flag), hot-reloaded
// on SIGHUP. When Anonymous is nil, requests without a valid key are
// rejected; when the whole file is absent the service runs open (a single
// unlimited anonymous tenant).
type KeysFile struct {
	Tenants []TenantConfig `json:"tenants"`
	// Anonymous, when present, admits requests carrying no API key under
	// the given limits (its Key field is ignored).
	Anonymous *TenantConfig `json:"anonymous,omitempty"`
}

// TenantAcct is a tenant's rolled-up resource accounting, maintained with
// atomics so the scheduler and the metrics scrape never contend.
type TenantAcct struct {
	// Jobs counts runs finished on this tenant's behalf (any terminal
	// state); RowsExpanded, ArenaBytes, RunNS and QueueNS accumulate the
	// per-job engine.Stats resource figures and wall times.
	Jobs         atomic.Int64
	RowsExpanded atomic.Int64
	ArenaBytes   atomic.Int64
	RunNS        atomic.Int64
	QueueNS      atomic.Int64
	// RateLimited / QuotaRejected / AdmissionRejected count requests
	// refused before reaching the queue.
	RateLimited       atomic.Int64
	QuotaRejected     atomic.Int64
	AdmissionRejected atomic.Int64
}

// Tenant is one authenticated principal: its live config, token bucket,
// accounting, and scheduler state. The struct's identity is stable across
// key rotations — Reload updates cfg in place for tenants whose Name
// persists, so bucket level, accounting and queued jobs survive a SIGHUP.
type Tenant struct {
	// Acct is the tenant's resource roll-up (atomics; read by /metrics).
	Acct TenantAcct

	mu  sync.Mutex
	cfg TenantConfig
	// Token bucket (lazy refill): tokens is the current level, refilled
	// from lastRefill at cfg.RatePerSec up to cfg.Burst.
	tokens     float64
	lastRefill time.Time

	// inflight is the tenant's queued+running job count, guarded by the
	// manager's mutex (not mu): it changes only under scheduler
	// transitions.
	inflight int
}

// Name returns the tenant's identity.
func (t *Tenant) Name() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg.Name
}

// Config returns a snapshot of the tenant's current limits.
func (t *Tenant) Config() TenantConfig {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg
}

// weight returns the WRR share (>= 1).
func (t *Tenant) weight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cfg.Weight < 1 {
		return 1
	}
	return t.cfg.Weight
}

// Allow takes one token from the tenant's bucket. When the bucket is
// empty it reports false and how long until a token accrues. A tenant
// with RatePerSec 0 is never limited.
func (t *Tenant) Allow(now time.Time) (bool, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rate := t.cfg.RatePerSec
	if rate <= 0 {
		return true, 0
	}
	burst := float64(t.cfg.Burst)
	if burst < 1 {
		burst = 1
	}
	if t.lastRefill.IsZero() {
		t.tokens = burst
	} else if dt := now.Sub(t.lastRefill).Seconds(); dt > 0 {
		t.tokens += dt * rate
		if t.tokens > burst {
			t.tokens = burst
		}
	}
	t.lastRefill = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / rate * float64(time.Second))
	return false, wait
}

// setConfig installs a new config without disturbing bucket or accounting
// state (the bucket level is clamped to the new burst on next Allow).
func (t *Tenant) setConfig(cfg TenantConfig) {
	t.mu.Lock()
	t.cfg = cfg
	t.mu.Unlock()
}

// AnonymousTenant is the identity requests resolve to when no keys file is
// configured (open deployment) or when the keys file admits keyless
// requests.
const AnonymousTenant = "anonymous"

// Tenants is the authentication registry: API key -> Tenant, rebuilt by
// Reload on SIGHUP while preserving Tenant identity by name so limiter
// state, accounting, and queued jobs survive a rotation.
type Tenants struct {
	mu     sync.RWMutex
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	anon   *Tenant // nil = keyless requests rejected
	// open marks the no-keys-file deployment: every request is the
	// unlimited anonymous tenant and auth headers are ignored.
	open bool
}

// NewTenants returns an open registry: a single unlimited anonymous
// tenant, no keys required — the zero-configuration deployment every
// existing test and the default farmerd invocation run under.
func NewTenants() *Tenants {
	anon := &Tenant{cfg: TenantConfig{Name: AnonymousTenant}}
	return &Tenants{
		byKey:  map[string]*Tenant{},
		byName: map[string]*Tenant{AnonymousTenant: anon},
		anon:   anon,
		open:   true,
	}
}

// NewTenantsFromConfig returns a registry enforcing the given keys file.
func NewTenantsFromConfig(cfg KeysFile) (*Tenants, error) {
	t := &Tenants{byKey: map[string]*Tenant{}, byName: map[string]*Tenant{}}
	if err := t.apply(cfg); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseKeysFile decodes a keys file, rejecting unknown fields.
func ParseKeysFile(data []byte) (KeysFile, error) {
	var cfg KeysFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return KeysFile{}, fmt.Errorf("keys file: %w", err)
	}
	return cfg, nil
}

// Reload swaps in a new keys file atomically: tenants whose Name persists
// keep their Tenant struct (bucket level, accounting, inflight jobs);
// removed tenants' keys stop resolving immediately. Invalid configs leave
// the registry untouched.
func (t *Tenants) Reload(cfg KeysFile) error {
	return t.apply(cfg)
}

func (t *Tenants) apply(cfg KeysFile) error {
	seenName := map[string]bool{}
	seenKey := map[string]bool{}
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return fmt.Errorf("keys file: tenant with empty name")
		}
		if tc.Key == "" {
			return fmt.Errorf("keys file: tenant %q has no key", tc.Name)
		}
		if seenName[tc.Name] {
			return fmt.Errorf("keys file: duplicate tenant name %q", tc.Name)
		}
		if seenKey[tc.Key] {
			return fmt.Errorf("keys file: duplicate key (tenant %q)", tc.Name)
		}
		seenName[tc.Name] = true
		seenKey[tc.Key] = true
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	newByKey := make(map[string]*Tenant, len(cfg.Tenants))
	newByName := make(map[string]*Tenant, len(cfg.Tenants)+1)
	for _, tc := range cfg.Tenants {
		tn := t.byName[tc.Name]
		if tn == nil {
			tn = &Tenant{}
		}
		tn.setConfig(tc)
		newByKey[tc.Key] = tn
		newByName[tc.Name] = tn
	}
	var anon *Tenant
	if cfg.Anonymous != nil {
		ac := *cfg.Anonymous
		if ac.Name == "" {
			ac.Name = AnonymousTenant
		}
		ac.Key = ""
		anon = t.byName[ac.Name]
		if anon == nil {
			anon = &Tenant{}
		}
		anon.setConfig(ac)
		newByName[ac.Name] = anon
	}
	t.byKey = newByKey
	t.byName = newByName
	t.anon = anon
	t.open = false
	return nil
}

// Open reports whether the registry runs without authentication.
func (t *Tenants) Open() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.open
}

// Anonymous returns the tenant keyless requests resolve to (nil when such
// requests are rejected).
func (t *Tenants) Anonymous() *Tenant {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.anon
}

// Lookup resolves an API key.
func (t *Tenants) Lookup(key string) (*Tenant, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tn, ok := t.byKey[key]
	return tn, ok
}

// ByName resolves a tenant by identity (for metrics and job filters).
func (t *Tenants) ByName(name string) (*Tenant, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tn, ok := t.byName[name]
	return tn, ok
}

// All returns the live tenants sorted order-independently (the metrics
// scrape sorts names itself).
func (t *Tenants) All() []*Tenant {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Tenant, 0, len(t.byName))
	for _, tn := range t.byName {
		out = append(out, tn)
	}
	return out
}

// Authenticate resolves the request's tenant from its Authorization
// bearer token or X-API-Key header. In an open registry every request is
// anonymous and headers are ignored. A missing key resolves to the
// anonymous tenant when one is configured; otherwise, and for
// unrecognized keys, Authenticate returns nil.
func (t *Tenants) Authenticate(r *http.Request) *Tenant {
	t.mu.RLock()
	open, anon := t.open, t.anon
	t.mu.RUnlock()
	if open {
		return anon
	}
	key := apiKey(r)
	if key == "" {
		return anon // nil when anonymous access is not configured
	}
	tn, ok := t.Lookup(key)
	if !ok {
		return nil
	}
	return tn
}

// apiKey extracts the presented API key without allocating.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		const prefix = "Bearer "
		if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
			return strings.TrimSpace(auth[len(prefix):])
		}
		return ""
	}
	return r.Header.Get("X-API-Key")
}
