package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// QuerySpec is the one versioned request body shared by POST /v1/query and
// POST /v1/jobs: which miner to run, on which registered dataset, with
// which parameters. Fields a miner does not use are ignored; unknown
// fields are rejected at decode time so a misspelled option can never be
// silently dropped. The wire format is version 1; a future incompatible
// revision will be mounted under /v2 rather than mutating these fields.
type QuerySpec struct {
	// Miner is one of "farmer", "topk", "charm", "closet", "columne",
	// "carpenter", "cobbler".
	Miner string `json:"miner"`
	// Dataset names a dataset previously registered with the service.
	Dataset string `json:"dataset"`
	// Class is the consequent class name for the class-aware miners
	// (farmer, topk, columne); empty selects class 0.
	Class string `json:"class,omitempty"`

	MinSup  int     `json:"minsup,omitempty"`
	MinConf float64 `json:"minconf,omitempty"`
	MinChi  float64 `json:"minchi,omitempty"`
	// LowerBounds asks the FARMER miner to recover each group's lower
	// bounds.
	LowerBounds bool `json:"lower_bounds,omitempty"`

	// K and Measure configure the "topk" miner.
	K       int    `json:"k,omitempty"`
	Measure string `json:"measure,omitempty"`

	// Workers selects the FARMER parallel scheduler (negative =
	// GOMAXPROCS); 0 runs sequentially with live streaming. For budgeted
	// "topk" jobs it sizes the anytime worker pool the same way.
	Workers int `json:"workers,omitempty"`

	// TimeoutMS bounds the job's run time; 0 means no deadline. Unlike
	// MaxMillis this is a hard abort: the job ends cancelled with
	// stop_reason "deadline" and whatever partial statistics it gathered.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// MaxMillis and MaxNodes are the anytime budgets of the "topk" miner:
	// the search stops within one node expansion of the wall-clock or
	// node budget and returns its best-so-far answer as a successful
	// partial result (NDJSON end frame: partial, gap, nodes_expanded).
	// Budgeted jobs run on the interactive lane and bypass cost
	// admission — the budget itself caps their cost — and their results
	// are never cached. Zero means unlimited.
	MaxMillis int64 `json:"max_millis,omitempty"`
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	// Quality selects the "topk" search strategy: "" or "exact" (default;
	// a budget upgrades it to best-first), "best_first", "leap", or
	// "sample". Delta is the leap relaxation factor (quality "leap"
	// prunes subtrees that cannot improve the k-th score by more than a
	// 1+delta factor, certifying the relaxation in the reported gap).
	Quality string  `json:"quality,omitempty"`
	Delta   float64 `json:"delta,omitempty"`
}

// Budgeted reports whether the spec carries an anytime budget — what
// routes a job to the interactive lane and past cost admission.
func (s *QuerySpec) Budgeted() bool {
	return s.MaxMillis > 0 || s.MaxNodes > 0
}

// JobSpec is the historical name of QuerySpec, kept as an alias so library
// callers (the cluster coordinator's RunnerBuilder, tests) compile
// unchanged.
type JobSpec = QuerySpec

// decodeSpec parses a request body into spec, rejecting unknown fields.
func decodeSpec(r *http.Request, spec *QuerySpec) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("bad job spec: %w", err)
	}
	return nil
}
