package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	farmer "repro"
	"repro/internal/serve"
)

const paperExample = `
C : a b c l o s
C : a d e h p l r
C : a c e h o q t
N : a e f h p r
N : b d f g l q s t
`

// slowExample builds a transactions text whose FARMER minsup=1 run takes
// on the order of a second — long enough to cancel mid-flight. Same
// recipe as internal/core's stress dataset, scaled up.
func slowExample() string {
	const rows, items = 70, 100
	rng := rand.New(rand.NewSource(4041))
	var b strings.Builder
	for i := 0; i < rows; i++ {
		if i%2 == 0 {
			b.WriteString("C :")
		} else {
			b.WriteString("N :")
		}
		for it := 0; it < items; it++ {
			p := 0.35
			if i%2 == 0 && it < 3 {
				p = 0.9
			}
			if rng.Float64() < p {
				fmt.Fprintf(&b, " g%d", it)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// service spins up a full server (registry + manager + HTTP) and tears it
// down at the end of the test, checking that no goroutines leak.
func service(t *testing.T, workers, depth int) (*httptest.Server, *serve.Manager) {
	t.Helper()
	base := runtime.NumGoroutine()
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, workers, depth, serve.DefaultCacheBytes)
	ts := httptest.NewServer(serve.NewServer(mgr))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
		ts.Close()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after shutdown", base, runtime.NumGoroutine())
	})
	return ts, mgr
}

func put(t *testing.T, url, body string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT %s: status %d", url, resp.StatusCode)
	}
}

func submit(t *testing.T, baseURL string, spec serve.JobSpec) serve.JobStatus {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d", resp.StatusCode)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func status(t *testing.T, baseURL, id string) serve.JobStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls the status endpoint until pred accepts it.
func waitState(t *testing.T, baseURL, id string, pred func(serve.JobStatus) bool) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := status(t, baseURL, id)
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s: timed out waiting for state, last %+v", id, status(t, baseURL, id))
	return serve.JobStatus{}
}

// streamLines reads the full NDJSON result stream (following the job
// until it terminates).
func streamLines(t *testing.T, baseURL, id string) []string {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET results: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("GET results: content-type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Every finished stream closes with the end-frame trailer; validate and
	// strip it so callers compare result records only.
	if len(lines) == 0 || !strings.HasPrefix(lines[len(lines)-1], `{"end":true`) {
		t.Fatalf("stream missing end frame, got %d lines", len(lines))
	}
	return lines[:len(lines)-1]
}

// endFrameLine renders the end frame a cleanly completed, non-partial run
// closes its stream with — what the cached replay body embeds verbatim.
func endFrameLine(emitted int) string {
	return fmt.Sprintf(`{"end":true,"state":"done","emitted":%d}`, emitted)
}

func loadExample(t *testing.T) *farmer.Dataset {
	t.Helper()
	d, err := farmer.ReadTransactions(strings.NewReader(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// expectedFarmerLines runs the library streaming call and renders each
// group the way the service does, so the comparison is byte-exact.
func expectedFarmerLines(t *testing.T, d *farmer.Dataset, consequent int, opt farmer.MineOptions) []string {
	t.Helper()
	var lines []string
	opt.OnGroup = func(g farmer.RuleGroup) error {
		rec := serve.GroupRecord{
			Antecedent: names(d, g.Antecedent),
			SupPos:     g.SupPos,
			SupNeg:     g.SupNeg,
			Confidence: g.Confidence,
			Chi:        g.Chi,
		}
		for _, lb := range g.LowerBounds {
			rec.LowerBounds = append(rec.LowerBounds, names(d, lb))
		}
		buf, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		lines = append(lines, string(buf))
		return nil
	}
	if _, err := farmer.RunFARMER(context.Background(), d, consequent, opt); err != nil {
		t.Fatal(err)
	}
	return lines
}

func names(d *farmer.Dataset, items []farmer.Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = d.ItemName(it)
	}
	return out
}

func equalLines(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lines, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: line %d\n got %s\nwant %s", what, i, got[i], want[i])
		}
	}
}

func TestSubmitStatusAndStreamMatchesLibrary(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper?format=transactions", paperExample)

	// FARMER, sequential + streaming, with lower bounds.
	st := submit(t, ts.URL, serve.JobSpec{
		Miner: "farmer", Dataset: "paper", Class: "C",
		MinSup: 2, MinConf: 0.7, LowerBounds: true,
	})
	if st.State != serve.StateQueued && st.State != serve.StateRunning {
		t.Fatalf("fresh job state %q", st.State)
	}
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	if final.Stats == nil || final.Stats.NodesVisited == 0 {
		t.Fatalf("done job must carry stats, got %+v", final.Stats)
	}

	d := loadExample(t)
	want := expectedFarmerLines(t, d, d.ClassIndex("C"),
		farmer.MineOptions{MinSup: 2, MinConf: 0.7, ComputeLowerBounds: true})
	got := streamLines(t, ts.URL, st.ID)
	equalLines(t, "farmer stream", got, want)
	if final.Emitted != len(want) {
		t.Fatalf("status reports %d emitted, stream has %d", final.Emitted, len(want))
	}

	// CHARM on the same dataset.
	ch := submit(t, ts.URL, serve.JobSpec{Miner: "charm", Dataset: "paper", MinSup: 2})
	waitState(t, ts.URL, ch.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	var wantCh []string
	opt := farmer.CharmOptions{MinSup: 2}
	opt.OnClosed = func(c farmer.ClosedSet) error {
		buf, err := json.Marshal(serve.ClosedRecord{Items: names(d, c.Items), Support: c.Support})
		wantCh = append(wantCh, string(buf))
		return err
	}
	if _, err := farmer.RunCHARM(context.Background(), d, opt); err != nil {
		t.Fatal(err)
	}
	equalLines(t, "charm stream", streamLines(t, ts.URL, ch.ID), wantCh)
}

func TestParallelAndTopKJobs(t *testing.T) {
	ts, _ := service(t, 2, 8)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	d := loadExample(t)

	// Parallel FARMER emits the same groups as the sequential run, in the
	// scheduler's sorted order; compare as sets of lines.
	par := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2, Workers: -1})
	waitState(t, ts.URL, par.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	want := expectedFarmerLines(t, d, 0, farmer.MineOptions{MinSup: 2})
	got := streamLines(t, ts.URL, par.ID)
	seen := make(map[string]int)
	for _, l := range want {
		seen[l]++
	}
	for _, l := range got {
		seen[l]--
	}
	for l, n := range seen {
		if n != 0 {
			t.Fatalf("parallel stream differs from library on %s (count %+d)", l, n)
		}
	}

	// TopK carries scores.
	tk := submit(t, ts.URL, serve.JobSpec{Miner: "topk", Dataset: "paper", K: 3, Measure: "chi2", MinSup: 1})
	waitState(t, ts.URL, tk.ID, func(s serve.JobStatus) bool { return s.State == serve.StateDone })
	lines := streamLines(t, ts.URL, tk.ID)
	res, err := farmer.RunTopK(context.Background(), d, 0, farmer.TopKOptions{K: 3, Measure: farmer.MeasureChi2, MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(res.Groups) {
		t.Fatalf("topk stream has %d lines, library returned %d groups", len(lines), len(res.Groups))
	}
	var first serve.GroupRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Score == nil || *first.Score != res.Groups[0].Score {
		t.Fatalf("topk first score = %v, want %v", first.Score, res.Groups[0].Score)
	}
}

func TestAllMinersRunToCompletion(t *testing.T) {
	ts, _ := service(t, 2, 16)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)
	for _, miner := range []string{"farmer", "topk", "charm", "closet", "columne", "carpenter", "cobbler"} {
		st := submit(t, ts.URL, serve.JobSpec{Miner: miner, Dataset: "paper", MinSup: 2, K: 2})
		final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
		if final.State != serve.StateDone {
			t.Errorf("%s: state %q (error %q)", miner, final.State, final.Error)
		}
		if final.Emitted == 0 {
			t.Errorf("%s: no results emitted", miner)
		}
	}
}

func TestMatrixUploadAndMine(t *testing.T) {
	ts, _ := service(t, 1, 4)
	matrix := "label,g1,g2,g3\nA,0.1,5.0,2.2\nA,0.2,4.8,2.4\nB,0.9,1.0,0.3\nB,0.8,1.2,0.2\n"
	put(t, ts.URL+"/v1/datasets/expr?format=matrix&buckets=2", matrix)
	st := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "expr", Class: "A", MinSup: 1})
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateDone || final.Emitted == 0 {
		t.Fatalf("matrix mine: state %q, emitted %d, error %q", final.State, final.Emitted, final.Error)
	}
}

func TestCancelMidJobKeepsPartialStats(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())

	st := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1})
	// Wait until the job is demonstrably mid-run: running and streaming.
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool {
		return s.State == serve.StateRunning && s.Emitted > 0
	})

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	cancelledAt := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}

	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if wait := time.Since(cancelledAt); wait > 5*time.Second {
		t.Fatalf("job took %v to stop after cancellation", wait)
	}
	if final.State != serve.StateCancelled {
		t.Fatalf("state %q after DELETE, want cancelled", final.State)
	}
	if final.Stats == nil || final.Stats.NodesVisited == 0 {
		t.Fatalf("cancelled job must keep partial stats, got %+v", final.Stats)
	}
	if final.Emitted == 0 {
		t.Fatal("cancelled job lost its partial results")
	}
	// The stream of a cancelled job terminates with the partial results.
	if lines := streamLines(t, ts.URL, st.ID); len(lines) != final.Emitted {
		t.Fatalf("stream has %d lines, status says %d", len(lines), final.Emitted)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	// Occupy the single worker, then queue a second job and cancel it
	// before it ever runs.
	running := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1})
	waitState(t, ts.URL, running.ID, func(s serve.JobStatus) bool { return s.State == serve.StateRunning })
	queued := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := status(t, ts.URL, queued.ID)
	if st.State != serve.StateCancelled {
		t.Fatalf("queued job state %q after DELETE, want cancelled immediately", st.State)
	}
	if st.Emitted != 0 {
		t.Fatalf("never-run job has %d results", st.Emitted)
	}
	// Unblock the worker.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, running.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
}

func TestGracefulShutdownDrainsInFlightJobs(t *testing.T) {
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, 1, 4, serve.DefaultCacheBytes)
	ts := httptest.NewServer(serve.NewServer(mgr))
	defer ts.Close()
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	// A healthy job is in flight when the drain starts: it must complete,
	// not be cancelled.
	st := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	final := status(t, ts.URL, st.ID)
	if final.State != serve.StateDone {
		t.Fatalf("in-flight job state %q after graceful drain, want done", final.State)
	}

	// New submissions are refused while/after draining.
	if _, err := mgr.Submit(serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}); err != serve.ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

func TestShutdownDeadlineCancelsStragglers(t *testing.T) {
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, 1, 4, serve.DefaultCacheBytes)
	ts := httptest.NewServer(serve.NewServer(mgr))
	defer ts.Close()
	put(t, ts.URL+"/v1/datasets/slow", slowExample())

	st := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1})
	waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State == serve.StateRunning })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown: %v, want DeadlineExceeded", err)
	}
	final := status(t, ts.URL, st.ID)
	if final.State != serve.StateCancelled {
		t.Fatalf("straggler state %q, want cancelled", final.State)
	}
}

func TestQueueBackpressure(t *testing.T) {
	ts, _ := service(t, 1, 1)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	running := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1})
	waitState(t, ts.URL, running.ID, func(s serve.JobStatus) bool { return s.State == serve.StateRunning })
	submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 2}) // fills the queue

	// A different minsup so the probe cannot coalesce with the queued job.
	buf, _ := json.Marshal(serve.JobSpec{Miner: "farmer", Dataset: "paper", MinSup: 3})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to full queue: status %d, want 503", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestRequestValidation(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/paper", paperExample)

	post := func(spec serve.JobSpec) int {
		buf, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(buf)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(serve.JobSpec{Miner: "nope", Dataset: "paper"}); code != http.StatusBadRequest {
		t.Errorf("unknown miner: status %d", code)
	}
	if code := post(serve.JobSpec{Miner: "farmer", Dataset: "nope"}); code != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d", code)
	}
	if code := post(serve.JobSpec{Miner: "farmer", Dataset: "paper", Class: "nope"}); code != http.StatusBadRequest {
		t.Errorf("unknown class: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/datasets/bad?format=nope", strings.NewReader("x"))
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

func TestJobTimeoutDeadline(t *testing.T) {
	ts, _ := service(t, 1, 4)
	put(t, ts.URL+"/v1/datasets/slow", slowExample())
	st := submit(t, ts.URL, serve.JobSpec{Miner: "farmer", Dataset: "slow", MinSup: 1, TimeoutMS: 50})
	final := waitState(t, ts.URL, st.ID, func(s serve.JobStatus) bool { return s.State.Terminal() })
	if final.State != serve.StateCancelled {
		t.Fatalf("timed-out job state %q, want cancelled", final.State)
	}
	if final.Error == "" {
		t.Fatal("timed-out job should carry the deadline error")
	}
}
