package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
)

// Sentinel errors mapped to HTTP statuses by the server.
var (
	// ErrDraining rejects submissions while the manager shuts down (503).
	ErrDraining = errors.New("serve: manager is draining")
	// ErrQueueFull rejects submissions when the job queue is at capacity
	// (503): backpressure instead of unbounded memory growth.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
)

// Manager owns the job queue and the bounded worker pool that drains it.
// Jobs pass through queued -> running -> done/failed/cancelled; a DELETE
// cancels a queued job immediately and interrupts a running one through
// its context (the engine stops within one node expansion).
type Manager struct {
	reg *Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	seq      int
	queue    chan *Job
	draining bool

	wg sync.WaitGroup // live workers
}

// NewManager starts workers goroutines (<= 0 selects GOMAXPROCS) serving
// a queue of the given depth (<= 0 selects 64).
func NewManager(reg *Registry, workers, depth int) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 64
	}
	m := &Manager{
		reg:   reg,
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, depth),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the dataset registry jobs resolve their input from.
func (m *Manager) Registry() *Registry { return m.reg }

// Submit validates spec, compiles it into a runner and enqueues the job.
// Validation failures (unknown miner, dataset or class) are returned
// immediately; ErrDraining and ErrQueueFull signal admission refusal.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	run, err := buildRunner(m.reg, spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.seq++
	job := newJob(fmt.Sprintf("job-%d", m.seq), spec, run)
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
		return job, nil
	default:
		return nil, ErrQueueFull
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns a snapshot of all jobs, newest first not guaranteed.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

// Cancel stops the job with the given id: a queued job turns cancelled
// immediately (the worker skips it when it is popped), a running job has
// its context cancelled and finishes with partial statistics. Cancelling
// a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	job.mu.Lock()
	switch {
	case job.state == StateQueued:
		job.state = StateCancelled
		job.errMsg = context.Canceled.Error()
		job.endedAt = time.Now()
		close(job.done)
		job.wakeLocked()
		job.mu.Unlock()
	case job.state == StateRunning:
		cancel := job.cancel
		job.mu.Unlock()
		cancel()
	default:
		job.mu.Unlock()
	}
	return nil
}

// Shutdown drains the service: no new submissions are admitted, workers
// finish the jobs already queued or running, and once ctx expires every
// remaining job is cancelled (each stops within one node expansion).
// Shutdown returns when all workers have exited; the error is ctx.Err()
// when the drain deadline forced cancellation, nil otherwise.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline hit: cancel everything still live and wait for the
	// workers — cancellation is honoured within one node expansion, so
	// this wait is short and bounded by the slowest expansion.
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCancelled
			j.errMsg = context.Canceled.Error()
			j.endedAt = time.Now()
			close(j.done)
			j.wakeLocked()
		case StateRunning:
			j.cancel()
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.run(job)
	}
}

// run executes one job on the calling worker goroutine.
func (m *Manager) run(job *Job) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if job.Spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.Spec.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the queue
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.startedAt = time.Now()
	job.cancel = cancel
	job.wakeLocked()
	job.mu.Unlock()

	res, err := job.runner(ctx, job.emit)
	var stats engine.Stats
	hasStats := res != nil
	if hasStats {
		stats = res.Stats()
	}
	switch {
	case err == nil:
		job.finish(StateDone, stats, hasStats, "")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		job.finish(StateCancelled, stats, hasStats, err.Error())
	default:
		job.finish(StateFailed, stats, hasStats, err.Error())
	}
}
