package serve

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"time"

	farmer "repro"
	"repro/internal/engine"
)

// Sentinel errors mapped to HTTP statuses by the server.
var (
	// ErrDraining rejects submissions while the manager shuts down (503).
	ErrDraining = errors.New("serve: manager is draining")
	// ErrQueueFull rejects submissions when the job queue is at capacity
	// (503): backpressure instead of unbounded memory growth.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
)

// DefaultCacheBytes is the result-cache bound selected by a negative
// cacheBytes argument to NewManager (and by farmerd's flag default).
const DefaultCacheBytes int64 = 64 << 20

// Manager owns the job queue and the bounded worker pool that drains it.
// Jobs pass through queued -> running -> done/failed/cancelled; a DELETE
// cancels a queued job immediately and interrupts a running one through
// its context (the engine stops within one node expansion).
//
// Two layers sit in front of the queue, both keyed by the canonical
// request hash (miner + dataset generation + options — see requestKey):
// inflight coalesces identical concurrent submissions onto one live job
// (singleflight), and cache replays the NDJSON records of identical
// completed jobs without re-mining.
type Manager struct {
	reg   *Registry
	cache *resultCache

	// builder compiles validated specs into runners; nil selects the
	// in-process buildRunner. A cluster coordinator installs its
	// distributed builder here via SetRunnerBuilder.
	builder RunnerBuilder

	mu       sync.Mutex
	jobs     map[string]*Job
	inflight map[reqKey]*Job // request key -> queued/running job
	seq      int
	queue    chan *Job
	draining bool

	wg sync.WaitGroup // live workers
}

// NewManager starts workers goroutines (<= 0 selects GOMAXPROCS) serving
// a queue of the given depth (<= 0 selects 64). cacheBytes bounds the
// result cache: negative selects DefaultCacheBytes, zero disables caching
// (singleflight coalescing stays on — it holds no extra memory).
func NewManager(reg *Registry, workers, depth int, cacheBytes int64) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 64
	}
	if cacheBytes < 0 {
		cacheBytes = DefaultCacheBytes
	}
	m := &Manager{
		reg:      reg,
		cache:    newResultCache(cacheBytes),
		jobs:     make(map[string]*Job),
		inflight: make(map[reqKey]*Job),
		queue:    make(chan *Job, depth),
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the dataset registry jobs resolve their input from.
func (m *Manager) Registry() *Registry { return m.reg }

// RunnerBuilder compiles a validated (dataset, snapshot, spec) triple into
// the RunnerFunc that will execute the job. The default is the in-process
// BuildRunner; a cluster coordinator substitutes one that leases
// partitions to remote workers and merges their partials, leaving every
// other manager behavior — queueing, singleflight, result cache, NDJSON
// streaming, cancellation — untouched.
type RunnerBuilder func(d *farmer.Dataset, snap *farmer.Snapshot, spec JobSpec) (RunnerFunc, error)

// SetRunnerBuilder installs b as the manager's runner builder (nil
// restores the in-process default). Call before serving traffic: jobs
// already queued keep the runner they were compiled with.
func (m *Manager) SetRunnerBuilder(b RunnerBuilder) {
	m.mu.Lock()
	m.builder = b
	m.mu.Unlock()
}

// Submit validates spec, compiles it into a runner and enqueues the job.
// Validation failures (unknown miner, dataset or class) are returned
// immediately; ErrDraining and ErrQueueFull signal admission refusal.
//
// Identical requests are served without re-mining: a submission whose
// canonical request key matches a live (queued or running) job returns
// that job — both callers stream the same run — and one matching a cached
// completed result returns a fresh job that is already done, flagged
// Cached in its status, replaying the stored records byte for byte.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	spec = canonicalSpec(spec)
	d, snap, gen, err := m.reg.Entry(spec.Dataset)
	if err != nil {
		return nil, err
	}
	key := requestKey(spec, gen)
	// Fast path: an identical live job or a cached result serves the
	// submission without compiling a runner. An invalid spec can never be
	// inflight or cached (it could not have been enqueued), so skipping
	// compilation here skips no validation.
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if live, ok := m.inflight[key]; ok {
		m.mu.Unlock()
		return live, nil
	}
	if res, ok := m.cache.get(key); ok {
		job := m.addCachedJobLocked(spec, res)
		m.mu.Unlock()
		return job, nil
	}
	build := m.builder
	m.mu.Unlock()

	if build == nil {
		build = buildRunner
	}
	run, err := build(d, snap, spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if live, ok := m.inflight[key]; ok {
		return live, nil
	}
	if res, ok := m.cache.get(key); ok {
		return m.addCachedJobLocked(spec, res), nil
	}
	m.seq++
	job := newJob(jobID(m.seq), spec, run)
	job.key, job.hasKey = key, true
	select {
	case m.queue <- job:
		m.jobs[job.ID] = job
		m.inflight[key] = job
		return job, nil
	default:
		return nil, ErrQueueFull
	}
}

// addCachedJobLocked registers a born-terminal replay job for res. Callers
// hold m.mu.
func (m *Manager) addCachedJobLocked(spec JobSpec, res cachedResult) *Job {
	m.seq++
	job := newCachedJob(jobID(m.seq), spec, res)
	m.jobs[job.ID] = job
	return job
}

// jobID renders the job identifier without fmt's reflection overhead.
func jobID(seq int) string {
	return "job-" + strconv.Itoa(seq)
}

// cachedFor resolves spec straight to its cached pre-encoded result, the
// zero-copy warm path behind POST /v1/query: only the registration
// generation is consulted (never the snapshot store, never the job
// machinery), so a warm hit costs one hash and two map lookups and
// creates nothing that must be tracked or reclaimed.
func (m *Manager) cachedFor(spec JobSpec) (cachedResult, bool) {
	if m.cache == nil {
		return cachedResult{}, false
	}
	spec = canonicalSpec(spec)
	gen, ok := m.reg.GenerationOf(spec.Dataset)
	if !ok {
		return cachedResult{}, false
	}
	return m.cache.get(requestKey(spec, gen))
}

// CacheStats reports the result cache's current entry count and byte size
// (zeros when caching is disabled).
func (m *Manager) CacheStats() (entries int, bytes int64) {
	return m.cache.len(), m.cache.bytes()
}

// detachLocked removes job from the singleflight table. Callers hold m.mu.
func (m *Manager) detachLocked(job *Job) {
	if job.hasKey && m.inflight[job.key] == job {
		delete(m.inflight, job.key)
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns a snapshot of all jobs, newest first not guaranteed.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

// Cancel stops the job with the given id: a queued job turns cancelled
// immediately (the worker skips it when it is popped), a running job has
// its context cancelled and finishes with partial statistics. Cancelling
// a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	job.mu.Lock()
	switch {
	case job.state == StateQueued:
		job.state = StateCancelled
		job.errMsg = context.Canceled.Error()
		job.endedAt = time.Now()
		close(job.done)
		job.wakeLocked()
		job.mu.Unlock()
		m.mu.Lock()
		m.detachLocked(job)
		m.mu.Unlock()
	case job.state == StateRunning:
		cancel := job.cancel
		job.mu.Unlock()
		cancel()
	default:
		job.mu.Unlock()
	}
	return nil
}

// Shutdown drains the service: no new submissions are admitted, workers
// finish the jobs already queued or running, and once ctx expires every
// remaining job is cancelled (each stops within one node expansion).
// Shutdown returns when all workers have exited; the error is ctx.Err()
// when the drain deadline forced cancellation, nil otherwise.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline hit: cancel everything still live and wait for the
	// workers — cancellation is honoured within one node expansion, so
	// this wait is short and bounded by the slowest expansion.
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCancelled
			j.errMsg = context.Canceled.Error()
			j.endedAt = time.Now()
			close(j.done)
			j.wakeLocked()
			m.detachLocked(j)
		case StateRunning:
			j.cancel()
		}
		j.mu.Unlock()
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		m.run(job)
	}
}

// run executes one job on the calling worker goroutine.
func (m *Manager) run(job *Job) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if job.Spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.Spec.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the queue
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.startedAt = time.Now()
	job.cancel = cancel
	job.wakeLocked()
	job.mu.Unlock()

	res, err := job.runner(ctx, job.emit)
	var stats engine.Stats
	hasStats := res != nil
	if hasStats {
		stats = res.Stats()
	}
	switch {
	case err == nil:
		job.finish(StateDone, stats, hasStats, "")
		// Only complete, successful runs are replayable: the records are
		// final, so they are flattened once into the contiguous NDJSON
		// body that the cache stores and the job itself serves through the
		// zero-copy path — every later replay shares this one buffer.
		job.mu.Lock()
		records := job.results
		job.mu.Unlock()
		body := encodeBody(records)
		etag := etagFor(job.key)
		job.setReplay(body, etag)
		m.cache.put(job.key, cachedResult{body: body, count: len(records), stats: stats, hasStats: hasStats, etag: etag})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		job.finish(StateCancelled, stats, hasStats, err.Error())
	default:
		job.finish(StateFailed, stats, hasStats, err.Error())
	}
	m.mu.Lock()
	m.detachLocked(job)
	m.mu.Unlock()
}
