package serve

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	farmer "repro"
	"repro/internal/engine"
)

// Sentinel errors mapped to HTTP statuses by the server.
var (
	// ErrDraining rejects submissions while the manager shuts down (503).
	ErrDraining = errors.New("serve: manager is draining")
	// ErrQueueFull rejects submissions when the job queue is at capacity
	// (503): backpressure instead of unbounded memory growth.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrNotFound reports an unknown job id (404).
	ErrNotFound = errors.New("serve: no such job")
)

// DefaultCacheBytes is the result-cache bound selected by a negative
// cacheBytes argument to NewManager (and by farmerd's flag default).
const DefaultCacheBytes int64 = 64 << 20

// tenantQueue is one tenant's FIFO of queued jobs plus its smooth
// weighted-round-robin state. Queues are created on a tenant's first
// submission and kept for the manager's lifetime (tenant counts are
// small); emptiness, not existence, is what the scheduler tests.
type tenantQueue struct {
	t    *Tenant
	jobs []*Job
	// fast is the tenant's interactive lane: budgeted anytime jobs, whose
	// cost is capped by their own budget. The scheduler drains fast lanes
	// with strict priority over the batch lanes — a bounded interactive
	// query never waits behind an unbounded batch mine — still WRR-fair
	// between tenants within the lane.
	fast []*Job
	// current is the smooth-WRR credit: every scheduling round adds the
	// tenant's weight to each non-empty queue, picks the largest, and
	// subtracts the round's total weight from the winner — interleaving
	// proportionally instead of bursting. currentFast is the same credit
	// for the interactive lane (the lanes run separate WRR rounds).
	current     int
	currentFast int
}

// Manager owns the per-tenant job queues and the bounded worker pool that
// drains them. Jobs pass through queued -> running -> done/failed/
// cancelled; a DELETE cancels a queued job immediately and interrupts a
// running one through its context (the engine stops within one node
// expansion).
//
// Scheduling is weighted round-robin across tenants with queued work
// (nginx's smooth WRR), so a tenant flooding its queue delays only its own
// jobs: another tenant's next job is picked within one round regardless of
// backlog depth. The global queue depth still bounds total memory
// (ErrQueueFull), and per-tenant quotas bound any one tenant's share of
// it.
//
// Two layers sit in front of the queues, both keyed by the canonical
// request hash (miner + dataset generation + options — see requestKey):
// inflight coalesces identical concurrent submissions onto one live job
// (singleflight), and cache replays the NDJSON records of identical
// completed jobs without re-mining.
type Manager struct {
	reg     *Registry
	cache   *resultCache
	tenants atomic.Pointer[Tenants]
	metrics atomic.Pointer[Metrics]     // nil-safe: no-op until SetMetrics
	audit   atomic.Pointer[AuditLogger] // nil-safe: no-op until SetAudit

	// builder compiles validated specs into runners; nil selects the
	// in-process buildRunner. A cluster coordinator installs its
	// distributed builder here via SetRunnerBuilder.
	builder RunnerBuilder

	mu       sync.Mutex
	cond     *sync.Cond // signalled when work is queued or draining starts
	jobs     map[string]*Job
	inflight map[reqKey]*Job // request key -> queued/running job
	seq      int
	queues   []*tenantQueue // WRR order: first-submission order, stable
	queueOf  map[*Tenant]*tenantQueue
	queued   int // jobs across all queues (bounded by depth)
	running  int
	depth    int
	draining bool

	wg sync.WaitGroup // live workers
}

// NewManager starts workers goroutines (<= 0 selects GOMAXPROCS) serving
// queues with a total depth bound (<= 0 selects 64). cacheBytes bounds the
// result cache: negative selects DefaultCacheBytes, zero disables caching
// (singleflight coalescing stays on — it holds no extra memory). The
// manager starts with an open tenant registry (one unlimited anonymous
// tenant); install a keyed one with SetTenants before serving traffic.
func NewManager(reg *Registry, workers, depth int, cacheBytes int64) *Manager {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 64
	}
	if cacheBytes < 0 {
		cacheBytes = DefaultCacheBytes
	}
	m := &Manager{
		reg:      reg,
		cache:    newResultCache(cacheBytes),
		jobs:     make(map[string]*Job),
		inflight: make(map[reqKey]*Job),
		queueOf:  make(map[*Tenant]*tenantQueue),
		depth:    depth,
	}
	m.tenants.Store(NewTenants())
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry returns the dataset registry jobs resolve their input from.
func (m *Manager) Registry() *Registry { return m.reg }

// Tenants returns the manager's tenant registry.
func (m *Manager) Tenants() *Tenants { return m.tenants.Load() }

// SetTenants installs a tenant registry (from a keys file). Call before
// serving traffic: jobs already queued keep the tenant they resolved.
func (m *Manager) SetTenants(t *Tenants) { m.tenants.Store(t) }

// SetMetrics installs the metrics sink the manager reports job lifecycle
// events into (nil disables).
func (m *Manager) SetMetrics(mx *Metrics) { m.metrics.Store(mx) }

// SetAudit installs the audit logger (nil disables).
func (m *Manager) SetAudit(a *AuditLogger) { m.audit.Store(a) }

// auditLog returns the current audit logger (nil-safe to call Log on).
func (m *Manager) auditLog() *AuditLogger { return m.audit.Load() }

// RunnerBuilder compiles a validated (dataset, snapshot, spec) triple into
// the RunnerFunc that will execute the job. The default is the in-process
// BuildRunner; a cluster coordinator substitutes one that leases
// partitions to remote workers and merges their partials, leaving every
// other manager behavior — queueing, singleflight, result cache, NDJSON
// streaming, cancellation — untouched.
type RunnerBuilder func(d *farmer.Dataset, snap *farmer.Snapshot, spec JobSpec) (RunnerFunc, error)

// SetRunnerBuilder installs b as the manager's runner builder (nil
// restores the in-process default). Call before serving traffic: jobs
// already queued keep the runner they were compiled with.
func (m *Manager) SetRunnerBuilder(b RunnerBuilder) {
	m.mu.Lock()
	m.builder = b
	m.mu.Unlock()
}

// Submit is SubmitAs for the anonymous tenant — the library entry point
// open deployments and tests use.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	return m.SubmitAs(m.Tenants().Anonymous(), spec)
}

// SubmitAs validates spec, applies the tenant's admission checks, compiles
// the spec into a runner and enqueues the job on the tenant's queue.
// Validation failures (unknown miner, dataset or class) are returned
// immediately; ErrDraining, ErrQueueFull, *QuotaError and *AdmissionError
// signal admission refusal.
//
// Identical requests are served without re-mining: a submission whose
// canonical request key matches a live (queued or running) job returns
// that job — both callers stream the same run — and one matching a cached
// completed result returns a fresh job that is already done, flagged
// Cached in its status, replaying the stored records byte for byte.
// Replays and coalesced joins bypass cost admission: they do no new work.
func (m *Manager) SubmitAs(t *Tenant, spec JobSpec) (*Job, error) {
	if t == nil {
		t = m.Tenants().Anonymous()
	}
	spec = canonicalSpec(spec)
	d, snap, gen, err := m.reg.Entry(spec.Dataset)
	if err != nil {
		return nil, err
	}
	key := requestKey(spec, gen)
	// Fast path: an identical live job or a cached result serves the
	// submission without compiling a runner. An invalid spec can never be
	// inflight or cached (it could not have been enqueued), so skipping
	// compilation here skips no validation.
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if live, ok := m.inflight[key]; ok {
		m.mu.Unlock()
		return live, nil
	}
	if res, ok := m.cache.get(key); ok {
		job := m.addCachedJobLocked(spec, res)
		m.mu.Unlock()
		return job, nil
	}
	build := m.builder
	m.mu.Unlock()

	// Cost admission: predicted enumeration cost against the tenant
	// budget, before compiling a runner or touching the queue. Only
	// genuinely new work reaches this point. Budgeted anytime jobs skip
	// the check: their max_millis/max_nodes budget caps their cost more
	// tightly than any prediction, so the interactive lane stays open
	// even to tenants whose batch budget is exhausted.
	if t != nil && !spec.Budgeted() {
		if budget := t.Config().MaxCost; budget > 0 {
			if cost := m.reg.CostModelFor(spec.Dataset, d); cost != nil {
				if est := cost.Estimate(spec); est > budget {
					t.Acct.AdmissionRejected.Add(1)
					m.metricsRef().AdmissionRejected()
					err := &AdmissionError{Tenant: t.Name(), Predicted: est, Budget: budget}
					m.auditLog().Log(AuditEvent{Event: "admission_rejected", Tenant: t.Name(), Detail: err.Error()})
					return nil, err
				}
			}
		}
	}

	if build == nil {
		build = buildRunner
	}
	run, err := build(d, snap, spec)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if live, ok := m.inflight[key]; ok {
		return live, nil
	}
	if res, ok := m.cache.get(key); ok {
		return m.addCachedJobLocked(spec, res), nil
	}
	if m.queued >= m.depth {
		m.metricsRef().QueueRejected()
		return nil, ErrQueueFull
	}
	if t != nil {
		if limit := t.Config().MaxInflight; limit > 0 && t.inflight >= limit {
			t.Acct.QuotaRejected.Add(1)
			m.metricsRef().QuotaRejected()
			err := &QuotaError{Tenant: t.Name(), Inflight: t.inflight, Limit: limit}
			m.auditLog().Log(AuditEvent{Event: "quota_exceeded", Tenant: t.Name(), Detail: err.Error()})
			return nil, err
		}
	}
	m.seq++
	job := newJob(jobID(m.seq), spec, run)
	job.key, job.hasKey = key, true
	job.tenant = t
	m.jobs[job.ID] = job
	m.inflight[key] = job
	q := m.queueForLocked(t)
	if spec.Budgeted() {
		q.fast = append(q.fast, job)
	} else {
		q.jobs = append(q.jobs, job)
	}
	m.queued++
	if t != nil {
		t.inflight++
	}
	m.metricsRef().JobSubmitted()
	m.auditLog().Log(AuditEvent{Event: "job_submitted", Tenant: tenantName(t), Job: job.ID, Detail: spec.Miner + "/" + spec.Dataset})
	m.cond.Signal()
	return job, nil
}

// queueForLocked returns (creating if needed) the tenant's queue. Callers
// hold m.mu. A nil tenant shares one queue.
func (m *Manager) queueForLocked(t *Tenant) *tenantQueue {
	if q, ok := m.queueOf[t]; ok {
		return q
	}
	q := &tenantQueue{t: t}
	m.queueOf[t] = q
	m.queues = append(m.queues, q)
	return q
}

// tenantName renders a possibly-nil tenant for statuses and logs.
func tenantName(t *Tenant) string {
	if t == nil {
		return AnonymousTenant
	}
	return t.Name()
}

// metricsRef returns the current metrics sink (nil-safe to call methods
// on).
func (m *Manager) metricsRef() *Metrics { return m.metrics.Load() }

// addCachedJobLocked registers a born-terminal replay job for res. Callers
// hold m.mu.
func (m *Manager) addCachedJobLocked(spec JobSpec, res cachedResult) *Job {
	m.seq++
	job := newCachedJob(jobID(m.seq), spec, res)
	m.jobs[job.ID] = job
	return job
}

// jobID renders the job identifier without fmt's reflection overhead.
func jobID(seq int) string {
	return "job-" + strconv.Itoa(seq)
}

// seqNum recovers the dense sequence number from a job id, giving
// listJobs a total newest-first order without a clock comparison.
func (j *Job) seqNum() int {
	n, _ := strconv.Atoi(j.ID[len("job-"):])
	return n
}

// cachedFor resolves spec straight to its cached pre-encoded result, the
// zero-copy warm path behind POST /v1/query: only the registration
// generation is consulted (never the snapshot store, never the job
// machinery), so a warm hit costs one hash and two map lookups and
// creates nothing that must be tracked or reclaimed.
func (m *Manager) cachedFor(spec JobSpec) (cachedResult, bool) {
	if m.cache == nil {
		return cachedResult{}, false
	}
	spec = canonicalSpec(spec)
	gen, ok := m.reg.GenerationOf(spec.Dataset)
	if !ok {
		return cachedResult{}, false
	}
	return m.cache.get(requestKey(spec, gen))
}

// CacheStats reports the result cache's current entry count and byte size
// (zeros when caching is disabled).
func (m *Manager) CacheStats() (entries int, bytes int64) {
	return m.cache.len(), m.cache.bytes()
}

// CacheCounters reports the result cache's lifetime hit/miss totals.
func (m *Manager) CacheCounters() (hits, misses int64) {
	return m.cache.counters()
}

// QueueStats reports the scheduler's current occupancy: jobs queued
// across all tenants and jobs running on workers.
func (m *Manager) QueueStats() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queued, m.running
}

// detachLocked removes job from the singleflight table. Callers hold m.mu.
func (m *Manager) detachLocked(job *Job) {
	if job.hasKey && m.inflight[job.key] == job {
		delete(m.inflight, job.key)
	}
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs returns a snapshot of all jobs, newest first not guaranteed.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	return out
}

// releaseTenantLocked returns a finished/cancelled job's quota slot.
// Callers hold m.mu.
func (m *Manager) releaseTenantLocked(job *Job) {
	if job.tenant != nil {
		job.tenant.inflight--
	}
}

// Cancel stops the job with the given id: a queued job turns cancelled
// immediately (the worker skips it when it is popped), a running job has
// its context cancelled and finishes with partial statistics. Cancelling
// a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	job, ok := m.Get(id)
	if !ok {
		return ErrNotFound
	}
	job.mu.Lock()
	switch {
	case job.state == StateQueued:
		job.state = StateCancelled
		job.errMsg = context.Canceled.Error()
		job.stopReason = "cancel"
		job.endedAt = time.Now()
		close(job.done)
		job.wakeLocked()
		job.mu.Unlock()
		m.mu.Lock()
		m.detachLocked(job)
		m.releaseTenantLocked(job)
		m.metricsRef().JobFinished(StateCancelled)
		m.mu.Unlock()
	case job.state == StateRunning:
		cancel := job.cancel
		job.mu.Unlock()
		cancel()
	default:
		job.mu.Unlock()
	}
	return nil
}

// Shutdown drains the service: no new submissions are admitted, workers
// finish the jobs already queued or running, and once ctx expires every
// remaining job is cancelled (each stops within one node expansion).
// Shutdown returns when all workers have exited; the error is ctx.Err()
// when the drain deadline forced cancellation, nil otherwise.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.cond.Broadcast()
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline hit: cancel everything still live and wait for the
	// workers — cancellation is honoured within one node expansion, so
	// this wait is short and bounded by the slowest expansion.
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCancelled
			j.errMsg = context.Canceled.Error()
			j.stopReason = "cancel"
			j.endedAt = time.Now()
			close(j.done)
			j.wakeLocked()
			m.detachLocked(j)
			m.releaseTenantLocked(j)
			m.metricsRef().JobFinished(StateCancelled)
		case StateRunning:
			j.cancel()
		}
		j.mu.Unlock()
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

// dequeue blocks until a job is available (returning it) or the manager
// is draining with every queue empty (returning nil). The pick is smooth
// weighted round-robin across tenants with queued work, so one tenant's
// backlog cannot monopolize the workers.
func (m *Manager) dequeue() *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if job := m.pickLocked(); job != nil {
			m.queued--
			m.running++
			return job
		}
		if m.draining {
			return nil
		}
		m.cond.Wait()
	}
}

// pickLocked picks the next job: the interactive lane (budgeted anytime
// jobs) drains with strict priority over the batch lane, each lane WRR-
// fair between its tenants. Strict priority cannot starve batch work —
// every interactive job bounds its own runtime, so the fast lane drains.
// Callers hold m.mu.
func (m *Manager) pickLocked() *Job {
	if job := m.pickLaneLocked(true); job != nil {
		return job
	}
	return m.pickLaneLocked(false)
}

// pickLaneLocked runs one smooth-WRR round over the non-empty queues of
// one lane: add each contender's weight to its credit, pick the largest
// credit (queue order breaks ties deterministically), charge the winner
// the round's total. With equal weights this interleaves tenants
// one-for-one; with weight 3 vs 1 the heavy tenant gets three picks
// spread across every four, never a burst. Callers hold m.mu.
func (m *Manager) pickLaneLocked(fast bool) *Job {
	lane := func(q *tenantQueue) *[]*Job {
		if fast {
			return &q.fast
		}
		return &q.jobs
	}
	credit := func(q *tenantQueue) *int {
		if fast {
			return &q.currentFast
		}
		return &q.current
	}
	total := 0
	var best *tenantQueue
	for _, q := range m.queues {
		if len(*lane(q)) == 0 {
			continue
		}
		w := 1
		if q.t != nil {
			w = q.t.weight()
		}
		*credit(q) += w
		total += w
		if best == nil || *credit(q) > *credit(best) {
			best = q
		}
	}
	if best == nil {
		return nil
	}
	*credit(best) -= total
	jobs := *lane(best)
	job := jobs[0]
	copy(jobs, jobs[1:])
	*lane(best) = jobs[:len(jobs)-1]
	return job
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		job := m.dequeue()
		if job == nil {
			return
		}
		m.run(job)
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
	}
}

// run executes one job on the calling worker goroutine.
func (m *Manager) run(job *Job) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if job.Spec.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(job.Spec.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the queue
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.startedAt = time.Now()
	job.cancel = cancel
	job.wakeLocked()
	queueWait := job.startedAt.Sub(job.createdAt)
	job.mu.Unlock()
	m.metricsRef().ObserveQueueWait(queueWait)

	res, err := job.runner(ctx, job.emit)
	var stats engine.Stats
	hasStats := res != nil
	if hasStats {
		stats = res.Stats()
	}
	// The anytime verdict, when the runner produced one (topk jobs): a
	// budget stop comes back as a successful partial result, not an error.
	partial, gap, hasGap := false, 0.0, false
	var nodes int64
	if ao, ok := res.(anytimeOutcome); ok {
		partial, gap, hasGap, nodes = ao.Partial, ao.Gap, ao.HasGap, ao.NodesExpanded
	}
	var state State
	switch {
	case err == nil:
		state = StateDone
		reason := ""
		if partial {
			reason = "budget"
		}
		job.setOutcome(partial, gap, hasGap, nodes, reason)
		job.finish(StateDone, stats, hasStats, "")
		if !partial {
			// Only complete, successful runs are replayable and cacheable:
			// the records are final, so they are flattened once — together
			// with the end frame — into the contiguous NDJSON body that the
			// cache stores and the job itself serves through the zero-copy
			// path; every later replay shares this one buffer. A partial
			// (budget-stopped) answer is never cached: re-asking must re-mine
			// for a chance at a better answer.
			job.mu.Lock()
			records := job.results
			job.mu.Unlock()
			body := append(encodeBody(records), job.endBytes()...)
			body = append(body, '\n')
			etag := etagFor(job.key)
			job.setReplay(body, etag)
			m.cache.put(job.key, cachedResult{body: body, count: len(records), stats: stats, hasStats: hasStats, etag: etag})
		}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// An interrupted run emitted a prefix of its answer: flag it
		// partial and say which of the deadline or an explicit cancel cut
		// it short.
		state = StateCancelled
		reason := "cancel"
		if errors.Is(err, context.DeadlineExceeded) {
			reason = "deadline"
		}
		job.setOutcome(true, gap, hasGap, nodes, reason)
		job.finish(StateCancelled, stats, hasStats, err.Error())
	default:
		state = StateFailed
		job.setOutcome(partial, gap, hasGap, nodes, "")
		job.finish(StateFailed, stats, hasStats, err.Error())
	}

	job.mu.Lock()
	runDur := job.endedAt.Sub(job.startedAt)
	job.mu.Unlock()
	if t := job.tenant; t != nil {
		t.Acct.Jobs.Add(1)
		t.Acct.RowsExpanded.Add(stats.NodesVisited)
		t.Acct.ArenaBytes.Add(stats.ArenaBytes)
		t.Acct.RunNS.Add(int64(runDur))
		t.Acct.QueueNS.Add(int64(queueWait))
	}
	m.metricsRef().ObserveRun(runDur)
	m.metricsRef().JobFinished(state)
	if partial || state == StateCancelled {
		m.metricsRef().JobPartial()
	}
	if job.Spec.MaxMillis > 0 {
		m.metricsRef().ObserveBudgetUtilization(float64(runDur) / float64(time.Duration(job.Spec.MaxMillis)*time.Millisecond))
	}
	m.auditLog().Log(AuditEvent{Event: "job_finished", Tenant: tenantName(job.tenant), Job: job.ID, Detail: string(state)})

	m.mu.Lock()
	m.detachLocked(job)
	m.releaseTenantLocked(job)
	m.mu.Unlock()
}
