package carpenter

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
)

func keys(ps []ClosedPattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("%v|%d", p.Items, p.Support)
	}
	sort.Strings(out)
	return out
}

func refKeys(items [][]dataset.Item, sups []int) []string {
	out := make([]string, len(items))
	for i := range items {
		out[i] = fmt.Sprintf("%v|%d", items[i], sups[i])
	}
	sort.Strings(out)
	return out
}

func TestPaperExampleClosedPatterns(t *testing.T) {
	d := dataset.PaperExample()
	for _, minsup := range []int{1, 2, 3} {
		res, err := Mine(d, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		items, sups := reference.ClosedSets(d, minsup)
		if got, want := keys(res.Patterns), refKeys(items, sups); !reflect.DeepEqual(got, want) {
			t.Fatalf("minsup=%d:\n got %v\nwant %v", minsup, got, want)
		}
	}
}

func TestRowsReported(t *testing.T) {
	d := dataset.PaperExample()
	res, err := Mine(d, Options{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		want := dataset.SupportSet(d, p.Items).Ints()
		if !reflect.DeepEqual(p.Rows, want) {
			t.Fatalf("pattern %v rows %v != %v", p.Items, p.Rows, want)
		}
		if p.Support != len(p.Rows) {
			t.Fatalf("pattern %v support %d != |rows| %d", p.Items, p.Support, len(p.Rows))
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Mine(dataset.PaperExample(), Options{MinSup: 0}); err == nil {
		t.Fatal("MinSup 0 accepted")
	}
}

func TestEmptyDataset(t *testing.T) {
	res, err := Mine(&dataset.Dataset{ClassNames: []string{"x"}}, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Fatal("patterns from empty dataset")
	}
}

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 2 + rng.Intn(8)
	numItems := 3 + rng.Intn(8)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"only"})
	if err != nil {
		panic(err)
	}
	return d
}

// Property: CARPENTER equals the brute-force closed-set oracle.
func TestPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 250; iter++ {
		d := randomDataset(rng)
		minsup := 1 + rng.Intn(3)
		res, err := Mine(d, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		items, sups := reference.ClosedSets(d, minsup)
		if got, want := keys(res.Patterns), refKeys(items, sups); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d minsup=%d:\n got %v\nwant %v\nrows %+v", iter, minsup, got, want, d.Rows)
		}
	}
}
