package carpenter_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/carpenter"
	"repro/internal/dataset"
	"repro/internal/difftest"
	"repro/internal/reference"
)

// CARPENTER's row-enumeration must reproduce the brute-force closed-set
// lattice on the shared edge-case fixtures, with each pattern's row list
// equal to the support set of its items.
func TestEdgeFixturesAgainstOracle(t *testing.T) {
	for _, f := range difftest.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for minsup := 1; minsup <= 2; minsup++ {
				refItems, refSups := reference.ClosedSets(f.D, minsup)
				want := make([]string, len(refItems))
				for i := range refItems {
					want[i] = fmt.Sprintf("%v|%d", refItems[i], refSups[i])
				}
				sort.Strings(want)

				res, err := carpenter.Mine(f.D, carpenter.Options{MinSup: minsup})
				if err != nil {
					t.Fatalf("minsup=%d: %v", minsup, err)
				}
				got := make([]string, len(res.Patterns))
				for i, p := range res.Patterns {
					got[i] = fmt.Sprintf("%v|%d", p.Items, p.Support)
					if rows := dataset.SupportSet(f.D, p.Items).Ints(); fmt.Sprint(rows) != fmt.Sprint(p.Rows) {
						t.Fatalf("minsup=%d: pattern %v rows %v != R(items) %v",
							minsup, p.Items, p.Rows, rows)
					}
				}
				sort.Strings(got)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("minsup=%d: closed patterns\n got %v\nwant %v", minsup, got, want)
				}
			}
		})
	}
}
