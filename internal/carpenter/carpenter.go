// Package carpenter implements CARPENTER (Pan, Cong, Tung, Yang, Zaki;
// KDD 2003), FARMER's predecessor: mining frequent CLOSED PATTERNS from
// long biological datasets by row enumeration. It shares FARMER's machinery
// — conditional transposed tables, candidate absorption (pruning 1), the
// back scan (pruning 2) — but is class-blind and prunes only on minimum row
// support.
//
// The package is an independent implementation rather than a façade over
// internal/core, mirroring how the two systems were separate artifacts; the
// cross-check tests in this repository verify both against the same oracle.
package carpenter

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedPattern is one closed itemset with its supporting rows.
type ClosedPattern struct {
	Items   []dataset.Item
	Support int
	Rows    []int // ascending row ids
}

// Options configures a run.
type Options struct {
	// MinSup is the minimum absolute row support, ≥ 1.
	MinSup int

	// OnClosed, when non-nil, switches the canonical entry point
	// (farmer.RunCARPENTER) to streaming emission in discovery order; the
	// result accumulates no Patterns. Ignored by the low-level Mine*
	// functions, which take their callback as an argument.
	OnClosed func(ClosedPattern) error

	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset: the run reuses the snapshot's transposed table instead of
	// rebuilding it. The snapshot must have been built from the exact
	// *Dataset passed to the mining call.
	Prepared *dataset.Snapshot
}

// Result carries mined patterns and effort statistics. Nodes keeps the
// legacy enumeration-node count; Stats carries the engine's unified
// counters (NodesVisited equals Nodes for this miner).
type Result struct {
	Patterns []ClosedPattern
	Nodes    int64

	stats engine.Stats
}

// Stats returns the engine's unified run statistics.
func (r *Result) Stats() engine.Stats { return r.stats }

// Count returns the number of closed patterns in the batch result.
func (r *Result) Count() int { return len(r.Patterns) }

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// node expansion. On cancellation it returns ctx.Err() with a non-nil
// Result carrying the partial statistics and the patterns already emitted.
func MineContext(ctx context.Context, d *dataset.Dataset, opt Options) (*Result, error) {
	var out []ClosedPattern
	res, err := MineStream(ctx, d, opt, func(p ClosedPattern) error {
		out = append(out, p)
		return nil
	})
	if res != nil {
		sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Items, out[j].Items) })
		res.Patterns = out
	}
	return res, err
}

// MineStream is the streaming form of Mine: each closed pattern is
// delivered to onPattern at the moment its node emits — final immediately,
// since the back scan guarantees each closed pattern is emitted at exactly
// one node — in discovery (post-order) rather than Mine's sorted order. A
// callback error aborts the run and is returned verbatim; after
// cancellation no further patterns are delivered.
func MineStream(ctx context.Context, d *dataset.Dataset, opt Options, onPattern func(ClosedPattern) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("carpenter: MinSup must be >= 1, got %d", opt.MinSup)
	}
	snap := opt.Prepared
	if snap != nil && snap.Dataset() != d {
		return nil, fmt.Errorf("carpenter: Prepared snapshot was built from a different dataset")
	}
	if snap == nil {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	n := len(d.Rows)
	var tt *dataset.Transposed
	if snap != nil {
		ex.Stats.PrepareReused++
		tt = snap.Transposed()
	} else {
		tt = dataset.Transpose(d)
	}
	m := &miner{
		d:      d,
		tt:     tt,
		n:      n,
		minsup: opt.MinSup,
		ex:     ex,
		sc:     engine.NewScratch(n),
		emit:   onPattern,
	}
	setupDone()
	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	var err error
	for ri := 0; ri < n && err == nil; ri++ {
		row := &d.Rows[ri]
		mark := m.sc.A.Mark()
		tuples := m.sc.A.Tup.Alloc(len(row.Items))
		for i, it := range row.Items {
			list := m.tt.Lists[it]
			k := sort.Search(len(list), func(i int) bool { return list[i] > int32(ri) })
			tuples[i] = tuple{Item: it, Rows: list[k:]}
		}
		m.sc.InX.Set(ri)
		err = m.mineNode(tuples, 1, ri)
		m.sc.InX.Clear(ri)
		m.sc.A.Release(mark)
	}
	searchDone()
	ex.Stats.ArenaBytes = m.sc.Bytes()
	return &Result{Nodes: ex.Stats.NodesVisited, stats: ex.Stats}, err
}

// tuple is one row of a conditional transposed table, shared with the
// engine so the tables live on the scratch arena.
type tuple = engine.Tuple

type miner struct {
	d      *dataset.Dataset
	tt     *dataset.Transposed
	n      int
	minsup int

	// ex and sc are the shared engine runtime: cancellation-aware node
	// accounting and the epoch-stamped scratch substrate.
	ex *engine.Exec
	sc *engine.Scratch

	emit func(ClosedPattern) error
}

func (m *miner) mineNode(tuples []tuple, count int, rmax int) error {
	if err := m.ex.EnterNode(); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil
	}
	// Pruning 2: back scan over global list prefixes.
	if m.backScanHit(tuples, rmax) {
		m.ex.Stats.PrunedBackScan++
		return nil
	}
	// Everything from here on allocates on the arena and pops on unwind.
	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)

	// Scan: occurrence counts over candidates; Y absorption (pruning 1).
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	ntup := int32(len(tuples))
	maxInTuple := 0
	distinct := 0
	for _, t := range tuples {
		if len(t.Rows) > maxInTuple {
			maxInTuple = len(t.Rows)
		}
		for _, r := range t.Rows {
			if stamp[r] != ep {
				stamp[r] = ep
				cnt[r] = 0
				distinct++
			}
			cnt[r]++
		}
	}
	// Classify the union into Y (in every tuple) and E′, packed into one
	// arena buffer: E′ grows from the front, Y from the back.
	union := m.sc.A.I32.Alloc(distinct)
	ne, ny := 0, 0
	for _, t := range tuples {
		for _, r := range t.Rows {
			if stamp[r] != ep || cnt[r] < 0 {
				continue
			}
			if cnt[r] == ntup {
				ny++
				union[distinct-ny] = r
			} else {
				union[ne] = r
				ne++
			}
			cnt[r] = -1
		}
	}
	eRows, yRows := union[:ne], union[ne:]
	slices.Sort(eRows)
	count += len(yRows)
	m.ex.Stats.RowsAbsorbed += int64(len(yRows))

	// Pruning 3: even absorbing the longest tuple's remaining candidates
	// cannot reach minsup. (count already includes Y, which every tuple
	// contains, so the bound stays valid.)
	if count-len(yRows)+maxInTuple < m.minsup {
		m.ex.Stats.PrunedTightBound++
		return nil
	}

	for _, r := range yRows {
		m.sc.InX.Set(int(r))
	}
	cleaned := m.sc.A.Rows.Alloc(len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].Rows
		}
	} else {
		slices.Sort(yRows)
		total := 0
		for i := range tuples {
			total += len(tuples[i].Rows) - len(yRows) // Y is in every tuple
		}
		backing := m.sc.A.I32.Alloc(total)
		w := 0
		for i := range tuples {
			start := w
			yi := 0
			for _, r := range tuples[i].Rows {
				for yi < len(yRows) && yRows[yi] < r {
					yi++
				}
				if yi < len(yRows) && yRows[yi] == r {
					continue
				}
				backing[w] = r
				w++
			}
			cleaned[i] = backing[start:w:w]
		}
	}

	// Children per remaining candidate, ascending. The tuple lists per
	// candidate are laid out in one flat counted arena array; candidate
	// positions come from binary search in the sorted eRows.
	if len(eRows) > 0 {
		posOf := func(r int32) int {
			return sort.Search(len(eRows), func(i int) bool { return eRows[i] >= r })
		}
		counts := m.sc.A.I32.Alloc(len(eRows) + 1)
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				counts[posOf(r)+1]++
			}
		}
		for i := 1; i <= len(eRows); i++ {
			counts[i] += counts[i-1]
		}
		flat := m.sc.A.I32.Alloc(int(counts[len(eRows)]))
		fill := m.sc.A.I32.Alloc(len(eRows))
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				p := posOf(r)
				flat[int(counts[p])+int(fill[p])] = int32(ti)
				fill[p]++
			}
		}
		childBacking := m.sc.A.Tup.Alloc(int(counts[len(eRows)]))
		for p, r := range eRows {
			tis := flat[counts[p]:counts[p+1]]
			child := childBacking[counts[p]:counts[p]:counts[p+1]]
			for _, ti := range tis {
				rows := cleaned[ti]
				k := sort.Search(len(rows), func(i int) bool { return rows[i] > r })
				child = append(child, tuple{Item: tuples[ti].Item, Rows: rows[k:]})
			}
			m.sc.InX.Set(int(r))
			err := m.mineNode(child, count+1, int(r))
			m.sc.InX.Clear(int(r))
			if err != nil {
				return err
			}
		}
	}

	// Emit the closed pattern of this node: I(X) with rows X ∪ Yacc. After
	// cancellation the unwind path delivers nothing further.
	if count >= m.minsup {
		if err := m.ex.Err(); err != nil {
			return err
		}
		items := make([]dataset.Item, len(tuples))
		for i, t := range tuples {
			items[i] = t.Item
		}
		slices.Sort(items)
		m.ex.Stats.GroupsEmitted++
		if m.emit != nil {
			if err := m.emit(ClosedPattern{Items: items, Support: count, Rows: m.sc.InX.Ints()}); err != nil {
				return err
			}
		}
	}

	for _, r := range yRows {
		m.sc.InX.Clear(int(r))
	}
	return nil
}

func (m *miner) backScanHit(tuples []tuple, rmax int) bool {
	if rmax == 0 {
		return false
	}
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	inX := m.sc.InX
	ntup := int32(len(tuples))
	for ti, t := range tuples {
		glist := m.tt.Lists[t.Item]
		hitAny := false
		for _, r := range glist {
			if int(r) >= rmax {
				break
			}
			if inX.Test(int(r)) {
				continue
			}
			if ti == 0 {
				stamp[r] = ep
				cnt[r] = 1
				if ntup == 1 {
					return true
				}
				hitAny = true
				continue
			}
			if stamp[r] == ep && cnt[r] == int32(ti) {
				cnt[r]++
				if cnt[r] == ntup {
					return true
				}
				hitAny = true
			}
		}
		if !hitAny {
			return false
		}
	}
	return false
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
