// Package carpenter implements CARPENTER (Pan, Cong, Tung, Yang, Zaki;
// KDD 2003), FARMER's predecessor: mining frequent CLOSED PATTERNS from
// long biological datasets by row enumeration. It shares FARMER's machinery
// — conditional transposed tables, candidate absorption (pruning 1), the
// back scan (pruning 2) — but is class-blind and prunes only on minimum row
// support.
//
// The package is an independent implementation rather than a façade over
// internal/core, mirroring how the two systems were separate artifacts; the
// cross-check tests in this repository verify both against the same oracle.
package carpenter

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedPattern is one closed itemset with its supporting rows.
type ClosedPattern struct {
	Items   []dataset.Item
	Support int
	Rows    []int // ascending row ids
}

// Options configures a run.
type Options struct {
	// MinSup is the minimum absolute row support, ≥ 1.
	MinSup int
}

// Result carries mined patterns and effort statistics. Nodes keeps the
// legacy enumeration-node count; Stats carries the engine's unified
// counters (NodesVisited equals Nodes for this miner).
type Result struct {
	Patterns []ClosedPattern
	Nodes    int64
	Stats    engine.Stats
}

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// node expansion. On cancellation it returns ctx.Err() with a non-nil
// Result carrying the partial statistics and the patterns already emitted.
func MineContext(ctx context.Context, d *dataset.Dataset, opt Options) (*Result, error) {
	var out []ClosedPattern
	res, err := MineStream(ctx, d, opt, func(p ClosedPattern) error {
		out = append(out, p)
		return nil
	})
	if res != nil {
		sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Items, out[j].Items) })
		res.Patterns = out
	}
	return res, err
}

// MineStream is the streaming form of Mine: each closed pattern is
// delivered to onPattern at the moment its node emits — final immediately,
// since the back scan guarantees each closed pattern is emitted at exactly
// one node — in discovery (post-order) rather than Mine's sorted order. A
// callback error aborts the run and is returned verbatim; after
// cancellation no further patterns are delivered.
func MineStream(ctx context.Context, d *dataset.Dataset, opt Options, onPattern func(ClosedPattern) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("carpenter: MinSup must be >= 1, got %d", opt.MinSup)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	n := len(d.Rows)
	m := &miner{
		d:      d,
		tt:     dataset.Transpose(d),
		n:      n,
		minsup: opt.MinSup,
		ex:     ex,
		sc:     engine.NewScratch(n),
		emit:   onPattern,
	}
	setupDone()
	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	var err error
	for ri := 0; ri < n && err == nil; ri++ {
		row := &d.Rows[ri]
		tuples := make([]tuple, 0, len(row.Items))
		for _, it := range row.Items {
			list := m.tt.Lists[it]
			k := sort.Search(len(list), func(i int) bool { return list[i] > int32(ri) })
			tuples = append(tuples, tuple{item: it, rows: list[k:]})
		}
		m.sc.InX.Set(ri)
		err = m.mineNode(tuples, 1, ri)
		m.sc.InX.Clear(ri)
	}
	searchDone()
	return &Result{Nodes: ex.Stats.NodesVisited, Stats: ex.Stats}, err
}

type tuple struct {
	item dataset.Item
	rows []int32
}

type miner struct {
	d      *dataset.Dataset
	tt     *dataset.Transposed
	n      int
	minsup int

	// ex and sc are the shared engine runtime: cancellation-aware node
	// accounting and the epoch-stamped scratch substrate.
	ex *engine.Exec
	sc *engine.Scratch

	emit func(ClosedPattern) error
}

func (m *miner) mineNode(tuples []tuple, count int, rmax int) error {
	if err := m.ex.EnterNode(); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil
	}
	// Pruning 2: back scan over global list prefixes.
	if m.backScanHit(tuples, rmax) {
		m.ex.Stats.PrunedBackScan++
		return nil
	}
	// Scan: occurrence counts over candidates; Y absorption (pruning 1).
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	ntup := int32(len(tuples))
	maxInTuple := 0
	for _, t := range tuples {
		if len(t.rows) > maxInTuple {
			maxInTuple = len(t.rows)
		}
		for _, r := range t.rows {
			if stamp[r] != ep {
				stamp[r] = ep
				cnt[r] = 0
			}
			cnt[r]++
		}
	}
	var eRows, yRows []int32
	for _, t := range tuples {
		for _, r := range t.rows {
			if stamp[r] != ep || cnt[r] < 0 {
				continue
			}
			if cnt[r] == ntup {
				yRows = append(yRows, r)
			} else {
				eRows = append(eRows, r)
			}
			cnt[r] = -1
		}
	}
	sort.Slice(eRows, func(a, b int) bool { return eRows[a] < eRows[b] })
	count += len(yRows)
	m.ex.Stats.RowsAbsorbed += int64(len(yRows))

	// Pruning 3: even absorbing the longest tuple's remaining candidates
	// cannot reach minsup. (count already includes Y, which every tuple
	// contains, so the bound stays valid.)
	if count-len(yRows)+maxInTuple < m.minsup {
		m.ex.Stats.PrunedTightBound++
		return nil
	}

	for _, r := range yRows {
		m.sc.InX.Set(int(r))
	}
	cleaned := make([][]int32, len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].rows
		}
	} else {
		inY := make(map[int32]bool, len(yRows))
		for _, r := range yRows {
			inY[r] = true
		}
		for i := range tuples {
			dst := make([]int32, 0, len(tuples[i].rows))
			for _, r := range tuples[i].rows {
				if !inY[r] {
					dst = append(dst, r)
				}
			}
			cleaned[i] = dst
		}
	}

	// Children per remaining candidate, ascending.
	if len(eRows) > 0 {
		posOf := make(map[int32]int32, len(eRows))
		for i, r := range eRows {
			posOf[r] = int32(i)
		}
		containing := make([][]int32, len(eRows))
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				containing[posOf[r]] = append(containing[posOf[r]], int32(ti))
			}
		}
		for p, r := range eRows {
			child := make([]tuple, 0, len(containing[p]))
			for _, ti := range containing[p] {
				rows := cleaned[ti]
				k := sort.Search(len(rows), func(i int) bool { return rows[i] > r })
				child = append(child, tuple{item: tuples[ti].item, rows: rows[k:]})
			}
			m.sc.InX.Set(int(r))
			err := m.mineNode(child, count+1, int(r))
			m.sc.InX.Clear(int(r))
			if err != nil {
				return err
			}
		}
	}

	// Emit the closed pattern of this node: I(X) with rows X ∪ Yacc. After
	// cancellation the unwind path delivers nothing further.
	if count >= m.minsup {
		if err := m.ex.Err(); err != nil {
			return err
		}
		items := make([]dataset.Item, len(tuples))
		for i, t := range tuples {
			items[i] = t.item
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		m.ex.Stats.GroupsEmitted++
		if m.emit != nil {
			if err := m.emit(ClosedPattern{Items: items, Support: count, Rows: m.sc.InX.Ints()}); err != nil {
				return err
			}
		}
	}

	for _, r := range yRows {
		m.sc.InX.Clear(int(r))
	}
	return nil
}

func (m *miner) backScanHit(tuples []tuple, rmax int) bool {
	if rmax == 0 {
		return false
	}
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	inX := m.sc.InX
	ntup := int32(len(tuples))
	for ti, t := range tuples {
		glist := m.tt.Lists[t.item]
		hitAny := false
		for _, r := range glist {
			if int(r) >= rmax {
				break
			}
			if inX.Test(int(r)) {
				continue
			}
			if ti == 0 {
				stamp[r] = ep
				cnt[r] = 1
				if ntup == 1 {
					return true
				}
				hitAny = true
				continue
			}
			if stamp[r] == ep && cnt[r] == int32(ti) {
				cnt[r]++
				if cnt[r] == ntup {
					return true
				}
				hitAny = true
			}
		}
		if !hitAny {
			return false
		}
	}
	return false
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
