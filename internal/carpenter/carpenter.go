// Package carpenter implements CARPENTER (Pan, Cong, Tung, Yang, Zaki;
// KDD 2003), FARMER's predecessor: mining frequent CLOSED PATTERNS from
// long biological datasets by row enumeration. It shares FARMER's machinery
// — conditional transposed tables, candidate absorption (pruning 1), the
// back scan (pruning 2) — but is class-blind and prunes only on minimum row
// support.
//
// The package is an independent implementation rather than a façade over
// internal/core, mirroring how the two systems were separate artifacts; the
// cross-check tests in this repository verify both against the same oracle.
package carpenter

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
)

// ClosedPattern is one closed itemset with its supporting rows.
type ClosedPattern struct {
	Items   []dataset.Item
	Support int
	Rows    []int // ascending row ids
}

// Options configures a run.
type Options struct {
	// MinSup is the minimum absolute row support, ≥ 1.
	MinSup int
}

// Result carries mined patterns and effort statistics.
type Result struct {
	Patterns []ClosedPattern
	Nodes    int64
}

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("carpenter: MinSup must be >= 1, got %d", opt.MinSup)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := len(d.Rows)
	m := &miner{
		d:      d,
		tt:     dataset.Transpose(d),
		n:      n,
		minsup: opt.MinSup,
		inX:    bitset.New(n),
		cnt:    make([]int32, n),
		stamp:  make([]uint32, n),
	}
	for ri := 0; ri < n; ri++ {
		row := &d.Rows[ri]
		tuples := make([]tuple, 0, len(row.Items))
		for _, it := range row.Items {
			list := m.tt.Lists[it]
			k := sort.Search(len(list), func(i int) bool { return list[i] > int32(ri) })
			tuples = append(tuples, tuple{item: it, rows: list[k:]})
		}
		m.inX.Set(ri)
		m.mineNode(tuples, 1, ri)
		m.inX.Clear(ri)
	}
	sort.Slice(m.out, func(i, j int) bool { return lessItems(m.out[i].Items, m.out[j].Items) })
	return &Result{Patterns: m.out, Nodes: m.nodes}, nil
}

type tuple struct {
	item dataset.Item
	rows []int32
}

type miner struct {
	d      *dataset.Dataset
	tt     *dataset.Transposed
	n      int
	minsup int

	inX   *bitset.Set
	cnt   []int32
	stamp []uint32
	epoch uint32

	out   []ClosedPattern
	nodes int64
}

func (m *miner) mineNode(tuples []tuple, count int, rmax int) {
	m.nodes++
	if len(tuples) == 0 {
		return
	}
	// Pruning 2: back scan over global list prefixes.
	if m.backScanHit(tuples, rmax) {
		return
	}
	// Scan: occurrence counts over candidates; Y absorption (pruning 1).
	m.epoch++
	ntup := int32(len(tuples))
	maxInTuple := 0
	for _, t := range tuples {
		if len(t.rows) > maxInTuple {
			maxInTuple = len(t.rows)
		}
		for _, r := range t.rows {
			if m.stamp[r] != m.epoch {
				m.stamp[r] = m.epoch
				m.cnt[r] = 0
			}
			m.cnt[r]++
		}
	}
	var eRows, yRows []int32
	for _, t := range tuples {
		for _, r := range t.rows {
			if m.stamp[r] != m.epoch || m.cnt[r] < 0 {
				continue
			}
			if m.cnt[r] == ntup {
				yRows = append(yRows, r)
			} else {
				eRows = append(eRows, r)
			}
			m.cnt[r] = -1
		}
	}
	sort.Slice(eRows, func(a, b int) bool { return eRows[a] < eRows[b] })
	count += len(yRows)

	// Pruning 3: even absorbing the longest tuple's remaining candidates
	// cannot reach minsup. (count already includes Y, which every tuple
	// contains, so the bound stays valid.)
	if count-len(yRows)+maxInTuple < m.minsup {
		return
	}

	for _, r := range yRows {
		m.inX.Set(int(r))
	}
	cleaned := make([][]int32, len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].rows
		}
	} else {
		inY := make(map[int32]bool, len(yRows))
		for _, r := range yRows {
			inY[r] = true
		}
		for i := range tuples {
			dst := make([]int32, 0, len(tuples[i].rows))
			for _, r := range tuples[i].rows {
				if !inY[r] {
					dst = append(dst, r)
				}
			}
			cleaned[i] = dst
		}
	}

	// Children per remaining candidate, ascending.
	if len(eRows) > 0 {
		posOf := make(map[int32]int32, len(eRows))
		for i, r := range eRows {
			posOf[r] = int32(i)
		}
		containing := make([][]int32, len(eRows))
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				containing[posOf[r]] = append(containing[posOf[r]], int32(ti))
			}
		}
		for p, r := range eRows {
			child := make([]tuple, 0, len(containing[p]))
			for _, ti := range containing[p] {
				rows := cleaned[ti]
				k := sort.Search(len(rows), func(i int) bool { return rows[i] > r })
				child = append(child, tuple{item: tuples[ti].item, rows: rows[k:]})
			}
			m.inX.Set(int(r))
			m.mineNode(child, count+1, int(r))
			m.inX.Clear(int(r))
		}
	}

	// Emit the closed pattern of this node: I(X) with rows X ∪ Yacc.
	if count >= m.minsup {
		items := make([]dataset.Item, len(tuples))
		for i, t := range tuples {
			items[i] = t.item
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		m.out = append(m.out, ClosedPattern{Items: items, Support: count, Rows: m.inX.Ints()})
	}

	for _, r := range yRows {
		m.inX.Clear(int(r))
	}
}

func (m *miner) backScanHit(tuples []tuple, rmax int) bool {
	if rmax == 0 {
		return false
	}
	m.epoch++
	ntup := int32(len(tuples))
	for ti, t := range tuples {
		glist := m.tt.Lists[t.item]
		hitAny := false
		for _, r := range glist {
			if int(r) >= rmax {
				break
			}
			if m.inX.Test(int(r)) {
				continue
			}
			if ti == 0 {
				m.stamp[r] = m.epoch
				m.cnt[r] = 1
				if ntup == 1 {
					return true
				}
				hitAny = true
				continue
			}
			if m.stamp[r] == m.epoch && m.cnt[r] == int32(ti) {
				m.cnt[r]++
				if m.cnt[r] == ntup {
					return true
				}
				hitAny = true
			}
		}
		if !hitAny {
			return false
		}
	}
	return false
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
