package charm_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/charm"
	"repro/internal/dataset"
	"repro/internal/difftest"
	"repro/internal/reference"
)

// CHARM must reproduce the brute-force closed-set lattice on the shared
// edge-case fixtures (empty and single-row datasets, duplicate rows, a
// universal column, ...), and every reported tidset must equal the support
// set of its itemset.
func TestEdgeFixturesAgainstOracle(t *testing.T) {
	for _, f := range difftest.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			for minsup := 1; minsup <= 2; minsup++ {
				refItems, refSups := reference.ClosedSets(f.D, minsup)
				want := make([]string, len(refItems))
				for i := range refItems {
					want[i] = fmt.Sprintf("%v|%d", refItems[i], refSups[i])
				}
				sort.Strings(want)

				res, err := charm.Mine(f.D, charm.Options{MinSup: minsup})
				if err != nil {
					t.Fatalf("minsup=%d: %v", minsup, err)
				}
				got := make([]string, len(res.Closed))
				for i, cs := range res.Closed {
					got[i] = fmt.Sprintf("%v|%d", cs.Items, cs.Support)
					if !dataset.SupportSet(f.D, cs.Items).Equal(cs.Rows) {
						t.Fatalf("minsup=%d: tidset of %v disagrees with R(items)", minsup, cs.Items)
					}
				}
				sort.Strings(got)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("minsup=%d: closed sets\n got %v\nwant %v", minsup, got, want)
				}
			}
		})
	}
}
