// Package charm implements CHARM (Zaki & Hsiao, SDM 2002), the closed-
// itemset miner FARMER is benchmarked against in Figures 10–11. CHARM
// enumerates the column (itemset) space over itemset–tidset pairs, using
// the four tidset-containment properties to collapse equivalent branches
// and a subsumption hash over tidsets to emit only closed sets.
//
// Like all column-enumeration miners, its search space grows with the
// number of distinct items per row — the dimension that explodes on
// microarray data. That asymmetry versus FARMER's row enumeration is the
// paper's headline result.
package charm

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedSet is one closed itemset and its absolute row support.
type ClosedSet struct {
	Items   []dataset.Item // ascending
	Support int
	Rows    *bitset.Set // tidset
}

// Options configures a CHARM run.
type Options struct {
	// MinSup is the minimum absolute row support. Must be ≥ 1.
	MinSup int

	// MaxNodes, when > 0, bounds the WORK done: enumeration nodes plus
	// subsumption comparisons. The harness uses it to bound baseline runs
	// the way the paper reports "did not finish". The error returned is
	// ErrBudget.
	MaxNodes int64

	// OnClosed, when non-nil, switches the canonical entry point
	// (farmer.RunCHARM) to streaming emission: each closed set is
	// delivered as soon as it survives subsumption, in discovery order,
	// and the result accumulates no Closed sets. Ignored by the low-level
	// Mine* functions, which take their callback as an argument.
	OnClosed func(ClosedSet) error

	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset: the run takes its root tidsets from the snapshot's shared
	// per-item row bitsets instead of rebuilding them. The snapshot must
	// have been built from the exact *Dataset passed to the mining call.
	Prepared *dataset.Snapshot
}

// ErrBudget reports that the node budget was exhausted before completion.
var ErrBudget = fmt.Errorf("charm: node budget exhausted")

// Result carries the mined closed sets and search statistics. Nodes keeps
// the legacy work-unit count (enumeration nodes plus subsumption
// comparisons — the quantity MaxNodes bounds); Stats carries the engine's
// unified counters, where NodesVisited counts enumeration nodes only.
type Result struct {
	Closed []ClosedSet
	Nodes  int64

	stats engine.Stats
}

// Stats returns the engine's unified run statistics.
func (r *Result) Stats() engine.Stats { return r.stats }

// Count returns the number of closed sets in the batch result.
func (r *Result) Count() int { return len(r.Closed) }

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// enumeration node, so a cancelled run stops within one node expansion.
// On cancellation it returns ctx.Err() with a non-nil Result carrying the
// partial statistics and the closed sets already emitted. (Budget
// exhaustion keeps its legacy convention: ErrBudget with a nil Result.)
func MineContext(ctx context.Context, d *dataset.Dataset, opt Options) (*Result, error) {
	var out []ClosedSet
	res, err := MineStream(ctx, d, opt, func(c ClosedSet) error {
		out = append(out, c)
		return nil
	})
	if res != nil {
		sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Items, out[j].Items) })
		res.Closed = out
	}
	return res, err
}

// MineStream is the streaming form of Mine: each closed set is delivered
// to onClosed the moment its subsumption check passes — final immediately,
// since CHARM never retracts an emitted set — in discovery (post-order)
// rather than Mine's sorted order. A callback error aborts the run and is
// returned verbatim; after cancellation no further sets are delivered.
func MineStream(ctx context.Context, d *dataset.Dataset, opt Options, onClosed func(ClosedSet) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("charm: MinSup must be >= 1, got %d", opt.MinSup)
	}
	snap := opt.Prepared
	if snap != nil && snap.Dataset() != d {
		return nil, fmt.Errorf("charm: Prepared snapshot was built from a different dataset")
	}
	if snap == nil {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	ex := engine.NewExec(ctx)
	m := &miner{d: d, opt: opt, ex: ex, emit: onClosed, subsume: map[uint64][]ClosedSet{}}

	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	var nodes []itPair
	if snap != nil {
		// Root tidsets come from the snapshot's shared bitsets; the
		// enumeration only reads them (children are arena intersections,
		// emission clones), so sharing across concurrent runs is safe.
		ex.Stats.PrepareReused++
		for it, rows := range snap.ItemRows() {
			if rows == nil || rows.Count() < opt.MinSup {
				continue
			}
			nodes = append(nodes, itPair{items: []dataset.Item{dataset.Item(it)}, tids: rows})
		}
	} else {
		tt := dataset.Transpose(d)
		n := len(d.Rows)
		for it, list := range tt.Lists {
			if len(list) < opt.MinSup {
				continue
			}
			tid := bitset.New(n)
			for _, r := range list {
				tid.Set(int(r))
			}
			nodes = append(nodes, itPair{items: []dataset.Item{dataset.Item(it)}, tids: tid})
		}
	}
	// Process in increasing support order (the f ordering of the paper).
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := nodes[i].tids.Count(), nodes[j].tids.Count()
		if si != sj {
			return si < sj
		}
		return nodes[i].items[0] < nodes[j].items[0]
	})
	setupDone()

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	err := m.extend(nodes)
	searchDone()
	if err == ErrBudget {
		return nil, err
	}
	ex.Stats.ArenaBytes = m.ar.Bytes() + m.items.SizeBytes() + m.pairs.SizeBytes()
	return &Result{Nodes: m.nodes, stats: ex.Stats}, err
}

type itPair struct {
	items []dataset.Item // the extension items beyond the inherited prefix
	tids  *bitset.Set
	sup   int  // cached tidset count (sort key)
	dead  bool // removed by property 1
}

type miner struct {
	d       *dataset.Dataset
	opt     Options
	ex      *engine.Exec
	emit    func(ClosedSet) error
	subsume map[uint64][]ClosedSet // tidset hash -> emitted sets
	nodes   int64

	// Per-node scratch: child tidsets, item unions, and the child pair
	// headers all live on arenas marked at node entry and released on
	// unwind, so the intersection step stops allocating once the slabs
	// reach their high-water size. Emitted sets are cloned off the arena
	// in maybeEmit.
	ar    bitset.Arena
	items engine.Slab[dataset.Item]
	pairs engine.Slab[itPair]
}

// extend is CHARM-EXTEND over one sibling group.
func (m *miner) extend(nodes []itPair) error {
	for i := range nodes {
		if nodes[i].dead {
			continue
		}
		if err := m.ex.EnterNode(); err != nil {
			return err
		}
		m.nodes++
		if m.opt.MaxNodes > 0 && m.nodes > m.opt.MaxNodes {
			return ErrBudget
		}
		amark := m.ar.Mark()
		imark := m.items.Mark()
		pmark := m.pairs.Mark()
		x, children := m.buildChildren(nodes, i)
		err := m.extend(children)
		if err == nil {
			err = m.maybeEmit(x, nodes[i].tids)
		}
		m.pairs.Release(pmark)
		m.items.Release(imark)
		m.ar.Release(amark)
		if err != nil {
			return err
		}
	}
	return nil
}

// buildChildren is the intersection step of CHARM-EXTEND for nodes[i]: it
// applies the four tidset-containment properties against every later
// sibling and returns the (possibly property-extended) itemset X together
// with the surviving children, support-ordered. Everything it returns
// lives on the miner's arenas under the caller's marks.
func (m *miner) buildChildren(nodes []itPair, i int) ([]dataset.Item, []itPair) {
	x := m.items.Alloc(len(nodes[i].items))
	copy(x, nodes[i].items)
	xt := nodes[i].tids
	children := m.pairs.Alloc(len(nodes) - i - 1)[:0]
	for j := i + 1; j < len(nodes); j++ {
		if nodes[j].dead {
			continue
		}
		// Count the intersection first; a tidset is materialized only for
		// genuine children that survive the support check.
		sup := xt.AndCount(nodes[j].tids)
		if sup < m.opt.MinSup {
			m.ex.Stats.PrunedTightBound++
			continue
		}
		switch {
		case xt.Equal(nodes[j].tids):
			// Property 1: merge j into i, drop j.
			x = m.mergeItems(x, nodes[j].items)
			nodes[j].dead = true
			m.ex.Stats.RowsAbsorbed++
		case xt.SubsetOf(nodes[j].tids):
			// Property 2: every occurrence of X is one of Xj.
			x = m.mergeItems(x, nodes[j].items)
			m.ex.Stats.RowsAbsorbed++
		default:
			// Properties 3 and 4: a genuine child. The extension items are
			// borrowed from the sibling until the prefix union below.
			children = append(children, itPair{items: nodes[j].items, tids: m.ar.And(xt, nodes[j].tids), sup: sup})
		}
	}
	// Children inherit the (possibly property-extended) prefix X, which is
	// final only now — properties 1/2 may extend it after a child was cut.
	for c := range children {
		children[c].items = m.mergeItems(x, children[c].items)
	}
	slices.SortStableFunc(children, func(a, b itPair) int {
		if a.sup != b.sup {
			return a.sup - b.sup
		}
		return cmpItems(a.items, b.items)
	})
	return x, children
}

// maybeEmit delivers X unless it is subsumed by an already-closed set with
// the same tidset. Emission decisions are final: the subsumption store only
// grows, so a delivered set is never retracted.
func (m *miner) maybeEmit(items []dataset.Item, tids *bitset.Set) error {
	if err := m.ex.Err(); err != nil {
		return err // no deliveries after cancellation, even on unwind
	}
	sorted := append([]dataset.Item(nil), items...)
	slices.Sort(sorted)
	h := tids.Hash()
	for _, c := range m.subsume[h] {
		m.nodes++ // comparisons count toward the work budget
		if c.Rows.Equal(tids) && containsAll(c.Items, sorted) {
			m.ex.Stats.GroupsNotInterest++
			return nil // subsumed: same rows, superset items
		}
	}
	cs := ClosedSet{Items: sorted, Support: tids.Count(), Rows: tids.Clone()}
	m.subsume[h] = append(m.subsume[h], cs)
	m.ex.Stats.GroupsEmitted++
	if m.emit != nil {
		return m.emit(cs)
	}
	return nil
}

// mergeItems returns the sorted union of two sorted item slices, allocated
// on the items slab (both inputs stay valid; the old a leaks until the
// node's release, which the stack discipline bounds by tree depth).
func (m *miner) mergeItems(a, b []dataset.Item) []dataset.Item {
	out := m.items.Alloc(len(a) + len(b))
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out[k] = a[i]
			i++
		case a[i] > b[j]:
			out[k] = b[j]
			j++
		default:
			out[k] = a[i]
			i, j = i+1, j+1
		}
		k++
	}
	k += copy(out[k:], a[i:])
	k += copy(out[k:], b[j:])
	return out[:k]
}

// containsAll reports whether sorted slice a contains every element of
// sorted slice b.
func containsAll(a, b []dataset.Item) bool {
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			return false
		}
		i++
	}
	return true
}

func lessItems(a, b []dataset.Item) bool { return cmpItems(a, b) < 0 }

// cmpItems orders item slices lexicographically, shorter-first on ties.
func cmpItems(a, b []dataset.Item) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return len(a) - len(b)
}
