// Package charm implements CHARM (Zaki & Hsiao, SDM 2002), the closed-
// itemset miner FARMER is benchmarked against in Figures 10–11. CHARM
// enumerates the column (itemset) space over itemset–tidset pairs, using
// the four tidset-containment properties to collapse equivalent branches
// and a subsumption hash over tidsets to emit only closed sets.
//
// Like all column-enumeration miners, its search space grows with the
// number of distinct items per row — the dimension that explodes on
// microarray data. That asymmetry versus FARMER's row enumeration is the
// paper's headline result.
package charm

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedSet is one closed itemset and its absolute row support.
type ClosedSet struct {
	Items   []dataset.Item // ascending
	Support int
	Rows    *bitset.Set // tidset
}

// Options configures a CHARM run.
type Options struct {
	// MinSup is the minimum absolute row support. Must be ≥ 1.
	MinSup int

	// MaxNodes, when > 0, bounds the WORK done: enumeration nodes plus
	// subsumption comparisons. The harness uses it to bound baseline runs
	// the way the paper reports "did not finish". The error returned is
	// ErrBudget.
	MaxNodes int64
}

// ErrBudget reports that the node budget was exhausted before completion.
var ErrBudget = fmt.Errorf("charm: node budget exhausted")

// Result carries the mined closed sets and search statistics. Nodes keeps
// the legacy work-unit count (enumeration nodes plus subsumption
// comparisons — the quantity MaxNodes bounds); Stats carries the engine's
// unified counters, where NodesVisited counts enumeration nodes only.
type Result struct {
	Closed []ClosedSet
	Nodes  int64
	Stats  engine.Stats
}

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// enumeration node, so a cancelled run stops within one node expansion.
// On cancellation it returns ctx.Err() with a non-nil Result carrying the
// partial statistics and the closed sets already emitted. (Budget
// exhaustion keeps its legacy convention: ErrBudget with a nil Result.)
func MineContext(ctx context.Context, d *dataset.Dataset, opt Options) (*Result, error) {
	var out []ClosedSet
	res, err := MineStream(ctx, d, opt, func(c ClosedSet) error {
		out = append(out, c)
		return nil
	})
	if res != nil {
		sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Items, out[j].Items) })
		res.Closed = out
	}
	return res, err
}

// MineStream is the streaming form of Mine: each closed set is delivered
// to onClosed the moment its subsumption check passes — final immediately,
// since CHARM never retracts an emitted set — in discovery (post-order)
// rather than Mine's sorted order. A callback error aborts the run and is
// returned verbatim; after cancellation no further sets are delivered.
func MineStream(ctx context.Context, d *dataset.Dataset, opt Options, onClosed func(ClosedSet) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("charm: MinSup must be >= 1, got %d", opt.MinSup)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ex := engine.NewExec(ctx)
	m := &miner{d: d, opt: opt, ex: ex, emit: onClosed, subsume: map[uint64][]ClosedSet{}}

	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	tt := dataset.Transpose(d)
	n := len(d.Rows)
	var nodes []itPair
	for it, list := range tt.Lists {
		if len(list) < opt.MinSup {
			continue
		}
		tid := bitset.New(n)
		for _, r := range list {
			tid.Set(int(r))
		}
		nodes = append(nodes, itPair{items: []dataset.Item{dataset.Item(it)}, tids: tid})
	}
	// Process in increasing support order (the f ordering of the paper).
	sort.SliceStable(nodes, func(i, j int) bool {
		si, sj := nodes[i].tids.Count(), nodes[j].tids.Count()
		if si != sj {
			return si < sj
		}
		return nodes[i].items[0] < nodes[j].items[0]
	})
	setupDone()

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	err := m.extend(nodes)
	searchDone()
	if err == ErrBudget {
		return nil, err
	}
	return &Result{Nodes: m.nodes, Stats: ex.Stats}, err
}

type itPair struct {
	items []dataset.Item // the extension items beyond the inherited prefix
	tids  *bitset.Set
	dead  bool // removed by property 1
}

type miner struct {
	d       *dataset.Dataset
	opt     Options
	ex      *engine.Exec
	emit    func(ClosedSet) error
	subsume map[uint64][]ClosedSet // tidset hash -> emitted sets
	nodes   int64
}

// extend is CHARM-EXTEND over one sibling group.
func (m *miner) extend(nodes []itPair) error {
	for i := range nodes {
		if nodes[i].dead {
			continue
		}
		if err := m.ex.EnterNode(); err != nil {
			return err
		}
		m.nodes++
		if m.opt.MaxNodes > 0 && m.nodes > m.opt.MaxNodes {
			return ErrBudget
		}
		x := append([]dataset.Item(nil), nodes[i].items...)
		xt := nodes[i].tids
		var children []itPair
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j].dead {
				continue
			}
			// Count the intersection first; a tidset is allocated only for
			// genuine children that survive the support check.
			if xt.AndCount(nodes[j].tids) < m.opt.MinSup {
				m.ex.Stats.PrunedTightBound++
				continue
			}
			switch {
			case xt.Equal(nodes[j].tids):
				// Property 1: merge j into i, drop j.
				x = mergeItems(x, nodes[j].items)
				nodes[j].dead = true
				m.ex.Stats.RowsAbsorbed++
			case xt.SubsetOf(nodes[j].tids):
				// Property 2: every occurrence of X is one of Xj.
				x = mergeItems(x, nodes[j].items)
				m.ex.Stats.RowsAbsorbed++
			default:
				// Properties 3 and 4: a genuine child.
				inter := xt.Clone()
				inter.And(nodes[j].tids)
				children = append(children, itPair{items: append([]dataset.Item(nil), nodes[j].items...), tids: inter})
			}
		}
		// Children inherit the (possibly property-extended) prefix X.
		for c := range children {
			children[c].items = mergeItems(x, children[c].items)
		}
		sort.SliceStable(children, func(a, b int) bool {
			sa, sb := children[a].tids.Count(), children[b].tids.Count()
			if sa != sb {
				return sa < sb
			}
			return lessItems(children[a].items, children[b].items)
		})
		if err := m.extend(children); err != nil {
			return err
		}
		if err := m.maybeEmit(x, xt); err != nil {
			return err
		}
	}
	return nil
}

// maybeEmit delivers X unless it is subsumed by an already-closed set with
// the same tidset. Emission decisions are final: the subsumption store only
// grows, so a delivered set is never retracted.
func (m *miner) maybeEmit(items []dataset.Item, tids *bitset.Set) error {
	if err := m.ex.Err(); err != nil {
		return err // no deliveries after cancellation, even on unwind
	}
	sorted := append([]dataset.Item(nil), items...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	h := tids.Hash()
	for _, c := range m.subsume[h] {
		m.nodes++ // comparisons count toward the work budget
		if c.Rows.Equal(tids) && containsAll(c.Items, sorted) {
			m.ex.Stats.GroupsNotInterest++
			return nil // subsumed: same rows, superset items
		}
	}
	cs := ClosedSet{Items: sorted, Support: tids.Count(), Rows: tids.Clone()}
	m.subsume[h] = append(m.subsume[h], cs)
	m.ex.Stats.GroupsEmitted++
	if m.emit != nil {
		return m.emit(cs)
	}
	return nil
}

// mergeItems returns the sorted union of two item slices.
func mergeItems(a, b []dataset.Item) []dataset.Item {
	out := make([]dataset.Item, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dst := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dst = append(dst, v)
		}
	}
	return dst
}

// containsAll reports whether sorted slice a contains every element of
// sorted slice b.
func containsAll(a, b []dataset.Item) bool {
	i := 0
	for _, x := range b {
		for i < len(a) && a[i] < x {
			i++
		}
		if i >= len(a) || a[i] != x {
			return false
		}
		i++
	}
	return true
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
