package charm

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// The intersection step must be allocation-free at steady state: child
// tidsets come from the bitset arena, item unions and pair headers from
// the slabs, all released on unwind. One warm pass grows the slabs to
// their high-water size; after that buildChildren must not touch the heap.
func TestBuildChildrenSteadyStateZeroAllocs(t *testing.T) {
	d := dataset.PaperExample()
	tt := dataset.Transpose(d)
	n := len(d.Rows)
	m := &miner{d: d, opt: Options{MinSup: 1}, ex: engine.NewExec(nil), subsume: map[uint64][]ClosedSet{}}
	var nodes []itPair
	for it, list := range tt.Lists {
		tid := bitset.New(n)
		for _, r := range list {
			tid.Set(int(r))
		}
		nodes = append(nodes, itPair{items: []dataset.Item{dataset.Item(it)}, tids: tid})
	}
	cycle := func() {
		amark := m.ar.Mark()
		imark := m.items.Mark()
		pmark := m.pairs.Mark()
		x, children := m.buildChildren(nodes, 0)
		if len(x) == 0 {
			t.Fatal("buildChildren returned empty itemset")
		}
		_ = children
		m.pairs.Release(pmark)
		m.items.Release(imark)
		m.ar.Release(amark)
		for j := range nodes {
			nodes[j].dead = false // property 1 marks siblings; reset for the next run
		}
	}
	cycle() // warm the slabs
	if got := testing.AllocsPerRun(20, cycle); got != 0 {
		t.Fatalf("steady-state buildChildren allocates %v times, want 0", got)
	}
}
