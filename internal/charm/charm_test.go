package charm

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
)

func closedKeys(cs []ClosedSet) []string {
	keys := make([]string, len(cs))
	for i, c := range cs {
		keys[i] = fmt.Sprintf("%v|%d", c.Items, c.Support)
	}
	sort.Strings(keys)
	return keys
}

func refClosedKeys(items [][]dataset.Item, sups []int) []string {
	keys := make([]string, len(items))
	for i := range items {
		keys[i] = fmt.Sprintf("%v|%d", items[i], sups[i])
	}
	sort.Strings(keys)
	return keys
}

func TestPaperExampleClosedSets(t *testing.T) {
	d := dataset.PaperExample()
	for _, minsup := range []int{1, 2, 3, 4} {
		res, err := Mine(d, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		items, sups := reference.ClosedSets(d, minsup)
		if got, want := closedKeys(res.Closed), refClosedKeys(items, sups); !reflect.DeepEqual(got, want) {
			t.Fatalf("minsup=%d:\n got %v\nwant %v", minsup, got, want)
		}
	}
}

// The closed sets of Figure 3's node labels must all be found at minsup 1:
// e.g. I({2,3}) = aeh with support 3 (rows 2,3,4).
func TestPaperExampleSpecificClosedSets(t *testing.T) {
	d := dataset.PaperExample()
	res, err := Mine(d, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"aeh": 3, "a": 4, "al": 2, "aco": 2, "aehpr": 2}
	for _, c := range res.Closed {
		key := dataset.StringFromItems(c.Items)
		if sup, ok := want[key]; ok {
			if c.Support != sup {
				t.Errorf("closed %s support = %d, want %d", key, c.Support, sup)
			}
			delete(want, key)
		}
	}
	for k := range want {
		t.Errorf("closed set %s missing", k)
	}
}

func TestRowsFieldIsSupportSet(t *testing.T) {
	d := dataset.PaperExample()
	res, err := Mine(d, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Closed {
		want := dataset.SupportSet(d, c.Items)
		if !c.Rows.Equal(want) {
			t.Fatalf("closed %v rows %v != R = %v", c.Items, c.Rows, want)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Mine(dataset.PaperExample(), Options{MinSup: 0}); err == nil {
		t.Fatal("MinSup 0 accepted")
	}
}

func TestBudgetAbort(t *testing.T) {
	d := dataset.PaperExample()
	_, err := Mine(d, Options{MinSup: 1, MaxNodes: 2})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestEmptyDataset(t *testing.T) {
	d := &dataset.Dataset{ClassNames: []string{"x"}}
	res, err := Mine(d, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Closed) != 0 {
		t.Fatal("closed sets from empty dataset")
	}
}

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 2 + rng.Intn(8)
	numItems := 3 + rng.Intn(8)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"only"})
	if err != nil {
		panic(err)
	}
	return d
}

// Property: CHARM equals the brute-force closed-set oracle.
func TestPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 250; iter++ {
		d := randomDataset(rng)
		minsup := 1 + rng.Intn(3)
		res, err := Mine(d, Options{MinSup: minsup})
		if err != nil {
			t.Fatal(err)
		}
		items, sups := reference.ClosedSets(d, minsup)
		if got, want := closedKeys(res.Closed), refClosedKeys(items, sups); !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d minsup=%d:\n got %v\nwant %v\nrows %+v", iter, minsup, got, want, d.Rows)
		}
	}
}
