package plan

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestIndexSubtaskRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 50} {
		want := int64(0)
		for r1 := 0; r1 < n; r1++ {
			if got := RootBase(n, r1); got != want {
				t.Fatalf("RootBase(%d,%d)=%d want %d", n, r1, got, want)
			}
			for r2 := r1; r2 < n; r2++ {
				idx := Index(n, r1, r2)
				if idx != want {
					t.Fatalf("Index(%d,%d,%d)=%d want %d", n, r1, r2, idx, want)
				}
				gr1, gr2 := Subtask(n, idx)
				if gr1 != r1 || gr2 != r2 {
					t.Fatalf("Subtask(%d,%d)=(%d,%d) want (%d,%d)", n, idx, gr1, gr2, r1, r2)
				}
				want++
			}
		}
		if Total(n) != want {
			t.Fatalf("Total(%d)=%d want %d", n, Total(n), want)
		}
	}
}

func TestSpansEnumerateSubtasks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		total := Total(n)
		start := rng.Int63n(total + 1)
		end := start + rng.Int63n(total-start+1)
		p := Partition{N: n, Start: start, End: end}

		var got []int64
		p.Spans(func(s Span) bool {
			if s.R1 > s.Lo || s.Lo >= s.Hi || s.Hi > n {
				t.Fatalf("bad span %+v in %+v", s, p)
			}
			for r2 := s.Lo; r2 < s.Hi; r2++ {
				got = append(got, Index(n, s.R1, r2))
			}
			return true
		})
		if int64(len(got)) != p.Len() {
			t.Fatalf("spans of %+v yielded %d subtasks, want %d", p, len(got), p.Len())
		}
		for i, idx := range got {
			if idx != start+int64(i) {
				t.Fatalf("spans of %+v: subtask %d is index %d, want %d", p, i, idx, start+int64(i))
			}
		}
	}
}

// TestSplitSequenceCoversUniverseExactlyOnce is the partition-layer
// invariant the cluster rests on: any sequence of Split/SplitAt/SplitN
// applied to the universe yields leaves that cover it exactly once — no
// gap, no overlap — regardless of the split tree's shape or the order the
// leaves arrive.
func TestSplitSequenceCoversUniverseExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(40) // including n == 0
		work := []Partition{Universe(n)}
		var leaves []Partition
		for len(work) > 0 {
			// Pop a random element to randomize the tree shape.
			i := rng.Intn(len(work))
			p := work[i]
			work[i] = work[len(work)-1]
			work = work[:len(work)-1]

			if p.Len() <= 1 || rng.Intn(4) == 0 {
				leaves = append(leaves, p)
				continue
			}
			switch rng.Intn(3) {
			case 0:
				a, b := p.Split()
				work = append(work, a, b)
			case 1:
				at := p.Start + rng.Int63n(p.Len()+1)
				a, b := p.SplitAt(at)
				work = append(work, a, b)
			default:
				work = append(work, p.SplitN(1+rng.Intn(5))...)
			}
		}
		rng.Shuffle(len(leaves), func(i, j int) { leaves[i], leaves[j] = leaves[j], leaves[i] })

		cov := NewCoverage(n)
		for _, p := range leaves {
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d: invalid leaf %+v: %v", n, p, err)
			}
			if err := cov.Add(p); err != nil {
				t.Fatalf("n=%d: overlap among split leaves: %v", n, err)
			}
		}
		if !cov.Done() {
			t.Fatalf("n=%d: split leaves leave gaps: missing %+v", n, cov.Missing())
		}
	}
}

// TestConcurrentClaimsCoverExactlyOnce drives RootSource and SpanSource
// from many goroutines under -race: the claimed partitions must still
// tile the region exactly once.
func TestConcurrentClaimsCoverExactlyOnce(t *testing.T) {
	const workers = 8
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)

		sources := map[string]struct {
			src Source
			cov *Coverage
		}{
			"root": {NewRootSource(n), NewCoverage(n)},
		}
		// SpanSource covers an arbitrary sub-slice; use a sub-ledger
		// trick: cover the complement up front, claims must fill the rest.
		total := Total(n)
		start := rng.Int63n(total + 1)
		end := start + rng.Int63n(total-start+1)
		spanCov := NewCoverage(n)
		if err := spanCov.Add(Partition{N: n, Start: 0, End: start}); err != nil {
			t.Fatal(err)
		}
		if err := spanCov.Add(Partition{N: n, Start: end, End: total}); err != nil {
			t.Fatal(err)
		}
		sources["span"] = struct {
			src Source
			cov *Coverage
		}{NewSpanSource(Partition{N: n, Start: start, End: end}), spanCov}

		for name, s := range sources {
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						p, ok := s.src.Claim()
						if !ok {
							return
						}
						if err := s.cov.Add(p); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatalf("%s source, n=%d: double claim: %v", name, n, err)
			}
			if !s.cov.Done() {
				t.Fatalf("%s source, n=%d: claims incomplete, missing %+v", name, n, s.cov.Missing())
			}
		}
	}
}

func TestCoverageRejectsOverlapAndForeignUniverse(t *testing.T) {
	cov := NewCoverage(10)
	if err := cov.Add(Partition{N: 10, Start: 5, End: 20}); err != nil {
		t.Fatal(err)
	}
	if err := cov.Add(Partition{N: 10, Start: 19, End: 25}); err == nil {
		t.Fatal("want overlap error")
	}
	if err := cov.Add(Partition{N: 9, Start: 0, End: 1}); err == nil {
		t.Fatal("want foreign-universe error")
	}
	if err := cov.Add(Partition{N: 10, Start: 50, End: 56}); err == nil {
		t.Fatal("want out-of-universe error (Total(10)=55)")
	}
	if cov.Done() {
		t.Fatal("partially covered ledger reports Done")
	}
	missing := cov.Missing()
	if len(missing) != 2 || missing[0] != (Partition{N: 10, Start: 0, End: 5}) ||
		missing[1] != (Partition{N: 10, Start: 20, End: 55}) {
		t.Fatalf("Missing() = %+v", missing)
	}
}

func TestEncodingRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(1000)
		total := Total(n)
		start := rng.Int63n(total + 1)
		p := Partition{N: n, Start: start, End: start + rng.Int63n(total-start+1)}

		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON Partition
		if err := json.Unmarshal(data, &viaJSON); err != nil {
			t.Fatal(err)
		}
		if viaJSON != p {
			t.Fatalf("json round trip: got %+v want %+v", viaJSON, p)
		}

		viaBin, rest, err := DecodeBinary(p.AppendBinary(nil))
		if err != nil {
			t.Fatal(err)
		}
		if viaBin != p || len(rest) != 0 {
			t.Fatalf("binary round trip: got %+v rest=%d want %+v", viaBin, len(rest), p)
		}
	}
	if _, _, err := DecodeBinary([]byte{0x80}); err == nil {
		t.Fatal("want error on truncated input")
	}
}

func TestSplitNShapesLeases(t *testing.T) {
	p := Universe(100) // 5050 subtasks
	chunks := p.SplitN(7)
	if len(chunks) != 7 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	cov := NewCoverage(100)
	for _, c := range chunks {
		if c.Len() < p.Len()/7 || c.Len() > p.Len()/7+1 {
			t.Fatalf("uneven chunk %+v (len %d)", c, c.Len())
		}
		if err := cov.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if !cov.Done() {
		t.Fatal("chunks do not cover universe")
	}
	if got := (Partition{N: 4, Start: 0, End: 3}).SplitN(10); len(got) != 3 {
		t.Fatalf("SplitN beyond Len: got %d chunks", len(got))
	}
	if got := (Partition{N: 4, Start: 2, End: 2}).SplitN(3); got != nil {
		t.Fatalf("SplitN of empty: got %+v", got)
	}
}
