package plan

import "sync/atomic"

// Source hands out disjoint partitions of some region of the universe
// until it is exhausted. Claim must be safe for concurrent use; the
// partitions returned across all claimants are pairwise disjoint and
// together cover exactly the source's region.
type Source interface {
	Claim() (Partition, bool)
}

// SizedSource is a Source that also knows the exact number of subtasks
// its claims will cover. Schedulers use it for termination detection: a
// worker finding no work cannot exit until every claimed subtask has been
// executed, because stealable halves may still sit in other workers'
// deques.
type SizedSource interface {
	Source
	Size() int64
}

// RootSource deals the universe of an n-row dataset one root at a time —
// the in-process generator behind MineParallel. Handing out whole roots
// (not fixed-size chunks) keeps the cheap deep-r1 tail coalesced while the
// expensive early roots are split further by the consumer's own
// work-stealing; this is exactly the atomic next-root counter the
// scheduler used before the partition layer existed.
type RootSource struct {
	n    int
	next atomic.Int64
}

// NewRootSource returns a RootSource over the n-row universe.
func NewRootSource(n int) *RootSource {
	return &RootSource{n: n}
}

// Size returns the universe size Total(n).
func (s *RootSource) Size() int64 { return Total(s.n) }

// Claim returns the next unclaimed root's partition.
func (s *RootSource) Claim() (Partition, bool) {
	r1 := s.next.Add(1) - 1
	if r1 >= int64(s.n) {
		return Partition{}, false
	}
	return Root(s.n, int(r1)), true
}

// SpanSource deals out one leased partition root-span by root-span — how a
// cluster worker feeds its local work-stealing scheduler from the slice of
// the universe it holds a lease on. Spans never straddle roots, so the
// consumer's singleton/pair execution logic is identical to the
// whole-universe case.
type SpanSource struct {
	p   Partition
	idx atomic.Int64
}

// NewSpanSource returns a SpanSource over partition p.
func NewSpanSource(p Partition) *SpanSource {
	s := &SpanSource{p: p}
	s.idx.Store(p.Start)
	return s
}

// Size returns the leased partition's subtask count.
func (s *SpanSource) Size() int64 { return s.p.Len() }

// Claim returns the next unclaimed single-root span of the partition.
func (s *SpanSource) Claim() (Partition, bool) {
	for {
		idx := s.idx.Load()
		if idx >= s.p.End {
			return Partition{}, false
		}
		r1 := RootOf(s.p.N, idx)
		end := RootBase(s.p.N, r1+1)
		if end > s.p.End {
			end = s.p.End
		}
		if s.idx.CompareAndSwap(idx, end) {
			return Partition{N: s.p.N, Start: idx, End: end}, true
		}
	}
}
