// Package plan is the explicit form of FARMER's enumeration-task universe:
// the set of depth-2 subtasks the parallel row miner executes, lifted out of
// the in-process scheduler so that every consumer — the work-stealing deques
// inside one process and the cluster coordinator leasing work to farmerd
// nodes — speaks the same, serializable vocabulary.
//
// For a dataset of N rows (in ORD order) the universe is the triangle
//
//	U(N) = { (r1, r2) : 0 <= r1 <= r2 < N }
//
// where (r1, r1) is the emission-only singleton task of root r1 and
// (r1, r2), r2 > r1, is the full subtree task of node {r1, r2} (see
// core/parallel.go for why depth-2 granularity balances the left-heavy
// tree). Subtasks are linearized root-major:
//
//	index(r1, r2) = RootBase(N, r1) + (r2 - r1)
//
// so the whole universe is the half-open interval [0, Total(N)) and a
// Partition is nothing more than a contiguous slice of it. That makes the
// three operations every scheduler needs trivial and composable:
//
//   - split anywhere (halves for work-stealing, k chunks for a cluster),
//   - serialize (two integers plus the universe size),
//   - audit coverage (intervals partition [0, Total) exactly once iff
//     there is no gap and no overlap — see Coverage).
//
// The subtask set is fixed by N alone; partitioning only changes how the
// set is distributed. Every counter in engine.Counters is a sum over
// executed subtasks, so merged statistics are byte-identical across any
// split sequence, worker count, schedule, or cluster topology.
package plan

import (
	"encoding/binary"
	"fmt"
)

// Total returns the number of subtasks in the universe of an n-row
// dataset: n singletons plus n(n-1)/2 pairs.
func Total(n int) int64 {
	return int64(n) * int64(n+1) / 2
}

// RootBase returns the linear index of subtask (r1, r1), the first subtask
// of root r1: the whole triangle above it has n + (n-1) + ... + (n-r1+1)
// subtasks.
func RootBase(n, r1 int) int64 {
	return int64(r1)*int64(n) - int64(r1)*int64(r1-1)/2
}

// RootOf returns the root r1 whose span contains linear index idx, by
// binary search over the monotone RootBase.
func RootOf(n int, idx int64) int {
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi+1) >> 1)
		if RootBase(n, mid) <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Index returns the linear index of subtask (r1, r2), r1 <= r2 < n.
func Index(n, r1, r2 int) int64 {
	return RootBase(n, r1) + int64(r2-r1)
}

// Subtask inverts Index: the (r1, r2) pair at linear index idx.
func Subtask(n int, idx int64) (r1, r2 int) {
	r1 = RootOf(n, idx)
	return r1, r1 + int(idx-RootBase(n, r1))
}

// Partition is a contiguous, half-open slice [Start, End) of the
// linearized enumeration-task universe of an N-row dataset. The zero value
// is an empty partition. Partitions are plain values: JSON-encodable for
// the cluster wire, binary-encodable for compact ledgers, splittable at
// any interior point, and cheap to copy into scheduler deques.
type Partition struct {
	N     int   `json:"n"`
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

// Universe returns the partition covering every subtask of an n-row
// dataset.
func Universe(n int) Partition {
	return Partition{N: n, Start: 0, End: Total(n)}
}

// Root returns the partition covering exactly the subtasks of root r1 —
// what the in-process generator hands out one at a time.
func Root(n, r1 int) Partition {
	return Partition{N: n, Start: RootBase(n, r1), End: RootBase(n, r1+1)}
}

// Len returns the number of subtasks in the partition.
func (p Partition) Len() int64 {
	if p.End <= p.Start {
		return 0
	}
	return p.End - p.Start
}

// Empty reports whether the partition covers no subtasks.
func (p Partition) Empty() bool { return p.End <= p.Start }

// Validate checks that the partition lies inside its universe.
func (p Partition) Validate() error {
	switch {
	case p.N < 0:
		return fmt.Errorf("plan: negative universe size %d", p.N)
	case p.Start < 0 || p.End < p.Start || p.End > Total(p.N):
		return fmt.Errorf("plan: partition [%d,%d) outside universe [0,%d) of n=%d",
			p.Start, p.End, Total(p.N), p.N)
	}
	return nil
}

// Split halves the partition: [Start, mid) and [mid, End). Splitting an
// empty or single-subtask partition returns it unchanged plus an empty
// second half.
func (p Partition) Split() (Partition, Partition) {
	if p.Len() < 2 {
		return p, Partition{N: p.N, Start: p.End, End: p.End}
	}
	mid := p.Start + p.Len()/2
	return p.SplitAt(mid)
}

// SplitAt cuts the partition at linear index at (clamped to [Start, End]),
// returning [Start, at) and [at, End).
func (p Partition) SplitAt(at int64) (Partition, Partition) {
	if at < p.Start {
		at = p.Start
	}
	if at > p.End {
		at = p.End
	}
	return Partition{N: p.N, Start: p.Start, End: at}, Partition{N: p.N, Start: at, End: p.End}
}

// SplitN cuts the partition into at most k near-equal contiguous chunks
// (fewer when the partition has fewer subtasks), covering it exactly. The
// cluster coordinator uses it to shape leases.
func (p Partition) SplitN(k int) []Partition {
	if k < 1 {
		k = 1
	}
	if int64(k) > p.Len() {
		k = int(p.Len())
	}
	if k <= 1 {
		if p.Empty() {
			return nil
		}
		return []Partition{p}
	}
	out := make([]Partition, 0, k)
	rest := p
	for i := k; i > 1; i-- {
		var head Partition
		head, rest = rest.SplitAt(rest.Start + rest.Len()/int64(i))
		out = append(out, head)
	}
	return append(out, rest)
}

// Span is a maximal single-root run of subtasks inside a partition: root
// R1 with r2 ranging over [Lo, Hi). Lo == R1 means the span includes the
// root's singleton task.
type Span struct {
	R1     int
	Lo, Hi int
}

// Spans calls yield for each single-root span of the partition, in order,
// stopping early when yield returns false. It allocates nothing, so the
// scheduler hot path can walk partitions freely.
func (p Partition) Spans(yield func(s Span) bool) {
	if p.Empty() {
		return
	}
	idx := p.Start
	r1 := RootOf(p.N, idx)
	for idx < p.End {
		base := RootBase(p.N, r1)
		lo := r1 + int(idx-base)
		hi := r1 + int(minI64(p.End, RootBase(p.N, r1+1))-base)
		if !yield(Span{R1: r1, Lo: lo, Hi: hi}) {
			return
		}
		idx = RootBase(p.N, r1+1)
		r1++
	}
}

// AppendBinary appends the partition's compact binary form (three varints)
// to dst — the ledger/lease encoding used on the cluster wire next to the
// JSON form.
func (p Partition) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.N))
	dst = binary.AppendUvarint(dst, uint64(p.Start))
	return binary.AppendUvarint(dst, uint64(p.End))
}

// DecodeBinary decodes a partition written by AppendBinary, returning the
// remaining bytes.
func DecodeBinary(src []byte) (Partition, []byte, error) {
	var p Partition
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return p, nil, fmt.Errorf("plan: truncated partition encoding")
	}
	src = src[k:]
	start, k := binary.Uvarint(src)
	if k <= 0 {
		return p, nil, fmt.Errorf("plan: truncated partition encoding")
	}
	src = src[k:]
	end, k := binary.Uvarint(src)
	if k <= 0 {
		return p, nil, fmt.Errorf("plan: truncated partition encoding")
	}
	p = Partition{N: int(n), Start: int64(start), End: int64(end)}
	if err := p.Validate(); err != nil {
		return Partition{}, nil, err
	}
	return p, src[k:], nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
