package plan

import (
	"fmt"
	"sort"
	"sync"
)

// Coverage is a ledger of which slices of a universe have been accounted
// for. It is the correctness oracle of the partition layer: property tests
// feed it every partition a split sequence produced, and the cluster
// coordinator feeds it every completed lease before merging partials — in
// both cases Done reports whether the universe was covered exactly once.
// Add rejects any overlap with previously added slices, so double
// execution (the one failure a re-queueing coordinator could introduce) is
// detected at the ledger, not in corrupted counters.
type Coverage struct {
	mu    sync.Mutex
	n     int
	total int64
	// ivs holds the merged, sorted, pairwise-disjoint added intervals.
	ivs []Partition
}

// NewCoverage returns an empty ledger over the n-row universe.
func NewCoverage(n int) *Coverage {
	return &Coverage{n: n, total: Total(n)}
}

// Add records partition p as covered. It errors if p lies outside the
// universe, belongs to a different universe, or overlaps anything already
// added. Empty partitions are accepted and ignored. Add is safe for
// concurrent use.
func (c *Coverage) Add(p Partition) error {
	if p.Empty() {
		return nil
	}
	if p.N != c.n {
		return fmt.Errorf("plan: partition of n=%d universe added to n=%d ledger", p.N, c.n)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Position of the first interval ending after p starts.
	i := sort.Search(len(c.ivs), func(i int) bool { return c.ivs[i].End > p.Start })
	if i < len(c.ivs) && c.ivs[i].Start < p.End {
		return fmt.Errorf("plan: partition [%d,%d) overlaps covered [%d,%d)",
			p.Start, p.End, c.ivs[i].Start, c.ivs[i].End)
	}
	// Merge with abutting neighbours to keep the ledger small.
	lo, hi := p.Start, p.End
	j := i
	if i > 0 && c.ivs[i-1].End == lo {
		lo = c.ivs[i-1].Start
		i--
	}
	if j < len(c.ivs) && c.ivs[j].Start == hi {
		hi = c.ivs[j].End
		j++
	}
	merged := Partition{N: c.n, Start: lo, End: hi}
	c.ivs = append(c.ivs[:i], append([]Partition{merged}, c.ivs[j:]...)...)
	return nil
}

// Covered returns the number of subtasks accounted for so far.
func (c *Coverage) Covered() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, iv := range c.ivs {
		sum += iv.Len()
	}
	return sum
}

// Done reports whether the whole universe has been covered exactly once.
func (c *Coverage) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total == 0 || (len(c.ivs) == 1 && c.ivs[0].Start == 0 && c.ivs[0].End == c.total)
}

// Missing returns the uncovered slices of the universe, in order. A
// coordinator uses it to turn an incomplete run into the exact set of
// partitions still owed.
func (c *Coverage) Missing() []Partition {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Partition
	prev := int64(0)
	for _, iv := range c.ivs {
		if iv.Start > prev {
			out = append(out, Partition{N: c.n, Start: prev, End: iv.Start})
		}
		prev = iv.End
	}
	if prev < c.total {
		out = append(out, Partition{N: c.n, Start: prev, End: c.total})
	}
	return out
}
