package difftest

import (
	"math/rand"
	"testing"
)

// TestDurableEquivalence drives the durable-snapshot contract over
// generated datasets: every miner run from a snapshot that made a round
// trip through the on-disk encoding must match the from-scratch run's
// batch result and deterministic Counters exactly.
func TestDurableEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 60; iter++ {
		c := Random(rng)
		if err := CheckDurable(c); err != nil {
			t.Fatalf("iter %d: %v\ncase:\n%s", iter, err, Describe(c))
		}
	}
}

// Every edge-case fixture also survives the write/read round trip.
func TestDurableFixtures(t *testing.T) {
	for _, f := range Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if err := CheckDurable(f.Case()); err != nil {
				t.Fatalf("%v\ncase:\n%s", err, Describe(f.Case()))
			}
		})
	}
}
