package difftest

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Limits on generated and decoded instances, chosen so the exponential
// oracles in internal/reference stay cheap (2^MaxRows subset masks).
const (
	MaxRows    = 9
	MaxItems   = 12
	MaxClasses = 3
)

// Case is one differential-test instance: a dataset plus the knobs every
// check needs. Cases come from Random (property tests) or Decode (fuzzing).
type Case struct {
	D          *dataset.Dataset
	Consequent int
	Opt        core.Options
	Workers    int
	MinSupCS   int // class-blind minimum support for the closed-set checks
}

var (
	confLevels = []float64{0, 0.3, 0.5, 0.8, 1.0}
	chiLevels  = []float64{0, 0.5, 2}
)

// Random draws a case: a small random dataset (occasionally with planted
// structure — duplicate rows, a universal column, skewed classes) and random
// constraint settings.
func Random(rng *rand.Rand) Case {
	n := 1 + rng.Intn(MaxRows)
	numItems := 2 + rng.Intn(MaxItems-1)
	numClasses := 2 + rng.Intn(MaxClasses-1)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	density := 0.15 + 0.65*rng.Float64()
	universal := rng.Intn(4) == 0 // plant an all-rows column
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < density || (universal && it == 0) {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
		classes[i] = rng.Intn(numClasses)
	}
	// Plant duplicate rows (support > 1 closed sets, absorbed candidates).
	if n >= 2 && rng.Intn(3) == 0 {
		src, dst := rng.Intn(n), rng.Intn(n)
		lists[dst] = append([]dataset.Item(nil), lists[src]...)
		if rng.Intn(2) == 0 {
			classes[dst] = classes[src]
		}
	}
	names := []string{"C", "N", "M"}[:numClasses]
	d, err := dataset.FromItemLists(lists, classes, numItems, names)
	if err != nil {
		panic(err) // generator bug, not an input property
	}
	return Case{
		D:          d,
		Consequent: rng.Intn(numClasses),
		Opt: core.Options{
			MinSup:  1 + rng.Intn(3),
			MinConf: confLevels[rng.Intn(len(confLevels))],
			MinChi:  chiLevels[rng.Intn(len(chiLevels))],
		},
		Workers:  1 + rng.Intn(4),
		MinSupCS: 1 + rng.Intn(3),
	}
}

// Decode maps arbitrary bytes onto a valid Case so fuzzing never wastes
// executions on rejected inputs. The layout is fixed-width per field:
//
//	data[0]        row count (1..MaxRows)
//	data[1]        item count (2..MaxItems)
//	data[2]        class count and consequent
//	data[3]        MinSup / MinConf selector
//	data[4]        MinChi selector / workers / closed-set minsup
//	then per row:  1 class byte + 2 item-mask bytes (little endian)
//
// Missing bytes read as zero, so every input decodes; ok is false only for
// an empty input (the generator floor is one row, and zero-length inputs
// would all alias to the same case).
func Decode(data []byte) (Case, bool) {
	if len(data) == 0 {
		return Case{}, false
	}
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	n := 1 + int(at(0))%MaxRows
	numItems := 2 + int(at(1))%(MaxItems-1)
	numClasses := 2 + int(at(2))%(MaxClasses-1)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		base := 5 + 3*i
		classes[i] = int(at(base)) % numClasses
		mask := uint(at(base+1)) | uint(at(base+2))<<8
		for it := 0; it < numItems; it++ {
			if mask&(1<<uint(it)) != 0 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	names := []string{"C", "N", "M"}[:numClasses]
	d, err := dataset.FromItemLists(lists, classes, numItems, names)
	if err != nil {
		panic(err) // decoder must only build valid datasets
	}
	return Case{
		D:          d,
		Consequent: int(at(2)>>4) % numClasses,
		Opt: core.Options{
			MinSup:  1 + int(at(3)>>4)%3,
			MinConf: confLevels[int(at(3)&0xF)%len(confLevels)],
			MinChi:  chiLevels[int(at(4)&0x3)%len(chiLevels)],
		},
		Workers:  1 + int(at(4)>>2)%4,
		MinSupCS: 1 + int(at(4)>>4)%3,
	}, true
}

// Encode is Decode's inverse: it renders a case as fuzz-corpus bytes, so a
// shrunk failure found by the property tests can be committed as a seed.
// Knob values that Decode cannot represent are clamped to the nearest
// representable one.
func Encode(c Case) []byte {
	n := len(c.D.Rows)
	numClasses := c.D.NumClasses()
	if n < 1 || n > MaxRows || c.D.NumItems < 2 || c.D.NumItems > MaxItems ||
		numClasses < 2 || numClasses > MaxClasses {
		return nil
	}
	confIdx := 0
	for i, v := range confLevels {
		if v == c.Opt.MinConf {
			confIdx = i
		}
	}
	chiIdx := 0
	for i, v := range chiLevels {
		if v == c.Opt.MinChi {
			chiIdx = i
		}
	}
	out := make([]byte, 5+3*n)
	out[0] = byte(n - 1)
	out[1] = byte(c.D.NumItems - 2)
	out[2] = byte(numClasses-2) | byte(c.Consequent%numClasses)<<4
	out[3] = byte(clampIdx(c.Opt.MinSup-1, 3))<<4 | byte(confIdx)
	out[4] = byte(chiIdx) | byte(clampIdx(c.Workers-1, 4))<<2 | byte(clampIdx(c.MinSupCS-1, 3))<<4
	for i, r := range c.D.Rows {
		base := 5 + 3*i
		out[base] = byte(r.Class)
		var mask uint
		for _, it := range r.Items {
			mask |= 1 << uint(it)
		}
		out[base+1] = byte(mask)
		out[base+2] = byte(mask >> 8)
	}
	return out
}

func clampIdx(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}
