package difftest

import (
	"fmt"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/cobbler"
	"repro/internal/columne"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/store"
)

// CheckDurable closes the persistence loop of the durable snapshot format
// (equivalence class (e) of the harness: disk ≡ fresh): compile a
// snapshot, write it to the binary format, read it back, and assert every
// miner produces exactly the from-scratch batch result and deterministic
// Counters when run from the rehydrated snapshot. The write/read round
// trip must be invisible to enumeration — only Stats.PrepareReused may
// differ, exactly as for an in-memory prepared snapshot.
func CheckDurable(c Case) error {
	snap, err := dataset.NewSnapshot(c.D)
	if err != nil {
		return fmt.Errorf("NewSnapshot: %w", err)
	}
	// Materialize the consequent view the class-aware miners will want, so
	// the encoding's view sections are exercised, not just tolerated.
	if c.D.NumClasses() > 0 && c.D.NumRows() > 0 {
		if _, err := snap.ForConsequent(c.Consequent); err != nil {
			return fmt.Errorf("ForConsequent: %w", err)
		}
	}
	buf, err := store.Encode(snap)
	if err != nil {
		return fmt.Errorf("Encode: %w", err)
	}
	loaded, err := store.Decode(buf)
	if err != nil {
		return fmt.Errorf("Decode: %w", err)
	}
	// The decoded snapshot carries its own dataset copy; miners pin
	// snapshots to the exact dataset pointer, so the durable runs mine
	// that copy.
	d2 := loaded.Dataset()

	// FARMER sequential.
	fres, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return fmt.Errorf("core.Mine: %w", err)
	}
	dopt := c.Opt
	dopt.Prepared = loaded
	dres, err := core.Mine(d2, c.Consequent, dopt)
	if err != nil {
		return fmt.Errorf("core.Mine durable: %w", err)
	}
	if err := comparePrepared("Mine(durable)", fres.Groups, dres.Groups, fres.Stats(), dres.Stats()); err != nil {
		return err
	}

	// FARMER parallel (fixed worker count; counters are schedule-invariant).
	fpar, err := core.MineParallel(c.D, c.Consequent, c.Opt, c.Workers)
	if err != nil {
		return fmt.Errorf("core.MineParallel: %w", err)
	}
	dpar, err := core.MineParallel(d2, c.Consequent, dopt, c.Workers)
	if err != nil {
		return fmt.Errorf("core.MineParallel durable: %w", err)
	}
	if err := comparePrepared("MineParallel(durable)", fpar.Groups, dpar.Groups, fpar.Stats(), dpar.Stats()); err != nil {
		return err
	}

	// Top-k over the same rehydrated snapshot.
	tkOpt := core.TopKOptions{K: 3, MinSup: c.Opt.MinSup}
	ftk, err := core.TopK(nil, c.D, c.Consequent, tkOpt)
	if err != nil {
		return fmt.Errorf("core.TopK: %w", err)
	}
	tkOpt.Prepared = loaded
	dtk, err := core.TopK(nil, d2, c.Consequent, tkOpt)
	if err != nil {
		return fmt.Errorf("core.TopK durable: %w", err)
	}
	if err := comparePrepared("TopK(durable)", ftk.Groups, dtk.Groups, ftk.Stats(), dtk.Stats()); err != nil {
		return err
	}

	// CHARM.
	fch, err := charm.Mine(c.D, charm.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("charm.Mine: %w", err)
	}
	dch, err := charm.Mine(d2, charm.Options{MinSup: c.MinSupCS, Prepared: loaded})
	if err != nil {
		return fmt.Errorf("charm.Mine durable: %w", err)
	}
	if err := comparePrepared("CHARM(durable)", fch.Closed, dch.Closed, fch.Stats(), dch.Stats()); err != nil {
		return err
	}

	// CLOSET.
	fcl, err := closet.Mine(c.D, closet.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("closet.Mine: %w", err)
	}
	dcl, err := closet.Mine(d2, closet.Options{MinSup: c.MinSupCS, Prepared: loaded})
	if err != nil {
		return fmt.Errorf("closet.Mine durable: %w", err)
	}
	if err := comparePrepared("CLOSET(durable)", fcl.Closed, dcl.Closed, fcl.Stats(), dcl.Stats()); err != nil {
		return err
	}

	// ColumnE.
	ceOpt := columne.Options{MinSup: c.Opt.MinSup, MinConf: c.Opt.MinConf, MinChi: c.Opt.MinChi}
	fce, err := columne.Mine(c.D, c.Consequent, ceOpt)
	if err != nil {
		return fmt.Errorf("columne.Mine: %w", err)
	}
	ceOpt.Prepared = loaded
	dce, err := columne.Mine(d2, c.Consequent, ceOpt)
	if err != nil {
		return fmt.Errorf("columne.Mine durable: %w", err)
	}
	if err := comparePrepared("ColumnE(durable)", fce.Rules, dce.Rules, fce.Stats(), dce.Stats()); err != nil {
		return err
	}

	// CARPENTER.
	fca, err := carpenter.Mine(c.D, carpenter.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("carpenter.Mine: %w", err)
	}
	dca, err := carpenter.Mine(d2, carpenter.Options{MinSup: c.MinSupCS, Prepared: loaded})
	if err != nil {
		return fmt.Errorf("carpenter.Mine durable: %w", err)
	}
	if err := comparePrepared("CARPENTER(durable)", fca.Patterns, dca.Patterns, fca.Stats(), dca.Stats()); err != nil {
		return err
	}

	// COBBLER.
	fco, err := cobbler.Mine(c.D, cobbler.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("cobbler.Mine: %w", err)
	}
	dco, err := cobbler.Mine(d2, cobbler.Options{MinSup: c.MinSupCS, Prepared: loaded})
	if err != nil {
		return fmt.Errorf("cobbler.Mine durable: %w", err)
	}
	return comparePrepared("COBBLER(durable)", fco.Patterns, dco.Patterns, fco.Stats(), dco.Stats())
}
