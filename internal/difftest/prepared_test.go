package difftest

import (
	"math/rand"
	"testing"
)

// TestPreparedEquivalence drives the prepared-snapshot contract over
// generated datasets: for every miner, a run reusing a shared Snapshot
// must match the from-scratch run's batch result and deterministic
// Counters exactly, with the reuse visible only in Stats.PrepareReused.
func TestPreparedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for iter := 0; iter < 60; iter++ {
		c := Random(rng)
		if err := CheckPrepared(c); err != nil {
			t.Fatalf("iter %d: %v\ncase:\n%s", iter, err, Describe(c))
		}
	}
}

// Every edge-case fixture also passes the prepared contract.
func TestPreparedFixtures(t *testing.T) {
	for _, f := range Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if err := CheckPrepared(f.Case()); err != nil {
				t.Fatalf("%v\ncase:\n%s", err, Describe(f.Case()))
			}
		})
	}
}
