package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// failCase shrinks a failing case and reports it with a reproducer.
func failCase(t *testing.T, c Case, err error) {
	t.Helper()
	shrunk := Shrink(c, func(cand Case) bool { return CheckAll(cand) != nil }, 2000)
	t.Fatalf("differential failure: %v\nminimized case:\n%s", err, Describe(shrunk))
}

// TestDifferentialHarness is the main acceptance driver: ≥200 generated
// datasets, each pushed through all three equivalence classes, the MineLB
// and top-k oracles, and all four metamorphic invariants.
func TestDifferentialHarness(t *testing.T) {
	rng := rand.New(rand.NewSource(20040613))
	const iters = 220
	for iter := 0; iter < iters; iter++ {
		c := Random(rng)
		if err := CheckAll(c); err != nil {
			t.Logf("iter %d failed", iter)
			failCase(t, c, err)
		}
	}
}

// Lower bounds are exercised on a slice of the runs (MineLB per group is
// the expensive part, so it gets its own smaller loop).
func TestDifferentialLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		c := Random(rng)
		c.Opt.ComputeLowerBounds = true
		if err := CheckMineEquivalence(c); err != nil {
			failCase(t, c, err)
		}
	}
}

// Every edge-case fixture passes every check.
func TestFixtures(t *testing.T) {
	for _, f := range Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if err := CheckAll(f.Case()); err != nil {
				t.Fatalf("%v\ncase:\n%s", err, Describe(f.Case()))
			}
		})
	}
}

// The decoder must produce a valid case for arbitrary bytes and roundtrip
// through Encode.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		buf := make([]byte, rng.Intn(40))
		rng.Read(buf)
		c, ok := Decode(buf)
		if !ok {
			if len(buf) != 0 {
				t.Fatalf("nonempty input rejected: %v", buf)
			}
			continue
		}
		if err := c.D.Validate(); err != nil {
			t.Fatalf("decoded dataset invalid: %v", err)
		}
		enc := Encode(c)
		if enc == nil {
			t.Fatalf("decoded case not encodable: %s", Describe(c))
		}
		c2, ok := Decode(enc)
		if !ok {
			t.Fatalf("re-decode rejected")
		}
		if Describe(c) != Describe(c2) {
			t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", Describe(c), Describe(c2))
		}
	}
}

// The shrinker must preserve the failure and actually reduce a padded case.
func TestShrinkReduces(t *testing.T) {
	// Failure predicate: dataset contains a row holding both item 0 and
	// item 1 with class 0. Minimal failing dataset: that single row.
	fails := func(c Case) bool {
		for _, r := range c.D.Rows {
			if r.Class == 0 && r.HasItem(0) && r.HasItem(1) {
				return true
			}
		}
		return false
	}
	lists := [][]dataset.Item{{0, 1, 2, 3}, {2, 3}, {0, 3}, {1}, {0, 1}}
	classes := []int{0, 1, 0, 1, 1}
	d, err := dataset.FromItemLists(lists, classes, 4, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	c := Case{D: d, Consequent: 0, Opt: core.Options{MinSup: 1}, Workers: 1, MinSupCS: 1}
	if !fails(c) {
		t.Fatal("seed case does not fail")
	}
	shrunk := Shrink(c, fails, 0)
	if !fails(shrunk) {
		t.Fatal("shrinking lost the failure")
	}
	if len(shrunk.D.Rows) != 1 {
		t.Fatalf("shrunk to %d rows, want 1:\n%s", len(shrunk.D.Rows), Describe(shrunk))
	}
	if len(shrunk.D.Rows[0].Items) != 2 {
		t.Fatalf("shrunk row keeps %d items, want 2", len(shrunk.D.Rows[0].Items))
	}
}

// Shrinking a real check failure must keep the dataset valid end to end
// (exercised here with an artificial always-fails predicate bounded by
// maxSteps, since the miners themselves currently agree).
func TestShrinkBoundedSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Random(rng)
	calls := 0
	Shrink(c, func(Case) bool { calls++; return true }, 50)
	if calls > 50 {
		t.Fatalf("predicate called %d times, budget 50", calls)
	}
}
