package difftest

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// CheckAnytimeDeterminism asserts the top-k tie-break contract of the
// anytime tier on one case, for every measure:
//
//   - the best-first kept set — including which representative wins an
//     equal-score tie — is identical across worker counts (admission under
//     the canonical total order makes the answer schedule-independent);
//   - exhausted best-first and δ=0 leap agree with the exact walk on the
//     per-rank scores (representatives may differ where scores tie: the
//     exact walk keeps the first arrival, the heap the canonically best —
//     both are valid top-k answers, the latitude CheckTopK documents);
//   - neither exhausted run is flagged partial, and both certify a zero
//     gap.
func CheckAnytimeDeterminism(c Case, k int) error {
	for _, m := range topKMeasures {
		exact, err := core.TopK(context.Background(), c.D, c.Consequent, core.TopKOptions{
			K: k, Measure: m.Measure, MinSup: c.Opt.MinSup,
		})
		if err != nil {
			return fmt.Errorf("TopK(%s, exact): %w", m.Name, err)
		}
		var ref *core.TopKResult
		for _, strat := range []core.Strategy{core.StrategyBestFirst, core.StrategyLeap} {
			for _, workers := range []int{1, 2, 4} {
				res, err := core.TopK(context.Background(), c.D, c.Consequent, core.TopKOptions{
					K: k, Measure: m.Measure, MinSup: c.Opt.MinSup,
					Strategy: strat, Workers: workers,
				})
				if err != nil {
					return fmt.Errorf("TopK(%s, %v, workers=%d): %w", m.Name, strat, workers, err)
				}
				if res.Partial {
					return fmt.Errorf("TopK(%s, %v, workers=%d): exhausted run flagged partial", m.Name, strat, workers)
				}
				if !res.HasGap || res.Gap != 0 {
					return fmt.Errorf("TopK(%s, %v, workers=%d): exhausted run gap %v (has=%v), want certified 0",
						m.Name, strat, workers, res.Gap, res.HasGap)
				}
				if len(res.Groups) != len(exact.Groups) {
					return fmt.Errorf("TopK(%s, %v, workers=%d): %d groups, exact %d",
						m.Name, strat, workers, len(res.Groups), len(exact.Groups))
				}
				for i := range res.Groups {
					if res.Groups[i].Score != exact.Groups[i].Score {
						return fmt.Errorf("TopK(%s, %v, workers=%d) rank %d: score %v, exact %v",
							m.Name, strat, workers, i, res.Groups[i].Score, exact.Groups[i].Score)
					}
				}
				if ref == nil {
					ref = res
					continue
				}
				// Representatives included: every anytime run keeps the same
				// groups regardless of strategy relaxation (δ=0 never prunes
				// beyond best-first) or scheduling.
				if !reflect.DeepEqual(res.Groups, ref.Groups) {
					return fmt.Errorf("TopK(%s, %v, workers=%d): kept set differs from the first anytime run:\n %+v\nvs\n %+v",
						m.Name, strat, workers, res.Groups, ref.Groups)
				}
			}
		}
	}
	return nil
}

// QualityRow is one measurement of the quality harness: an approximate
// top-k run under one budget, scored against the exhausted exact miner on
// the same dataset. CI archives these as BENCH_quality.json (via
// `benchjson -quality`).
type QualityRow struct {
	Dataset  string `json:"dataset"`
	Strategy string `json:"strategy"`
	Measure  string `json:"measure"`
	K        int    `json:"k"`
	MinSup   int    `json:"minsup"`
	// BudgetKind says which budget dimension the row sweeps: "millis"
	// (fraction of the exact miner's wall clock, the serving-facing
	// number) or "nodes" (fraction of the exact miner's node count,
	// deterministic and machine-independent — what the smoke test gates).
	BudgetKind string  `json:"budget_kind"`
	BudgetFrac float64 `json:"budget_frac"`
	MaxMillis  int64   `json:"max_millis,omitempty"`
	MaxNodes   int64   `json:"max_nodes,omitempty"`
	// The exact baseline being approximated.
	ExactMillis float64 `json:"exact_millis"`
	ExactNodes  int64   `json:"exact_nodes"`
	// Outcome.
	NodesExpanded int64   `json:"nodes_expanded"`
	Recall        float64 `json:"recall"`
	Regret        float64 `json:"regret"`
	Gap           float64 `json:"gap,omitempty"`
	Partial       bool    `json:"partial"`
}

// topKScores extracts the ranked score list of a result.
func topKScores(res *core.TopKResult) []float64 {
	s := make([]float64, len(res.Groups))
	for i, g := range res.Groups {
		s[i] = g.Score
	}
	return s
}

// recallAndRegret scores an approximate ranked score list against the
// exact one. Recall is multiset intersection over the exact list's size —
// scores compare exactly because both miners compute them from identical
// integer margins through the same stats routines. Regret is the relative
// shortfall in total kept score, clamped to [0, 1].
func recallAndRegret(got, exact []float64) (recall, regret float64) {
	if len(exact) == 0 {
		return 1, 0
	}
	matched, gi := 0, 0
	var sumGot, sumExact float64
	for _, s := range exact {
		sumExact += s
	}
	for _, s := range got {
		sumGot += s
	}
	// Both lists are sorted descending; count multiset matches with a
	// two-pointer sweep.
	for _, want := range exact {
		for gi < len(got) && got[gi] > want {
			gi++
		}
		if gi < len(got) && got[gi] == want {
			matched++
			gi++
		}
	}
	recall = float64(matched) / float64(len(exact))
	if sumExact > 0 {
		regret = (sumExact - sumGot) / sumExact
		if regret < 0 {
			regret = 0
		}
		if regret > 1 {
			regret = 1
		}
	}
	return recall, regret
}

// QualitySpec configures one quality sweep: dataset, query shape, the
// strategies to grade, and the budget fractions to sweep.
type QualitySpec struct {
	Name       string
	D          *dataset.Dataset
	Consequent int
	K          int
	MinSup     int
	Measure    core.Measure
	Strategies []core.Strategy
	Fracs      []float64
	// Prepared, when non-nil, supplies the compiled snapshot of D. The
	// sweep then measures what the serving tier actually does — mine from
	// a registry-resident snapshot — so small wall-clock budgets grade
	// search progress, not dataset setup.
	Prepared *dataset.Snapshot
	// WallClock selects the budget dimension: true sweeps MaxMillis as a
	// fraction of the measured exact wall clock (the serving-facing
	// number), false sweeps MaxNodes as a fraction of the exact node
	// count (deterministic — what CI smoke-gates).
	WallClock bool
	// Reps is the number of attempts per wall-clock cell, keeping the
	// best-recall row — the same best-of-N convention as the exact
	// baseline's wall measurement, and for the same reason: a GC pause or
	// scheduler stall inside a few-millisecond budget says nothing about
	// the search. 0 means 1. Node-budget cells are deterministic and
	// always run once.
	Reps int
	// SampleSeed seeds StrategySample rows so committed reports replay.
	SampleSeed int64
}

// RunQuality grades every (strategy, budget fraction) cell of one spec
// against the exhausted exact miner.
func RunQuality(spec QualitySpec) ([]QualityRow, error) {
	base := core.TopKOptions{K: spec.K, Measure: spec.Measure, MinSup: spec.MinSup, Prepared: spec.Prepared}

	// The exact baseline: best-of-3 wall clock (the budget denominator
	// should not inherit one cold run's scheduling noise) and the node
	// count, which is deterministic across the repeats.
	var exact *core.TopKResult
	exactMillis := 0.0
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		res, err := core.TopK(context.Background(), spec.D, spec.Consequent, base)
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		if err != nil {
			return nil, fmt.Errorf("exact TopK(%s): %w", spec.Name, err)
		}
		if exact == nil || ms < exactMillis {
			exactMillis = ms
		}
		exact = res
	}
	exactScores := topKScores(exact)
	exactNodes := exact.Stats().NodesVisited

	reps := spec.Reps
	if reps < 1 || !spec.WallClock {
		reps = 1
	}

	var rows []QualityRow
	for _, strat := range spec.Strategies {
		for _, frac := range spec.Fracs {
			opt := base
			opt.Strategy = strat
			opt.Seed = spec.SampleSeed
			row := QualityRow{
				Dataset: spec.Name, Strategy: strat.String(), Measure: spec.Measure.String(),
				K: spec.K, MinSup: spec.MinSup,
				BudgetFrac:  frac,
				ExactMillis: exactMillis, ExactNodes: exactNodes,
			}
			if spec.WallClock {
				row.BudgetKind = "millis"
				opt.MaxMillis = int64(frac * exactMillis)
				if opt.MaxMillis < 1 {
					opt.MaxMillis = 1
				}
				row.MaxMillis = opt.MaxMillis
			} else {
				row.BudgetKind = "nodes"
				opt.MaxNodes = int64(frac * float64(exactNodes))
				if opt.MaxNodes < 1 {
					opt.MaxNodes = 1
				}
				row.MaxNodes = opt.MaxNodes
			}
			got := false
			for rep := 0; rep < reps; rep++ {
				res, err := core.TopK(context.Background(), spec.D, spec.Consequent, opt)
				if err != nil {
					return nil, fmt.Errorf("TopK(%s, %v, frac=%v): %w", spec.Name, strat, frac, err)
				}
				recall, regret := recallAndRegret(topKScores(res), exactScores)
				if got && recall <= row.Recall {
					continue
				}
				got = true
				row.NodesExpanded = res.NodesExpanded
				row.Partial = res.Partial
				row.Gap = res.Gap
				row.Recall, row.Regret = recall, regret
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// MeanRecall averages the recall of the rows accepted by the filter —
// how CI asserts e.g. "best-first at a 10% budget keeps ≥0.9 of the true
// top-k" across the bench datasets.
func MeanRecall(rows []QualityRow, keep func(QualityRow) bool) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if keep == nil || keep(r) {
			sum += r.Recall
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
