package difftest

import (
	"math/rand"
	"testing"
	"time"
)

// TestDistributedFixtures runs every edge-case fixture through a live
// two-worker cluster and diffs the streams against the single-node runner.
func TestDistributedFixtures(t *testing.T) {
	h, err := NewDistHarness(DistOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, f := range Fixtures() {
		if err := CheckDistributed(h, f.Case()); err != nil {
			t.Errorf("fixture %s: %v", f.Name, err)
		}
	}
}

// TestDistributedRandom is the property form: >= 40 random datasets, each
// mined distributed and single-node, streams byte-identical and counters
// equal.
func TestDistributedRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster property test")
	}
	h, err := NewDistHarness(DistOptions{Workers: 2, Chunks: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rng := rand.New(rand.NewSource(0xFA43))
	for i := 0; i < 44; i++ {
		c := Random(rng)
		if err := CheckDistributed(h, c); err != nil {
			t.Fatalf("case %d (%s): %v", i, Describe(c), err)
		}
	}
}

// TestDistributedWorkerLoss forces the failover path: one of the two
// workers silently drops its first leases (no renewals, no results), so
// the coordinator must expire them, re-split, and re-queue — and the runs
// must still match the single-node baseline exactly.
func TestDistributedWorkerLoss(t *testing.T) {
	h, err := NewDistHarness(DistOptions{
		Workers:       2,
		AbandonLeases: 3,
		LeaseTTL:      200 * time.Millisecond,
		Chunks:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rng := rand.New(rand.NewSource(0xDEAD))
	for i := 0; i < 4; i++ {
		c := Random(rng)
		if err := CheckDistributed(h, c); err != nil {
			t.Fatalf("case %d (%s): %v", i, Describe(c), err)
		}
	}
}
