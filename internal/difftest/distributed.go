package difftest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/serve"
)

// DistOptions shapes the simulated cluster a DistHarness runs.
type DistOptions struct {
	// Workers is the number of in-process cluster workers; <= 0 selects 2.
	Workers int
	// AbandonLeases makes the first worker silently drop its first N
	// leases (no renew, no report) so its slices must expire and requeue —
	// the forced worker-loss path. 0 disables.
	AbandonLeases int
	// LeaseTTL for the coordinator; <= 0 selects 30s (effectively "no
	// expiry" for happy-path checks). Worker-loss checks want it short.
	LeaseTTL time.Duration
	// Chunks is the initial partition count per FARMER job; <= 0 selects
	// the coordinator default.
	Chunks int
}

// DistHarness is one live simulated cluster: a coordinator-enabled farmerd
// service plus in-process workers polling it over real HTTP. It is reused
// across many CheckDistributed cases so per-case cost is one dataset
// registration and two jobs, not a service bring-up.
type DistHarness struct {
	mgr    *serve.Manager
	coord  *cluster.Coordinator
	ts     *httptest.Server
	cancel context.CancelFunc
	seq    int
}

// NewDistHarness starts the simulated cluster and blocks until every
// worker has polled at least once, so jobs submitted afterwards take the
// distributed path rather than the no-workers local fallback.
func NewDistHarness(opt DistOptions) (*DistHarness, error) {
	if opt.Workers <= 0 {
		opt.Workers = 2
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 30 * time.Second
	}
	reg := serve.NewRegistry()
	mgr := serve.NewManager(reg, 2, 16, serve.DefaultCacheBytes)
	coord := cluster.NewCoordinator(mgr, cluster.Options{LeaseTTL: opt.LeaseTTL, Chunks: opt.Chunks})
	srv := serve.NewServer(mgr)
	coord.RegisterRoutes(srv)
	ts := httptest.NewServer(srv)

	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < opt.Workers; i++ {
		wopt := cluster.WorkerOptions{
			ID:           fmt.Sprintf("w%d", i),
			PollInterval: 5 * time.Millisecond,
		}
		if i == 0 {
			wopt.AbandonLeases = opt.AbandonLeases
		}
		w := cluster.NewWorker(ts.URL, wopt)
		go func() { _ = w.Run(ctx) }()
	}

	h := &DistHarness{mgr: mgr, coord: coord, ts: ts, cancel: cancel}
	deadline := time.Now().Add(5 * time.Second)
	for coord.ActiveWorkers() < opt.Workers {
		if time.Now().After(deadline) {
			h.Close()
			return nil, fmt.Errorf("difftest: workers never polled the coordinator")
		}
		time.Sleep(2 * time.Millisecond)
	}
	return h, nil
}

// Close tears the cluster down: workers first, then the manager, then the
// coordinator's reaper and the listener.
func (h *DistHarness) Close() {
	h.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = h.mgr.Shutdown(ctx)
	_ = h.coord.Close()
	h.ts.Close()
}

// CheckDistributed is equivalence class (f) of the harness: a job mined
// across cluster workers must be indistinguishable from the single-node
// run — the NDJSON result stream byte-identical and the deterministic
// Counters equal. FARMER exercises the partition-lease path against the
// in-process parallel runner (the counter-comparable baseline: the
// distributed universe decomposition is MineParallel's); CHARM exercises
// the whole-universe lease path.
func CheckDistributed(h *DistHarness, c Case) error {
	h.seq++
	name := fmt.Sprintf("dist-%d", h.seq)
	if err := h.mgr.Registry().Put(name, c.D); err != nil {
		return fmt.Errorf("register: %w", err)
	}

	workers := c.Workers
	if workers == 0 {
		workers = -1 // the distributed baseline is the parallel batch path
	}
	farmerSpec := serve.JobSpec{
		Miner:       "farmer",
		Dataset:     name,
		Class:       c.D.ClassNames[c.Consequent],
		MinSup:      c.Opt.MinSup,
		MinConf:     c.Opt.MinConf,
		MinChi:      c.Opt.MinChi,
		LowerBounds: c.Opt.ComputeLowerBounds,
		Workers:     workers,
	}
	if err := h.compareJob(name, farmerSpec); err != nil {
		return fmt.Errorf("farmer: %w", err)
	}

	charmSpec := serve.JobSpec{Miner: "charm", Dataset: name, MinSup: c.MinSupCS}
	if err := h.compareJob(name, charmSpec); err != nil {
		return fmt.Errorf("charm: %w", err)
	}
	return nil
}

// compareJob runs spec once through the live cluster and once through the
// in-process runner the single-node service would use (same registry
// entry, same compiled snapshot) and diffs the streams and counters.
func (h *DistHarness) compareJob(name string, spec serve.JobSpec) error {
	wantBytes, wantStats, wantHasStats, err := h.localRun(name, spec)
	if err != nil {
		return fmt.Errorf("single-node baseline: %w", err)
	}
	gotBytes, gotStatus, err := h.clusterRun(spec)
	if err != nil {
		return err
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		return fmt.Errorf("NDJSON stream differs\ndistributed:\n%s\nsingle-node:\n%s", gotBytes, wantBytes)
	}
	if wantHasStats {
		if gotStatus.Stats == nil {
			return fmt.Errorf("distributed job has no stats")
		}
		if gotStatus.Stats.Counters != wantStats.Counters {
			return fmt.Errorf("counters differ\ndistributed: %+v\nsingle-node: %+v",
				gotStatus.Stats.Counters, wantStats.Counters)
		}
	}
	return nil
}

// localRun executes spec with the default in-process runner against the
// registry's compiled entry — exactly what a standalone daemon would do —
// and returns the NDJSON bytes its job would stream plus its stats.
func (h *DistHarness) localRun(name string, spec serve.JobSpec) ([]byte, engine.Stats, bool, error) {
	d, snap, _, err := h.mgr.Registry().Entry(name)
	if err != nil {
		return nil, engine.Stats{}, false, err
	}
	runner, err := serve.BuildRunner(d, snap, spec)
	if err != nil {
		return nil, engine.Stats{}, false, err
	}
	var buf bytes.Buffer
	emitted := 0
	emit := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		buf.Write(raw)
		buf.WriteByte('\n')
		emitted++
		return nil
	}
	res, err := runner(context.Background(), emit)
	if err != nil {
		return nil, engine.Stats{}, false, err
	}
	// A served stream closes with the end-frame trailer; render the one a
	// clean completion would carry so the byte comparison stays exact.
	frame, err := json.Marshal(serve.EndFrame{End: true, State: serve.StateDone, Emitted: emitted})
	if err != nil {
		return nil, engine.Stats{}, false, err
	}
	buf.Write(frame)
	buf.WriteByte('\n')
	if res == nil {
		return buf.Bytes(), engine.Stats{}, false, nil
	}
	return buf.Bytes(), res.Stats(), true, nil
}

// clusterRun submits spec over HTTP, waits for the job to finish, and
// returns the streamed NDJSON plus the terminal status.
func (h *DistHarness) clusterRun(spec serve.JobSpec) ([]byte, *serve.JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(h.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, nil, fmt.Errorf("submit status %d: %s", resp.StatusCode, raw)
	}
	var status serve.JobStatus
	if err := json.Unmarshal(raw, &status); err != nil {
		return nil, nil, err
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		sresp, err := http.Get(h.ts.URL + "/v1/jobs/" + status.ID)
		if err != nil {
			return nil, nil, err
		}
		sraw, err := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		if err := json.Unmarshal(sraw, &status); err != nil {
			return nil, nil, fmt.Errorf("status body %q: %w", sraw, err)
		}
		if status.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("job %s stuck in state %q", status.ID, status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status.State != serve.StateDone {
		return nil, nil, fmt.Errorf("job %s ended %q: %s", status.ID, status.State, status.Error)
	}

	rresp, err := http.Get(h.ts.URL + "/v1/jobs/" + status.ID + "/results")
	if err != nil {
		return nil, nil, err
	}
	defer rresp.Body.Close()
	records, err := io.ReadAll(rresp.Body)
	if err != nil {
		return nil, nil, err
	}
	return records, &status, nil
}
