package difftest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
)

// The metamorphic invariants mine a transformed dataset and require the
// transformed result to map back onto the original one. Transformations are
// deterministic functions of the instance (no RNG), so a fuzz input that
// trips an invariant reproduces from the bytes alone.

// permutations returns deterministic non-trivial permutations of [0, n):
// reversal and an odd/even interleave.
func permutations(n int) [][]int {
	rev := make([]int, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	inter := make([]int, 0, n)
	for i := 0; i < n; i += 2 {
		inter = append(inter, i)
	}
	for i := 1; i < n; i += 2 {
		inter = append(inter, i)
	}
	return [][]int{rev, inter}
}

// CheckRowPermutationInvariance asserts that the mined IRG set is invariant
// under row reordering: mining the permuted dataset and mapping row ids back
// yields exactly the original groups.
func CheckRowPermutationInvariance(c Case) error {
	base, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return err
	}
	want := coreGroupKeys(base)
	for _, perm := range permutations(len(c.D.Rows)) {
		d2 := c.D.Clone()
		for i, src := range perm {
			d2.Rows[i] = c.D.Rows[src]
		}
		got, err := core.Mine(d2, c.Consequent, c.Opt)
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(got.Groups))
		for _, g := range got.Groups {
			rows := make([]int, len(g.Rows))
			for i, r := range g.Rows {
				rows[i] = perm[r]
			}
			sort.Ints(rows)
			keys = append(keys, groupKey(g.Antecedent, rows, g.SupPos, g.SupNeg))
		}
		sort.Strings(keys)
		if err := diffKeys(fmt.Sprintf("row permutation %v", perm), keys, want); err != nil {
			return err
		}
	}
	return nil
}

// CheckORDReorderInvariance asserts that pre-applying the ORD reordering
// (consequent-class rows first) before mining changes nothing: FARMER's
// bounds depend on ORD internally, and feeding an already-ordered dataset
// must be a fixpoint.
func CheckORDReorderInvariance(c Case) error {
	base, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return err
	}
	ordered, ord := dataset.OrderForConsequent(c.D, c.Consequent)
	got, err := core.Mine(ordered, c.Consequent, c.Opt)
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(got.Groups))
	for _, g := range got.Groups {
		rows := ord.MapRowsToOriginal(g.Rows)
		sort.Ints(rows)
		keys = append(keys, groupKey(g.Antecedent, rows, g.SupPos, g.SupNeg))
	}
	sort.Strings(keys)
	return diffKeys("ORD reordering", keys, coreGroupKeys(base))
}

// CheckReplicationScaling asserts the §4.1 scale-up semantics: replicating
// every row k times leaves the IRG antecedent set and confidences unchanged,
// scales each group's support split by k, replicates its row set across the
// k blocks, and scales chi-square by k. Only the support constraint is
// scaled along; chi constraints would not commute with replication, so the
// check pins MinChi to zero.
func CheckReplicationScaling(c Case, k int) error {
	opt := c.Opt
	// Support scales by k exactly and confidence is preserved bit-for-bit
	// (both sides of each quotient scale together), so MinSup and MinConf
	// commute with replication. The chi and gain statistics change value
	// (chi scales by k, the gains only agree up to rounding), so their
	// thresholds are pinned to zero for this invariant.
	opt.MinChi = 0
	opt.MinLift = 0
	opt.MinConviction = 0
	opt.MinEntropyGain = 0
	opt.MinGiniGain = 0
	opt.ComputeLowerBounds = false
	base, err := core.Mine(c.D, c.Consequent, opt)
	if err != nil {
		return err
	}
	repl := dataset.Replicate(c.D, k)
	optK := opt
	optK.MinSup = opt.MinSup * k
	got, err := core.Mine(repl, c.Consequent, optK)
	if err != nil {
		return err
	}
	if len(got.Groups) != len(base.Groups) {
		return fmt.Errorf("replication x%d: %d groups, want %d", k, len(got.Groups), len(base.Groups))
	}
	n := len(c.D.Rows)
	byAnt := make(map[string]core.RuleGroup, len(base.Groups))
	for _, g := range base.Groups {
		byAnt[fmt.Sprint(g.Antecedent)] = g
	}
	for _, g := range got.Groups {
		want, ok := byAnt[fmt.Sprint(g.Antecedent)]
		if !ok {
			return fmt.Errorf("replication x%d: group %v not mined on the original", k, g.Antecedent)
		}
		if g.SupPos != k*want.SupPos || g.SupNeg != k*want.SupNeg {
			return fmt.Errorf("replication x%d: group %v support %d/%d, want %d/%d",
				k, g.Antecedent, g.SupPos, g.SupNeg, k*want.SupPos, k*want.SupNeg)
		}
		if g.Confidence != want.Confidence {
			return fmt.Errorf("replication x%d: group %v confidence %v, want %v",
				k, g.Antecedent, g.Confidence, want.Confidence)
		}
		if math.Abs(g.Chi-float64(k)*want.Chi) > 1e-9*(1+math.Abs(g.Chi)) {
			return fmt.Errorf("replication x%d: group %v chi %v, want %v",
				k, g.Antecedent, g.Chi, float64(k)*want.Chi)
		}
		rows := make([]int, 0, k*len(want.Rows))
		for j := 0; j < k; j++ {
			for _, r := range want.Rows {
				rows = append(rows, j*n+r)
			}
		}
		sort.Ints(rows)
		if fmt.Sprint(g.Rows) != fmt.Sprint(rows) {
			return fmt.Errorf("replication x%d: group %v rows %v, want %v", k, g.Antecedent, g.Rows, rows)
		}
	}
	return nil
}

// CheckItemRelabelInvariance asserts that renaming items (a bijection on
// item ids) relabels antecedents without changing row sets, supports,
// confidences or chi values.
func CheckItemRelabelInvariance(c Case) error {
	base, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return err
	}
	for _, perm := range permutations(c.D.NumItems) {
		d2 := c.D.Clone()
		d2.ItemNames = nil
		for ri := range d2.Rows {
			items := d2.Rows[ri].Items
			for i, it := range items {
				items[i] = dataset.Item(perm[it])
			}
			sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		}
		got, err := core.Mine(d2, c.Consequent, c.Opt)
		if err != nil {
			return err
		}
		// Map the mined antecedents back through the inverse permutation.
		inv := make([]dataset.Item, len(perm))
		for i, p := range perm {
			inv[p] = dataset.Item(i)
		}
		keys := make([]string, 0, len(got.Groups))
		for _, g := range got.Groups {
			ant := make([]dataset.Item, len(g.Antecedent))
			for i, it := range g.Antecedent {
				ant[i] = inv[it]
			}
			sort.Slice(ant, func(a, b int) bool { return ant[a] < ant[b] })
			keys = append(keys, groupKey(ant, g.Rows, g.SupPos, g.SupNeg))
		}
		sort.Strings(keys)
		if err := diffKeys(fmt.Sprintf("item relabeling %v", perm), keys, coreGroupKeys(base)); err != nil {
			return err
		}
	}
	return nil
}
