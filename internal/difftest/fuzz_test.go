package difftest

// Native fuzz targets over the byte-decoded case space. `go test` replays
// the committed corpus under testdata/fuzz/; deeper exploration runs with
//
//	go test -run='^$' -fuzz=FuzzMineEquivalence -fuzztime=30s ./internal/difftest
//
// A crasher minimizes further with Shrink (see failCase) and its Encode
// bytes belong in the corpus directory of the target that found it.

import "testing"

// fuzzSeeds are shared starting points: printable so the corpus files stay
// readable, shaped to decode into structurally different datasets.
var fuzzSeeds = [][]byte{
	[]byte("0"),
	[]byte("00000"),
	[]byte("7A1"),
	[]byte("4820AA77AA77AA77"),
	[]byte("662100qq3ff0Z10a"),
	[]byte("39 0A\xff\xffB\x0f\x0fC\xf0\xf0D\x01\x01E\x80\x80"),
	[]byte("852\x10\x05a\x07\x00b\x03\x01c\x07\x02d\x01\x03e\x0f\x00f\x1f\x01"),
}

func fuzzCase(t *testing.T, data []byte, check func(Case) error) {
	c, ok := Decode(data)
	if !ok {
		return
	}
	if err := check(c); err != nil {
		shrunk := Shrink(c, func(cand Case) bool { return check(cand) != nil }, 2000)
		t.Fatalf("%v\nminimized case:\n%s", err, Describe(shrunk))
	}
}

// FuzzMineEquivalence drives equivalence class (a): Mine ≡ MineParallel ≡
// the IRG oracle, including lower bounds.
func FuzzMineEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCase(t, data, func(c Case) error {
			c.Opt.ComputeLowerBounds = true
			return CheckMineEquivalence(c)
		})
	})
}

// FuzzClosedSetEquivalence drives equivalence classes (b) and (c): the
// CHARM/CLOSET/ColumnE lattice agreement and CARPENTER against the oracle.
func FuzzClosedSetEquivalence(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCase(t, data, func(c Case) error {
			if err := CheckClosedSetEquivalence(c); err != nil {
				return err
			}
			return CheckCarpenterEquivalence(c)
		})
	})
}

// FuzzMineLB drives the lower-bound miner against the subset-exhaustive
// minimal-generator oracle, plus the metamorphic invariants (cheap on the
// same decoded case, and item/row relabelings stress MineLB's intersection
// collection from fresh angles).
func FuzzMineLB(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzCase(t, data, func(c Case) error {
			if err := CheckMineLB(c); err != nil {
				return err
			}
			if err := CheckRowPermutationInvariance(c); err != nil {
				return err
			}
			if err := CheckORDReorderInvariance(c); err != nil {
				return err
			}
			if err := CheckReplicationScaling(c, 2); err != nil {
				return err
			}
			return CheckItemRelabelInvariance(c)
		})
	})
}
