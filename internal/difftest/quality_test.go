package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// qualityDataset builds a dataset big enough that node budgets bite but
// small enough for the test to stay fast.
func qualityDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	lists := make([][]dataset.Item, 30)
	classes := make([]int, 30)
	for i := range lists {
		classes[i] = i % 2
		for it := 0; it < 16; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, 16, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The harness itself: rows come back for every (strategy, frac) cell,
// recall and regret are in range, full-budget best-first converges to the
// exact answer, and recall under a node budget is what a recomputation
// from the kept scores says it is.
func TestQualityHarnessNodeBudget(t *testing.T) {
	d := qualityDataset(t)
	spec := QualitySpec{
		Name: "rand30", D: d, Consequent: 0, K: 10, MinSup: 2,
		Measure:    core.MeasureChi2,
		Strategies: []core.Strategy{core.StrategyBestFirst, core.StrategyLeap, core.StrategySample},
		Fracs:      []float64{0.05, 0.25, 1.0},
		SampleSeed: 11,
	}
	rows, err := RunQuality(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(spec.Strategies) * len(spec.Fracs); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.BudgetKind != "nodes" || r.MaxNodes < 1 {
			t.Fatalf("row %+v: bad budget", r)
		}
		if r.Recall < 0 || r.Recall > 1 || r.Regret < 0 || r.Regret > 1 {
			t.Fatalf("row %+v: recall/regret out of range", r)
		}
		if r.ExactNodes <= 0 || r.ExactMillis < 0 {
			t.Fatalf("row %+v: bad exact baseline", r)
		}
		if r.Recall == 1 && r.Regret != 0 {
			t.Fatalf("row %+v: full recall with nonzero regret", r)
		}
	}
	// Best-first given the exact miner's full node count must get most of
	// the answer: it spends nodes in bound order, so a same-size budget
	// keeps at least as much of the top-k as the exact walk had found by
	// its own end (empirically all of it; gate loosely to stay robust).
	best := MeanRecall(rows, func(r QualityRow) bool {
		return r.Strategy == "best_first" && r.BudgetFrac == 1.0
	})
	if best < 0.9 {
		t.Fatalf("best-first at a 100%% node budget has mean recall %v, want >= 0.9", best)
	}
	// And budgets must actually bind: the 5% cells expanded far fewer
	// nodes than the exact baseline.
	for _, r := range rows {
		if r.BudgetFrac == 0.05 && r.Strategy != "sample" && r.NodesExpanded > r.ExactNodes/2 {
			t.Fatalf("row %+v: 5%% budget did not bind", r)
		}
	}
}

// Wall-clock sweeps produce millis budgets and stay within range; this is
// the serving-facing mode benchjson -quality uses.
func TestQualityHarnessWallClock(t *testing.T) {
	d := qualityDataset(t)
	rows, err := RunQuality(QualitySpec{
		Name: "rand30", D: d, Consequent: 0, K: 10, MinSup: 2,
		Measure:    core.MeasureChi2,
		Strategies: []core.Strategy{core.StrategyBestFirst},
		Fracs:      []float64{0.1},
		WallClock:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.BudgetKind != "millis" || r.MaxMillis < 1 {
		t.Fatalf("row %+v: bad wall-clock budget", r)
	}
	if r.Recall < 0 || r.Recall > 1 {
		t.Fatalf("row %+v: recall out of range", r)
	}
}

func TestRecallAndRegret(t *testing.T) {
	for _, tc := range []struct {
		got, exact     []float64
		recall, regret float64
	}{
		{[]float64{3, 2, 1}, []float64{3, 2, 1}, 1, 0},
		{[]float64{3, 1}, []float64{3, 2}, 0.5, 0.2},
		{nil, []float64{1}, 0, 1},
		{[]float64{5}, nil, 1, 0},
		// Ties are multiset-matched, not double-counted.
		{[]float64{2, 2, 1}, []float64{2, 2, 2}, 2.0 / 3, 1.0 / 6},
	} {
		recall, regret := recallAndRegret(tc.got, tc.exact)
		if recall != tc.recall || regret != tc.regret {
			t.Fatalf("recallAndRegret(%v, %v) = %v, %v; want %v, %v",
				tc.got, tc.exact, recall, regret, tc.recall, tc.regret)
		}
	}
}
