package difftest

import (
	"fmt"
	"reflect"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/cobbler"
	"repro/internal/columne"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// comparePrepared asserts the contract of dataset.Snapshot reuse for one
// miner: a run handed a prepared snapshot must produce exactly the batch
// result and the deterministic Counters of a from-scratch run — the
// snapshot moves the build phase, it never changes the enumeration — and
// must record the reuse in Stats.PrepareReused.
func comparePrepared(label string, fresh, prepared any, fs, ps engine.Stats) error {
	if !reflect.DeepEqual(fresh, prepared) {
		return fmt.Errorf("%s: prepared run result differs from fresh run", label)
	}
	if fs.Counters != ps.Counters {
		return fmt.Errorf("%s: prepared counters %+v != fresh counters %+v", label, ps.Counters, fs.Counters)
	}
	if fs.PrepareReused != 0 {
		return fmt.Errorf("%s: fresh run claims PrepareReused=%d", label, fs.PrepareReused)
	}
	if ps.PrepareReused != 1 {
		return fmt.Errorf("%s: prepared run has PrepareReused=%d, want 1", label, ps.PrepareReused)
	}
	return nil
}

// CheckPrepared runs every miner on c twice — from scratch and through one
// shared prepared snapshot — and asserts batch results and Counters are
// identical (equivalence class (d) of the harness: prepared ≡ fresh).
func CheckPrepared(c Case) error {
	snap, err := dataset.NewSnapshot(c.D)
	if err != nil {
		return fmt.Errorf("NewSnapshot: %w", err)
	}

	// FARMER sequential.
	fres, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return fmt.Errorf("core.Mine: %w", err)
	}
	popt := c.Opt
	popt.Prepared = snap
	pres, err := core.Mine(c.D, c.Consequent, popt)
	if err != nil {
		return fmt.Errorf("core.Mine prepared: %w", err)
	}
	if err := comparePrepared("Mine", fres.Groups, pres.Groups, fres.Stats(), pres.Stats()); err != nil {
		return err
	}

	// FARMER parallel (fixed worker count; counters are schedule-invariant).
	fpar, err := core.MineParallel(c.D, c.Consequent, c.Opt, c.Workers)
	if err != nil {
		return fmt.Errorf("core.MineParallel: %w", err)
	}
	ppar, err := core.MineParallel(c.D, c.Consequent, popt, c.Workers)
	if err != nil {
		return fmt.Errorf("core.MineParallel prepared: %w", err)
	}
	if err := comparePrepared("MineParallel", fpar.Groups, ppar.Groups, fpar.Stats(), ppar.Stats()); err != nil {
		return err
	}

	// Top-k over the same snapshot.
	tkOpt := core.TopKOptions{K: 3, MinSup: c.Opt.MinSup}
	ftk, err := core.TopK(nil, c.D, c.Consequent, tkOpt)
	if err != nil {
		return fmt.Errorf("core.TopK: %w", err)
	}
	tkOpt.Prepared = snap
	ptk, err := core.TopK(nil, c.D, c.Consequent, tkOpt)
	if err != nil {
		return fmt.Errorf("core.TopK prepared: %w", err)
	}
	if err := comparePrepared("TopK", ftk.Groups, ptk.Groups, ftk.Stats(), ptk.Stats()); err != nil {
		return err
	}

	// CHARM.
	fch, err := charm.Mine(c.D, charm.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("charm.Mine: %w", err)
	}
	pch, err := charm.Mine(c.D, charm.Options{MinSup: c.MinSupCS, Prepared: snap})
	if err != nil {
		return fmt.Errorf("charm.Mine prepared: %w", err)
	}
	if err := comparePrepared("CHARM", fch.Closed, pch.Closed, fch.Stats(), pch.Stats()); err != nil {
		return err
	}

	// CLOSET.
	fcl, err := closet.Mine(c.D, closet.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("closet.Mine: %w", err)
	}
	pcl, err := closet.Mine(c.D, closet.Options{MinSup: c.MinSupCS, Prepared: snap})
	if err != nil {
		return fmt.Errorf("closet.Mine prepared: %w", err)
	}
	if err := comparePrepared("CLOSET", fcl.Closed, pcl.Closed, fcl.Stats(), pcl.Stats()); err != nil {
		return err
	}

	// ColumnE.
	ceOpt := columne.Options{MinSup: c.Opt.MinSup, MinConf: c.Opt.MinConf, MinChi: c.Opt.MinChi}
	fce, err := columne.Mine(c.D, c.Consequent, ceOpt)
	if err != nil {
		return fmt.Errorf("columne.Mine: %w", err)
	}
	ceOpt.Prepared = snap
	pce, err := columne.Mine(c.D, c.Consequent, ceOpt)
	if err != nil {
		return fmt.Errorf("columne.Mine prepared: %w", err)
	}
	if err := comparePrepared("ColumnE", fce.Rules, pce.Rules, fce.Stats(), pce.Stats()); err != nil {
		return err
	}

	// CARPENTER.
	fca, err := carpenter.Mine(c.D, carpenter.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("carpenter.Mine: %w", err)
	}
	pca, err := carpenter.Mine(c.D, carpenter.Options{MinSup: c.MinSupCS, Prepared: snap})
	if err != nil {
		return fmt.Errorf("carpenter.Mine prepared: %w", err)
	}
	if err := comparePrepared("CARPENTER", fca.Patterns, pca.Patterns, fca.Stats(), pca.Stats()); err != nil {
		return err
	}

	// COBBLER.
	fco, err := cobbler.Mine(c.D, cobbler.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("cobbler.Mine: %w", err)
	}
	pco, err := cobbler.Mine(c.D, cobbler.Options{MinSup: c.MinSupCS, Prepared: snap})
	if err != nil {
		return fmt.Errorf("cobbler.Mine prepared: %w", err)
	}
	return comparePrepared("COBBLER", fco.Patterns, pco.Patterns, fco.Stats(), pco.Stats())
}
