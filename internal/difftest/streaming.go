package difftest

import (
	"context"
	"errors"
	"fmt"
	"reflect"

	"repro/internal/core"
)

// CheckStreamingEquivalence asserts that streaming emission is a pure
// re-plumbing of batch mining: the sequence of rule groups delivered by
// core.MineStream is byte-identical (order included) to core.Mine's Groups
// slice, and the search-shaped counters agree.
func CheckStreamingEquivalence(c Case) error {
	batch, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return fmt.Errorf("core.Mine: %w", err)
	}
	var streamed []core.RuleGroup
	res, err := core.MineStream(context.Background(), c.D, c.Consequent, c.Opt,
		func(g core.RuleGroup) error {
			streamed = append(streamed, g)
			return nil
		})
	if err != nil {
		return fmt.Errorf("core.MineStream: %w", err)
	}
	if len(streamed) != len(batch.Groups) || (len(streamed) > 0 && !reflect.DeepEqual(streamed, batch.Groups)) {
		return fmt.Errorf("streamed %d groups differ from batch %d groups", len(streamed), len(batch.Groups))
	}
	if res.Stats().Counters != batch.Stats().Counters {
		return fmt.Errorf("streaming counters differ from batch:\n %+v\n %+v",
			res.Stats().Counters, batch.Stats().Counters)
	}
	return nil
}

// CheckCancelledPrefix asserts the streaming cancellation contract: a run
// cancelled after k deliveries has emitted exactly the first k groups of the
// full run — a byte-identical prefix, with nothing delivered after the
// cancellation point.
func CheckCancelledPrefix(c Case) error {
	full, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return fmt.Errorf("core.Mine: %w", err)
	}
	if len(full.Groups) == 0 {
		return nil
	}
	for _, stopAt := range []int{1, (len(full.Groups) + 1) / 2, len(full.Groups)} {
		ctx, cancel := context.WithCancel(context.Background())
		var emitted []core.RuleGroup
		_, err := core.MineStream(ctx, c.D, c.Consequent, c.Opt,
			func(g core.RuleGroup) error {
				emitted = append(emitted, g)
				if len(emitted) == stopAt {
					cancel()
				}
				return nil
			})
		cancel()
		if len(emitted) < stopAt {
			// The run finished before reaching stopAt deliveries; with
			// stopAt <= len(full.Groups) and equivalence already checked,
			// this cannot happen.
			return fmt.Errorf("cancelled run emitted %d groups, expected at least %d", len(emitted), stopAt)
		}
		if stopAt < len(full.Groups) && !errors.Is(err, context.Canceled) {
			return fmt.Errorf("cancelled run (stopAt=%d) returned err=%v, want context.Canceled", stopAt, err)
		}
		if !reflect.DeepEqual(emitted, full.Groups[:len(emitted)]) {
			return fmt.Errorf("cancelled run (stopAt=%d): emitted %d groups are not a prefix of the full run",
				stopAt, len(emitted))
		}
	}
	return nil
}
