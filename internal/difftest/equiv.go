// Package difftest is the differential correctness harness: it generates
// small random datasets, runs every miner in the repository over them, and
// cross-checks the results against each other and against the exhaustive
// oracles in internal/reference. Failures shrink to a minimal reproducer
// that can be committed to the fuzz corpus (see Encode).
//
// Three equivalence classes are asserted:
//
//	(a) core.Mine ≡ core.MineParallel ≡ reference.IRGsConstrained
//	    on rule-group row-support sets, confidences and chi values;
//	(b) charm ≡ closet ≡ columne, anchored on the closed-set lattice of
//	    reference.ClosedSets;
//	(c) carpenter ≡ reference.ClosedSets (with row sets).
//
// plus the MineLB and top-k oracles, the anytime tier's determinism
// contract (quality.go), the streaming contract of core.MineStream
// (batch-identical delivery and cancelled-prefix, streaming.go) and four
// metamorphic invariants (metamorphic.go). quality.go also houses the
// quality harness grading the approximate top-k strategies against the
// exact miner (recall and score-regret as a function of budget — the
// BENCH_quality.json report).
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/carpenter"
	"repro/internal/charm"
	"repro/internal/closet"
	"repro/internal/columne"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/reference"
	"repro/internal/stats"
)

// groupKey is the canonical identity of a rule group for set comparison:
// antecedent, row-support set, and the support split (which fixes the
// confidence as an exact rational).
func groupKey(ant []dataset.Item, rows []int, supPos, supNeg int) string {
	return fmt.Sprintf("%v|%v|%d|%d", ant, rows, supPos, supNeg)
}

func coreGroupKeys(res *core.Result) []string {
	keys := make([]string, 0, len(res.Groups))
	for _, g := range res.Groups {
		keys = append(keys, groupKey(g.Antecedent, g.Rows, g.SupPos, g.SupNeg))
	}
	sort.Strings(keys)
	return keys
}

func refGroupKeys(groups []reference.RuleGroup) []string {
	keys := make([]string, 0, len(groups))
	for _, g := range groups {
		keys = append(keys, groupKey(g.Antecedent, g.Rows, g.SupPos, g.SupNeg))
	}
	sort.Strings(keys)
	return keys
}

func diffKeys(label string, got, want []string) error {
	if len(got) == len(want) {
		same := true
		for i := range got {
			if got[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return nil
		}
	}
	return fmt.Errorf("%s:\n got  %s\n want %s", label, strings.Join(got, " ; "), strings.Join(want, " ; "))
}

// CheckMineEquivalence asserts equivalence class (a): sequential FARMER,
// parallel FARMER and the brute-force IRG oracle agree on the exact set of
// interesting rule groups — row-support sets, support splits, confidences
// and chi values — and, when lower bounds are requested, on every group's
// minimal generators.
func CheckMineEquivalence(c Case) error {
	seq, err := core.Mine(c.D, c.Consequent, c.Opt)
	if err != nil {
		return fmt.Errorf("core.Mine: %w", err)
	}
	par, err := core.MineParallel(c.D, c.Consequent, c.Opt, c.Workers)
	if err != nil {
		return fmt.Errorf("core.MineParallel: %w", err)
	}
	ref := reference.IRGsConstrained(c.D, c.Consequent, reference.Constraints{
		MinSup:         c.Opt.MinSup,
		MinConf:        c.Opt.MinConf,
		MinChi:         c.Opt.MinChi,
		MinLift:        c.Opt.MinLift,
		MinConviction:  c.Opt.MinConviction,
		MinEntropyGain: c.Opt.MinEntropyGain,
		MinGiniGain:    c.Opt.MinGiniGain,
	})
	if err := diffKeys("Mine vs oracle", coreGroupKeys(seq), refGroupKeys(ref)); err != nil {
		return err
	}
	if err := diffKeys(fmt.Sprintf("MineParallel(workers=%d) vs Mine", c.Workers),
		coreGroupKeys(par), coreGroupKeys(seq)); err != nil {
		return err
	}

	// Parallel stats must be deterministic: the summed counters are a
	// property of the task decomposition, not of scheduling or worker count,
	// and the result-shaped counters match sequential Mine. (Only asserted
	// without ablation switches — disabling pruning 2 allows duplicate
	// discoveries whose rejection accounting is legitimately path-dependent.)
	if !c.Opt.DisablePruning1 && !c.Opt.DisablePruning2 && !c.Opt.DisablePruning3 {
		otherWorkers := 1
		if c.Workers == 1 {
			otherWorkers = 3
		}
		par2, err := core.MineParallel(c.D, c.Consequent, c.Opt, otherWorkers)
		if err != nil {
			return fmt.Errorf("core.MineParallel(workers=%d): %w", otherWorkers, err)
		}
		if par.Stats().Counters != par2.Stats().Counters {
			return fmt.Errorf("parallel stats differ across worker counts %d vs %d:\n %+v\n %+v",
				c.Workers, otherWorkers, par.Stats(), par2.Stats())
		}
		if par.Stats().GroupsEmitted != seq.Stats().GroupsEmitted ||
			par.Stats().GroupsNotInterest != seq.Stats().GroupsNotInterest {
			return fmt.Errorf("parallel group accounting %d/%d differs from sequential %d/%d",
				par.Stats().GroupsEmitted, par.Stats().GroupsNotInterest,
				seq.Stats().GroupsEmitted, seq.Stats().GroupsNotInterest)
		}
	}

	// Confidence and chi must match the oracle exactly: all three compute
	// them from identical integer margins through the same stats routines.
	refByRows := make(map[string]reference.RuleGroup, len(ref))
	for _, g := range ref {
		refByRows[fmt.Sprint(g.Rows)] = g
	}
	for _, res := range []*core.Result{seq, par} {
		for _, g := range res.Groups {
			want, ok := refByRows[fmt.Sprint(g.Rows)]
			if !ok {
				return fmt.Errorf("group %v rows %v missing from oracle", g.Antecedent, g.Rows)
			}
			if g.Confidence != want.Confidence {
				return fmt.Errorf("group %v confidence %v, oracle %v", g.Antecedent, g.Confidence, want.Confidence)
			}
			if g.Chi != want.Chi {
				return fmt.Errorf("group %v chi %v, oracle %v", g.Antecedent, g.Chi, want.Chi)
			}
		}
	}

	if c.Opt.ComputeLowerBounds {
		for _, res := range []*core.Result{seq, par} {
			for _, g := range res.Groups {
				if g.Truncated {
					continue
				}
				want := reference.LowerBounds(c.D, g.Antecedent)
				if err := diffKeys(fmt.Sprintf("lower bounds of %v", g.Antecedent),
					itemSliceKeys(g.LowerBounds), itemSliceKeys(want)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func itemSliceKeys(sets [][]dataset.Item) []string {
	keys := make([]string, len(sets))
	for i, s := range sets {
		keys[i] = fmt.Sprint(s)
	}
	sort.Strings(keys)
	return keys
}

// closedKey identifies a closed set by items and support.
func closedKey(items []dataset.Item, sup int) string {
	return fmt.Sprintf("%v|%d", items, sup)
}

// CheckClosedSetEquivalence asserts equivalence class (b): CHARM and CLOSET
// produce the closed-set lattice of the brute-force oracle, and every
// ColumnE rule lands on that lattice — its antecedent's closure is a mined
// closed set with the same row set — while ColumnE's rule-group SET matches
// the IRG oracle under the same constraints.
func CheckClosedSetEquivalence(c Case) error {
	refItems, refSups := reference.ClosedSets(c.D, c.MinSupCS)
	want := make([]string, len(refItems))
	latticeByRows := make(map[string][]dataset.Item, len(refItems))
	for i := range refItems {
		want[i] = closedKey(refItems[i], refSups[i])
	}
	sort.Strings(want)

	ch, err := charm.Mine(c.D, charm.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("charm.Mine: %w", err)
	}
	got := make([]string, len(ch.Closed))
	for i, cs := range ch.Closed {
		got[i] = closedKey(cs.Items, cs.Support)
		if !dataset.SupportSet(c.D, cs.Items).Equal(cs.Rows) {
			return fmt.Errorf("charm closed set %v tidset disagrees with R(items)", cs.Items)
		}
		latticeByRows[fmt.Sprint(cs.Rows.Ints())] = cs.Items
	}
	sort.Strings(got)
	if err := diffKeys("CHARM vs oracle closed sets", got, want); err != nil {
		return err
	}

	cl, err := closet.Mine(c.D, closet.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("closet.Mine: %w", err)
	}
	got = got[:0]
	for _, cs := range cl.Closed {
		got = append(got, closedKey(cs.Items, cs.Support))
	}
	sort.Strings(got)
	if err := diffKeys("CLOSET vs CHARM closed sets", got, want); err != nil {
		return err
	}

	// ColumnE: rule groups against the IRG oracle, representatives against
	// the lattice. ColumnE prunes on positive support, so MinSupCS (a
	// class-blind row support) does not apply; use the case's rule MinSup.
	ce, err := columne.Mine(c.D, c.Consequent, columne.Options{
		MinSup:  c.Opt.MinSup,
		MinConf: c.Opt.MinConf,
		MinChi:  c.Opt.MinChi,
	})
	if err != nil {
		return fmt.Errorf("columne.Mine: %w", err)
	}
	irgs := reference.IRGs(c.D, c.Consequent, c.Opt.MinSup, c.Opt.MinConf, c.Opt.MinChi)
	ceKeys := make([]string, len(ce.Rules))
	for i, r := range ce.Rules {
		ceKeys[i] = fmt.Sprintf("%v|%d|%d", r.Rows.Ints(), r.SupPos, r.SupNeg)
	}
	irgKeys := make([]string, len(irgs))
	for i, g := range irgs {
		irgKeys[i] = fmt.Sprintf("%v|%d|%d", g.Rows, g.SupPos, g.SupNeg)
	}
	sort.Strings(ceKeys)
	sort.Strings(irgKeys)
	if err := diffKeys("ColumnE rule groups vs IRG oracle", ceKeys, irgKeys); err != nil {
		return err
	}
	for _, r := range ce.Rules {
		closure := dataset.Closure(c.D, r.Antecedent)
		onLattice, ok := latticeByRows[fmt.Sprint(r.Rows.Ints())]
		if r.Rows.Count() >= c.MinSupCS {
			if !ok {
				return fmt.Errorf("ColumnE rule %v: row set %v missing from closed-set lattice",
					r.Antecedent, r.Rows.Ints())
			}
			if closedKey(closure, r.Rows.Count()) != closedKey(onLattice, r.Rows.Count()) {
				return fmt.Errorf("ColumnE rule %v: closure %v != lattice closed set %v",
					r.Antecedent, closure, onLattice)
			}
		}
	}
	return nil
}

// CheckCarpenterEquivalence asserts equivalence class (c): CARPENTER mines
// exactly the oracle's closed-set lattice, with correct row sets.
func CheckCarpenterEquivalence(c Case) error {
	refItems, refSups := reference.ClosedSets(c.D, c.MinSupCS)
	want := make([]string, len(refItems))
	for i := range refItems {
		want[i] = closedKey(refItems[i], refSups[i])
	}
	sort.Strings(want)

	cp, err := carpenter.Mine(c.D, carpenter.Options{MinSup: c.MinSupCS})
	if err != nil {
		return fmt.Errorf("carpenter.Mine: %w", err)
	}
	got := make([]string, len(cp.Patterns))
	for i, p := range cp.Patterns {
		got[i] = closedKey(p.Items, p.Support)
		if rows := dataset.SupportSet(c.D, p.Items).Ints(); fmt.Sprint(rows) != fmt.Sprint(p.Rows) {
			return fmt.Errorf("carpenter pattern %v rows %v != R(items) %v", p.Items, p.Rows, rows)
		}
	}
	sort.Strings(got)
	return diffKeys("CARPENTER vs oracle closed sets", got, want)
}

// maxLBAntecedent caps the antecedent size fed to the subset-exhaustive
// lower-bound oracle (2^|A| masks per group).
const maxLBAntecedent = 10

// CheckMineLB asserts that core.MineLowerBounds reproduces the brute-force
// minimal generators of every rule group of the dataset (the MineLB oracle).
func CheckMineLB(c Case) error {
	for _, gl := range reference.MineLB(c.D, c.Consequent, maxLBAntecedent) {
		a := gl.Group.Antecedent
		got, truncated := core.MineLowerBounds(c.D, a, dataset.SupportSet(c.D, a), 0)
		if truncated {
			return fmt.Errorf("MineLowerBounds(%v) truncated without a cap", a)
		}
		if err := diffKeys(fmt.Sprintf("MineLB of group %v", a),
			itemSliceKeys(got), itemSliceKeys(gl.LowerBounds)); err != nil {
			return err
		}
	}
	return nil
}

// topKMeasures pairs each core measure with its stats function, in the
// (x, y, n, m) contingency signature shared by core and reference.
var topKMeasures = []struct {
	Name    string
	Measure core.Measure
	Fn      func(x, y, n, m int) float64
}{
	{"chi2", core.MeasureChi2, stats.Chi2},
	{"entropy", core.MeasureEntropyGain, stats.EntropyGain},
	{"gini", core.MeasureGiniGain, stats.GiniGain},
}

// CheckTopK asserts that core.MineTopK returns the oracle's top-k scores
// for every measure. Group identity is compared only where the score is
// strictly above the k-th best (ties at the threshold may legitimately keep
// different representatives).
func CheckTopK(c Case, k int) error {
	for _, m := range topKMeasures {
		got, err := core.MineTopK(c.D, c.Consequent, k, m.Measure, c.Opt.MinSup)
		if err != nil {
			return fmt.Errorf("MineTopK(%s): %w", m.Name, err)
		}
		want := reference.TopK(c.D, c.Consequent, k, m.Fn, c.Opt.MinSup)
		if len(got) != len(want) {
			return fmt.Errorf("MineTopK(%s): %d groups, oracle %d", m.Name, len(got), len(want))
		}
		for i := range got {
			if got[i].Score != want[i].Score {
				return fmt.Errorf("MineTopK(%s) rank %d: score %v, oracle %v",
					m.Name, i, got[i].Score, want[i].Score)
			}
		}
	}
	return nil
}

// CheckAll runs every equivalence class and metamorphic invariant over one
// case, returning the first failure.
func CheckAll(c Case) error {
	checks := []struct {
		name string
		fn   func() error
	}{
		{"mine-equivalence", func() error { return CheckMineEquivalence(c) }},
		{"streaming-equivalence", func() error { return CheckStreamingEquivalence(c) }},
		{"cancelled-prefix", func() error { return CheckCancelledPrefix(c) }},
		{"closed-set-equivalence", func() error { return CheckClosedSetEquivalence(c) }},
		{"carpenter-equivalence", func() error { return CheckCarpenterEquivalence(c) }},
		{"minelb-oracle", func() error { return CheckMineLB(c) }},
		{"topk-oracle", func() error { return CheckTopK(c, 3) }},
		{"anytime-determinism", func() error { return CheckAnytimeDeterminism(c, 3) }},
		{"row-permutation", func() error { return CheckRowPermutationInvariance(c) }},
		{"ord-reordering", func() error { return CheckORDReorderInvariance(c) }},
		{"replication-scaling", func() error { return CheckReplicationScaling(c, 2) }},
		{"item-relabeling", func() error { return CheckItemRelabelInvariance(c) }},
	}
	for _, chk := range checks {
		if err := chk.fn(); err != nil {
			return fmt.Errorf("%s: %w", chk.name, err)
		}
	}
	return nil
}
