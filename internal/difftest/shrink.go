package difftest

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Shrink greedily minimizes a failing case: it tries dropping rows, merging
// away classes, dropping whole item columns, and removing single items from
// single rows, keeping any reduction under which fails still returns true.
// The predicate must treat the case as self-contained (it receives the
// shrunk dataset with Consequent clamped into range). maxSteps bounds the
// number of predicate evaluations; the loop also stops at a fixpoint.
func Shrink(c Case, fails func(Case) bool, maxSteps int) Case {
	if maxSteps <= 0 {
		maxSteps = 4096
	}
	steps := 0
	try := func(cand Case) bool {
		if steps >= maxSteps {
			return false
		}
		steps++
		if cand.D.Validate() != nil {
			return false
		}
		return fails(cand)
	}
	for {
		reduced := false

		// Drop rows, highest index first so earlier ids stay stable.
		for ri := len(c.D.Rows) - 1; ri >= 0; ri-- {
			cand := c
			cand.D = c.D.Clone()
			cand.D.Rows = append(cand.D.Rows[:ri], cand.D.Rows[ri+1:]...)
			if try(cand) {
				c = cand
				reduced = true
			}
		}

		// Merge the last class into class 0 while more than two remain.
		for c.D.NumClasses() > 2 {
			cand := c
			cand.D = c.D.Clone()
			last := cand.D.NumClasses() - 1
			for ri := range cand.D.Rows {
				if cand.D.Rows[ri].Class == last {
					cand.D.Rows[ri].Class = 0
				}
			}
			cand.D.ClassNames = cand.D.ClassNames[:last]
			if cand.Consequent >= last {
				cand.Consequent = 0
			}
			if !try(cand) {
				break
			}
			c = cand
			reduced = true
		}

		// Drop whole item columns (compacting ids above the dropped one).
		for it := c.D.NumItems - 1; it >= 0; it-- {
			cand := c
			cand.D = dropItem(c.D, dataset.Item(it))
			if try(cand) {
				c = cand
				reduced = true
			}
		}

		// Remove single items from single rows.
		for ri := range c.D.Rows {
			for k := len(c.D.Rows[ri].Items) - 1; k >= 0; k-- {
				cand := c
				cand.D = c.D.Clone()
				items := cand.D.Rows[ri].Items
				cand.D.Rows[ri].Items = append(items[:k], items[k+1:]...)
				if try(cand) {
					c = cand
					reduced = true
				}
			}
		}

		if !reduced || steps >= maxSteps {
			return c
		}
	}
}

// dropItem removes one item column entirely, shifting higher ids down.
func dropItem(d *dataset.Dataset, it dataset.Item) *dataset.Dataset {
	out := d.Clone()
	out.NumItems = d.NumItems - 1
	out.ItemNames = nil
	for ri := range out.Rows {
		items := out.Rows[ri].Items[:0]
		for _, x := range out.Rows[ri].Items {
			switch {
			case x == it:
			case x > it:
				items = append(items, x-1)
			default:
				items = append(items, x)
			}
		}
		out.Rows[ri].Items = items
	}
	return out
}

// Describe renders a case as a reproducible Go literal plus its fuzz-corpus
// encoding, for failure messages.
func Describe(c Case) string {
	var b strings.Builder
	fmt.Fprintf(&b, "consequent=%d opt=%+v workers=%d minsupCS=%d\n",
		c.Consequent, c.Opt, c.Workers, c.MinSupCS)
	fmt.Fprintf(&b, "rows (class: items):\n")
	for _, r := range c.D.Rows {
		fmt.Fprintf(&b, "  %s: %v\n", c.D.ClassNames[r.Class], r.Items)
	}
	if enc := Encode(c); enc != nil {
		fmt.Fprintf(&b, "fuzz corpus entry:\ngo test fuzz v1\n[]byte(%q)\n", enc)
	}
	return b.String()
}
