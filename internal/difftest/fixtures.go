package difftest

import (
	"repro/internal/core"
	"repro/internal/dataset"
)

// Fixture is one hand-picked edge-case dataset shared by the edge tests in
// every miner package. Each is small enough for the exhaustive oracles.
type Fixture struct {
	Name       string
	D          *dataset.Dataset
	Consequent int
}

// Fixtures returns the edge cases that random generation hits only rarely:
// empty and single-row datasets, single-class datasets (all rows positive or
// all negative for the consequent), duplicate rows, and a universal column
// present in every row.
func Fixtures() []Fixture {
	mk := func(name string, lists [][]dataset.Item, classes []int, numItems int, classNames []string, consequent int) Fixture {
		d, err := dataset.FromItemLists(lists, classes, numItems, classNames)
		if err != nil {
			panic("difftest: fixture " + name + ": " + err.Error())
		}
		return Fixture{Name: name, D: d, Consequent: consequent}
	}
	two := []string{"C", "N"}
	return []Fixture{
		{Name: "empty", D: &dataset.Dataset{NumItems: 2, ClassNames: two}},
		mk("single-row", [][]dataset.Item{{0, 1, 2}}, []int{0}, 3, two, 0),
		mk("single-row-no-items", [][]dataset.Item{{}}, []int{0}, 2, two, 0),
		mk("all-positive", [][]dataset.Item{{0, 1}, {0}, {1, 2}, {0, 2}}, []int{0, 0, 0, 0}, 3, two, 0),
		mk("all-negative", [][]dataset.Item{{0, 1}, {0}, {1, 2}, {0, 2}}, []int{1, 1, 1, 1}, 3, two, 0),
		mk("duplicate-rows", [][]dataset.Item{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 2}, {0, 2}},
			[]int{0, 0, 1, 0, 1}, 3, two, 0),
		mk("universal-column", [][]dataset.Item{{0, 1}, {0, 2}, {0, 3}, {0, 1, 3}, {0}},
			[]int{0, 1, 0, 1, 0}, 4, two, 0),
		mk("identical-rows-one-class", [][]dataset.Item{{1, 2}, {1, 2}, {1, 2}}, []int{0, 0, 0}, 3, two, 0),
		mk("three-classes", [][]dataset.Item{{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}, {2}},
			[]int{0, 1, 2, 0, 1}, 3, []string{"C", "N", "M"}, 2),
	}
}

// Case lifts the fixture into a differential-test Case with permissive
// constraints, ready for CheckAll.
func (f Fixture) Case() Case {
	return Case{
		D:          f.D,
		Consequent: f.Consequent,
		Opt:        core.Options{MinSup: 1, ComputeLowerBounds: true},
		Workers:    2,
		MinSupCS:   1,
	}
}
