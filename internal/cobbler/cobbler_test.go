package cobbler

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
)

func keys(ps []ClosedPattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = fmt.Sprintf("%v|%d", p.Items, p.Support)
	}
	sort.Strings(out)
	return out
}

func refKeys(items [][]dataset.Item, sups []int) []string {
	out := make([]string, len(items))
	for i := range items {
		out[i] = fmt.Sprintf("%v|%d", items[i], sups[i])
	}
	sort.Strings(out)
	return out
}

func TestPaperExampleAllModes(t *testing.T) {
	d := dataset.PaperExample()
	for _, mode := range []string{"", "row", "feature"} {
		for _, minsup := range []int{1, 2, 3} {
			res, err := Mine(d, Options{MinSup: minsup, ForceMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			items, sups := reference.ClosedSets(d, minsup)
			if got, want := keys(res.Patterns), refKeys(items, sups); !reflect.DeepEqual(got, want) {
				t.Fatalf("mode=%q minsup=%d:\n got %v\nwant %v", mode, minsup, got, want)
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	d := dataset.PaperExample()
	if _, err := Mine(d, Options{MinSup: 0}); err == nil {
		t.Fatal("MinSup 0 accepted")
	}
	if _, err := Mine(d, Options{MinSup: 1, ForceMode: "sideways"}); err == nil {
		t.Fatal("bad ForceMode accepted")
	}
}

func TestEmptyDataset(t *testing.T) {
	res, err := Mine(&dataset.Dataset{ClassNames: []string{"x"}}, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Fatal("patterns from empty dataset")
	}
}

func TestModeStatsAccounted(t *testing.T) {
	d := dataset.PaperExample()
	row, err := Mine(d, Options{MinSup: 2, ForceMode: "row"})
	if err != nil {
		t.Fatal(err)
	}
	if row.RowNodes == 0 || row.FeatureNodes != 0 {
		t.Fatalf("forced row mode counted %d row / %d feature nodes", row.RowNodes, row.FeatureNodes)
	}
	feat, err := Mine(d, Options{MinSup: 2, ForceMode: "feature"})
	if err != nil {
		t.Fatal(err)
	}
	if feat.FeatureNodes == 0 {
		t.Fatal("forced feature mode counted no feature nodes")
	}
}

func TestEstimatesSane(t *testing.T) {
	m := &miner{opt: Options{MinSup: 2}}
	if m.estimateRow(10) != pow2(9) {
		t.Fatalf("estimateRow(10) = %v", m.estimateRow(10))
	}
	if m.estimateRow(1) != 1 {
		t.Fatalf("estimateRow(1) = %v", m.estimateRow(1))
	}
	if pow2(70) != 1e18 {
		t.Fatal("pow2 overflow guard missing")
	}
}

func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 2 + rng.Intn(7)
	numItems := 3 + rng.Intn(7)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		for it := 0; it < numItems; it++ {
			if rng.Float64() < 0.5 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"only"})
	if err != nil {
		panic(err)
	}
	return d
}

// Property: dynamic and both forced modes all equal the oracle.
func TestPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for iter := 0; iter < 150; iter++ {
		d := randomDataset(rng)
		minsup := 1 + rng.Intn(3)
		items, sups := reference.ClosedSets(d, minsup)
		want := refKeys(items, sups)
		for _, mode := range []string{"", "row", "feature"} {
			res, err := Mine(d, Options{MinSup: minsup, ForceMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if got := keys(res.Patterns); !reflect.DeepEqual(got, want) {
				t.Fatalf("iter %d mode=%q minsup=%d:\n got %v\nwant %v\nrows %+v",
					iter, mode, minsup, got, want, d.Rows)
			}
		}
	}
}

// On a row-light/column-heavy dataset the estimator must route at least
// part of the search through row enumeration.
func TestDynamicPrefersRowsWhenShort(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lists := make([][]dataset.Item, 5)
	classes := make([]int, 5)
	for i := range lists {
		for it := 0; it < 40; it++ {
			if rng.Float64() < 0.6 {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
	}
	d, err := dataset.FromItemLists(lists, classes, 40, []string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(d, Options{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RowNodes == 0 {
		t.Fatalf("dynamic mode never used row enumeration on a 5×40 table (feature nodes: %d)",
			res.FeatureNodes)
	}
}
