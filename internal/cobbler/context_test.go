package cobbler

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// A pre-cancelled context stops within one node expansion in either mode
// with no deliveries and partial stats.
func TestMineContextCancelled(t *testing.T) {
	d := randomDataset(rand.New(rand.NewSource(51)))
	for _, mode := range []string{"", "row", "feature"} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		delivered := 0
		res, err := MineStream(ctx, d, Options{MinSup: 1, ForceMode: mode}, func(ClosedPattern) error {
			delivered++
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %q: err = %v, want context.Canceled", mode, err)
		}
		if delivered != 0 {
			t.Fatalf("mode %q: %d patterns delivered after cancellation", mode, delivered)
		}
		if res == nil || res.Stats().NodesVisited > 1 {
			t.Fatalf("mode %q: cancelled run res=%v, want partial stats with <= 1 node", mode, res)
		}
	}
}

// Streaming delivery, once sorted, is byte-identical to batch Mine in
// every mode.
func TestMineStreamEquivalentToBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 30; iter++ {
		d := randomDataset(rng)
		for _, mode := range []string{"", "row", "feature"} {
			opt := Options{MinSup: 1 + rng.Intn(3), ForceMode: mode}
			batch, err := Mine(d, opt)
			if err != nil {
				t.Fatal(err)
			}
			var streamed []ClosedPattern
			res, err := MineStream(context.Background(), d, opt, func(p ClosedPattern) error {
				streamed = append(streamed, p)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(streamed, func(i, j int) bool { return lessItems(streamed[i].Items, streamed[j].Items) })
			if !reflect.DeepEqual(streamed, batch.Patterns) {
				t.Fatalf("iter %d mode %q: streamed %d patterns != batch %d",
					iter, mode, len(streamed), len(batch.Patterns))
			}
			if res.Stats().Counters != batch.Stats().Counters {
				t.Fatalf("iter %d mode %q: counters differ:\n %+v\n %+v",
					iter, mode, res.Stats().Counters, batch.Stats().Counters)
			}
		}
	}
}

// A callback error aborts the run and surfaces verbatim.
func TestMineStreamCallbackError(t *testing.T) {
	d := randomDataset(rand.New(rand.NewSource(53)))
	boom := errors.New("boom")
	calls := 0
	_, err := MineStream(context.Background(), d, Options{MinSup: 1}, func(ClosedPattern) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want callback error", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after erroring", calls)
	}
}
