// Package cobbler implements COBBLER (Pan, Tung, Cong, Xu; SSDBM 2004),
// the successor the FARMER authors built for tables that are large in BOTH
// dimensions: a closed-pattern miner that switches DYNAMICALLY between row
// enumeration (CARPENTER-style, cheap when rows are few) and feature
// enumeration (CHARM-style, cheap when frequent features are few), choosing
// per subtree whichever the cost estimator predicts to be smaller.
//
// The companion talk for the FARMER paper describes the scheme: each
// feature-enumeration node can hand its subtree to a row enumerator over
// its tidset, and the switching condition estimates, per candidate subtree,
// the deepest enumeration level reachable before minimum support cuts it
// off.
//
// Feature enumeration uses CHARM's itemset–tidset properties to collapse
// equivalent branches; row enumeration maintains the itemset intersection
// incrementally. Both emit the global closure of their current node, and a
// row-set-keyed table deduplicates patterns reachable from both spaces.
package cobbler

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// ClosedPattern is one closed itemset with its support.
type ClosedPattern struct {
	Items   []dataset.Item
	Support int
}

// Options configures a run.
type Options struct {
	// MinSup is the minimum absolute row support, ≥ 1.
	MinSup int

	// ForceMode pins the enumeration mode instead of switching dynamically:
	// "" (dynamic), "row", or "feature". The ablation benchmarks use it to
	// quantify what switching buys.
	ForceMode string

	// OnClosed, when non-nil, switches the canonical entry point
	// (farmer.RunCOBBLER) to streaming emission in discovery order; the
	// result accumulates no Patterns. Ignored by the low-level Mine*
	// functions, which take their callback as an argument.
	OnClosed func(ClosedPattern) error

	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset: the run takes its per-item row bitsets from the snapshot's
	// shared structures instead of rebuilding them. The snapshot must have
	// been built from the exact *Dataset passed to the mining call.
	Prepared *dataset.Snapshot
}

// Result carries the mined patterns and effort statistics.
type Result struct {
	Patterns []ClosedPattern
	// RowNodes and FeatureNodes count enumeration nodes per mode; Switches
	// counts feature→row hand-offs.
	RowNodes     int64
	FeatureNodes int64
	Switches     int64

	// stats carries the engine's unified counters; NodesVisited equals
	// RowNodes + FeatureNodes.
	stats engine.Stats
}

// Stats returns the engine's unified run statistics.
func (r *Result) Stats() engine.Stats { return r.stats }

// Count returns the number of closed patterns in the batch result.
func (r *Result) Count() int { return len(r.Patterns) }

// Mine returns all closed itemsets of d with support ≥ opt.MinSup.
func Mine(d *dataset.Dataset, opt Options) (*Result, error) {
	return MineContext(context.Background(), d, opt)
}

// MineContext is Mine under a context: cancellation is checked at every
// enumeration node in both modes. On cancellation it returns ctx.Err()
// with a non-nil Result carrying the partial statistics and the patterns
// already emitted.
func MineContext(ctx context.Context, d *dataset.Dataset, opt Options) (*Result, error) {
	var out []ClosedPattern
	res, err := MineStream(ctx, d, opt, func(p ClosedPattern) error {
		out = append(out, p)
		return nil
	})
	if res != nil {
		sort.Slice(out, func(i, j int) bool { return lessItems(out[i].Items, out[j].Items) })
		res.Patterns = out
	}
	return res, err
}

// MineStream is the streaming form of Mine: each closed pattern is
// delivered to onPattern the moment its row-set dedup check passes — final
// immediately, since the dedup store only grows — in discovery rather than
// Mine's sorted order. A callback error aborts the run and is returned
// verbatim; after cancellation no further patterns are delivered.
func MineStream(ctx context.Context, d *dataset.Dataset, opt Options, onPattern func(ClosedPattern) error) (*Result, error) {
	if opt.MinSup < 1 {
		return nil, fmt.Errorf("cobbler: MinSup must be >= 1, got %d", opt.MinSup)
	}
	switch opt.ForceMode {
	case "", "row", "feature":
	default:
		return nil, fmt.Errorf("cobbler: unknown ForceMode %q", opt.ForceMode)
	}
	snap := opt.Prepared
	if snap != nil && snap.Dataset() != d {
		return nil, fmt.Errorf("cobbler: Prepared snapshot was built from a different dataset")
	}
	if snap == nil {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	n := len(d.Rows)
	m := &miner{
		d:      d,
		n:      n,
		opt:    opt,
		ex:     ex,
		emitFn: onPattern,
		seen:   bitset.NewDedup(),
	}
	if snap != nil {
		// The shared per-item bitsets are only read (rowsOf copies into
		// the arena before intersecting), so reuse across concurrent runs
		// is safe.
		ex.Stats.PrepareReused++
		m.fullTi = snap.ItemRows()
	} else {
		m.fullTi = make([]*bitset.Set, d.NumItems)
		for it := 0; it < d.NumItems; it++ {
			m.fullTi[it] = bitset.New(n)
		}
		for ri, r := range d.Rows {
			for _, it := range r.Items {
				m.fullTi[it].Set(ri)
			}
		}
	}

	var roots []itPair
	for it := 0; it < d.NumItems; it++ {
		if sup := m.fullTi[it].Count(); sup >= opt.MinSup {
			roots = append(roots, itPair{items: []dataset.Item{dataset.Item(it)}, tids: m.fullTi[it], sup: sup})
		}
	}
	sortPairs(roots)

	all := bitset.New(n)
	for i := 0; i < n; i++ {
		all.Set(i)
	}
	setupDone()

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	var err error
	if m.pickMode(all, roots) == "row" {
		m.switches++
		err = m.rowEnumerate(all)
	} else {
		err = m.featureEnumerate(roots)
	}
	searchDone()

	ex.Stats.ArenaBytes = m.ar.Bytes() + m.items.SizeBytes() + m.pairs.SizeBytes()
	return &Result{
		RowNodes:     m.rowNodes,
		FeatureNodes: m.featNodes,
		Switches:     m.switches,
		stats:        ex.Stats,
	}, err
}

type itPair struct {
	items []dataset.Item
	tids  *bitset.Set
	sup   int // cached tidset count (sort key)
	dead  bool
}

func sortPairs(ps []itPair) {
	slices.SortStableFunc(ps, func(a, b itPair) int {
		if a.sup != b.sup {
			return a.sup - b.sup
		}
		return cmpItems(a.items, b.items)
	})
}

type miner struct {
	d      *dataset.Dataset
	n      int
	opt    Options
	fullTi []*bitset.Set

	ex     *engine.Exec
	emitFn func(ClosedPattern) error

	seen *bitset.Dedup // emitted closed row sets

	// Per-node scratch for both enumeration modes: child tidsets and
	// closure computations on the bitset arena, item unions and pair
	// headers on the slabs, all marked at node entry and released on
	// unwind. emit clones whatever escapes into the dedup store.
	ar    bitset.Arena
	items engine.Slab[dataset.Item]
	pairs engine.Slab[itPair]

	rowNodes  int64
	featNodes int64
	switches  int64
}

// pickMode applies the switching condition over a node's tidset and its
// viable extensions.
func (m *miner) pickMode(tids *bitset.Set, exts []itPair) string {
	if m.opt.ForceMode != "" {
		return m.opt.ForceMode
	}
	rows := tids.Count()
	if rows <= 1 || len(exts) == 0 {
		return "feature"
	}
	if m.estimateRow(rows) < m.estimateFeature(rows, exts) {
		return "row"
	}
	return "feature"
}

// estimateFeature mirrors the talk's estimator: for each extension (in
// descending support-fraction order), the deepest reachable level k is the
// largest k with S(f1)·…·S(fk)·rows ≥ minsup; the subtree estimate sums
// 2^level over start positions (each unpruned level roughly doubles the
// set-enumeration paths).
func (m *miner) estimateFeature(rows int, exts []itPair) float64 {
	fr := float64(rows)
	fracs := make([]float64, 0, len(exts))
	for i := range exts {
		sup := float64(exts[i].tids.Count())
		if sup >= float64(m.opt.MinSup) {
			fracs = append(fracs, sup/fr)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(fracs)))
	total := 0.0
	for start := range fracs {
		expected := fr
		level := 0
		for k := start; k < len(fracs); k++ {
			expected *= fracs[k]
			if expected < float64(m.opt.MinSup) {
				break
			}
			level++
		}
		total += pow2(level)
		if total > 1e12 {
			break
		}
	}
	return total
}

// estimateRow bounds the row-enumeration tree by 2^(rows−minsup+1): the
// effective combination depth before the support cut fires.
func (m *miner) estimateRow(rows int) float64 {
	depth := rows - m.opt.MinSup + 1
	if depth < 0 {
		depth = 0
	}
	return pow2(depth)
}

func pow2(k int) float64 {
	if k > 60 {
		return 1e18
	}
	return float64(int64(1) << uint(k))
}

// featureEnumerate is CHARM-extend with a per-subtree mode decision: each
// sibling group is processed with the four itemset–tidset properties, and
// each node's children either recurse feature-wise or are handed, as one
// subtree, to the row enumerator over the node's tidset.
func (m *miner) featureEnumerate(nodes []itPair) error {
	for i := range nodes {
		if nodes[i].dead {
			continue
		}
		if err := m.ex.EnterNode(); err != nil {
			return err
		}
		m.featNodes++
		amark := m.ar.Mark()
		imark := m.items.Mark()
		pmark := m.pairs.Mark()
		x := m.items.Alloc(len(nodes[i].items))
		copy(x, nodes[i].items)
		xt := nodes[i].tids
		children := m.pairs.Alloc(len(nodes) - i - 1)[:0]
		for j := i + 1; j < len(nodes); j++ {
			if nodes[j].dead {
				continue
			}
			// Count first; a tidset is materialized only for genuine
			// children that survive the support check.
			sup := xt.AndCount(nodes[j].tids)
			if sup < m.opt.MinSup {
				m.ex.Stats.PrunedTightBound++
				continue
			}
			switch {
			case xt.Equal(nodes[j].tids):
				x = m.mergeItems(x, nodes[j].items)
				nodes[j].dead = true
				m.ex.Stats.RowsAbsorbed++
			case xt.SubsetOf(nodes[j].tids):
				x = m.mergeItems(x, nodes[j].items)
				m.ex.Stats.RowsAbsorbed++
			default:
				// The extension items are borrowed from the sibling until
				// the prefix union below.
				children = append(children, itPair{items: nodes[j].items, tids: m.ar.And(xt, nodes[j].tids), sup: sup})
			}
		}
		// Children inherit the (possibly property-extended) prefix X, which
		// is final only now.
		for c := range children {
			children[c].items = m.mergeItems(x, children[c].items)
		}
		sortPairs(children)
		err := error(nil)
		if len(children) > 0 {
			if m.pickMode(xt, children) == "row" {
				m.switches++
				// The row enumerator over xt covers every closed pattern
				// whose rows lie inside xt — a superset of this subtree.
				err = m.rowEnumerate(xt)
			} else {
				err = m.featureEnumerate(children)
			}
		}
		if err == nil {
			err = m.emitRowsOfItems(x, xt)
		}
		m.pairs.Release(pmark)
		m.items.Release(imark)
		m.ar.Release(amark)
		if err != nil {
			return err
		}
	}
	return nil
}

// rowEnumerate explores every closed pattern whose row set is a subset of
// tids by CARPENTER-style row combination, maintaining the itemset
// intersection incrementally.
func (m *miner) rowEnumerate(tids *bitset.Set) error {
	rows := tids.Ints()
	var rec func(idx, depth int, common []dataset.Item) error
	rec = func(idx, depth int, common []dataset.Item) error {
		if err := m.ex.EnterNode(); err != nil {
			return err
		}
		m.rowNodes++
		if depth >= m.opt.MinSup && len(common) > 0 {
			amark := m.ar.Mark()
			closure := m.rowsOf(common)
			err := error(nil)
			if closure.Count() >= m.opt.MinSup {
				err = m.emit(closure, common)
			}
			m.ar.Release(amark)
			if err != nil {
				return err
			}
		}
		if depth+(len(rows)-idx) < m.opt.MinSup {
			m.ex.Stats.PrunedLooseBound++
			return nil // even taking every remaining row cannot reach minsup
		}
		for k := idx; k < len(rows); k++ {
			imark := m.items.Mark()
			next := m.intersectWithRow(common, &m.d.Rows[rows[k]], depth == 0)
			if len(next) == 0 {
				m.items.Release(imark)
				continue
			}
			err := rec(k+1, depth+1, next)
			m.items.Release(imark)
			if err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0, nil)
}

// rowsOf intersects the tidsets of the given items. The result lives on
// the bitset arena under the caller's mark.
func (m *miner) rowsOf(items []dataset.Item) *bitset.Set {
	out := m.ar.Copy(m.fullTi[items[0]])
	for _, it := range items[1:] {
		out.And(m.fullTi[it])
	}
	return out
}

// emitRowsOfItems emits the closure of an itemset discovered feature-side:
// its global tidset may exceed the local one when property merges added
// items, so the closure is recomputed from the items.
func (m *miner) emitRowsOfItems(items []dataset.Item, tids *bitset.Set) error {
	if len(items) == 0 {
		return nil
	}
	closure := dataset.CommonItemsSet(m.d, tids)
	if len(closure) == 0 {
		return nil
	}
	amark := m.ar.Mark()
	defer m.ar.Release(amark)
	rows := m.rowsOf(closure)
	if rows.Count() < m.opt.MinSup {
		return nil
	}
	return m.emit(rows, closure)
}

// emit records a closed pattern keyed by its (closed) row set. Emission
// decisions are final: the dedup store only grows, so a delivered pattern
// is never retracted.
func (m *miner) emit(rows *bitset.Set, items []dataset.Item) error {
	if err := m.ex.Err(); err != nil {
		return err // no deliveries after cancellation, even on unwind
	}
	if m.seen.Contains(rows) {
		m.ex.Stats.GroupsNotInterest++
		return nil
	}
	m.seen.Add(rows.Clone())
	sorted := append([]dataset.Item(nil), items...)
	slices.Sort(sorted)
	m.ex.Stats.GroupsEmitted++
	if m.emitFn != nil {
		return m.emitFn(ClosedPattern{Items: sorted, Support: rows.Count()})
	}
	return nil
}

// intersectWithRow intersects a sorted itemset with a row's items, on the
// items slab under the caller's mark; when first is true the row's items
// are borrowed as the initial set.
func (m *miner) intersectWithRow(common []dataset.Item, r *dataset.Row, first bool) []dataset.Item {
	if first {
		return r.Items
	}
	out := m.items.Alloc(len(common))
	i, j, k := 0, 0, 0
	for i < len(common) && j < len(r.Items) {
		switch {
		case common[i] < r.Items[j]:
			i++
		case common[i] > r.Items[j]:
			j++
		default:
			out[k] = common[i]
			k++
			i++
			j++
		}
	}
	return out[:k]
}

// mergeItems returns the sorted union of two sorted item slices, allocated
// on the items slab (both inputs stay valid; the old a leaks until the
// node's release, which the stack discipline bounds by tree depth).
func (m *miner) mergeItems(a, b []dataset.Item) []dataset.Item {
	out := m.items.Alloc(len(a) + len(b))
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out[k] = a[i]
			i++
		case a[i] > b[j]:
			out[k] = b[j]
			j++
		default:
			out[k] = a[i]
			i, j = i+1, j+1
		}
		k++
	}
	k += copy(out[k:], a[i:])
	k += copy(out[k:], b[j:])
	return out[:k]
}

func lessItems(a, b []dataset.Item) bool { return cmpItems(a, b) < 0 }

// cmpItems orders item slices lexicographically, shorter-first on ties.
func cmpItems(a, b []dataset.Item) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return int(a[i]) - int(b[i])
		}
	}
	return len(a) - len(b)
}
