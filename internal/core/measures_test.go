package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
	"repro/internal/stats"
)

func TestExtensionOptionValidation(t *testing.T) {
	d := dataset.PaperExample()
	cases := []Options{
		{MinSup: 1, MinLift: -1},
		{MinSup: 1, MinConviction: -0.5},
		{MinSup: 1, MinEntropyGain: 1.5},
		{MinSup: 1, MinEntropyGain: -0.1},
		{MinSup: 1, MinGiniGain: 0.6},
	}
	for i, opt := range cases {
		if _, err := Mine(d, 0, opt); err == nil {
			t.Errorf("case %d: invalid extension options accepted", i)
		}
	}
}

// Every emitted group satisfies every enabled measure threshold.
func TestExtensionConstraintsRespected(t *testing.T) {
	d := dataset.PaperExample()
	opt := Options{
		MinSup: 1, MinLift: 1.2, MinConviction: 1.5,
		MinEntropyGain: 0.05, MinGiniGain: 0.02,
	}
	res := mustMine(t, d, 0, opt)
	for _, g := range res.Groups {
		x, y := g.SupPos+g.SupNeg, g.SupPos
		if lift := stats.Lift(x, y, res.NumRows, res.NumPos); lift < opt.MinLift {
			t.Fatalf("group %v lift %v < %v", g.Antecedent, lift, opt.MinLift)
		}
		if conv := stats.Conviction(x, y, res.NumRows, res.NumPos); conv < opt.MinConviction {
			t.Fatalf("group %v conviction %v < %v", g.Antecedent, conv, opt.MinConviction)
		}
		if eg := stats.EntropyGain(x, y, res.NumRows, res.NumPos); eg < opt.MinEntropyGain {
			t.Fatalf("group %v entropy gain %v < %v", g.Antecedent, eg, opt.MinEntropyGain)
		}
		if gg := stats.GiniGain(x, y, res.NumRows, res.NumPos); gg < opt.MinGiniGain {
			t.Fatalf("group %v gini gain %v < %v", g.Antecedent, gg, opt.MinGiniGain)
		}
	}
}

// Property: mining with the footnote-3 constraints matches the oracle on
// random datasets.
func TestPropertyExtensionMeasuresAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3040506))
	for iter := 0; iter < 250; iter++ {
		d := randomDataset(rng)
		consequent := rng.Intn(2)
		c := reference.Constraints{
			MinSup:         1 + rng.Intn(2),
			MinConf:        []float64{0, 0.4}[rng.Intn(2)],
			MinChi:         []float64{0, 0.5}[rng.Intn(2)],
			MinLift:        []float64{0, 1.1, 1.5}[rng.Intn(3)],
			MinConviction:  []float64{0, 1.2}[rng.Intn(2)],
			MinEntropyGain: []float64{0, 0.05}[rng.Intn(2)],
			MinGiniGain:    []float64{0, 0.03}[rng.Intn(2)],
		}
		opt := Options{
			MinSup: c.MinSup, MinConf: c.MinConf, MinChi: c.MinChi,
			MinLift: c.MinLift, MinConviction: c.MinConviction,
			MinEntropyGain: c.MinEntropyGain, MinGiniGain: c.MinGiniGain,
		}
		res, err := Mine(d, consequent, opt)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := reference.IRGsConstrained(d, consequent, c)
		if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
			t.Fatalf("iter %d (constraints %+v, consequent %d):\nFARMER %v\noracle %v\nrows %+v",
				iter, c, consequent, got, exp, d.Rows)
		}
	}
}

// Property: the extension-measure prunings never change results when
// pruning 3 is disabled versus enabled.
func TestPropertyExtensionPruningInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 80; iter++ {
		d := randomDataset(rng)
		opt := Options{MinSup: 1, MinLift: 1.2, MinEntropyGain: 0.04, MinGiniGain: 0.02, MinConviction: 1.1}
		with := mustMine(t, d, 0, opt)
		opt.DisablePruning3 = true
		without := mustMine(t, d, 0, opt)
		if !reflect.DeepEqual(coreKeys(with), coreKeys(without)) {
			t.Fatalf("iter %d: extension pruning changed results", iter)
		}
	}
}

// The gain bounds must actually fire somewhere (otherwise the counters and
// code paths are dead).
func TestGainPruningFires(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, MinEntropyGain: 0.9})
	if len(res.Groups) != 0 {
		t.Fatalf("entropy gain 0.9 should eliminate every group on 5 rows, got %d", len(res.Groups))
	}
	if res.Stats().PrunedGainBound == 0 {
		t.Fatal("gain bound never pruned")
	}
}
