package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/reference"
)

func mustMine(t *testing.T, d *dataset.Dataset, consequent int, opt Options) *Result {
	t.Helper()
	res, err := Mine(d, consequent, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// groupKey renders a rule group canonically for set comparison.
func groupKey(ant []dataset.Item, rows []int, supPos, supNeg int) string {
	return fmt.Sprintf("%v|%v|%d|%d", ant, rows, supPos, supNeg)
}

func coreKeys(res *Result) []string {
	keys := make([]string, 0, len(res.Groups))
	for _, g := range res.Groups {
		keys = append(keys, groupKey(g.Antecedent, g.Rows, g.SupPos, g.SupNeg))
	}
	sort.Strings(keys)
	return keys
}

func refKeys(groups []reference.RuleGroup) []string {
	keys := make([]string, 0, len(groups))
	for _, g := range groups {
		keys = append(keys, groupKey(g.Antecedent, g.Rows, g.SupPos, g.SupNeg))
	}
	sort.Strings(keys)
	return keys
}

// The paper's running example, minsup=1 and no other constraints, checked
// group by group against the brute-force oracle.
func TestPaperExampleMatchesOracle(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1})
	want := reference.IRGs(d, 0, 1, 0, 0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("FARMER disagrees with oracle:\n got %v\nwant %v", got, exp)
	}
}

// Example 2: the rule group {e,h,ae,ah,eh,aeh} → C has upper bound aeh,
// rows {r2,r3,r4}, support 2 and confidence 2/3; its lower bounds are e, h.
// (It is a rule group but NOT an interesting one: its subset group a → C
// has confidence 3/4 ≥ 2/3, so FARMER correctly suppresses it; we check the
// group itself through the rule-group universe and MineLowerBounds.)
func TestPaperExample2RuleGroup(t *testing.T) {
	d := dataset.PaperExample()
	var found *reference.RuleGroup
	for _, g := range reference.AllRuleGroups(d, 0) {
		if dataset.StringFromItems(g.Antecedent) == "aeh" {
			gg := g
			found = &gg
			break
		}
	}
	if found == nil {
		t.Fatal("rule group aeh not in the rule-group universe")
	}
	if !reflect.DeepEqual(found.Rows, []int{1, 2, 3}) {
		t.Fatalf("rows = %v, want [1 2 3]", found.Rows)
	}
	if found.SupPos != 2 || found.SupNeg != 1 {
		t.Fatalf("sup = %d/%d, want 2/1", found.SupPos, found.SupNeg)
	}
	if math.Abs(found.Confidence-2.0/3) > 1e-12 {
		t.Fatalf("conf = %v, want 2/3", found.Confidence)
	}
	ant := dataset.ItemsFromString("aeh")
	lb, truncated := MineLowerBounds(d, ant, dataset.SupportSet(d, ant), 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	var lbs []string
	for _, l := range lb {
		lbs = append(lbs, dataset.StringFromItems(l))
	}
	sort.Strings(lbs)
	if !reflect.DeepEqual(lbs, []string{"e", "h"}) {
		t.Fatalf("lower bounds = %v, want [e h]", lbs)
	}
	// And FARMER must suppress aeh as uninteresting.
	res := mustMine(t, d, 0, Options{MinSup: 1})
	for _, g := range res.Groups {
		if dataset.StringFromItems(g.Antecedent) == "aeh" {
			t.Fatal("uninteresting group aeh emitted")
		}
	}
}

// Example 5/6 consequences: with pruning enabled the back scan fires on the
// paper example (node {3,4} repeats node {2,3}).
func TestPaperExampleBackScanFires(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1})
	if res.Stats().PrunedBackScan == 0 {
		t.Fatal("back-scan pruning never fired on the paper example")
	}
}

// Example 6: minconf = 95% prunes the subtree under node {1,3,4} (rule
// a → C at confidence 0.75): the only surviving IRGs have conf ≥ 0.95.
func TestPaperExample6ConfidencePruning(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, MinConf: 0.95})
	for _, g := range res.Groups {
		if g.Confidence < 0.95 {
			t.Fatalf("group %v below minconf: %v", g.Antecedent, g.Confidence)
		}
	}
	want := reference.IRGs(d, 0, 1, 0.95, 0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("minconf mining disagrees with oracle:\n got %v\nwant %v", got, exp)
	}
}

// Interestingness: a more specific rule with no confidence gain over a more
// general one must be suppressed.
func TestInterestingnessSuppression(t *testing.T) {
	// Rows: ab→C twice, a→C once, and a ¬C row with b only.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0, 1}, {0, 1}, {0}, {1}},
		[]int{0, 0, 0, 1},
		2, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	res := mustMine(t, d, 0, Options{MinSup: 1})
	want := reference.IRGs(d, 0, 1, 0, 0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("disagrees with oracle:\n got %v\nwant %v", got, exp)
	}
	// {a} has conf 1.0 (rows 0,1,2 all C); {a,b} has conf 1.0 too and a ⊂ ab,
	// so ab must be suppressed.
	for _, g := range res.Groups {
		if len(g.Antecedent) == 2 {
			t.Fatalf("uninteresting group %v emitted", g.Antecedent)
		}
	}
}

// Example 7 (MineLB): A = abcde with outside rows abcf and cdeg gives lower
// bounds {ad, ae, bd, be}.
func TestMineLBPaperExample7(t *testing.T) {
	// Items a..g = 0..6. Row 0 carries the full antecedent.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{
			{0, 1, 2, 3, 4}, // abcde
			{0, 1, 2, 5},    // abcf
			{2, 3, 4, 6},    // cdeg
		},
		[]int{0, 1, 1},
		7, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	a := []dataset.Item{0, 1, 2, 3, 4}
	rows := dataset.SupportSet(d, a)
	got, truncated := MineLowerBounds(d, a, rows, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	var names []string
	for _, lb := range got {
		names = append(names, dataset.StringFromItems(lb))
	}
	sort.Strings(names)
	if !reflect.DeepEqual(names, []string{"ad", "ae", "bd", "be"}) {
		t.Fatalf("lower bounds = %v, want [ad ae bd be]", names)
	}
}

func TestMineLBNoOutsideRows(t *testing.T) {
	// Every row contains A: lower bounds are the singletons.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0, 1}, {0, 1, 2}},
		[]int{0, 0}, 3, []string{"C"})
	if err != nil {
		t.Fatal(err)
	}
	a := []dataset.Item{0, 1}
	got, _ := MineLowerBounds(d, a, dataset.SupportSet(d, a), 0)
	if len(got) != 2 || len(got[0]) != 1 || len(got[1]) != 1 {
		t.Fatalf("lower bounds = %v, want singletons", got)
	}
}

func TestMineLBEmptyAntecedent(t *testing.T) {
	d := dataset.PaperExample()
	got, truncated := MineLowerBounds(d, nil, dataset.SupportSet(d, nil), 0)
	if got != nil || truncated {
		t.Fatal("empty antecedent should yield no bounds")
	}
}

func TestMineLBTruncation(t *testing.T) {
	// Build an antecedent whose lower bounds exceed the cap: Example 7's
	// group has 4; cap at 2.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{
			{0, 1, 2, 3, 4},
			{0, 1, 2, 5},
			{2, 3, 4, 6},
		},
		[]int{0, 1, 1}, 7, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	a := []dataset.Item{0, 1, 2, 3, 4}
	got, truncated := MineLowerBounds(d, a, dataset.SupportSet(d, a), 2)
	if !truncated {
		t.Fatal("expected truncation")
	}
	if len(got) > 2 {
		t.Fatalf("cap not applied: %d bounds", len(got))
	}
}

// Lower bounds of every mined group agree with the brute-force minimal
// generators on the paper example.
func TestLowerBoundsMatchOracle(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, ComputeLowerBounds: true})
	for _, g := range res.Groups {
		want := reference.LowerBounds(d, g.Antecedent)
		if !reflect.DeepEqual(g.LowerBounds, want) {
			t.Fatalf("group %v lower bounds:\n got %v\nwant %v",
				g.Antecedent, g.LowerBounds, want)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	d := dataset.PaperExample()
	cases := []Options{
		{MinSup: 0},
		{MinSup: 1, MinConf: -0.1},
		{MinSup: 1, MinConf: 1.5},
		{MinSup: 1, MinChi: -1},
		{MinSup: 1, MaxLowerBounds: -2},
	}
	for i, opt := range cases {
		if _, err := Mine(d, 0, opt); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := Mine(d, 5, Options{MinSup: 1}); err == nil {
		t.Error("out-of-range consequent accepted")
	}
	if _, err := Mine(d, -1, Options{MinSup: 1}); err == nil {
		t.Error("negative consequent accepted")
	}
}

func TestMinSupFiltersGroups(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 3})
	want := reference.IRGs(d, 0, 3, 0, 0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("minsup mining disagrees:\n got %v\nwant %v", got, exp)
	}
	for _, g := range res.Groups {
		if g.SupPos < 3 {
			t.Fatalf("group %v below minsup", g.Antecedent)
		}
	}
}

func TestMinChiFiltersGroups(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, MinChi: 1.0})
	want := reference.IRGs(d, 0, 1, 0, 1.0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("minchi mining disagrees:\n got %v\nwant %v", got, exp)
	}
}

func TestSecondConsequent(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 1, Options{MinSup: 1})
	want := reference.IRGs(d, 1, 1, 0, 0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("consequent ¬C mining disagrees:\n got %v\nwant %v", got, exp)
	}
}

func TestEmptyAndDegenerateDatasets(t *testing.T) {
	empty := &dataset.Dataset{ClassNames: []string{"C", "N"}}
	res := mustMine(t, empty, 0, Options{MinSup: 1})
	if len(res.Groups) != 0 {
		t.Fatal("groups from empty dataset")
	}

	// No row of the consequent class: nothing satisfies minsup ≥ 1.
	oneClass, err := dataset.FromItemLists([][]dataset.Item{{0}, {0, 1}}, []int{1, 1},
		2, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	res = mustMine(t, oneClass, 0, Options{MinSup: 1})
	if len(res.Groups) != 0 {
		t.Fatal("groups with zero-support consequent")
	}

	// All rows positive: confidences are all 1.
	allPos, err := dataset.FromItemLists([][]dataset.Item{{0, 1}, {0}}, []int{0, 0},
		2, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	res = mustMine(t, allPos, 0, Options{MinSup: 1})
	want := reference.IRGs(allPos, 0, 1, 0, 0)
	if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("all-positive mining disagrees:\n got %v\nwant %v", got, exp)
	}
}

func TestRowsAreOriginalIDs(t *testing.T) {
	// Interleave classes so ORD reordering is non-trivial, then check that
	// reported rows refer to the original ids.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0}, {0, 1}, {0}, {1}},
		[]int{1, 0, 1, 0}, 2, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	res := mustMine(t, d, 0, Options{MinSup: 1})
	for _, g := range res.Groups {
		sup := dataset.SupportSet(d, g.Antecedent)
		if !reflect.DeepEqual(g.Rows, sup.Ints()) {
			t.Fatalf("group %v rows %v != R(A) %v", g.Antecedent, g.Rows, sup.Ints())
		}
	}
}

// randomDataset builds a small random dataset for property tests.
func randomDataset(rng *rand.Rand) *dataset.Dataset {
	n := 3 + rng.Intn(6) // 3..8 rows
	numItems := 4 + rng.Intn(7)
	lists := make([][]dataset.Item, n)
	classes := make([]int, n)
	for i := 0; i < n; i++ {
		density := 0.2 + 0.6*rng.Float64()
		for it := 0; it < numItems; it++ {
			if rng.Float64() < density {
				lists[i] = append(lists[i], dataset.Item(it))
			}
		}
		classes[i] = rng.Intn(2)
	}
	// Guarantee both classes appear.
	classes[0] = 0
	if n > 1 {
		classes[1] = 1
	}
	d, err := dataset.FromItemLists(lists, classes, numItems, []string{"C", "N"})
	if err != nil {
		panic(err)
	}
	return d
}

// Property: FARMER equals the oracle on random datasets across random
// constraint settings, including lower bounds.
func TestPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20040613))
	for iter := 0; iter < 300; iter++ {
		d := randomDataset(rng)
		consequent := rng.Intn(2)
		minsup := 1 + rng.Intn(3)
		minconf := []float64{0, 0.3, 0.5, 0.8, 1.0}[rng.Intn(5)]
		minchi := []float64{0, 0.5, 2}[rng.Intn(3)]
		opt := Options{MinSup: minsup, MinConf: minconf, MinChi: minchi,
			ComputeLowerBounds: true}
		res, err := Mine(d, consequent, opt)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		want := reference.IRGs(d, consequent, minsup, minconf, minchi)
		if got, exp := coreKeys(res), refKeys(want); !reflect.DeepEqual(got, exp) {
			t.Fatalf("iter %d (minsup=%d minconf=%v minchi=%v consequent=%d):\nFARMER %v\noracle %v\ndataset: %+v",
				iter, minsup, minconf, minchi, consequent, got, exp, d.Rows)
		}
		for _, g := range res.Groups {
			wantLB := reference.LowerBounds(d, g.Antecedent)
			if !reflect.DeepEqual(g.LowerBounds, wantLB) {
				t.Fatalf("iter %d group %v lower bounds:\n got %v\nwant %v",
					iter, g.Antecedent, g.LowerBounds, wantLB)
			}
		}
	}
}

// Property: disabling any pruning strategy changes effort, never results.
func TestPropertyAblationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	variants := []Options{
		{MinSup: 1, DisablePruning1: true},
		{MinSup: 1, DisablePruning2: true},
		{MinSup: 1, DisablePruning3: true},
		{MinSup: 1, DisablePruning1: true, DisablePruning2: true, DisablePruning3: true},
		{MinSup: 2, MinConf: 0.5, DisablePruning3: true},
		{MinSup: 2, MinConf: 0.5, DisablePruning1: true, DisablePruning2: true},
	}
	for iter := 0; iter < 120; iter++ {
		d := randomDataset(rng)
		for vi, opt := range variants {
			base := opt
			base.DisablePruning1, base.DisablePruning2, base.DisablePruning3 = false, false, false
			want := mustMine(t, d, 0, base)
			got := mustMine(t, d, 0, opt)
			if !reflect.DeepEqual(coreKeys(got), coreKeys(want)) {
				t.Fatalf("iter %d variant %d: ablation changed results\n got %v\nwant %v\nrows %+v",
					iter, vi, coreKeys(got), coreKeys(want), d.Rows)
			}
		}
	}
}

func TestPruningReducesNodes(t *testing.T) {
	d := dataset.PaperExample()
	full := mustMine(t, d, 0, Options{MinSup: 2, MinConf: 0.6})
	none := mustMine(t, d, 0, Options{MinSup: 2, MinConf: 0.6,
		DisablePruning1: true, DisablePruning2: true, DisablePruning3: true})
	if full.Stats().NodesVisited >= none.Stats().NodesVisited {
		t.Fatalf("pruning did not reduce nodes: %d vs %d",
			full.Stats().NodesVisited, none.Stats().NodesVisited)
	}
}

func TestResultMetadata(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1})
	if res.NumRows != 5 || res.NumPos != 3 || res.Consequent != 0 {
		t.Fatalf("metadata = %+v", res)
	}
	if res.Stats().GroupsEmitted != int64(len(res.Groups)) {
		t.Fatal("GroupsEmitted disagrees with output length")
	}
}

func TestRuleGroupHelpers(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, ComputeLowerBounds: true})
	// Group {a}: rows 1-4 (0-based 0..3), conf 3/4; it is interesting.
	var ga *RuleGroup
	for i := range res.Groups {
		if dataset.StringFromItems(res.Groups[i].Antecedent) == "a" {
			ga = &res.Groups[i]
		}
	}
	if ga == nil {
		t.Fatal("group a missing")
	}
	if !ga.Matches(&d.Rows[0]) || ga.Matches(&d.Rows[4]) {
		t.Fatal("Matches wrong")
	}
	if !ga.MatchesAnyLowerBound(&d.Rows[2]) || ga.MatchesAnyLowerBound(&d.Rows[4]) {
		t.Fatal("MatchesAnyLowerBound wrong")
	}
	if ga.Support() != 3 || ga.SupNeg != 1 {
		t.Fatalf("support = %d/%d, want 3/1", ga.Support(), ga.SupNeg)
	}
	s := ga.Format(d, "C")
	if s == "" || s[0] != '{' {
		t.Fatalf("Format = %q", s)
	}
}
