package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Strategy selects how TopK explores the row-enumeration lattice.
type Strategy int

const (
	// StrategyExact is the depth-first branch-and-bound miner: exhaustive,
	// arena-unwound, and Counters-identical run to run. It is the zero
	// value, so existing callers keep the exact semantics untouched.
	StrategyExact Strategy = iota
	// StrategyBestFirst expands frontier nodes in descending order of
	// their convex upper bound, so the top-k heap is valid best-so-far at
	// every instant and the certified optimality gap (best outstanding
	// bound minus the k-th score) shrinks monotonically. Exhausted, it
	// returns exactly the exact miner's answer.
	StrategyBestFirst
	// StrategyLeap is the sLeap-style relaxed pruner: a subtree is cut as
	// soon as its bound cannot improve the current k-th score by more than
	// the factor Delta, trading a certified (1+Delta)-bounded gap for a
	// much smaller search.
	StrategyLeap
	// StrategySample abandons systematic search for seeded, bound-weighted
	// random walks down the row lattice, admitting every closed group the
	// walks touch. It needs a node or wall-clock budget and certifies no
	// gap.
	StrategySample
)

// String returns the strategy's canonical name, as accepted by
// ParseStrategy and the service's "quality" knob.
func (s Strategy) String() string {
	switch s {
	case StrategyBestFirst:
		return "best_first"
	case StrategyLeap:
		return "leap"
	case StrategySample:
		return "sample"
	default:
		return "exact"
	}
}

// ParseStrategy maps a canonical strategy name back to its Strategy; the
// empty string parses as StrategyExact.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "exact", "":
		return StrategyExact, nil
	case "best_first":
		return StrategyBestFirst, nil
	case "leap":
		return StrategyLeap, nil
	case "sample":
		return StrategySample, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q (want exact, best_first, leap or sample)", name)
}

// anytimeTask is one unexpanded node of the frontier search. Unlike the
// depth-first walk — whose conditional tables live on the arena and die on
// unwind — a frontier task outlives its parent's expansion arbitrarily, so
// everything it references must survive off the arena. Tasks are lazy: a
// child enqueued by expand carries only its parent's cleaned conditional
// table (ptuples, heap-retained and shared by all siblings) and the branch
// row to descend to; its own table is derived at pop time as suffix views
// into the shared storage. A task pruned at pop — the common fate once the
// admission threshold rises — therefore costs nothing beyond its struct.
// Root tasks are built eagerly: their row lists are views into the
// transposed table's global lists, which are immutable for the run.
type anytimeTask struct {
	// bound is the convex vertex bound computed from the node's identified
	// counts at enqueue time: a sound upper bound on every score in the
	// subtree (the Lemma 3.9 parallelogram only shrinks downward), and the
	// best-first priority.
	bound float64
	// seq is the enqueue sequence number: the heap's tie-break, so a
	// sequential run pops equal-bound tasks in a deterministic order.
	seq uint64

	// tuples is the node's materialized conditional table (roots only);
	// nil marks a lazy task, whose table is derived from ptuples at pop.
	tuples []tuple
	// ptuples is the parent's cleaned conditional table, shared by every
	// sibling. A chain of absorption-free descents shares storage all the
	// way back to the transposed table's global lists.
	ptuples []tuple
	// row is the explicitly chosen row this task descends to — the lazy
	// materialization key, the back-scan anchor (chosen rows only grow
	// down a path), and the last element of the node's path.
	row int32
	// basePath is the parent's full path (chosen + absorbed rows), shared
	// by every sibling; the node's own path is basePath plus row.
	basePath []int32
	supp     int // identified positive rows (chosen + absorbed on the path)
	supn     int // identified negative rows
	epCount  int // positive enumeration candidates remaining
}

// searchRow is an inlined binary search for the first index with
// rows[i] >= r — sort.Search without the closure dispatch, which shows up
// at profile scale when every pop runs one search per parent tuple.
func searchRow(rows []int32, r int32) int {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// materializeChild derives the conditional table of the child reached by
// descending from a parent table to row r: every parent tuple whose rows
// contain r keeps the suffix after r, as views into the parent's storage —
// no row copying, the parent table is immutable and heap-retained by the
// task that references it.
func materializeChild(parent []tuple, r int32) []tuple {
	out := make([]tuple, 0, len(parent))
	for i := range parent {
		rows := parent[i].Rows
		k := searchRow(rows, r)
		if k < len(rows) && rows[k] == r {
			out = append(out, tuple{Item: parent[i].Item, Rows: rows[k+1:]})
		}
	}
	return out
}

// taskHeap is a max-heap on bound. Shallow nodes tie at near-maximal
// bounds in droves (the vertex bound is loosest there), so ties prefer the
// task with more identified rows — deeper in the lattice, closer to real
// scores, and with a tighter effective bound — before falling back to
// enqueue order, which keeps sequential runs deterministic.
type taskHeap []*anytimeTask

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound > h[j].bound
	}
	if di, dj := h[i].supp+h[i].supn, h[j].supp+h[j].supn; di != dj {
		return di > dj
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*anytimeTask)) }
func (h *taskHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	old[len(old)-1] = nil
	*h = old[:len(old)-1]
	return x
}

// canonWorse is the canonical total order on candidate groups: a ranks
// strictly below b when its score is lower, then when its support is
// lower, then when its antecedent is lexicographically larger. Admission
// under this order — never under score alone — is what makes the anytime
// answer independent of expansion order and worker count: the kept set is
// exactly the k maximal elements of the enumerated candidates.
func canonWorse(a, b *scoredEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	if a.supPos != b.supPos {
		return a.supPos < b.supPos
	}
	return lessItems(b.items, a.items)
}

// canonHeap is a min-heap under canonWorse: the root is the evictable
// worst of the kept k.
type canonHeap []scoredEntry

func (h canonHeap) Len() int           { return len(h) }
func (h canonHeap) Less(i, j int) bool { return canonWorse(&h[i], &h[j]) }
func (h canonHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *canonHeap) Push(x any)        { *h = append(*h, x.(scoredEntry)) }
func (h *canonHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// anytimeSearch is the shared state of one anytime run: the frontier, the
// canonical top-k heap, and the stop/gap bookkeeping. Workers hold mu for
// every heap access and for admission; node expansion itself (the scan)
// runs outside the lock on per-worker scratch.
type anytimeSearch struct {
	opt     TopKOptions
	k       int
	minsup  int
	n       int
	numPos  int
	delta   float64
	measure Measure
	// boundTab and valueTab memoize the measure over its whole domain —
	// the identified counts (supp, supn) range over [0, numPos] × [0,
	// n-numPos], a few thousand cells even at paper scale — so the
	// per-child bound evaluation in the expansion hot loop is one indexed
	// load instead of a convex-corner evaluation. Values are bit-identical
	// to calling the measure directly (the same routine fills the table).
	boundTab []float64
	valueTab []float64
	negWidth int

	mu       sync.Mutex
	cond     *sync.Cond
	frontier taskHeap
	best     canonHeap
	seq      uint64
	active   int
	inFlight []float64 // per-worker bound of the task being expanded
	stopped  bool
	stopErr  error // context cancellation, propagated; budget stops stay nil
	// unfinished records the bounds of tasks whose expansion was cut off
	// by the budget: their subtrees are unexplored, so they stay part of
	// the gap certificate.
	unfinished []float64
	// maxPruned is the largest bound among delta-pruned subtrees — the
	// leap strategy's contribution to the gap certificate.
	maxPruned float64
	anyPruned bool
	// dedup, for the sampler only, maps an admitted group's antecedent key
	// to struct{}: random walks rediscover the same closed group freely,
	// and without back-scan pruning the heap-not-full phase would admit it
	// twice.
	dedup map[string]struct{}

	sharedNodes atomic.Int64
}

// fillTables computes the memoized bound and value of every reachable
// (supp, supn) pair.
func (s *anytimeSearch) fillTables() {
	nneg := s.n - s.numPos
	s.negWidth = nneg + 1
	s.boundTab = make([]float64, (s.numPos+1)*s.negWidth)
	s.valueTab = make([]float64, (s.numPos+1)*s.negWidth)
	for supp := 0; supp <= s.numPos; supp++ {
		for supn := 0; supn <= nneg; supn++ {
			i := supp*s.negWidth + supn
			s.boundTab[i] = s.measure.bound(supp+supn, supp, s.n, s.numPos)
			s.valueTab[i] = s.measure.value(supp+supn, supp, s.n, s.numPos)
		}
	}
}

func (s *anytimeSearch) boundAt(supp, supn int) float64 {
	return s.boundTab[supp*s.negWidth+supn]
}

func (s *anytimeSearch) valueAt(supp, supn int) float64 {
	return s.valueTab[supp*s.negWidth+supn]
}

// pruneBoundLocked decides whether a subtree with the given bound is cut
// against the current k-th score. The comparison is strict — a bound equal
// to the k-th score survives — so every candidate tied at the final
// threshold is enumerated and the canonical admission order alone decides
// the kept set, independent of expansion schedule. With delta > 0 the
// threshold is inflated to kth*(1+delta) (sLeap), and the cut's bound is
// recorded for the gap certificate. Callers hold mu.
func (s *anytimeSearch) pruneBoundLocked(bound float64, ex *engine.Exec) bool {
	if len(s.best) < s.k {
		return false
	}
	kth := s.best[0].score
	if bound < kth {
		ex.Stats.PrunedGainBound++
		return true
	}
	if s.delta > 0 && bound < kth*(1+s.delta) {
		ex.Stats.PrunedGainBound++
		s.anyPruned = true
		if bound > s.maxPruned {
			s.maxPruned = bound
		}
		return true
	}
	return false
}

// admitLocked offers one scored candidate to the top-k heap under the
// canonical order. rows is the node's closed row set (cloned on
// admission). Callers hold mu.
func (s *anytimeSearch) admitLocked(ex *engine.Exec, m *miner, items []dataset.Item, score float64, supp, supn int) {
	cand := scoredEntry{score: score}
	cand.supPos = supp
	cand.tot = supp + supn
	cand.items = items
	if len(s.best) == s.k && !canonWorse(&s.best[0], &cand) {
		return
	}
	if s.dedup != nil {
		key := itemsKey(items)
		if _, seen := s.dedup[key]; seen {
			return
		}
		s.dedup[key] = struct{}{}
	}
	cand.rows = m.sc.InX.Clone()
	heap.Push(&s.best, cand)
	if len(s.best) > s.k {
		heap.Pop(&s.best)
	}
	ex.Stats.GroupsEmitted++
}

// itemsKey renders a sorted antecedent as a map key for the sampler's
// admission dedup.
func itemsKey(items []dataset.Item) string {
	b := make([]byte, 0, len(items)*3)
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16))
	}
	return string(b)
}

// enqueueLocked pushes a task unless its bound is already prunable.
// Callers hold mu.
func (s *anytimeSearch) enqueueLocked(t *anytimeTask, ex *engine.Exec) {
	if s.pruneBoundLocked(t.bound, ex) {
		return
	}
	s.seq++
	t.seq = s.seq
	heap.Push(&s.frontier, t)
	s.cond.Signal()
}

// expand runs steps 1–6 of the conditional-table node for task t on worker
// m: lazy-task materialization, back scan, support bounds, scan/absorption,
// admission of the node's own group, and enqueueing of its children as lazy
// frontier tasks. It is the unit of budget accounting: one EnterNode per
// call, so a budget stop truncates the search within one expansion.
//
// The highest-bound surviving child is returned instead of enqueued: the
// worker expands it immediately (a greedy dive). Bounds only shrink down a
// path, so the dive reaches the deep, high-scoring groups of a promising
// subtree within one frontier pop — filling the top-k heap with real
// scores long before breadth-first frontier order would, which raises the
// admission threshold and prunes the shallow frontier wholesale. The dive
// changes only expansion order, never the certificate: siblings all reach
// the frontier, and a dive cut short by the budget is covered by the
// popped ancestor's recorded bound.
func (s *anytimeSearch) expand(m *miner, t *anytimeTask) (*anytimeTask, error) {
	if err := m.ex.EnterNode(); err != nil {
		return nil, err
	}
	tuples := t.tuples
	if tuples == nil {
		tuples = materializeChild(t.ptuples, t.row)
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	for _, r := range t.basePath {
		m.sc.InX.Set(int(r))
	}
	m.sc.InX.Set(int(t.row))
	defer func() {
		for _, r := range t.basePath {
			m.sc.InX.Clear(int(r))
		}
		m.sc.InX.Clear(int(t.row))
	}()
	if m.backScanHit(tuples, int(t.row)) {
		m.ex.Stats.PrunedBackScan++
		return nil, nil
	}
	if t.supp+t.epCount < s.minsup {
		m.ex.Stats.PrunedLooseBound++
		return nil, nil
	}

	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)

	sc := scanNode(m, tuples, t.supp, t.supn)
	supp, supn := sc.supp, sc.supn
	if sc.suppIn+sc.maxPos < s.minsup {
		m.ex.Stats.PrunedTightBound++
		return nil, nil
	}
	bound := s.boundAt(supp, supn)

	s.mu.Lock()
	if s.pruneBoundLocked(bound, m.ex) {
		s.mu.Unlock()
		return nil, nil
	}
	s.mu.Unlock()

	for _, r := range sc.yRows {
		m.sc.InX.Set(int(r))
	}
	defer func() {
		for _, r := range sc.yRows {
			m.sc.InX.Clear(int(r))
		}
	}()

	if supp >= s.minsup {
		score := s.valueAt(supp, supn)
		items := make([]dataset.Item, len(tuples))
		for i, tp := range tuples {
			items[i] = tp.Item
		}
		slices.Sort(items)
		s.mu.Lock()
		s.admitLocked(m.ex, m, items, score, supp, supn)
		s.mu.Unlock()
	}

	if len(sc.eRows) == 0 {
		return nil, nil
	}

	// Children: the same enumeration the exact walk performs, enqueued
	// lazily. No per-child table is built here — each surviving child
	// carries a reference to this node's cleaned table plus its branch
	// row, and derives its own table only if it is actually popped. The
	// pre-enqueue bound check against a snapshot of the k-th score drops
	// children that can never be admitted (the threshold only rises),
	// exactly as pruneBoundLocked would at enqueue; delta-relaxed cuts
	// are not taken early, since they must be recorded under the lock for
	// the gap certificate.
	eRows := sc.eRows
	nch := len(eRows)
	posBoundary := searchRow(eRows, int32(s.numPos))

	s.mu.Lock()
	kth := math.Inf(-1)
	if len(s.best) == s.k {
		kth = s.best[0].score
	}
	s.mu.Unlock()

	taskSlab := make([]anytimeTask, 0, nch)
	for p, r := range eRows {
		ca, cb := supp, supn
		childEp := 0
		if int(r) < s.numPos {
			ca++
			childEp = posBoundary - p - 1
		} else {
			cb++
		}
		if ca+childEp < s.minsup {
			m.ex.Stats.PrunedLooseBound++
			continue
		}
		b := s.boundAt(ca, cb)
		if b < kth {
			m.ex.Stats.PrunedGainBound++
			continue
		}
		taskSlab = append(taskSlab, anytimeTask{
			bound:   b,
			row:     r,
			supp:    ca,
			supn:    cb,
			epCount: childEp,
		})
	}
	if len(taskSlab) == 0 {
		return nil, nil
	}

	// The children's shared parent table must outlive this expansion's
	// arena mark. When absorption shrank the lists, the cleaned table is
	// copied off the arena once, for all siblings together; otherwise the
	// node's own table — already heap-held (or a view into the transposed
	// table's global lists) — is shared as is, copying nothing.
	childBase := tuples
	if len(sc.yRows) > 0 {
		total := 0
		for i := range sc.cleaned {
			total += len(sc.cleaned[i])
		}
		backing := make([]int32, total)
		childBase = make([]tuple, len(sc.cleaned))
		w := 0
		for i := range sc.cleaned {
			n := copy(backing[w:], sc.cleaned[i])
			childBase[i] = tuple{Item: tuples[i].Item, Rows: backing[w : w+n : w+n]}
			w += n
		}
	}

	basePath := make([]int32, 0, len(t.basePath)+1+len(sc.yRows))
	basePath = append(basePath, t.basePath...)
	basePath = append(basePath, t.row)
	basePath = append(basePath, sc.yRows...)
	for i := range taskSlab {
		taskSlab[i].ptuples = childBase
		taskSlab[i].basePath = basePath
	}
	// The highest-bound child continues the dive; its siblings join the
	// frontier in one locked batch.
	dive := 0
	for i := 1; i < len(taskSlab); i++ {
		if taskSlab[i].bound > taskSlab[dive].bound {
			dive = i
		}
	}
	s.mu.Lock()
	for i := range taskSlab {
		if i != dive {
			s.enqueueLocked(&taskSlab[i], m.ex)
		}
	}
	s.mu.Unlock()
	return &taskSlab[dive], nil
}

// nodeScan is the outcome of scanNode: steps 3–5 of the conditional-table
// expansion (occurrence counts, U/Y classification, absorption, cleaned
// candidate lists), shared by the best-first expansion and the sampler's
// walk steps. Everything it references lives on the worker's arena inside
// the caller's mark.
type nodeScan struct {
	eRows, yRows []int32
	cleaned      [][]int32
	supp, supn   int // identified counts after Y absorption
	suppIn       int // pre-absorption positive count, for the Us1 bound
	maxPos       int // per-tuple positive-candidate maximum
}

func scanNode(m *miner, tuples []tuple, supp, supn int) nodeScan {
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	ntup := int32(len(tuples))
	maxPosInTuple := 0
	distinct := 0
	for _, tp := range tuples {
		if len(tp.Rows) == 0 {
			continue
		}
		if pos := searchRow(tp.Rows, int32(m.numPos)); pos > maxPosInTuple {
			maxPosInTuple = pos
		}
		for _, r := range tp.Rows {
			if stamp[r] != ep {
				stamp[r] = ep
				cnt[r] = 0
				distinct++
			}
			cnt[r]++
		}
	}
	union := m.sc.A.I32.Alloc(distinct)
	ne, ny := 0, 0
	yPos, yNeg := 0, 0
	for _, tp := range tuples {
		for _, r := range tp.Rows {
			if stamp[r] != ep || cnt[r] < 0 {
				continue
			}
			if cnt[r] == ntup {
				ny++
				union[distinct-ny] = r
				if int(r) < m.numPos {
					yPos++
				} else {
					yNeg++
				}
			} else {
				union[ne] = r
				ne++
			}
			cnt[r] = -1
		}
	}
	eRows, yRows := union[:ne], union[ne:]
	slices.Sort(eRows)

	cleaned := m.sc.A.Rows.Alloc(len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].Rows
		}
	} else {
		slices.Sort(yRows)
		total := 0
		for i := range tuples {
			total += len(tuples[i].Rows) - len(yRows) // Y is in every tuple
		}
		backing := m.sc.A.I32.Alloc(total)
		w := 0
		for i := range tuples {
			start := w
			yi := 0
			for _, r := range tuples[i].Rows {
				for yi < len(yRows) && yRows[yi] < r {
					yi++
				}
				if yi < len(yRows) && yRows[yi] == r {
					continue
				}
				backing[w] = r
				w++
			}
			cleaned[i] = backing[start:w:w]
		}
	}
	return nodeScan{
		eRows:   eRows,
		yRows:   yRows,
		cleaned: cleaned,
		supp:    supp + yPos,
		supn:    supn + yNeg,
		suppIn:  supp,
		maxPos:  maxPosInTuple,
	}
}

// worker drains the frontier until it is empty (with no expansion in
// flight) or the search stops — budget exhaustion, cancellation, or an
// expansion error. The pop-time bound recheck matters: the k-th score may
// have risen since a task was enqueued. Each pop starts a greedy dive:
// the worker keeps expanding the best child inline until the chain dies
// out or its bound falls below the admission threshold, so one pop
// reaches leaf depth instead of one level.
func (s *anytimeSearch) worker(w int, m *miner) {
	s.mu.Lock()
	for {
		if s.stopped {
			break
		}
		if len(s.frontier) == 0 {
			if s.active == 0 {
				s.stopped = true
				s.cond.Broadcast()
				break
			}
			s.cond.Wait()
			continue
		}
		t := heap.Pop(&s.frontier).(*anytimeTask)
		if s.pruneBoundLocked(t.bound, m.ex) {
			continue
		}
		s.active++
		s.inFlight[w] = t.bound
		s.mu.Unlock()

		var err error
		for {
			var next *anytimeTask
			next, err = s.expand(m, t)
			if err != nil || next == nil {
				break
			}
			s.mu.Lock()
			if s.stopped {
				// Keep the unexpanded chain visible to the gap
				// certificate: back to the frontier it goes.
				s.enqueueLocked(next, m.ex)
				s.mu.Unlock()
				break
			}
			if s.pruneBoundLocked(next.bound, m.ex) {
				s.mu.Unlock()
				break
			}
			s.inFlight[w] = next.bound
			s.mu.Unlock()
			t = next
		}

		s.mu.Lock()
		s.active--
		s.inFlight[w] = math.Inf(-1)
		if err != nil {
			s.unfinished = append(s.unfinished, t.bound)
			if !s.stopped {
				s.stopped = true
				if !errors.Is(err, engine.ErrBudgetExceeded) {
					s.stopErr = err
				}
				s.cond.Broadcast()
			}
			break
		}
	}
	s.mu.Unlock()
}

// outstandingLocked returns the largest upper bound over everything the
// stopped search did not finish: queued frontier tasks, expansions cut off
// mid-node, and delta-pruned subtrees. Callers hold mu (or own the search
// exclusively).
func (s *anytimeSearch) outstandingLocked() (float64, bool) {
	maxOut := math.Inf(-1)
	any := false
	for _, t := range s.frontier {
		any = true
		if t.bound > maxOut {
			maxOut = t.bound
		}
	}
	for _, b := range s.unfinished {
		any = true
		if b > maxOut {
			maxOut = b
		}
	}
	if s.anyPruned {
		any = true
		if s.maxPruned > maxOut {
			maxOut = s.maxPruned
		}
	}
	return maxOut, any
}

// topKAnytime is the budgeted/approximate TopK engine behind the
// non-exact strategies.
func topKAnytime(ctx context.Context, d *dataset.Dataset, consequent int, opt TopKOptions, strat Strategy) (*TopKResult, error) {
	if opt.Delta < 0 {
		return nil, fmt.Errorf("core: delta must be >= 0, got %g", opt.Delta)
	}
	if strat == StrategySample && opt.MaxMillis <= 0 && opt.MaxNodes <= 0 {
		return nil, fmt.Errorf("core: the sample strategy needs a max_millis or max_nodes budget")
	}
	var deadline time.Time
	if opt.MaxMillis > 0 {
		// The deadline covers the whole run, setup included: max_millis is
		// a promise to the caller, not to the search phase.
		deadline = time.Now().Add(time.Duration(opt.MaxMillis) * time.Millisecond)
	}

	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	ordered, ord, tt, err := resolveView(d, consequent, opt.Prepared, ex)
	if err != nil {
		return nil, err
	}
	if tt == nil {
		tt = dataset.Transpose(ordered)
	}
	setupDone()

	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if strat == StrategySample {
		workers = 1 // the walk sequence is the reproducibility contract
	}

	s := &anytimeSearch{
		opt:       opt,
		k:         opt.K,
		minsup:    opt.MinSup,
		n:         len(ordered.Rows),
		numPos:    ord.NumPositive,
		measure:   opt.Measure,
		inFlight:  make([]float64, workers),
		maxPruned: math.Inf(-1),
	}
	s.fillTables()
	if strat == StrategyLeap {
		s.delta = opt.Delta
	}
	if strat == StrategySample {
		s.dedup = make(map[string]struct{})
	}
	s.cond = sync.NewCond(&s.mu)
	for i := range s.inFlight {
		s.inFlight[i] = math.Inf(-1)
	}

	miners := make([]*miner, workers)
	for w := 0; w < workers; w++ {
		exw := engine.NewExec(ctx)
		var shared *atomic.Int64
		if workers > 1 && opt.MaxNodes > 0 {
			shared = &s.sharedNodes
		}
		exw.SetBudget(deadline, opt.MaxNodes, shared)
		miners[w] = newMiner(ordered, ord.NumPositive, Options{MinSup: opt.MinSup}, exw, tt)
	}

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	if s.n > 0 && s.numPos > 0 {
		if strat == StrategySample {
			s.sample(miners[0], opt.Seed)
		} else {
			s.seedRoots(miners[0], ordered, tt)
			if workers == 1 {
				s.worker(0, miners[0])
			} else {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						s.worker(w, miners[w])
					}(w)
				}
				wg.Wait()
			}
		}
	}
	searchDone()

	var nodes int64
	for _, m := range miners {
		ex.Stats.Counters.Add(m.ex.Stats.Counters)
		ex.Stats.ArenaBytes += m.sc.Bytes()
		nodes += m.ex.Stats.NodesVisited
	}

	res := &TopKResult{NodesExpanded: nodes}
	res.Groups = materializeTopK(s.best, ord, s.n, s.numPos)

	if strat == StrategySample {
		// A sampler's answer carries no certificate: it is partial unless
		// it provably enumerated nothing… which it cannot prove.
		res.Partial = true
	} else {
		maxOut, any := s.outstandingLocked()
		kth := 0.0
		full := len(s.best) == s.k
		if full {
			kth = s.best[0].score
		}
		res.HasGap = true
		if any && (maxOut > kth || !full) {
			res.Partial = true
			if gap := maxOut - kth; gap > 0 {
				res.Gap = gap
			}
		}
	}
	res.stats = ex.Stats
	return res, s.stopErr
}

// seedRoots enqueues one task per root row {ri}, in ORD order. Root tuple
// rows are views into the transposed table's global lists (immutable for
// the run), so roots cost no copies.
func (s *anytimeSearch) seedRoots(m *miner, ordered *dataset.Dataset, tt *dataset.Transposed) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ri := 0; ri < s.n; ri++ {
		row := &ordered.Rows[ri]
		tuples := make([]tuple, len(row.Items))
		for i, it := range row.Items {
			list := tt.Lists[it]
			k := sort.Search(len(list), func(j int) bool { return list[j] > int32(ri) })
			tuples[i] = tuple{Item: it, Rows: list[k:]}
		}
		supp, supn := 0, 0
		if ri < s.numPos {
			supp = 1
		} else {
			supn = 1
		}
		epCount := s.numPos - ri - 1
		if epCount < 0 {
			epCount = 0
		}
		s.seq++
		heap.Push(&s.frontier, &anytimeTask{
			bound:   s.boundAt(supp, supn),
			seq:     s.seq,
			tuples:  tuples,
			row:     int32(ri),
			supp:    supp,
			supn:    supn,
			epCount: epCount,
		})
	}
}

// materializeTopK converts the kept heap into the public ranking: best
// first under the canonical order, row ids mapped back to the caller's
// original order.
func materializeTopK(best canonHeap, ord *dataset.Ordering, n, numPos int) []ScoredGroup {
	out := make([]ScoredGroup, len(best))
	for i := range best {
		e := &best[i]
		g := ScoredGroup{Score: e.score}
		g.Antecedent = e.items
		g.SupPos = e.supPos
		g.SupNeg = e.tot - e.supPos
		g.Confidence = float64(e.supPos) / float64(e.tot)
		g.Chi = stats.Chi2(e.tot, e.supPos, n, numPos)
		g.Rows = ord.MapRowsToOriginal(e.rows.Ints())
		sort.Ints(g.Rows)
		out[i] = g
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].SupPos != out[b].SupPos {
			return out[a].SupPos > out[b].SupPos
		}
		return lessItems(out[a].Antecedent, out[b].Antecedent)
	})
	return out
}

// sample runs seeded random walks down the row lattice until the budget
// stops it: at each step the walk descends to a child chosen with
// probability proportional to the child's convex bound, admitting every
// closed group with enough support along the way. No back scan runs — the
// same group may be reached by many walks — so admission dedups instead.
func (s *anytimeSearch) sample(m *miner, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for {
		if err := s.sampleWalk(m, rng); err != nil {
			if !errors.Is(err, engine.ErrBudgetExceeded) {
				s.stopErr = err
			}
			s.stopped = true
			return
		}
	}
}

// sampleWalk performs one root-to-leaf walk. The whole walk unwinds one
// arena mark; InX tracks the walk's row set for closed-row-set cloning at
// admission.
func (s *anytimeSearch) sampleWalk(m *miner, rng *rand.Rand) error {
	ri := rng.Intn(s.n)
	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)

	var setRows []int32
	defer func() {
		for _, r := range setRows {
			m.sc.InX.Clear(int(r))
		}
	}()

	tuples := m.rootTuples(ri)
	supp, supn := 0, 0
	if ri < s.numPos {
		supp = 1
	} else {
		supn = 1
	}
	epCount := s.numPos - ri - 1
	if epCount < 0 {
		epCount = 0
	}
	m.sc.InX.Set(ri)
	setRows = append(setRows, int32(ri))

	for {
		if err := m.ex.EnterNode(); err != nil {
			return err
		}
		if len(tuples) == 0 {
			return nil
		}
		if supp+epCount < s.minsup {
			return nil
		}
		sc := scanNode(m, tuples, supp, supn)
		supp, supn = sc.supp, sc.supn
		for _, r := range sc.yRows {
			m.sc.InX.Set(int(r))
			setRows = append(setRows, r)
		}
		if supp >= s.minsup {
			score := s.valueAt(supp, supn)
			items := make([]dataset.Item, len(tuples))
			for i, tp := range tuples {
				items[i] = tp.Item
			}
			slices.Sort(items)
			s.mu.Lock()
			s.admitLocked(m.ex, m, items, score, supp, supn)
			s.mu.Unlock()
		}
		if len(sc.eRows) == 0 {
			return nil
		}

		// Pick the next row among feasible candidates, weighted by the
		// child bound.
		posBoundary := sort.Search(len(sc.eRows), func(i int) bool { return sc.eRows[i] >= int32(s.numPos) })
		totalW := 0.0
		feasible := 0
		bounds := make([]float64, len(sc.eRows))
		for p, r := range sc.eRows {
			ca, cb := supp, supn
			childEp := 0
			if int(r) < s.numPos {
				ca++
				childEp = posBoundary - p - 1
			} else {
				cb++
			}
			if ca+childEp < s.minsup {
				bounds[p] = -1
				continue
			}
			b := s.boundAt(ca, cb)
			bounds[p] = b
			totalW += b
			feasible++
		}
		if feasible == 0 {
			return nil
		}
		pick := -1
		if totalW <= 0 {
			// All bounds zero: fall back to a uniform feasible pick.
			nth := rng.Intn(feasible)
			for p := range bounds {
				if bounds[p] < 0 {
					continue
				}
				if nth == 0 {
					pick = p
					break
				}
				nth--
			}
		} else {
			x := rng.Float64() * totalW
			for p := range bounds {
				if bounds[p] < 0 {
					continue
				}
				x -= bounds[p]
				pick = p
				if x <= 0 {
					break
				}
			}
		}
		r := sc.eRows[pick]

		// Build the chosen child's conditional table on the arena.
		nt := 0
		for ti := range sc.cleaned {
			rows := sc.cleaned[ti]
			kk := sort.Search(len(rows), func(j int) bool { return rows[j] >= r })
			if kk < len(rows) && rows[kk] == r {
				nt++
			}
		}
		child := m.sc.A.Tup.Alloc(nt)
		w := 0
		for ti := range sc.cleaned {
			rows := sc.cleaned[ti]
			kk := sort.Search(len(rows), func(j int) bool { return rows[j] >= r })
			if kk < len(rows) && rows[kk] == r {
				child[w] = tuple{Item: tuples[ti].Item, Rows: rows[kk+1:]}
				w++
			}
		}
		if int(r) < s.numPos {
			supp++
			epCount = posBoundary - pick - 1
		} else {
			supn++
			epCount = 0
		}
		m.sc.InX.Set(int(r))
		setRows = append(setRows, r)
		tuples = child
	}
}
