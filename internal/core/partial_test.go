package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/plan"
)

// Property: mining any exact cover of the universe partition by partition,
// shipping each Partial through its JSON wire form, and merging yields
// exactly the single-node MineParallel result — groups AND Counters.
func TestPropertyPartitionedMiningMatchesSingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	ctx := context.Background()
	for iter := 0; iter < 60; iter++ {
		d := randomDataset(rng)
		opt := Options{
			MinSup:  1 + rng.Intn(2),
			MinConf: []float64{0, 0.5, 0.9}[rng.Intn(3)],
			MinChi:  []float64{0, 0.5}[rng.Intn(2)],
		}
		single, err := MineParallel(d, 0, opt, 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}

		parts := plan.Universe(single.NumRows).SplitN(1 + rng.Intn(5))
		var partials []*Partial
		for _, p := range parts {
			partial, err := MinePartitions(ctx, d, 0, opt, p, 1+rng.Intn(3))
			if err != nil {
				t.Fatal(err)
			}
			wire, err := json.Marshal(partial)
			if err != nil {
				t.Fatal(err)
			}
			var back Partial
			if err := json.Unmarshal(wire, &back); err != nil {
				t.Fatal(err)
			}
			partials = append(partials, &back)
		}
		merged, err := MergePartials(ctx, d, 0, opt, partials)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(coreKeys(single), coreKeys(merged)) {
			t.Fatalf("iter %d (%d parts): merged differs\nsingle %v\nmerged %v",
				iter, len(parts), coreKeys(single), coreKeys(merged))
		}
		if sc, mc := single.Stats().Counters, merged.Stats().Counters; sc != mc {
			t.Fatalf("iter %d (%d parts): counters differ\nsingle %+v\nmerged %+v", iter, len(parts), sc, mc)
		}
	}
}

func TestMinePartitionsValidation(t *testing.T) {
	d := dataset.PaperExample()
	ctx := context.Background()
	if _, err := MinePartitions(ctx, d, 0, Options{MinSup: 0}, plan.Universe(len(d.Rows)), 2); err == nil {
		t.Fatal("invalid options accepted")
	}
	if _, err := MinePartitions(ctx, d, 0, Options{MinSup: 1}, plan.Universe(3), 2); err == nil {
		t.Fatal("foreign-universe partition accepted")
	}
	if _, err := MinePartitions(ctx, d, 0, Options{MinSup: 1}, plan.Partition{N: len(d.Rows), Start: -1, End: 2}, 2); err == nil {
		t.Fatal("invalid partition accepted")
	}
	empty, err := MinePartitions(ctx, d, 0, Options{MinSup: 1}, plan.Partition{N: len(d.Rows)}, 2)
	if err != nil || empty.Count() != 0 {
		t.Fatalf("empty partition: %v, %d cands", err, empty.Count())
	}

	p, err := MinePartitions(ctx, d, 0, Options{MinSup: 1}, plan.Universe(len(d.Rows)), 2)
	if err != nil {
		t.Fatal(err)
	}
	p.NumRows++ // simulate a worker that resolved a different view
	if _, err := MergePartials(ctx, d, 0, Options{MinSup: 1}, []*Partial{p}); err == nil {
		t.Fatal("mismatched partial view accepted")
	}
}

func TestPartialUnmarshalRejectsCorruptWire(t *testing.T) {
	for _, raw := range []string{
		`{"num_rows":-1,"num_pos":0}`,
		`{"num_rows":2,"num_pos":3}`,
		`{"num_rows":4,"num_pos":2,"cands":[{"rows":[9],"sup_pos":1,"tot":1,"items":[1]}]}`,
		`{"num_rows":4,"num_pos":2,"cands":[{"rows":[0,1],"sup_pos":3,"tot":2,"items":[1]}]}`,
		`{"num_rows":4,"num_pos":2,"rejected":[[-1]]}`,
	} {
		var p Partial
		if err := json.Unmarshal([]byte(raw), &p); err == nil {
			t.Fatalf("corrupt wire accepted: %s", raw)
		}
	}
}
