package core

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/plan"
)

// Partial is the outcome of mining one slice of the enumeration-task
// universe: the constraint-satisfying candidate groups found there (local
// interestingness filtering applied, global fixpoint NOT applied), the row
// sets rejected by that local filter, and the subtask pruning counters.
// Partials from any exact cover of the universe merge — via MergePartials
// — into precisely the single-node MineParallel result, including
// byte-identical Counters. Partial has a JSON wire form; row ids are in
// the consequent view's reordered (ORD) space, so partials are only
// meaningful between processes that resolved the same snapshot.
type Partial struct {
	// NumRows and NumPos pin the consequent view the partial was mined
	// under; MergePartials rejects mismatches.
	NumRows int
	NumPos  int
	// Counters are the subtask-summed pruning counters for the slice.
	// GroupsEmitted/GroupsNotInterest within are local decisions only and
	// are recomputed globally at merge.
	Counters engine.Counters

	cands    []irgEntry
	rejected []*bitset.Set
}

// partialWire is Partial's JSON form.
type partialWire struct {
	NumRows  int             `json:"num_rows"`
	NumPos   int             `json:"num_pos"`
	Counters engine.Counters `json:"counters"`
	Cands    []candWire      `json:"cands,omitempty"`
	Rejected [][]int         `json:"rejected,omitempty"`
}

type candWire struct {
	Rows   []int          `json:"rows"`
	SupPos int            `json:"sup_pos"`
	Tot    int            `json:"tot"`
	Items  []dataset.Item `json:"items"`
	Chi    float64        `json:"chi"`
}

// MarshalJSON encodes the partial for the cluster wire.
func (p *Partial) MarshalJSON() ([]byte, error) {
	w := partialWire{
		NumRows:  p.NumRows,
		NumPos:   p.NumPos,
		Counters: p.Counters,
		Cands:    make([]candWire, len(p.cands)),
		Rejected: make([][]int, len(p.rejected)),
	}
	for i, c := range p.cands {
		w.Cands[i] = candWire{
			Rows:   c.rows.Ints(),
			SupPos: c.supPos,
			Tot:    c.tot,
			Items:  c.items,
			Chi:    c.chi,
		}
	}
	for i, r := range p.rejected {
		w.Rejected[i] = r.Ints()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a partial from the cluster wire, rebuilding the
// internal row bitsets against the partial's own row count.
func (p *Partial) UnmarshalJSON(data []byte) error {
	var w partialWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.NumRows < 0 || w.NumPos < 0 || w.NumPos > w.NumRows {
		return fmt.Errorf("core: partial shape %d/%d invalid", w.NumPos, w.NumRows)
	}
	rebuild := func(rows []int) (*bitset.Set, error) {
		s := bitset.New(w.NumRows)
		for _, r := range rows {
			if r < 0 || r >= w.NumRows {
				return nil, fmt.Errorf("core: partial row %d outside [0,%d)", r, w.NumRows)
			}
			s.Set(r)
		}
		return s, nil
	}
	out := Partial{NumRows: w.NumRows, NumPos: w.NumPos, Counters: w.Counters}
	for _, c := range w.Cands {
		rows, err := rebuild(c.Rows)
		if err != nil {
			return err
		}
		if c.Tot != len(c.Rows) || c.SupPos < 0 || c.SupPos > c.Tot {
			return fmt.Errorf("core: partial candidate support %d/%d disagrees with %d rows", c.SupPos, c.Tot, len(c.Rows))
		}
		out.cands = append(out.cands, irgEntry{rows: rows, supPos: c.SupPos, tot: c.Tot, items: c.Items, chi: c.Chi})
	}
	for _, r := range w.Rejected {
		rows, err := rebuild(r)
		if err != nil {
			return err
		}
		out.rejected = append(out.rejected, rows)
	}
	*p = out
	return nil
}

// Count returns the number of candidate groups carried by the partial.
func (p *Partial) Count() int { return len(p.cands) }

// MinePartitions mines exactly the subtasks of partition part, spreading
// them over the given local worker count (≤ 0 selects GOMAXPROCS) with
// the same work-stealing scheduler MineParallel uses over the whole
// universe. It is the cluster worker's entry point: the returned Partial
// is serializable, and partials from any exact cover of the universe
// merge into the single-node result.
func MinePartitions(ctx context.Context, d *dataset.Dataset, consequent int, opt Options, part plan.Partition, workers int) (*Partial, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ex := engine.NewExec(ctx)
	ordered, ord, shared, err := resolveView(d, consequent, opt.Prepared, ex)
	if err != nil {
		return nil, err
	}
	n := len(ordered.Rows)
	if part.N != n {
		return nil, fmt.Errorf("core: partition universe n=%d but dataset has %d rows", part.N, n)
	}
	out := &Partial{NumRows: n, NumPos: ord.NumPositive}
	if n == 0 || ord.NumPositive == 0 || part.Empty() {
		return out, ex.Err()
	}
	if shared == nil {
		shared = dataset.Transpose(ordered)
	}

	outs := minePartitions(ctx, ordered, shared, ord.NumPositive, opt, plan.NewSpanSource(part), workers)

	dedup := bitset.NewDedup()
	for _, o := range outs {
		out.cands = append(out.cands, o.cands...)
		out.Counters.Add(o.counters)
		for _, r := range o.rejected {
			if dedup.Add(r) {
				out.rejected = append(out.rejected, r)
			}
		}
	}
	if err := ex.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergePartials applies the global interestingness fixpoint to partials
// covering the whole universe of d's consequent view and returns the
// final Result. Counter semantics match single-node MineParallel exactly:
// subtask counters are summed, worker-local GroupsEmitted and
// GroupsNotInterest are discarded, and both are recomputed globally (with
// rejected row sets deduplicated across partials by content). Callers —
// the cluster coordinator — are responsible for ensuring the partials
// cover the universe exactly once (plan.Coverage is the ledger for that);
// MergePartials can only check view-shape consistency.
func MergePartials(ctx context.Context, d *dataset.Dataset, consequent int, opt Options, partials []*Partial) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	ordered, ord, _, err := resolveView(d, consequent, opt.Prepared, ex)
	if err != nil {
		return nil, err
	}
	n := len(ordered.Rows)
	res := &Result{
		Consequent: consequent,
		NumRows:    n,
		NumPos:     ord.NumPositive,
	}
	setupDone()

	rejected := bitset.NewDedup()
	var cands []irgEntry
	for _, p := range partials {
		if p == nil {
			continue
		}
		if p.NumRows != n || p.NumPos != ord.NumPositive {
			return nil, fmt.Errorf("core: partial view %d/%d does not match dataset view %d/%d",
				p.NumPos, p.NumRows, ord.NumPositive, n)
		}
		cands = append(cands, p.cands...)
		ex.Stats.Counters.Add(p.Counters)
		for _, r := range p.rejected {
			rejected.Add(r)
		}
	}
	if n == 0 || ord.NumPositive == 0 {
		res.stats = ex.Stats
		return res, ex.Err()
	}
	return finishParallel(ex, res, ordered, ord, opt, cands, rejected)
}
