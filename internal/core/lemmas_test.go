package core

// Directed tests for the paper's lemmas, beyond the black-box oracle
// comparisons: each lemma's statement is checked on the running example or
// on constructed instances.

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Lemma 2.1: every rule group has a unique upper bound — equivalently, the
// closure map is a function of the row support set. Verified by checking
// that distinct groups mined by FARMER never share a row set.
func TestLemma21UniqueUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 50; iter++ {
		d := randomDataset(rng)
		res := mustMine(t, d, 0, Options{MinSup: 1})
		seen := map[string]bool{}
		for _, g := range res.Groups {
			key := ""
			for _, r := range g.Rows {
				key += string(rune('0' + r))
			}
			if seen[key] {
				t.Fatalf("two groups share row set %v", g.Rows)
			}
			seen[key] = true
		}
	}
}

// Lemma 2.2: every itemset between a lower bound and the upper bound has
// the same row support as the group.
func TestLemma22MembersShareSupport(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, ComputeLowerBounds: true})
	for _, g := range res.Groups {
		want := dataset.SupportSet(d, g.Antecedent)
		for _, lb := range g.LowerBounds {
			// Take the member lb ∪ {first upper-bound item not in lb}.
			member := append([]dataset.Item(nil), lb...)
			for _, it := range g.Antecedent {
				if !containsItem(member, it) {
					member = append(member, it)
					break
				}
			}
			sortItems(member)
			if !dataset.SupportSet(d, member).Equal(want) {
				t.Fatalf("member %v of group %v has different support", member, g.Antecedent)
			}
		}
	}
}

// Lemma 3.1: I(X) → C is the upper bound of the group with support set
// R(I(X)) — i.e., every mined antecedent is closed.
func TestLemma31AntecedentsClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 50; iter++ {
		d := randomDataset(rng)
		res := mustMine(t, d, 0, Options{MinSup: 1})
		for _, g := range res.Groups {
			if got := dataset.Closure(d, g.Antecedent); !reflect.DeepEqual(got, g.Antecedent) {
				t.Fatalf("antecedent %v not closed (closure %v)", g.Antecedent, got)
			}
		}
	}
}

// Lemma 3.5 (pruning 1): absorbing a candidate row found in every tuple
// never changes the mined groups — tested as ablation invariance, here with
// a construction that guarantees a Y absorption happens.
func TestLemma35AbsorptionInvariance(t *testing.T) {
	// Rows 0 and 1 are identical: at node {0}, row 1 appears in every tuple.
	d, err := dataset.FromItemLists(
		[][]dataset.Item{{0, 1, 2}, {0, 1, 2}, {0, 3}, {1, 3}},
		[]int{0, 0, 0, 1}, 4, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	with := mustMine(t, d, 0, Options{MinSup: 1})
	if with.Stats().RowsAbsorbed == 0 {
		t.Fatal("construction did not trigger pruning 1")
	}
	without := mustMine(t, d, 0, Options{MinSup: 1, DisablePruning1: true})
	if !reflect.DeepEqual(coreKeys(with), coreKeys(without)) {
		t.Fatal("pruning 1 changed results")
	}
	// The duplicate rows always appear together in every group's row set.
	for _, g := range with.Groups {
		has0, has1 := false, false
		for _, r := range g.Rows {
			if r == 0 {
				has0 = true
			}
			if r == 1 {
				has1 = true
			}
		}
		if has0 != has1 {
			t.Fatalf("duplicate rows split across group %v", g.Rows)
		}
	}
}

// Lemma 3.6 (pruning 2): the example 5 situation — after node {2,3} of the
// paper example is explored, node {3,4} is redundant because row 2 occurs
// in every tuple of TT|{3,4}.
func TestLemma36BackScanExample5(t *testing.T) {
	d := dataset.PaperExample()
	with := mustMine(t, d, 0, Options{MinSup: 1})
	without := mustMine(t, d, 0, Options{MinSup: 1, DisablePruning2: true})
	if with.Stats().PrunedBackScan == 0 {
		t.Fatal("back scan never fired")
	}
	if without.Stats().NodesVisited < with.Stats().NodesVisited {
		t.Fatal("disabling the back scan reduced the node count")
	}
	if without.Stats().PrunedBackScan != 0 {
		t.Fatal("disabled back scan still pruned")
	}
	if !reflect.DeepEqual(coreKeys(with), coreKeys(without)) {
		t.Fatal("pruning 2 changed results")
	}
}

// Lemma 3.7/3.8 consequence: at every reported group, support and
// confidence respect the thresholds that the bounds promised to enforce.
func TestLemma3738BoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 50; iter++ {
		d := randomDataset(rng)
		minsup := 1 + rng.Intn(3)
		minconf := 0.5 + 0.4*rng.Float64()
		res := mustMine(t, d, 0, Options{MinSup: minsup, MinConf: minconf})
		for _, g := range res.Groups {
			if g.SupPos < minsup || g.Confidence < minconf {
				t.Fatalf("bounds let through group %v (sup=%d conf=%v)",
					g.Antecedent, g.SupPos, g.Confidence)
			}
		}
	}
}

// Lemma 3.9: the reported chi value matches stats.Chi2 of the group's
// margins, and no group below a chi threshold survives.
func TestLemma39ChiConsistent(t *testing.T) {
	d := dataset.PaperExample()
	res := mustMine(t, d, 0, Options{MinSup: 1, MinChi: 0.5})
	for _, g := range res.Groups {
		want := stats.Chi2(g.SupPos+g.SupNeg, g.SupPos, res.NumRows, res.NumPos)
		if diff := g.Chi - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("group %v chi %v, want %v", g.Antecedent, g.Chi, want)
		}
		if g.Chi < 0.5 {
			t.Fatalf("group %v below minchi", g.Antecedent)
		}
	}
}

// Lemma 3.10/3.11 (MineLB): adding a subset of an already-added closed set
// never changes the lower bounds — tested by feeding MineLowerBounds a
// dataset where such subsets occur.
func TestLemma311SubsumedIntersections(t *testing.T) {
	// Outside rows: abc, then ab (⊂ abc ∩ A when A=abcd).
	d, err := dataset.FromItemLists(
		[][]dataset.Item{
			{0, 1, 2, 3}, // A = abcd (class C)
			{0, 1, 2},    // intersection abc
			{0, 1},       // intersection ab ⊂ abc: must not matter
		},
		[]int{0, 1, 1}, 4, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	a := []dataset.Item{0, 1, 2, 3}
	got, _ := MineLowerBounds(d, a, dataset.SupportSet(d, a), 0)

	// Compare with the same computation where the redundant row is absent.
	d2, err := dataset.FromItemLists(
		[][]dataset.Item{{0, 1, 2, 3}, {0, 1, 2}},
		[]int{0, 1}, 4, []string{"C", "N"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := MineLowerBounds(d2, a, dataset.SupportSet(d2, a), 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subsumed intersection changed lower bounds: %v vs %v", got, want)
	}
}

func containsItem(items []dataset.Item, it dataset.Item) bool {
	for _, x := range items {
		if x == it {
			return true
		}
	}
	return false
}

func sortItems(items []dataset.Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j-1] > items[j]; j-- {
			items[j-1], items[j] = items[j], items[j-1]
		}
	}
}
