package core

import (
	"container/heap"
	"context"
	"fmt"
	"slices"
	"sort"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Measure selects the objective of MineTopK. All three are convex impurity
// measures over the (x, y) margins, so the Lemma 3.9 vertex bound applies
// (Morishita & Sese, PODS 2000 — the paper's reference [15]).
type Measure int

const (
	// MeasureChi2 ranks groups by the 2×2 chi-square statistic.
	MeasureChi2 Measure = iota
	// MeasureEntropyGain ranks groups by information gain.
	MeasureEntropyGain
	// MeasureGiniGain ranks groups by Gini-impurity reduction.
	MeasureGiniGain
)

// String returns the measure's canonical name: "chi2", "entropy" or
// "gini".
func (m Measure) String() string {
	switch m {
	case MeasureEntropyGain:
		return "entropy"
	case MeasureGiniGain:
		return "gini"
	default:
		return "chi2"
	}
}

// ParseMeasure maps a canonical measure name ("chi2", "entropy", "gini")
// back to its Measure, as used by the CLI flags and the service API.
func ParseMeasure(name string) (Measure, error) {
	switch name {
	case "chi2", "":
		return MeasureChi2, nil
	case "entropy":
		return MeasureEntropyGain, nil
	case "gini":
		return MeasureGiniGain, nil
	}
	return 0, fmt.Errorf("core: unknown measure %q (want chi2, entropy or gini)", name)
}

func (m Measure) value(x, y, n, pos int) float64 {
	switch m {
	case MeasureEntropyGain:
		return stats.EntropyGain(x, y, n, pos)
	case MeasureGiniGain:
		return stats.GiniGain(x, y, n, pos)
	default:
		return stats.Chi2(x, y, n, pos)
	}
}

func (m Measure) bound(x, y, n, pos int) float64 {
	switch m {
	case MeasureEntropyGain:
		return stats.EntropyGainUpperBound(x, y, n, pos)
	case MeasureGiniGain:
		return stats.GiniGainUpperBound(x, y, n, pos)
	default:
		return stats.Chi2UpperBound(x, y, n, pos)
	}
}

// ScoredGroup is a rule group with its objective value.
type ScoredGroup struct {
	RuleGroup
	Score float64
}

// TopKOptions configures TopK: the number of groups to keep, the objective
// measure, and the minimum support. The zero value of the anytime fields
// (Strategy, MaxMillis, MaxNodes, Delta, Seed, Workers) selects the exact
// depth-first miner with unchanged, Counters-identical behavior.
type TopKOptions struct {
	// K is the number of best groups to return. Must be ≥ 1.
	K int
	// Measure is the convex objective; its zero value is MeasureChi2.
	Measure Measure
	// MinSup is the minimum rule support, ≥ 1.
	MinSup int
	// Prepared, when non-nil, supplies a precompiled snapshot of the
	// dataset (see Options.Prepared): the run reuses the snapshot's ORD
	// ordering and transposed table instead of rebuilding them.
	Prepared *dataset.Snapshot

	// Strategy selects the search mode. StrategyExact (the zero value)
	// is the exhaustive depth-first miner; setting a budget below while
	// leaving the strategy exact upgrades it to StrategyBestFirst, since a
	// budget only makes sense with a best-so-far ordering.
	Strategy Strategy
	// MaxMillis bounds the run's wall clock (setup included); 0 means
	// unbudgeted. A budget-stopped run returns the best groups found with
	// Partial set and a certified Gap — no error.
	MaxMillis int64
	// MaxNodes bounds the number of node expansions; 0 means unbudgeted.
	MaxNodes int64
	// Delta is StrategyLeap's relaxation: subtrees whose bound cannot
	// improve the current k-th score by more than a factor (1+Delta) are
	// pruned. Ignored by the other strategies.
	Delta float64
	// Seed seeds StrategySample's random walks; equal seeds replay equal
	// walk sequences.
	Seed int64
	// Workers is the number of concurrent frontier expanders for the
	// anytime strategies (negative = GOMAXPROCS, 0/1 = sequential). The
	// exact strategy ignores it. The exhausted best-first answer is
	// identical for every worker count.
	Workers int
}

// TopKResult carries the ranked groups (best first) and the run's unified
// statistics, plus — for the anytime strategies — the quality certificate.
type TopKResult struct {
	Groups []ScoredGroup

	// Partial marks an answer not certified to equal the exact top-k: the
	// budget stopped the search with work outstanding, a leap run pruned a
	// subtree that could have mattered, or the sampler ran (it never
	// certifies). An unset Partial on an anytime run is a proof of
	// exactness.
	Partial bool
	// Gap, when HasGap, bounds how far the answer can be from optimal:
	// no unexplored group can score more than (k-th kept score + Gap).
	// Zero for complete runs.
	Gap float64
	// HasGap reports whether Gap is meaningful (best-first and leap runs;
	// the sampler certifies nothing).
	HasGap bool
	// NodesExpanded counts the enumeration nodes the search entered — the
	// budget currency, reported for budget-utilization accounting.
	NodesExpanded int64

	stats engine.Stats
}

// Stats returns the engine's unified run statistics.
func (r *TopKResult) Stats() engine.Stats { return r.stats }

// Count returns the number of ranked groups kept.
func (r *TopKResult) Count() int { return len(r.Groups) }

// MineTopK returns the k rule groups with the given consequent that
// maximize the measure, subject to a minimum support, by branch-and-bound
// over the row enumeration tree: the convex vertex bound of each subtree is
// compared against the current k-th best score, so the threshold tightens
// as better groups are found. Groups are returned best-first; ties break
// toward higher support, then lexicographic antecedents.
func MineTopK(d *dataset.Dataset, consequent, k int, measure Measure, minsup int) ([]ScoredGroup, error) {
	return MineTopKContext(context.Background(), d, consequent, k, measure, minsup)
}

// MineTopKContext is MineTopK under a context: cancellation is checked at
// every node expansion. On cancellation it returns ctx.Err() together with
// the best groups found so far — a valid answer for whatever portion of
// the search space was explored, not necessarily the global top k.
func MineTopKContext(ctx context.Context, d *dataset.Dataset, consequent, k int, measure Measure, minsup int) ([]ScoredGroup, error) {
	res, err := TopK(ctx, d, consequent, TopKOptions{K: k, Measure: measure, MinSup: minsup})
	if res == nil {
		return nil, err
	}
	return res.Groups, err
}

// TopK is the canonical branch-and-bound entry point: MineTopKContext with
// an options struct and a stats-carrying result.
func TopK(ctx context.Context, d *dataset.Dataset, consequent int, opt TopKOptions) (*TopKResult, error) {
	k, measure, minsup := opt.K, opt.Measure, opt.MinSup
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if minsup < 1 {
		return nil, fmt.Errorf("core: minsup must be >= 1, got %d", minsup)
	}
	strat := opt.Strategy
	if strat == StrategyExact && (opt.MaxMillis > 0 || opt.MaxNodes > 0) {
		// A budget without a strategy means "the best answer you can find
		// in time": best-first is the only ordering that makes the
		// best-so-far heap valid at the stopping instant.
		strat = StrategyBestFirst
	}
	if strat != StrategyExact {
		return topKAnytime(ctx, d, consequent, opt, strat)
	}
	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	ordered, ord, tt, err := resolveView(d, consequent, opt.Prepared, ex)
	if err != nil {
		return nil, err
	}
	m := newMiner(ordered, ord.NumPositive, Options{MinSup: minsup}, ex, tt)
	setupDone()
	tk := &topkSearch{miner: m, k: k, measure: measure}
	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	err = tk.run()
	searchDone()
	ex.Stats.ArenaBytes = m.sc.Bytes()

	out := make([]ScoredGroup, len(tk.best))
	for i := range tk.best {
		e := tk.best[i]
		g := ScoredGroup{Score: e.score}
		g.Antecedent = e.items
		g.SupPos = e.supPos
		g.SupNeg = e.tot - e.supPos
		g.Confidence = float64(e.supPos) / float64(e.tot)
		g.Chi = stats.Chi2(e.tot, e.supPos, m.n, m.numPos)
		g.Rows = ord.MapRowsToOriginal(e.rows.Ints())
		sort.Ints(g.Rows)
		out[i] = g
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].SupPos != out[b].SupPos {
			return out[a].SupPos > out[b].SupPos
		}
		return lessItems(out[a].Antecedent, out[b].Antecedent)
	})
	return &TopKResult{Groups: out, stats: m.ex.Stats}, err
}

type scoredEntry struct {
	irgEntry
	score float64
}

// topkHeap is a min-heap on score so the weakest kept group is evictable.
type topkHeap []scoredEntry

func (h topkHeap) Len() int           { return len(h) }
func (h topkHeap) Less(i, j int) bool { return h[i].score < h[j].score }
func (h topkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)        { *h = append(*h, x.(scoredEntry)) }
func (h *topkHeap) Pop() any          { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h topkHeap) threshold() float64 { return h[0].score }

type topkSearch struct {
	miner   *miner
	k       int
	measure Measure
	best    topkHeap
}

func (t *topkSearch) run() error {
	m := t.miner
	if m.n == 0 || m.numPos == 0 {
		return nil
	}
	for ri := 0; ri < m.n; ri++ {
		tuples := m.rootTuples(ri)
		supp, supn := 0, 0
		if ri < m.numPos {
			supp = 1
		} else {
			supn = 1
		}
		epCount := m.numPos - ri - 1
		if epCount < 0 {
			epCount = 0
		}
		m.sc.InX.Set(ri)
		err := t.walk(tuples, supp, supn, epCount, ri)
		m.sc.InX.Clear(ri)
		if err != nil {
			return err
		}
	}
	return nil
}

// walk mirrors mineNode's traversal with the branch-and-bound cut: instead
// of fixed thresholds, subtrees are pruned when the measure's vertex bound
// cannot beat the current k-th best score.
func (t *topkSearch) walk(tuples []tuple, supp, supn, epCount, rmax int) error {
	m := t.miner
	if err := m.ex.EnterNode(); err != nil {
		return err
	}
	if len(tuples) == 0 {
		return nil
	}
	if m.backScanHit(tuples, rmax) {
		return nil
	}
	if supp+epCount < m.opt.MinSup {
		return nil
	}

	// Everything from here on allocates on the arena and pops on unwind.
	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)

	// Scan (same bookkeeping as mineNode's step 3).
	ep := m.sc.NextEpoch()
	cnt, stamp := m.sc.Cnt, m.sc.Stamp
	ntup := int32(len(tuples))
	maxPosInTuple := 0
	distinct := 0
	for _, tp := range tuples {
		if len(tp.Rows) == 0 {
			continue
		}
		if pos := sort.Search(len(tp.Rows), func(i int) bool { return tp.Rows[i] >= int32(m.numPos) }); pos > maxPosInTuple {
			maxPosInTuple = pos
		}
		for _, r := range tp.Rows {
			if stamp[r] != ep {
				stamp[r] = ep
				cnt[r] = 0
				distinct++
			}
			cnt[r]++
		}
	}
	union := m.sc.A.I32.Alloc(distinct)
	ne, ny := 0, 0
	yPos, yNeg := 0, 0
	for _, tp := range tuples {
		for _, r := range tp.Rows {
			if stamp[r] != ep || cnt[r] < 0 {
				continue
			}
			if cnt[r] == ntup {
				ny++
				union[distinct-ny] = r
				if int(r) < m.numPos {
					yPos++
				} else {
					yNeg++
				}
			} else {
				union[ne] = r
				ne++
			}
			cnt[r] = -1
		}
	}
	eRows, yRows := union[:ne], union[ne:]
	slices.Sort(eRows)
	suppIn := supp
	supp += yPos
	supn += yNeg

	// Bound cuts: support, then the dynamic measure bound.
	if suppIn+maxPosInTuple < m.opt.MinSup {
		return nil
	}
	if len(t.best) == t.k {
		if t.measure.bound(supp+supn, supp, m.n, m.numPos) <= t.best.threshold() {
			m.ex.Stats.PrunedGainBound++
			return nil
		}
	}

	for _, r := range yRows {
		m.sc.InX.Set(int(r))
	}
	cleaned := m.sc.A.Rows.Alloc(len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].Rows
		}
	} else {
		slices.Sort(yRows)
		total := 0
		for i := range tuples {
			total += len(tuples[i].Rows) - len(yRows) // Y is in every tuple
		}
		backing := m.sc.A.I32.Alloc(total)
		w := 0
		for i := range tuples {
			start := w
			yi := 0
			for _, r := range tuples[i].Rows {
				for yi < len(yRows) && yRows[yi] < r {
					yi++
				}
				if yi < len(yRows) && yRows[yi] == r {
					continue
				}
				backing[w] = r
				w++
			}
			cleaned[i] = backing[start:w:w]
		}
	}

	// Children via the same flat counted layout as mineNode's step 6.
	if len(eRows) > 0 {
		posOf := func(r int32) int {
			return sort.Search(len(eRows), func(i int) bool { return eRows[i] >= r })
		}
		counts := m.sc.A.I32.Alloc(len(eRows) + 1)
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				counts[posOf(r)+1]++
			}
		}
		for i := 1; i <= len(eRows); i++ {
			counts[i] += counts[i-1]
		}
		flat := m.sc.A.I32.Alloc(int(counts[len(eRows)]))
		fill := m.sc.A.I32.Alloc(len(eRows))
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				p := posOf(r)
				flat[int(counts[p])+int(fill[p])] = int32(ti)
				fill[p]++
			}
		}
		posBoundary := sort.Search(len(eRows), func(i int) bool { return eRows[i] >= int32(m.numPos) })
		childBacking := m.sc.A.Tup.Alloc(int(counts[len(eRows)]))
		for p, r := range eRows {
			tis := flat[counts[p]:counts[p+1]]
			child := childBacking[counts[p]:counts[p]:counts[p+1]]
			for _, ti := range tis {
				rows := cleaned[ti]
				kk := sort.Search(len(rows), func(i int) bool { return rows[i] > r })
				child = append(child, tuple{Item: tuples[ti].Item, Rows: rows[kk:]})
			}
			ca, cb := supp, supn
			childEp := 0
			if int(r) < m.numPos {
				ca++
				childEp = posBoundary - p - 1
			} else {
				cb++
			}
			m.sc.InX.Set(int(r))
			err := t.walk(child, ca, cb, childEp, int(r))
			m.sc.InX.Clear(int(r))
			if err != nil {
				return err
			}
		}
	}

	// Emit into the heap. After cancellation the unwind path skips
	// emission, mirroring maybeEmit's contract.
	if supp >= m.opt.MinSup && m.ex.Err() == nil {
		score := t.measure.value(supp+supn, supp, m.n, m.numPos)
		if len(t.best) < t.k || score > t.best.threshold() {
			items := make([]dataset.Item, len(tuples))
			for i, tp := range tuples {
				items[i] = tp.Item
			}
			slices.Sort(items)
			entry := scoredEntry{score: score}
			entry.rows = m.sc.InX.Clone()
			entry.supPos = supp
			entry.tot = supp + supn
			entry.items = items
			heap.Push(&t.best, entry)
			if len(t.best) > t.k {
				heap.Pop(&t.best)
			}
			m.ex.Stats.GroupsEmitted++
		}
	}

	for _, r := range yRows {
		m.sc.InX.Clear(int(r))
	}
	return nil
}
