package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
)

// MineParallel is Mine spread over worker goroutines: the subtrees rooted
// at each first row of the enumeration tree are independent, so workers
// mine them concurrently, collecting every CONSTRAINT-satisfying rule group
// (without the interestingness comparison, which needs global order); a
// sequential pass then applies the step-7 interestingness fixpoint in
// ascending antecedent-size order, which yields exactly Mine's result set.
//
// workers ≤ 0 selects GOMAXPROCS. The ablation switches are honoured; the
// per-strategy pruning counters in Stats are summed across workers.
func MineParallel(d *dataset.Dataset, consequent int, opt Options, workers int) (*Result, error) {
	return MineParallelContext(context.Background(), d, consequent, opt, workers)
}

// MineParallelContext is MineParallel under a context. Each worker polls
// cancellation at node-expansion granularity; once the context fires, every
// worker stops expanding, drains the remaining task queue without doing
// work, and exits before the call returns — no goroutine outlives the
// call. On cancellation it returns ctx.Err() together with a non-nil
// Result carrying the merged partial statistics (and no groups: the
// interestingness fixpoint needs the complete candidate set to be sound).
func MineParallelContext(ctx context.Context, d *dataset.Dataset, consequent int, opt Options, workers int) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if consequent < 0 || consequent >= d.NumClasses() {
		return nil, fmt.Errorf("core: consequent class %d outside [0,%d)", consequent, d.NumClasses())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	ordered, ord := dataset.OrderForConsequent(d, consequent)
	n := len(ordered.Rows)
	res := &Result{
		Consequent: consequent,
		NumRows:    n,
		NumPos:     ord.NumPositive,
	}
	if n == 0 || ord.NumPositive == 0 {
		setupDone()
		res.Stats = ex.Stats
		return res, nil
	}

	// The transposed table is immutable and shared; each worker owns its
	// scratch arrays and candidate store.
	shared := dataset.Transpose(ordered)

	// Task granularity: depth-2 nodes. The row enumeration tree is extremely
	// left-heavy (the first root subtree holds about half the work), so
	// scheduling whole root subtrees starves all but one worker. Instead,
	// every singleton {r1} runs as an emission-only task (children skipped)
	// and every pair {r1, r2} runs as a full subtree task whose conditional
	// table is built directly from the global transposed table — sound
	// because candidate lists built this way are supersets of the ones the
	// sequential traversal would pass down (pruning 1 re-detects absorbed
	// rows locally) and candidate collection is order-independent.
	//
	// Each worker applies the step-7 interestingness filter against its own
	// local store: dropping a group because ANY constraint-satisfying
	// subset group has ≥ confidence is globally sound (if that subset is
	// itself uninteresting, transitivity yields an interesting dominator),
	// so local filtering only removes groups the global fixpoint would
	// remove anyway, while keeping the candidate union small.
	type task struct{ r1, r2 int }
	tasks := make([]task, 0, n+n*(n-1)/2)
	for r1 := 0; r1 < n; r1++ {
		tasks = append(tasks, task{r1, -1})
		for r2 := r1 + 1; r2 < n; r2++ {
			tasks = append(tasks, task{r1, r2})
		}
	}
	setupDone()

	type workerOut struct {
		cands    []irgEntry
		rejected []*bitset.Set
		counters engine.Counters
	}
	outs := make([]workerOut, workers)
	next := make(chan task, len(tasks))
	for _, t := range tasks {
		next <- t
	}
	close(next)

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wex := engine.NewExec(ctx)
			m := &miner{
				ds:             ordered,
				tt:             shared,
				numPos:         ord.NumPositive,
				n:              n,
				opt:            opt,
				ex:             wex,
				sc:             engine.NewScratch(n),
				recordRejected: true,
			}
			// The channel is pre-filled and closed, so ranging always
			// drains it; after cancellation each remaining task is skipped
			// without expanding a node, so the loop finishes promptly and
			// the worker exits (no goroutine leak, no abandoned tasks).
			for tk := range next {
				if wex.Err() != nil {
					continue
				}
				if tk.r2 < 0 {
					m.mineSingleton(tk.r1)
				} else {
					m.minePair(tk.r1, tk.r2)
				}
			}
			outs[w] = workerOut{cands: m.groups, rejected: m.rejectedRows, counters: wex.Stats.Counters}
		}(w)
	}
	wg.Wait()
	searchDone()

	// Rejection accounting: a group dropped by a worker's local filter is a
	// constraint-satisfying group the global fixpoint would also reject (see
	// the dominator-transitivity argument above), but rejection EVENTS are
	// not scheduling-independent — a pair task can rediscover a group whose
	// node the sequential traversal absorbs via pruning 1, so the same group
	// may be rejected in two tasks, or locally in one worker and again in
	// the fixpoint. Deduplicating by row set (closed groups are identified
	// by their row sets) makes the counter deterministic and equal to
	// sequential Mine's, which rejects each dominated group exactly once.
	rejected := make(map[string]struct{})
	var cands []irgEntry
	for _, o := range outs {
		cands = append(cands, o.cands...)
		ex.Stats.Counters.Add(o.counters)
		for _, r := range o.rejected {
			rejected[r.String()] = struct{}{}
		}
	}
	// Worker GroupsEmitted/GroupsNotInterest reflect local decisions only;
	// the fixpoint below recomputes both globally.
	ex.Stats.GroupsEmitted = 0
	ex.Stats.GroupsNotInterest = 0

	if err := ex.Err(); err != nil {
		res.Stats = ex.Stats
		return res, err
	}

	finishDone := engine.Phase(&ex.Stats.Timings.Finish)
	defer finishDone()

	// Sequential interestingness fixpoint: more general groups (larger row
	// sets) decided first; row-set dedup collapses duplicates from ablation
	// modes.
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].rows.Count() > cands[j].rows.Count()
	})
	var kept []irgEntry
	for _, c := range cands {
		if err := ex.Err(); err != nil {
			res.Stats = ex.Stats
			return res, err
		}
		interesting := true
		for i := range kept {
			e := &kept[i]
			if e.rows.SupersetOf(c.rows) {
				if e.rows.Equal(c.rows) {
					interesting = false // duplicate discovery
					break
				}
				if !confLess(e.supPos, e.tot, c.supPos, c.tot) {
					interesting = false
					rejected[c.rows.String()] = struct{}{}
					break
				}
			}
		}
		if interesting {
			kept = append(kept, c)
		}
	}
	ex.Stats.GroupsEmitted = int64(len(kept))
	ex.Stats.GroupsNotInterest = int64(len(rejected))

	for i := range kept {
		if err := ex.Err(); err != nil {
			res.Groups = nil
			res.Stats = ex.Stats
			return res, err
		}
		e := &kept[i]
		g := RuleGroup{
			Antecedent: e.items,
			SupPos:     e.supPos,
			SupNeg:     e.tot - e.supPos,
			Confidence: float64(e.supPos) / float64(e.tot),
			Chi:        e.chi,
			Rows:       ord.MapRowsToOriginal(e.rows.Ints()),
		}
		sort.Ints(g.Rows)
		if opt.ComputeLowerBounds {
			g.LowerBounds, g.Truncated = MineLowerBounds(ordered, e.items, e.rows, opt.MaxLowerBounds)
		}
		res.Groups = append(res.Groups, g)
	}
	// Deterministic output order regardless of worker scheduling.
	sort.SliceStable(res.Groups, func(i, j int) bool {
		return lessItems(res.Groups[i].Antecedent, res.Groups[j].Antecedent)
	})
	res.Stats = ex.Stats
	return res, nil
}

// mineSingleton runs node {r1} in emission-only mode: steps 1–5 and 7, no
// children (pair tasks own the depth-2 subtrees). Errors (cancellation)
// are recorded in the miner's Exec and surface through the caller's poll.
func (m *miner) mineSingleton(ri int) {
	tuples := m.rootTuples(ri)
	supp, supn := 0, 0
	if ri < m.numPos {
		supp = 1
	} else {
		supn = 1
	}
	epCount := m.numPos - ri - 1
	if epCount < 0 {
		epCount = 0
	}
	m.sc.InX.Set(ri)
	m.skipChildren = true
	_ = m.mineNode(tuples, supp, supn, epCount, ri)
	m.skipChildren = false
	m.sc.InX.Clear(ri)
}

// minePair runs the full subtree of node {r1, r2}, with the conditional
// table built directly from the global transposed table.
func (m *miner) minePair(r1, r2 int) {
	row := &m.ds.Rows[r1]
	tuples := make([]tuple, 0, len(row.Items))
	for _, it := range row.Items {
		if !m.ds.Rows[r2].HasItem(it) {
			continue
		}
		list := m.tt.Lists[it]
		k := sort.Search(len(list), func(i int) bool { return list[i] > int32(r2) })
		tuples = append(tuples, tuple{item: it, rows: list[k:]})
	}
	if len(tuples) == 0 {
		return
	}
	supp, supn := 0, 0
	for _, r := range []int{r1, r2} {
		if r < m.numPos {
			supp++
		} else {
			supn++
		}
	}
	epCount := m.numPos - r2 - 1
	if epCount < 0 {
		epCount = 0
	}
	m.sc.InX.Set(r1)
	m.sc.InX.Set(r2)
	_ = m.mineNode(tuples, supp, supn, epCount, r2)
	m.sc.InX.Clear(r1)
	m.sc.InX.Clear(r2)
}
