package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/plan"
)

// MineParallel is Mine spread over worker goroutines: the subtrees rooted
// at each first row of the enumeration tree are independent, so workers
// mine them concurrently, collecting every CONSTRAINT-satisfying rule group
// (without the interestingness comparison, which needs global order); a
// sequential pass then applies the step-7 interestingness fixpoint in
// ascending antecedent-size order, which yields exactly Mine's result set.
//
// workers ≤ 0 selects GOMAXPROCS. The ablation switches are honoured; the
// per-strategy pruning counters in Stats are summed across workers.
func MineParallel(d *dataset.Dataset, consequent int, opt Options, workers int) (*Result, error) {
	return MineParallelContext(context.Background(), d, consequent, opt, workers)
}

// Task granularity: depth-2 nodes. The row enumeration tree is extremely
// left-heavy (the first root subtree holds about half the work), so
// scheduling whole root subtrees starves all but one worker. Instead,
// every singleton {r1} runs as an emission-only task (children skipped)
// and every pair {r1, r2} runs as a full subtree task whose conditional
// table is built directly from the global transposed table — sound
// because candidate lists built this way are supersets of the ones the
// sequential traversal would pass down (pruning 1 re-detects absorbed
// rows locally) and candidate collection is order-independent.
//
// That subtask universe lives in internal/plan: a plan.Partition is a
// contiguous slice of the linearized triangle, a plan.Source deals
// disjoint partitions out. In-process mining consumes plan.RootSource
// (one whole root at a time, so the cheap deep tail stays coalesced) and
// a cluster worker consumes plan.NewSpanSource over its leased slice —
// the scheduler below is the same either way. The universe is fixed by
// the row count alone and only its distribution varies, so the summed
// pruning counters are identical across worker counts, schedules, and
// cluster topologies.

// wsGrain is the partition size below which tasks are no longer split.
// Pair subtrees near the diagonal are tiny; splitting below this
// granularity costs more in deque traffic than it recovers in balance.
const wsGrain = 16

// wsDeque is one worker's task queue. The owner pushes and pops at the
// tail (LIFO keeps the conditional tables it just shed cache-warm);
// thieves steal from the head, where the largest shed partitions sit.
type wsDeque struct {
	mu    sync.Mutex
	tasks []plan.Partition
}

func (d *wsDeque) push(t plan.Partition) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *wsDeque) popTail() (plan.Partition, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return plan.Partition{}, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

func (d *wsDeque) stealHead() (plan.Partition, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return plan.Partition{}, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// wsScheduler coordinates the partition source, the per-worker deques,
// and termination detection. done counts executed subtasks; when it
// reaches the source's size the last worker closes doneCh and everyone
// exits.
type wsScheduler struct {
	src    plan.SizedSource
	deques []wsDeque
	hungry atomic.Int32 // workers currently looking for work
	done   atomic.Int64 // subtasks executed
	total  int64
	doneCh chan struct{}
}

func newWsScheduler(src plan.SizedSource, workers int) *wsScheduler {
	s := &wsScheduler{
		src:    src,
		deques: make([]wsDeque, workers),
		total:  src.Size(),
		doneCh: make(chan struct{}),
	}
	if s.total == 0 {
		close(s.doneCh)
	}
	return s
}

// take returns the next partition for worker w: own deque first, then the
// source, then stealing. ok=false means no work was found this round (the
// caller re-polls until doneCh closes).
func (s *wsScheduler) take(w int) (plan.Partition, bool) {
	if t, ok := s.deques[w].popTail(); ok {
		return t, true
	}
	if t, ok := s.src.Claim(); ok {
		return t, true
	}
	for i := 1; i < len(s.deques); i++ {
		if t, ok := s.deques[(w+i)%len(s.deques)].stealHead(); ok {
			return t, true
		}
	}
	return plan.Partition{}, false
}

// finish credits executed subtasks toward termination.
func (s *wsScheduler) finish(count int) {
	if s.done.Add(int64(count)) == s.total {
		close(s.doneCh)
	}
}

// workerOut is what one scheduler worker hands back: its candidate store,
// the row sets it rejected locally, and its subtask counters.
type workerOut struct {
	cands      []irgEntry
	rejected   []*bitset.Set
	counters   engine.Counters
	arenaBytes int64
}

// minePartitions drains src over the given worker count: each worker owns
// its Exec, miner and scratch, takes partitions via the work-stealing
// scheduler, sheds halves while others are hungry, and executes subtasks
// at depth-2 granularity. It returns when the source's whole region has
// been executed or the context fired.
func minePartitions(ctx context.Context, ordered *dataset.Dataset, shared *dataset.Transposed, numPos int, opt Options, src plan.SizedSource, workers int) []workerOut {
	n := len(ordered.Rows)
	sched := newWsScheduler(src, workers)
	outs := make([]workerOut, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wex := engine.NewExec(ctx)
			m := &miner{
				ds:             ordered,
				tt:             shared,
				numPos:         numPos,
				n:              n,
				opt:            opt,
				ex:             wex,
				sc:             engine.NewScratch(n),
				recordRejected: true,
			}
			for wex.Err() == nil {
				t, ok := sched.take(w)
				if !ok {
					// Advertise hunger (busy workers start shedding), then
					// spin between source, deques, and termination.
					sched.hungry.Add(1)
					for !ok {
						select {
						case <-sched.doneCh:
							sched.hungry.Add(-1)
							goto out
						default:
						}
						if wex.Err() != nil {
							sched.hungry.Add(-1)
							goto out
						}
						runtime.Gosched()
						t, ok = sched.take(w)
					}
					sched.hungry.Add(-1)
				}
				// Adaptive granularity: while others are starving, shed
				// the upper half of the partition into the (stealable)
				// deque.
				for t.Len() > wsGrain && sched.hungry.Load() > 0 {
					var upper plan.Partition
					t, upper = t.Split()
					sched.deques[w].push(upper)
				}
				sched.finish(m.minePartition(t))
			}
		out:
			outs[w] = workerOut{cands: m.groups, rejected: m.rejectedRows, counters: wex.Stats.Counters, arenaBytes: m.sc.Bytes()}
		}(w)
	}
	wg.Wait()
	return outs
}

// minePartition executes every subtask of partition p in linear order and
// returns how many ran before cancellation (if any) stopped it.
func (m *miner) minePartition(p plan.Partition) int {
	ran := 0
	idx := p.Start
	for idx < p.End {
		r1 := plan.RootOf(p.N, idx)
		base := plan.RootBase(p.N, r1)
		end := plan.RootBase(p.N, r1+1)
		if end > p.End {
			end = p.End
		}
		lo := r1 + int(idx-base)
		hi := r1 + int(end-base)
		for r2 := lo; r2 < hi; r2++ {
			if m.ex.Err() != nil {
				return ran
			}
			if r2 == r1 {
				m.mineSingleton(r1)
			} else {
				m.minePair(r1, r2)
			}
			ran++
		}
		idx = end
	}
	return ran
}

// MineParallelContext is MineParallel under a context. Each worker polls
// cancellation at node-expansion granularity; once the context fires, every
// worker stops taking tasks and exits before the call returns — no
// goroutine outlives the call. On cancellation it returns ctx.Err()
// together with a non-nil Result carrying the merged partial statistics
// (and no groups: the interestingness fixpoint needs the complete
// candidate set to be sound).
func MineParallelContext(ctx context.Context, d *dataset.Dataset, consequent int, opt Options, workers int) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ex := engine.NewExec(ctx)
	setupDone := engine.Phase(&ex.Stats.Timings.Setup)
	ordered, ord, shared, err := resolveView(d, consequent, opt.Prepared, ex)
	if err != nil {
		return nil, err
	}
	n := len(ordered.Rows)
	res := &Result{
		Consequent: consequent,
		NumRows:    n,
		NumPos:     ord.NumPositive,
	}
	if n == 0 || ord.NumPositive == 0 {
		setupDone()
		res.stats = ex.Stats
		return res, nil
	}

	// The transposed table is immutable and shared; each worker owns its
	// scratch arrays and candidate store.
	if shared == nil {
		shared = dataset.Transpose(ordered)
	}
	setupDone()

	searchDone := engine.Phase(&ex.Stats.Timings.Search)
	outs := minePartitions(ctx, ordered, shared, ord.NumPositive, opt, plan.NewRootSource(n), workers)
	searchDone()

	// Rejection accounting: a group dropped by a worker's local filter is a
	// constraint-satisfying group the global fixpoint would also reject (see
	// the dominator-transitivity argument in mineSingleton/minePair), but
	// rejection EVENTS are not scheduling-independent — a pair task can
	// rediscover a group whose node the sequential traversal absorbs via
	// pruning 1, so the same group may be rejected in two tasks, or locally
	// in one worker and again in the fixpoint. Deduplicating by row set
	// (closed groups are identified by their row sets) makes the counter
	// deterministic and equal to sequential Mine's, which rejects each
	// dominated group exactly once.
	rejected := bitset.NewDedup()
	var cands []irgEntry
	for _, o := range outs {
		cands = append(cands, o.cands...)
		ex.Stats.Counters.Add(o.counters)
		// Counters.Add cannot carry ArenaBytes (it lives outside Counters
		// to stay out of counter-equality); sum the per-worker high-water
		// marks explicitly.
		ex.Stats.ArenaBytes += o.arenaBytes
		for _, r := range o.rejected {
			rejected.Add(r)
		}
	}

	if err := ex.Err(); err != nil {
		// Worker GroupsEmitted/GroupsNotInterest reflect local decisions
		// only; without a complete candidate set they cannot be globally
		// recomputed, so zero them as before.
		ex.Stats.GroupsEmitted = 0
		ex.Stats.GroupsNotInterest = 0
		res.stats = ex.Stats
		return res, err
	}

	return finishParallel(ex, res, ordered, ord, opt, cands, rejected)
}

// finishParallel applies the global interestingness fixpoint to the
// gathered candidates and materializes the result — the merge step shared
// by the in-process scheduler above and MergePartials at the cluster
// boundary. ex.Stats.Counters must already hold the summed subtask
// counters; GroupsEmitted and GroupsNotInterest are recomputed globally
// here.
func finishParallel(ex *engine.Exec, res *Result, ordered *dataset.Dataset, ord *dataset.Ordering, opt Options, cands []irgEntry, rejected *bitset.Dedup) (*Result, error) {
	ex.Stats.GroupsEmitted = 0
	ex.Stats.GroupsNotInterest = 0

	finishDone := engine.Phase(&ex.Stats.Timings.Finish)
	defer finishDone()

	// Sequential interestingness fixpoint: more general groups (larger row
	// sets) decided first; row-set dedup collapses duplicates from ablation
	// modes.
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].rows.Count() > cands[j].rows.Count()
	})
	var kept []irgEntry
	for _, c := range cands {
		if err := ex.Err(); err != nil {
			res.stats = ex.Stats
			return res, err
		}
		interesting := true
		for i := range kept {
			e := &kept[i]
			if e.rows.SupersetOf(c.rows) {
				if e.rows.Equal(c.rows) {
					interesting = false // duplicate discovery
					break
				}
				if !confLess(e.supPos, e.tot, c.supPos, c.tot) {
					interesting = false
					rejected.Add(c.rows)
					break
				}
			}
		}
		if interesting {
			kept = append(kept, c)
		}
	}
	ex.Stats.GroupsEmitted = int64(len(kept))
	ex.Stats.GroupsNotInterest = int64(rejected.Len())

	for i := range kept {
		if err := ex.Err(); err != nil {
			res.Groups = nil
			res.stats = ex.Stats
			return res, err
		}
		e := &kept[i]
		g := RuleGroup{
			Antecedent: e.items,
			SupPos:     e.supPos,
			SupNeg:     e.tot - e.supPos,
			Confidence: float64(e.supPos) / float64(e.tot),
			Chi:        e.chi,
			Rows:       ord.MapRowsToOriginal(e.rows.Ints()),
		}
		sort.Ints(g.Rows)
		if opt.ComputeLowerBounds {
			g.LowerBounds, g.Truncated = MineLowerBounds(ordered, e.items, e.rows, opt.MaxLowerBounds)
		}
		res.Groups = append(res.Groups, g)
	}
	// Deterministic output order regardless of worker scheduling.
	sort.SliceStable(res.Groups, func(i, j int) bool {
		return lessItems(res.Groups[i].Antecedent, res.Groups[j].Antecedent)
	})
	res.stats = ex.Stats
	return res, nil
}

// mineSingleton runs node {r1} in emission-only mode: steps 1–5 and 7, no
// children (pair tasks own the depth-2 subtrees). Dropping a group because
// ANY constraint-satisfying subset group has ≥ confidence is globally
// sound (if that subset is itself uninteresting, transitivity yields an
// interesting dominator), so each worker filters against its local store
// only. Errors (cancellation) are recorded in the miner's Exec and surface
// through the caller's poll.
func (m *miner) mineSingleton(ri int) {
	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)
	tuples := m.rootTuples(ri)
	supp, supn := 0, 0
	if ri < m.numPos {
		supp = 1
	} else {
		supn = 1
	}
	epCount := m.numPos - ri - 1
	if epCount < 0 {
		epCount = 0
	}
	m.sc.InX.Set(ri)
	m.skipChildren = true
	_ = m.mineNode(tuples, supp, supn, epCount, ri)
	m.skipChildren = false
	m.sc.InX.Clear(ri)
}

// minePair runs the full subtree of node {r1, r2}, with the conditional
// table built directly from the global transposed table.
func (m *miner) minePair(r1, r2 int) {
	mark := m.sc.A.Mark()
	defer m.sc.A.Release(mark)
	row := &m.ds.Rows[r1]
	tuples := m.sc.A.Tup.Alloc(len(row.Items))[:0]
	for _, it := range row.Items {
		if !m.ds.Rows[r2].HasItem(it) {
			continue
		}
		list := m.tt.Lists[it]
		k := sort.Search(len(list), func(i int) bool { return list[i] > int32(r2) })
		tuples = append(tuples, tuple{Item: it, Rows: list[k:]})
	}
	if len(tuples) == 0 {
		return
	}
	supp, supn := 0, 0
	if r1 < m.numPos {
		supp++
	} else {
		supn++
	}
	if r2 < m.numPos {
		supp++
	} else {
		supn++
	}
	epCount := m.numPos - r2 - 1
	if epCount < 0 {
		epCount = 0
	}
	m.sc.InX.Set(r1)
	m.sc.InX.Set(r2)
	_ = m.mineNode(tuples, supp, supn, epCount, r2)
	m.sc.InX.Clear(r1)
	m.sc.InX.Clear(r2)
}
