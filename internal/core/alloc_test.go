package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// Steady-state node expansion must be allocation-free: after one run has
// grown the arena to its high-water size and populated the group store, a
// second traversal of the same tree re-discovers every group (maybeEmit's
// equal-row-set check returns early) and pushes every per-node buffer —
// cleaned lists, count arrays, child conditional tables — onto the warmed
// arena. Any make() left on the mineNode hot path shows up here.
func TestMineNodeSteadyStateZeroAllocs(t *testing.T) {
	datasets := map[string]*dataset.Dataset{
		"paper":  dataset.PaperExample(),
		"random": randomDataset(rand.New(rand.NewSource(7))),
	}
	for name, d := range datasets {
		t.Run(name, func(t *testing.T) {
			ordered, ord := dataset.OrderForConsequent(d, 0)
			m := newMiner(ordered, ord.NumPositive, Options{MinSup: 1}, engine.NewExec(nil), nil)
			if err := m.run(); err != nil {
				t.Fatal(err)
			}
			if len(m.groups) == 0 {
				t.Fatal("warm run found no groups; test would be vacuous")
			}
			n := testing.AllocsPerRun(5, func() {
				if err := m.run(); err != nil {
					t.Fatal(err)
				}
			})
			if n != 0 {
				t.Fatalf("steady-state run allocates %v times, want 0", n)
			}
		})
	}
}
