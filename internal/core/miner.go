package core

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Mine runs FARMER over d for the given consequent class and returns the
// interesting rule groups satisfying opt's constraints. Row ids in the
// result refer to d's original row order.
func Mine(d *dataset.Dataset, consequent int, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if consequent < 0 || consequent >= d.NumClasses() {
		return nil, fmt.Errorf("core: consequent class %d outside [0,%d)", consequent, d.NumClasses())
	}

	ordered, ord := dataset.OrderForConsequent(d, consequent)
	m := newMiner(ordered, ord.NumPositive, opt)
	m.run()

	res := &Result{
		Consequent: consequent,
		NumRows:    len(ordered.Rows),
		NumPos:     ord.NumPositive,
		Stats:      m.stats,
	}
	for i := range m.groups {
		e := &m.groups[i]
		g := RuleGroup{
			Antecedent: e.items,
			SupPos:     e.supPos,
			SupNeg:     e.tot - e.supPos,
			Confidence: float64(e.supPos) / float64(e.tot),
			Chi:        e.chi,
			Rows:       ord.MapRowsToOriginal(e.rows.Ints()),
		}
		sort.Ints(g.Rows)
		if opt.ComputeLowerBounds {
			g.LowerBounds, g.Truncated = m.mineLB(e.items, e.rows)
		}
		res.Groups = append(res.Groups, g)
	}
	return res, nil
}

// tuple is one row of a conditional transposed table: an item together with
// the enumeration-candidate rows it contains at the current node. The slice
// is a view into an ancestor's storage and is never mutated.
type tuple struct {
	item dataset.Item
	rows []int32
}

type miner struct {
	ds     *dataset.Dataset
	tt     *dataset.Transposed
	numPos int // m: rows with the consequent class (ids [0, numPos))
	n      int
	opt    Options

	// inX marks rows in X ∪ Yacc along the current path: the exclusion set
	// of the back scan and, at step 7, exactly R(I(X)) (see DESIGN.md).
	inX *bitset.Set

	// epoch-stamped per-row scratch counters (shared by the candidate scan
	// and the back scan; each pass bumps the epoch instead of clearing).
	cnt   []int32
	stamp []uint32
	epoch uint32

	// skipChildren turns a mineNode call into emission-only (no step 6),
	// used by MineParallel's singleton tasks.
	skipChildren bool

	// recordRejected makes maybeEmit retain the row set of every group the
	// local interestingness filter drops. MineParallel needs the identities,
	// not just a count: a pair task can rediscover a group that another task
	// already found (the sequential traversal absorbs the second node via
	// pruning 1), so rejection events over-count — only the set of distinct
	// rejected row sets is scheduling-independent.
	recordRejected bool
	rejectedRows   []*bitset.Set

	groups []irgEntry
	stats  Stats
}

func newMiner(d *dataset.Dataset, numPos int, opt Options) *miner {
	n := len(d.Rows)
	return &miner{
		ds:     d,
		tt:     dataset.Transpose(d),
		numPos: numPos,
		n:      n,
		opt:    opt,
		inX:    bitset.New(n),
		cnt:    make([]int32, n),
		stamp:  make([]uint32, n),
	}
}

// run enumerates the children of the (virtual) root: one node per row, in
// ORD order. The root itself corresponds to X = ∅ and emits no rule.
func (m *miner) run() {
	if m.n == 0 || m.numPos == 0 {
		return
	}
	for ri := 0; ri < m.n; ri++ {
		row := &m.ds.Rows[ri]
		tuples := make([]tuple, 0, len(row.Items))
		for _, it := range row.Items {
			list := m.tt.Lists[it]
			// Candidate rows of this tuple: global occurrences after ri.
			k := sort.Search(len(list), func(i int) bool { return list[i] > int32(ri) })
			tuples = append(tuples, tuple{item: it, rows: list[k:]})
		}
		supp, supn := 0, 0
		if ri < m.numPos {
			supp = 1
		} else {
			supn = 1
		}
		epCount := m.numPos - ri - 1 // positive candidates after ri
		if epCount < 0 {
			epCount = 0
		}
		m.inX.Set(ri)
		m.mineNode(tuples, supp, supn, epCount, ri)
		m.inX.Clear(ri)
	}
}

// mineNode is MineIRGs of Figure 5 for the node whose row combination is
// recorded in m.inX (X plus rows absorbed by pruning 1 on the path). tuples
// is the X-conditional transposed table, supp/supn the counts of identified
// rows containing I(X)∪C and I(X)∪¬C, epCount the number of positive
// enumeration candidates, and rmax the largest explicitly chosen row id.
func (m *miner) mineNode(tuples []tuple, supp, supn, epCount int, rmax int) {
	m.stats.NodesVisited++
	if len(tuples) == 0 {
		return // I(X) = ∅: no rule here and no deeper candidates
	}

	// Step 1 — pruning strategy 2 (back scan, Lemma 3.6).
	emitOK := true
	if m.backScanHit(tuples, rmax) {
		if !m.opt.DisablePruning2 {
			m.stats.PrunedBackScan++
			return
		}
		// Ablation mode: keep traversing, but this node's group was (or
		// will be) found at its compressed twin; emitting here would
		// report a wrong row set.
		emitOK = false
	}

	// Step 2 — pruning strategy 3, loose bounds (before scanning).
	if !m.opt.DisablePruning3 {
		us2 := supp + epCount
		if us2 < m.opt.MinSup {
			m.stats.PrunedLooseBound++
			return
		}
		if m.opt.needsConfBound() {
			if uc2 := float64(us2) / float64(us2+supn); m.confBoundFails(uc2) {
				m.stats.PrunedLooseBound++
				return
			}
		}
	}

	// Step 3 — scan the conditional table: per-candidate occurrence counts,
	// the U set (rows in ≥1 tuple), the Y set (rows in every tuple), and
	// the per-tuple positive-candidate maximum for Us1.
	m.epoch++
	ntup := int32(len(tuples))
	maxPosInTuple := 0
	for _, t := range tuples {
		if len(t.rows) == 0 {
			continue
		}
		// Candidates are sorted with positives (< numPos) first.
		if pos := sort.Search(len(t.rows), func(i int) bool { return t.rows[i] >= int32(m.numPos) }); pos > maxPosInTuple {
			maxPosInTuple = pos
		}
		for _, r := range t.rows {
			if m.stamp[r] != m.epoch {
				m.stamp[r] = m.epoch
				m.cnt[r] = 0
			}
			m.cnt[r]++
		}
	}

	// Classify the union U into Y (in every tuple) and E' = U − Y.
	// With pruning 1 disabled, Y rows stay ordinary candidates, the node's
	// counts exclude them, and the node must not emit: its row set is not
	// closed, and the fully explicit descendant will report the group.
	var eRows []int32
	var yRows []int32
	yPos, yNeg := 0, 0
	for _, t := range tuples {
		for _, r := range t.rows {
			if m.stamp[r] != m.epoch || m.cnt[r] < 0 {
				continue // already classified
			}
			if m.cnt[r] == ntup {
				if m.opt.DisablePruning1 {
					emitOK = false
					eRows = append(eRows, r)
				} else {
					yRows = append(yRows, r)
					if int(r) < m.numPos {
						yPos++
					} else {
						yNeg++
					}
				}
			} else {
				eRows = append(eRows, r)
			}
			m.cnt[r] = -1 // classified
		}
	}
	sort.Slice(eRows, func(a, b int) bool { return eRows[a] < eRows[b] })

	m.stats.RowsAbsorbed += int64(len(yRows))
	suppIn := supp // γ'.sup plus this node's chosen row, per the Us1 formula
	supp += yPos
	supn += yNeg

	// Step 4 — pruning strategy 3, tight bounds (after scanning).
	if !m.opt.DisablePruning3 {
		us1 := suppIn + maxPosInTuple
		if us1 < m.opt.MinSup {
			m.stats.PrunedTightBound++
			return
		}
		if m.opt.needsConfBound() {
			if uc1 := float64(us1) / float64(us1+supn); m.confBoundFails(uc1) {
				m.stats.PrunedTightBound++
				return
			}
		}
		if m.opt.MinChi > 0 {
			if stats.Chi2UpperBound(supp+supn, supp, m.n, m.numPos) < m.opt.MinChi {
				m.stats.PrunedChiBound++
				return
			}
		}
		if m.opt.MinEntropyGain > 0 {
			if stats.EntropyGainUpperBound(supp+supn, supp, m.n, m.numPos) < m.opt.MinEntropyGain {
				m.stats.PrunedGainBound++
				return
			}
		}
		if m.opt.MinGiniGain > 0 {
			if stats.GiniGainUpperBound(supp+supn, supp, m.n, m.numPos) < m.opt.MinGiniGain {
				m.stats.PrunedGainBound++
				return
			}
		}
	}

	// Step 5 — pruning strategy 1: absorb Y into the node's row set and
	// drop it from every tuple's candidate list (Lemma 3.5).
	for _, r := range yRows {
		m.inX.Set(int(r))
	}
	cleaned := make([][]int32, len(tuples))
	if len(yRows) == 0 {
		for i := range tuples {
			cleaned[i] = tuples[i].rows
		}
	} else {
		sort.Slice(yRows, func(a, b int) bool { return yRows[a] < yRows[b] })
		total := 0
		for i := range tuples {
			total += len(tuples[i].rows) - len(yRows) // Y is in every tuple
		}
		backing := make([]int32, 0, total)
		for i := range tuples {
			start := len(backing)
			yi := 0
			for _, r := range tuples[i].rows {
				for yi < len(yRows) && yRows[yi] < r {
					yi++
				}
				if yi < len(yRows) && yRows[yi] == r {
					continue
				}
				backing = append(backing, r)
			}
			cleaned[i] = backing[start:len(backing):len(backing)]
		}
	}

	// Step 6 — children in ORD order. For each candidate r, the child's
	// tuples are exactly the tuples containing r, with candidate rows > r
	// (Lemma 3.3). The tuple lists per candidate are laid out in one flat
	// counted array; candidate positions come from binary search in the
	// sorted eRows (candidate counts are tiny compared to tuple counts).
	if len(eRows) > 0 && !m.skipChildren {
		posOf := func(r int32) int {
			return sort.Search(len(eRows), func(i int) bool { return eRows[i] >= r })
		}
		counts := make([]int32, len(eRows)+1)
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				counts[posOf(r)+1]++
			}
		}
		for i := 1; i <= len(eRows); i++ {
			counts[i] += counts[i-1]
		}
		flat := make([]int32, counts[len(eRows)])
		fill := make([]int32, len(eRows))
		for ti := range cleaned {
			for _, r := range cleaned[ti] {
				p := posOf(r)
				flat[int(counts[p])+int(fill[p])] = int32(ti)
				fill[p]++
			}
		}
		posBoundary := sort.Search(len(eRows), func(i int) bool { return eRows[i] >= int32(m.numPos) })
		childBacking := make([]tuple, counts[len(eRows)])
		for p, r := range eRows {
			tis := flat[counts[p]:counts[p+1]]
			child := childBacking[counts[p]:counts[p]:counts[p+1]]
			for _, ti := range tis {
				rows := cleaned[ti]
				k := sort.Search(len(rows), func(i int) bool { return rows[i] > r })
				child = append(child, tuple{item: tuples[ti].item, rows: rows[k:]})
			}
			ca, cb := supp, supn
			childEp := 0
			if int(r) < m.numPos {
				ca++
				childEp = posBoundary - p - 1
			} else {
				cb++
			}
			m.inX.Set(int(r))
			m.mineNode(child, ca, cb, childEp, int(r))
			m.inX.Clear(int(r))
		}
	}

	// Step 7 — check whether I(X) → C is the upper bound of an IRG that
	// satisfies the constraints, after all descendants (Lemma 3.4).
	if emitOK {
		m.maybeEmit(tuples, supp, supn)
	}

	for _, r := range yRows {
		m.inX.Clear(int(r))
	}
}

// maybeEmit applies the step-7 constraint and interestingness checks for
// the current node, whose row set R(I(X)) is m.inX.
func (m *miner) maybeEmit(tuples []tuple, supp, supn int) {
	if supp < m.opt.MinSup {
		return
	}
	tot := supp + supn
	conf := float64(supp) / float64(tot)
	if conf < m.opt.MinConf {
		return
	}
	chi := stats.Chi2(tot, supp, m.n, m.numPos)
	if m.opt.MinChi > 0 && chi < m.opt.MinChi {
		return
	}
	if m.opt.MinLift > 0 && stats.Lift(tot, supp, m.n, m.numPos) < m.opt.MinLift {
		return
	}
	if m.opt.MinConviction > 0 && stats.Conviction(tot, supp, m.n, m.numPos) < m.opt.MinConviction {
		return
	}
	if m.opt.MinEntropyGain > 0 && stats.EntropyGain(tot, supp, m.n, m.numPos) < m.opt.MinEntropyGain {
		return
	}
	if m.opt.MinGiniGain > 0 && stats.GiniGain(tot, supp, m.n, m.numPos) < m.opt.MinGiniGain {
		return
	}
	// Interestingness: every already-kept group with a subset antecedent —
	// equivalently a proper superset row set (both sets are closed) — must
	// have strictly lower confidence. An equal row set means this very
	// group was already kept.
	for i := range m.groups {
		e := &m.groups[i]
		if e.rows.SupersetOf(m.inX) {
			if e.rows.Equal(m.inX) {
				return // duplicate discovery (possible only in ablation modes)
			}
			if !confLess(e.supPos, e.tot, supp, tot) {
				m.stats.GroupsNotInterest++
				if m.recordRejected {
					m.rejectedRows = append(m.rejectedRows, m.inX.Clone())
				}
				return
			}
		}
	}
	items := make([]dataset.Item, len(tuples))
	for i, t := range tuples {
		items[i] = t.item
	}
	sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
	m.groups = append(m.groups, irgEntry{
		rows:   m.inX.Clone(),
		supPos: supp,
		tot:    tot,
		items:  items,
		chi:    chi,
	})
	m.stats.GroupsEmitted++
}

// confBoundFails reports whether a confidence upper bound already violates
// one of the confidence-monotone constraints (minconf, and through it lift
// and conviction: both are strictly increasing functions of confidence for
// fixed margins n, m).
func (m *miner) confBoundFails(confUB float64) bool {
	if m.opt.MinConf > 0 && confUB < m.opt.MinConf {
		return true
	}
	if m.opt.MinLift > 0 && confUB*float64(m.n)/float64(m.numPos) < m.opt.MinLift {
		return true
	}
	if m.opt.MinConviction > 0 && confUB < 1 {
		conv := (1 - float64(m.numPos)/float64(m.n)) / (1 - confUB)
		if conv < m.opt.MinConviction {
			return true
		}
	}
	return false
}

// backScanHit implements the detection of Lemma 3.6: is there a row r0 with
// r0 < rmax, r0 ∉ X ∪ Yacc, occurring in every tuple of the node? Such a
// row proves every upper bound below this node was already discovered at an
// earlier or compressed node. The scan walks the prefixes of the tuples'
// global row lists (the "back scan" of §3.3).
func (m *miner) backScanHit(tuples []tuple, rmax int) bool {
	if len(tuples) == 0 || rmax == 0 {
		return false
	}
	m.epoch++
	ntup := int32(len(tuples))
	for ti, t := range tuples {
		glist := m.tt.Lists[t.item]
		hitAny := false
		for _, r := range glist {
			if int(r) >= rmax {
				break
			}
			if m.inX.Test(int(r)) {
				continue
			}
			if ti == 0 {
				m.stamp[r] = m.epoch
				m.cnt[r] = 1
				if ntup == 1 {
					return true
				}
				hitAny = true
				continue
			}
			if m.stamp[r] == m.epoch && m.cnt[r] == int32(ti) {
				m.cnt[r]++
				if m.cnt[r] == ntup {
					return true
				}
				hitAny = true
			}
		}
		if !hitAny {
			return false // some tuple contributes no surviving prefix row
		}
	}
	return false
}
